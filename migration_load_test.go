// Migration under load: a process is migrated while two remote senders
// hammer it with sequence-numbered messages. The §3.1 guarantees under
// test: messages held on the frozen queue and messages absorbed by the
// forwarding address each arrive exactly once, in spite of the move; and
// the §6 ledger attributes the residual forwarding traffic to the
// migration that caused it. The kernels run with CoalesceLinkUpdates on,
// so the step-6 batch path (one OpLinkUpdateBatch per sender machine) is
// exercised end to end against real sender link tables.
package demosmp_test

import (
	"encoding/binary"
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/kernel"
	"demosmp/internal/link"
	"demosmp/internal/netw"
	"demosmp/internal/obs"
	"demosmp/internal/proc"
	"demosmp/internal/sim"
)

// seqSenderBody sends total sequence-numbered messages over link 1, one
// per scheduling slice: payload = sender id byte + uint32 sequence.
type seqSenderBody struct {
	id    byte
	total int
	sent  int
}

func (s *seqSenderBody) Kind() string { return "seq-sender" }
func (s *seqSenderBody) Step(ctx proc.Context, budget int) (int, proc.Status) {
	if s.sent >= s.total {
		return 0, proc.Status{State: proc.Blocked}
	}
	var b [5]byte
	b[0] = s.id
	binary.LittleEndian.PutUint32(b[1:], uint32(s.sent))
	if err := ctx.Send(1, b[:]); err != nil {
		return 0, proc.Status{State: proc.Crashed, Err: err}
	}
	s.sent++
	return 1, proc.Status{State: proc.Runnable}
}
func (s *seqSenderBody) Snapshot() ([]byte, error) { return nil, nil }
func (s *seqSenderBody) Restore([]byte) error      { return nil }

// seqSinkBody tallies deliveries by (sender, seq). Snapshot/Restore carry
// the tally across migrations, so duplicates produced anywhere along a
// held/forwarded path would survive the move and be counted.
type seqSinkBody struct {
	seen map[uint64]int
	got  int
}

func (s *seqSinkBody) Kind() string { return "seq-sink" }
func (s *seqSinkBody) Step(ctx proc.Context, budget int) (int, proc.Status) {
	for {
		d, ok := ctx.Recv()
		if !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
		if len(d.Body) == 5 {
			key := uint64(d.Body[0])<<32 | uint64(binary.LittleEndian.Uint32(d.Body[1:]))
			if s.seen == nil {
				s.seen = make(map[uint64]int)
			}
			s.seen[key]++
			s.got++
		}
	}
}

func (s *seqSinkBody) Snapshot() ([]byte, error) {
	b := binary.LittleEndian.AppendUint32(nil, uint32(len(s.seen)))
	for k, v := range s.seen {
		b = binary.LittleEndian.AppendUint64(b, k)
		b = binary.LittleEndian.AppendUint32(b, uint32(v))
	}
	return b, nil
}

func (s *seqSinkBody) Restore(b []byte) error {
	if len(b) < 4 {
		return nil
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	s.seen = make(map[uint64]int, n)
	s.got = 0
	for i := 0; i < n && len(b) >= 12; i++ {
		k := binary.LittleEndian.Uint64(b)
		v := int(binary.LittleEndian.Uint32(b[8:]))
		s.seen[k] = v
		s.got += v
		b = b[12:]
	}
	return nil
}

// TestMigrationUnderLoadExactlyOnce migrates the sink m1→m2 while senders
// on m2 and m3 are mid-stream, then checks every message arrived exactly
// once and the §6 ledger pinned the residual forwards on the migration.
func TestMigrationUnderLoadExactlyOnce(t *testing.T) {
	const perSender = 60

	e := sim.NewEngine(1)
	nw := netw.New(e, netw.Config{})
	reg := proc.NewRegistry()
	reg.Register("seq-sink", func() proc.Body { return &seqSinkBody{} })
	reg.Register("seq-sender", func() proc.Body { return &seqSenderBody{} })
	oreg, oled := obs.NewRegistry(), obs.NewLedger()
	ks := make([]*kernel.Kernel, 3)
	for i := range ks {
		ks[i] = kernel.New(addr.MachineID(i+1), e, nw, kernel.Config{
			Registry:            reg,
			CoalesceLinkUpdates: true,
		})
		ks[i].SetObs(oreg, oled)
	}

	sink := &seqSinkBody{}
	sinkPID, err := ks[0].Spawn(kernel.SpawnSpec{Body: sink})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range []int{1, 2} { // senders on m2 and m3
		sender := &seqSenderBody{id: byte(i + 1), total: perSender}
		spid, err := ks[m].Spawn(kernel.SpawnSpec{Body: sender})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ks[m].MintLinkTo(link.Link{Addr: addr.At(sinkPID, 1)}, spid); err != nil {
			t.Fatal(err)
		}
	}

	// Let the streams start flowing, then migrate the sink mid-hammer.
	cur := sink
	for cur.got < perSender/4 {
		if !e.Step() {
			t.Fatal("engine idle before migration point")
		}
	}
	ks[0].RequestMigrationOf(addr.At(sinkPID, 1), 2)
	for e.Step() {
	}

	// A third sender that never appeared on the frozen queue was not
	// covered by the coalesced batch: its sends still carry the stale
	// address and must be absorbed by the forwarding address, exactly
	// once, with the lazy §5 machinery attributing them to the migration.
	staleFrom := addr.At(addr.ProcessID{Creator: 3, Local: 77}, 3)
	for seq := 0; seq < perSender; seq++ {
		var p [5]byte
		p[0] = 3
		binary.LittleEndian.PutUint32(p[1:], uint32(seq))
		ks[2].GiveMessageTo(addr.At(sinkPID, 1), staleFrom, p[:])
	}
	for e.Step() {
	}

	// The sink must have arrived on m2 with every message exactly once.
	bod, ok := ks[1].BodyOf(sinkPID)
	if !ok {
		t.Fatal("sink did not arrive on m2")
	}
	moved := bod.(*seqSinkBody)
	if moved.got != 3*perSender {
		t.Fatalf("sink received %d messages, want %d", moved.got, 3*perSender)
	}
	for sender := byte(1); sender <= 3; sender++ {
		for seq := 0; seq < perSender; seq++ {
			key := uint64(sender)<<32 | uint64(seq)
			if n := moved.seen[key]; n != 1 {
				t.Errorf("sender %d seq %d delivered %d times, want exactly once", sender, seq, n)
			}
		}
	}

	// The migration must actually have been under load: messages were held
	// on the frozen queue and forwarded at step 6, and stale sends after
	// step 7 were absorbed by the forwarding address.
	src := ks[0].Stats()
	if src.ForwardedPending == 0 {
		t.Error("no messages were held+forwarded at step 6; load did not overlap the freeze")
	}
	if src.Forwarded == 0 {
		t.Error("no stale sends hit the forwarding address after step 7")
	}

	// §6 ledger attribution: one record, with the step-6 queue drain and
	// the post-completion forwards pinned on this migration.
	recs := oled.Records()
	if len(recs) != 1 {
		t.Fatalf("ledger has %d records, want 1", len(recs))
	}
	rec := recs[0]
	if !rec.OK || rec.PID != sinkPID || rec.From != 1 || rec.To != 2 {
		t.Fatalf("ledger record = %+v, want OK migration of %v 1->2", rec, sinkPID)
	}
	if rec.PendingForwarded != int(src.ForwardedPending) {
		t.Errorf("ledger PendingForwarded = %d, stats say %d", rec.PendingForwarded, src.ForwardedPending)
	}
	if rec.ForwardsAbsorbed != src.Forwarded {
		t.Errorf("ledger ForwardsAbsorbed = %d, source forwarded %d", rec.ForwardsAbsorbed, src.Forwarded)
	}
	if rec.MoveDataTransfers != 3 {
		t.Errorf("MoveDataTransfers = %d, want 3 (§6)", rec.MoveDataTransfers)
	}

	// Coalesced link updates: step 6 saw held messages from senders on two
	// machines, so the source must have emitted batches, and the sender
	// kernels must have applied them against real link tables.
	if src.LinkUpdateBatchesSent == 0 || src.LinkUpdatesBatched == 0 {
		t.Errorf("no coalesced batches sent (sent=%d covered=%d)",
			src.LinkUpdateBatchesSent, src.LinkUpdatesBatched)
	}
	applied, fixed := uint64(0), uint64(0)
	for _, k := range ks[1:] {
		st := k.Stats()
		applied += st.LinkUpdateBatchesApplied
		fixed += st.LinksFixed
	}
	if applied == 0 {
		t.Error("no kernel applied a coalesced batch")
	}
	if fixed == 0 {
		t.Error("coalesced batches fixed no links")
	}
}

// BenchmarkKernelMigrationUnderLoad is one full migration with concurrent
// traffic: before each migration, two stale senders fire a burst at the
// process's old address, so every op pays for held-queue forwarding, the
// forwarding address, and the coalesced link-update fan-out on top of the
// 8-step protocol.
func BenchmarkKernelMigrationUnderLoad(b *testing.B) {
	const burst = 8 // messages per sender per op

	e := sim.NewEngine(1)
	nw := netw.New(e, netw.Config{})
	reg := proc.NewRegistry()
	// The non-tallying sink keeps the swappable state constant-size, so
	// every op moves the same number of bytes (exactly-once is asserted by
	// TestMigrationUnderLoadExactlyOnce, not here).
	reg.Register("bench-sink", func() proc.Body { return &benchSinkBody{} })
	done := 0
	mk := func(m addr.MachineID) *kernel.Kernel {
		return kernel.New(m, e, nw, kernel.Config{
			Registry:            reg,
			CoalesceLinkUpdates: true,
			OnReport: func(r kernel.MigrationReport) {
				if r.OK {
					done++
				}
			},
		})
	}
	ks := []*kernel.Kernel{mk(1), mk(2), mk(3)}
	pid, err := ks[0].Spawn(kernel.SpawnSpec{Body: &benchSinkBody{}})
	if err != nil {
		b.Fatal(err)
	}
	from1 := addr.At(addr.ProcessID{Creator: 3, Local: 98}, 3)
	from2 := addr.At(addr.ProcessID{Creator: 3, Local: 99}, 3)
	var seq uint32
	cur := 0
	migrate := func() {
		// Two senders hammer the old address as the migration starts.
		for i := 0; i < burst; i++ {
			var p1, p2 [5]byte
			p1[0], p2[0] = 1, 2
			binary.LittleEndian.PutUint32(p1[1:], seq)
			binary.LittleEndian.PutUint32(p2[1:], seq)
			seq++
			ks[2].GiveMessageTo(addr.At(pid, addr.MachineID(cur+1)), from1, p1[:])
			ks[2].GiveMessageTo(addr.At(pid, addr.MachineID(cur+1)), from2, p2[:])
		}
		dst := 1 - cur
		ks[cur].RequestMigrationOf(addr.At(pid, ks[cur].Machine()), ks[dst].Machine())
		target := done + 1
		for done < target {
			if !e.Step() {
				b.Fatal("engine idle mid-migration")
			}
		}
		for e.Step() {
		}
		cur = dst
	}
	migrate() // warm pools on both sides
	migrate()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		migrate()
	}
	b.StopTimer()
	if _, ok := ks[cur].BodyOf(pid); !ok {
		b.Fatal("sink lost")
	}
}

// Package demosmp is a from-scratch reproduction of "Process Migration in
// DEMOS/MP" (Powell & Miller, SOSP 1983): a simulated message-based
// distributed operating system in which a process can be moved between
// processors during execution — with continuous access to all its
// resources, correct delivery of every message, and message paths that are
// lazily updated to the process's new location.
//
// The cluster it builds contains everything the paper describes: per-node
// kernels with link-based communication (including DELIVERTOKERNEL links
// and the move-data facility), the system server processes (switchboard,
// process manager, memory scheduler, the four-process file system, and a
// command interpreter), the 8-step migration mechanism, forwarding
// addresses, and the link-update protocol. See DESIGN.md for the system
// inventory and EXPERIMENTS.md for the paper-vs-measured results.
//
// Quickstart:
//
//	c, err := demosmp.New(demosmp.Options{Machines: 3, Switchboard: true, PM: true})
//	if err != nil { ... }
//	pid, _ := c.SpawnProgram(1, demosmp.CPUBound(100000))
//	c.RunFor(5000)          // let it get going
//	c.Migrate(pid, 2)       // move it mid-computation
//	c.Run()                 // run to completion
//	exit, machine, _ := c.ExitOf(pid) // same answer, new machine
package demosmp

import (
	"demosmp/internal/addr"
	"demosmp/internal/core"
	"demosmp/internal/dvm"
	"demosmp/internal/fs"
	"demosmp/internal/kernel"
	"demosmp/internal/link"
	"demosmp/internal/netw"
	"demosmp/internal/policy"
	"demosmp/internal/sim"
	"demosmp/internal/workload"
)

// Core cluster types.
type (
	// Cluster is a running simulated DEMOS/MP system.
	Cluster = core.Cluster
	// Options configures a cluster; see New.
	Options = core.Options
	// ProgramFactory builds named programs for the shell spawn path.
	ProgramFactory = core.ProgramFactory
	// Stats aggregates cluster-wide counters.
	Stats = core.Stats
)

// Identity and messaging types.
type (
	// MachineID names a processor (numbered from 1).
	MachineID = addr.MachineID
	// ProcessID is the immutable system-wide process identity.
	ProcessID = addr.ProcessID
	// ProcessAddr pairs a ProcessID with its last known machine.
	ProcessAddr = addr.ProcessAddr
	// Link is a capability-like one-way message path.
	Link = link.Link
	// Time is simulated microseconds.
	Time = sim.Time
)

// Kernel-level types surfaced for experiment code.
type (
	// KernelConfig tunes per-kernel behavior (quantum, costs, the
	// forwarding mode, eager-update ablation, ...).
	KernelConfig = kernel.Config
	// SpawnSpec describes a process to create.
	SpawnSpec = kernel.SpawnSpec
	// MigrationReport is the per-migration cost breakdown of paper §6.
	MigrationReport = kernel.MigrationReport
	// NetConfig tunes the network model.
	NetConfig = netw.Config
	// DiskGeometry models the simulated drive.
	DiskGeometry = fs.DiskGeometry
	// Program is an assembled DVM program.
	Program = dvm.Program
)

// Forwarding modes (paper §4).
const (
	// ModeForward leaves forwarding addresses — the paper's design.
	ModeForward = kernel.ModeForward
	// ModeReturnToSender is the rejected alternative: bounce
	// undeliverable messages to the sending kernel.
	ModeReturnToSender = kernel.ModeReturnToSender
)

// New builds and boots a cluster.
func New(opts Options) (*Cluster, error) { return core.New(opts) }

// Assemble translates DVM assembly into a runnable Program.
func Assemble(src string) (*Program, error) { return dvm.Assemble(src) }

// Workload generators for experiments and examples.
var (
	// CPUBound returns a compute-only program of n iterations.
	CPUBound = workload.CPUBound
	// CPUBoundSized pads the program image to a target size.
	CPUBoundSized = workload.CPUBoundSized
	// CPUBoundResult predicts CPUBound's exit code.
	CPUBoundResult = workload.CPUBoundResult
	// EchoServer answers n requests on their carried reply links.
	EchoServer = workload.EchoServer
	// RequestClient performs n request/reply exchanges on link 1.
	RequestClient = workload.RequestClient
	// SelfMigrator requests its own migration mid-computation.
	SelfMigrator = workload.SelfMigrator
	// VMFileClient is a user program in DVM assembly that does real
	// file I/O through the four-process file system.
	VMFileClient = workload.VMFileClient
)

// LinkTo builds a link addressing pid at its (last known) machine — the
// raw material for SpawnSpec initial links.
func LinkTo(pid ProcessID, at MachineID) Link {
	return Link{Addr: addr.At(pid, at)}
}

// Migration policies (our implementations of the decision rules the paper
// left open; §3.1 and §7).
var (
	// NewThresholdPolicy balances CPU load with hysteresis.
	NewThresholdPolicy = policy.NewThreshold
	// NewCommAffinityPolicy moves processes toward their main
	// communication partners.
	NewCommAffinityPolicy = policy.NewCommAffinity
	// NewDrainPolicy evacuates a dying processor.
	NewDrainPolicy = policy.NewDrain
	// NewQueueDepthPolicy balances on ready-queue depth — it sees
	// backlog even when every CPU reads 100%.
	NewQueueDepthPolicy = policy.NewQueueDepth
	// NewMemoryPressurePolicy relieves machines running out of memory.
	NewMemoryPressurePolicy = policy.NewMemoryPressure
	// NewAffinityAwarePolicy co-locates communication partners only when
	// the §6 cost model says the move pays for itself.
	NewAffinityAwarePolicy = policy.NewAffinityAware
	// NewCompositePolicy merges several policies under per-rule weights.
	NewCompositePolicy = policy.NewComposite
	// DefaultMigrationCostModel is the §6-seeded migration cost model.
	DefaultMigrationCostModel = policy.DefaultCostModel
)

// Policy-plane types surfaced for experiment code.
type (
	// MigrationCostModel prices a migration in simulated microseconds.
	MigrationCostModel = policy.CostModel
	// PolicyRule is one weighted member of a composite policy.
	PolicyRule = policy.Rule
)

// Supplementary benchmarks: substrate costs (real wall time for the VM
// interpreter; simulated time for messaging) and migration robustness
// under packet loss.
package demosmp_test

import (
	"testing"

	"demosmp"
	"demosmp/internal/addr"
	"demosmp/internal/dvm"
	"demosmp/internal/kernel"
	"demosmp/internal/netw"
	"demosmp/internal/workload"
)

// BenchmarkVMExecution measures the DVM interpreter itself in real time:
// instructions per second executing the standard CPU-bound loop.
func BenchmarkVMExecution(b *testing.B) {
	p := workload.CPUBound(1 << 30) // effectively endless
	img, err := p.BuildImage(nil)
	if err != nil {
		b.Fatal(err)
	}
	vm := dvm.New(img, p.Entry)
	sys := nopSyscalls{}
	b.ResetTimer()
	executed := 0
	for executed < b.N {
		used, st := vm.Step(sys, b.N-executed)
		executed += used
		if st != dvm.Running {
			b.Fatalf("status %v", st)
		}
	}
	b.ReportMetric(float64(b.N), "instructions")
}

type nopSyscalls struct{}

func (nopSyscalls) Send(uint16, []byte, ...uint16) error              { return nil }
func (nopSyscalls) Recv(int) ([]byte, uint16, uint16, bool)           { return nil, 0, 0, false }
func (nopSyscalls) CreateLink(uint16, uint32, uint32) (uint16, error) { return 1, nil }
func (nopSyscalls) DestroyLink(uint16) error                          { return nil }
func (nopSyscalls) PID() (uint16, uint16)                             { return 1, 1 }
func (nopSyscalls) Now() uint64                                       { return 0 }
func (nopSyscalls) Print([]byte)                                      {}
func (nopSyscalls) MigrateSelf(uint16) error                          { return nil }
func (nopSyscalls) Rand() uint32                                      { return 4 }

// BenchmarkLocalMessage / BenchmarkRemoteMessage: the baseline cost of one
// request/reply exchange, same-machine vs cross-machine — the raw numbers
// every forwarding cost in §6 is relative to.
func BenchmarkLocalMessage(b *testing.B)  { benchExchange(b, 1) }
func BenchmarkRemoteMessage(b *testing.B) { benchExchange(b, 2) }

func benchExchange(b *testing.B, clientMachine int) {
	var total float64
	for i := 0; i < b.N; i++ {
		c := mustCluster(b, demosmp.Options{})
		server, _ := c.Spawn(1, kernel.SpawnSpec{Program: workload.EchoServer(10)})
		client, _ := c.Spawn(clientMachine, kernel.SpawnSpec{
			Program: workload.RequestClient(10),
			Links:   []demosmp.Link{{Addr: addr.At(server, 1)}},
		})
		c.Run()
		e, _, ok := c.ExitOf(client)
		if !ok || e.Code != 10 {
			b.Fatal("exchange failed")
		}
		total += float64(c.Now()) / 10
	}
	b.ReportMetric(total/float64(b.N), "simus/roundtrip")
}

// BenchmarkMigrationLossy: migration cost under 10% frame loss — the
// protocol still completes via the ARQ layer, at the price of retransmits
// and latency.
func BenchmarkMigrationLossy(b *testing.B) {
	var lat, retrans float64
	for i := 0; i < b.N; i++ {
		c := mustCluster(b, demosmp.Options{
			Machines: 3,
			Net:      netw.Config{LossRate: 0.1, RetransTimeout: 3000, MaxRetries: 200},
		})
		pid, _ := c.SpawnProgram(1, demosmp.CPUBoundSized(200000, 16<<10))
		c.RunFor(3000)
		c.Migrate(pid, 2)
		c.Run()
		reps := c.Reports()
		if len(reps) != 1 || !reps[0].OK {
			b.Fatal("lossy migration failed")
		}
		e, m, ok := c.ExitOf(pid)
		if !ok || m != 2 || e.Code != demosmp.CPUBoundResult(200000) {
			b.Fatal("lossy migration corrupted the process")
		}
		lat += float64(reps[0].Latency())
		retrans += float64(c.Stats().Net.Retransmits)
	}
	b.ReportMetric(lat/float64(b.N), "simus/op")
	b.ReportMetric(retrans/float64(b.N), "retransmits/mig")
}

package dvm

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates DVM assembly into a Program.
//
// Syntax:
//
//	; comment
//	.stack 512            ; stack reservation (default 256)
//	.data                 ; switch to the data segment
//	msg:   .asciz "hi"    ; NUL-terminated string
//	buf:   .space 64      ; zero-filled bytes
//	nums:  .word 1, 2, 3  ; 32-bit words
//	.code                 ; switch to the code segment (default)
//	start: movi r0, 10
//	       addi r1, r1, 1
//	       cmp  r1, r0
//	       jlt  start
//	       sys  exit      ; syscall by name or number
//
// Immediates may be decimal, hex (0x...), a character ('c'), or a label.
// Code labels resolve to instruction byte addresses; data labels to
// absolute image addresses (code precedes data). The entry point is the
// label "start" if present, else the first instruction.
func Assemble(src string) (*Program, error) {
	a := &assembler{
		labels:    map[string]uint32{},
		stackSize: 256,
	}
	if err := a.firstPass(src); err != nil {
		return nil, err
	}
	if err := a.secondPass(src); err != nil {
		return nil, err
	}
	p := &Program{
		Code:      a.code,
		Data:      a.data,
		StackSize: a.stackSize,
		Labels:    a.labels,
	}
	if e, ok := a.labels["start"]; ok {
		p.Entry = e
	}
	return p, nil
}

// MustAssemble is Assemble for known-good embedded programs.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

var sysNames = map[string]int32{
	"exit": SysExit, "yield": SysYield, "getpid": SysGetPID,
	"send": SysSend, "send2": SysSend2, "recv": SysRecv, "mklink": SysMkLink,
	"rmlink": SysRmLink, "print": SysPrint, "time": SysTime,
	"migrate": SysMigrate, "rand": SysRand,
}

type asmError struct {
	line int
	err  error
}

func (e asmError) Error() string { return fmt.Sprintf("dvm asm: line %d: %v", e.line, e.err) }

type assembler struct {
	labels    map[string]uint32
	code      []Instr
	data      []byte
	stackSize int
	codeBytes int // from first pass, for data label resolution
}

type stmt struct {
	line   int
	label  string
	op     string
	args   []string
	inData bool
}

func parseLines(src string) ([]stmt, error) {
	var out []stmt
	inData := false
	for i, raw := range strings.Split(src, "\n") {
		line := raw
		// Strip comments, respecting character/string literals crudely:
		// a ';' inside quotes stays.
		if idx := commentIndex(line); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		s := stmt{line: i + 1}
		if c := strings.Index(line, ":"); c >= 0 && !strings.ContainsAny(line[:c], " \t\"'") {
			s.label = line[:c]
			line = strings.TrimSpace(line[c+1:])
		}
		if line != "" {
			fields := strings.SplitN(line, " ", 2)
			s.op = strings.ToLower(fields[0])
			if len(fields) > 1 {
				s.args = splitArgs(fields[1])
			}
		}
		switch s.op {
		case ".data":
			inData = true
			continue
		case ".code", ".text":
			inData = false
			continue
		}
		s.inData = inData
		if s.label == "" && s.op == "" {
			continue
		}
		out = append(out, s)
	}
	return out, nil
}

func commentIndex(line string) int {
	inStr, inChar := false, false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			if !inChar {
				inStr = !inStr
			}
		case '\'':
			if !inStr {
				inChar = !inChar
			}
		case ';':
			if !inStr && !inChar {
				return i
			}
		}
	}
	return -1
}

func splitArgs(s string) []string {
	var args []string
	depth := false // inside a string
	cur := strings.Builder{}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			depth = !depth
			cur.WriteByte(c)
		case c == ',' && !depth:
			args = append(args, strings.TrimSpace(cur.String()))
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	if t := strings.TrimSpace(cur.String()); t != "" {
		args = append(args, t)
	}
	return args
}

// firstPass sizes segments and binds labels.
func (a *assembler) firstPass(src string) error {
	stmts, err := parseLines(src)
	if err != nil {
		return err
	}
	codeAddr, dataOff := 0, 0
	type pendingLabel struct {
		name string
		data bool
		off  int
		line int
	}
	var pend []pendingLabel
	for _, s := range stmts {
		if s.label != "" {
			if s.inData {
				pend = append(pend, pendingLabel{s.label, true, dataOff, s.line})
			} else {
				pend = append(pend, pendingLabel{s.label, false, codeAddr, s.line})
			}
		}
		if s.op == "" {
			continue
		}
		if s.inData {
			n, err := dataSize(s)
			if err != nil {
				return asmError{s.line, err}
			}
			dataOff += n
		} else {
			switch s.op {
			case ".stack":
				if len(s.args) != 1 {
					return asmError{s.line, fmt.Errorf(".stack wants one size")}
				}
				n, err := strconv.Atoi(s.args[0])
				if err != nil || n < 16 {
					return asmError{s.line, fmt.Errorf("bad stack size %q", s.args[0])}
				}
				a.stackSize = n
			default:
				codeAddr += InstrSize
			}
		}
	}
	a.codeBytes = codeAddr
	for _, p := range pend {
		if _, dup := a.labels[p.name]; dup {
			return asmError{p.line, fmt.Errorf("duplicate label %q", p.name)}
		}
		if p.data {
			a.labels[p.name] = uint32(codeAddr + p.off)
		} else {
			a.labels[p.name] = uint32(p.off)
		}
	}
	return nil
}

func dataSize(s stmt) (int, error) {
	switch s.op {
	case ".asciz":
		if len(s.args) != 1 {
			return 0, fmt.Errorf(".asciz wants one string")
		}
		str, err := strconv.Unquote(s.args[0])
		if err != nil {
			return 0, fmt.Errorf("bad string %s: %v", s.args[0], err)
		}
		return len(str) + 1, nil
	case ".space":
		if len(s.args) != 1 {
			return 0, fmt.Errorf(".space wants one size")
		}
		n, err := strconv.Atoi(s.args[0])
		if err != nil || n < 0 {
			return 0, fmt.Errorf("bad size %q", s.args[0])
		}
		return n, nil
	case ".word":
		if len(s.args) == 0 {
			return 0, fmt.Errorf(".word wants values")
		}
		return 4 * len(s.args), nil
	default:
		return 0, fmt.Errorf("unknown data directive %q", s.op)
	}
}

func (a *assembler) secondPass(src string) error {
	stmts, _ := parseLines(src)
	for _, s := range stmts {
		if s.op == "" || s.op == ".stack" {
			continue
		}
		if s.inData {
			if err := a.emitData(s); err != nil {
				return asmError{s.line, err}
			}
			continue
		}
		in, err := a.emitInstr(s)
		if err != nil {
			return asmError{s.line, err}
		}
		a.code = append(a.code, in)
	}
	return nil
}

func (a *assembler) emitData(s stmt) error {
	switch s.op {
	case ".asciz":
		str, err := strconv.Unquote(s.args[0])
		if err != nil {
			return err
		}
		a.data = append(a.data, str...)
		a.data = append(a.data, 0)
	case ".space":
		n, _ := strconv.Atoi(s.args[0])
		a.data = append(a.data, make([]byte, n)...)
	case ".word":
		for _, arg := range s.args {
			v, err := a.imm(arg)
			if err != nil {
				return err
			}
			a.data = append(a.data,
				byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
	}
	return nil
}

func (a *assembler) reg(s string) (uint8, error) {
	s = strings.ToLower(s)
	if len(s) == 2 && s[0] == 'r' && s[1] >= '0' && s[1] < '0'+NumRegs {
		return s[1] - '0', nil
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func (a *assembler) imm(s string) (int32, error) {
	if s == "" {
		return 0, fmt.Errorf("missing immediate")
	}
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		if v < -1<<31 || v > 1<<32-1 {
			return 0, fmt.Errorf("immediate %d out of 32-bit range", v)
		}
		return int32(v), nil
	}
	if len(s) >= 3 && s[0] == '\'' {
		c, err := strconv.Unquote(s)
		if err != nil || len(c) != 1 {
			return 0, fmt.Errorf("bad char literal %s", s)
		}
		return int32(c[0]), nil
	}
	if addr, ok := a.labels[s]; ok {
		return int32(addr), nil
	}
	return 0, fmt.Errorf("undefined label %q", s)
}

type operandKind int

const (
	opNone operandKind = iota
	opRI               // reg, imm
	opRR               // reg, reg
	opRRR              // reg, reg, reg
	opRRI              // reg, reg, imm
	opI                // imm
	opR                // reg
)

var instrSpec = map[string]struct {
	op   Op
	kind operandKind
}{
	"nop": {NOP, opNone}, "halt": {HALT, opNone}, "ret": {RET, opNone},
	"movi": {MOVI, opRI}, "cmpi": {CMPI, opRI},
	"mov": {MOV, opRR}, "cmp": {CMP, opRR},
	"add": {ADD, opRRR}, "sub": {SUB, opRRR}, "mul": {MUL, opRRR},
	"div": {DIV, opRRR}, "mod": {MOD, opRRR}, "and": {AND, opRRR},
	"or": {OR, opRRR}, "xor": {XOR, opRRR}, "shl": {SHL, opRRR}, "shr": {SHR, opRRR},
	"addi": {ADDI, opRRI},
	"jmp":  {JMP, opI}, "jeq": {JEQ, opI}, "jne": {JNE, opI},
	"jlt": {JLT, opI}, "jle": {JLE, opI}, "jgt": {JGT, opI}, "jge": {JGE, opI},
	"call": {CALL, opI},
	"push": {PUSH, opR}, "pop": {POP, opR},
	"ldw": {LDW, opRRI}, "stw": {STW, opRRI},
	"ldb": {LDB, opRRI}, "stb": {STB, opRRI},
	"lea": {MOVI, opRI}, // alias: load effective address of a label
}

func (a *assembler) emitInstr(s stmt) (Instr, error) {
	if s.op == "sys" {
		if len(s.args) != 1 {
			return Instr{}, fmt.Errorf("sys wants one argument")
		}
		if n, ok := sysNames[strings.ToLower(s.args[0])]; ok {
			return Instr{Op: SYS, Imm: n}, nil
		}
		n, err := a.imm(s.args[0])
		if err != nil {
			return Instr{}, fmt.Errorf("unknown syscall %q", s.args[0])
		}
		return Instr{Op: SYS, Imm: n}, nil
	}
	spec, ok := instrSpec[s.op]
	if !ok {
		return Instr{}, fmt.Errorf("unknown instruction %q", s.op)
	}
	in := Instr{Op: spec.op}
	need := map[operandKind]int{opNone: 0, opRI: 2, opRR: 2, opRRR: 3, opRRI: 3, opI: 1, opR: 1}[spec.kind]
	if len(s.args) != need {
		return Instr{}, fmt.Errorf("%s wants %d operands, got %d", s.op, need, len(s.args))
	}
	var err error
	switch spec.kind {
	case opRI:
		if in.A, err = a.reg(s.args[0]); err != nil {
			return in, err
		}
		in.Imm, err = a.imm(s.args[1])
	case opRR:
		if in.A, err = a.reg(s.args[0]); err != nil {
			return in, err
		}
		in.B, err = a.reg(s.args[1])
	case opRRR:
		if in.A, err = a.reg(s.args[0]); err != nil {
			return in, err
		}
		if in.B, err = a.reg(s.args[1]); err != nil {
			return in, err
		}
		in.C, err = a.reg(s.args[2])
	case opRRI:
		if in.A, err = a.reg(s.args[0]); err != nil {
			return in, err
		}
		if in.B, err = a.reg(s.args[1]); err != nil {
			return in, err
		}
		in.Imm, err = a.imm(s.args[2])
	case opI:
		in.Imm, err = a.imm(s.args[0])
	case opR:
		in.A, err = a.reg(s.args[0])
	}
	return in, err
}

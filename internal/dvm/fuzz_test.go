package dvm

import (
	"testing"

	"demosmp/internal/memory"
)

// FuzzAssemble: the assembler must reject arbitrary source cleanly.
func FuzzAssemble(f *testing.F) {
	f.Add("start: movi r0, 1\n sys exit")
	f.Add(".data\nx: .word 1\n.code\nlea r1, x\nldw r0, r1, 0\nsys exit")
	f.Add(".stack 64\nloop: jmp loop")
	f.Add("; just a comment")
	f.Add("garbage garbage garbage")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return
		}
		// Whatever assembles must lay out and disassemble without
		// panicking.
		if _, err := p.BuildImage(nil); err != nil {
			t.Fatalf("assembled program failed layout: %v", err)
		}
		_ = p.Disassemble()
	})
}

// FuzzExecute: arbitrary instruction bytes must fault gracefully, never
// panic or run away — the VM executes whatever is in the (migratable,
// self-modifiable) image.
func FuzzExecute(f *testing.F) {
	p := MustAssemble("start: movi r0, 1\n sys exit")
	img, _ := p.BuildImage(nil)
	raw, _ := img.Bytes()
	f.Add(raw)
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xFF, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, code []byte) {
		size := len(code)
		if size == 0 {
			return
		}
		if size > 4096 {
			code = code[:4096]
			size = 4096
		}
		img := memory.NewImage(size+256, nil)
		img.WriteAt(code, 0)
		vm := New(img, 0)
		sys := newFakeSys()
		// Bounded execution: fuzzed code may loop, which is fine —
		// faults and halts are the interesting outcomes.
		for i := 0; i < 20; i++ {
			if _, st := vm.Step(sys, 1000); st != Running && st != Yielded {
				break
			}
		}
	})
}

package dvm

import (
	"fmt"

	"demosmp/internal/memory"
)

// Program is an assembled DVM program: code, initialized data, and a stack
// reservation. Together with a CPU snapshot it is everything a process
// needs to run — and everything migration must move.
type Program struct {
	Code      []Instr
	Data      []byte
	StackSize int
	Entry     uint32 // byte address of the first instruction
	Labels    map[string]uint32
}

// CodeBytes returns the encoded size of the code segment.
func (p *Program) CodeBytes() int { return len(p.Code) * InstrSize }

// ImageSize returns the total memory image size: code + data + stack,
// rounded up to a page.
func (p *Program) ImageSize() int {
	n := p.CodeBytes() + len(p.Data) + p.StackSize
	if rem := n % memory.PageSize; rem != 0 {
		n += memory.PageSize - rem
	}
	return n
}

// DataBase returns the byte address where the data segment starts.
func (p *Program) DataBase() uint32 { return uint32(p.CodeBytes()) }

// Label returns the address bound to a label, for tests and tooling.
func (p *Program) Label(name string) (uint32, bool) {
	a, ok := p.Labels[name]
	return a, ok
}

// BuildImage lays the program out in a fresh memory image:
// [code | data | ... | stack], stack at the top growing down.
func (p *Program) BuildImage(store *memory.Store) (*memory.Image, error) {
	img := memory.NewImage(p.ImageSize(), store)
	buf := make([]byte, p.CodeBytes())
	for i, in := range p.Code {
		in.Encode(buf[i*InstrSize:])
	}
	if err := img.WriteAt(buf, 0); err != nil {
		return nil, fmt.Errorf("dvm: laying out code: %w", err)
	}
	if len(p.Data) > 0 {
		if err := img.WriteAt(p.Data, int(p.DataBase())); err != nil {
			return nil, fmt.Errorf("dvm: laying out data: %w", err)
		}
	}
	return img, nil
}

// NewVM builds the image and returns a VM ready to run the program.
func (p *Program) NewVM(store *memory.Store) (*VM, *memory.Image, error) {
	img, err := p.BuildImage(store)
	if err != nil {
		return nil, nil, err
	}
	return New(img, p.Entry), img, nil
}

// Disassemble renders the code segment as text, one instruction per line,
// prefixed with byte addresses.
func (p *Program) Disassemble() string {
	s := ""
	for i, in := range p.Code {
		s += fmt.Sprintf("%6d  %s\n", i*InstrSize, in.String())
	}
	return s
}

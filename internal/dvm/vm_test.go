package dvm

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"demosmp/internal/memory"
)

// fakeSys is a scriptable Syscalls implementation.
type fakeSys struct {
	sent    [][]byte
	sentOn  []uint16
	carried []uint16
	inbox   [][]byte
	prints  [][]byte
	links   uint16
	migrate []uint16
	now     uint64
	rng     *rand.Rand
}

func newFakeSys() *fakeSys { return &fakeSys{rng: rand.New(rand.NewSource(1))} }

func (f *fakeSys) Send(l uint16, data []byte, carry ...uint16) error {
	f.sentOn = append(f.sentOn, l)
	f.sent = append(f.sent, append([]byte(nil), data...))
	var c uint16
	if len(carry) > 0 {
		c = carry[0]
	}
	f.carried = append(f.carried, c)
	return nil
}

func (f *fakeSys) Recv(max int) ([]byte, uint16, uint16, bool) {
	if len(f.inbox) == 0 {
		return nil, 0, 0, false
	}
	d := f.inbox[0]
	f.inbox = f.inbox[1:]
	if len(d) > max {
		d = d[:max]
	}
	return d, 0, 0, true
}

func (f *fakeSys) CreateLink(attrs uint16, off, length uint32) (uint16, error) {
	f.links++
	return f.links, nil
}
func (f *fakeSys) DestroyLink(l uint16) error { return nil }
func (f *fakeSys) PID() (uint16, uint16)      { return 3, 42 }
func (f *fakeSys) Now() uint64                { return f.now }
func (f *fakeSys) Print(d []byte)             { f.prints = append(f.prints, append([]byte(nil), d...)) }
func (f *fakeSys) MigrateSelf(m uint16) error { f.migrate = append(f.migrate, m); return nil }
func (f *fakeSys) Rand() uint32               { return f.rng.Uint32() }

func run(t *testing.T, src string) (*VM, *fakeSys, Status) {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	vm, _, err := p.NewVM(nil)
	if err != nil {
		t.Fatal(err)
	}
	sys := newFakeSys()
	var st Status
	for i := 0; i < 1000; i++ {
		_, st = vm.Step(sys, 10000)
		if st != Running && st != Yielded {
			return vm, sys, st
		}
	}
	t.Fatalf("program did not terminate; status %v, fault %v", st, vm.Fault)
	return nil, nil, st
}

func TestArithmetic(t *testing.T) {
	vm, _, st := run(t, `
		movi r1, 6
		movi r2, 7
		mul r0, r1, r2     ; 42
		addi r0, r0, 58    ; 100
		movi r3, 3
		div r4, r0, r3     ; 33
		mod r5, r0, r3     ; 1
		add r0, r4, r5     ; 34
		sys exit
	`)
	if st != Halted || vm.CPU.ExitCode != 34 {
		t.Fatalf("status %v exit %d, want Halted 34", st, vm.CPU.ExitCode)
	}
}

func TestLoopAndBranches(t *testing.T) {
	// Sum 1..10 = 55.
	vm, _, _ := run(t, `
	start:	movi r1, 0        ; i
		movi r2, 0        ; sum
	loop:	addi r1, r1, 1
		add r2, r2, r1
		cmpi r1, 10
		jlt loop
		mov r0, r2
		sys exit
	`)
	if vm.CPU.ExitCode != 55 {
		t.Fatalf("sum = %d, want 55", vm.CPU.ExitCode)
	}
}

func TestBitOps(t *testing.T) {
	vm, _, _ := run(t, `
		movi r1, 0xF0
		movi r2, 0x3C
		and r3, r1, r2    ; 0x30
		or  r4, r1, r2    ; 0xFC
		xor r5, r1, r2    ; 0xCC
		movi r6, 4
		shl r3, r3, r6    ; 0x300
		shr r4, r4, r6    ; 0xF
		add r0, r3, r4
		add r0, r0, r5
		sys exit
	`)
	want := int32(0x300 + 0xF + 0xCC)
	if vm.CPU.ExitCode != want {
		t.Fatalf("exit = %#x, want %#x", vm.CPU.ExitCode, want)
	}
}

func TestCallRetAndStack(t *testing.T) {
	// double(x) via call; compute double(double(5)) = 20.
	vm, _, _ := run(t, `
		movi r1, 5
		call double
		call double
		mov r0, r1
		sys exit
	double:	add r1, r1, r1
		ret
	`)
	if vm.CPU.ExitCode != 20 {
		t.Fatalf("exit = %d, want 20", vm.CPU.ExitCode)
	}
}

func TestPushPop(t *testing.T) {
	vm, _, _ := run(t, `
		movi r1, 11
		movi r2, 22
		push r1
		push r2
		pop r3           ; 22
		pop r4           ; 11
		sub r0, r3, r4   ; 11
		sys exit
	`)
	if vm.CPU.ExitCode != 11 {
		t.Fatalf("exit = %d, want 11", vm.CPU.ExitCode)
	}
}

func TestDataSegmentAndMemory(t *testing.T) {
	vm, _, _ := run(t, `
		.data
	vals:	.word 100, 200, 300
	buf:	.space 8
		.code
	start:	lea r1, vals
		ldw r2, r1, 0
		ldw r3, r1, 4
		ldw r4, r1, 8
		add r0, r2, r3
		add r0, r0, r4     ; 600
		lea r5, buf
		stw r0, r5, 0
		ldw r0, r5, 0
		sys exit
	`)
	if vm.CPU.ExitCode != 600 {
		t.Fatalf("exit = %d, want 600", vm.CPU.ExitCode)
	}
}

func TestByteOps(t *testing.T) {
	vm, _, _ := run(t, `
		.data
	s:	.asciz "AB"
		.code
	start:	lea r1, s
		ldb r2, r1, 0     ; 'A' = 65
		ldb r3, r1, 1     ; 'B' = 66
		movi r4, 'C'
		stb r4, r1, 0
		ldb r5, r1, 0     ; 67
		add r0, r2, r3
		add r0, r0, r5    ; 198
		sys exit
	`)
	if vm.CPU.ExitCode != 198 {
		t.Fatalf("exit = %d, want 198", vm.CPU.ExitCode)
	}
}

func TestPrintSyscall(t *testing.T) {
	_, sys, _ := run(t, `
		.data
	msg:	.asciz "hello"
		.code
	start:	lea r1, msg
		movi r2, 5
		sys print
		movi r0, 0
		sys exit
	`)
	if len(sys.prints) != 1 || string(sys.prints[0]) != "hello" {
		t.Fatalf("prints = %q", sys.prints)
	}
}

func TestSendRecvSyscalls(t *testing.T) {
	p := MustAssemble(`
		.data
	out:	.asciz "ping"
	in:	.space 32
		.code
	start:	movi r0, 5        ; link id
		lea r1, out
		movi r2, 4
		movi r3, 0
		sys send
		lea r1, in
		movi r2, 32
		sys recv
		sys exit          ; exit code = received length
	`)
	vm, _, err := p.NewVM(nil)
	if err != nil {
		t.Fatal(err)
	}
	sys := newFakeSys()
	_, st := vm.Step(sys, 10000)
	if st != Blocked {
		t.Fatalf("status %v, want Blocked on empty inbox", st)
	}
	if len(sys.sent) != 1 || string(sys.sent[0]) != "ping" || sys.sentOn[0] != 5 {
		t.Fatalf("send not performed: %q on %v", sys.sent, sys.sentOn)
	}
	// Re-Step still blocked (retry semantics).
	if _, st = vm.Step(sys, 10000); st != Blocked {
		t.Fatalf("second step: %v, want Blocked", st)
	}
	if len(sys.sent) != 1 {
		t.Fatal("blocked retry re-ran the send")
	}
	sys.inbox = append(sys.inbox, []byte("pong!"))
	_, st = vm.Step(sys, 10000)
	if st != Halted || vm.CPU.ExitCode != 5 {
		t.Fatalf("after wakeup: %v exit=%d, want Halted 5", st, vm.CPU.ExitCode)
	}
}

func TestYield(t *testing.T) {
	p := MustAssemble(`
		movi r0, 1
		sys yield
		movi r0, 2
		sys exit
	`)
	vm, _, _ := p.NewVM(nil)
	sys := newFakeSys()
	used, st := vm.Step(sys, 10000)
	if st != Yielded || used != 2 {
		t.Fatalf("yield: used=%d st=%v", used, st)
	}
	_, st = vm.Step(sys, 10000)
	if st != Halted || vm.CPU.ExitCode != 2 {
		t.Fatalf("after yield: %v %d", st, vm.CPU.ExitCode)
	}
}

func TestBudgetExhaustion(t *testing.T) {
	p := MustAssemble(`
	loop:	addi r1, r1, 1
		jmp loop
	`)
	vm, _, _ := p.NewVM(nil)
	sys := newFakeSys()
	used, st := vm.Step(sys, 100)
	if st != Running || used != 100 {
		t.Fatalf("used=%d st=%v, want 100 Running", used, st)
	}
	if vm.CPU.Steps != 100 {
		t.Fatalf("Steps = %d", vm.CPU.Steps)
	}
}

func TestGetPIDTimeRandMigrate(t *testing.T) {
	p := MustAssemble(`
		sys getpid       ; r0=3 r1=42
		push r0
		push r1
		sys time
		sys rand
		movi r0, 7
		sys migrate
		pop r0
		pop r1
		sys exit
	`)
	vm, _, _ := p.NewVM(nil)
	sys := newFakeSys()
	sys.now = 12345
	_, st := vm.Step(sys, 10000)
	if st != Halted {
		t.Fatalf("status %v fault %v", st, vm.Fault)
	}
	if vm.CPU.ExitCode != 42 {
		t.Fatalf("pid local = %d, want 42", vm.CPU.ExitCode)
	}
	if len(sys.migrate) != 1 || sys.migrate[0] != 7 {
		t.Fatalf("migrate calls: %v", sys.migrate)
	}
}

func TestFaults(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"div-zero", "movi r1, 0\n div r0, r0, r1"},
		{"mod-zero", "movi r1, 0\n mod r0, r0, r1"},
		{"bad-load", "movi r1, 100000\n ldw r0, r1, 0"},
		{"bad-store", "movi r1, -5\n stw r0, r1, 0"},
		{"wild-jump", "jmp 99999"},
		{"stack-underflow", "ret"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, err := Assemble(c.src)
			if err != nil {
				t.Fatal(err)
			}
			vm, _, _ := p.NewVM(nil)
			_, st := vm.Step(newFakeSys(), 1000)
			if st != Faulted || vm.Fault == nil {
				t.Fatalf("status %v fault %v, want Faulted", st, vm.Fault)
			}
		})
	}
}

func TestStackOverflowFault(t *testing.T) {
	p := MustAssemble(`
	loop:	push r0
		jmp loop
	`)
	vm, _, _ := p.NewVM(nil)
	var st Status
	for i := 0; i < 10000; i++ {
		if _, st = vm.Step(newFakeSys(), 1000); st == Faulted {
			return
		}
	}
	t.Fatalf("runaway push never faulted; status %v", st)
}

func TestInstrRoundTripProperty(t *testing.T) {
	f := func(op uint8, a, b, c uint8, imm int32) bool {
		in := Instr{Op: Op(op % uint8(numOps)), A: a % NumRegs, B: b % NumRegs, C: c % NumRegs, Imm: imm}
		var buf [InstrSize]byte
		in.Encode(buf[:])
		out, err := DecodeInstr(buf[:])
		return err == nil && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeInstrRejectsGarbage(t *testing.T) {
	if _, err := DecodeInstr([]byte{byte(numOps), 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("accepted illegal opcode")
	}
	if _, err := DecodeInstr([]byte{0, 9, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("accepted illegal register")
	}
	if _, err := DecodeInstr([]byte{0}); err == nil {
		t.Fatal("accepted short instruction")
	}
}

func TestCPUSnapshotRoundTrip(t *testing.T) {
	f := func(r0, r7 int32, pc, sp uint32, flags uint8, steps uint64) bool {
		in := CPU{PC: pc, SP: sp, Flags: flags, Steps: steps}
		in.R[0], in.R[7] = r0, r7
		b := in.Encode(nil)
		if len(b) != CPUWireSize {
			return false
		}
		out, rest, err := DecodeCPU(b)
		return err == nil && len(rest) == 0 && out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeCPU([]byte{1, 2}); err == nil {
		t.Fatal("accepted short CPU snapshot")
	}
}

// TestSnapshotResumeEquivalence is the heart of migration correctness at the
// VM level: freezing the machine between any two instructions, serializing
// CPU + memory image, and resuming in a fresh VM must produce the same
// final answer as an uninterrupted run.
func TestSnapshotResumeEquivalence(t *testing.T) {
	src := `
		.data
	tbl:	.space 400
		.code
	start:	movi r1, 0         ; i
		movi r2, 0         ; acc
	loop:	lea r3, tbl
		movi r4, 4
		mul r5, r1, r4
		add r3, r3, r5
		mul r6, r1, r1
		stw r6, r3, 0      ; tbl[i] = i*i
		ldw r7, r3, 0
		add r2, r2, r7     ; acc += i*i
		push r2
		pop r2
		addi r1, r1, 1
		cmpi r1, 100
		jlt loop
		mov r0, r2
		sys exit
	`
	p := MustAssemble(src)

	// Uninterrupted run.
	ref, _, _ := p.NewVM(nil)
	_, st := ref.Step(newFakeSys(), 1<<20)
	if st != Halted {
		t.Fatalf("reference run: %v (%v)", st, ref.Fault)
	}

	for _, cut := range []int{1, 7, 50, 333, 777, 1200} {
		vm, img, _ := p.NewVM(nil)
		sys := newFakeSys()
		remaining := cut
		for remaining > 0 {
			used, st := vm.Step(sys, remaining)
			remaining -= used
			if st == Halted {
				break
			}
			if st == Faulted {
				t.Fatalf("cut %d: faulted: %v", cut, vm.Fault)
			}
		}
		// "Migrate": serialize and rebuild.
		cpuSnap := vm.CPU.Encode(nil)
		memSnap, err := img.Bytes()
		if err != nil {
			t.Fatal(err)
		}
		img2 := memory.NewImage(len(memSnap), nil)
		if err := img2.WriteAt(memSnap, 0); err != nil {
			t.Fatal(err)
		}
		cpu2, _, err := DecodeCPU(cpuSnap)
		if err != nil {
			t.Fatal(err)
		}
		vm2 := &VM{CPU: cpu2, Mem: img2}
		for i := 0; ; i++ {
			if i > 10000 {
				t.Fatalf("cut %d: resumed VM never halted", cut)
			}
			if _, st := vm2.Step(sys, 1000); st == Halted {
				break
			} else if st == Faulted {
				t.Fatalf("cut %d: resumed VM faulted: %v", cut, vm2.Fault)
			}
		}
		if vm2.CPU.ExitCode != ref.CPU.ExitCode {
			t.Fatalf("cut %d: exit %d, uninterrupted run gave %d",
				cut, vm2.CPU.ExitCode, ref.CPU.ExitCode)
		}
	}
}

func TestSnapshotResumeEquivalenceProperty(t *testing.T) {
	p := MustAssemble(`
	start:	movi r1, 1
		movi r2, 0
	loop:	mul r3, r1, r1
		add r2, r2, r3
		push r2
		pop r2
		addi r1, r1, 1
		cmpi r1, 60
		jlt loop
		mov r0, r2
		sys exit
	`)
	ref, _, _ := p.NewVM(nil)
	ref.Step(newFakeSys(), 1<<20)

	f := func(cut uint16) bool {
		vm, img, _ := p.NewVM(nil)
		left := int(cut%500) + 1
		for left > 0 {
			used, st := vm.Step(newFakeSys(), left)
			left -= used
			if st == Halted {
				// Finished before the migration point; a dead
				// process is never migrated.
				return vm.CPU.ExitCode == ref.CPU.ExitCode
			}
		}
		snap, _ := img.Bytes()
		img2 := memory.NewImage(len(snap), nil)
		img2.WriteAt(snap, 0)
		vm2 := &VM{CPU: vm.CPU, Mem: img2}
		for i := 0; i < 10000; i++ {
			if _, st := vm2.Step(newFakeSys(), 1000); st == Halted {
				return vm2.CPU.ExitCode == ref.CPU.ExitCode
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeImmediatesAndHex(t *testing.T) {
	vm, _, _ := run(t, `
		movi r1, -10
		movi r2, 0x10
		add r0, r1, r2    ; 6
		sys exit
	`)
	if vm.CPU.ExitCode != 6 {
		t.Fatalf("exit = %d, want 6", vm.CPU.ExitCode)
	}
}

func TestSignedComparisons(t *testing.T) {
	vm, _, _ := run(t, `
		movi r1, -5
		cmpi r1, 3
		jlt neg           ; -5 < 3 must take the signed branch
		movi r0, 0
		sys exit
	neg:	movi r0, 1
		sys exit
	`)
	if vm.CPU.ExitCode != 1 {
		t.Fatal("signed comparison broken")
	}
}

func TestAssemblerErrors(t *testing.T) {
	cases := []string{
		"bogus r1, r2",
		"movi r9, 1",
		"movi r1",
		"jmp nowhere",
		"lbl: nop\nlbl: nop",
		".data\nx: .word\n.code\nnop",
		"sys nosuchcall",
		".stack abc",
		".data\nx: .asciz unquoted\n.code\nnop",
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("assembled invalid source %q", src)
		}
	}
}

func TestAssemblerCommentsAndLiterals(t *testing.T) {
	p, err := Assemble(`
		; full line comment
		.data
	s:	.asciz "semi ; inside"   ; trailing
		.code
	start:	movi r1, ';'
		mov r0, r1
		sys exit
	`)
	if err != nil {
		t.Fatal(err)
	}
	vm, _, _ := p.NewVM(nil)
	vm.Step(newFakeSys(), 100)
	if vm.CPU.ExitCode != ';' {
		t.Fatalf("char literal broken: %d", vm.CPU.ExitCode)
	}
	// The string retained its semicolon.
	base, _ := p.Label("s")
	img, _ := p.BuildImage(nil)
	b := make([]byte, 13)
	img.ReadAt(b, int(base))
	if !bytes.Equal(b, []byte("semi ; inside")) {
		t.Fatalf("data = %q", b)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	p := MustAssemble(`
	start:	movi r0, 42
		addi r1, r0, -1
		cmp r0, r1
		jne start
		sys exit
	`)
	text := p.Disassemble()
	for _, want := range []string{"movi r0, 42", "addi r1, r0, -1", "cmp r0, r1", "sys 0"} {
		if !contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }

func TestEntryPoint(t *testing.T) {
	p := MustAssemble(`
	helper:	movi r0, 1
		sys exit
	start:	movi r0, 2
		sys exit
	`)
	if p.Entry != 2*InstrSize {
		t.Fatalf("entry = %d, want %d", p.Entry, 2*InstrSize)
	}
	vm, _, _ := p.NewVM(nil)
	vm.Step(newFakeSys(), 100)
	if vm.CPU.ExitCode != 2 {
		t.Fatal("did not start at 'start'")
	}
}

func TestImageSizeRounding(t *testing.T) {
	p := MustAssemble("nop\nsys exit")
	if p.ImageSize()%memory.PageSize != 0 {
		t.Fatalf("image size %d not page aligned", p.ImageSize())
	}
}

func TestStatusString(t *testing.T) {
	for st, want := range map[Status]string{Running: "running", Blocked: "blocked", Halted: "halted", Faulted: "faulted", Yielded: "yielded"} {
		if st.String() != want {
			t.Errorf("%d.String() = %q", st, st.String())
		}
	}
}

func ExampleAssemble() {
	p := MustAssemble(`
	start:	movi r1, 6
		movi r2, 7
		mul r0, r1, r2
		sys exit
	`)
	vm, _, _ := p.NewVM(nil)
	vm.Step(newFakeSys(), 100)
	fmt.Println(vm.CPU.ExitCode)
	// Output: 42
}

package dvm

import (
	"testing"
)

// TestRecursiveFibonacci exercises deep CALL/RET nesting and the stack.
func TestRecursiveFibonacci(t *testing.T) {
	// fib(n) with n in r1, result in r0; clobbers r2, r3.
	p := MustAssemble(`
		.stack 2048
	start:	movi r1, 15
		call fib
		sys exit
	fib:	cmpi r1, 2
		jge rec
		mov r0, r1        ; fib(0)=0, fib(1)=1
		ret
	rec:	push r1
		addi r1, r1, -1
		call fib          ; r0 = fib(n-1)
		pop r1
		push r0
		addi r1, r1, -2
		call fib          ; r0 = fib(n-2)
		pop r3
		add r0, r0, r3
		ret
	`)
	vm, _, err := p.NewVM(nil)
	if err != nil {
		t.Fatal(err)
	}
	sys := newFakeSys()
	for i := 0; i < 10000; i++ {
		if _, st := vm.Step(sys, 10000); st == Halted {
			if vm.CPU.ExitCode != 610 { // fib(15)
				t.Fatalf("fib(15) = %d, want 610", vm.CPU.ExitCode)
			}
			return
		} else if st == Faulted {
			t.Fatalf("faulted: %v", vm.Fault)
		}
	}
	t.Fatal("fib never finished")
}

// TestStringReverse exercises byte loads/stores in a loop.
func TestStringReverse(t *testing.T) {
	p := MustAssemble(`
		.data
	s:	.asciz "demosmp"
		.code
	start:	lea r1, s         ; left
		lea r2, s
		addi r2, r2, 6    ; right
	loop:	cmp r1, r2
		jge done
		ldb r3, r1, 0
		ldb r4, r2, 0
		stb r4, r1, 0
		stb r3, r2, 0
		addi r1, r1, 1
		addi r2, r2, -1
		jmp loop
	done:	lea r1, s
		movi r2, 7
		sys print
		movi r0, 0
		sys exit
	`)
	vm, _, _ := p.NewVM(nil)
	sys := newFakeSys()
	if _, st := vm.Step(sys, 100000); st != Halted {
		t.Fatalf("status %v (%v)", st, vm.Fault)
	}
	if len(sys.prints) != 1 || string(sys.prints[0]) != "pmsomed" {
		t.Fatalf("reversed = %q, want %q", sys.prints, "pmsomed")
	}
}

// TestSelfModifyingCode: code lives in the same image as data, so a program
// can patch itself — and the patch must survive a snapshot/resume (it is
// part of the moved program image).
func TestSelfModifyingCode(t *testing.T) {
	p := MustAssemble(`
	start:	movi r0, 111     ; instruction to be patched (index 0)
		jmp check
	check:	cmpi r0, 111
		jne done
		; patch instruction 0's immediate (bytes 4..7 of the image)
		movi r1, 222
		movi r2, 0
		stw r1, r2, 4
		jmp start
	done:	sys exit
	`)
	vm, _, _ := p.NewVM(nil)
	sys := newFakeSys()
	if _, st := vm.Step(sys, 10000); st != Halted {
		t.Fatalf("status %v (%v)", st, vm.Fault)
	}
	if vm.CPU.ExitCode != 222 {
		t.Fatalf("exit %d, want the patched 222", vm.CPU.ExitCode)
	}
}

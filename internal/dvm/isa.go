// Package dvm implements the DEMOS virtual machine: a small register
// machine whose complete execution state — code, data, stack, registers —
// is byte-serializable.
//
// The paper's processes are native Z8000 programs; moving one means copying
// its program, data, stack, and state to another processor (Figure 2-2,
// §3.1 step 5). Reproducing that in Go requires a program representation
// that can be frozen between two instructions, shipped as bytes, and
// resumed elsewhere; the DVM is that representation. User workloads are
// written in its assembly (see asm.go) and trap into the hosting kernel for
// the DEMOS kernel calls (send, receive, link management, migration).
package dvm

import (
	"encoding/binary"
	"fmt"
)

// Op is a DVM opcode.
type Op uint8

const (
	NOP Op = iota
	HALT
	MOVI // a = imm
	MOV  // a = b
	ADD  // a = b + c
	SUB
	MUL
	DIV
	MOD
	AND
	OR
	XOR
	SHL
	SHR
	ADDI // a = b + imm
	CMP  // flags = sign(a - b)
	CMPI // flags = sign(a - imm)
	JMP  // pc = imm
	JEQ
	JNE
	JLT
	JLE
	JGT
	JGE
	CALL // push pc; pc = imm
	RET  // pc = pop
	PUSH // push a
	POP  // a = pop
	LDW  // a = mem32[b + imm]
	STW  // mem32[b + imm] = a
	LDB  // a = mem8[b + imm] (zero extended)
	STB  // mem8[b + imm] = a & 0xFF
	SYS  // kernel trap, number in imm
	numOps
)

var opNames = [numOps]string{
	"nop", "halt", "movi", "mov", "add", "sub", "mul", "div", "mod",
	"and", "or", "xor", "shl", "shr", "addi", "cmp", "cmpi",
	"jmp", "jeq", "jne", "jlt", "jle", "jgt", "jge",
	"call", "ret", "push", "pop", "ldw", "stw", "ldb", "stb", "sys",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Syscall numbers for the SYS instruction — the DEMOS kernel calls.
const (
	SysExit    = 0  // exit with code R0
	SysYield   = 1  // surrender the rest of the quantum
	SysGetPID  = 2  // R0 = creating machine, R1 = local uid
	SysSend    = 3  // send on link R0, buffer R1, length R2, carried link R3 (0 = none); R0 = 0 ok / -1 error
	SysRecv    = 4  // receive into buffer R1, capacity R2; blocks; R0 = length, R3 = carried link id (0 = none), R4 = sender machine hint
	SysMkLink  = 5  // create link: attrs R1, area offset R2, area length R3; R0 = link id or -1
	SysRmLink  = 6  // destroy link R0; R0 = 0 ok / -1
	SysPrint   = 7  // print buffer R1, length R2 to the trace console
	SysTime    = 8  // R0 = low 32 bits of simulated µs
	SysMigrate = 9  // request own migration to machine R0; R0 = 0 ok / -1
	SysRand    = 10 // R0 = pseudo-random 32 bits
	SysSend2   = 11 // like SysSend but carrying two links: R3 and R5 (0 = none); needed for file I/O (data area + reply)
)

// InstrSize is the fixed encoded instruction size in bytes.
const InstrSize = 8

// Instr is one decoded instruction.
type Instr struct {
	Op      Op
	A, B, C uint8 // register operands
	Imm     int32
}

// Encode writes the 8-byte form of the instruction into b.
func (in Instr) Encode(b []byte) {
	b[0] = byte(in.Op)
	b[1] = in.A
	b[2] = in.B
	b[3] = in.C
	binary.LittleEndian.PutUint32(b[4:], uint32(in.Imm))
}

// DecodeInstr parses an 8-byte instruction.
func DecodeInstr(b []byte) (Instr, error) {
	if len(b) < InstrSize {
		return Instr{}, fmt.Errorf("dvm: short instruction: %d bytes", len(b))
	}
	in := Instr{
		Op: Op(b[0]), A: b[1], B: b[2], C: b[3],
		Imm: int32(binary.LittleEndian.Uint32(b[4:])),
	}
	if in.Op >= numOps {
		return Instr{}, fmt.Errorf("dvm: illegal opcode %d", b[0])
	}
	if in.A >= NumRegs || in.B >= NumRegs || in.C >= NumRegs {
		return Instr{}, fmt.Errorf("dvm: illegal register in %v", in.Op)
	}
	return in, nil
}

// String disassembles the instruction.
func (in Instr) String() string {
	r := func(x uint8) string { return fmt.Sprintf("r%d", x) }
	switch in.Op {
	case NOP, HALT, RET:
		return in.Op.String()
	case MOVI, CMPI:
		return fmt.Sprintf("%s %s, %d", in.Op, r(in.A), in.Imm)
	case MOV, CMP:
		return fmt.Sprintf("%s %s, %s", in.Op, r(in.A), r(in.B))
	case ADD, SUB, MUL, DIV, MOD, AND, OR, XOR, SHL, SHR:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, r(in.A), r(in.B), r(in.C))
	case ADDI:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, r(in.A), r(in.B), in.Imm)
	case JMP, JEQ, JNE, JLT, JLE, JGT, JGE, CALL:
		return fmt.Sprintf("%s %d", in.Op, in.Imm)
	case PUSH, POP:
		return fmt.Sprintf("%s %s", in.Op, r(in.A))
	case LDW, STW, LDB, STB:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, r(in.A), r(in.B), in.Imm)
	case SYS:
		return fmt.Sprintf("sys %d", in.Imm)
	default:
		return fmt.Sprintf("%s a=%d b=%d c=%d imm=%d", in.Op, in.A, in.B, in.C, in.Imm)
	}
}

package dvm

import (
	"encoding/binary"
	"fmt"
)

// NumRegs is the number of general registers.
const NumRegs = 8

// Mem is the VM's view of its process memory image; the code segment starts
// at address 0, with data above it and the stack at the top growing down.
// memory.Image satisfies this interface.
type Mem interface {
	ReadAt(b []byte, off int) error
	WriteAt(b []byte, off int) error
	Size() int
}

// Status is the result of a Step call.
type Status uint8

const (
	// Running means the instruction budget was exhausted mid-program.
	Running Status = iota
	// Yielded means the program voluntarily gave up its quantum.
	Yielded
	// Blocked means the program is waiting in a receive; re-Step it when
	// a message arrives. PC still points at the SYS instruction, so the
	// wait survives migration unchanged ("the process will be in the
	// same state when it reaches its destination processor", §3.1).
	Blocked
	// Halted means the program exited; code in CPU.ExitCode.
	Halted
	// Faulted means the program hit an illegal instruction, address, or
	// arithmetic fault; details in VM.Fault.
	Faulted
)

func (s Status) String() string {
	switch s {
	case Running:
		return "running"
	case Yielded:
		return "yielded"
	case Blocked:
		return "blocked"
	case Halted:
		return "halted"
	case Faulted:
		return "faulted"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Flag bits.
const (
	flagZ = 1 << 0 // last comparison was equal
	flagN = 1 << 1 // last comparison was negative
)

// CPU is the register state of a DVM program: the portion of the process
// state that travels in the swappable state during migration.
type CPU struct {
	R        [NumRegs]int32
	PC       uint32 // byte address of the next instruction
	SP       uint32 // stack pointer; grows down from the top of the image
	Flags    uint8
	ExitCode int32
	Steps    uint64 // instructions executed (accounting)
}

// CPUWireSize is the encoded size of a CPU snapshot.
const CPUWireSize = NumRegs*4 + 4 + 4 + 1 + 4 + 8

// Encode appends the CPU snapshot to b.
func (c *CPU) Encode(b []byte) []byte {
	for _, r := range c.R {
		b = binary.LittleEndian.AppendUint32(b, uint32(r))
	}
	b = binary.LittleEndian.AppendUint32(b, c.PC)
	b = binary.LittleEndian.AppendUint32(b, c.SP)
	b = append(b, c.Flags)
	b = binary.LittleEndian.AppendUint32(b, uint32(c.ExitCode))
	b = binary.LittleEndian.AppendUint64(b, c.Steps)
	return b
}

// DecodeCPU parses a CPU snapshot from the front of b, returning the rest.
func DecodeCPU(b []byte) (CPU, []byte, error) {
	var c CPU
	if len(b) < CPUWireSize {
		return c, b, fmt.Errorf("dvm: short CPU snapshot: %d bytes", len(b))
	}
	for i := range c.R {
		c.R[i] = int32(binary.LittleEndian.Uint32(b))
		b = b[4:]
	}
	c.PC = binary.LittleEndian.Uint32(b)
	c.SP = binary.LittleEndian.Uint32(b[4:])
	c.Flags = b[8]
	c.ExitCode = int32(binary.LittleEndian.Uint32(b[9:]))
	c.Steps = binary.LittleEndian.Uint64(b[13:])
	return c, b[21:], nil
}

// Syscalls is the kernel-call interface the hosting kernel provides to a
// running program. Every method corresponds to a SYS trap.
type Syscalls interface {
	// Send transmits data over link l, optionally carrying other links
	// (zero ids are skipped).
	Send(l uint16, data []byte, carry ...uint16) error
	// Recv returns the next queued message, or ok=false to block the
	// process. max bounds the data copied out.
	Recv(max int) (data []byte, carried uint16, senderMachine uint16, ok bool)
	// CreateLink makes a new link addressing this process.
	CreateLink(attrs uint16, areaOff, areaLen uint32) (uint16, error)
	// DestroyLink removes link l from the process's table.
	DestroyLink(l uint16) error
	// PID returns the process identity (creating machine, local uid).
	PID() (uint16, uint16)
	// Now returns the simulated time in microseconds.
	Now() uint64
	// Print writes debug output to the trace console.
	Print(data []byte)
	// MigrateSelf asks the process manager to migrate this process
	// ("It is of course possible for a process to request its own
	// migration", §3.1).
	MigrateSelf(machine uint16) error
	// Rand returns deterministic pseudo-randomness.
	Rand() uint32
}

// VM executes a DVM program against a memory image and a syscall handler.
type VM struct {
	CPU   CPU
	Mem   Mem
	Fault error // set when Step returns Faulted
}

// New returns a VM with PC at entry and SP at the top of the image.
func New(mem Mem, entry uint32) *VM {
	return &VM{Mem: mem, CPU: CPU{PC: entry, SP: uint32(mem.Size())}}
}

func (v *VM) fault(format string, args ...any) Status {
	v.Fault = fmt.Errorf("dvm: %s (pc=%d)", fmt.Sprintf(format, args...), v.CPU.PC)
	return Faulted
}

func (v *VM) read32(a uint32) (int32, error) {
	var b [4]byte
	if err := v.Mem.ReadAt(b[:], int(a)); err != nil {
		return 0, err
	}
	return int32(binary.LittleEndian.Uint32(b[:])), nil
}

func (v *VM) write32(a uint32, x int32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(x))
	return v.Mem.WriteAt(b[:], int(a))
}

func (v *VM) push(x int32) error {
	if v.CPU.SP < 4 {
		return fmt.Errorf("stack overflow")
	}
	v.CPU.SP -= 4
	return v.write32(v.CPU.SP, x)
}

func (v *VM) pop() (int32, error) {
	x, err := v.read32(v.CPU.SP)
	if err != nil {
		return 0, fmt.Errorf("stack underflow: %w", err)
	}
	v.CPU.SP += 4
	return x, nil
}

func (v *VM) setFlags(d int64) {
	v.CPU.Flags = 0
	if d == 0 {
		v.CPU.Flags |= flagZ
	}
	if d < 0 {
		v.CPU.Flags |= flagN
	}
}

// Step executes up to budget instructions. It returns the number actually
// executed and the resulting status. A Blocked return leaves PC on the SYS
// instruction so the receive retries on the next Step — this is what makes
// a blocked process migratable without special cases.
func (v *VM) Step(sys Syscalls, budget int) (int, Status) {
	cpu := &v.CPU
	used := 0
	var ibuf [InstrSize]byte
	for used < budget {
		if err := v.Mem.ReadAt(ibuf[:], int(cpu.PC)); err != nil {
			return used, v.fault("instruction fetch: %v", err)
		}
		in, err := DecodeInstr(ibuf[:])
		if err != nil {
			return used, v.fault("%v", err)
		}
		next := cpu.PC + InstrSize
		used++
		cpu.Steps++

		switch in.Op {
		case NOP:
		case HALT:
			cpu.ExitCode = cpu.R[0]
			return used, Halted
		case MOVI:
			cpu.R[in.A] = in.Imm
		case MOV:
			cpu.R[in.A] = cpu.R[in.B]
		case ADD:
			cpu.R[in.A] = cpu.R[in.B] + cpu.R[in.C]
		case SUB:
			cpu.R[in.A] = cpu.R[in.B] - cpu.R[in.C]
		case MUL:
			cpu.R[in.A] = cpu.R[in.B] * cpu.R[in.C]
		case DIV:
			if cpu.R[in.C] == 0 {
				return used, v.fault("division by zero")
			}
			cpu.R[in.A] = cpu.R[in.B] / cpu.R[in.C]
		case MOD:
			if cpu.R[in.C] == 0 {
				return used, v.fault("division by zero")
			}
			cpu.R[in.A] = cpu.R[in.B] % cpu.R[in.C]
		case AND:
			cpu.R[in.A] = cpu.R[in.B] & cpu.R[in.C]
		case OR:
			cpu.R[in.A] = cpu.R[in.B] | cpu.R[in.C]
		case XOR:
			cpu.R[in.A] = cpu.R[in.B] ^ cpu.R[in.C]
		case SHL:
			cpu.R[in.A] = cpu.R[in.B] << (uint32(cpu.R[in.C]) & 31)
		case SHR:
			cpu.R[in.A] = int32(uint32(cpu.R[in.B]) >> (uint32(cpu.R[in.C]) & 31))
		case ADDI:
			cpu.R[in.A] = cpu.R[in.B] + in.Imm
		case CMP:
			v.setFlags(int64(cpu.R[in.A]) - int64(cpu.R[in.B]))
		case CMPI:
			v.setFlags(int64(cpu.R[in.A]) - int64(in.Imm))
		case JMP:
			next = uint32(in.Imm)
		case JEQ:
			if cpu.Flags&flagZ != 0 {
				next = uint32(in.Imm)
			}
		case JNE:
			if cpu.Flags&flagZ == 0 {
				next = uint32(in.Imm)
			}
		case JLT:
			if cpu.Flags&flagN != 0 {
				next = uint32(in.Imm)
			}
		case JLE:
			if cpu.Flags&(flagN|flagZ) != 0 {
				next = uint32(in.Imm)
			}
		case JGT:
			if cpu.Flags&(flagN|flagZ) == 0 {
				next = uint32(in.Imm)
			}
		case JGE:
			if cpu.Flags&flagN == 0 {
				next = uint32(in.Imm)
			}
		case CALL:
			if err := v.push(int32(next)); err != nil {
				return used, v.fault("call: %v", err)
			}
			next = uint32(in.Imm)
		case RET:
			x, err := v.pop()
			if err != nil {
				return used, v.fault("ret: %v", err)
			}
			next = uint32(x)
		case PUSH:
			if err := v.push(cpu.R[in.A]); err != nil {
				return used, v.fault("push: %v", err)
			}
		case POP:
			x, err := v.pop()
			if err != nil {
				return used, v.fault("pop: %v", err)
			}
			cpu.R[in.A] = x
		case LDW:
			x, err := v.read32(uint32(cpu.R[in.B] + in.Imm))
			if err != nil {
				return used, v.fault("ldw: %v", err)
			}
			cpu.R[in.A] = x
		case STW:
			if err := v.write32(uint32(cpu.R[in.B]+in.Imm), cpu.R[in.A]); err != nil {
				return used, v.fault("stw: %v", err)
			}
		case LDB:
			var b [1]byte
			if err := v.Mem.ReadAt(b[:], int(cpu.R[in.B]+in.Imm)); err != nil {
				return used, v.fault("ldb: %v", err)
			}
			cpu.R[in.A] = int32(b[0])
		case STB:
			b := [1]byte{byte(cpu.R[in.A])}
			if err := v.Mem.WriteAt(b[:], int(cpu.R[in.B]+in.Imm)); err != nil {
				return used, v.fault("stb: %v", err)
			}
		case SYS:
			st, err := v.syscall(sys, in.Imm, &next)
			if err != nil {
				return used, v.fault("sys %d: %v", in.Imm, err)
			}
			if st != Running {
				if st == Blocked {
					// Retry the SYS on the next Step; do not
					// advance PC and do not count the retry
					// attempt as progress.
					cpu.Steps--
					return used - 1, Blocked
				}
				cpu.PC = next
				return used, st
			}
		default:
			return used, v.fault("illegal opcode %v", in.Op)
		}
		cpu.PC = next
	}
	return used, Running
}

// syscall dispatches a SYS trap. It returns Running to continue, or a
// terminal/pausing status.
func (v *VM) syscall(sys Syscalls, num int32, next *uint32) (Status, error) {
	cpu := &v.CPU
	switch num {
	case SysExit:
		cpu.ExitCode = cpu.R[0]
		return Halted, nil
	case SysYield:
		return Yielded, nil
	case SysGetPID:
		c, l := sys.PID()
		cpu.R[0], cpu.R[1] = int32(c), int32(l)
	case SysSend, SysSend2:
		data, err := v.bytesArg(cpu.R[1], cpu.R[2])
		if err != nil {
			return Running, err
		}
		carries := []uint16{uint16(cpu.R[3])}
		if num == SysSend2 {
			carries = append(carries, uint16(cpu.R[5]))
		}
		if err := sys.Send(uint16(cpu.R[0]), data, carries...); err != nil {
			cpu.R[0] = -1
		} else {
			cpu.R[0] = 0
		}
	case SysRecv:
		if cpu.R[2] < 0 {
			return Running, fmt.Errorf("negative receive capacity")
		}
		data, carried, sender, ok := sys.Recv(int(cpu.R[2]))
		if !ok {
			return Blocked, nil
		}
		if len(data) > 0 {
			if err := v.Mem.WriteAt(data, int(uint32(cpu.R[1]))); err != nil {
				return Running, err
			}
		}
		cpu.R[0] = int32(len(data))
		cpu.R[3] = int32(carried)
		cpu.R[4] = int32(sender)
	case SysMkLink:
		id, err := sys.CreateLink(uint16(cpu.R[1]), uint32(cpu.R[2]), uint32(cpu.R[3]))
		if err != nil {
			cpu.R[0] = -1
		} else {
			cpu.R[0] = int32(id)
		}
	case SysRmLink:
		if err := sys.DestroyLink(uint16(cpu.R[0])); err != nil {
			cpu.R[0] = -1
		} else {
			cpu.R[0] = 0
		}
	case SysPrint:
		data, err := v.bytesArg(cpu.R[1], cpu.R[2])
		if err != nil {
			return Running, err
		}
		sys.Print(data)
	case SysTime:
		cpu.R[0] = int32(uint32(sys.Now()))
	case SysMigrate:
		if err := sys.MigrateSelf(uint16(cpu.R[0])); err != nil {
			cpu.R[0] = -1
		} else {
			cpu.R[0] = 0
		}
	case SysRand:
		cpu.R[0] = int32(sys.Rand())
	default:
		return Running, fmt.Errorf("unknown syscall")
	}
	return Running, nil
}

func (v *VM) bytesArg(addrReg, lenReg int32) ([]byte, error) {
	if lenReg < 0 {
		return nil, fmt.Errorf("negative length")
	}
	b := make([]byte, lenReg)
	if err := v.Mem.ReadAt(b, int(uint32(addrReg))); err != nil {
		return nil, err
	}
	return b, nil
}

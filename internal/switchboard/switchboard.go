// Package switchboard implements the DEMOS/MP switchboard: "a server that
// distributes links by name. It is used by the system and user processes to
// connect arbitrary processes together" (§2.3).
//
// Every process is born with a link to the switchboard (conventionally link
// id 1). A process registers a service by sending a Register request
// carrying a link to itself; clients look the name up and receive a copy of
// that link carried in the reply. Because links are context-independent,
// the copies work no matter who holds them — and keep working across
// migrations of either party.
package switchboard

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"strings"

	"demosmp/internal/link"
	"demosmp/internal/proc"
)

// Kind is the registry name of the switchboard body.
const Kind = "switchboard"

// Request opcodes (first byte of a request body).
const (
	opRegister = 'R' // body: name; carries the link to register
	opLookup   = 'L' // body: name; carries a reply link
	opList     = 'D' // carries a reply link; reply: newline-joined names
)

// Reply status bytes.
const (
	ReplyOK  = 'O'
	ReplyErr = 'E'
)

// RegisterMsg builds a Register request body for name.
func RegisterMsg(name string) []byte { return append([]byte{opRegister}, name...) }

// LookupMsg builds a Lookup request body for name.
func LookupMsg(name string) []byte { return append([]byte{opLookup}, name...) }

// ListMsg builds a List request body.
func ListMsg() []byte { return []byte{opList} }

// ParseReply splits a switchboard reply into status and payload.
func ParseReply(body []byte) (ok bool, payload []byte, err error) {
	if len(body) < 1 {
		return false, nil, fmt.Errorf("switchboard: empty reply")
	}
	return body[0] == ReplyOK, body[1:], nil
}

// Server is the switchboard body. Its state is the name table; the link
// values live in the process's kernel-held link table, so the snapshot
// (names -> link ids) plus the migrated link table reconstruct the service
// exactly — the switchboard itself is migratable.
type Server struct {
	Names map[string]link.ID
}

// New returns an empty switchboard body.
func New() *Server { return &Server{Names: make(map[string]link.ID)} }

// Kind implements proc.Body.
func (s *Server) Kind() string { return Kind }

// Step implements proc.Body.
func (s *Server) Step(ctx proc.Context, budget int) (int, proc.Status) {
	for {
		d, ok := ctx.Recv()
		if !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
		if len(d.Body) < 1 {
			continue
		}
		op, name := d.Body[0], string(d.Body[1:])
		switch op {
		case opRegister:
			s.register(ctx, name, d)
		case opLookup:
			s.lookup(ctx, name, d)
		case opList:
			s.list(ctx, d)
		}
	}
}

func (s *Server) register(ctx proc.Context, name string, d proc.Delivery) {
	if len(d.Carried) == 0 || name == "" {
		return
	}
	if old, dup := s.Names[name]; dup {
		ctx.DestroyLink(old)
	}
	s.Names[name] = d.Carried[0]
	ctx.Logf("switchboard: %q -> %v", name, d.From.ID)
	// Surplus carried links are dropped to keep the table tidy.
	for _, extra := range d.Carried[1:] {
		ctx.DestroyLink(extra)
	}
}

func (s *Server) lookup(ctx proc.Context, name string, d proc.Delivery) {
	if len(d.Carried) == 0 {
		return // nowhere to reply
	}
	reply := d.Carried[0]
	id, ok := s.Names[name]
	if !ok {
		ctx.Send(reply, []byte{ReplyErr})
		return
	}
	// Reply carries a *copy* of the registered link.
	ctx.Send(reply, []byte{ReplyOK}, id)
}

func (s *Server) list(ctx proc.Context, d proc.Delivery) {
	if len(d.Carried) == 0 {
		return
	}
	names := make([]string, 0, len(s.Names))
	for n := range s.Names {
		names = append(names, n)
	}
	sort.Strings(names)
	body := append([]byte{ReplyOK}, strings.Join(names, "\n")...)
	ctx.Send(d.Carried[0], body)
}

// Snapshot implements proc.Body.
func (s *Server) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(s)
	return buf.Bytes(), err
}

// Restore implements proc.Body.
func (s *Server) Restore(data []byte) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(s)
}

package switchboard_test

import (
	"strings"
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/link"
	"demosmp/internal/proc"
	"demosmp/internal/proctest"
	"demosmp/internal/switchboard"
)

func step(t *testing.T, s proc.Body, ctx *proctest.Ctx) {
	t.Helper()
	if _, st := s.Step(ctx, 1); st.State != proc.Blocked {
		t.Fatalf("switchboard stopped: %+v", st)
	}
}

func client(l uint16) addr.ProcessAddr {
	return addr.At(addr.ProcessID{Creator: 2, Local: addr.LocalUID(l)}, 2)
}

func serviceLink(l uint16) link.Link {
	return link.Link{Addr: addr.At(addr.ProcessID{Creator: 3, Local: addr.LocalUID(l)}, 3)}
}

// install places a link in the fake table as if it had been carried in.
func install(ctx *proctest.Ctx, l link.Link) link.ID {
	id, _ := ctx.MintLink(l)
	return id
}

func TestRegisterAndLookup(t *testing.T) {
	s := switchboard.New()
	ctx := proctest.New()

	svc := install(ctx, serviceLink(7))
	ctx.PushBody(client(1), switchboard.RegisterMsg("fileserver"), svc)
	step(t, s, ctx)

	reply := install(ctx, link.Link{Addr: client(1), Attrs: link.AttrReply})
	ctx.PushBody(client(1), switchboard.LookupMsg("fileserver"), reply)
	step(t, s, ctx)

	sent, ok := ctx.LastSend()
	if !ok || sent.On != reply {
		t.Fatalf("no reply: %+v", sent)
	}
	good, _, err := switchboard.ParseReply(sent.Body)
	if err != nil || !good {
		t.Fatalf("reply: %v %v", sent.Body, err)
	}
	if len(sent.Carry) != 1 || sent.Carry[0] != svc {
		t.Fatalf("reply must carry the registered link: %+v", sent)
	}
}

func TestLookupMissing(t *testing.T) {
	s := switchboard.New()
	ctx := proctest.New()
	reply := install(ctx, link.Link{Addr: client(1), Attrs: link.AttrReply})
	ctx.PushBody(client(1), switchboard.LookupMsg("ghost"), reply)
	step(t, s, ctx)
	sent, _ := ctx.LastSend()
	good, _, _ := switchboard.ParseReply(sent.Body)
	if good {
		t.Fatal("lookup of missing name succeeded")
	}
}

func TestReRegisterReplaces(t *testing.T) {
	s := switchboard.New()
	ctx := proctest.New()
	old := install(ctx, serviceLink(1))
	neu := install(ctx, serviceLink(2))
	ctx.PushBody(client(1), switchboard.RegisterMsg("svc"), old)
	ctx.PushBody(client(1), switchboard.RegisterMsg("svc"), neu)
	step(t, s, ctx)
	if s.Names["svc"] != neu {
		t.Fatalf("name points at %v, want %v", s.Names["svc"], neu)
	}
	// The replaced link was destroyed.
	if _, ok := ctx.Links[old]; ok {
		t.Fatal("old link leaked")
	}
}

func TestList(t *testing.T) {
	s := switchboard.New()
	ctx := proctest.New()
	ctx.PushBody(client(1), switchboard.RegisterMsg("b"), install(ctx, serviceLink(1)))
	ctx.PushBody(client(1), switchboard.RegisterMsg("a"), install(ctx, serviceLink(2)))
	reply := install(ctx, link.Link{Addr: client(1), Attrs: link.AttrReply})
	ctx.PushBody(client(1), switchboard.ListMsg(), reply)
	step(t, s, ctx)
	sent, _ := ctx.LastSend()
	good, payload, _ := switchboard.ParseReply(sent.Body)
	if !good || string(payload) != "a\nb" {
		t.Fatalf("list: %q", payload)
	}
}

func TestGarbageIgnored(t *testing.T) {
	s := switchboard.New()
	ctx := proctest.New()
	ctx.PushBody(client(1), nil)
	ctx.PushBody(client(1), switchboard.RegisterMsg("")) // no name, no link
	ctx.PushBody(client(1), switchboard.LookupMsg("x"))  // no reply link
	step(t, s, ctx)
	if len(ctx.Sends) != 0 {
		t.Fatalf("garbage produced sends: %v", ctx.Sends)
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := switchboard.New()
	ctx := proctest.New()
	ctx.PushBody(client(1), switchboard.RegisterMsg("pm"), install(ctx, serviceLink(1)))
	step(t, s, ctx)
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2 := switchboard.New()
	if err := s2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if len(s2.Names) != 1 || s2.Names["pm"] == link.NilID {
		t.Fatalf("restored names: %v", s2.Names)
	}
	if !strings.Contains(s2.Kind(), "switchboard") {
		t.Fatal("kind")
	}
}

package shell_test

import (
	"strings"
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/link"
	"demosmp/internal/proc"
	"demosmp/internal/procmgr"
	"demosmp/internal/proctest"
	"demosmp/internal/shell"
)

func newShellCtx() (*shell.Shell, *proctest.Ctx) {
	s := shell.New()
	ctx := proctest.New()
	// Slots 1 and 2: switchboard and PM.
	ctx.MintLink(link.Link{Addr: addr.At(addr.ProcessID{Creator: 1, Local: 1}, 1)})
	ctx.MintLink(link.Link{Addr: addr.At(addr.ProcessID{Creator: 1, Local: 2}, 1)})
	return s, ctx
}

func step(t *testing.T, s proc.Body, ctx *proctest.Ctx) {
	t.Helper()
	if _, st := s.Step(ctx, 1); st.State != proc.Blocked {
		t.Fatalf("shell stopped: %+v", st)
	}
}

func cmd(ctx *proctest.Ctx, line string) {
	ctx.PushBody(addr.ProcessAddr{}, shell.CommandMsg(line))
}

func lastPrint(ctx *proctest.Ctx) string {
	if len(ctx.Prints) == 0 {
		return ""
	}
	return ctx.Prints[len(ctx.Prints)-1]
}

func TestHelpAndWhoami(t *testing.T) {
	s, ctx := newShellCtx()
	cmd(ctx, "help")
	cmd(ctx, "whoami")
	step(t, s, ctx)
	if !strings.Contains(ctx.Prints[0], "commands:") {
		t.Fatalf("help: %q", ctx.Prints)
	}
	if !strings.Contains(ctx.Prints[1], "p1.50 on m1") {
		t.Fatalf("whoami: %q", ctx.Prints[1])
	}
}

func TestRunSendsSpawnToPM(t *testing.T) {
	s, ctx := newShellCtx()
	cmd(ctx, "run 3 hog fast")
	step(t, s, ctx)
	sent, ok := ctx.LastSend()
	if !ok || sent.On != 2 {
		t.Fatalf("spawn went to %v: %+v", sent.On, sent)
	}
	if sent.Body[0] != 'S' {
		t.Fatalf("not a spawn command: %q", sent.Body)
	}
}

func TestMigrateCommandEncoding(t *testing.T) {
	s, ctx := newShellCtx()
	cmd(ctx, "migrate p2.7 3")
	step(t, s, ctx)
	sent, ok := ctx.LastSend()
	if !ok || sent.On != 2 {
		t.Fatalf("migrate: %+v", sent)
	}
	want := procmgr.CmdMigrate(addr.ProcessID{Creator: 2, Local: 7}, 3)
	if string(sent.Body) != string(want) {
		t.Fatalf("encoded %x, want %x", sent.Body, want)
	}
}

func TestBadCommands(t *testing.T) {
	s, ctx := newShellCtx()
	for _, line := range []string{"migrate nope 3", "migrate p1.1 x", "run x cpu", "frobnicate", "run"} {
		cmd(ctx, line)
	}
	step(t, s, ctx)
	if len(ctx.Sends) != 0 {
		t.Fatalf("bad commands sent messages: %v", ctx.Sends)
	}
	if len(ctx.Prints) != 5 {
		t.Fatalf("prints: %q", ctx.Prints)
	}
}

func TestEventRelay(t *testing.T) {
	s, ctx := newShellCtx()
	ev := procmgr.EncodeEvent(procmgr.Event{
		What: "migrated", PID: addr.ProcessID{Creator: 2, Local: 9}, Machine: 3,
	})
	ctx.PushBody(addr.ProcessAddr{}, ev)
	step(t, s, ctx)
	if !strings.Contains(lastPrint(ctx), "migrated: p2.9 @ m3") {
		t.Fatalf("event: %q", ctx.Prints)
	}
}

func TestReplyLinkGetsOutput(t *testing.T) {
	s, ctx := newShellCtx()
	reply, _ := ctx.MintLink(link.Link{Attrs: link.AttrReply})
	ctx.PushBody(addr.ProcessAddr{}, shell.CommandMsg("help"), reply)
	step(t, s, ctx)
	sent, ok := ctx.LastSend()
	if !ok || sent.On != reply || !strings.Contains(string(sent.Body), "commands:") {
		t.Fatalf("reply output: %+v", sent)
	}
}

func TestSnapshotRestore(t *testing.T) {
	s, ctx := newShellCtx()
	cmd(ctx, "help")
	step(t, s, ctx)
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2 := shell.New()
	if err := s2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if len(s2.History) != 1 || s2.History[0] != "help" {
		t.Fatalf("history: %v", s2.History)
	}
}

package shell_test

import (
	"strings"
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/link"
	"demosmp/internal/procmgr"
	"demosmp/internal/shell"
	"demosmp/internal/switchboard"
)

func TestSignalCommands(t *testing.T) {
	s, ctx := newShellCtx()
	cmd(ctx, "suspend p2.7")
	cmd(ctx, "resume p2.7")
	cmd(ctx, "kill p2.7")
	step(t, s, ctx)
	if len(ctx.Sends) != 3 {
		t.Fatalf("sends: %v", ctx.Sends)
	}
	wantSigs := []byte{procmgr.SigSuspend, procmgr.SigResume, procmgr.SigKill}
	for i, sent := range ctx.Sends {
		if sent.On != 2 {
			t.Fatalf("signal %d went to link %v", i, sent.On)
		}
		want := procmgr.CmdSignal(addr.ProcessID{Creator: 2, Local: 7}, wantSigs[i])
		if string(sent.Body) != string(want) {
			t.Fatalf("signal %d body %x, want %x", i, sent.Body, want)
		}
	}
	// Usage errors print, don't send.
	cmd(ctx, "suspend")
	cmd(ctx, "kill notapid")
	step(t, s, ctx)
	if len(ctx.Sends) != 3 {
		t.Fatalf("bad signal commands sent: %v", ctx.Sends)
	}
}

func TestRunAny(t *testing.T) {
	s, ctx := newShellCtx()
	cmd(ctx, "run any hog")
	step(t, s, ctx)
	sent, ok := ctx.LastSend()
	if !ok || sent.Body[0] != 'S' {
		t.Fatalf("run any: %+v", sent)
	}
	// Machine field must be AnyMachine (0).
	if sent.Body[1] != 0 || sent.Body[2] != 0 {
		t.Fatalf("machine field: %v", sent.Body[1:3])
	}
}

func TestLookupCommandAndReplies(t *testing.T) {
	s, ctx := newShellCtx()
	cmd(ctx, "lookup fs.dir")
	step(t, s, ctx)
	sent, _ := ctx.LastSend()
	if sent.On != 1 || string(sent.Body) != string(switchboard.LookupMsg("fs.dir")) {
		t.Fatalf("lookup request: %+v", sent)
	}
	// Successful reply carries the found link.
	carried, _ := ctx.MintLink(link.Link{Addr: addr.At(addr.ProcessID{Creator: 1, Local: 9}, 1)})
	ctx.PushBody(addr.ProcessAddr{}, []byte{switchboard.ReplyOK}, carried)
	// Failed reply.
	ctx.PushBody(addr.ProcessAddr{}, []byte{switchboard.ReplyErr})
	step(t, s, ctx)
	out := strings.Join(ctx.Prints, "\n")
	if !strings.Contains(out, "lookup: link to p1.9") {
		t.Fatalf("ok reply: %q", out)
	}
	if !strings.Contains(out, "not found") {
		t.Fatalf("err reply: %q", out)
	}
	// The carried link was cleaned up.
	if _, still := ctx.Links[carried]; still {
		t.Fatal("looked-up link leaked in the shell's table")
	}
}

func TestUsageLines(t *testing.T) {
	s, ctx := newShellCtx()
	for _, line := range []string{"lookup", "migrate", "migrate p1.1", "run 2"} {
		cmd(ctx, line)
	}
	step(t, s, ctx)
	if len(ctx.Prints) != 4 {
		t.Fatalf("prints: %q", ctx.Prints)
	}
	for _, p := range ctx.Prints {
		if !strings.Contains(p, "usage:") {
			t.Fatalf("not a usage line: %q", p)
		}
	}
}

func TestEmptyAndWhitespaceCommands(t *testing.T) {
	s, ctx := newShellCtx()
	cmd(ctx, "")
	cmd(ctx, "   ")
	step(t, s, ctx)
	if len(ctx.Sends) != 0 || len(ctx.Prints) != 0 {
		t.Fatal("empty commands had effects")
	}
}

func TestKindSurface(t *testing.T) {
	if shell.New().Kind() != shell.Kind {
		t.Fatal("kind")
	}
}

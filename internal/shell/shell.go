// Package shell implements the DEMOS/MP command interpreter (§2.3: "The
// command interpreter allows interactive access to DEMOS/MP programs").
//
// The shell is an ordinary (migratable) server process. Each incoming user
// message is one command line; output goes to the process console and, if
// the command carried a reply link, back to the requester. Commands that
// need the process manager (run, migrate, ps) go through the PM's command
// protocol.
package shell

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strconv"
	"strings"

	"demosmp/internal/addr"
	"demosmp/internal/link"
	"demosmp/internal/msg"
	"demosmp/internal/proc"
	"demosmp/internal/procmgr"
	"demosmp/internal/switchboard"
)

// Kind is the registry name of the shell body.
const Kind = "shell"

// Shell is the command interpreter body. Link slot 1 must point at the
// switchboard, slot 2 at the process manager.
type Shell struct {
	SwbLink link.ID
	PMLink  link.ID

	NextTag uint16
	// Out remembers the reply link of the most recent command so
	// asynchronous PM events can be relayed to whoever asked.
	Out link.ID

	History []string
}

// New returns a shell with the conventional link slots.
func New() *Shell { return &Shell{SwbLink: 1, PMLink: 2} }

// CommandMsg wraps a command line for delivery to the shell. The '$'
// prefix is what distinguishes commands from asynchronous server replies.
func CommandMsg(line string) []byte { return append([]byte{'$'}, line...) }

// Kind implements proc.Body.
func (s *Shell) Kind() string { return Kind }

// Step implements proc.Body.
func (s *Shell) Step(ctx proc.Context, budget int) (int, proc.Status) {
	for {
		d, ok := ctx.Recv()
		if !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
		if d.Op != msg.OpNone {
			continue
		}
		if len(d.Body) > 0 && d.Body[0] == '$' {
			d.Body = d.Body[1:]
			s.command(ctx, d)
		} else {
			s.event(ctx, d)
		}
	}
}

func (s *Shell) out(ctx proc.Context, text string) {
	ctx.Print([]byte(text))
	if s.Out != link.NilID {
		ctx.Send(s.Out, []byte(text)) // reply links are single-use
		s.Out = link.NilID
	}
}

func (s *Shell) command(ctx proc.Context, d proc.Delivery) {
	line := strings.TrimSpace(string(d.Body))
	s.History = append(s.History, line)
	if len(d.Carried) > 0 {
		s.Out = d.Carried[0]
	}
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return
	}
	switch fields[0] {
	case "help":
		s.out(ctx, "commands: run <machine|any> <prog> [args], migrate <c.l> <machine>, "+
			"suspend|resume|kill <c.l>, ps, lookup <name>, whoami, help")
	case "whoami":
		s.out(ctx, fmt.Sprintf("shell %v on %v", ctx.PID(), ctx.Machine()))
	case "run":
		if len(fields) < 3 {
			s.out(ctx, "usage: run <machine|any> <prog> [args]")
			return
		}
		var m int
		if fields[1] == "any" {
			m = int(procmgr.AnyMachine) // let the memory scheduler place it
		} else {
			var err error
			m, err = strconv.Atoi(fields[1])
			if err != nil {
				s.out(ctx, "bad machine "+fields[1])
				return
			}
		}
		s.NextTag++
		reply, _ := ctx.CreateLink(link.AttrReply, link.DataArea{})
		body := procmgr.CmdSpawn(addr.MachineID(m), s.NextTag, fields[2], fields[3:]...)
		ctx.Send(s.PMLink, body, reply)
	case "migrate":
		if len(fields) != 3 {
			s.out(ctx, "usage: migrate <creator.local> <machine>")
			return
		}
		pid, err := parsePID(fields[1])
		if err != nil {
			s.out(ctx, err.Error())
			return
		}
		m, err := strconv.Atoi(fields[2])
		if err != nil {
			s.out(ctx, "bad machine "+fields[2])
			return
		}
		reply, _ := ctx.CreateLink(link.AttrReply, link.DataArea{})
		ctx.Send(s.PMLink, procmgr.CmdMigrate(pid, addr.MachineID(m)), reply)
	case "suspend", "resume", "kill":
		if len(fields) != 2 {
			s.out(ctx, "usage: "+fields[0]+" <creator.local>")
			return
		}
		pid, err := parsePID(fields[1])
		if err != nil {
			s.out(ctx, err.Error())
			return
		}
		sig := map[string]byte{"suspend": procmgr.SigSuspend,
			"resume": procmgr.SigResume, "kill": procmgr.SigKill}[fields[0]]
		reply, _ := ctx.CreateLink(link.AttrReply, link.DataArea{})
		ctx.Send(s.PMLink, procmgr.CmdSignal(pid, sig), reply)
	case "ps":
		reply, _ := ctx.CreateLink(link.AttrReply, link.DataArea{})
		ctx.Send(s.PMLink, procmgr.CmdStat(), reply)
	case "lookup":
		if len(fields) != 2 {
			s.out(ctx, "usage: lookup <name>")
			return
		}
		reply, _ := ctx.CreateLink(link.AttrReply, link.DataArea{})
		ctx.Send(s.SwbLink, switchboard.LookupMsg(fields[1]), reply)
	default:
		s.out(ctx, "unknown command: "+fields[0]+" (try help)")
	}
}

// event relays an asynchronous reply (PM event, PM stat text, switchboard
// reply) to the console/requester.
func (s *Shell) event(ctx proc.Context, d proc.Delivery) {
	if ev, err := procmgr.DecodeEvent(d.Body); err == nil && ev.What != "" && isWord(ev.What) {
		s.out(ctx, fmt.Sprintf("%s: %v @ %v", ev.What, ev.PID, ev.Machine))
		return
	}
	if ok, payload, err := switchboard.ParseReply(d.Body); err == nil && (d.Body[0] == switchboard.ReplyOK || d.Body[0] == switchboard.ReplyErr) {
		if !ok {
			s.out(ctx, "lookup: not found")
		} else if len(d.Carried) > 0 {
			l, _ := ctx.LinkAddr(d.Carried[0])
			s.out(ctx, fmt.Sprintf("lookup: link to %v", l.Addr))
			ctx.DestroyLink(d.Carried[0])
		} else {
			s.out(ctx, string(payload))
		}
		return
	}
	s.out(ctx, string(d.Body))
}

func isWord(s string) bool {
	for _, r := range s {
		if (r < 'a' || r > 'z') && r != '-' {
			return false
		}
	}
	return len(s) > 0
}

func parsePID(s string) (addr.ProcessID, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 2 {
		return addr.NilPID, fmt.Errorf("bad pid %q (want creator.local)", s)
	}
	c, err1 := strconv.Atoi(strings.TrimPrefix(parts[0], "p"))
	l, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil {
		return addr.NilPID, fmt.Errorf("bad pid %q", s)
	}
	return addr.ProcessID{Creator: addr.MachineID(c), Local: addr.LocalUID(l)}, nil
}

// Snapshot implements proc.Body.
func (s *Shell) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(s)
	return buf.Bytes(), err
}

// Restore implements proc.Body.
func (s *Shell) Restore(data []byte) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(s)
}

var _ proc.Body = (*Shell)(nil)

// Streaming open-loop workload: seeded Poisson arrivals with bimodal
// service times, generated lazily so a million-process run never
// materializes its processes up front — each machine holds one arrival
// cursor and spawns the next job only when its arrival time comes due.
// (The paper had no authentic workload; an open-loop arrival process is the
// standard stand-in, and the bimodal service mix keeps both short-lived and
// long-lived processes in the system at once.)
package workload

import (
	"bytes"
	"encoding/gob"
	"math"

	"demosmp/internal/proc"
	"demosmp/internal/sim"
)

// OpenLoop configures the generator. The zero value is not useful; fill in
// at least MeanGap and PerMachine.
type OpenLoop struct {
	// Seed drives every machine's private arrival/service stream.
	// Machines derive independent substreams, so two machines' sequences
	// never correlate and a machine's sequence does not depend on how the
	// cluster is sharded.
	Seed int64
	// MeanGap is the mean interarrival time per machine in simulated
	// microseconds (exponential, i.e. Poisson arrivals).
	MeanGap sim.Time
	// ShortService and LongService are the two service-time modes; each
	// job draws LongService with probability LongFraction.
	ShortService sim.Time
	LongService  sim.Time
	LongFraction float64
	// PerMachine is how many jobs each machine receives over the run. The
	// stream ends after this many arrivals, bounding "run until idle".
	PerMachine int

	// WaveAmp and WavePeriod superimpose a diurnal load wave: the
	// effective arrival rate swings by ±WaveAmp (0 < WaveAmp < 1) over
	// each WavePeriod. WaveSpread staggers machine phases so the wave
	// rolls around the cluster — machine m leads by m mod WaveSpread
	// spread-fractions of a period (0 or 1 keeps every machine in phase).
	WaveAmp    float64
	WavePeriod sim.Time
	WaveSpread int

	// HotEvery and HotFactor skew load: every HotEvery-th machine
	// (machine % HotEvery == 0) receives HotFactor× the arrival rate,
	// giving balancing policies a persistent imbalance to fix. 0 disables.
	HotEvery  int
	HotFactor float64

	// Spin makes jobs CPU-bound Spinners instead of timer-driven Jobs:
	// each job burns its service demand as real quantum budget, so load
	// reports show genuine CPU%/queue-depth pressure. This is the mode
	// the migration policies are evaluated under.
	Spin bool
}

// rng64 is a splitmix64 generator. The simulation's determinism lint
// forbids math/rand outside the engine, and the engine's PRNG cannot be
// used here anyway: workload draws must come from a private stream so the
// sequence is independent of event execution order (and of shard count).
type rng64 struct{ s uint64 }

func (r *rng64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (r *rng64) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// Arrivals streams one machine's arrival sequence: absolute arrival times
// with exponential gaps and a bimodal service draw per job. Construction is
// O(1) and each Next is O(1) — the whole point is that nothing about the
// run's length is materialized.
type Arrivals struct {
	cfg     OpenLoop
	rng     rng64
	at      sim.Time
	emitted int
	boost   float64 // hot-machine rate multiplier (1 = nominal)
	phase   float64 // this machine's diurnal phase offset, radians
}

// NewArrivals returns machine m's private arrival stream.
func NewArrivals(cfg OpenLoop, machine int) *Arrivals {
	if cfg.MeanGap == 0 {
		cfg.MeanGap = 1000
	}
	if cfg.ShortService == 0 {
		cfg.ShortService = 200
	}
	if cfg.LongService == 0 {
		cfg.LongService = 5000
	}
	if cfg.WaveAmp > 0.9 {
		cfg.WaveAmp = 0.9 // keep the modulated rate strictly positive
	}
	a := &Arrivals{cfg: cfg, boost: 1}
	if cfg.HotEvery > 0 && cfg.HotFactor > 0 && machine%cfg.HotEvery == 0 {
		a.boost = cfg.HotFactor
	}
	if cfg.WaveSpread > 1 {
		a.phase = 2 * math.Pi * float64(machine%cfg.WaveSpread) / float64(cfg.WaveSpread)
	}
	// Substream split: hash the seed with the machine id through one
	// splitmix step so adjacent machines land in unrelated regions.
	a.rng.s = uint64(cfg.Seed)*0x9e3779b97f4a7c15 + uint64(machine)*0xda942042e4dd58b5
	return a
}

// Next returns the next job's absolute arrival time and service demand.
// ok is false once PerMachine jobs have been emitted.
func (a *Arrivals) Next() (at, service sim.Time, ok bool) {
	if a.emitted >= a.cfg.PerMachine {
		return 0, 0, false
	}
	a.emitted++
	mean := float64(a.cfg.MeanGap) / a.boost
	if a.cfg.WaveAmp > 0 && a.cfg.WavePeriod > 0 {
		// The wave's rate multiplier is evaluated at the previous
		// arrival's clock — a pure function of this stream's own
		// history, so it cannot depend on shard count.
		frac := float64(a.at%a.cfg.WavePeriod) / float64(a.cfg.WavePeriod)
		mean /= 1 + a.cfg.WaveAmp*math.Sin(2*math.Pi*frac+a.phase)
	}
	u := a.rng.float64()
	gap := sim.Time(-mean * math.Log(1-u))
	if gap < 1 {
		gap = 1
	}
	a.at += gap
	service = a.cfg.ShortService
	if a.rng.float64() < a.cfg.LongFraction {
		service = a.cfg.LongService
	}
	return a.at, service, true
}

// Emitted reports how many jobs the stream has produced so far.
func (a *Arrivals) Emitted() int { return a.emitted }

// JobKind is the registry name of Job.
const JobKind = "wl-job"

// Job is the open-loop task body: it occupies its machine for Service
// simulated microseconds (timer-driven) and exits. Deliberately minimal —
// the scale scenario measures runtime throughput, not workload logic.
type Job struct {
	Service sim.Time
	Armed   bool
}

// Kind implements proc.Body.
func (j *Job) Kind() string { return JobKind }

// Step implements proc.Body.
func (j *Job) Step(ctx proc.Context, budget int) (int, proc.Status) {
	if !j.Armed {
		j.Armed = true
		if j.Service < 1 {
			j.Service = 1
		}
		ctx.SetTimer(j.Service, 1)
	}
	for {
		d, ok := ctx.Recv()
		if !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
		// The job's PID is never published, so the only kernel-op
		// delivery it can receive is its own timer firing.
		if d.Op != 0 {
			return 0, proc.Status{State: proc.Exited, ExitCode: int32(j.Service)}
		}
	}
}

// Snapshot implements proc.Body.
func (j *Job) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(j)
	return buf.Bytes(), err
}

// Restore implements proc.Body.
func (j *Job) Restore(data []byte) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(j)
}

// SpinnerKind is the registry name of Spinner.
const SpinnerKind = "wl-spinner"

// Spinner is a CPU-bound task: it burns Work instructions of real quantum
// budget and exits. Unlike Job (timer-driven, costs the CPU nothing) a
// Spinner occupies the run queue and accumulates CPU time, so it shows up
// in load reports exactly the way the migration policies need — CPU%,
// ready-queue depth and per-process CPUMicros all move. It is migratable
// mid-burn: Work is its entire state.
type Spinner struct {
	Work int // instructions remaining
}

// Kind implements proc.Body.
func (s *Spinner) Kind() string { return SpinnerKind }

// Step implements proc.Body.
func (s *Spinner) Step(ctx proc.Context, budget int) (int, proc.Status) {
	// Drain (and ignore) anything delivered; a spinner only computes.
	for {
		if _, ok := ctx.Recv(); !ok {
			break
		}
	}
	if s.Work <= 0 {
		return 0, proc.Status{State: proc.Exited}
	}
	n := budget
	if n < 1 {
		n = 1
	}
	if n > s.Work {
		n = s.Work
	}
	s.Work -= n
	if s.Work <= 0 {
		return n, proc.Status{State: proc.Exited}
	}
	return n, proc.Status{State: proc.Runnable}
}

// Snapshot implements proc.Body.
func (s *Spinner) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(s)
	return buf.Bytes(), err
}

// Restore implements proc.Body.
func (s *Spinner) Restore(data []byte) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(s)
}

// Streaming open-loop workload: seeded Poisson arrivals with bimodal
// service times, generated lazily so a million-process run never
// materializes its processes up front — each machine holds one arrival
// cursor and spawns the next job only when its arrival time comes due.
// (The paper had no authentic workload; an open-loop arrival process is the
// standard stand-in, and the bimodal service mix keeps both short-lived and
// long-lived processes in the system at once.)
package workload

import (
	"bytes"
	"encoding/gob"
	"math"

	"demosmp/internal/proc"
	"demosmp/internal/sim"
)

// OpenLoop configures the generator. The zero value is not useful; fill in
// at least MeanGap and PerMachine.
type OpenLoop struct {
	// Seed drives every machine's private arrival/service stream.
	// Machines derive independent substreams, so two machines' sequences
	// never correlate and a machine's sequence does not depend on how the
	// cluster is sharded.
	Seed int64
	// MeanGap is the mean interarrival time per machine in simulated
	// microseconds (exponential, i.e. Poisson arrivals).
	MeanGap sim.Time
	// ShortService and LongService are the two service-time modes; each
	// job draws LongService with probability LongFraction.
	ShortService sim.Time
	LongService  sim.Time
	LongFraction float64
	// PerMachine is how many jobs each machine receives over the run. The
	// stream ends after this many arrivals, bounding "run until idle".
	PerMachine int
}

// rng64 is a splitmix64 generator. The simulation's determinism lint
// forbids math/rand outside the engine, and the engine's PRNG cannot be
// used here anyway: workload draws must come from a private stream so the
// sequence is independent of event execution order (and of shard count).
type rng64 struct{ s uint64 }

func (r *rng64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (r *rng64) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// Arrivals streams one machine's arrival sequence: absolute arrival times
// with exponential gaps and a bimodal service draw per job. Construction is
// O(1) and each Next is O(1) — the whole point is that nothing about the
// run's length is materialized.
type Arrivals struct {
	cfg     OpenLoop
	rng     rng64
	at      sim.Time
	emitted int
}

// NewArrivals returns machine m's private arrival stream.
func NewArrivals(cfg OpenLoop, machine int) *Arrivals {
	if cfg.MeanGap == 0 {
		cfg.MeanGap = 1000
	}
	if cfg.ShortService == 0 {
		cfg.ShortService = 200
	}
	if cfg.LongService == 0 {
		cfg.LongService = 5000
	}
	a := &Arrivals{cfg: cfg}
	// Substream split: hash the seed with the machine id through one
	// splitmix step so adjacent machines land in unrelated regions.
	a.rng.s = uint64(cfg.Seed)*0x9e3779b97f4a7c15 + uint64(machine)*0xda942042e4dd58b5
	return a
}

// Next returns the next job's absolute arrival time and service demand.
// ok is false once PerMachine jobs have been emitted.
func (a *Arrivals) Next() (at, service sim.Time, ok bool) {
	if a.emitted >= a.cfg.PerMachine {
		return 0, 0, false
	}
	a.emitted++
	u := a.rng.float64()
	gap := sim.Time(-float64(a.cfg.MeanGap) * math.Log(1-u))
	if gap < 1 {
		gap = 1
	}
	a.at += gap
	service = a.cfg.ShortService
	if a.rng.float64() < a.cfg.LongFraction {
		service = a.cfg.LongService
	}
	return a.at, service, true
}

// Emitted reports how many jobs the stream has produced so far.
func (a *Arrivals) Emitted() int { return a.emitted }

// JobKind is the registry name of Job.
const JobKind = "wl-job"

// Job is the open-loop task body: it occupies its machine for Service
// simulated microseconds (timer-driven) and exits. Deliberately minimal —
// the scale scenario measures runtime throughput, not workload logic.
type Job struct {
	Service sim.Time
	Armed   bool
}

// Kind implements proc.Body.
func (j *Job) Kind() string { return JobKind }

// Step implements proc.Body.
func (j *Job) Step(ctx proc.Context, budget int) (int, proc.Status) {
	if !j.Armed {
		j.Armed = true
		if j.Service < 1 {
			j.Service = 1
		}
		ctx.SetTimer(j.Service, 1)
	}
	for {
		d, ok := ctx.Recv()
		if !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
		// The job's PID is never published, so the only kernel-op
		// delivery it can receive is its own timer firing.
		if d.Op != 0 {
			return 0, proc.Status{State: proc.Exited, ExitCode: int32(j.Service)}
		}
	}
}

// Snapshot implements proc.Body.
func (j *Job) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(j)
	return buf.Bytes(), err
}

// Restore implements proc.Body.
func (j *Job) Restore(data []byte) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(j)
}

package workload

import (
	"testing"

	"demosmp/internal/proc"
	"demosmp/internal/proctest"
	"demosmp/internal/sim"
)

func drain(a *Arrivals) []sim.Time {
	var out []sim.Time
	for {
		at, _, ok := a.Next()
		if !ok {
			return out
		}
		out = append(out, at)
	}
}

func TestArrivalsDeterministicPerMachine(t *testing.T) {
	cfg := OpenLoop{Seed: 42, MeanGap: 500, PerMachine: 50}
	a := drain(NewArrivals(cfg, 3))
	b := drain(NewArrivals(cfg, 3))
	if len(a) != 50 {
		t.Fatalf("emitted %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("stream not reproducible at %d: %d vs %d", i, a[i], b[i])
		}
	}
	// Different machines: different streams.
	c := drain(NewArrivals(cfg, 4))
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("machines 3 and 4 share a stream")
	}
}

func TestHotMachineSkew(t *testing.T) {
	cfg := OpenLoop{Seed: 7, MeanGap: 1000, PerMachine: 200, HotEvery: 4, HotFactor: 3}
	hot := drain(NewArrivals(cfg, 4))  // 4 % 4 == 0: hot
	cold := drain(NewArrivals(cfg, 5)) // nominal
	// Same job count in ~1/3 the span: the hot stream must finish much
	// earlier (allow slack for variance).
	if hot[len(hot)-1]*2 >= cold[len(cold)-1] {
		t.Fatalf("hot machine not hot: hot ends %d, cold ends %d",
			hot[len(hot)-1], cold[len(cold)-1])
	}
}

func TestDiurnalWaveModulatesRate(t *testing.T) {
	cfg := OpenLoop{Seed: 11, MeanGap: 1000, PerMachine: 2000,
		WaveAmp: 0.8, WavePeriod: 1_000_000}
	a := NewArrivals(cfg, 1)
	// Count arrivals landing in the peak half vs the trough half of each
	// period. With +80% swing the peak half must see clearly more.
	peak, trough := 0, 0
	for {
		at, _, ok := a.Next()
		if !ok {
			break
		}
		if at%cfg.WavePeriod < cfg.WavePeriod/2 {
			peak++
		} else {
			trough++
		}
	}
	if peak <= trough*2 {
		t.Fatalf("no wave: peak-half %d vs trough-half %d", peak, trough)
	}
}

func TestWaveSpreadStaggersPhase(t *testing.T) {
	cfg := OpenLoop{Seed: 11, MeanGap: 1000, PerMachine: 1000,
		WaveAmp: 0.8, WavePeriod: 1_000_000, WaveSpread: 2}
	count := func(machine int) (peak int) {
		a := NewArrivals(cfg, machine)
		for {
			at, _, ok := a.Next()
			if !ok {
				return
			}
			if at%cfg.WavePeriod < cfg.WavePeriod/2 {
				peak++
			}
		}
	}
	// Machine 0 peaks in the first half-period; machine 1 is π out of
	// phase and peaks in the second.
	p0, p1 := count(0), count(1)
	if p0 <= 500 || p1 >= 500 {
		t.Fatalf("phases not staggered: m0 peak-half %d, m1 peak-half %d", p0, p1)
	}
}

func TestSpinnerBurnsAndExits(t *testing.T) {
	s := &Spinner{Work: 2500}
	ctx := proctest.New()
	var spent int
	for i := 0; ; i++ {
		cost, st := s.Step(ctx, 1000)
		spent += cost
		if st.State == proc.Exited {
			break
		}
		if st.State != proc.Runnable {
			t.Fatalf("state %v", st.State)
		}
		if i > 10 {
			t.Fatal("spinner never exits")
		}
	}
	if spent != 2500 {
		t.Fatalf("burned %d instructions, want 2500", spent)
	}
	// Snapshot mid-burn restores the remaining work.
	s2 := &Spinner{Work: 999}
	snap, err := s2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s3 := &Spinner{}
	if err := s3.Restore(snap); err != nil || s3.Work != 999 {
		t.Fatalf("restore: %v work=%d", err, s3.Work)
	}
}

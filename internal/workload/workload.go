// Package workload provides the synthetic processes the experiments run:
// CPU-bound VM programs, communicating client/server pairs, and native
// traffic generators. The paper had no authentic workload either ("In the
// absence of an authentic workload for our test cases, the decision to move
// a particular process and the choice of destination were arbitrary").
package workload

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"demosmp/internal/dvm"
	"demosmp/internal/link"
	"demosmp/internal/proc"
	"demosmp/internal/sim"
)

// CPUBound returns a program that computes sum(i*i) for i in 1..n and
// exits with the (wrapped) result. ~6 instructions per iteration.
func CPUBound(n int) *dvm.Program {
	return dvm.MustAssemble(fmt.Sprintf(`
	start:	movi r1, 0
		movi r2, 0
	loop:	addi r1, r1, 1
		mul r3, r1, r1
		add r2, r2, r3
		cmpi r1, %d
		jlt loop
		mov r0, r2
		sys exit
	`, n))
}

// CPUBoundResult is the exit code CPUBound(n) produces.
func CPUBoundResult(n int) int32 {
	var s int32
	for i := int32(1); i <= int32(n); i++ {
		s += i * i
	}
	return s
}

// CPUBoundSized returns a CPU-bound program padded with dead data so its
// memory image is at least size bytes — the knob for the migration-cost-
// vs-size sweep (E1).
func CPUBoundSized(n, size int) *dvm.Program {
	pad := size - 30*dvm.InstrSize - 256
	if pad < 4 {
		pad = 4
	}
	return dvm.MustAssemble(fmt.Sprintf(`
		.data
	pad:	.space %d
		.code
	start:	movi r1, 0
		movi r2, 0
	loop:	addi r1, r1, 1
		mul r3, r1, r1
		add r2, r2, r3
		cmpi r1, %d
		jlt loop
		mov r0, r2
		sys exit
	`, pad, n))
}

// EchoServer returns a program that echoes n requests on their carried
// reply links, then exits 0.
func EchoServer(n int) *dvm.Program {
	return dvm.MustAssemble(fmt.Sprintf(`
		.data
	buf:	.space 64
		.code
	start:	movi r6, 0
	loop:	lea r1, buf
		movi r2, 64
		sys recv
		mov r5, r3
		mov r0, r5
		lea r1, buf
		movi r2, 4
		movi r3, 0
		sys send
		addi r6, r6, 1
		cmpi r6, %d
		jlt loop
		movi r0, 0
		sys exit
	`, n))
}

// RequestClient returns a program that performs n request/reply exchanges
// over link 1 (creating a fresh reply link per request) and exits with the
// number completed.
func RequestClient(n int) *dvm.Program {
	return dvm.MustAssemble(fmt.Sprintf(`
		.data
	m:	.asciz "ping"
	buf:	.space 64
		.code
	start:	movi r6, 0
	loop:	movi r1, 8
		movi r2, 0
		movi r3, 0
		sys mklink
		mov r3, r0
		movi r0, 1
		lea r1, m
		movi r2, 4
		sys send
		lea r1, buf
		movi r2, 64
		sys recv
		addi r6, r6, 1
		cmpi r6, %d
		jlt loop
		mov r0, r6
		sys exit
	`, n))
}

// SelfMigrator returns a program that computes, requests its own migration
// to the given machine partway through (§3.1: "It is of course possible
// for a process to request its own migration"), finishes the computation,
// and exits with the result.
func SelfMigrator(n int, dest uint16) *dvm.Program {
	return dvm.MustAssemble(fmt.Sprintf(`
	start:	movi r1, 0
		movi r2, 0
	loop:	addi r1, r1, 1
		mul r3, r1, r1
		add r2, r2, r3
		cmpi r1, %d
		jne cont
		movi r0, %d
		sys migrate
	cont:	cmpi r1, %d
		jlt loop
		mov r0, r2
		sys exit
	`, n/2, dest, n))
}

// VMFileClient returns a DVM assembly program that uses the four-process
// file system end to end: it creates a file through the directory server,
// opens it, writes size bytes of a pattern through a link data area (the
// kernel move-data facility), reads them back, verifies every byte, and
// exits with the verified count (or -1 on any failure).
//
// Spawn it with links [dir, file] in slots 1 and 2. It is the proof that
// ordinary user programs — not just native Go bodies — drive the paper's
// full I/O path, including carrying two links (area + reply) per request.
func VMFileClient() *dvm.Program {
	return dvm.MustAssemble(`
		.data
	nm:	.asciz "vmf"
	req:	.space 16
	rbuf:	.space 64
	aid:	.word 0
	buf:	.space 600
		.code
	start:	; build create request: 'C' + "vmf"
		lea r6, req
		movi r5, 'C'
		stb r5, r6, 0
		lea r1, nm
		ldb r5, r1, 0
		stb r5, r6, 1
		ldb r5, r1, 1
		stb r5, r6, 2
		ldb r5, r1, 2
		stb r5, r6, 3
		movi r1, 8        ; AttrReply
		movi r2, 0
		movi r3, 0
		sys mklink
		mov r3, r0
		movi r0, 1        ; directory server link
		lea r1, req
		movi r2, 4
		sys send
		lea r1, rbuf
		movi r2, 64
		sys recv
		lea r6, rbuf
		ldb r5, r6, 0
		cmpi r5, 0
		jne fail
		ldw r7, r6, 1     ; fid
		; open: 'O' + fid
		lea r6, req
		movi r5, 'O'
		stb r5, r6, 0
		stw r7, r6, 1
		movi r1, 8
		movi r2, 0
		movi r3, 0
		sys mklink
		mov r3, r0
		movi r0, 2        ; file server link
		lea r1, req
		movi r2, 5
		sys send
		lea r1, rbuf
		movi r2, 64
		sys recv
		lea r6, rbuf
		ldb r5, r6, 0
		cmpi r5, 0
		jne fail
		ldb r7, r6, 1     ; handle low byte
		ldb r5, r6, 2     ; handle high byte
		movi r2, 8
		shl r5, r5, r2
		or r7, r7, r5
		; grant a read/write data area over buf
		movi r1, 6        ; AttrDataRead|AttrDataWrite
		lea r2, buf
		movi r3, 600
		sys mklink
		lea r6, aid
		stw r0, r6, 0
		; fill buf with pattern (i*7+3)&0xFF
		movi r4, 0
		lea r6, buf
	fill:	movi r2, 7
		mul r5, r4, r2
		addi r5, r5, 3
		add r2, r6, r4
		stb r5, r2, 0
		addi r4, r4, 1
		cmpi r4, 600
		jlt fill
		; write: 'W' handle(2) off(4)=0 len(4)=600, carrying [area, reply]
		lea r6, req
		movi r5, 'W'
		stb r5, r6, 0
		stw r7, r6, 1
		movi r5, 0
		stw r5, r6, 3
		movi r5, 600
		stw r5, r6, 7
		movi r1, 8
		movi r2, 0
		movi r3, 0
		sys mklink
		mov r5, r0        ; second carried link: reply
		lea r6, aid
		ldw r3, r6, 0     ; first carried link: the data area
		movi r0, 2
		lea r1, req
		movi r2, 11
		sys send2
		lea r1, rbuf
		movi r2, 64
		sys recv
		lea r6, rbuf
		ldb r5, r6, 0
		cmpi r5, 0
		jne fail
		ldw r5, r6, 1
		cmpi r5, 600
		jne fail
		; clear buf
		movi r4, 0
		lea r6, buf
	clear:	movi r5, 0
		add r2, r6, r4
		stb r5, r2, 0
		addi r4, r4, 1
		cmpi r4, 600
		jlt clear
		; read it back: 'R' with the same handle/off/len fields
		lea r6, req
		movi r5, 'R'
		stb r5, r6, 0
		movi r1, 8
		movi r2, 0
		movi r3, 0
		sys mklink
		mov r5, r0
		lea r6, aid
		ldw r3, r6, 0
		movi r0, 2
		lea r1, req
		movi r2, 11
		sys send2
		lea r1, rbuf
		movi r2, 64
		sys recv
		lea r6, rbuf
		ldb r5, r6, 0
		cmpi r5, 0
		jne fail
		; verify every byte
		movi r4, 0
		lea r6, buf
	verify:	movi r2, 7
		mul r5, r4, r2
		addi r5, r5, 3
		movi r2, 0xFF
		and r5, r5, r2
		add r2, r6, r4
		ldb r3, r2, 0
		cmp r3, r5
		jne fail
		addi r4, r4, 1
		cmpi r4, 600
		jlt verify
		movi r0, 600
		sys exit
	fail:	movi r0, -1
		sys exit
	`)
}

// --- native bodies -------------------------------------------------------------

// SinkKind is the registry name of Sink.
const SinkKind = "wl-sink"

// Sink counts and remembers incoming message bodies.
type Sink struct {
	Got []string
}

// Kind implements proc.Body.
func (s *Sink) Kind() string { return SinkKind }

// Step implements proc.Body.
func (s *Sink) Step(ctx proc.Context, budget int) (int, proc.Status) {
	for {
		d, ok := ctx.Recv()
		if !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
		s.Got = append(s.Got, string(d.Body))
	}
}

// Snapshot implements proc.Body.
func (s *Sink) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(s)
	return buf.Bytes(), err
}

// Restore implements proc.Body.
func (s *Sink) Restore(data []byte) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(s)
}

// ChatterKind is the registry name of Chatter.
const ChatterKind = "wl-chatter"

// Chatter sends N messages on link 1, one per wakeup tick, then exits.
// Spread over time (rather than in one burst) so migrations interleave
// with its traffic.
type Chatter struct {
	N        int
	Interval uint32 // µs between messages
	Sent     int
}

// Kind implements proc.Body.
func (c *Chatter) Kind() string { return ChatterKind }

// Step implements proc.Body.
func (c *Chatter) Step(ctx proc.Context, budget int) (int, proc.Status) {
	if c.Sent == 0 && c.N > 0 {
		ctx.SetTimer(1, 1)
	}
	for {
		d, ok := ctx.Recv()
		if !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
		_ = d
		if c.Sent >= c.N {
			return 0, proc.Status{State: proc.Exited, ExitCode: int32(c.Sent)}
		}
		ctx.Send(1, []byte(fmt.Sprintf("chat-%d", c.Sent)))
		c.Sent++
		if c.Sent >= c.N {
			return 0, proc.Status{State: proc.Exited, ExitCode: int32(c.Sent)}
		}
		iv := c.Interval
		if iv == 0 {
			iv = 1000
		}
		ctx.SetTimer(sim.Time(iv), 1)
	}
}

// Snapshot implements proc.Body.
func (c *Chatter) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(c)
	return buf.Bytes(), err
}

// Restore implements proc.Body.
func (c *Chatter) Restore(data []byte) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(c)
}

// StageKind is the registry name of Stage.
const StageKind = "wl-stage"

// Stage is one element of a processing pipeline: it forwards every
// incoming message on link 1 (its downstream). Pipelines spread across
// machines generate the steady inter-machine traffic that the
// communication-affinity policy exists to eliminate (§1: "Moving a process
// closer to the resource it is using most heavily may reduce system-wide
// communication traffic").
type Stage struct {
	Forwarded int
}

// Kind implements proc.Body.
func (s *Stage) Kind() string { return StageKind }

// Step implements proc.Body.
func (s *Stage) Step(ctx proc.Context, budget int) (int, proc.Status) {
	for {
		d, ok := ctx.Recv()
		if !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
		if d.Op != 0 {
			continue
		}
		ctx.Send(1, d.Body)
		s.Forwarded++
	}
}

// Snapshot implements proc.Body.
func (s *Stage) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(s)
	return buf.Bytes(), err
}

// Restore implements proc.Body.
func (s *Stage) Restore(data []byte) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(s)
}

// LinkHolderKind is the registry name of LinkHolder.
const LinkHolderKind = "wl-holder"

// LinkHolder passively holds links (it models the long-lived request and
// resource links of §2.4 that make server migration the worst case for
// link updating). It sends one message on each held link when poked.
type LinkHolder struct {
	Poked int
}

// Kind implements proc.Body.
func (h *LinkHolder) Kind() string { return LinkHolderKind }

// Step implements proc.Body.
func (h *LinkHolder) Step(ctx proc.Context, budget int) (int, proc.Status) {
	for {
		d, ok := ctx.Recv()
		if !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
		if string(d.Body) == "poke" {
			h.Poked++
			// Send one message on every held link.
			for id := link.ID(1); id < 64; id++ {
				if _, ok := ctx.LinkAddr(id); ok {
					ctx.Send(id, []byte("held-link-traffic"))
				}
			}
		}
	}
}

// Snapshot implements proc.Body.
func (h *LinkHolder) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(h)
	return buf.Bytes(), err
}

// Restore implements proc.Body.
func (h *LinkHolder) Restore(data []byte) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(h)
}

// EchoKind is the registry name of Echo.
const EchoKind = "wl-echo"

// Echo bounces every delivery straight back over link 1 and counts rounds.
// Unlike Sink it retains nothing, so a long benchmark run stays in steady
// state — this is the body behind the kernel hot-path throughput numbers.
type Echo struct {
	Rounds int
}

// Kind implements proc.Body.
func (e *Echo) Kind() string { return EchoKind }

// Step implements proc.Body.
func (e *Echo) Step(ctx proc.Context, budget int) (int, proc.Status) {
	for {
		d, ok := ctx.Recv()
		if !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
		e.Rounds++
		if err := ctx.Send(1, d.Body); err != nil {
			return 0, proc.Status{State: proc.Crashed, Err: err}
		}
	}
}

// Snapshot implements proc.Body.
func (e *Echo) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(e)
	return buf.Bytes(), err
}

// Restore implements proc.Body.
func (e *Echo) Restore(data []byte) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(e)
}

// CounterKind is the registry name of Counter.
const CounterKind = "wl-counter"

// Counter consumes deliveries and counts them without retaining bodies —
// the steady-state companion sink to Echo.
type Counter struct {
	Seen int
}

// Kind implements proc.Body.
func (c *Counter) Kind() string { return CounterKind }

// Step implements proc.Body.
func (c *Counter) Step(ctx proc.Context, budget int) (int, proc.Status) {
	for {
		if _, ok := ctx.Recv(); !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
		c.Seen++
	}
}

// Snapshot implements proc.Body.
func (c *Counter) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(c)
	return buf.Bytes(), err
}

// Restore implements proc.Body.
func (c *Counter) Restore(data []byte) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(c)
}

// NullKind is the registry name of Null.
const NullKind = "wl-null"

// Null blocks forever and carries no state — its Snapshot is empty, so a
// migration of a Null process measures pure protocol-and-transfer cost
// (the body behind the migration hot-path number).
type Null struct{}

// Kind implements proc.Body.
func (n *Null) Kind() string { return NullKind }

// Step implements proc.Body.
func (n *Null) Step(ctx proc.Context, budget int) (int, proc.Status) {
	for {
		if _, ok := ctx.Recv(); !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
	}
}

// Snapshot implements proc.Body.
func (n *Null) Snapshot() ([]byte, error) { return nil, nil }

// Restore implements proc.Body.
func (n *Null) Restore([]byte) error { return nil }

// RecorderKind is the registry name of Recorder.
const RecorderKind = "wl-recorder"

// Recorder consumes sequence-stamped deliveries — a 4-byte little-endian
// sequence number at the head of the body — and counts arrivals per
// sequence. The chaos invariant checker reads Seen to prove at-most-once
// delivery under faults: a count above one is a duplicate, and a missing
// sequence is legal only when the cluster accounted a matching loss.
type Recorder struct {
	Seen map[uint32]uint32
	Junk int // deliveries too short to carry a sequence number
}

// Kind implements proc.Body.
func (r *Recorder) Kind() string { return RecorderKind }

// Step implements proc.Body.
func (r *Recorder) Step(ctx proc.Context, budget int) (int, proc.Status) {
	for {
		d, ok := ctx.Recv()
		if !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
		if len(d.Body) < 4 {
			r.Junk++
			continue
		}
		if r.Seen == nil {
			r.Seen = make(map[uint32]uint32)
		}
		seq := uint32(d.Body[0]) | uint32(d.Body[1])<<8 |
			uint32(d.Body[2])<<16 | uint32(d.Body[3])<<24
		r.Seen[seq]++
	}
}

// Snapshot implements proc.Body.
func (r *Recorder) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(r)
	return buf.Bytes(), err
}

// Restore implements proc.Body.
func (r *Recorder) Restore(data []byte) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(r)
}

// Registry returns a process registry with every workload body kind
// registered (plus the VM kind that proc.NewRegistry pre-registers), so
// drivers outside the kernel can build migratable clusters without
// touching internal/proc directly.
func Registry() *proc.Registry {
	reg := proc.NewRegistry()
	reg.Register(SinkKind, func() proc.Body { return &Sink{} })
	reg.Register(ChatterKind, func() proc.Body { return &Chatter{} })
	reg.Register(LinkHolderKind, func() proc.Body { return &LinkHolder{} })
	reg.Register(StageKind, func() proc.Body { return &Stage{} })
	reg.Register(EchoKind, func() proc.Body { return &Echo{} })
	reg.Register(CounterKind, func() proc.Body { return &Counter{} })
	reg.Register(NullKind, func() proc.Body { return &Null{} })
	reg.Register(RecorderKind, func() proc.Body { return &Recorder{} })
	reg.Register(JobKind, func() proc.Body { return &Job{} })
	reg.Register(SpinnerKind, func() proc.Body { return &Spinner{} })
	return reg
}

package workload_test

import (
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/kernel"
	"demosmp/internal/link"
	"demosmp/internal/netw"
	"demosmp/internal/proc"
	"demosmp/internal/sim"
	"demosmp/internal/workload"
)

func rig(t *testing.T, machines int) (*sim.Engine, map[int]*kernel.Kernel) {
	t.Helper()
	eng := sim.NewEngine(5)
	net := netw.New(eng, netw.Config{})
	reg := proc.NewRegistry()
	reg.Register(workload.SinkKind, func() proc.Body { return &workload.Sink{} })
	reg.Register(workload.ChatterKind, func() proc.Body { return &workload.Chatter{} })
	reg.Register(workload.LinkHolderKind, func() proc.Body { return &workload.LinkHolder{} })
	ks := map[int]*kernel.Kernel{}
	for i := 1; i <= machines; i++ {
		ks[i] = kernel.New(addr.MachineID(i), eng, net, kernel.Config{Registry: reg})
	}
	return eng, ks
}

func TestCPUBoundPrograms(t *testing.T) {
	eng, ks := rig(t, 1)
	pid, err := ks[1].Spawn(kernel.SpawnSpec{Program: workload.CPUBound(123)})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	e, ok := ks[1].Exit(pid)
	if !ok || e.Code != workload.CPUBoundResult(123) {
		t.Fatalf("exit %v %v", e, ok)
	}
}

func TestCPUBoundSizedImage(t *testing.T) {
	for _, size := range []int{1024, 8192, 65536} {
		p := workload.CPUBoundSized(50, size)
		if p.ImageSize() < size {
			t.Fatalf("image %d < requested %d", p.ImageSize(), size)
		}
	}
	eng, ks := rig(t, 1)
	pid, _ := ks[1].Spawn(kernel.SpawnSpec{Program: workload.CPUBoundSized(50, 16384)})
	eng.Run()
	if e, _ := ks[1].Exit(pid); e.Code != workload.CPUBoundResult(50) {
		t.Fatalf("padded program broke: %d", e.Code)
	}
}

func TestEchoAndRequestPair(t *testing.T) {
	eng, ks := rig(t, 2)
	server, _ := ks[1].Spawn(kernel.SpawnSpec{Program: workload.EchoServer(7)})
	client, _ := ks[2].Spawn(kernel.SpawnSpec{
		Program: workload.RequestClient(7),
		Links:   []link.Link{{Addr: addr.At(server, 1)}},
	})
	eng.Run()
	if e, _ := ks[2].Exit(client); e.Code != 7 {
		t.Fatalf("client rounds: %d", e.Code)
	}
	if e, _ := ks[1].Exit(server); e.Code != 0 {
		t.Fatalf("server exit: %d", e.Code)
	}
}

func TestChatterToSink(t *testing.T) {
	eng, ks := rig(t, 2)
	sink := &workload.Sink{}
	sinkPID, _ := ks[2].Spawn(kernel.SpawnSpec{Body: sink})
	chatter, _ := ks[1].Spawn(kernel.SpawnSpec{
		Body:  &workload.Chatter{N: 5, Interval: 100},
		Links: []link.Link{{Addr: addr.At(sinkPID, 2)}},
	})
	eng.Run()
	if e, _ := ks[1].Exit(chatter); e.Code != 5 {
		t.Fatalf("chatter sent %d", e.Code)
	}
	if len(sink.Got) != 5 || sink.Got[0] != "chat-0" {
		t.Fatalf("sink got %v", sink.Got)
	}
}

func TestLinkHolderPoke(t *testing.T) {
	eng, ks := rig(t, 2)
	sink := &workload.Sink{}
	sinkPID, _ := ks[2].Spawn(kernel.SpawnSpec{Body: sink})
	holder, _ := ks[1].Spawn(kernel.SpawnSpec{
		Body: &workload.LinkHolder{},
		Links: []link.Link{
			{Addr: addr.At(sinkPID, 2)},
			{Addr: addr.At(sinkPID, 2)},
			{Addr: addr.At(sinkPID, 2)},
		},
	})
	ks[1].GiveMessage(holder, addr.KernelAddr(1), []byte("poke"))
	eng.Run()
	if len(sink.Got) != 3 {
		t.Fatalf("holder sent %d messages, want one per held link", len(sink.Got))
	}
}

func TestSelfMigratorProgramAssembles(t *testing.T) {
	// Full behavior is covered in core; here just validate the program.
	p := workload.SelfMigrator(100, 2)
	if p == nil || len(p.Code) == 0 {
		t.Fatal("empty program")
	}
}

func TestStagePipeline(t *testing.T) {
	eng, ks := rig(t, 2)
	sink := &workload.Sink{}
	sinkPID, _ := ks[2].Spawn(kernel.SpawnSpec{Body: sink})
	stage, _ := ks[1].Spawn(kernel.SpawnSpec{
		Body:  &workload.Stage{},
		Links: []link.Link{{Addr: addr.At(sinkPID, 2)}},
	})
	src, _ := ks[1].Spawn(kernel.SpawnSpec{
		Body:  &workload.Chatter{N: 4, Interval: 50},
		Links: []link.Link{{Addr: addr.At(stage, 1)}},
	})
	eng.Run()
	if e, _ := ks[1].Exit(src); e.Code != 4 {
		t.Fatalf("source sent %d", e.Code)
	}
	if len(sink.Got) != 4 {
		t.Fatalf("sink got %d messages through the stage", len(sink.Got))
	}
	body, _ := ks[1].BodyOf(stage)
	if fwd := body.(*workload.Stage).Forwarded; fwd != 4 {
		t.Fatalf("stage forwarded %d", fwd)
	}
}

// Package experiment is the policy tournament harness: it runs named,
// seeded A/B arms — same seed, same workload, policies swapped — computes
// paired metrics, and emits a confirm/refute verdict per hypothesis, in
// the hypothesis-catalog style of inference-sim. The paper shipped the
// migration mechanism and punted on strategy (§7); this package is how
// strategy candidates earn their way in: beat the baseline on the same
// deterministic workload or be refuted, with the evidence in a findings
// artifact that reproduces bit-identically from the seed.
package experiment

import (
	"fmt"
	"math"
	"sort"

	"demosmp/internal/addr"
	"demosmp/internal/core"
	"demosmp/internal/kernel"
	"demosmp/internal/link"
	"demosmp/internal/msg"
	"demosmp/internal/policy"
	"demosmp/internal/sim"
	"demosmp/internal/workload"
)

// RunSpec describes one arm's cluster and workload. Policy is a factory —
// policies hold hysteresis state, so every run needs a fresh instance.
type RunSpec struct {
	Machines        int
	Shards          int
	Parallel        bool
	Seed            int64
	LoadReportEvery sim.Time
	Horizon         sim.Time // simulated runtime bound
	Workload        workload.OpenLoop
	Policy          func() policy.Policy
	PolicyName      string

	// Pipelines adds cross-machine chatter→sink pairs (communication
	// structure for affinity policies to exploit). Pair k runs its
	// chatter on machine (k mod M)+1 talking to a sink halfway around
	// the cluster.
	Pipelines    int
	PipelineMsgs int
	PipelineGap  sim.Time

	// TraceCap sizes the trace ring (0 = cluster default) and Observe,
	// when set, receives the finished cluster before metrics are
	// collected — the hook the tournament uses to export an obs
	// timeline. Neither influences the run itself.
	TraceCap int
	Observe  func(*core.Cluster)
}

// Metrics are one arm's paired outcome measures. All integers, all in
// simulated units — byte-identical across runs of the same spec.
type Metrics struct {
	JobsFinished   uint64   `json:"jobs_finished"`
	JobsUnfinished uint64   `json:"jobs_unfinished"`
	P50Latency     sim.Time `json:"p50_latency_us"`
	P99Latency     sim.Time `json:"p99_latency_us"`
	Makespan       sim.Time `json:"makespan_us"`

	CrossUserFrames uint64 `json:"cross_user_frames"`
	CrossUserBytes  uint64 `json:"cross_user_bytes"`

	PolicySweeps      uint64 `json:"policy_sweeps"`
	PolicyDecisions   uint64 `json:"policy_decisions"`
	MigrationsOrdered uint64 `json:"migrations_ordered"`
	MigrationsDone    uint64 `json:"migrations_done"`

	// Migration cost actually paid, from the §6 ledger.
	FreezePaid       sim.Time `json:"freeze_paid_us"`
	AdminBytesPaid   uint64   `json:"admin_bytes_paid"`
	ForwardsAbsorbed uint64   `json:"forwards_absorbed"`

	// LoadStddevMilli is the per-machine CPU-busy standard deviation in
	// thousandths of the mean (coefficient of variation, ‰).
	LoadStddevMilli uint64 `json:"load_stddev_milli"`
}

// jobRec tracks one spawned job for completion-latency accounting.
type jobRec struct {
	pid addr.ProcessID
	at  sim.Time
}

// Run executes one arm and collects its metrics.
func Run(spec RunSpec) (Metrics, error) {
	var zero Metrics
	if spec.Machines < 2 {
		return zero, fmt.Errorf("experiment: need >= 2 machines")
	}
	if spec.Horizon <= 0 {
		return zero, fmt.Errorf("experiment: need a positive horizon")
	}
	var pol policy.Policy
	if spec.Policy != nil {
		pol = spec.Policy()
	}
	c, err := core.New(core.Options{
		Machines:        spec.Machines,
		Seed:            spec.Seed,
		Shards:          spec.Shards,
		ShardParallel:   spec.Parallel,
		PM:              true,
		LoadReportEvery: spec.LoadReportEvery,
		Policy:          pol,
		TraceCap:        spec.TraceCap,
	})
	if err != nil {
		return zero, err
	}

	// Per-machine job logs: each slot is written only by its machine's
	// shard goroutine, so parallel rounds stay race-free and the merged
	// log is rebuilt in deterministic machine order afterwards.
	jobs := make([][]jobRec, spec.Machines+1)
	spec.Workload.Spin = true
	instr := uint64(2000) // kernel default InstrCostNanos
	for m := 1; m <= spec.Machines; m++ {
		m := m
		st := workload.NewArrivals(spec.Workload, m)
		eng := c.EngineOf(m)
		k := c.Kernel(m)
		var arm func()
		arm = func() {
			at, svc, ok := st.Next()
			if !ok {
				return
			}
			eng.At(at, "exp:arrival", func() {
				work := int(uint64(svc) * 1000 / instr)
				if work < 1 {
					work = 1
				}
				pid, err := k.Spawn(kernel.SpawnSpec{Body: &workload.Spinner{Work: work}})
				if err == nil {
					jobs[m] = append(jobs[m], jobRec{pid: pid, at: at})
				}
				arm()
			})
		}
		arm()
	}

	// Communication pipelines: chatter on src, sink halfway around.
	for p := 0; p < spec.Pipelines; p++ {
		src := p%spec.Machines + 1
		dst := (p+spec.Machines/2)%spec.Machines + 1
		if src == dst {
			dst = dst%spec.Machines + 1
		}
		sink, err := c.Spawn(dst, kernel.SpawnSpec{Body: &workload.Sink{}})
		if err != nil {
			return zero, err
		}
		gap := spec.PipelineGap
		if gap <= 0 {
			gap = 1000
		}
		chatter, err := c.Spawn(src, kernel.SpawnSpec{
			Body:  &workload.Chatter{N: spec.PipelineMsgs, Interval: uint32(gap)},
			Links: []link.Link{{Addr: addr.At(sink, addr.MachineID(dst))}},
		})
		if err != nil {
			return zero, err
		}
		jobs[src] = append(jobs[src], jobRec{pid: chatter, at: 0})
	}

	c.RunFor(spec.Horizon)
	if spec.Observe != nil {
		spec.Observe(c)
	}

	// Completion latencies.
	var lats []sim.Time
	m := zero
	for machine := 1; machine <= spec.Machines; machine++ {
		for _, j := range jobs[machine] {
			e, _, ok := c.ExitOf(j.pid)
			if !ok {
				m.JobsUnfinished++
				continue
			}
			m.JobsFinished++
			lats = append(lats, e.At-j.at)
			if e.At > m.Makespan {
				m.Makespan = e.At
			}
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if n := len(lats); n > 0 {
		m.P50Latency = lats[n/2]
		p99 := n * 99 / 100
		if p99 >= n {
			p99 = n - 1
		}
		m.P99Latency = lats[p99]
	}

	net := c.NetStats()
	m.CrossUserFrames = net.ByKind[msg.KindUser]
	m.CrossUserBytes = net.BytesByKind[msg.KindUser]

	pm := c.PM()
	m.PolicySweeps = pm.PolicySweeps
	m.PolicyDecisions = pm.PolicyDecisions
	m.MigrationsOrdered = pm.MigrationsOrdered

	for _, rec := range c.Ledger().Records() {
		if !rec.OK {
			continue
		}
		m.MigrationsDone++
		m.FreezePaid += rec.FreezeMicros()
		m.AdminBytesPaid += uint64(rec.AdminBytes)
		m.ForwardsAbsorbed += rec.ForwardsAbsorbed
	}

	stats := c.Stats()
	var busy []float64
	var total float64
	for machine := 1; machine <= spec.Machines; machine++ {
		b := float64(stats.PerKernel[addr.MachineID(machine)].CPUBusy)
		busy = append(busy, b)
		total += b
	}
	if mean := total / float64(len(busy)); mean > 0 {
		var varsum float64
		for _, b := range busy {
			d := b - mean
			varsum += d * d
		}
		m.LoadStddevMilli = uint64(math.Sqrt(varsum/float64(len(busy))) * 1000 / mean)
	}
	return m, nil
}

// Hypothesis runner: a hypothesis names a challenger arm, a baseline arm,
// a decision metric, and the seeds to pair them over. Both arms of a pair
// run under the same seed and the same workload — only the policy differs —
// so every per-seed delta is attributable to the policy alone. The verdict
// is deliberately blunt: the challenger must win the majority of seeds AND
// the pooled mean, or the hypothesis is refuted.
package experiment

import (
	"encoding/json"
	"fmt"
)

// Hypothesis is one tournament entry. Score extracts the decision metric
// from an arm's Metrics; LowerIsBetter orients the comparison.
type Hypothesis struct {
	ID            string
	Claim         string
	Metric        string // human name of the decision metric
	LowerIsBetter bool
	Seeds         []int64
	Challenger    Arm
	Baseline      Arm
	Score         func(Metrics) int64
}

// Arm names one side of an A/B pair. Spec.Seed is overwritten per pair.
type Arm struct {
	Name string
	Spec RunSpec
}

// SeedResult is one paired run: both arms under one seed.
type SeedResult struct {
	Seed            int64   `json:"seed"`
	ChallengerScore int64   `json:"challenger_score"`
	BaselineScore   int64   `json:"baseline_score"`
	ChallengerWins  bool    `json:"challenger_wins"`
	Challenger      Metrics `json:"challenger"`
	Baseline        Metrics `json:"baseline"`
}

// Finding is the JSON artifact for one hypothesis. It contains no
// wall-clock timestamps or host details: the same binary, seeds and specs
// reproduce it byte-for-byte.
type Finding struct {
	ID             string       `json:"id"`
	Claim          string       `json:"claim"`
	Metric         string       `json:"metric"`
	LowerIsBetter  bool         `json:"lower_is_better"`
	ChallengerName string       `json:"challenger"`
	BaselineName   string       `json:"baseline"`
	Machines       int          `json:"machines"`
	Shards         int          `json:"shards"`
	Seeds          []SeedResult `json:"seeds"`
	Wins           int          `json:"challenger_wins"`
	MeanChallenger int64        `json:"mean_challenger"`
	MeanBaseline   int64        `json:"mean_baseline"`
	// DeltaPermille is the challenger's improvement over the baseline in
	// thousandths (positive = challenger better, respecting direction).
	DeltaPermille int64  `json:"delta_permille"`
	Verdict       string `json:"verdict"` // "confirmed" | "refuted"
}

// Verdict values.
const (
	VerdictConfirmed = "confirmed"
	VerdictRefuted   = "refuted"
)

// RunHypothesis executes every paired arm and renders the verdict.
func RunHypothesis(h Hypothesis) (Finding, error) {
	var f Finding
	if len(h.Seeds) == 0 {
		return f, fmt.Errorf("experiment %s: no seeds", h.ID)
	}
	if h.Score == nil {
		return f, fmt.Errorf("experiment %s: no score function", h.ID)
	}
	f = Finding{
		ID:             h.ID,
		Claim:          h.Claim,
		Metric:         h.Metric,
		LowerIsBetter:  h.LowerIsBetter,
		ChallengerName: h.Challenger.Name,
		BaselineName:   h.Baseline.Name,
		Machines:       h.Challenger.Spec.Machines,
		Shards:         h.Challenger.Spec.Shards,
	}
	var sumC, sumB int64
	for _, seed := range h.Seeds {
		cs := h.Challenger.Spec
		bs := h.Baseline.Spec
		cs.Seed, bs.Seed = seed, seed
		cm, err := Run(cs)
		if err != nil {
			return f, fmt.Errorf("experiment %s seed %d (%s): %w", h.ID, seed, h.Challenger.Name, err)
		}
		bm, err := Run(bs)
		if err != nil {
			return f, fmt.Errorf("experiment %s seed %d (%s): %w", h.ID, seed, h.Baseline.Name, err)
		}
		sc, sb := h.Score(cm), h.Score(bm)
		wins := sc < sb
		if !h.LowerIsBetter {
			wins = sc > sb
		}
		if wins {
			f.Wins++
		}
		sumC += sc
		sumB += sb
		f.Seeds = append(f.Seeds, SeedResult{
			Seed: seed, ChallengerScore: sc, BaselineScore: sb,
			ChallengerWins: wins, Challenger: cm, Baseline: bm,
		})
	}
	n := int64(len(h.Seeds))
	f.MeanChallenger = sumC / n
	f.MeanBaseline = sumB / n
	if f.MeanBaseline != 0 {
		gain := f.MeanBaseline - f.MeanChallenger
		if !h.LowerIsBetter {
			gain = f.MeanChallenger - f.MeanBaseline
		}
		f.DeltaPermille = gain * 1000 / abs64(f.MeanBaseline)
	}
	meanBetter := f.MeanChallenger < f.MeanBaseline
	if !h.LowerIsBetter {
		meanBetter = f.MeanChallenger > f.MeanBaseline
	}
	if 2*f.Wins > len(h.Seeds) && meanBetter {
		f.Verdict = VerdictConfirmed
	} else {
		f.Verdict = VerdictRefuted
	}
	return f, nil
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// MarshalFindings renders findings as deterministic, indented JSON.
func MarshalFindings(fs []Finding) ([]byte, error) {
	return json.MarshalIndent(fs, "", "  ")
}

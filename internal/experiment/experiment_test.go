package experiment_test

import (
	"bytes"
	"reflect"
	"testing"

	"demosmp/internal/experiment"
	"demosmp/internal/policy"
	"demosmp/internal/workload"
)

// smallSpec is a fast 4-machine arm with a hot-skewed CPU-bound workload.
func smallSpec(pol func() policy.Policy, name string) experiment.RunSpec {
	return experiment.RunSpec{
		Machines:        4,
		Shards:          2,
		Seed:            7,
		LoadReportEvery: 20000,
		Horizon:         1_500_000,
		Workload: workload.OpenLoop{
			Seed: 11, MeanGap: 400, PerMachine: 20,
			ShortService: 400, LongService: 6000, LongFraction: 0.3,
			HotEvery: 2, HotFactor: 3,
		},
		Policy:     pol,
		PolicyName: name,
	}
}

func TestRunCollectsMetrics(t *testing.T) {
	m, err := experiment.Run(smallSpec(func() policy.Policy {
		return policy.NewQueueDepth(3, 2, 50000)
	}, "queue-depth"))
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsFinished == 0 {
		t.Fatal("no jobs finished")
	}
	if m.P50Latency == 0 || m.P99Latency < m.P50Latency {
		t.Fatalf("latency percentiles broken: p50=%d p99=%d", m.P50Latency, m.P99Latency)
	}
	if m.PolicySweeps == 0 {
		t.Fatal("collector never swept")
	}
	if m.Makespan == 0 {
		t.Fatal("makespan not recorded")
	}
}

func TestRunDeterministic(t *testing.T) {
	spec := smallSpec(func() policy.Policy {
		return policy.NewQueueDepth(3, 2, 50000)
	}, "queue-depth")
	a, err := experiment.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := experiment.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same spec, different metrics:\n%+v\n%+v", a, b)
	}
}

func TestRunPipelinesGenerateCrossTraffic(t *testing.T) {
	spec := smallSpec(nil, "none")
	spec.Pipelines = 4
	spec.PipelineMsgs = 30
	spec.PipelineGap = 2000
	m, err := experiment.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if m.CrossUserFrames == 0 {
		t.Fatal("pipelines produced no cross-machine user frames")
	}
}

func TestRunHypothesisVerdictAndReproducibility(t *testing.T) {
	h := experiment.Hypothesis{
		ID:            "test-qd",
		Claim:         "queue-depth beats no policy on p99 latency under hot skew",
		Metric:        "p99_latency_us",
		LowerIsBetter: true,
		Seeds:         []int64{1, 2},
		Challenger: experiment.Arm{Name: "queue-depth", Spec: smallSpec(func() policy.Policy {
			return policy.NewQueueDepth(3, 2, 50000)
		}, "queue-depth")},
		Baseline: experiment.Arm{Name: "none", Spec: smallSpec(nil, "none")},
		Score:    func(m experiment.Metrics) int64 { return int64(m.P99Latency) },
	}
	f, err := experiment.RunHypothesis(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Seeds) != 2 {
		t.Fatalf("want 2 seed results, got %d", len(f.Seeds))
	}
	if f.Verdict != experiment.VerdictConfirmed && f.Verdict != experiment.VerdictRefuted {
		t.Fatalf("no verdict rendered: %q", f.Verdict)
	}
	for _, s := range f.Seeds {
		if s.Challenger.JobsFinished == 0 || s.Baseline.JobsFinished == 0 {
			t.Fatalf("seed %d: empty arm metrics", s.Seed)
		}
	}
	j1, err := experiment.MarshalFindings([]experiment.Finding{f})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := experiment.RunHypothesis(h)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := experiment.MarshalFindings([]experiment.Finding{f2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatal("findings JSON is not reproducible from the same seeds")
	}
}

func TestRunHypothesisDirection(t *testing.T) {
	// Score favoring the baseline by construction: higher-is-better on a
	// metric where both arms tie → refuted (no strict win).
	h := experiment.Hypothesis{
		ID: "test-tie", Claim: "tie refutes", Metric: "jobs_finished",
		Seeds:      []int64{3},
		Challenger: experiment.Arm{Name: "a", Spec: smallSpec(nil, "none")},
		Baseline:   experiment.Arm{Name: "b", Spec: smallSpec(nil, "none")},
		Score:      func(m experiment.Metrics) int64 { return int64(m.JobsFinished) },
	}
	f, err := experiment.RunHypothesis(h)
	if err != nil {
		t.Fatal(err)
	}
	if f.Verdict != experiment.VerdictRefuted {
		t.Fatalf("identical arms must refute, got %q (delta %d‰)", f.Verdict, f.DeltaPermille)
	}
}

func TestRunRejectsBadSpecs(t *testing.T) {
	if _, err := experiment.Run(experiment.RunSpec{Machines: 1, Horizon: 1000}); err == nil {
		t.Fatal("want error for 1 machine")
	}
	spec := smallSpec(nil, "none")
	spec.Horizon = 0
	if _, err := experiment.Run(spec); err == nil {
		t.Fatal("want error for zero horizon")
	}
}

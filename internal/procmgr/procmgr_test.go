package procmgr_test

import (
	"strings"
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/link"
	"demosmp/internal/msg"
	"demosmp/internal/policy"
	"demosmp/internal/proc"
	"demosmp/internal/procmgr"
	"demosmp/internal/proctest"
)

func step(t *testing.T, m proc.Body, ctx *proctest.Ctx) {
	t.Helper()
	if _, st := m.Step(ctx, 1); st.State != proc.Blocked {
		t.Fatalf("pm stopped: %+v", st)
	}
}

func pid(l uint16) addr.ProcessID { return addr.ProcessID{Creator: 2, Local: addr.LocalUID(l)} }

func TestEventRoundTrip(t *testing.T) {
	in := procmgr.Event{What: "migrated", PID: pid(3), Machine: 4, Tag: 9}
	out, err := procmgr.DecodeEvent(procmgr.EncodeEvent(in))
	if err != nil || out != in {
		t.Fatalf("%+v %v", out, err)
	}
	if _, err := procmgr.DecodeEvent([]byte{5, 'a'}); err == nil {
		t.Fatal("decoded garbage")
	}
}

func TestCmdMigrateIssuesRequest(t *testing.T) {
	m := procmgr.New(nil)
	m.Note(pid(1), 2)
	ctx := proctest.New()
	reply, _ := ctx.MintLink(link.Link{Attrs: link.AttrReply})
	ctx.PushBody(addr.KernelAddr(1), procmgr.CmdMigrate(pid(1), 3), reply)
	step(t, m, ctx)

	sent, ok := ctx.LastSend()
	if !ok || sent.Op != msg.OpMigrateRequest {
		t.Fatalf("no request: %+v", sent)
	}
	req, err := msg.DecodeMigrateRequest(sent.Body)
	if err != nil || req.PID != pid(1) || req.Dest != 3 {
		t.Fatalf("request: %+v %v", req, err)
	}
	// The minted link was DELIVERTOKERNEL to the process at its known
	// location.
	l := ctx.Links[sent.On]
	if l.Attrs&link.AttrDeliverToKernel == 0 {
		// The link was destroyed after use; that is also acceptable —
		// check the table no longer holds it.
		if _, still := ctx.Links[sent.On]; still {
			t.Fatalf("request link not DTK: %v", l)
		}
	}
	if m.MigrationsOrdered != 1 {
		t.Fatalf("ordered = %d", m.MigrationsOrdered)
	}

	// MigrateDone updates locations and relays the event.
	done := msg.MigrateDone{PID: pid(1), Machine: 3, OK: true}
	ctx.Push(proc.Delivery{Op: msg.OpMigrateDone, Body: done.Encode()})
	step(t, m, ctx)
	if m.Locations[pid(1)] != 3 {
		t.Fatalf("location: %v", m.Locations[pid(1)])
	}
	sent, _ = ctx.LastSend()
	ev, err := procmgr.DecodeEvent(sent.Body)
	if err != nil || ev.What != "migrated" || ev.Machine != 3 {
		t.Fatalf("event: %+v %v", ev, err)
	}
}

func TestFailedMigrationEvent(t *testing.T) {
	m := procmgr.New(nil)
	ctx := proctest.New()
	reply, _ := ctx.MintLink(link.Link{Attrs: link.AttrReply})
	ctx.PushBody(addr.KernelAddr(1), procmgr.CmdMigrate(pid(1), 3), reply)
	ctx.Push(proc.Delivery{Op: msg.OpMigrateDone,
		Body: msg.MigrateDone{PID: pid(1), Machine: 1, OK: false}.Encode()})
	step(t, m, ctx)
	sent, _ := ctx.LastSend()
	if ev, _ := procmgr.DecodeEvent(sent.Body); ev.What != "migrate-failed" {
		t.Fatalf("event: %+v", ev)
	}
	if _, known := m.Locations[pid(1)]; known {
		t.Fatal("failed migration updated the location table")
	}
}

func TestCmdSpawn(t *testing.T) {
	m := procmgr.New(nil)
	ctx := proctest.New()
	reply, _ := ctx.MintLink(link.Link{Attrs: link.AttrReply})
	ctx.PushBody(addr.KernelAddr(1), procmgr.CmdSpawn(2, 7, "hog", "a", "b"), reply)
	step(t, m, ctx)
	sent, ok := ctx.LastSend()
	if !ok || sent.Op != msg.OpCreateProcess {
		t.Fatalf("spawn: %+v", sent)
	}
	req, err := msg.DecodeCreateProcess(sent.Body)
	if err != nil || req.Name != "hog" || len(req.Args) != 2 || req.Tag != 7 {
		t.Fatalf("create: %+v %v", req, err)
	}
	// Kernel's CreateDone reply flows back as an event.
	ctx.Push(proc.Delivery{Op: msg.OpCreateDone,
		Body: msg.CreateDone{PID: pid(9), Machine: 2, Tag: 7}.Encode()})
	step(t, m, ctx)
	if m.Locations[pid(9)] != 2 {
		t.Fatal("spawned pid not recorded")
	}
	sent, _ = ctx.LastSend()
	if ev, _ := procmgr.DecodeEvent(sent.Body); ev.What != "spawned" || ev.PID != pid(9) {
		t.Fatalf("event: %+v", ev)
	}
}

func TestLocate(t *testing.T) {
	m := procmgr.New(nil)
	m.Note(pid(5), 4)
	ctx := proctest.New()
	ctx.Push(proc.Delivery{Op: msg.OpLocate, From: addr.KernelAddr(3),
		Body: addr.EncodePID(nil, pid(5))})
	step(t, m, ctx)
	sent, ok := ctx.LastSend()
	if !ok || sent.Op != msg.OpLocateReply {
		t.Fatalf("locate: %+v", sent)
	}
	pm, err := msg.DecodePIDMachine(sent.Body)
	if err != nil || pm.Machine != 4 {
		t.Fatalf("reply: %+v %v", pm, err)
	}
}

func TestSelfMigrationHintHonored(t *testing.T) {
	m := procmgr.New(nil)
	m.Note(pid(2), 1)
	ctx := proctest.New()
	ctx.Push(proc.Delivery{Op: msg.OpMigrateRequest, From: addr.At(pid(2), 1),
		Body: msg.MigrateRequest{PID: pid(2), Dest: 3}.Encode()})
	step(t, m, ctx)
	sent, ok := ctx.LastSend()
	if !ok || sent.Op != msg.OpMigrateRequest {
		t.Fatalf("hint not honored: %+v", sent)
	}
}

func TestLoadReportDrivesPolicy(t *testing.T) {
	m := procmgr.New(policy.NewThreshold(80, 20, 1000))
	m.SetMachines([]addr.MachineID{1, 2})
	ctx := proctest.New()
	hot := msg.LoadReport{Machine: 1, CPUPercent: 95, Procs: []msg.ProcLoad{
		{PID: pid(1), CPUMicros: 90000},
		{PID: pid(2), CPUMicros: 90000},
	}}
	cold := msg.LoadReport{Machine: 2, CPUPercent: 1}
	// The policy runs when the round closes — i.e. when the highest
	// machine's report lands — over the full assembled view.
	ctx.Push(proc.Delivery{Op: msg.OpLoadReport, Body: hot.Encode()})
	step(t, m, ctx)
	if m.PolicySweeps != 0 || m.PolicyDecisions != 0 {
		t.Fatalf("decided on a half-assembled view: sweeps=%d decisions=%d",
			m.PolicySweeps, m.PolicyDecisions)
	}
	ctx.Push(proc.Delivery{Op: msg.OpLoadReport, Body: cold.Encode()})
	step(t, m, ctx)
	if m.PolicySweeps != 1 || m.PolicyDecisions != 1 {
		t.Fatalf("sweeps=%d decisions=%d", m.PolicySweeps, m.PolicyDecisions)
	}
	if len(m.DecisionTrace) != 1 {
		t.Fatalf("trace: %v", m.DecisionTrace)
	}
	sent, _ := ctx.LastSend()
	if sent.Op != msg.OpMigrateRequest {
		t.Fatalf("policy did not order a migration: %+v", sent)
	}
	if m.Locations[pid(1)] != 1 {
		t.Fatal("load report did not refresh locations")
	}
}

func TestStatText(t *testing.T) {
	m := procmgr.New(nil)
	m.Note(pid(1), 2)
	ctx := proctest.New()
	reply, _ := ctx.MintLink(link.Link{Attrs: link.AttrReply})
	ctx.PushBody(addr.KernelAddr(1), procmgr.CmdStat(), reply)
	step(t, m, ctx)
	sent, _ := ctx.LastSend()
	if !strings.Contains(string(sent.Body), "p2.1 @ m2") {
		t.Fatalf("stat: %q", sent.Body)
	}
}

func TestSnapshotRestoreKeepsLocations(t *testing.T) {
	m := procmgr.New(policy.NewThreshold(80, 20, 1000))
	m.Note(pid(1), 2)
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	m2 := procmgr.New(nil)
	if err := m2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if m2.Locations[pid(1)] != 2 {
		t.Fatal("locations lost")
	}
	// Policy reattaches after restore.
	m2.SetPolicy(policy.Manual{})
	if m2.Policy().Name() != "manual" {
		t.Fatal("policy not reattached")
	}
}

package procmgr_test

import (
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/link"
	"demosmp/internal/memsched"
	"demosmp/internal/msg"
	"demosmp/internal/proc"
	"demosmp/internal/procmgr"
	"demosmp/internal/proctest"
)

func TestSignalCommands(t *testing.T) {
	for sig, op := range map[byte]msg.Op{
		procmgr.SigSuspend: msg.OpSuspend,
		procmgr.SigResume:  msg.OpResume,
		procmgr.SigKill:    msg.OpKill,
	} {
		m := procmgr.New(nil)
		m.Note(pid(4), 2)
		ctx := proctest.New()
		reply, _ := ctx.MintLink(link.Link{Attrs: link.AttrReply})
		ctx.PushBody(addr.KernelAddr(1), procmgr.CmdSignal(pid(4), sig), reply)
		step(t, m, ctx)
		if len(ctx.Sends) != 2 {
			t.Fatalf("sig %c: sends %v", sig, ctx.Sends)
		}
		if ctx.Sends[0].Op != op {
			t.Fatalf("sig %c sent op %v", sig, ctx.Sends[0].Op)
		}
		if ev, err := procmgr.DecodeEvent(ctx.Sends[1].Body); err != nil || ev.What != "signalled" {
			t.Fatalf("sig %c event: %+v %v", sig, ev, err)
		}
	}
}

func TestSignalUnknownOrGarbage(t *testing.T) {
	m := procmgr.New(nil)
	ctx := proctest.New()
	ctx.PushBody(addr.KernelAddr(1), procmgr.CmdSignal(pid(1), 'z')) // bad signal
	ctx.PushBody(addr.KernelAddr(1), []byte{'K', 1})                 // truncated
	step(t, m, ctx)
	if len(ctx.Sends) != 0 {
		t.Fatalf("garbage signalled: %v", ctx.Sends)
	}
}

func TestEvictTriesCandidatesInOrder(t *testing.T) {
	m := procmgr.New(nil)
	m.SetMachines([]addr.MachineID{1, 2, 3})
	m.Note(pid(1), 1)
	ctx := proctest.New()
	ctx.PushBody(addr.KernelAddr(1), procmgr.CmdEvict(pid(1)))
	step(t, m, ctx)
	req, err := msg.DecodeMigrateRequest(lastOpBody(t, ctx, msg.OpMigrateRequest))
	if err != nil || req.Dest != 2 {
		t.Fatalf("first candidate: %+v %v", req, err)
	}
	// m2 refuses; the PM must try m3.
	ctx.Push(proc.Delivery{Op: msg.OpMigrateDone,
		Body: msg.MigrateDone{PID: pid(1), Machine: 2, OK: false}.Encode()})
	step(t, m, ctx)
	req, err = msg.DecodeMigrateRequest(lastOpBody(t, ctx, msg.OpMigrateRequest))
	if err != nil || req.Dest != 3 {
		t.Fatalf("second candidate: %+v %v", req, err)
	}
	// m3 accepts; eviction bookkeeping clears.
	ctx.Push(proc.Delivery{Op: msg.OpMigrateDone,
		Body: msg.MigrateDone{PID: pid(1), Machine: 3, OK: true}.Encode()})
	step(t, m, ctx)
	if len(m.Evicting) != 0 {
		t.Fatalf("eviction state leaked: %v", m.Evicting)
	}
	if m.Locations[pid(1)] != 3 {
		t.Fatalf("location: %v", m.Locations[pid(1)])
	}
}

func TestEvictExhaustsCandidates(t *testing.T) {
	m := procmgr.New(nil)
	m.SetMachines([]addr.MachineID{1, 2})
	m.Note(pid(1), 1)
	ctx := proctest.New()
	ctx.PushBody(addr.KernelAddr(1), procmgr.CmdEvict(pid(1)))
	ctx.Push(proc.Delivery{Op: msg.OpMigrateDone,
		Body: msg.MigrateDone{PID: pid(1), Machine: 2, OK: false}.Encode()})
	step(t, m, ctx)
	if len(m.Evicting) != 0 {
		t.Fatalf("exhausted eviction kept state: %v", m.Evicting)
	}
	// Only one request was ever sent.
	n := 0
	for _, s := range ctx.Sends {
		if s.Op == msg.OpMigrateRequest {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("requests = %d", n)
	}
}

func TestSpawnAnywhereViaMemSched(t *testing.T) {
	m := procmgr.New(nil)
	ctx := proctest.New()
	memschedPID := addr.ProcessID{Creator: 1, Local: 33}
	msLink, _ := ctx.MintLink(link.Link{Addr: addr.At(memschedPID, 1)})
	m.MemSchedLink = msLink

	ctx.PushBody(addr.KernelAddr(1), procmgr.CmdSpawn(procmgr.AnyMachine, 3, "hog"))
	step(t, m, ctx)
	// A best-fit query went to the scheduler, not a create yet.
	last, _ := ctx.LastSend()
	if last.On != msLink || last.Body[0] != 'B' {
		t.Fatalf("expected best-fit query, got %+v", last)
	}
	if len(m.PendingPlace) != 1 {
		t.Fatalf("pending: %v", m.PendingPlace)
	}
	// The scheduler answers m2 — from the memsched identity.
	reply := memsched.BestFitMsg(0) // build a 2-byte machine reply manually:
	_ = reply
	ctx.Push(proc.Delivery{From: addr.At(memschedPID, 1), Body: []byte{2, 0}})
	step(t, m, ctx)
	last, _ = ctx.LastSend()
	if last.Op != msg.OpCreateProcess {
		t.Fatalf("expected create, got %+v", last)
	}
	req, _ := msg.DecodeCreateProcess(last.Body)
	if req.Name != "hog" || req.Tag != 3 {
		t.Fatalf("create: %+v", req)
	}
	// The create link pointed at kernel m2: it was destroyed after use,
	// so verify via the placement queue being drained instead.
	if len(m.PendingPlace) != 0 {
		t.Fatal("pending placement not drained")
	}
}

func TestKindAndMachines(t *testing.T) {
	m := procmgr.New(nil)
	if m.Kind() != procmgr.Kind {
		t.Fatal("kind")
	}
	m.SetMachines([]addr.MachineID{1, 2})
	if len(m.Machines) != 2 {
		t.Fatal("machines")
	}
}

func lastOpBody(t *testing.T, ctx *proctest.Ctx, op msg.Op) []byte {
	t.Helper()
	for i := len(ctx.Sends) - 1; i >= 0; i-- {
		if ctx.Sends[i].Op == op {
			return ctx.Sends[i].Body
		}
	}
	t.Fatalf("no send with op %v", op)
	return nil
}

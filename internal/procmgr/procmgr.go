// Package procmgr implements the DEMOS/MP process manager: the system
// process that "handle[s] all the high-level scheduling decisions for
// processes... They control processes by sending messages to kernels to
// manipulate process states. For example, although the kernel implements
// the mechanisms of migrating a process, the process manager makes the
// decision of when and to where to migrate a process" (§2.3).
package procmgr

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"demosmp/internal/addr"
	"demosmp/internal/link"
	"demosmp/internal/memsched"
	"demosmp/internal/msg"
	"demosmp/internal/policy"
	"demosmp/internal/proc"
	"demosmp/internal/sim"
)

// Kind is the registry name of the process manager body.
const Kind = "procmgr"

// Command opcodes for the PM's user protocol (shell, drivers).
const (
	cmdMigrate = 'M' // pid(4) dest(2); carries optional reply link
	cmdSpawn   = 'S' // machine(2) tag(2) name... ; carries optional reply link
	cmdStat    = '?' // carries reply link; reply: text table
	cmdSignal  = 'K' // pid(4) signal(1); signal: 's'uspend 'r'esume 'k'ill
	cmdEvict   = 'E' // pid(4); migrate anywhere, retrying on refusal (§3.2)
)

// CmdEvict builds a migrate-anywhere command: the PM picks a destination
// and, if that machine refuses (§3.2: "The destination processor may simply
// refuse to accept any migrations not fitting its criteria"), tries the
// remaining machines in turn — "The source processor, once rebuffed, has
// the option of looking elsewhere."
func CmdEvict(pid addr.ProcessID) []byte {
	return append([]byte{cmdEvict}, addr.EncodePID(nil, pid)...)
}

// AnyMachine as a CmdSpawn machine asks the PM to place the process via
// the memory scheduler (least-loaded machine).
const AnyMachine addr.MachineID = 0

// Signals for CmdSignal.
const (
	SigSuspend = 's'
	SigResume  = 'r'
	SigKill    = 'k'
)

// CmdSignal builds a process-control command body.
func CmdSignal(pid addr.ProcessID, sig byte) []byte {
	b := append([]byte{cmdSignal}, addr.EncodePID(nil, pid)...)
	return append(b, sig)
}

// CmdMigrate builds a migrate command body.
func CmdMigrate(pid addr.ProcessID, dest addr.MachineID) []byte {
	b := append([]byte{cmdMigrate}, addr.EncodePID(nil, pid)...)
	return append(b, byte(dest), byte(dest>>8))
}

// CmdSpawn builds a spawn command body.
func CmdSpawn(machine addr.MachineID, tag uint16, name string, args ...string) []byte {
	b := []byte{cmdSpawn, byte(machine), byte(machine >> 8), byte(tag), byte(tag >> 8)}
	b = append(b, byte(len(name)))
	b = append(b, name...)
	for _, a := range args {
		b = append(b, byte(len(a)))
		b = append(b, a...)
	}
	return b
}

// CmdStat builds a status query body.
func CmdStat() []byte { return []byte{cmdStat} }

// Event is a notification delivered on a reply link after an asynchronous
// PM command completes.
type Event struct {
	What    string // "migrated", "migrate-failed", "spawned", "spawn-failed"
	PID     addr.ProcessID
	Machine addr.MachineID
	Tag     uint16
}

// EncodeEvent serializes an event for a reply message.
func EncodeEvent(e Event) []byte {
	b := []byte{byte(len(e.What))}
	b = append(b, e.What...)
	b = addr.EncodePID(b, e.PID)
	b = append(b, byte(e.Machine), byte(e.Machine>>8), byte(e.Tag), byte(e.Tag>>8))
	return b
}

// DecodeEvent parses an event reply.
func DecodeEvent(b []byte) (Event, error) {
	var e Event
	if len(b) < 1 {
		return e, fmt.Errorf("procmgr: empty event")
	}
	n := int(b[0])
	b = b[1:]
	if len(b) < n+addr.PIDWireSize+4 {
		return e, fmt.Errorf("procmgr: short event")
	}
	e.What = string(b[:n])
	b = b[n:]
	pid, b, err := addr.DecodePID(b)
	if err != nil {
		return e, err
	}
	e.PID = pid
	e.Machine = addr.MachineID(uint16(b[0]) | uint16(b[1])<<8)
	e.Tag = uint16(b[2]) | uint16(b[3])<<8
	return e, nil
}

// PendingSpawn is a spawn command waiting for a placement decision.
type PendingSpawn struct {
	Tag  uint16
	Name string
	Args []string
}

// Manager is the process manager body. It is privileged: it mints
// DELIVERTOKERNEL links to drive kernels and processes.
type Manager struct {
	// Locations is the PM's view of where every known process runs,
	// updated by MigrateDone and CreateDone notifications.
	Locations map[addr.ProcessID]addr.MachineID
	// Loads holds the latest load report per machine.
	Loads map[addr.MachineID]msg.LoadReport

	// MemSchedLink, when set, receives a copy of every load report so
	// the memory scheduler shares the PM's view (§2.3).
	MemSchedLink link.ID

	// inflight tracks requester reply links per pending migration.
	Inflight map[addr.ProcessID]link.ID
	// spawnReply tracks reply links per pending spawn tag.
	SpawnReply map[uint16]link.ID
	// PendingPlace queues spawns awaiting a memsched placement answer
	// (FIFO; the scheduler answers in order).
	PendingPlace []PendingSpawn
	// Evicting tracks migrate-anywhere attempts: remaining candidate
	// destinations per process.
	Evicting map[addr.ProcessID][]addr.MachineID
	// Machines lists the cluster (for eviction candidates).
	Machines []addr.MachineID

	// MigrationsOrdered counts requests this manager issued.
	MigrationsOrdered uint64
	// PolicyDecisions counts policy-driven orders.
	PolicyDecisions uint64
	// PolicySweeps counts closed report rounds handed to the policy.
	PolicySweeps uint64
	// CollectMaxAge bounds how stale a machine's sample may be before the
	// collector drops it from the policy's view (0 keeps all).
	CollectMaxAge sim.Time
	// DecisionTrace records policy orders as "now policy pid from->dest
	// reason" lines (bounded); the shard-invariance tests compare it
	// byte-for-byte across shard counts.
	DecisionTrace []string

	pol  policy.Policy     // not serialized; reattached via SetPolicy
	coll *policy.Collector // rebuilt lazily (after New or Restore)
}

// maxDecisionTrace bounds DecisionTrace; beyond it orders still execute
// but are no longer recorded.
const maxDecisionTrace = 8192

// New returns a process manager with the given (possibly nil) policy.
func New(pol policy.Policy) *Manager {
	return &Manager{
		Locations:  make(map[addr.ProcessID]addr.MachineID),
		Loads:      make(map[addr.MachineID]msg.LoadReport),
		Inflight:   make(map[addr.ProcessID]link.ID),
		SpawnReply: make(map[uint16]link.ID),
		Evicting:   make(map[addr.ProcessID][]addr.MachineID),
		pol:        pol,
	}
}

// SetMachines tells the manager the cluster topology (for evictions).
func (m *Manager) SetMachines(ms []addr.MachineID) {
	m.Machines = append([]addr.MachineID(nil), ms...)
}

// SetPolicy attaches a policy (after construction or migration restore).
func (m *Manager) SetPolicy(p policy.Policy) { m.pol = p }

// Policy returns the attached policy.
func (m *Manager) Policy() policy.Policy { return m.pol }

// Note records a process location learned out of band (boot-time spawns).
func (m *Manager) Note(pid addr.ProcessID, at addr.MachineID) { m.Locations[pid] = at }

// Kind implements proc.Body.
func (m *Manager) Kind() string { return Kind }

// Step implements proc.Body.
func (m *Manager) Step(ctx proc.Context, budget int) (int, proc.Status) {
	for {
		d, ok := ctx.Recv()
		if !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
		switch d.Op {
		case msg.OpLoadReport:
			m.handleLoadReport(ctx, d)
		case msg.OpMigrateDone:
			m.handleMigrateDone(ctx, d)
		case msg.OpCreateDone:
			m.handleCreateDone(ctx, d)
		case msg.OpLocate:
			m.handleLocate(ctx, d)
		case msg.OpMigrateRequest:
			// A process asked to migrate itself (§3.1: "one more
			// piece of information that the process manager can
			// use"). Honor it directly.
			if req, err := msg.DecodeMigrateRequest(d.Body); err == nil {
				m.order(ctx, req.PID, d.From.LastKnown, req.Dest, link.NilID)
			}
		case msg.OpNone:
			if m.isMemSchedReply(ctx, d) {
				m.handlePlacement(ctx, d)
			} else {
				m.handleCommand(ctx, d)
			}
		}
	}
}

func (m *Manager) isMemSchedReply(ctx proc.Context, d proc.Delivery) bool {
	if m.MemSchedLink == link.NilID || len(m.PendingPlace) == 0 {
		return false
	}
	l, ok := ctx.LinkAddr(m.MemSchedLink)
	return ok && d.From.ID == l.Addr.ID
}

// handlePlacement finishes a spawn once the memory scheduler has picked a
// machine.
func (m *Manager) handlePlacement(ctx proc.Context, d proc.Delivery) {
	ps := m.PendingPlace[0]
	m.PendingPlace = m.PendingPlace[1:]
	machine, err := memsched.ParseBestFit(d.Body)
	if err != nil || machine == addr.NoMachine {
		machine = 1 // placement failed; fall back to machine 1
	}
	m.createAt(ctx, machine, ps.Tag, ps.Name, ps.Args)
}

func (m *Manager) handleLoadReport(ctx proc.Context, d proc.Delivery) {
	rep, err := msg.DecodeLoadReport(d.Body)
	if err != nil {
		return
	}
	m.Loads[rep.Machine] = rep
	for _, pl := range rep.Procs {
		m.Locations[pl.PID] = rep.Machine
	}
	if m.MemSchedLink != link.NilID {
		ctx.SendOp(m.MemSchedLink, msg.OpLoadReport, d.Body)
	}
	if m.pol == nil {
		return
	}
	// Feed the collector and run the policy once per closed round over
	// the assembled cluster view, not once per report over a half-stale
	// one. The collector's sweep signal depends only on report arrival
	// order at this process, which is canonical under sharding — so
	// decision times and contents are bit-identical across shard counts.
	if m.coll == nil {
		m.coll = policy.NewCollector(m.Machines, m.CollectMaxAge)
	}
	if !m.coll.Observe(ctx.Now(), rep) {
		return
	}
	m.PolicySweeps++
	for _, dec := range m.pol.Decide(ctx.Now(), m.coll.View(ctx.Now())) {
		m.PolicyDecisions++
		if len(m.DecisionTrace) < maxDecisionTrace {
			m.DecisionTrace = append(m.DecisionTrace, fmt.Sprintf(
				"%d %s %v %v->%v %s", ctx.Now(), m.pol.Name(), dec.PID, dec.From, dec.Dest, dec.Reason))
		}
		ctx.Logf("policy %s: move %v %v->%v (%s)", m.pol.Name(), dec.PID, dec.From, dec.Dest, dec.Reason)
		m.order(ctx, dec.PID, dec.From, dec.Dest, link.NilID)
	}
}

// order issues the real OpMigrateRequest over a minted DELIVERTOKERNEL
// link — message 1 of the migration protocol.
func (m *Manager) order(ctx proc.Context, pid addr.ProcessID, hint, dest addr.MachineID, reply link.ID) {
	if at, known := m.Locations[pid]; known {
		hint = at
	}
	if hint == addr.NoMachine {
		hint = dest // last resort; forwarding will chase it
	}
	l, err := ctx.MintLink(link.Link{
		Addr:  addr.At(pid, hint),
		Attrs: link.AttrDeliverToKernel,
	})
	if err != nil {
		return
	}
	req := msg.MigrateRequest{PID: pid, Dest: dest}
	ctx.SendOp(l, msg.OpMigrateRequest, req.Encode())
	ctx.DestroyLink(l)
	m.MigrationsOrdered++
	if reply != link.NilID {
		m.Inflight[pid] = reply
	}
}

func (m *Manager) handleMigrateDone(ctx proc.Context, d proc.Delivery) {
	done, err := msg.DecodeMigrateDone(d.Body)
	if err != nil {
		return
	}
	if done.OK {
		m.Locations[done.PID] = done.Machine
		delete(m.Evicting, done.PID)
	} else if rest, evicting := m.Evicting[done.PID]; evicting {
		// §3.2: rebuffed — look elsewhere.
		if len(rest) > 0 {
			next := rest[0]
			m.Evicting[done.PID] = rest[1:]
			ctx.Logf("evict %v: %v refused, trying %v", done.PID, done.Machine, next)
			reply := m.Inflight[done.PID] // keep the requester's reply armed
			delete(m.Inflight, done.PID)
			m.order(ctx, done.PID, done.Machine, next, reply)
			return
		}
		delete(m.Evicting, done.PID)
	}
	if reply, ok := m.Inflight[done.PID]; ok {
		delete(m.Inflight, done.PID)
		what := "migrated"
		if !done.OK {
			what = "migrate-failed"
		}
		ctx.Send(reply, EncodeEvent(Event{What: what, PID: done.PID, Machine: done.Machine}))
	}
}

func (m *Manager) handleCreateDone(ctx proc.Context, d proc.Delivery) {
	done, err := msg.DecodeCreateDone(d.Body)
	if err != nil {
		return
	}
	if !done.PID.IsNil() {
		m.Locations[done.PID] = done.Machine
	}
	if reply, ok := m.SpawnReply[done.Tag]; ok {
		delete(m.SpawnReply, done.Tag)
		what := "spawned"
		if done.PID.IsNil() {
			what = "spawn-failed"
		}
		ctx.Send(reply, EncodeEvent(Event{What: what, PID: done.PID, Machine: done.Machine, Tag: done.Tag}))
	}
}

// handleLocate answers a kernel's where-is query (the return-to-sender
// baseline, §4).
func (m *Manager) handleLocate(ctx proc.Context, d proc.Delivery) {
	pid, _, err := addr.DecodePID(d.Body)
	if err != nil {
		return
	}
	reply := msg.PIDMachine{PID: pid, Machine: m.Locations[pid]}
	l, err := ctx.MintLink(link.Link{Addr: d.From})
	if err != nil {
		return
	}
	ctx.SendOp(l, msg.OpLocateReply, reply.Encode())
	ctx.DestroyLink(l)
}

func (m *Manager) handleCommand(ctx proc.Context, d proc.Delivery) {
	if len(d.Body) < 1 {
		return
	}
	switch d.Body[0] {
	case cmdMigrate:
		pid, rest, err := addr.DecodePID(d.Body[1:])
		if err != nil || len(rest) < 2 {
			return
		}
		dest := addr.MachineID(uint16(rest[0]) | uint16(rest[1])<<8)
		reply := link.NilID
		if len(d.Carried) > 0 {
			reply = d.Carried[0]
		}
		m.order(ctx, pid, d.From.LastKnown, dest, reply)
	case cmdSpawn:
		m.handleSpawnCmd(ctx, d)
	case cmdStat:
		if len(d.Carried) > 0 {
			ctx.Send(d.Carried[0], []byte(m.statText()))
		}
	case cmdSignal:
		m.handleSignal(ctx, d)
	case cmdEvict:
		m.handleEvict(ctx, d)
	}
}

// handleEvict starts a migrate-anywhere: order the first candidate, keep
// the rest for retries on refusal.
func (m *Manager) handleEvict(ctx proc.Context, d proc.Delivery) {
	pid, _, err := addr.DecodePID(d.Body[1:])
	if err != nil {
		return
	}
	at := m.Locations[pid]
	var candidates []addr.MachineID
	for _, mm := range m.Machines {
		if mm != at {
			candidates = append(candidates, mm)
		}
	}
	if len(candidates) == 0 {
		return
	}
	reply := link.NilID
	if len(d.Carried) > 0 {
		reply = d.Carried[0]
	}
	m.Evicting[pid] = candidates[1:]
	m.order(ctx, pid, d.From.LastKnown, candidates[0], reply)
}

// handleSignal drives a process through a minted DELIVERTOKERNEL link —
// §2.2's example: "the process manager can send a message to the process's
// kernel asking that the process be stopped."
func (m *Manager) handleSignal(ctx proc.Context, d proc.Delivery) {
	pid, rest, err := addr.DecodePID(d.Body[1:])
	if err != nil || len(rest) < 1 {
		return
	}
	var op msg.Op
	switch rest[0] {
	case SigSuspend:
		op = msg.OpSuspend
	case SigResume:
		op = msg.OpResume
	case SigKill:
		op = msg.OpKill
	default:
		return
	}
	hint := m.Locations[pid]
	if hint == addr.NoMachine {
		hint = d.From.LastKnown
	}
	l, err := ctx.MintLink(link.Link{
		Addr:  addr.At(pid, hint),
		Attrs: link.AttrDeliverToKernel,
	})
	if err != nil {
		return
	}
	ctx.SendOp(l, op, nil)
	ctx.DestroyLink(l)
	if len(d.Carried) > 0 {
		ctx.Send(d.Carried[0], EncodeEvent(Event{What: "signalled", PID: pid, Machine: hint}))
	}
}

func (m *Manager) handleSpawnCmd(ctx proc.Context, d proc.Delivery) {
	b := d.Body[1:]
	if len(b) < 5 {
		return
	}
	machine := addr.MachineID(uint16(b[0]) | uint16(b[1])<<8)
	tag := uint16(b[2]) | uint16(b[3])<<8
	n := int(b[4])
	b = b[5:]
	if len(b) < n {
		return
	}
	name := string(b[:n])
	b = b[n:]
	var args []string
	for len(b) > 0 {
		an := int(b[0])
		b = b[1:]
		if len(b) < an {
			return
		}
		args = append(args, string(b[:an]))
		b = b[an:]
	}
	if len(d.Carried) > 0 {
		m.SpawnReply[tag] = d.Carried[0]
	}
	if machine == AnyMachine {
		if m.MemSchedLink != link.NilID {
			// Let the memory scheduler place it (§2.3: the process
			// and memory managers share the scheduling decisions).
			m.PendingPlace = append(m.PendingPlace, PendingSpawn{Tag: tag, Name: name, Args: args})
			reply, err := ctx.CreateLink(link.AttrReply, link.DataArea{})
			if err == nil {
				ctx.Send(m.MemSchedLink, memsched.BestFitMsg(0), reply)
				return
			}
			m.PendingPlace = m.PendingPlace[:len(m.PendingPlace)-1]
		}
		machine = 1
	}
	m.createAt(ctx, machine, tag, name, args)
}

// createAt asks a kernel to instantiate the program.
func (m *Manager) createAt(ctx proc.Context, machine addr.MachineID, tag uint16, name string, args []string) {
	l, err := ctx.MintLink(link.Link{Addr: addr.KernelAddr(machine)})
	if err != nil {
		return
	}
	req := msg.CreateProcess{Tag: tag, Name: name, Args: args}
	ctx.SendOp(l, msg.OpCreateProcess, req.Encode())
	ctx.DestroyLink(l)
}

func (m *Manager) statText() string {
	pids := make([]addr.ProcessID, 0, len(m.Locations))
	for pid := range m.Locations {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool {
		a, b := pids[i], pids[j]
		if a.Creator != b.Creator {
			return a.Creator < b.Creator
		}
		return a.Local < b.Local
	})
	s := ""
	for _, pid := range pids {
		s += fmt.Sprintf("%v @ %v\n", pid, m.Locations[pid])
	}
	machines := make([]addr.MachineID, 0, len(m.Loads))
	for mm := range m.Loads {
		machines = append(machines, mm)
	}
	sort.Slice(machines, func(i, j int) bool { return machines[i] < machines[j] })
	for _, mm := range machines {
		l := m.Loads[mm]
		s += fmt.Sprintf("%v cpu=%d%% ready=%d procs=%d mem=%dKB\n",
			mm, l.CPUPercent, l.Ready, l.ProcCount, l.MemUsedKB)
	}
	return s
}

// Snapshot implements proc.Body. The policy is reattached after restore by
// whoever boots the PM (policies hold only heuristic state).
func (m *Manager) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(m)
	return buf.Bytes(), err
}

// Restore implements proc.Body.
func (m *Manager) Restore(data []byte) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(m)
}

var _ proc.Body = (*Manager)(nil)

package lint

import (
	"reflect"
	"sort"
	"strings"
	"testing"
)

// loadSelf loads the enclosing demosmp module (the repository itself).
func loadSelf(t *testing.T) *Module {
	t.Helper()
	mod, err := LoadModule("../..", ModulePath)
	if err != nil {
		t.Fatalf("loading the repository: %v", err)
	}
	return mod
}

// TestRepositoryLintsClean is the self-test: the full demoslint suite over
// the real tree must report nothing. This is the same gate scripts/check.sh
// runs; keeping it in `go test` means a violation fails the ordinary test
// run too, not just CI.
func TestRepositoryLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	mod := loadSelf(t)
	diags := Run(mod, DemosAnalyzers())
	for _, d := range diags {
		t.Errorf("%v", d)
	}
	if len(diags) > 0 {
		t.Fatalf("%d finding(s) in the repository; fix them or add a //demos:nolint:<rule> <reason>", len(diags))
	}
}

// TestHotpathAnnotationSet pins the //demos:hotpath inventory to the
// functions bench_hotpath_test.go actually guards. Annotating a new
// function means extending both the benchmark and this list in the same
// commit — the annotation is a promise, not decoration.
func TestHotpathAnnotationSet(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	want := map[string][]string{
		"demosmp/internal/sim": {
			"Time.String", "Engine.schedule", "Engine.freeSlot",
			"Engine.heapPush", "Engine.heapPop", "Engine.Step",
		},
		"demosmp/internal/netw": {
			"Network.Send", "Network.getDelivery", "delivery.run",
			"Network.account", "Network.deliver",
			// Canonical (sharded) delivery path.
			"Network.canonSend", "Network.pump",
			"Network.pendPush", "Network.pendPop",
		},
		"demosmp/internal/msg": {
			"Message.WireSize", "Message.AppendWire", "Encode",
			"MigrateRequest.AppendTo", "MigrateAsk.AppendTo", "PIDMachine.AppendTo",
			"MoveDataReq.AppendTo", "MigrateCleanup.AppendTo", "MigrateDone.AppendTo",
			"LinkUpdate.AppendTo", "CreateProcess.AppendTo", "CreateDone.AppendTo",
			"MoveRead.AppendTo", "XferStatus.AppendTo", "LoadReport.AppendTo",
			"LinkUpdateBatch.AppendTo",
			"Pool.Get", "Pool.Put",
		},
		"demosmp/internal/link": {
			"Table.AppendSnapshot",
		},
		"demosmp/internal/kernel": {
			// Delivery fast path.
			"Kernel.route", "Kernel.deliverLocal", "Kernel.enqueue",
			"Kernel.forward", "Kernel.kernelMsg", "Kernel.sendLinkUpdate",
			// Envelope pool and table plumbing.
			"Kernel.lookup", "Kernel.getMsg", "Kernel.putMsg",
			"Kernel.newControl", "Kernel.sendAdmin",
			"Kernel.getPending", "pending.run",
			// Scheduler.
			"Kernel.maybeSchedule", "Kernel.runSlice", "Kernel.enqueueRun",
			// Syscall layer.
			"procCtx.send", "procCtx.Recv",
			// Move-data facility.
			"Kernel.ack", "Kernel.handleAck", "Kernel.handleDataPacket",
			"Kernel.streamGather", "Kernel.getInStream", "Kernel.putInStream",
			// Migration fast path (record pools + gather encoders).
			"Kernel.getProcRec", "Kernel.putProcRec", "Kernel.internKind",
			"Kernel.putOutMigration", "Kernel.putInMigration",
			"Kernel.armOutWatchdog", "Kernel.armInWatchdog",
			"Kernel.handleMoveDataReq", "Kernel.pullRegion",
			"Kernel.regionArrived", "Kernel.commitIncoming",
			"appendResident",
			// Ring buffer.
			"ring.push", "ring.pop",
			// §6 per-migration accounting inside sendAdmin.
			"MigrationReport.noteAdmin",
		},
		// Observability plane: the registry slots the instrumented hot
		// paths write through.
		"demosmp/internal/obs": {
			"Counter.Inc", "Counter.Add", "Histogram.Observe",
		},
	}
	got := HotpathFuncs(loadSelf(t))
	for _, fns := range got {
		sort.Strings(fns)
	}
	for _, fns := range want {
		sort.Strings(fns)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("//demos:hotpath inventory drifted\n got: %v\nwant: %v", got, want)
	}
}

// TestRepositoryOwnershipClean runs only the ownership borrow checker over
// the real tree and additionally pins the //demos:owner blessing inventory:
// the analyzer must be clean, and every blessing role in the repository
// must be one of the reviewed retainer roles catalogued in DESIGN.md §8's
// blessed-retention table. A new role means a new row in that table, in
// the same commit.
func TestRepositoryOwnershipClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	mod := loadSelf(t)
	diags := Run(mod, []Analyzer{
		Ownership{MsgPath: ModulePath + "/internal/msg"},
	})
	for _, d := range diags {
		t.Errorf("%v", d)
	}
	if len(diags) > 0 {
		t.Fatalf("%d ownership finding(s); the pooled-envelope discipline regressed", len(diags))
	}

	catalogued := map[string]bool{
		"pool": true, "mailbox": true, "pending": true, "bounce": true,
		"locate": true, "stream": true, "sink": true, "clone": true,
		"inflight": true,
	}
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//demos:owner ")
					if !ok {
						continue
					}
					role := rest
					if i := strings.IndexAny(role, " \t"); i >= 0 {
						role = role[:i]
					}
					if !catalogued[role] {
						pos := mod.Fset.Position(c.Pos())
						t.Errorf("%s:%d: //demos:owner role %q is not in DESIGN.md §8's blessed-retention table", pos.Filename, pos.Line, role)
					}
				}
			}
		}
	}
}

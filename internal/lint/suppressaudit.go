package lint

import (
	"go/ast"
	"regexp"
	"strings"
)

// SuppressAudit keeps the escape hatches honest. Two checks:
//
//  1. Stale //demos:nolint — a well-formed suppression that silenced no
//     diagnostic this run must be deleted (or the code it excuses fixed).
//     That half lives in lint.Run, because only the filter stage knows
//     which findings each directive consumed; it reports under this rule
//     whenever SuppressAudit is in the suite.
//  2. Stale //demos:hotpath — the directive line must name at least one
//     dynamic guard (a TestXxx/BenchmarkXxx/FuzzXxx function) and every
//     guard it names must still be defined in some _test.go file of the
//     module. A hotpath annotation whose benchmark was deleted is a
//     zero-alloc promise nobody measures.
type SuppressAudit struct{}

func (SuppressAudit) Name() string { return "suppressaudit" }
func (SuppressAudit) Doc() string {
	return "//demos:nolint must still silence a real finding; //demos:hotpath must name a live Test/Benchmark/Fuzz guard"
}

// guardNameRE matches go-test entry points cited in annotation text. The
// character after the prefix must be non-lowercase, mirroring the go test
// harness rule, so prose words like "Tests" or "Benchmarking" don't match.
var guardNameRE = regexp.MustCompile(`\b(Test|Benchmark|Fuzz)[A-Z0-9_][A-Za-z0-9_]*`)

func (SuppressAudit) Run(p *Pass) {
	guards := moduleTestFuncs(p.Mod)
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !hasDirective(fd.Doc, "hotpath") {
				continue
			}
			for _, c := range fd.Doc.List {
				if !strings.HasPrefix(c.Text, "//demos:hotpath") {
					continue
				}
				names := guardNameRE.FindAllString(c.Text, -1)
				if len(names) == 0 {
					p.Reportf(c.Pos(), "//demos:hotpath on %s names no dynamic guard: cite the Test/Benchmark/Fuzz function that measures it", fd.Name.Name)
					continue
				}
				for _, g := range names {
					if !guards[g] {
						p.Reportf(c.Pos(), "//demos:hotpath on %s cites guard %s, which is not defined in any _test.go of the module", fd.Name.Name, g)
					}
				}
			}
		}
	}
}

// moduleTestFuncs collects the names of all top-level Test/Benchmark/Fuzz
// functions across every _test.go file of the module.
func moduleTestFuncs(mod *Module) map[string]bool {
	out := make(map[string]bool)
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.TestFiles {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Recv != nil {
					continue
				}
				if guardNameRE.MatchString(fd.Name.Name) {
					out[fd.Name.Name] = true
				}
			}
		}
	}
	return out
}

package killfix

import "testing"

// TestShardedFaults is the fixture's sharded test file: it references the
// Shards marker, so its identifiers count toward chaos-kind coverage —
// "partition" is covered here, "burst" is not (LossBurst only appears in
// the classic test file).
func TestShardedFaults(t *testing.T) {
	rt := Runtime{Shards: 2}
	Partition(1, 2)
	if rt.Shards != 2 {
		t.Fatal("shards lost")
	}
}

package killfix

import "testing"

func TestCovered(t *testing.T) {
	cfg := Config{FlagTested: true}
	if !cfg.FlagTested {
		t.Fatal("flag lost")
	}
	for _, p := range []Point{PSourceFrozen, PDestArrived} {
		if p == 0 {
			t.Fatal("zero point")
		}
	}
}

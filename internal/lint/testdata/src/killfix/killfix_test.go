package killfix

import "testing"

func TestCovered(t *testing.T) {
	cfg := Config{FlagTested: true}
	if !cfg.FlagTested {
		t.Fatal("flag lost")
	}
	for _, p := range []Point{PSourceFrozen, PDestArrived} {
		if p == 0 {
			t.Fatal("zero point")
		}
	}
	// Classic-only fault reference: this file has no shard marker, so
	// LossBurst here does NOT count as sharded coverage for "burst".
	LossBurst(0.5)
}

// Package killfix exercises killcover: Point constants and Config bool
// flags partially referenced from killfix_test.go — the unreferenced ones
// must be reported, and the non-bool / unexported fields ignored.
package killfix

// Point mimics kernel.KillPoint.
type Point uint8

const (
	PSourceFrozen Point = iota + 1
	PDestArrived
	PNeverKilled // not referenced by any test: want killcover
)

// PointCount is plain int, not a Point: outside the rule.
const PointCount = int(PNeverKilled)

// Config mimics kernel.Config.
type Config struct {
	FlagTested   bool
	FlagUntested bool // not referenced by any test: want killcover
	Budget       int  // non-bool: outside the rule
	hidden       bool // unexported: outside the rule
}

// use keeps the unexported field from being declared-and-unused dead.
func (c Config) use() bool { return c.hidden }

// Runtime mimics core.Options: its Shards field is the shard marker that
// makes a test file count as sharded for the chaos-kind rule.
type Runtime struct {
	Shards int
}

// Partition and LossBurst mimic the netw fault surface: Partition is
// referenced from the sharded test file, LossBurst only from the classic
// one — so the "burst" kind must be reported.
func Partition(a, b int)     {}
func LossBurst(rate float64) {}

// Package killfix exercises killcover: Point constants and Config bool
// flags partially referenced from killfix_test.go — the unreferenced ones
// must be reported, and the non-bool / unexported fields ignored.
package killfix

// Point mimics kernel.KillPoint.
type Point uint8

const (
	PSourceFrozen Point = iota + 1
	PDestArrived
	PNeverKilled // not referenced by any test: want killcover
)

// PointCount is plain int, not a Point: outside the rule.
const PointCount = int(PNeverKilled)

// Config mimics kernel.Config.
type Config struct {
	FlagTested   bool
	FlagUntested bool // not referenced by any test: want killcover
	Budget       int  // non-bool: outside the rule
	hidden       bool // unexported: outside the rule
}

// use keeps the unexported field from being declared-and-unused dead.
func (c Config) use() bool { return c.hidden }

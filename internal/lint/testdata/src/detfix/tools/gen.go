// Package tools sits outside the internal/ prefix the rule guards, so its
// wall-clock read is out of scope and must produce no findings.
package tools

import "time"

// Stamp is allowed: build tooling may read the real clock.
func Stamp() int64 { return time.Now().Unix() }

// Package simx stands in for the real sim package: it is the exempted owner
// of the seeded PRNG, so its math/rand use must produce no findings.
package simx

import "math/rand"

// New constructs the engine-owned source; exempt packages may do this.
func New(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

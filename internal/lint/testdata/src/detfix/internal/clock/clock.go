// Package clock is a determinism fixture: every ambient-input primitive
// the rule forbids, plus the allowed forms and the nolint variants.
package clock

import (
	"math/rand"
	"os"
	"time"
)

// Bad: every call here is an ambient input the simulator must not read.
func Bad() {
	_ = time.Now()                  // want determinism: wall clock
	time.Sleep(time.Second)         // want determinism: real sleep
	_ = time.Since(time.Time{})     // want determinism: wall clock
	_ = rand.Intn(10)               // want determinism: global PRNG
	_ = rand.New(rand.NewSource(1)) // want determinism: private source (x2)
	_, _ = os.LookupEnv("HOME")     // want determinism: environment
	_ = os.Getenv("SEED")           // want determinism: environment
}

// OK: values threaded in explicitly, method calls on an injected *rand.Rand,
// and time.Duration arithmetic (a constant, not an ambient read).
func OK(now int64, rng *rand.Rand) int {
	_ = time.Duration(now) * time.Millisecond
	return rng.Intn(10)
}

// Suppressed: a justified escape hatch keeps the finding quiet.
func Suppressed() int64 {
	return time.Now().UnixNano() //demos:nolint:determinism fixture demonstrates a justified suppression
}

// BadSuppression: a reason-less and an unknown-rule directive are themselves
// findings, and the reason-less one does not silence the line it covers.
func BadSuppression() {
	//demos:nolint:determinism
	_ = time.Now()
	//demos:nolint:bogus this rule does not exist
	_ = os.Getpid()
}

// Package hotfix is a hotpathalloc fixture: each allocation class the rule
// rejects inside an annotated function, the idioms it must accept, and an
// unannotated twin proving the rule only fires under //demos:hotpath.
package hotfix

import (
	"fmt"
	"strconv"
)

func take(v any)    { _ = v }
func run(fn func()) { fn() }

//demos:hotpath fixture: fmt call
func BadFmt(n int) string {
	return fmt.Sprintf("n=%d", n) // want hotpathalloc: fmt allocates
}

//demos:hotpath fixture: capturing closure
func BadClosure(n int) {
	run(func() { n++ }) // want hotpathalloc: closure captures n
}

//demos:hotpath fixture: explicit interface conversion
func BadConvert(n int) any {
	return any(n) // want hotpathalloc: conversion boxes
}

//demos:hotpath fixture: implicit boxing at a call site
func BadBox(n int) {
	take(n) // want hotpathalloc: concrete to interface parameter
}

//demos:hotpath fixture: append to a visibly fresh slice
func BadFreshAppend(n byte) []byte {
	return append([]byte{}, n) // want hotpathalloc: fresh slice
}

//demos:hotpath fixture: append result assigned to a different slice
func BadCrossAppend(src []byte) []byte {
	var out []byte
	out = append(src, 1) // want hotpathalloc: copies into a new backing array
	return out
}

//demos:hotpath fixture: the amortized buffer idioms must pass
func OKSelfAppend(buf []byte, n uint64) []byte {
	buf = append(buf, 'x')
	buf = strconv.AppendUint(buf, n, 10)
	return append(buf, '!')
}

//demos:hotpath fixture: non-capturing literals and builtins are fine
func OKBuiltins(b []byte) int {
	run(func() {})
	if len(b) == 0 {
		panic("empty")
	}
	return cap(b)
}

// UnannotatedTwin does everything the Bad functions do, without the
// directive: no findings (the rule costs nothing outside hot paths).
func UnannotatedTwin(n int) string {
	take(n)
	run(func() { n++ })
	_ = append([]byte{}, byte(n))
	return fmt.Sprint(n)
}

//demos:hotpath fixture: a justified suppression stays quiet
func SuppressedFmt(n int) string {
	return fmt.Sprintf("%x", n) //demos:nolint:hotpathalloc fixture demonstrates a justified suppression
}

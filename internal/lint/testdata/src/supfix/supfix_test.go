package supfix

import "testing"

// BenchmarkGoodPath is the live dynamic guard cited by LiveGuard.
func BenchmarkGoodPath(b *testing.B) {
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf = LiveGuard(buf)
	}
}

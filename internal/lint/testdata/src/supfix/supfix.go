// Package supfix exercises suppressaudit: a nolint that still earns its
// keep (silent), a nolint whose finding went away (stale, reported), and
// //demos:hotpath annotations with a live guard (silent), a deleted guard
// (reported), and no guard at all (reported).
package supfix

import "time"

// UsedSuppression still covers a live determinism finding: silent for
// suppressaudit, and the determinism finding itself stays silenced.
func UsedSuppression() int64 {
	return time.Now().Unix() //demos:nolint:determinism fixture: the violation is the point
}

// StaleSuppression excuses a line that stopped violating anything.
func StaleSuppression() int64 {
	return 42 //demos:nolint:determinism fixture: nothing fires here any more
}

// LiveGuard cites a benchmark that exists in supfix_test.go.
//
//demos:hotpath — fixture; dynamic guard: BenchmarkGoodPath.
func LiveGuard(buf []byte) []byte {
	return buf[:0]
}

// DeletedGuard cites a benchmark nobody defines any more.
//
//demos:hotpath — fixture; dynamic guard: BenchmarkGonePath.
func DeletedGuard(buf []byte) []byte {
	return buf[:0]
}

// NoGuard names nothing measurable at all.
//
//demos:hotpath — fixture; very fast, trust me.
func NoGuard(buf []byte) []byte {
	return buf[:0]
}

package wirefix

import "testing"

// FuzzDecoders seeds Good (complete contract) and the partial payloads,
// deliberately omitting Unseeded from the corpus and DecodeUntested from
// the body: the fixture's golden file pins both findings.
func FuzzDecoders(f *testing.F) {
	f.Add(Good{V: 1}.Encode())
	f.Add(NoAppend{V: 2}.Encode())
	f.Add(NoEncode{}.AppendTo(nil))
	f.Add(NoDecoder{V: 3}.Encode())
	f.Add(Untested{V: 4}.Encode())
	f.Fuzz(func(t *testing.T, b []byte) {
		DecodeGood(b)
		DecodeNoAppend(b)
		DecodeNoEncode(b)
		DecodeUnseeded(b)
	})
}

// Package wirefix is a wirepair fixture: one payload with the full
// encoder/decoder/corpus contract, one for each way the contract can be
// broken, and the shapes the rule must ignore (the envelope, plain data
// records, unexported types).
package wirefix

// Good keeps encoder, decoder, and fuzz coverage in lockstep: no findings.
type Good struct{ V uint8 }

func (g Good) AppendTo(b []byte) []byte { return append(b, g.V) }
func (g Good) Encode() []byte           { return g.AppendTo(nil) }

// DecodeGood is the decoder pair of Good.AppendTo.
func DecodeGood(b []byte) (Good, error) {
	if len(b) < 1 {
		return Good{}, errShort
	}
	return Good{V: b[0]}, nil
}

// NoAppend has only the allocating convenience encoder: the
// reusable-buffer AppendTo form is missing.
type NoAppend struct{ V uint8 }

func (n NoAppend) Encode() []byte { return []byte{n.V} }

// DecodeNoAppend keeps the rest of NoAppend's contract intact so the
// missing AppendTo is its only finding.
func DecodeNoAppend(b []byte) (NoAppend, error) {
	if len(b) < 1 {
		return NoAppend{}, errShort
	}
	return NoAppend{V: b[0]}, nil
}

// NoEncode has only the buffer form; callers without a buffer need the
// Encode convenience pair.
type NoEncode struct{ V uint8 }

func (n NoEncode) AppendTo(b []byte) []byte { return append(b, n.V) }

// DecodeNoEncode keeps the rest of NoEncode's contract intact.
func DecodeNoEncode(b []byte) (NoEncode, error) {
	if len(b) < 1 {
		return NoEncode{}, errShort
	}
	return NoEncode{V: b[0]}, nil
}

// NoDecoder can be encoded but never decoded: the classic one-way payload.
type NoDecoder struct{ V uint8 }

func (n NoDecoder) AppendTo(b []byte) []byte { return append(b, n.V) }
func (n NoDecoder) Encode() []byte           { return n.AppendTo(nil) }

// Untested has a decoder the package's tests never call.
type Untested struct{ V uint8 }

func (u Untested) AppendTo(b []byte) []byte { return append(b, u.V) }
func (u Untested) Encode() []byte           { return u.AppendTo(nil) }

// DecodeUntested exists but no test exercises it.
func DecodeUntested(b []byte) (Untested, error) {
	if len(b) < 1 {
		return Untested{}, errShort
	}
	return Untested{V: b[0]}, nil
}

// Unseeded has the full pair and test coverage but no f.Add corpus seed.
type Unseeded struct{ V uint8 }

func (u Unseeded) AppendTo(b []byte) []byte { return append(b, u.V) }
func (u Unseeded) Encode() []byte           { return u.AppendTo(nil) }

// DecodeUnseeded is called from the fuzz body but never seeded.
func DecodeUnseeded(b []byte) (Unseeded, error) {
	if len(b) < 1 {
		return Unseeded{}, errShort
	}
	return Unseeded{V: b[0]}, nil
}

// Envelope mimics msg.Message: AppendWire marks it as the frame container,
// not a control payload, so the rule skips it.
type Envelope struct{ Body []byte }

func (e *Envelope) AppendWire(b []byte) []byte { return append(b, e.Body...) }

// Record is a plain data struct with no encoder at all: out of scope.
type Record struct{ A, B uint32 }

type errString string

func (e errString) Error() string { return string(e) }

const errShort = errString("short buffer")

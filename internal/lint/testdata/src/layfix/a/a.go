// Package a is the layering fixture's vocabulary layer: it imports nothing.
package a

// V is a base type shared by the layers above.
type V int

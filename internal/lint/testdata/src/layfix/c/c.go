// Package c is allowed to import a but not b: its b import is the
// layering violation this fixture exists to catch.
package c

import (
	"layfix/a"
	"layfix/b" // want layering
)

// Use touches both layers so the imports are live.
func Use(v a.V) [1]a.V { return b.Wrap(v) }

// Package d is absent from the fixture's layer table: a package the DAG
// has never heard of is itself a finding (the table must grow in the same
// commit that adds the package).
package d

// D exists so the package is non-empty.
type D struct{}

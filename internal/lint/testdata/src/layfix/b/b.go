// Package b sits one layer up and is allowed to import a.
package b

import "layfix/a"

// Wrap lifts a base value into this layer.
func Wrap(v a.V) [1]a.V { return [1]a.V{v} }

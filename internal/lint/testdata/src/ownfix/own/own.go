// Package own exercises every ownership finding class — use-after-Put,
// double-Put (straight-line, branchy, via an annotated releaser), body
// escapes, Ref discipline — plus the negative cases that must stay silent:
// Valid()-guarded deref, blessed forwarder retention, in-place body reuse,
// ownership transfer by call or return, and locally-built envelopes.
package own

import "ownfix/msg"

func sink(b []byte) {}

// retained is the package-level escape target.
var retained *msg.Message // nolint-free: only storing INTO it is checked

// UseAfterPut reads the envelope after releasing it.
func UseAfterPut(p *msg.Pool) {
	m := p.Get()
	p.Put(m)
	sink(m.Body) // want: use after release
}

// DoublePut releases twice on a straight line.
func DoublePut(p *msg.Pool) {
	m := p.Get()
	p.Put(m)
	p.Put(m) // want: double release
}

// MaybePut releases on one branch only, then again unconditionally: the
// join makes the second Put a some-path double release, and the read
// before it a some-path use-after-release.
func MaybePut(p *msg.Pool, drop bool) {
	m := p.Get()
	if drop {
		p.Put(m)
	}
	sink(m.Body) // want: use on some path
	p.Put(m)     // want: release on some path
}

// releaseHelper wraps Put the way Kernel.putMsg does.
//
//demos:releases m — fixture releaser: the analyzer must treat this like Pool.Put.
func releaseHelper(p *msg.Pool, m *msg.Message) {
	p.Put(m)
}

// DoublePutViaHelper is only visible if //demos:releases is honored.
func DoublePutViaHelper(p *msg.Pool) {
	m := p.Get()
	releaseHelper(p, m)
	p.Put(m) // want: double release through the annotated helper
}

// BodyEscape stores a body alias into a struct that outlives the handler.
type record struct {
	data []byte
	m    *msg.Message
}

func BodyEscape(p *msg.Pool, r *record) {
	m := p.Get()
	b := m.Body[:0]
	r.data = b // want: body alias escapes
	p.Put(m)
}

// EnvelopeEscape stores the envelope itself without a blessing.
func EnvelopeEscape(p *msg.Pool, r *record) {
	m := p.Get()
	r.m = m // want: unblessed retention
}

// AppendEscape retains through an append, deliver.go-style.
func AppendEscape(p *msg.Pool, held *[]*msg.Message) {
	m := p.Get()
	*held = append(*held, m) // want: unblessed retention (the element, not the append)
}

// GlobalEscape parks the envelope in a package variable.
func GlobalEscape(p *msg.Pool) {
	m := p.Get()
	retained = m // want: unblessed retention in a package variable
}

// ClosureEscape captures the envelope in a closure that may outlive it.
func ClosureEscape(p *msg.Pool, later func(func())) {
	m := p.Get()
	later(func() { sink(m.Body) }) // want: closure capture
}

// RefUnguarded holds a Ref across the release and derefs it blind.
func RefUnguarded(p *msg.Pool) {
	m := p.Get()
	r := msg.MakeRef(m)
	p.Put(m)
	sink(r.M.Body) // want: stale Ref deref without Valid()
}

// RefGuarded is the blessed pattern: deref only under Valid().
func RefGuarded(p *msg.Pool) {
	m := p.Get()
	r := msg.MakeRef(m)
	p.Put(m)
	if r.Valid() {
		sink(r.M.Body) // silent: generation-checked
	}
}

// forwarder mirrors deliver.go's bounce: a reviewed retainer.
type forwarder struct {
	orig *msg.Message
}

// Bless retains under a function-level owner role: silent.
//
//demos:owner forwarder — fixture: the forwarder owns the original until resubmit.
func (f *forwarder) Bless(m *msg.Message) {
	f.orig = m
}

// BlessLine retains under a line-level owner role: silent.
func BlessLine(p *msg.Pool, r *record) {
	m := p.Get()
	r.m = m //demos:owner fixture — line-level blessing keeps exactly this store silent.
}

// Rolless carries a blessing with no role, which is itself a finding.
func Rolless(p *msg.Pool, r *record) {
	m := p.Get()
	r.m = m //demos:owner
}

// badReleases names a parameter that does not exist.
//
//demos:releases q — want: misannotation finding
func badReleases(p *msg.Pool, m *msg.Message) {
	p.Put(m)
}

// Transfer hands the envelope to a callee and returns another: ownership
// transfer by call and by return are both silent.
func Transfer(p *msg.Pool, route func(*msg.Message)) *msg.Message {
	m := p.Get()
	route(m)
	return p.Get()
}

// InPlaceReuse writes the envelope's own body back: the recycling idiom.
func InPlaceReuse(p *msg.Pool) {
	m := p.Get()
	b := m.Body[:0]
	b = append(b, 1, 2, 3)
	m.Body = b // silent: not retention, the envelope keeps its own array
	p.Put(m)
}

// LocalBuild retains a heap-built envelope: not pooled, silent.
func LocalBuild(r *record) {
	m := &msg.Message{Op: 1}
	r.m = m
}

// RefStore stores a Ref into a field: Refs are the blessed retention
// mechanism, silent by design.
type refHolder struct {
	r msg.Ref
}

func RefStore(p *msg.Pool, h *refHolder) {
	m := p.Get()
	h.r = msg.MakeRef(m)
	p.Put(m)
}

package own

import "ownfix/msg"

// drainHeld mirrors deliver.go's locate-reply drain loop: every held
// envelope is routed once and released exactly once. The INJECT marker is
// where TestInjectedDoublePutCaught splices a second Put to prove the
// analyzer would catch a regression in the real drain.
func drainHeld(p *msg.Pool, held []*msg.Message, route func([]byte)) {
	for _, m := range held {
		route(m.Body)
		p.Put(m)
		// INJECT:DOUBLE-PUT
	}
}

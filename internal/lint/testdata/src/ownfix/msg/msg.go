// Package msg is a miniature of the real envelope package: just enough
// Pool/Message/Ref surface for the ownership analyzer to resolve its
// vocabulary (Message, Pool.Put, Ref, MakeRef, Valid).
package msg

// Message is a pooled envelope.
type Message struct {
	Op   uint8
	Body []byte
	gen  uint32
}

// Pool recycles envelopes.
type Pool struct {
	free []*Message
}

// Get pops a recycled envelope or builds one.
func (p *Pool) Get() *Message {
	if n := len(p.free); n > 0 {
		m := p.free[n-1]
		p.free = p.free[:n-1]
		return m
	}
	return &Message{}
}

// Put releases an envelope back to the free list.
//
//demos:owner pool — the free list is where released envelopes live.
func (p *Pool) Put(m *Message) {
	m.gen++
	m.Body = m.Body[:0]
	p.free = append(p.free, m)
}

// Ref is a generation-stamped reference to a possibly-pooled message.
type Ref struct {
	M   *Message
	gen uint32
}

// MakeRef captures m's current generation.
func MakeRef(m *Message) Ref { return Ref{M: m, gen: m.gen} }

// Valid reports whether the referenced envelope is still live.
func (r Ref) Valid() bool { return r.M != nil && r.M.gen == r.gen }

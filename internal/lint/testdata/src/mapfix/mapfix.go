// Package mapfix is a maporder fixture: map iteration feeding
// order-sensitive sinks (trace emission, message sends, event scheduling,
// printing) and slices that escape unsorted, against the accepted
// collect-then-sort idiom.
package mapfix

import "sort"

// Tracer mimics trace.Tracer: Emit is an order-sensitive sink by name.
type Tracer struct{}

func (Tracer) Emit(ev string, args ...any) {}

// Net mimics a network handle: Send is an order-sensitive sink by name.
type Net struct{}

func (Net) Send(to uint16, payload string) {}

// Engine mimics sim.Engine: After schedules an event, order-sensitive.
type Engine struct{}

func (Engine) After(d uint64, name string, fn func()) {}

// BadEmit traces straight out of a map range: iteration order leaks into
// the trace, so two runs disagree byte-for-byte.
func BadEmit(tr Tracer, procs map[uint32]string) {
	for pid, name := range procs {
		tr.Emit("proc", pid, name) // want maporder
	}
}

// BadSend fires messages in map order.
func BadSend(n Net, peers map[uint16]string) {
	for m, payload := range peers {
		n.Send(m, payload) // want maporder
	}
}

// BadSchedule seeds the event queue in map order.
func BadSchedule(e Engine, waits map[uint32]uint64) {
	for pid, d := range waits {
		_ = pid
		e.After(d, "wake", func() {}) // want maporder
	}
}

// BadCollect appends to an escaping slice in map order and never sorts it.
func BadCollect(procs map[uint32]string) []uint32 {
	var pids []uint32
	for pid := range procs {
		pids = append(pids, pid) // want maporder
	}
	return pids
}

// OKCollectSort is the canonical idiom: collect in any order, then sort
// before the slice is used. No finding.
func OKCollectSort(procs map[uint32]string) []uint32 {
	pids := make([]uint32, 0, len(procs))
	for pid := range procs {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	return pids
}

// OKFold accumulates an order-insensitive reduction. No finding.
func OKFold(loads map[uint16]uint64) uint64 {
	var total uint64
	for _, l := range loads {
		total += l
	}
	return total
}

// Suppressed documents a deliberately unordered emit.
func Suppressed(tr Tracer, procs map[uint32]string) {
	for pid := range procs {
		tr.Emit("unordered", pid) //demos:nolint:maporder fixture demonstrates a justified suppression
	}
}

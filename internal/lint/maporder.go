package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `for range` over a map whose body does something
// order-sensitive: emits trace records, sends messages, schedules events,
// prints, or accumulates into a slice declared outside the loop that is
// never sorted afterwards. Go randomizes map iteration order, so any of
// these lets nondeterminism leak into event ordering or test output and
// breaks byte-identical replay.
//
// The approved idiom — collect the keys, sort them, then range over the
// slice (see kernel.sortedProcs) — passes: an append into an outer slice
// is accepted when the enclosing function later hands that slice to
// sort.Slice / sort.Strings / etc.
type MapOrder struct{}

func (MapOrder) Name() string { return "maporder" }
func (MapOrder) Doc() string {
	return "no order-sensitive work (sends, appends to ordered state) driven by a raw map range"
}

// mapSinks are call names that make iteration order observable. Matching
// is by name (not type identity) so the rule also covers future
// look-alikes; the categories mirror the messages below.
var mapSinks = map[string]string{
	// trace emission
	"Emit": "emits trace records", "Emitf": "emits trace records",
	// event scheduling
	"At": "schedules events", "After": "schedules events", "AfterWeak": "schedules events",
	// message sends
	"Send": "sends messages", "SendOp": "sends messages", "SendFrame": "sends messages",
	"Route": "sends messages", "route": "sends messages",
	"GiveMessage": "sends messages", "GiveMessageTo": "sends messages",
	// direct output
	"Print": "prints output", "Println": "prints output", "Printf": "prints output",
	"Fprint": "prints output", "Fprintln": "prints output", "Fprintf": "prints output",
}

func (MapOrder) Run(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncMapRanges(p, fd.Body)
		}
	}
}

func checkFuncMapRanges(p *Pass, fnBody *ast.BlockStmt) {
	ast.Inspect(fnBody, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Pkg.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(p, fnBody, rs)
		return true
	})
}

func checkMapRangeBody(p *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if what, bad := mapSinks[name]; bad {
			p.Reportf(call.Pos(), "%s inside `for range` over a map: map order is randomized, so this %s in nondeterministic order — iterate sorted keys instead", name, what)
			return true
		}
		if isBuiltinAppend(p, call) && len(call.Args) > 0 {
			target := call.Args[0]
			if declaredOutside(p, target, rs) && !sortedLater(p, fnBody, target) {
				p.Reportf(call.Pos(), "append to %s inside `for range` over a map without a later sort: the slice leaves this function in randomized order — collect then sort (see kernel.sortedProcs)", types.ExprString(target))
			}
		}
		return true
	})
}

// calleeName extracts the bare called name from f(...) or x.f(...).
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	b, ok := p.Pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// declaredOutside reports whether the append target lives beyond the range
// statement: an identifier declared before the loop, or any field/selector
// expression (struct state outlives the loop by construction).
func declaredOutside(p *Pass, target ast.Expr, rs *ast.RangeStmt) bool {
	id, ok := target.(*ast.Ident)
	if !ok {
		return true
	}
	obj := p.Pkg.Info.Uses[id]
	if obj == nil {
		obj = p.Pkg.Info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Pos() < rs.Pos() || v.Pos() > rs.End()
}

// sortOrderers are the stdlib calls that impose a deterministic order on
// their first argument.
var sortOrderers = map[string]bool{
	"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
	"Strings": true, "Ints": true, "Float64s": true,
	"SortFunc": true, "SortStableFunc": true, // slices package
}

// sortedLater reports whether the enclosing function sorts the append
// target anywhere (the collect-keys-then-sort idiom sorts right after the
// loop, but any position in the function restores determinism before the
// slice escapes).
func sortedLater(p *Pass, fnBody *ast.BlockStmt, target ast.Expr) bool {
	want := types.ExprString(target)
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !sortOrderers[sel.Sel.Name] {
			return true
		}
		if pkg, ok := sel.X.(*ast.Ident); !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
			return true
		}
		if types.ExprString(call.Args[0]) == want {
			found = true
			return false
		}
		return true
	})
	return found
}

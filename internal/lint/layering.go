package lint

import (
	"sort"
	"strings"
)

// Layering enforces the module's import DAG. DEMOS/MP's architecture
// depends on kernels interacting only through messages and links: the
// leaf vocabulary packages (addr, link, msg, sim) must not know about the
// kernel, only the kernel layer may drive netw delivery, and core is the
// single composition root that is allowed to see everything. Each package
// must appear in Allow with the exact set of module-internal packages it
// may import; an absent package or an unlisted edge is a finding, so
// adding a dependency is always a deliberate, reviewed table edit.
//
// Only non-test files are checked: tests may reach for proctest and other
// scaffolding without weakening the production DAG.
type Layering struct {
	Module string
	Allow  map[string][]string // import path -> allowed module-internal imports
}

func (Layering) Name() string { return "layering" }
func (Layering) Doc() string {
	return "imports must follow the declared DEMOS/MP layering DAG (demosLayers)"
}

func (l Layering) Run(p *Pass) {
	if len(p.Pkg.Files) == 0 {
		return
	}
	allowed, known := l.Allow[p.Pkg.ImportPath]
	if !known {
		p.Reportf(p.Pkg.Files[0].Package, "package %s is not in the layering table; add it to the import DAG in internal/lint (demos.go) deliberately", p.Pkg.ImportPath)
		return
	}
	allowSet := make(map[string]bool, len(allowed))
	for _, a := range allowed {
		allowSet[a] = true
	}
	for _, f := range p.Pkg.Files {
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if path != l.Module && !strings.HasPrefix(path, l.Module+"/") {
				continue // stdlib
			}
			if !allowSet[path] {
				p.Reportf(spec.Pos(), "layering: %s may not import %s (allowed: %s)",
					p.Pkg.ImportPath, path, allowList(allowed))
			}
		}
	}
}

func allowList(allowed []string) string {
	if len(allowed) == 0 {
		return "none"
	}
	s := append([]string(nil), allowed...)
	sort.Strings(s)
	return strings.Join(s, ", ")
}

// Package lint is demoslint: a stdlib-only static-analysis suite that
// machine-checks the simulator's project-specific invariants — determinism
// (all randomness through sim.Engine.Rand, no ambient clocks or
// environment), map-iteration order (nothing order-sensitive may be driven
// by Go's randomized map ranging), the DEMOS/MP layering DAG, the
// //demos:hotpath zero-allocation contract, and wire encoder/decoder/fuzz
// pairing in internal/msg.
//
// The suite is built entirely on go/parser, go/ast, go/types and
// go/importer, preserving the repository's zero-external-dependency rule.
// See DESIGN.md §8 ("Machine-checked invariants") for the rule catalogue
// and cmd/demoslint for the command-line driver.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding, renderable as "file:line: [rule] message".
// Path is relative to the module root so golden files and CI output are
// machine-independent.
type Diagnostic struct {
	Path string
	Line int
	Col  int
	Rule string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Path, d.Line, d.Rule, d.Msg)
}

// Analyzer is one demoslint rule. Run is called once per package. Doc is
// a one-line description for `demoslint -rules` and DESIGN.md §8.
type Analyzer interface {
	Name() string
	Doc() string
	Run(*Pass)
}

// Pass gives an analyzer one package plus a report sink. A nil Types/Info
// (test-only package) never happens for Files — the loader type-checks all
// non-test syntax.
type Pass struct {
	Mod  *Module
	Pkg  *Package
	rule string
	sink *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Mod.Fset.Position(pos)
	*p.sink = append(*p.sink, Diagnostic{
		Path: relPath(p.Mod.Root, position.Filename),
		Line: position.Line,
		Col:  position.Column,
		Rule: p.rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

func relPath(root, filename string) string {
	if rel, err := filepath.Rel(root, filename); err == nil {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(filename)
}

// nolintPrefix introduces a suppression: //demos:nolint:<rule> <reason>.
// The directive suppresses findings of <rule> on its own line and on the
// line below it (so it works both as a trailing comment and as a
// standalone comment above the offending statement). The reason is
// mandatory: a suppression without one is itself a finding.
const nolintPrefix = "//demos:nolint:"

type directive struct {
	rule   string
	reason string
	pos    token.Pos
}

func fileDirectives(f *ast.File) []directive {
	var out []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, nolintPrefix) {
				continue
			}
			rest := text[len(nolintPrefix):]
			rule, reason, _ := strings.Cut(rest, " ")
			out = append(out, directive{
				rule:   strings.TrimSpace(rule),
				reason: strings.TrimSpace(reason),
				pos:    c.Pos(),
			})
		}
	}
	return out
}

// Run executes every analyzer over every package of mod and returns the
// surviving findings sorted by position. Suppressions (//demos:nolint) are
// applied here, and malformed suppressions are reported under the "nolint"
// pseudo-rule.
func Run(mod *Module, analyzers []Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range mod.Pkgs {
			a.Run(&Pass{Mod: mod, Pkg: pkg, rule: a.Name(), sink: &diags})
		}
	}

	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name()] = true
	}

	// suppress[path][line] = set of rules silenced at that line; valid keeps
	// each well-formed directive once (at its own line) for the staleness
	// audit below.
	type validDirective struct {
		path string
		line int
		rule string
	}
	var valid []validDirective
	suppress := make(map[string]map[int]map[string]bool)
	add := func(path string, line int, rule string) {
		if suppress[path] == nil {
			suppress[path] = make(map[int]map[string]bool)
		}
		if suppress[path][line] == nil {
			suppress[path][line] = make(map[string]bool)
		}
		suppress[path][line][rule] = true
	}
	for _, pkg := range mod.Pkgs {
		for _, f := range append(append([]*ast.File(nil), pkg.Files...), pkg.TestFiles...) {
			for _, d := range fileDirectives(f) {
				position := mod.Fset.Position(d.pos)
				path := relPath(mod.Root, position.Filename)
				switch {
				case d.rule == "" || !known[d.rule]:
					diags = append(diags, Diagnostic{Path: path, Line: position.Line,
						Rule: "nolint", Msg: fmt.Sprintf("unknown rule %q in suppression", d.rule)})
				case d.reason == "":
					diags = append(diags, Diagnostic{Path: path, Line: position.Line,
						Rule: "nolint", Msg: fmt.Sprintf("suppression of %q needs a reason: //demos:nolint:%s <why>", d.rule, d.rule)})
				default:
					add(path, position.Line, d.rule)
					add(path, position.Line+1, d.rule)
					valid = append(valid, validDirective{path: path, line: position.Line, rule: d.rule})
				}
			}
		}
	}

	used := make(map[string]bool) // "path:line:rule" keys that silenced something
	kept := diags[:0]
	for _, d := range diags {
		if d.Rule != "nolint" && suppress[d.Path][d.Line][d.Rule] {
			used[fmt.Sprintf("%s:%d:%s", d.Path, d.Line, d.Rule)] = true
			continue
		}
		kept = append(kept, d)
	}
	diags = kept

	// suppressaudit, part 1: a well-formed suppression that silenced nothing
	// this run is stale. This must happen post-filter — only lint.Run knows
	// which findings each directive actually consumed — so the check lives
	// here and reports under the suppressaudit rule when that analyzer is in
	// the suite.
	if known["suppressaudit"] {
		for _, v := range valid {
			if used[fmt.Sprintf("%s:%d:%s", v.path, v.line, v.rule)] ||
				used[fmt.Sprintf("%s:%d:%s", v.path, v.line+1, v.rule)] {
				continue
			}
			diags = append(diags, Diagnostic{Path: v.path, Line: v.line, Rule: "suppressaudit",
				Msg: fmt.Sprintf("suppression of %q no longer fires: delete it or fix the code it excuses", v.rule)})
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return diags
}

// hasDirective reports whether a doc comment group carries the given
// //demos:<name> marker (e.g. "hotpath").
func hasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	want := "//demos:" + name
	for _, c := range doc.List {
		if c.Text == want || strings.HasPrefix(c.Text, want+" ") {
			return true
		}
	}
	return false
}

package lint

import (
	"go/ast"
)

// WirePair machine-checks the wire-protocol hygiene of the message
// package: every control payload type must keep its encoder, decoder, and
// fuzz coverage in lockstep. A payload is any exported struct with an
// Encode or AppendTo method (the envelope Message, recognized by its
// AppendWire method, is excluded). For each payload T the rule requires:
//
//  1. an AppendTo([]byte) []byte reusable-buffer encoder (the hot-path
//     form; Encode alone forces a fresh allocation per message),
//  2. a matching top-level decoder DecodeT,
//  3. DecodeT invoked from the package's fuzz tests, and
//  4. a T{...} seed registered in the fuzz corpus via f.Add.
//
// Migration systems fail subtly when implicit state escapes the protocol;
// a payload that can be encoded but not decoded (or that the fuzzer never
// sees) is exactly such an escape hatch.
type WirePair struct {
	PkgPath string // the wire package, e.g. "demosmp/internal/msg"
}

func (WirePair) Name() string { return "wirepair" }
func (WirePair) Doc() string {
	return "every wire Encode in internal/msg has a paired Decode plus round-trip fuzz coverage"
}

func (w WirePair) Run(p *Pass) {
	if p.Pkg.ImportPath != w.PkgPath {
		return
	}

	// From non-test files: exported struct types, their methods, and
	// top-level Decode* functions.
	typeDecl := make(map[string]*ast.TypeSpec)
	methods := make(map[string]map[string]bool)
	funcs := make(map[string]bool)
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !ts.Name.IsExported() {
						continue
					}
					if _, isStruct := ts.Type.(*ast.StructType); isStruct {
						typeDecl[ts.Name.Name] = ts
					}
				}
			case *ast.FuncDecl:
				if d.Recv == nil {
					funcs[d.Name.Name] = true
					continue
				}
				if len(d.Recv.List) == 1 {
					tn := recvTypeName(d.Recv.List[0].Type)
					if methods[tn] == nil {
						methods[tn] = make(map[string]bool)
					}
					methods[tn][d.Name.Name] = true
				}
			}
		}
	}

	// From test files (parsed only): every called name, and every type
	// whose composite literal appears inside an f.Add corpus registration.
	calledInTests := make(map[string]bool)
	addSeeds := make(map[string]bool)
	for _, f := range p.Pkg.TestFiles {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name := calleeName(call); name != "" {
				calledInTests[name] = true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Add" {
				for _, arg := range call.Args {
					ast.Inspect(arg, func(m ast.Node) bool {
						cl, ok := m.(*ast.CompositeLit)
						if !ok {
							return true
						}
						if id, ok := cl.Type.(*ast.Ident); ok {
							addSeeds[id.Name] = true
						}
						return true
					})
				}
			}
			return true
		})
	}

	for name, ts := range typeDecl {
		ms := methods[name]
		if ms["AppendWire"] {
			continue // the envelope, not a payload
		}
		if !ms["Encode"] && !ms["AppendTo"] {
			continue // plain data record (e.g. a sub-struct of a payload)
		}
		switch {
		case !ms["AppendTo"]:
			p.Reportf(ts.Pos(), "payload %s has Encode but no AppendTo([]byte) []byte: the reusable-buffer encoder pair is missing", name)
		case !ms["Encode"]:
			p.Reportf(ts.Pos(), "payload %s has AppendTo but no Encode() []byte convenience form", name)
		}
		decoder := "Decode" + name
		if !funcs[decoder] {
			p.Reportf(ts.Pos(), "payload %s has no matching decoder %s: every wire encoder needs its decoder pair", name, decoder)
			continue
		}
		if !calledInTests[decoder] {
			p.Reportf(ts.Pos(), "decoder %s is never exercised by this package's fuzz/round-trip tests", decoder)
		}
		if !addSeeds[name] {
			p.Reportf(ts.Pos(), "payload %s is not registered in the fuzz corpus: add an f.Add(%s{...}.Encode()) seed", name, name)
		}
	}
}

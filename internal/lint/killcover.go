package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// KillCover enforces that the fault-injection surface stays exercised:
// every kill-point constant (the protocol stages a chaos scenario may
// crash at) and every boolean Config flag (the ablation switches of §4–§6)
// must be referenced by name from at least one _test.go file somewhere in
// the module. A kill-point nobody kills at, or a flag nobody flips in a
// test, is dead fault-injection surface — the exact rot this repo's
// invariant-first methodology exists to prevent.
type KillCover struct {
	// Pkg is the import path of the package declaring both types
	// (demosmp/internal/kernel).
	Pkg string
	// ConstType is the named type whose package-level constants must be
	// test-referenced (KillPoint).
	ConstType string
	// ConfigType is the struct whose exported bool fields must be
	// test-referenced (Config).
	ConfigType string
	// ChaosKinds maps each fault kind the chaos injector can drive to the
	// identifier names that mark it as exercised (any one counts). Every
	// kind must be referenced from at least one SHARDED test file — a test
	// file that also references one of ShardMarkers — so the fault plane's
	// sharded composition cannot silently lose coverage while the classic
	// single-engine tests keep it green.
	ChaosKinds map[string][]string
	// ShardMarkers are the identifiers whose presence makes a test file
	// sharded (e.g. Shards, ShardParallel).
	ShardMarkers []string
}

func (KillCover) Name() string { return "killcover" }
func (KillCover) Doc() string {
	return "every kill-point constant and bool Config flag is referenced from at least one test"
}

func (kc KillCover) Run(p *Pass) {
	if p.Pkg.ImportPath != kc.Pkg || p.Pkg.Types == nil {
		return
	}
	refs := moduleTestIdents(p.Mod)
	scope := p.Pkg.Types.Scope()

	// Kill-point constants: package-level consts whose type is ConstType.
	var consts []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		named, ok := c.Type().(*types.Named)
		if !ok || named.Obj().Name() != kc.ConstType || named.Obj().Pkg() != p.Pkg.Types {
			continue
		}
		consts = append(consts, c)
	}
	sort.Slice(consts, func(i, j int) bool { return consts[i].Pos() < consts[j].Pos() })
	for _, c := range consts {
		if !refs[c.Name()] {
			p.Reportf(c.Pos(), "kill-point %s is not referenced by any test: no chaos scenario crashes at this protocol stage", c.Name())
		}
	}

	// Chaos fault kinds: each must be referenced from a sharded test file.
	// Diagnostics anchor at the ConstType declaration — the kill-point type
	// is the root of the fault-injection surface this rule guards.
	if len(kc.ChaosKinds) > 0 {
		sharded := shardedTestIdents(p.Mod, kc.ShardMarkers)
		var kinds []string
		for kind := range kc.ChaosKinds {
			kinds = append(kinds, kind)
		}
		sort.Strings(kinds)
		anchor := scope.Lookup(kc.ConstType)
		for _, kind := range kinds {
			ids := kc.ChaosKinds[kind]
			hit := false
			for _, id := range ids {
				if sharded[id] {
					hit = true
					break
				}
			}
			if !hit && anchor != nil {
				p.Reportf(anchor.Pos(),
					"chaos fault kind %q (%s) is not referenced by any sharded test (one referencing %s): the sharded fault plane lost coverage",
					kind, strings.Join(ids, "/"), strings.Join(kc.ShardMarkers, "/"))
			}
		}
	}

	// Config ablation flags: exported bool fields of ConfigType.
	if tn, ok := scope.Lookup(kc.ConfigType).(*types.TypeName); ok {
		if st, ok := tn.Type().Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				basic, ok := f.Type().(*types.Basic)
				if !ok || basic.Kind() != types.Bool || !f.Exported() {
					continue
				}
				if !refs[f.Name()] {
					p.Reportf(f.Pos(), "%s flag %s is not referenced by any test: the ablation it selects is unmeasured", kc.ConfigType, f.Name())
				}
			}
		}
	}
}

// moduleTestIdents collects every identifier name appearing in any
// _test.go file of the module — a deliberately coarse "referenced" notion
// (parse-only ASTs, no types for test files), which is exactly enough to
// prove a named constant or field shows up in test code.
func moduleTestIdents(mod *Module) map[string]bool {
	out := make(map[string]bool)
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.TestFiles {
			ast.Inspect(f, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					out[id.Name] = true
				}
				return true
			})
		}
	}
	return out
}

// shardedTestIdents collects the identifier union over the module's
// SHARDED test files only: those whose own identifiers include at least
// one of the marker names. The same coarse parse-only notion as
// moduleTestIdents, scoped to the files that exercise the sharded runtime.
func shardedTestIdents(mod *Module, markers []string) map[string]bool {
	mark := make(map[string]bool, len(markers))
	for _, m := range markers {
		mark[m] = true
	}
	out := make(map[string]bool)
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.TestFiles {
			ids := make(map[string]bool)
			sharded := false
			ast.Inspect(f, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					ids[id.Name] = true
					if mark[id.Name] {
						sharded = true
					}
				}
				return true
			})
			if !sharded {
				continue
			}
			for name := range ids {
				out[name] = true
			}
		}
	}
	return out
}

package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism forbids ambient nondeterminism inside the simulation
// packages: wall-clock reads, real sleeps, the global math/rand source, and
// environment lookups. Byte-identical replay of the paper's 8-step
// migration (testdata/golden_trace.txt) and its "9 administrative
// messages" accounting depend on every input flowing through the seeded
// sim.Engine — one stray time.Now or rand.Intn and two runs stop agreeing.
//
// The rule applies to packages whose import path starts with Prefix
// (non-test files only; tests are the checking layer and may measure real
// time). Exempt packages — in practice only sim itself, which owns the
// seeded PRNG — are skipped entirely.
type Determinism struct {
	Prefix string          // e.g. "demosmp/internal/"; empty checks everything
	Exempt map[string]bool // import paths allowed to touch the primitives
}

func (Determinism) Name() string { return "determinism" }
func (Determinism) Doc() string {
	return "all randomness through sim.Engine.Rand; no ambient clocks, env, or goroutine-timing sources"
}

// forbidden ambient-input functions, by package path. math/rand and
// math/rand/v2 are handled wholesale: every package-level function there is
// either the global source (Intn, Float64, ...) or a constructor for a
// private source that would bypass the engine's seed (New, NewSource).
var (
	timeForbidden = map[string]string{
		"Now": "reads the wall clock", "Sleep": "blocks on real time",
		"Since": "reads the wall clock", "Until": "reads the wall clock",
		"After": "creates a real timer", "AfterFunc": "creates a real timer",
		"Tick": "creates a real ticker", "NewTicker": "creates a real ticker",
		"NewTimer": "creates a real timer",
	}
	osForbidden = map[string]string{
		"Getenv": "reads the environment", "LookupEnv": "reads the environment",
		"Environ": "reads the environment", "Hostname": "reads the host identity",
		"Getpid": "reads the process identity", "Getppid": "reads the process identity",
	}
)

func (d Determinism) Run(p *Pass) {
	if d.Prefix != "" && !strings.HasPrefix(p.Pkg.ImportPath, d.Prefix) {
		return
	}
	if d.Exempt[p.Pkg.ImportPath] {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are fine
			}
			name := fn.Name()
			switch fn.Pkg().Path() {
			case "time":
				if why, bad := timeForbidden[name]; bad {
					p.Reportf(sel.Pos(), "time.%s %s; simulated time must come from sim.Engine.Now (golden-trace replay breaks otherwise)", name, why)
				}
			case "math/rand", "math/rand/v2":
				p.Reportf(sel.Pos(), "%s.%s bypasses the seeded engine PRNG; all simulation randomness must come from sim.Engine.Rand", fn.Pkg().Path(), name)
			case "os":
				if why, bad := osForbidden[name]; bad {
					p.Reportf(sel.Pos(), "os.%s %s; ambient inputs make runs unreproducible — thread configuration through explicit Config structs", name, why)
				}
			}
			return true
		})
	}
}

package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module under analysis.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File // non-test files, type-checked
	TestFiles  []*ast.File // *_test.go files, parsed only (never type-checked)
	Types      *types.Package
	Info       *types.Info
}

// Module is the fully loaded module: every package, in a deterministic
// topological order (dependencies before dependents).
type Module struct {
	Path string // module path from go.mod, e.g. "demosmp"
	Root string // absolute directory containing go.mod
	Fset *token.FileSet
	Pkgs []*Package
}

// skipDir reports directories the loader never descends into. testdata is
// the Go-tool convention for fixture trees (our own analyzer fixtures live
// there); the rest are non-Go housekeeping.
func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// LoadModule parses and type-checks every package under root, resolving
// module-internal imports against the tree itself and everything else
// (the standard library) through the stdlib source importer. It uses only
// go/parser, go/ast, go/types and go/importer — no x/tools.
func LoadModule(root, modulePath string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	mod := &Module{Path: modulePath, Root: root, Fset: fset}

	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if path != root && skipDir(d.Name()) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	byPath := make(map[string]*Package, len(dirs))
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		imp := modulePath
		if rel != "." {
			imp = modulePath + "/" + filepath.ToSlash(rel)
		}
		p := &Package{ImportPath: imp, Dir: dir}
		ents, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		names := make([]string, 0, len(ents))
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				names = append(names, e.Name())
			}
		}
		sort.Strings(names)
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: parse %s: %w", filepath.Join(dir, name), err)
			}
			if strings.HasSuffix(name, "_test.go") {
				p.TestFiles = append(p.TestFiles, f)
			} else {
				p.Files = append(p.Files, f)
			}
		}
		if len(p.Files)+len(p.TestFiles) > 0 {
			byPath[imp] = p
			mod.Pkgs = append(mod.Pkgs, p)
		}
	}

	ordered, err := topoOrder(mod.Pkgs, byPath, modulePath)
	if err != nil {
		return nil, err
	}
	mod.Pkgs = ordered

	imp := &moduleImporter{
		module: modulePath,
		pkgs:   byPath,
		std:    importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
	for _, p := range ordered {
		if len(p.Files) == 0 {
			continue // test-only package: nothing to type-check
		}
		var typeErrs []error
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		tpkg, err := conf.Check(p.ImportPath, fset, p.Files, info)
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("lint: type-check %s: %v", p.ImportPath, typeErrs[0])
		}
		if err != nil {
			return nil, fmt.Errorf("lint: type-check %s: %w", p.ImportPath, err)
		}
		p.Types, p.Info = tpkg, info
	}
	return mod, nil
}

// moduleImporter resolves module-internal import paths against the loaded
// tree (packages are type-checked in dependency order, so they are always
// present by the time a dependent asks) and delegates everything else to
// the standard library source importer.
type moduleImporter struct {
	module string
	pkgs   map[string]*Package
	std    types.ImporterFrom
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == m.module || strings.HasPrefix(path, m.module+"/") {
		p := m.pkgs[path]
		if p == nil || p.Types == nil {
			return nil, fmt.Errorf("lint: package %s not loaded (unknown path or import cycle)", path)
		}
		return p.Types, nil
	}
	return m.std.ImportFrom(path, dir, mode)
}

// internalImports returns the module-internal import paths of a file.
func internalImports(f *ast.File, module string) []string {
	var out []string
	for _, spec := range f.Imports {
		path := strings.Trim(spec.Path.Value, `"`)
		if path == module || strings.HasPrefix(path, module+"/") {
			out = append(out, path)
		}
	}
	return out
}

// topoOrder sorts packages so every module-internal dependency precedes its
// dependents. Order is deterministic (ties broken by import path) and a
// dependency cycle is an error.
func topoOrder(pkgs []*Package, byPath map[string]*Package, module string) ([]*Package, error) {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make(map[string]int, len(pkgs))
	var out []*Package
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p.ImportPath] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", p.ImportPath)
		}
		state[p.ImportPath] = visiting
		deps := make(map[string]bool)
		for _, f := range p.Files {
			for _, d := range internalImports(f, module) {
				deps[d] = true
			}
		}
		sorted := make([]string, 0, len(deps))
		for d := range deps {
			sorted = append(sorted, d)
		}
		sort.Strings(sorted)
		for _, d := range sorted {
			dep := byPath[d]
			if dep == nil {
				return fmt.Errorf("lint: %s imports unknown module package %s", p.ImportPath, d)
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[p.ImportPath] = done
		out = append(out, p)
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

package lint

// This file pins demoslint's configuration for this repository: the
// layering DAG, the determinism scope, and the wire package. The tables
// are the contract — changing an import edge means editing demosLayers in
// the same commit, which is exactly the review point the linter exists to
// create.

// ModulePath is the module demoslint is built for.
const ModulePath = "demosmp"

// demosLayers is the allowed import DAG, package by package. Key rules it
// encodes (DESIGN.md §8):
//
//   - the vocabulary layer (addr, link, msg, sim, memory, trace) sits under
//     everything and must never import kernel;
//   - only kernel (and the composition layers above it) may touch netw
//     delivery internals — processes and services see messages, not frames;
//   - internal/core is the only composition root that wires every
//     subsystem together; the public demosmp package re-exports through it;
//   - proctest is test scaffolding: no non-test file outside this table's
//     explicit entries may depend on it.
var demosLayers = map[string][]string{
	// vocabulary layer
	"demosmp/internal/addr":   {},
	"demosmp/internal/memory": {},
	"demosmp/internal/sim":    {},
	"demosmp/internal/link":   {"demosmp/internal/addr"},
	"demosmp/internal/msg":    {"demosmp/internal/addr", "demosmp/internal/link", "demosmp/internal/sim"},
	"demosmp/internal/trace":  {"demosmp/internal/addr", "demosmp/internal/sim"},

	// observability plane: vocabulary-tier (imports nothing above trace) so
	// netw, kernel, chaos, and core can all report through it
	"demosmp/internal/obs": {"demosmp/internal/addr", "demosmp/internal/sim", "demosmp/internal/trace"},

	// machine substrate
	"demosmp/internal/dvm": {"demosmp/internal/memory"},
	"demosmp/internal/netw": {"demosmp/internal/addr", "demosmp/internal/msg", "demosmp/internal/obs",
		"demosmp/internal/sim"},

	// process layer
	"demosmp/internal/proc": {"demosmp/internal/addr", "demosmp/internal/dvm", "demosmp/internal/link",
		"demosmp/internal/memory", "demosmp/internal/msg", "demosmp/internal/sim"},
	"demosmp/internal/proctest": {"demosmp/internal/addr", "demosmp/internal/link", "demosmp/internal/memory",
		"demosmp/internal/msg", "demosmp/internal/proc", "demosmp/internal/sim"},
	// policy reads the §6 ledger's record type to calibrate its cost
	// model; obs is vocabulary-tier, so the edge stays downward.
	"demosmp/internal/policy": {"demosmp/internal/addr", "demosmp/internal/msg", "demosmp/internal/obs",
		"demosmp/internal/sim"},

	// kernel layer: the only package allowed to drive netw delivery
	"demosmp/internal/kernel": {"demosmp/internal/addr", "demosmp/internal/dvm", "demosmp/internal/link",
		"demosmp/internal/memory", "demosmp/internal/msg", "demosmp/internal/netw",
		"demosmp/internal/obs", "demosmp/internal/proc", "demosmp/internal/sim",
		"demosmp/internal/trace"},

	// user-level services (message-only: no kernel, no netw)
	"demosmp/internal/fs": {"demosmp/internal/link", "demosmp/internal/msg",
		"demosmp/internal/proc", "demosmp/internal/sim"},
	"demosmp/internal/memsched": {"demosmp/internal/addr", "demosmp/internal/msg", "demosmp/internal/proc"},
	"demosmp/internal/procmgr": {"demosmp/internal/addr", "demosmp/internal/link", "demosmp/internal/memsched",
		"demosmp/internal/msg", "demosmp/internal/policy", "demosmp/internal/proc",
		"demosmp/internal/sim"},
	"demosmp/internal/shell": {"demosmp/internal/addr", "demosmp/internal/link", "demosmp/internal/msg",
		"demosmp/internal/proc", "demosmp/internal/procmgr", "demosmp/internal/switchboard"},
	"demosmp/internal/switchboard": {"demosmp/internal/link", "demosmp/internal/proc"},
	"demosmp/internal/workload": {"demosmp/internal/dvm", "demosmp/internal/link",
		"demosmp/internal/proc", "demosmp/internal/sim"},

	// fault-injection plane: drives a composed cluster, so it sits above
	// core; nothing inside the simulator may import it back
	"demosmp/internal/chaos": {"demosmp/internal/addr", "demosmp/internal/core",
		"demosmp/internal/kernel", "demosmp/internal/msg", "demosmp/internal/netw",
		"demosmp/internal/obs", "demosmp/internal/sim", "demosmp/internal/workload"},

	// experiment plane: the policy tournament harness drives composed
	// clusters like chaos does, so it also sits above core; the simulator
	// never imports it back
	"demosmp/internal/experiment": {"demosmp/internal/addr", "demosmp/internal/core",
		"demosmp/internal/kernel", "demosmp/internal/link", "demosmp/internal/msg",
		"demosmp/internal/policy", "demosmp/internal/sim", "demosmp/internal/workload"},

	// composition root and public surface
	"demosmp/internal/core": {"demosmp/internal/addr", "demosmp/internal/dvm", "demosmp/internal/fs",
		"demosmp/internal/kernel", "demosmp/internal/link", "demosmp/internal/memsched",
		"demosmp/internal/netw", "demosmp/internal/obs", "demosmp/internal/policy",
		"demosmp/internal/proc", "demosmp/internal/procmgr", "demosmp/internal/shell",
		"demosmp/internal/sim", "demosmp/internal/switchboard", "demosmp/internal/trace",
		"demosmp/internal/workload"},
	"demosmp": {"demosmp/internal/addr", "demosmp/internal/core", "demosmp/internal/dvm",
		"demosmp/internal/fs", "demosmp/internal/kernel", "demosmp/internal/link",
		"demosmp/internal/netw", "demosmp/internal/obs", "demosmp/internal/policy",
		"demosmp/internal/sim", "demosmp/internal/workload"},

	// analysis layer: stdlib only, nothing from the simulator
	"demosmp/internal/lint": {},

	// binaries and examples
	"demosmp/cmd/demosh":    {"demosmp", "demosmp/internal/kernel"},
	"demosmp/cmd/demoslint": {"demosmp/internal/lint"},
	"demosmp/cmd/demosnet": {"demosmp", "demosmp/internal/addr", "demosmp/internal/kernel",
		"demosmp/internal/link", "demosmp/internal/obs"},
	"demosmp/cmd/experiments": {"demosmp", "demosmp/internal/addr", "demosmp/internal/chaos",
		"demosmp/internal/core", "demosmp/internal/experiment", "demosmp/internal/kernel",
		"demosmp/internal/link", "demosmp/internal/msg", "demosmp/internal/netw",
		"demosmp/internal/obs", "demosmp/internal/policy", "demosmp/internal/sim",
		"demosmp/internal/trace", "demosmp/internal/workload"},
	"demosmp/examples/faulttolerance": {"demosmp"},
	"demosmp/examples/fileserver":     {"demosmp"},
	"demosmp/examples/loadbalance":    {"demosmp"},
	"demosmp/examples/quickstart":     {"demosmp"},
	"demosmp/examples/vmfile":         {"demosmp", "demosmp/internal/kernel"},
}

// DemosAnalyzers returns the full demoslint suite configured for this
// repository.
func DemosAnalyzers() []Analyzer {
	return []Analyzer{
		Determinism{
			Prefix: ModulePath + "/internal/",
			// sim owns the seeded PRNG; chaos carries its own explicitly
			// seeded stream so fault schedules replay independently of
			// how much randomness the simulation itself consumed.
			Exempt: map[string]bool{
				ModulePath + "/internal/sim":   true,
				ModulePath + "/internal/chaos": true,
			},
		},
		MapOrder{},
		Layering{Module: ModulePath, Allow: demosLayers},
		HotPathAlloc{},
		WirePair{PkgPath: ModulePath + "/internal/msg"},
		Ownership{MsgPath: ModulePath + "/internal/msg"},
		SuppressAudit{},
		KillCover{
			Pkg:        ModulePath + "/internal/kernel",
			ConstType:  "KillPoint",
			ConfigType: "Config",
			// Every fault kind the chaos injector drives must be exercised
			// from a sharded test: the shard-local fault plane composes
			// per-kind (partition mirrors, burst horizons, dup/delay
			// one-shots, kill rotations, checkpoint pulses), so classic
			// single-engine coverage alone can rot the sharded paths.
			// TestChaosKindInventory pins this table.
			ChaosKinds: map[string][]string{
				"partition":  {"PartitionEvery", "Partition"},
				"loss-burst": {"BurstEvery", "LossBurst"},
				"duplicate":  {"DupEvery", "DuplicateNext"},
				"delay":      {"DelayEvery", "DelayNext"},
				"crash":      {"MaxKills", "Crash"},
				"checkpoint": {"CheckpointEvery", "SaveCheckpoint"},
			},
			ShardMarkers: []string{"Shards", "ShardParallel"},
		},
	}
}

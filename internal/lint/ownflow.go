package lint

// ownflow.go is the dataflow core of the ownership analyzer: a
// flow-sensitive, intraprocedural abstract interpreter over the Go AST.
// Control flow is handled structurally — every branch point clones the
// abstract state, every merge point joins the clones, and loops iterate
// their bodies to a fixpoint — which is exactly a CFG walk where the basic
// blocks are the statement spans between branch/join points. The state
// lattice per tracked variable has height two (live ⊏ maybe-released,
// released ⊏ maybe-released), so fixpoints converge in at most three body
// passes.
//
// The checks themselves (what counts as a release, a use, an escape) live
// in ownership.go; this file only moves states around.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ownStatus is the per-variable lattice of the ownership analysis.
type ownStatus uint8

const (
	// osLive is the implicit default: an envelope the current path may
	// still use. Variables without an entry in flowState are live.
	osLive ownStatus = iota
	// osReleased: released (Put) on every path reaching this point.
	osReleased
	// osMaybe: released on at least one path reaching this point, live on
	// at least one other — the join of osLive and osReleased.
	osMaybe
)

// ownKind says what a flowState entry describes.
type ownKind uint8

const (
	kMsg  ownKind = iota // a pooled-envelope pointer variable
	kBody                // a slice variable aliasing some envelope's Body
	kRef                 // a msg.Ref variable bound by MakeRef
)

// ownInfo is the abstract state of one tracked variable.
type ownInfo struct {
	kind ownKind
	st   ownStatus // kMsg only: release status
	// relLine is the line of the (first) release that made st non-live.
	relLine int
	// owner is the envelope variable a kBody/kRef entry aliases. A nil
	// owner means the alias was orphaned (its envelope variable was
	// rebound) and is no longer checked.
	owner types.Object
	// validated is set on a kRef entry inside the true branch of a
	// r.Valid() guard and cleared when the owner is released.
	validated bool
}

// flowState is the abstract machine state at one program point: the
// tracked variables and whether this point is reachable. Envelope
// variables without an entry are implicitly live.
type flowState struct {
	vars       map[types.Object]ownInfo
	terminated bool // a return/panic ended this path
}

func newFlowState() *flowState {
	return &flowState{vars: make(map[types.Object]ownInfo)}
}

func (s *flowState) clone() *flowState {
	c := &flowState{vars: make(map[types.Object]ownInfo, len(s.vars)), terminated: s.terminated}
	for k, v := range s.vars {
		c.vars[k] = v
	}
	return c
}

// joinStatus is the lattice join of two release statuses.
func joinStatus(a, b ownStatus) ownStatus {
	if a == b {
		return a
	}
	return osMaybe
}

// join merges two path states in place into s. A terminated path
// contributes nothing: the merge is just the other state.
func (s *flowState) join(o *flowState) {
	if o == nil || o.terminated {
		return
	}
	if s.terminated {
		s.vars, s.terminated = o.clone().vars, false
		return
	}
	for k, ov := range o.vars {
		sv, ok := s.vars[k]
		if !ok {
			// Present on one path only. For a kMsg entry the other path
			// left the variable implicitly live, so the merge is "maybe
			// released"; alias bindings just carry over.
			if ov.kind == kMsg && ov.st != osLive {
				ov.st = osMaybe
			}
			if ov.kind == kRef {
				ov.validated = false
			}
			s.vars[k] = ov
			continue
		}
		switch sv.kind {
		case kMsg:
			sv.st = joinStatus(sv.st, ov.st)
			if sv.relLine == 0 {
				sv.relLine = ov.relLine
			}
		case kRef, kBody:
			sv.validated = sv.validated && ov.validated
			if sv.owner != ov.owner {
				sv.owner = nil // ambiguous binding: stop checking
			}
		}
		s.vars[k] = sv
	}
	// kMsg entries on s's side only: the o path had them live.
	for k, sv := range s.vars {
		if _, ok := o.vars[k]; !ok && sv.kind == kMsg && sv.st != osLive {
			sv.st = osMaybe
			s.vars[k] = sv
		}
	}
}

// equal reports whether two states are indistinguishable (fixpoint test).
func (s *flowState) equal(o *flowState) bool {
	if s.terminated != o.terminated || len(s.vars) != len(o.vars) {
		return false
	}
	for k, sv := range s.vars {
		if ov, ok := o.vars[k]; !ok || sv != ov {
			return false
		}
	}
	return true
}

// breakCtx collects the states flowing out of break/continue statements so
// the enclosing loop or switch can join them into its exit state.
type breakCtx struct {
	label     string
	isLoop    bool // continue targets loops only
	breaks    []*flowState
	continues []*flowState
}

// stmt interprets one statement, mutating st in place.
func (w *ownWalker) stmt(s ast.Stmt, st *flowState) {
	if st.terminated {
		return // unreachable on this path
	}
	switch n := s.(type) {
	case *ast.BlockStmt:
		for _, s2 := range n.List {
			w.stmt(s2, st)
		}
	case *ast.ExprStmt:
		w.expr(n.X, st)
	case *ast.AssignStmt:
		w.assign(n, st)
	case *ast.DeclStmt:
		w.declStmt(n, st)
	case *ast.IfStmt:
		w.ifStmt(n, st)
	case *ast.ForStmt:
		w.forStmt(n, st, "")
	case *ast.RangeStmt:
		w.rangeStmt(n, st, "")
	case *ast.SwitchStmt:
		w.switchStmt(n, st, "")
	case *ast.TypeSwitchStmt:
		w.typeSwitchStmt(n, st, "")
	case *ast.SelectStmt:
		w.selectStmt(n, st)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			w.expr(r, st) // returning an envelope transfers ownership: use-checked, never an escape
		}
		st.terminated = true
	case *ast.BranchStmt:
		w.branch(n, st)
	case *ast.LabeledStmt:
		w.labeled(n, st)
	case *ast.DeferStmt:
		w.expr(n.Call, st)
	case *ast.GoStmt:
		w.expr(n.Call, st)
	case *ast.IncDecStmt:
		w.expr(n.X, st)
	case *ast.SendStmt:
		w.expr(n.Chan, st)
		w.expr(n.Value, st)
	case *ast.EmptyStmt:
	}
}

func (w *ownWalker) labeled(n *ast.LabeledStmt, st *flowState) {
	switch inner := n.Stmt.(type) {
	case *ast.ForStmt:
		w.forStmt(inner, st, n.Label.Name)
	case *ast.RangeStmt:
		w.rangeStmt(inner, st, n.Label.Name)
	case *ast.SwitchStmt:
		w.switchStmt(inner, st, n.Label.Name)
	case *ast.TypeSwitchStmt:
		w.typeSwitchStmt(inner, st, n.Label.Name)
	default:
		w.stmt(n.Stmt, st)
	}
}

func (w *ownWalker) branch(n *ast.BranchStmt, st *flowState) {
	label := ""
	if n.Label != nil {
		label = n.Label.Name
	}
	switch n.Tok {
	case token.BREAK:
		if c := w.findCtx(label, false); c != nil {
			c.breaks = append(c.breaks, st.clone())
		}
		st.terminated = true
	case token.CONTINUE:
		if c := w.findCtx(label, true); c != nil {
			c.continues = append(c.continues, st.clone())
		}
		st.terminated = true
	case token.GOTO:
		// Functions containing goto are skipped up front (see Run);
		// nothing to do here.
	case token.FALLTHROUGH:
		// Handled by switchStmt chaining clause states.
	}
}

// findCtx resolves the innermost matching break/continue target.
func (w *ownWalker) findCtx(label string, needLoop bool) *breakCtx {
	for i := len(w.ctxs) - 1; i >= 0; i-- {
		c := w.ctxs[i]
		if needLoop && !c.isLoop {
			continue
		}
		if label == "" || c.label == label {
			return c
		}
	}
	return nil
}

func (w *ownWalker) ifStmt(n *ast.IfStmt, st *flowState) {
	if n.Init != nil {
		w.stmt(n.Init, st)
	}
	w.expr(n.Cond, st)
	ifTrue, ifFalse := w.condRefine(n.Cond)

	thenSt := st.clone()
	validate(thenSt, ifTrue)
	elseSt := st.clone()
	validate(elseSt, ifFalse)

	w.stmt(n.Body, thenSt)
	if n.Else != nil {
		w.stmt(n.Else, elseSt)
	}
	thenSt.join(elseSt)
	*st = *thenSt
}

// validate marks kRef entries as guarded by a successful Valid() check.
func validate(st *flowState, refs []types.Object) {
	for _, r := range refs {
		info, ok := st.vars[r]
		if !ok {
			info = ownInfo{kind: kRef}
		}
		if info.kind == kRef {
			info.validated = true
			st.vars[r] = info
		}
	}
}

// condRefine extracts Valid() guards from a branch condition: the refs
// known validated when the condition is true, and when it is false.
func (w *ownWalker) condRefine(e ast.Expr) (ifTrue, ifFalse []types.Object) {
	switch n := e.(type) {
	case *ast.ParenExpr:
		return w.condRefine(n.X)
	case *ast.UnaryExpr:
		if n.Op == token.NOT {
			f, t := w.condRefine(n.X)
			return f, t
		}
	case *ast.BinaryExpr:
		switch n.Op {
		case token.LAND: // both held only when the whole condition is true
			lt, _ := w.condRefine(n.X)
			rt, _ := w.condRefine(n.Y)
			return append(lt, rt...), nil
		case token.LOR: // both known false only when the whole condition is false
			_, lf := w.condRefine(n.X)
			_, rf := w.condRefine(n.Y)
			return nil, append(lf, rf...)
		}
	case *ast.CallExpr:
		if obj := w.validCallRecv(n); obj != nil {
			return []types.Object{obj}, nil
		}
	}
	return nil, nil
}

const maxLoopPasses = 3 // lattice height 2: three passes always converge

func (w *ownWalker) forStmt(n *ast.ForStmt, st *flowState, label string) {
	if n.Init != nil {
		w.stmt(n.Init, st)
	}
	head := st.clone()
	var ctx *breakCtx
	for pass := 0; pass < maxLoopPasses; pass++ {
		iter := head.clone()
		if n.Cond != nil {
			w.expr(n.Cond, iter)
		}
		ctx = &breakCtx{label: label, isLoop: true}
		w.ctxs = append(w.ctxs, ctx)
		body := iter.clone()
		w.stmt(n.Body, body)
		w.ctxs = w.ctxs[:len(w.ctxs)-1]
		for _, c := range ctx.continues {
			body.join(c)
		}
		if n.Post != nil {
			w.stmt(n.Post, body)
		}
		next := head.clone()
		next.join(body)
		if next.equal(head) {
			break
		}
		head = next
	}
	exit := head // condition-false exit (or loop never entered)
	if n.Cond == nil {
		// `for { ... }` only exits through break.
		exit.terminated = true
	}
	if ctx != nil {
		for _, b := range ctx.breaks {
			exit.join(b)
		}
	}
	*st = *exit
}

func (w *ownWalker) rangeStmt(n *ast.RangeStmt, st *flowState, label string) {
	w.expr(n.X, st)
	head := st.clone()
	var ctx *breakCtx
	for pass := 0; pass < maxLoopPasses; pass++ {
		iter := head.clone()
		// The iteration variables rebind at the top of every pass.
		w.bindRangeVars(n, iter)
		ctx = &breakCtx{label: label, isLoop: true}
		w.ctxs = append(w.ctxs, ctx)
		body := iter.clone()
		w.stmt(n.Body, body)
		w.ctxs = w.ctxs[:len(w.ctxs)-1]
		for _, c := range ctx.continues {
			body.join(c)
		}
		next := head.clone()
		next.join(body)
		if next.equal(head) {
			break
		}
		head = next
	}
	exit := head
	if ctx != nil {
		for _, b := range ctx.breaks {
			exit.join(b)
		}
	}
	*st = *exit
}

// bindRangeVars resets the key/value variables of a range loop: each
// iteration delivers a fresh element, so stale release states from a
// previous pass must not leak into the next one.
func (w *ownWalker) bindRangeVars(n *ast.RangeStmt, st *flowState) {
	for _, e := range []ast.Expr{n.Key, n.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := w.objOf(id); obj != nil {
			w.rebind(obj, st)
		}
	}
}

func (w *ownWalker) switchStmt(n *ast.SwitchStmt, st *flowState, label string) {
	if n.Init != nil {
		w.stmt(n.Init, st)
	}
	if n.Tag != nil {
		w.expr(n.Tag, st)
	}
	w.caseClauses(n.Body, st, label, func(c *ast.CaseClause, cs *flowState) {
		for _, e := range c.List {
			w.expr(e, cs)
		}
	})
}

func (w *ownWalker) typeSwitchStmt(n *ast.TypeSwitchStmt, st *flowState, label string) {
	if n.Init != nil {
		w.stmt(n.Init, st)
	}
	w.stmt(n.Assign, st)
	w.caseClauses(n.Body, st, label, func(*ast.CaseClause, *flowState) {})
}

// caseClauses runs each clause from the pre-switch state and joins the
// results; a trailing fallthrough chains one clause's out-state into the
// next clause's entry. Without a default clause the tag may match nothing,
// so the pre-state joins the exit too.
func (w *ownWalker) caseClauses(body *ast.BlockStmt, st *flowState, label string, head func(*ast.CaseClause, *flowState)) {
	ctx := &breakCtx{label: label}
	w.ctxs = append(w.ctxs, ctx)
	var exit *flowState
	hasDefault := false
	var fall *flowState
	for _, cs := range body.List {
		c, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		if c.List == nil {
			hasDefault = true
		}
		clause := st.clone()
		head(c, clause)
		if fall != nil {
			clause.join(fall)
			fall = nil
		}
		for _, s2 := range c.Body {
			w.stmt(s2, clause)
		}
		if len(c.Body) > 0 {
			if br, ok := c.Body[len(c.Body)-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fall = clause.clone()
				fall.terminated = false
				continue
			}
		}
		if exit == nil {
			exit = clause
		} else {
			exit.join(clause)
		}
	}
	w.ctxs = w.ctxs[:len(w.ctxs)-1]
	if exit == nil {
		exit = st.clone()
	} else if !hasDefault {
		exit.join(st)
	}
	for _, b := range ctx.breaks {
		exit.join(b)
	}
	*st = *exit
}

func (w *ownWalker) selectStmt(n *ast.SelectStmt, st *flowState) {
	ctx := &breakCtx{}
	w.ctxs = append(w.ctxs, ctx)
	var exit *flowState
	for _, cs := range n.Body.List {
		c, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		clause := st.clone()
		if c.Comm != nil {
			w.stmt(c.Comm, clause)
		}
		for _, s2 := range c.Body {
			w.stmt(s2, clause)
		}
		if exit == nil {
			exit = clause
		} else {
			exit.join(clause)
		}
	}
	w.ctxs = w.ctxs[:len(w.ctxs)-1]
	if exit == nil {
		exit = st.clone()
	}
	for _, b := range ctx.breaks {
		exit.join(b)
	}
	*st = *exit
}

// hasGoto reports whether a function body contains a goto; such functions
// have unstructured flow the interpreter cannot model, so the analyzer
// skips them entirely rather than reporting wrong states.
func hasGoto(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BranchStmt); ok && b.Tok == token.GOTO {
			found = true
		}
		return !found
	})
	return found
}

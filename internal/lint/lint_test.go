package lint

import (
	"flag"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// TestFixtures runs each analyzer over its fixture module in
// testdata/src/<name> and compares the rendered diagnostics against
// testdata/<name>.golden. Each fixture holds positive cases, negative
// cases, and nolint suppressions for one rule; the golden file pins the
// exact findings (and, by omission, the silences).
func TestFixtures(t *testing.T) {
	cases := []struct {
		name      string // fixture directory and golden file stem
		module    string // module path the fixture is loaded as
		analyzers []Analyzer
	}{
		{"detfix", "detfix", []Analyzer{Determinism{
			Prefix: "detfix/internal/",
			Exempt: map[string]bool{"detfix/internal/simx": true},
		}}},
		{"mapfix", "mapfix", []Analyzer{MapOrder{}}},
		{"layfix", "layfix", []Analyzer{Layering{
			Module: "layfix",
			Allow: map[string][]string{
				"layfix/a": {},
				"layfix/b": {"layfix/a"},
				"layfix/c": {"layfix/a"},
			},
		}}},
		{"hotfix", "hotfix", []Analyzer{HotPathAlloc{}}},
		{"wirefix", "wirefix", []Analyzer{WirePair{PkgPath: "wirefix"}}},
		{"ownfix", "ownfix", []Analyzer{Ownership{MsgPath: "ownfix/msg"}}},
		{"supfix", "supfix", []Analyzer{Determinism{}, SuppressAudit{}}},
		{"killfix", "killfix", []Analyzer{KillCover{
			Pkg: "killfix", ConstType: "Point", ConfigType: "Config",
			ChaosKinds: map[string][]string{
				"partition": {"Partition"},
				"burst":     {"LossBurst"},
			},
			ShardMarkers: []string{"Shards"},
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mod, err := LoadModule(filepath.Join("testdata", "src", tc.name), tc.module)
			if err != nil {
				t.Fatalf("LoadModule: %v", err)
			}
			var sb strings.Builder
			for _, d := range Run(mod, tc.analyzers) {
				sb.WriteString(d.String())
				sb.WriteByte('\n')
			}
			got := sb.String()

			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics differ from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestNolintSuppresses pins the suppression contract: a trailing directive
// with a reason silences its own line (the fixture's Suppressed function),
// independent of the golden-file comparison.
func TestNolintSuppresses(t *testing.T) {
	src := filepath.Join("testdata", "src", "detfix", "internal", "clock", "clock.go")
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	suppressedLine := 0
	for i, line := range strings.Split(string(data), "\n") {
		if strings.Contains(line, "//demos:nolint:determinism fixture") {
			suppressedLine = i + 1
		}
	}
	if suppressedLine == 0 {
		t.Fatal("fixture lost its suppression line")
	}
	mod, err := LoadModule(filepath.Join("testdata", "src", "detfix"), "detfix")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range Run(mod, []Analyzer{Determinism{Prefix: "detfix/internal/"}}) {
		if d.Rule == "determinism" && d.Line == suppressedLine {
			t.Errorf("suppression failed to silence %s:%d: %v", d.Path, d.Line, d)
		}
	}
}

// TestInjectedDoublePutCaught splices a second Put into a temp copy of the
// ownfix drain loop — the fixture mirror of deliver.go's locate-reply
// drain — and asserts the ownership analyzer reports the double release at
// the injected line. This is the proof that a regression in the real drain
// could not land silently.
func TestInjectedDoublePutCaught(t *testing.T) {
	srcRoot := filepath.Join("testdata", "src", "ownfix")
	tmp := t.TempDir()
	marker := "// INJECT:DOUBLE-PUT"
	injectedLine := 0
	err := filepath.WalkDir(srcRoot, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(srcRoot, path)
		if err != nil {
			return err
		}
		dst := filepath.Join(tmp, rel)
		if d.IsDir() {
			return os.MkdirAll(dst, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if rel == filepath.Join("own", "drain.go") {
			text := string(data)
			if !strings.Contains(text, marker) {
				t.Fatalf("drain fixture lost its %s marker", marker)
			}
			for i, line := range strings.Split(text, "\n") {
				if strings.Contains(line, marker) {
					injectedLine = i + 1
				}
			}
			text = strings.Replace(text, marker, "p.Put(m)", 1)
			data = []byte(text)
		}
		return os.WriteFile(dst, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if injectedLine == 0 {
		t.Fatal("injection marker not found")
	}

	mod, err := LoadModule(tmp, "ownfix")
	if err != nil {
		t.Fatalf("LoadModule on injected copy: %v", err)
	}
	caught := false
	for _, d := range Run(mod, []Analyzer{Ownership{MsgPath: "ownfix/msg"}}) {
		if d.Rule == "ownership" && d.Path == "own/drain.go" &&
			d.Line == injectedLine && strings.Contains(d.Msg, "double release") {
			caught = true
		}
	}
	if !caught {
		t.Fatalf("injected double-Put at own/drain.go:%d was not reported", injectedLine)
	}
}

// TestChaosKindInventory pins the chaos fault-kind table wired into the
// repository's killcover configuration: every fault family the injector
// can drive, each with the identifiers that mark it exercised, plus the
// shard markers. Adding a fault family to the injector means adding it
// here AND referencing it from a sharded test in the same commit.
func TestChaosKindInventory(t *testing.T) {
	var kc *KillCover
	for _, a := range DemosAnalyzers() {
		if k, ok := a.(KillCover); ok {
			kc = &k
		}
	}
	if kc == nil {
		t.Fatal("DemosAnalyzers lost its KillCover entry")
	}
	want := map[string][]string{
		"partition":  {"PartitionEvery", "Partition"},
		"loss-burst": {"BurstEvery", "LossBurst"},
		"duplicate":  {"DupEvery", "DuplicateNext"},
		"delay":      {"DelayEvery", "DelayNext"},
		"crash":      {"MaxKills", "Crash"},
		"checkpoint": {"CheckpointEvery", "SaveCheckpoint"},
	}
	if len(kc.ChaosKinds) != len(want) {
		t.Fatalf("ChaosKinds has %d kinds, want %d: %v", len(kc.ChaosKinds), len(want), kc.ChaosKinds)
	}
	for kind, ids := range want {
		got, ok := kc.ChaosKinds[kind]
		if !ok {
			t.Errorf("fault kind %q missing from killcover config", kind)
			continue
		}
		if len(got) != len(ids) {
			t.Errorf("kind %q idents = %v, want %v", kind, got, ids)
			continue
		}
		for i := range ids {
			if got[i] != ids[i] {
				t.Errorf("kind %q idents = %v, want %v", kind, got, ids)
				break
			}
		}
	}
	wantMarkers := []string{"Shards", "ShardParallel"}
	if len(kc.ShardMarkers) != len(wantMarkers) {
		t.Fatalf("ShardMarkers = %v, want %v", kc.ShardMarkers, wantMarkers)
	}
	for i := range wantMarkers {
		if kc.ShardMarkers[i] != wantMarkers[i] {
			t.Fatalf("ShardMarkers = %v, want %v", kc.ShardMarkers, wantMarkers)
		}
	}
}

package lint

import (
	"go/ast"
	"go/types"
)

// HotPathAlloc checks functions annotated //demos:hotpath — the
// zero-allocation steady-state paths guarded dynamically by
// TestHotPathZeroAlloc in bench_hotpath_test.go. The dynamic guard catches
// a regression only on the inputs the test happens to drive; this static
// rule rejects the constructs that allocate on any input:
//
//   - any call into package fmt (interface boxing + formatting state),
//   - a func literal that captures enclosing variables (closure allocation),
//   - passing a concrete value where an interface is expected (boxing),
//   - an append that visibly allocates in the AST: growing a freshly made
//     nil/empty slice, or assigning the result to a different slice than it
//     extends. Self-extension (x = append(x, ...), return append(b, ...))
//     is the amortized arena/buffer idiom and passes.
//
// Annotate a function only when bench_hotpath_test.go also exercises it,
// and cross-reference the benchmark in the annotation comment.
type HotPathAlloc struct{}

func (HotPathAlloc) Name() string { return "hotpathalloc" }
func (HotPathAlloc) Doc() string {
	return "//demos:hotpath functions must not contain allocating constructs (make, new, append-grow, closures, boxing)"
}

func (HotPathAlloc) Run(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, "hotpath") {
				continue
			}
			checkHotPath(p, fd)
		}
	}
}

func checkHotPath(p *Pass, fd *ast.FuncDecl) {
	// Map append calls to the expression their result is assigned to, so
	// `y = append(x, ...)` can be distinguished from self-extension.
	assignedTo := make(map[*ast.CallExpr]ast.Expr)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(p, call) {
				assignedTo[call] = as.Lhs[i]
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			if name, captured := capturesOuter(p, fd, node); captured {
				p.Reportf(node.Pos(), "closure capturing %q allocates on a //demos:hotpath function; hoist the closure or pass state explicitly (guarded by TestHotPathZeroAlloc)", name)
			}
		case *ast.CallExpr:
			checkHotPathCall(p, node, assignedTo)
		}
		return true
	})
}

func checkHotPathCall(p *Pass, call *ast.CallExpr, assignedTo map[*ast.CallExpr]ast.Expr) {
	info := p.Pkg.Info

	if isBuiltinAppend(p, call) {
		if len(call.Args) == 0 {
			return
		}
		first := call.Args[0]
		if freshSlice(info, first) {
			p.Reportf(call.Pos(), "append to a fresh slice allocates on a //demos:hotpath function; reuse a caller-provided or pooled buffer")
			return
		}
		if lhs, ok := assignedTo[call]; ok && types.ExprString(lhs) != types.ExprString(first) {
			p.Reportf(call.Pos(), "append result assigned to %s but extends %s: this copies into a new backing array on a //demos:hotpath function; extend in place (x = append(x, ...))",
				types.ExprString(lhs), types.ExprString(first))
		}
		return
	}

	// Type conversion T(x)?
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && isInterface(tv.Type) && isConcrete(info, call.Args[0]) {
			p.Reportf(call.Pos(), "conversion to interface %s boxes its operand on a //demos:hotpath function", tv.Type.String())
		}
		return
	}

	// Builtin (panic, len, copy, ...)? Nothing further to check.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			p.Reportf(call.Pos(), "fmt.%s on a //demos:hotpath function: fmt boxes every operand and allocates; use strconv/append or hoist to a cold helper (guarded by TestHotPathZeroAlloc)", fn.Name())
			return
		}
	}

	// Concrete argument passed to an interface parameter (implicit boxing).
	sig := signatureOf(info, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if isInterface(pt) && isConcrete(info, arg) {
			p.Reportf(arg.Pos(), "concrete value passed as interface %s boxes on a //demos:hotpath function", pt.String())
		}
	}
}

func signatureOf(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// isConcrete reports whether the expression has a non-interface, non-nil
// type (i.e. using it as an interface requires boxing).
func isConcrete(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return !isInterface(tv.Type)
}

// freshSlice reports an append base that is visibly brand new in the AST:
// []T(nil), []T{}, or []T{...}.
func freshSlice(info *types.Info, e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if tv, ok := info.Types[v.Fun]; ok && tv.IsType() {
			return true // conversion like []byte(nil)
		}
	}
	return false
}

// capturesOuter reports the first variable a func literal captures from
// its enclosing function (package-level state and struct fields do not
// count: only stack variables force a heap-allocated closure).
func capturesOuter(p *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) (string, bool) {
	info := p.Pkg.Info
	pkgScope := p.Pkg.Types.Scope()
	var name string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == pkgScope || v.Parent() == nil {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			if v.Pos() >= fd.Pos() && v.Pos() <= fd.End() {
				name = v.Name()
				return false
			}
		}
		return true
	})
	return name, name != ""
}

// HotpathFuncs returns, per package import path, the names of functions
// annotated //demos:hotpath (methods as Type.Name). The self-test uses it
// to assert that the statically guarded set matches the functions
// exercised by bench_hotpath_test.go.
func HotpathFuncs(mod *Module) map[string][]string {
	out := make(map[string][]string)
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !hasDirective(fd.Doc, "hotpath") {
					continue
				}
				name := fd.Name.Name
				if fd.Recv != nil && len(fd.Recv.List) == 1 {
					name = recvTypeName(fd.Recv.List[0].Type) + "." + name
				}
				out[pkg.ImportPath] = append(out[pkg.ImportPath], name)
			}
		}
	}
	return out
}

func recvTypeName(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(v.X)
	case *ast.Ident:
		return v.Name
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(v.X)
	}
	return "?"
}

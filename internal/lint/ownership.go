package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Ownership is the borrow-checker for pooled message envelopes. It runs a
// flow-sensitive, intraprocedural dataflow pass (ownflow.go) over every
// function of every package that can see the envelope package and reports:
//
//   - use-after-release: reading an envelope, its Body (directly or through
//     a slice alias), or dereferencing a Ref whose envelope was recycled,
//     on any path after a Put — "on some path" findings come from branch
//     and loop joins;
//   - double release: a second Put reachable on any path — the runtime
//     panic in msg.Pool.Put catches only the paths a test happens to
//     drive, this catches them all;
//   - retention: storing a pooled envelope (or a slice of its Body) into a
//     struct field, map, slice, package variable, composite literal, or
//     closure — anything that can outlive the handler — outside a blessed
//     owner site.
//
// The ownership matrix that used to live in prose is declared in the code
// it governs:
//
//	//demos:owner <role> — <why>        blesses a retention site. On a
//	    function's doc comment it blesses the whole function (the function
//	    IS a retainer: ring push, pool free list, ARQ slot); on or above a
//	    statement it blesses that line only.
//	//demos:releases <param>            on a function declaration marks it
//	    as a releaser of the named envelope parameter (e.g. Kernel.putMsg
//	    wraps Pool.Put), so the analysis follows release semantics through
//	    the repo's own helpers.
//
// Storing a msg.Ref is never a retention finding: a Ref is the blessed,
// generation-checked way to hold a message across a possible release.
//
// Known limits (documented, deliberate): the pass is intraprocedural — a
// release through an unannotated helper or an alias copy is invisible;
// functions containing goto are skipped; retention inside a container
// type parameter (ring[T]) is checked where the store happens, not at the
// call site. DESIGN.md §8 has the full rule catalogue.
type Ownership struct {
	// MsgPath is the import path of the envelope package: the package
	// defining Message, Pool (with Put), Ref, and MakeRef.
	MsgPath string
}

func (Ownership) Name() string { return "ownership" }
func (Ownership) Doc() string {
	return "pooled-envelope borrow checker: use-after-Put, double-Put, unblessed retention (//demos:owner)"
}

// ownEnv is the per-package resolution of the envelope vocabulary.
type ownEnv struct {
	msgType  *types.Named // Message
	poolType *types.Named // Pool
	refType  *types.Named // Ref
	makeRef  *types.Func  // MakeRef
	// releases maps module functions annotated //demos:releases <param> to
	// the index of the released parameter.
	releases map[*types.Func]int
}

func (o Ownership) Run(p *Pass) {
	if p.Pkg.Info == nil {
		return
	}
	env := o.resolve(p)
	if env == nil {
		return // this package cannot name an envelope
	}
	blessed := blessedLines(p)
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if hasGoto(fd.Body) {
				continue // unstructured flow: skip rather than guess
			}
			w := &ownWalker{
				p:         p,
				env:       env,
				blessed:   blessed,
				funcBlsd:  hasDirective(fd.Doc, "owner"),
				reported:  make(map[string]bool),
				nonPooled: make(map[types.Object]bool),
			}
			w.stmt(fd.Body, newFlowState())
		}
	}
}

// resolve locates the envelope package's types as seen from p, plus the
// module-wide //demos:releases index. Returns nil when the analyzed
// package neither is nor imports the envelope package.
func (o Ownership) resolve(p *Pass) *ownEnv {
	var msgPkg *types.Package
	if p.Pkg.ImportPath == o.MsgPath {
		msgPkg = p.Pkg.Types
	} else {
		for _, imp := range p.Pkg.Types.Imports() {
			if imp.Path() == o.MsgPath {
				msgPkg = imp
				break
			}
		}
	}
	if msgPkg == nil {
		return nil
	}
	named := func(name string) *types.Named {
		tn, ok := msgPkg.Scope().Lookup(name).(*types.TypeName)
		if !ok {
			return nil
		}
		n, _ := tn.Type().(*types.Named)
		return n
	}
	env := &ownEnv{
		msgType:  named("Message"),
		poolType: named("Pool"),
		refType:  named("Ref"),
		releases: make(map[*types.Func]int),
	}
	if env.msgType == nil {
		return nil
	}
	env.makeRef, _ = msgPkg.Scope().Lookup("MakeRef").(*types.Func)

	// //demos:releases <param> sites across the whole module. Objects are
	// shared between packages (the loader hands dependents the same
	// *types.Package), so a kernel-internal helper resolves here too.
	for _, pkg := range p.Mod.Pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !hasDirective(fd.Doc, "releases") {
					continue
				}
				param := directiveArg(fd.Doc, "releases")
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				if idx := paramIndex(fn, param); idx >= 0 {
					env.releases[fn] = idx
				} else if pkg == p.Pkg {
					// Report in the declaring package only, once.
					p.Reportf(fd.Pos(), "//demos:releases names %q, which is not a parameter of %s", param, fd.Name.Name)
				}
			}
		}
	}
	return env
}

// directiveArg returns the first word after //demos:<name> in a doc group.
func directiveArg(doc *ast.CommentGroup, name string) string {
	if doc == nil {
		return ""
	}
	prefix := "//demos:" + name + " "
	for _, c := range doc.List {
		if rest, ok := strings.CutPrefix(c.Text, prefix); ok {
			rest = strings.TrimSpace(rest)
			if i := strings.IndexAny(rest, " \t"); i >= 0 {
				rest = rest[:i]
			}
			return rest
		}
	}
	return ""
}

func paramIndex(fn *types.Func, name string) int {
	if name == "" {
		return -1
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i).Name() == name {
			return i
		}
	}
	return -1
}

// blessedLines collects the line-level //demos:owner directives of a
// package: each blesses retention findings on its own line and the line
// below (trailing comment or standalone line above, mirroring nolint). A
// roleless directive is itself a finding — the role names the retainer in
// the DESIGN.md §8 blessed-retention table.
func blessedLines(p *Pass) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, f := range p.Pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//demos:owner")
				if !ok {
					continue
				}
				role := strings.TrimSpace(rest)
				if i := strings.IndexAny(role, " \t"); i >= 0 {
					role = role[:i]
				}
				pos := p.Mod.Fset.Position(c.Pos())
				path := relPath(p.Mod.Root, pos.Filename)
				if role == "" || role == "—" {
					p.Reportf(c.Pos(), "//demos:owner needs a role: //demos:owner <role> — <why>")
					continue
				}
				if out[path] == nil {
					out[path] = make(map[int]bool)
				}
				out[path][pos.Line] = true
				out[path][pos.Line+1] = true
			}
		}
	}
	return out
}

// ownWalker carries the per-function analysis context. The flow engine in
// ownflow.go drives it; the methods below are the checks.
type ownWalker struct {
	p        *Pass
	env      *ownEnv
	blessed  map[string]map[int]bool
	funcBlsd bool
	ctxs     []*breakCtx
	// reported dedupes findings: loop fixpoints interpret a body up to
	// three times and must not report the same diagnostic three times.
	reported map[string]bool
	// nonPooled marks locals whose envelope provenance is a local
	// construction (&Message{...} or new(Message)) rather than a pool:
	// retaining or capturing one is ordinary Go, not a lifetime bug. This
	// is a walker-level, program-order approximation, deliberately not
	// part of the branch-joined flow state.
	nonPooled map[types.Object]bool
}

func (w *ownWalker) reportf(pos token.Pos, format string, args ...any) {
	key := w.p.Mod.Fset.Position(pos).String() + format
	if w.reported[key] {
		return
	}
	w.reported[key] = true
	w.p.Reportf(pos, format, args...)
}

func (w *ownWalker) lineBlessed(pos token.Pos) bool {
	if w.funcBlsd {
		return true
	}
	position := w.p.Mod.Fset.Position(pos)
	return w.blessed[relPath(w.p.Mod.Root, position.Filename)][position.Line]
}

// ---- type and expression classification ----

func (w *ownWalker) objOf(id *ast.Ident) types.Object {
	info := w.p.Pkg.Info
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

// isMsgPtr reports whether t is *Message of the envelope package.
func (w *ownWalker) isMsgPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := ptr.Elem().(*types.Named)
	return ok && n.Obj() == w.env.msgType.Obj()
}

func (w *ownWalker) isRefType(t types.Type) bool {
	if w.env.refType == nil {
		return false
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj() == w.env.refType.Obj()
}

// msgVar returns the local variable object when e is an identifier of
// envelope-pointer type (through parens). Fields and package-level
// variables are not flow-trackable and return nil.
func (w *ownWalker) msgVar(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	v, ok := w.objOf(id).(*types.Var)
	if !ok || v.IsField() || v.Parent() == nil || v.Parent() == w.p.Pkg.Types.Scope() {
		return nil
	}
	if !w.isMsgPtr(v.Type()) {
		return nil
	}
	return v
}

// refVar is msgVar for Ref-typed locals.
func (w *ownWalker) refVar(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := w.objOf(id).(*types.Var)
	if !ok || v.IsField() || v.Parent() == nil || v.Parent() == w.p.Pkg.Types.Scope() {
		return nil
	}
	if !w.isRefType(v.Type()) {
		return nil
	}
	return v
}

// bodyOwner returns the envelope variable whose Body the expression
// aliases: m.Body, m.Body[i:j], or a slice variable bound as a body alias.
// st may be nil (pure syntactic check, aliases unavailable).
func (w *ownWalker) bodyOwner(e ast.Expr, st *flowState) types.Object {
	switch n := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if n.Sel.Name == "Body" {
			return w.msgVar(n.X)
		}
	case *ast.SliceExpr:
		return w.bodyOwner(n.X, st)
	case *ast.Ident:
		if st == nil {
			return nil
		}
		if v := w.objOf(n); v != nil {
			if info, ok := st.vars[v]; ok && info.kind == kBody {
				return info.owner
			}
		}
	}
	return nil
}

// releaseTarget reports whether call releases an envelope argument:
// (*Pool).Put from the envelope package, or a module function annotated
// //demos:releases. Returns the released argument expression, or nil.
func (w *ownWalker) releaseTarget(call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	var fn *types.Func
	if ok {
		fn, _ = w.p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	} else if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		fn, _ = w.p.Pkg.Info.Uses[id].(*types.Func)
	}
	if fn == nil {
		return nil
	}
	if fn.Name() == "Put" && w.recvIsPool(fn) && len(call.Args) == 1 {
		return call.Args[0]
	}
	if idx, ok := w.env.releases[fn]; ok && idx < len(call.Args) {
		return call.Args[idx]
	}
	return nil
}

func (w *ownWalker) recvIsPool(fn *types.Func) bool {
	if w.env.poolType == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj() == w.env.poolType.Obj()
}

// validCallRecv returns the Ref variable when call is r.Valid() on the
// envelope package's Ref type.
func (w *ownWalker) validCallRecv(call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Valid" {
		return nil
	}
	fn, _ := w.p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil || !w.isRefType(sig.Recv().Type()) {
		return nil
	}
	return w.refVar(sel.X)
}

func (w *ownWalker) isMakeRef(call *ast.CallExpr) bool {
	if w.env.makeRef == nil {
		return false
	}
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return w.p.Pkg.Info.Uses[f.Sel] == w.env.makeRef
	case *ast.Ident:
		return w.p.Pkg.Info.Uses[f] == w.env.makeRef
	}
	return false
}

// ---- uses ----

// useVar checks one identifier read against the abstract state.
func (w *ownWalker) useVar(id *ast.Ident, st *flowState) {
	obj := w.objOf(id)
	if obj == nil {
		return
	}
	info, ok := st.vars[obj]
	if !ok {
		return
	}
	switch info.kind {
	case kMsg:
		switch info.st {
		case osReleased:
			w.reportf(id.Pos(), "use of pooled envelope %q after release (Put at line %d)", id.Name, info.relLine)
		case osMaybe:
			w.reportf(id.Pos(), "use of pooled envelope %q that is released on some path (Put at line %d)", id.Name, info.relLine)
		}
	case kBody:
		if info.owner == nil {
			return
		}
		if oi, ok := st.vars[info.owner]; ok && oi.kind == kMsg && oi.st != osLive {
			some := ""
			if oi.st == osMaybe {
				some = " on some path"
			}
			w.reportf(id.Pos(), "use of %q, which aliases the body of envelope %q released%s at line %d", id.Name, info.owner.Name(), some, oi.relLine)
		}
	}
}

// useRefDeref checks r.M when the underlying envelope may be recycled.
func (w *ownWalker) useRefDeref(sel *ast.SelectorExpr, st *flowState) bool {
	if sel.Sel.Name != "M" {
		return false
	}
	r := w.refVar(sel.X)
	if r == nil {
		return false
	}
	info, ok := st.vars[r]
	if !ok || info.kind != kRef || info.owner == nil || info.validated {
		return true
	}
	if oi, ok := st.vars[info.owner]; ok && oi.kind == kMsg && oi.st != osLive {
		some := ""
		if oi.st == osMaybe {
			some = " on some path"
		}
		w.reportf(sel.Pos(), "Ref %q dereferenced after its envelope %q was released%s (Put at line %d); guard with Valid()", r.Name(), info.owner.Name(), some, oi.relLine)
	}
	return true
}

// ---- expressions ----

func (w *ownWalker) expr(e ast.Expr, st *flowState) {
	switch n := e.(type) {
	case nil:
	case *ast.Ident:
		w.useVar(n, st)
	case *ast.SelectorExpr:
		if w.useRefDeref(n, st) {
			return
		}
		w.expr(n.X, st)
	case *ast.CallExpr:
		w.call(n, st)
	case *ast.FuncLit:
		w.funcLit(n, st)
	case *ast.CompositeLit:
		// Building a Ref literal is the blessed retention mechanism itself
		// (MakeRef does exactly this), never a finding.
		isRef := w.isRefType(w.p.Pkg.Info.TypeOf(n))
		for _, elt := range n.Elts {
			val := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				val = kv.Value
			}
			if !isRef {
				w.checkStore(val, "a composite literal", st)
			}
			w.expr(val, st)
		}
	case *ast.ParenExpr:
		w.expr(n.X, st)
	case *ast.UnaryExpr:
		w.expr(n.X, st)
	case *ast.BinaryExpr:
		w.expr(n.X, st)
		w.expr(n.Y, st)
	case *ast.StarExpr:
		w.expr(n.X, st)
	case *ast.IndexExpr:
		w.expr(n.X, st)
		w.expr(n.Index, st)
	case *ast.IndexListExpr:
		w.expr(n.X, st)
	case *ast.SliceExpr:
		w.expr(n.X, st)
		w.expr(n.Low, st)
		w.expr(n.High, st)
		w.expr(n.Max, st)
	case *ast.TypeAssertExpr:
		w.expr(n.X, st)
	case *ast.KeyValueExpr:
		w.expr(n.Value, st)
	}
}

func (w *ownWalker) call(call *ast.CallExpr, st *flowState) {
	// r.Valid() is the guard, never a finding — even on a stale ref.
	if w.validCallRecv(call) != nil {
		return
	}

	if rel := w.releaseTarget(call); rel != nil {
		w.expr(call.Fun, st)
		for _, a := range call.Args {
			if a != rel {
				w.expr(a, st)
			}
		}
		w.release(rel, st)
		return
	}

	w.expr(call.Fun, st)
	for _, a := range call.Args {
		w.expr(a, st)
	}
}

// release applies Put semantics to the released expression.
func (w *ownWalker) release(arg ast.Expr, st *flowState) {
	v := w.msgVar(arg)
	if v == nil {
		// Releasing a non-trackable expression (q.pop(), a field):
		// nothing to flow, but still use-check its parts.
		w.expr(arg, st)
		return
	}
	line := w.p.Mod.Fset.Position(arg.Pos()).Line
	info, ok := st.vars[v]
	if ok && info.kind == kMsg {
		switch info.st {
		case osReleased:
			w.reportf(arg.Pos(), "double release of pooled envelope %q (first Put at line %d)", v.Name(), info.relLine)
		case osMaybe:
			w.reportf(arg.Pos(), "release of pooled envelope %q that is already released on some path (first Put at line %d)", v.Name(), info.relLine)
		}
	}
	st.vars[v] = ownInfo{kind: kMsg, st: osReleased, relLine: line}
	// Outstanding Valid() guards on refs to this envelope no longer hold.
	for k, i := range st.vars {
		if i.kind == kRef && i.owner == v && i.validated {
			i.validated = false
			st.vars[k] = i
		}
	}
}

// funcLit flags closures that capture an envelope or body alias from the
// enclosing function: the closure may run after the handler returned and
// the envelope was recycled.
func (w *ownWalker) funcLit(lit *ast.FuncLit, st *flowState) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := w.objOf(id).(*types.Var)
		if !ok || v.IsField() || v.Parent() == nil || v.Parent() == w.p.Pkg.Types.Scope() {
			return true
		}
		// Captured = declared outside the literal.
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true
		}
		captured := ""
		if w.isMsgPtr(v.Type()) && !w.nonPooled[v] {
			captured = "pooled envelope"
		} else if info, ok := st.vars[v]; ok && info.kind == kBody {
			captured = "envelope body alias"
		}
		if captured != "" && !w.lineBlessed(id.Pos()) {
			w.reportf(id.Pos(), "closure captures %s %q, retaining it past handler return; bless the site with //demos:owner <role> or hold a generation-checked Ref", captured, v.Name())
		}
		return true
	})
}

// checkStoreRHS unwraps an append before the retention check, so
// `x.held = append(x.held, m)` reports m (the element actually retained),
// not the opaque call result.
func (w *ownWalker) checkStoreRHS(rhs ast.Expr, ctx string, st *flowState) {
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltinAppend(w.p, call) && !call.Ellipsis.IsValid() && len(call.Args) > 1 {
		for _, a := range call.Args[1:] {
			w.checkStore(a, ctx, st)
		}
		return
	}
	w.checkStore(rhs, ctx, st)
}

// checkStore reports a retention finding when val is a pooled envelope or
// body alias being stored into ctx (a field, element, or literal).
func (w *ownWalker) checkStore(val ast.Expr, ctx string, st *flowState) {
	if w.lineBlessed(val.Pos()) {
		return
	}
	if v := w.msgVar(val); v != nil && !w.nonPooled[v] {
		w.reportf(val.Pos(), "pooled envelope %q stored in %s, retaining it past handler return; bless with //demos:owner <role> or hold a generation-checked Ref", v.Name(), ctx)
		return
	}
	if owner := w.bodyOwner(val, st); owner != nil {
		w.reportf(val.Pos(), "body of envelope %q stored in %s; the backing array is recycled with the envelope — copy it or bless with //demos:owner <role>", owner.Name(), ctx)
	}
}

// ---- statements with binding effects ----

func (w *ownWalker) declStmt(n *ast.DeclStmt, st *flowState) {
	gd, ok := n.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, v := range vs.Values {
			w.expr(v, st)
		}
		if len(vs.Values) == len(vs.Names) {
			for i, name := range vs.Names {
				w.bind(name, vs.Values[i], st)
			}
		} else {
			for _, name := range vs.Names {
				if obj := w.objOf(name); obj != nil {
					w.rebind(obj, st)
				}
			}
		}
	}
}

func (w *ownWalker) assign(n *ast.AssignStmt, st *flowState) {
	// Evaluate all RHS for uses first (Go evaluates RHS before assigning).
	for _, r := range n.Rhs {
		w.expr(r, st)
	}
	if len(n.Lhs) == len(n.Rhs) {
		for i := range n.Lhs {
			w.assignPair(n.Lhs[i], n.Rhs[i], st)
		}
		return
	}
	// Multi-value RHS (call, map read, type assertion): no envelope flows
	// we can model; rebind any tracked LHS vars and use-check LHS bases.
	for _, l := range n.Lhs {
		w.lhsEffects(l, nil, st)
	}
}

func (w *ownWalker) assignPair(lhs, rhs ast.Expr, st *flowState) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		w.bind(l, rhs, st)
	default:
		w.lhsEffects(lhs, rhs, st)
	}
}

// bind gives an identifier LHS its new abstract value.
func (w *ownWalker) bind(id *ast.Ident, rhs ast.Expr, st *flowState) {
	if id.Name == "_" {
		return
	}
	obj := w.objOf(id)
	if obj == nil {
		return
	}
	// Storing into a package-level variable escapes the handler.
	if v, ok := obj.(*types.Var); ok && v.Parent() == w.p.Pkg.Types.Scope() {
		w.checkStoreRHS(rhs, "package variable "+id.Name, st)
		return
	}
	// Envelope pointer: copy the source variable's state, or fresh-live.
	if w.isMsgPtr(obj.Type()) {
		if w.locallyBuilt(rhs) {
			w.nonPooled[obj] = true
			w.rebind(obj, st)
			return
		}
		if src := w.msgVar(rhs); src != nil {
			if w.nonPooled[src] {
				w.nonPooled[obj] = true
			} else {
				delete(w.nonPooled, obj)
			}
			if info, ok := st.vars[src]; ok {
				st.vars[obj] = info
				return
			}
		} else {
			delete(w.nonPooled, obj)
		}
		w.rebind(obj, st)
		return
	}
	// Ref binding: r := msg.MakeRef(m).
	if w.isRefType(obj.Type()) {
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && w.isMakeRef(call) && len(call.Args) == 1 {
			if owner := w.msgVar(call.Args[0]); owner != nil {
				st.vars[obj] = ownInfo{kind: kRef, owner: owner}
				return
			}
		}
		if src := w.refVar(rhs); src != nil {
			if info, ok := st.vars[src]; ok {
				st.vars[obj] = info
				return
			}
		}
		w.rebind(obj, st)
		return
	}
	// Body alias binding: b := m.Body[:0].
	if owner := w.bodyOwner(rhs, st); owner != nil {
		st.vars[obj] = ownInfo{kind: kBody, owner: owner}
		return
	}
	w.rebind(obj, st)
}

// locallyBuilt reports whether rhs constructs a fresh envelope outside
// any pool: &Message{...} or new(Message). Only Pool.Get (and annotated
// wrappers) hand out recycled envelopes, so these never dangle.
func (w *ownWalker) locallyBuilt(rhs ast.Expr) bool {
	switch n := ast.Unparen(rhs).(type) {
	case *ast.UnaryExpr:
		if n.Op != token.AND {
			return false
		}
		cl, ok := ast.Unparen(n.X).(*ast.CompositeLit)
		if !ok {
			return false
		}
		named, ok := w.p.Pkg.Info.TypeOf(cl).(*types.Named)
		return ok && named.Obj() == w.env.msgType.Obj()
	case *ast.CallExpr:
		id, ok := ast.Unparen(n.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		_, isBuiltin := w.objOf(id).(*types.Builtin)
		return isBuiltin && id.Name == "new" && w.isMsgPtr(w.p.Pkg.Info.TypeOf(n))
	}
	return false
}

// rebind resets a variable to untracked (implicitly live) and orphans any
// aliases bound to its previous value, so a rebound envelope variable
// cannot produce findings about the message it no longer names.
func (w *ownWalker) rebind(obj types.Object, st *flowState) {
	delete(st.vars, obj)
	for k, i := range st.vars {
		if (i.kind == kRef || i.kind == kBody) && i.owner == obj {
			i.owner = nil
			st.vars[k] = i
		}
	}
}

// lhsEffects handles a non-identifier LHS: use-check the base (writing
// m.Body after Put is a use of m) and run the retention check on the value
// being stored. Storing an envelope's own body back into itself
// (m.Body = b where b aliases m) is the reuse idiom, not retention.
func (w *ownWalker) lhsEffects(lhs, rhs ast.Expr, st *flowState) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj := w.objOf(l); obj != nil {
			w.rebind(obj, st)
		}
		return
	case *ast.SelectorExpr:
		w.expr(l.X, st)
		if rhs != nil {
			if base := w.msgVar(l.X); base != nil {
				if w.bodyOwner(rhs, st) == base {
					return // m.Body = m.Body[...]: in-place reuse
				}
			}
			w.checkStoreRHS(rhs, types.ExprString(lhs), st)
		}
	case *ast.IndexExpr:
		w.expr(l.X, st)
		w.expr(l.Index, st)
		if rhs != nil {
			w.checkStoreRHS(rhs, types.ExprString(lhs), st)
		}
	case *ast.StarExpr:
		w.expr(l.X, st)
		if rhs != nil {
			w.checkStoreRHS(rhs, types.ExprString(lhs), st)
		}
	}
}

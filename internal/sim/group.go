// Conservative-lookahead coordinator for a group of shard-local engines
// (classic Chandy–Misra/bulk-synchronous rounds).
//
// Machines interact only through network frames whose transit time is at
// least the minimum pair latency W (>= 1 simulated microsecond). That gives
// every shard a safe horizon: if the earliest pending event anywhere in the
// group is at nextT, no frame sent during [nextT, nextT+W-1] can arrive at
// or before nextT+W-1 (a frame sent at s >= nextT arrives at >= s+W >=
// nextT+W). So every engine may run freely up to the round deadline
//
//	deadline = nextT + W - 1
//
// without ever needing input from another shard inside the round. Frames
// that cross shards during the round land in per-shard mailboxes; the
// barrier between rounds drains them into the receiving shard's pending
// heap (as gate events strictly beyond the old deadline) before the next
// round's horizon is computed. Same seed + same workload therefore yields
// bit-identical per-machine event orders for ANY shard count, including the
// parallel execution mode: engines never share state inside a round, and
// mailbox contents are re-ordered canonically by the receiver's pending
// heap, so goroutine interleaving cannot leak into simulation order.
package sim

import "sync"

// Group coordinates N engines under conservative lookahead. The zero value
// is not usable; fill in every field.
type Group struct {
	// Engines are the shard-local engines, indexed by shard id.
	Engines []*Engine

	// Lookahead is W, the minimum cross-machine frame latency in simulated
	// microseconds. Must be >= 1 (validated by the cluster constructor).
	Lookahead Time

	// Drain moves frames parked in shard i's inbound mailbox into its
	// engine (as gate events). Called for every shard at every barrier,
	// always from the coordinating goroutine — it needs no locking against
	// engine execution, only against cross-shard producers.
	Drain func(shard int)

	// Parallel runs each round's engines on their own goroutines. Purely a
	// wall-clock choice: results are identical either way.
	Parallel bool

	// Rounds counts completed synchronization rounds (observability).
	Rounds uint64
}

// drainAll runs the mailbox drain for every shard.
func (g *Group) drainAll() {
	if g.Drain == nil {
		return
	}
	for i := range g.Engines {
		g.Drain(i)
	}
}

// nextAt returns the earliest pending event time across all engines.
func (g *Group) nextAt() (Time, bool) {
	var min Time
	found := false
	for _, e := range g.Engines {
		if at, ok := e.NextAt(); ok && (!found || at < min) {
			min, found = at, ok
		}
	}
	return min, found
}

// strongPending reports whether any engine still holds a non-weak event.
func (g *Group) strongPending() bool {
	for _, e := range g.Engines {
		if e.StrongPending() > 0 {
			return true
		}
	}
	return false
}

// round runs every engine up to deadline, concurrently when Parallel is
// set. Engines share no mutable state during a round (cross-shard frames
// go through locked mailboxes owned by the cluster), so the only
// synchronization needed is the join.
func (g *Group) round(deadline Time) {
	if g.Parallel && len(g.Engines) > 1 {
		var wg sync.WaitGroup
		for _, e := range g.Engines {
			wg.Add(1)
			go func(e *Engine) {
				defer wg.Done()
				e.RunUntil(deadline)
			}(e)
		}
		wg.Wait()
	} else {
		for _, e := range g.Engines {
			e.RunUntil(deadline)
		}
	}
	g.Rounds++
}

// RunUntilIdle runs rounds until, after a full mailbox drain, no engine
// holds a strong event — the multi-engine analogue of Engine.Run. It
// returns the final global clock (the maximum engine time reached).
func (g *Group) RunUntilIdle() Time {
	for {
		g.drainAll()
		if !g.strongPending() {
			break
		}
		nextT, ok := g.nextAt()
		if !ok {
			break
		}
		g.round(nextT + g.Lookahead - 1)
	}
	var max Time
	for _, e := range g.Engines {
		if e.Now() > max {
			max = e.Now()
		}
	}
	return max
}

// RunUntil fires all events with timestamps <= deadline (weak ones
// included, matching Engine.RunUntil) and then pins every engine's clock to
// the deadline, so a subsequent RunFor on the cluster measures from a
// common epoch.
func (g *Group) RunUntil(deadline Time) {
	for {
		g.drainAll()
		nextT, ok := g.nextAt()
		if !ok || nextT > deadline {
			break
		}
		end := nextT + g.Lookahead - 1
		if end > deadline {
			end = deadline
		}
		g.round(end)
	}
	// Final pass: nothing fireable remains at <= deadline, so this only
	// advances idle engines' clocks to the deadline (an engine with work
	// pending beyond the deadline keeps its own now, exactly like
	// Engine.RunUntil on a single shard).
	for _, e := range g.Engines {
		e.RunUntil(deadline)
	}
}

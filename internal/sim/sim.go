// Package sim provides the deterministic discrete-event engine that drives
// the simulated DEMOS/MP cluster.
//
// All kernels, the network, and every workload share a single Engine. Time
// is a simulated microsecond counter; events fire in (time, sequence) order,
// so two runs with the same seed produce byte-identical traces. This is what
// lets the test suite assert exact protocol costs (e.g. the paper's "9
// administrative messages" per migration).
//
// The engine is allocation-free on the steady-state path: event state lives
// in an index-stable arena whose slots are recycled through a free list, and
// the priority queue is a hand-rolled 4-ary min-heap of (time, seq) keys —
// no container/heap interface boxing, no per-schedule *Event allocation.
// See DESIGN.md §7 ("Performance") and bench_hotpath_test.go for the
// zero-alloc guards.
package sim

import (
	"math/rand"
	"strconv"
)

// Time is simulated time in microseconds since boot.
type Time uint64

// String formats a Time as seconds with microsecond precision. It formats
// into a stack buffer (no fmt machinery), so trace-heavy runs pay only the
// final string allocation.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: BenchmarkTimeString in bench_hotpath_test.go.
func (t Time) String() string {
	var buf [27]byte
	b := strconv.AppendUint(buf[:0], uint64(t)/1e6, 10)
	us := uint64(t) % 1e6
	b = append(b, '.',
		byte('0'+us/100000%10), byte('0'+us/10000%10), byte('0'+us/1000%10),
		byte('0'+us/100%10), byte('0'+us/10%10), byte('0'+us%10), 's')
	return string(b)
}

// Event is a handle to a scheduled callback, returned by At/After/AfterWeak
// and accepted by Cancel. It is a value (arena index + generation), so
// scheduling allocates nothing; the zero Event is a valid "no event" and is
// safe to Cancel. A handle held after its event fired or was cancelled goes
// stale (the generation moves on) and is ignored by Cancel.
type Event struct {
	idx uint32
	gen uint32
}

// slot is the arena-resident state of one scheduled event.
type slot struct {
	fn   func()
	name string
	at   Time
	seq  uint64
	gen  uint32
	weak bool // weak events do not keep Run alive
}

// heapEnt is one 4-ary heap entry. The (at, seq) key is kept inline so
// sift operations stay in one cache line instead of chasing arena indices.
type heapEnt struct {
	at  Time
	seq uint64
	idx uint32
}

// Engine is a deterministic discrete-event scheduler.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now    Time
	arena  []slot    // index-stable event storage
	free   []uint32  // recycled arena slots
	heap   []heapEnt // 4-ary min-heap ordered by (at, seq)
	seq    uint64
	live   int // scheduled, uncancelled events (strong + weak)
	rng    *rand.Rand
	fired  uint64
	halted bool
	strong int // pending non-weak events

	// OnFire, when non-nil, observes every event just before it runs.
	// The determinism tests use it to assert exact firing order.
	OnFire func(name string, at Time)

	// OnAdvance, when non-nil, observes simulated time moving forward: it
	// runs once per distinct timestamp, just before the first event at the
	// new time fires. The hook must not schedule events — it is a span
	// boundary for observers (obs timeline sampling), and keeping it
	// read-only is what guarantees installing one cannot perturb the
	// golden firing order.
	OnAdvance func(from, to Time)
}

// NewEngine returns an engine at time zero with a PRNG seeded by seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's seeded PRNG. All simulation randomness must come
// from here to preserve determinism.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled, uncancelled events. O(1): a live
// counter maintained by schedule/Cancel/Step, not a queue scan.
func (e *Engine) Pending() int { return e.live }

// StrongPending returns the number of pending non-weak events. The sharded
// group runner's termination vote stops the cluster when every engine's
// strong count reaches zero after a mailbox drain (weak housekeeping never
// keeps a shard group alive, mirroring Run's own stop rule).
func (e *Engine) StrongPending() int { return e.strong }

// NextAt reports the timestamp of the next runnable event, recycling any
// cancelled entries it finds at the head of the queue. ok is false when no
// events remain.
func (e *Engine) NextAt() (at Time, ok bool) {
	for len(e.heap) > 0 {
		if idx := e.heap[0].idx; e.arena[idx].fn == nil {
			e.freeSlot(e.heapPop())
			continue
		}
		return e.heap[0].at, true
	}
	return 0, false
}

// Event classes: at equal timestamps, fault events sort before gate events,
// which sort before normal events; within each class, scheduling order is
// preserved. The class bits are OR-ed into the heap key only — e.seq itself
// stays a dense counter, and a run that schedules nothing but normal events
// orders exactly as it did before the bits existed.
//
//   - fault (AtFault/AfterWeakFault): fault-plane mutations (partitions,
//     loss bursts, injected duplicates/delays). Running them first gives the
//     sharded runtime one invariant rule — "fault state armed at time t
//     applies to every send and every arrival at time t" — that holds for
//     any shard count, because the ordering is fixed by class rather than by
//     per-engine scheduling order.
//   - gate (AtGate): canonical frame-delivery pumps. A message arriving "at
//     time t" is visible before any of the receiver's own work at t runs,
//     matching what a single shared engine would have done.
//   - normal (At/After/AfterWeak): everything else.
const (
	gateSeqBit   = 1 << 62
	normalSeqBit = 1 << 63
)

// classNormal/classGate/classFault select an event's same-timestamp
// priority tier in schedule.
const (
	classNormal = iota
	classGate
	classFault
)

// At schedules fn at absolute time t. Scheduling in the past fires at the
// current time (events never run retroactively).
func (e *Engine) At(t Time, name string, fn func()) Event {
	return e.schedule(t, name, fn, false, classNormal)
}

// AtGate schedules fn at absolute time t, ordered before every normal event
// sharing that timestamp (gates among themselves keep scheduling order).
// The sharded runtime uses gates to pump cross-engine frame deliveries so a
// message arriving "at time t" is visible before any of the receiver's own
// work at t runs — matching what a single shared engine would have done.
func (e *Engine) AtGate(t Time, name string, fn func()) Event {
	return e.schedule(t, name, fn, false, classGate)
}

// AtFault schedules fn at absolute time t, ordered before every gate and
// every normal event sharing that timestamp. The chaos plane uses fault
// events for its shard-replicated fault pulses, so fault-state mutations at
// time t are visible to all of t's sends and deliveries on every shard.
func (e *Engine) AtFault(t Time, name string, fn func()) Event {
	return e.schedule(t, name, fn, false, classFault)
}

// After schedules fn d microseconds from now.
func (e *Engine) After(d Time, name string, fn func()) Event {
	return e.At(e.now+d, name, fn)
}

// AfterWeak schedules a weak event: it fires like any other while the
// simulation is alive, but does not by itself keep Run going. Periodic
// housekeeping (load reports) uses weak events so "run until idle" still
// terminates.
func (e *Engine) AfterWeak(d Time, name string, fn func()) Event {
	return e.schedule(e.now+d, name, fn, true, classNormal)
}

// AfterWeakFault schedules a weak fault-class event d microseconds from
// now: it runs before gates and normal events at its timestamp but never
// keeps Run alive — the shape of a chaos pulse.
func (e *Engine) AfterWeakFault(d Time, name string, fn func()) Event {
	return e.schedule(e.now+d, name, fn, true, classFault)
}

//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestHotPathZeroAlloc/engine-schedule in bench_hotpath_test.go.
func (e *Engine) schedule(t Time, name string, fn func(), weak bool, class int) Event {
	if fn == nil {
		panic("sim: nil event function")
	}
	if t < e.now {
		t = e.now
	}
	var idx uint32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.arena = append(e.arena, slot{gen: 1})
		idx = uint32(len(e.arena) - 1)
	}
	key := e.seq | normalSeqBit
	switch class {
	case classGate:
		key = e.seq | gateSeqBit
	case classFault:
		key = e.seq
	}
	s := &e.arena[idx]
	s.fn, s.name, s.at, s.seq, s.weak = fn, name, t, key, weak
	e.heapPush(heapEnt{at: t, seq: key, idx: idx})
	e.seq++
	e.live++
	if !weak {
		e.strong++
	}
	return Event{idx: idx, gen: s.gen}
}

// Cancel prevents a scheduled event from firing. Safe to call twice, on the
// zero Event, or on a handle whose event already fired.
func (e *Engine) Cancel(ev Event) {
	if int(ev.idx) >= len(e.arena) {
		return
	}
	s := &e.arena[ev.idx]
	if s.gen != ev.gen || s.fn == nil {
		return
	}
	s.fn = nil // slot stays in the heap; skipped and recycled when popped
	e.live--
	if !s.weak {
		e.strong--
	}
}

// freeSlot recycles an arena slot popped off the heap. Bumping the
// generation invalidates any handles still pointing at it.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestHotPathZeroAlloc and BenchmarkEngineDispatchDepth64.
func (e *Engine) freeSlot(idx uint32) {
	s := &e.arena[idx]
	s.fn = nil
	s.name = ""
	s.gen++
	e.free = append(e.free, idx)
}

// heapPush inserts ent, sifting up through 4-ary parents.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestHotPathZeroAlloc and BenchmarkEngineDispatchDepth64.
func (e *Engine) heapPush(ent heapEnt) {
	e.heap = append(e.heap, ent)
	h := e.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if h[p].at < ent.at || (h[p].at == ent.at && h[p].seq < ent.seq) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ent
}

// heapPop removes and returns the minimum (time, seq) entry's arena index.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestHotPathZeroAlloc and BenchmarkEngineDispatchDepth64.
func (e *Engine) heapPop() uint32 {
	h := e.heap
	root := h[0]
	n := len(h) - 1
	last := h[n]
	e.heap = h[:n]
	h = e.heap
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if h[j].at < h[m].at || (h[j].at == h[m].at && h[j].seq < h[m].seq) {
				m = j
			}
		}
		if last.at < h[m].at || (last.at == h[m].at && last.seq < h[m].seq) {
			break
		}
		h[i] = h[m]
		i = m
	}
	if n > 0 {
		h[i] = last
	}
	return root.idx
}

// Step fires the single next event. It reports false when the queue is empty.
//
//demos:hotpath — the dispatch half of the engine cycle; checked by demoslint (hotpathalloc) and TestHotPathZeroAlloc in bench_hotpath_test.go.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		idx := e.heapPop()
		s := &e.arena[idx]
		if s.fn == nil { // cancelled while queued
			e.freeSlot(idx)
			continue
		}
		if s.at > e.now && e.OnAdvance != nil {
			e.OnAdvance(e.now, s.at)
		}
		e.now = s.at
		fn, name, at := s.fn, s.name, s.at
		if !s.weak {
			e.strong--
		}
		e.live--
		e.freeSlot(idx) // recycle before fn: fn may schedule into this slot
		e.fired++
		if e.OnFire != nil {
			e.OnFire(name, at)
		}
		fn()
		return true
	}
	return false
}

// Run fires events until only weak events (periodic housekeeping) remain.
// It returns the number of events fired by this call.
func (e *Engine) Run() uint64 {
	start := e.fired
	e.halted = false
	for !e.halted && e.strong > 0 && e.Step() {
	}
	return e.fired - start
}

// RunUntil fires events with timestamps <= deadline. The clock is left at
// min(deadline, time of last event) — it does not jump past pending events.
func (e *Engine) RunUntil(deadline Time) uint64 {
	start := e.fired
	e.halted = false
	for !e.halted {
		at, runnable := e.NextAt()
		if !runnable || at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline && len(e.heap) == 0 {
		e.now = deadline
	}
	return e.fired - start
}

// RunFor advances the simulation by d microseconds of simulated time.
func (e *Engine) RunFor(d Time) uint64 { return e.RunUntil(e.now + d) }

// Halt stops Run/RunUntil after the current event returns.
func (e *Engine) Halt() { e.halted = true }

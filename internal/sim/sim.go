// Package sim provides the deterministic discrete-event engine that drives
// the simulated DEMOS/MP cluster.
//
// All kernels, the network, and every workload share a single Engine. Time
// is a simulated microsecond counter; events fire in (time, sequence) order,
// so two runs with the same seed produce byte-identical traces. This is what
// lets the test suite assert exact protocol costs (e.g. the paper's "9
// administrative messages" per migration).
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is simulated time in microseconds since boot.
type Time uint64

// String formats a Time as seconds with microsecond precision.
func (t Time) String() string {
	return fmt.Sprintf("%d.%06ds", uint64(t)/1e6, uint64(t)%1e6)
}

// Event is a scheduled callback.
type Event struct {
	At   Time
	Name string // for traces and debugging
	Fn   func()

	weak  bool   // weak events do not keep Run alive
	seq   uint64 // tie-breaker: FIFO among equal timestamps
	index int    // heap index; -1 once popped or cancelled
}

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.Fn == nil }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event scheduler.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now    Time
	queue  eventHeap
	seq    uint64
	rng    *rand.Rand
	fired  uint64
	halted bool
	strong int // pending non-weak events
}

// NewEngine returns an engine at time zero with a PRNG seeded by seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's seeded PRNG. All simulation randomness must come
// from here to preserve determinism.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled, uncancelled events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.Cancelled() {
			n++
		}
	}
	return n
}

// At schedules fn at absolute time t. Scheduling in the past fires at the
// current time (events never run retroactively).
func (e *Engine) At(t Time, name string, fn func()) *Event {
	return e.schedule(t, name, fn, false)
}

// After schedules fn d microseconds from now.
func (e *Engine) After(d Time, name string, fn func()) *Event {
	return e.At(e.now+d, name, fn)
}

// AfterWeak schedules a weak event: it fires like any other while the
// simulation is alive, but does not by itself keep Run going. Periodic
// housekeeping (load reports) uses weak events so "run until idle" still
// terminates.
func (e *Engine) AfterWeak(d Time, name string, fn func()) *Event {
	return e.schedule(e.now+d, name, fn, true)
}

func (e *Engine) schedule(t Time, name string, fn func(), weak bool) *Event {
	if fn == nil {
		panic("sim: nil event function")
	}
	if t < e.now {
		t = e.now
	}
	ev := &Event{At: t, Name: name, Fn: fn, weak: weak, seq: e.seq}
	e.seq++
	if !weak {
		e.strong++
	}
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel prevents a scheduled event from firing. Safe to call twice or on
// an already-fired event.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.Fn == nil {
		return
	}
	ev.Fn = nil // leave in heap; skipped when popped
	if !ev.weak {
		e.strong--
	}
}

// Step fires the single next event. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.Cancelled() {
			continue
		}
		e.now = ev.At
		fn := ev.Fn
		ev.Fn = nil
		if !ev.weak {
			e.strong--
		}
		e.fired++
		fn()
		return true
	}
	return false
}

// Run fires events until only weak events (periodic housekeeping) remain.
// It returns the number of events fired by this call.
func (e *Engine) Run() uint64 {
	start := e.fired
	e.halted = false
	for !e.halted && e.strong > 0 && e.Step() {
	}
	return e.fired - start
}

// RunUntil fires events with timestamps <= deadline. The clock is left at
// min(deadline, time of last event) — it does not jump past pending events.
func (e *Engine) RunUntil(deadline Time) uint64 {
	start := e.fired
	e.halted = false
	for !e.halted {
		// Peek next runnable event.
		var next *Event
		for len(e.queue) > 0 {
			if e.queue[0].Cancelled() {
				heap.Pop(&e.queue)
				continue
			}
			next = e.queue[0]
			break
		}
		if next == nil || next.At > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline && len(e.queue) == 0 {
		e.now = deadline
	}
	return e.fired - start
}

// RunFor advances the simulation by d microseconds of simulated time.
func (e *Engine) RunFor(d Time) uint64 { return e.RunUntil(e.now + d) }

// Halt stops Run/RunUntil after the current event returns.
func (e *Engine) Halt() { e.halted = true }

package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(30, "c", func() { got = append(got, 3) })
	e.At(10, "a", func() { got = append(got, 1) })
	e.At(20, "b", func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, "tie", func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-broken order wrong at %d: got %d", i, v)
		}
	}
}

func TestAfterAndNow(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.After(100, "x", func() {
		at = e.Now()
		e.After(50, "y", func() { at = e.Now() })
	})
	e.Run()
	if at != 150 {
		t.Fatalf("nested After fired at %v, want 150", at)
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(10, "x", func() { fired = true })
	e.Cancel(ev)
	e.Cancel(ev) // double-cancel is safe
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Fired() != 0 {
		t.Fatalf("fired count = %d, want 0", e.Fired())
	}
}

func TestScheduleInPastClampsToNow(t *testing.T) {
	e := NewEngine(1)
	var at Time = 999
	e.At(100, "x", func() {
		e.At(1, "past", func() { at = e.Now() })
	})
	e.Run()
	if at != 100 {
		t.Fatalf("past event fired at %v, want clamp to 100", at)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	for _, tm := range []Time{10, 20, 30, 40} {
		tm := tm
		e.At(tm, "x", func() { got = append(got, tm) })
	}
	n := e.RunUntil(25)
	if n != 2 || len(got) != 2 {
		t.Fatalf("RunUntil(25) fired %d events (%v), want 2", n, got)
	}
	if e.Now() != 20 {
		t.Fatalf("clock = %v after RunUntil, want 20 (last event)", e.Now())
	}
	e.Run()
	if len(got) != 4 {
		t.Fatalf("remaining events not fired: %v", got)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine(1)
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Fatalf("idle clock = %v, want 500", e.Now())
	}
}

func TestHalt(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 0; i < 10; i++ {
		e.At(Time(i), "x", func() {
			count++
			if count == 3 {
				e.Halt()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("Halt did not stop Run: %d events fired", count)
	}
	// Run again resumes.
	e.Run()
	if count != 10 {
		t.Fatalf("resume after Halt fired %d total, want 10", count)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine(42)
		var log []Time
		var rec func(depth int)
		rec = func(depth int) {
			log = append(log, e.Now())
			if depth < 3 {
				d := Time(e.Rand().Intn(100))
				e.After(d, "r", func() { rec(depth + 1) })
				e.After(d+1, "r2", func() { rec(depth + 1) })
			}
		}
		e.At(0, "root", func() { rec(0) })
		e.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: any set of scheduled times fires in sorted order.
func TestFiringOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine(7)
		var fired []Time
		for _, tm := range times {
			tm := Time(tm)
			e.At(tm, "p", func() { fired = append(fired, tm) })
		}
		e.Run()
		if len(fired) != len(times) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestPendingCount(t *testing.T) {
	e := NewEngine(1)
	a := e.At(1, "a", func() {})
	e.At(2, "b", func() {})
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	e.Cancel(a)
	if e.Pending() != 1 {
		t.Fatalf("pending after cancel = %d, want 1", e.Pending())
	}
}

func TestTimeString(t *testing.T) {
	for _, tc := range []struct {
		t    Time
		want string
	}{
		{1500000, "1.500000s"},
		{0, "0.000000s"},
		{1, "0.000001s"},
		{999999, "0.999999s"},
		{12345678901, "12345.678901s"},
	} {
		if s := tc.t.String(); s != tc.want {
			t.Fatalf("Time(%d).String = %q, want %q", uint64(tc.t), s, tc.want)
		}
	}
}

// A handle held past its event's firing must go stale: cancelling it cannot
// touch whatever event has since recycled the arena slot.
func TestStaleHandleCancelIsSafe(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	h := e.At(1, "a", func() { fired++ })
	e.Run()
	// "a" fired; its arena slot is free and will be reused by "b".
	e.At(2, "b", func() { fired++ })
	e.Cancel(h) // stale handle: must be a no-op
	e.Run()
	if fired != 2 {
		t.Fatalf("stale Cancel hit a recycled slot: fired %d events, want 2", fired)
	}
}

// The zero Event is "no event" and must be safe to Cancel, including on a
// fresh engine with an empty arena.
func TestCancelZeroEvent(t *testing.T) {
	e := NewEngine(1)
	e.Cancel(Event{})
	ok := false
	e.At(1, "x", func() { ok = true })
	e.Cancel(Event{})
	e.Run()
	if !ok {
		t.Fatal("zero-Event Cancel affected a real event")
	}
}

// Pending must stay exact through heavy schedule/cancel/fire churn (it is a
// live counter now, not a queue scan).
func TestPendingThroughChurn(t *testing.T) {
	e := NewEngine(3)
	var evs []Event
	for i := 0; i < 1000; i++ {
		evs = append(evs, e.At(Time(i%50), "churn", func() {}))
	}
	for i := 0; i < 1000; i += 3 {
		e.Cancel(evs[i])
	}
	e.Cancel(evs[0]) // double-cancel must not double-decrement
	want := 1000 - 334
	if got := e.Pending(); got != want {
		t.Fatalf("Pending = %d, want %d", got, want)
	}
	for e.Step() {
	}
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending after drain = %d, want 0", got)
	}
}

// Arena slots must be recycled: sustained schedule/fire churn cannot grow
// the arena beyond the peak number of simultaneously pending events.
func TestArenaSlotReuse(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 100000; i++ {
		e.At(e.Now()+1, "spin", func() {})
		e.Step()
	}
	if n := len(e.arena); n > 4 {
		t.Fatalf("arena grew to %d slots under 1-deep churn, want ≤ 4", n)
	}
}

func TestWeakEventsDoNotKeepRunAlive(t *testing.T) {
	e := NewEngine(1)
	weakFired := 0
	var arm func()
	arm = func() {
		e.AfterWeak(10, "tick", func() { weakFired++; arm() })
	}
	arm()
	e.At(35, "strong", func() {})
	e.Run()
	// Weak ticks at 10, 20, 30 fire while the strong event keeps the
	// run alive; the tick at 40+ must not.
	if weakFired != 3 {
		t.Fatalf("weak fired %d times, want 3", weakFired)
	}
	if e.Now() != 35 {
		t.Fatalf("clock %v, want 35", e.Now())
	}
	// RunUntil still fires weak events on its own.
	e.RunUntil(65)
	if weakFired != 6 {
		t.Fatalf("RunUntil fired weak %d total, want 6", weakFired)
	}
}

func TestCancelWeakAndStrongAccounting(t *testing.T) {
	e := NewEngine(1)
	s := e.At(10, "s", func() {})
	e.AfterWeak(5, "w", func() {})
	e.Cancel(s)
	// With the strong event cancelled, Run must return immediately
	// without firing the weak one.
	if n := e.Run(); n != 0 {
		t.Fatalf("Run fired %d events", n)
	}
}

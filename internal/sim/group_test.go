package sim

import (
	"fmt"
	"testing"
)

// TestGateOrdering pins the gate contract: at an equal timestamp, gate
// events fire before every normal event, regardless of scheduling order;
// gates among themselves and normals among themselves keep FIFO order.
func TestGateOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []string
	rec := func(s string) func() { return func() { got = append(got, s) } }
	e.At(10, "n1", rec("n1"))
	e.AtGate(10, "g1", rec("g1"))
	e.At(10, "n2", rec("n2"))
	e.AtGate(10, "g2", rec("g2"))
	e.At(5, "early", rec("early"))
	e.Run()
	want := "[early g1 g2 n1 n2]"
	if fmt.Sprint(got) != want {
		t.Fatalf("order %v, want %s", got, want)
	}
}

// TestGateFreeRunsUnchanged proves the gate bit does not disturb plain
// scheduling: an engine that never uses AtGate fires events in the same
// (time, insertion) order as before the gate key existed.
func TestGateFreeRunsUnchanged(t *testing.T) {
	e := NewEngine(7)
	var got []int
	for i := 0; i < 50; i++ {
		i := i
		// Mix of colliding and distinct timestamps.
		e.At(Time(100+(i%7)*3), "ev", func() { got = append(got, i) })
	}
	e.Run()
	// Insertion order must be preserved within each timestamp.
	last := map[Time]int{}
	for idx, i := range got {
		at := Time(100 + (i%7)*3)
		if prev, ok := last[at]; ok && prev > i {
			t.Fatalf("insertion order broken at index %d: %v", idx, got)
		}
		last[at] = i
	}
}

// TestGroupMatchesSingleEngine runs the same two-machine ping-pong once on
// one engine and once split across a two-engine group, and requires the
// same per-machine event sequence. The "network" is a 5µs message delay;
// cross-engine sends go through a mailbox drained at barriers, delivered
// via gate events — exactly the cluster's transport shape.
func TestGroupMatchesSingleEngine(t *testing.T) {
	type send struct {
		to int
		at Time
	}
	const latency = 5
	run := func(shards int) []string {
		engines := make([]*Engine, shards)
		for i := range engines {
			engines[i] = NewEngine(3)
		}
		engOf := func(machine int) *Engine { return engines[machine%shards] }
		var log []string
		var boxes [][]send // per shard
		boxes = make([][]send, shards)
		var post func(from, to int, at Time)
		deliver := func(to int, at Time) {
			engOf(to).AtGate(at, "pump", func() {
				log = append(log, fmt.Sprintf("m%d@%d", to, at))
				if at < 100 {
					post(to, 1-to, at+latency)
				}
			})
		}
		post = func(from, to int, at Time) {
			if engOf(to) == engOf(from) {
				deliver(to, at)
				return
			}
			boxes[to%shards] = append(boxes[to%shards], send{to: to, at: at})
		}
		g := &Group{
			Engines:   engines,
			Lookahead: latency,
			Drain: func(s int) {
				q := boxes[s]
				boxes[s] = nil
				for _, f := range q {
					deliver(f.to, f.at)
				}
			},
		}
		post(1, 0, 10)
		g.RunUntilIdle()
		return log
	}
	one, two := run(1), run(2)
	if fmt.Sprint(one) != fmt.Sprint(two) {
		t.Fatalf("group diverged from single engine:\n1 shard: %v\n2 shards: %v", one, two)
	}
	if len(one) == 0 {
		t.Fatal("ping-pong never ran")
	}
}

// TestGroupRunUntil checks the deadline semantics: events at or before the
// deadline fire, later ones stay pending, and idle engines' clocks advance
// to the deadline (the common epoch RunFor depends on).
func TestGroupRunUntil(t *testing.T) {
	a, b := NewEngine(1), NewEngine(1)
	fired := 0
	a.At(40, "in", func() { fired++ })
	b.At(90, "out", func() { fired++ })
	g := &Group{Engines: []*Engine{a, b}, Lookahead: 5}
	g.RunUntil(50)
	if fired != 1 {
		t.Fatalf("fired %d events by t=50, want 1", fired)
	}
	if a.Now() != 50 {
		t.Fatalf("idle engine clock %d, want pinned to 50", a.Now())
	}
	g.RunUntil(100)
	if fired != 2 {
		t.Fatalf("fired %d events by t=100, want 2", fired)
	}
}

// TestGroupParallelIdentical runs a fan-out/fan-in workload sequentially
// and in parallel mode and requires identical logs per engine — goroutine
// scheduling must not leak into simulation order.
func TestGroupParallelIdentical(t *testing.T) {
	run := func(parallel bool) string {
		const shards = 4
		engines := make([]*Engine, shards)
		logs := make([][]Time, shards)
		for i := range engines {
			engines[i] = NewEngine(11)
			i := i
			var tick func(at Time)
			tick = func(at Time) {
				engines[i].At(at, "tick", func() {
					logs[i] = append(logs[i], at)
					if at < 200 {
						tick(at + Time(3+i))
					}
				})
			}
			tick(Time(1 + i))
		}
		g := &Group{Engines: engines, Lookahead: 2, Parallel: parallel}
		g.RunUntilIdle()
		return fmt.Sprint(logs)
	}
	if seq, par := run(false), run(true); seq != par {
		t.Fatalf("parallel rounds diverged:\nseq: %s\npar: %s", seq, par)
	}
}

package sim

import (
	"reflect"
	"testing"
)

// TestFaultClassOrdering pins the three-tier same-timestamp priority:
// fault events before gates before normal events, with scheduling order
// preserved inside each class — regardless of the order the three classes
// were scheduled in.
func TestFaultClassOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []string
	rec := func(n string) func() { return func() { got = append(got, n) } }
	e.At(10, "n1", rec("n1"))
	e.AtGate(10, "g1", rec("g1"))
	e.AtFault(10, "f1", rec("f1"))
	e.At(10, "n2", rec("n2"))
	e.AtFault(10, "f2", rec("f2"))
	e.AtGate(10, "g2", rec("g2"))
	e.Run()
	want := []string{"f1", "f2", "g1", "g2", "n1", "n2"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("firing order %v, want %v", got, want)
	}
}

// TestWeakFaultDoesNotKeepRunAlive pins the pulse shape: a weak fault event
// alone never keeps Run going, but fires when strong work reaches its time.
func TestWeakFaultDoesNotKeepRunAlive(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.AfterWeakFault(5, "pulse", func() { fired = true })
	e.Run()
	if fired {
		t.Fatal("weak fault event kept Run alive")
	}
	if e.StrongPending() != 0 {
		t.Fatalf("strong pending = %d, want 0", e.StrongPending())
	}
	e.After(10, "work", func() {})
	e.Run()
	if !fired {
		t.Fatal("weak fault event did not fire alongside strong work")
	}
}

package core_test

import (
	"testing"

	"demosmp/internal/msg"
	"demosmp/internal/workload"
)

// TestEvictLooksElsewhere is §3.2 end to end: the first destination the
// process manager tries refuses the migration; the PM looks elsewhere and
// the process lands on a willing machine.
func TestEvictLooksElsewhere(t *testing.T) {
	c := full(t, 3, nil)
	// Machine 2 is under different administrative control and refuses
	// every incoming migration.
	c.Kernel(2).SetAccept(func(ask msg.MigrateAsk, memFree int) bool { return false })

	pid, _ := c.SpawnProgram(1, workload.CPUBound(300000))
	c.RunFor(5000)
	if err := c.Evict(pid); err != nil {
		t.Fatal(err)
	}
	c.Run()
	e, m, ok := c.ExitOf(pid)
	if !ok || e.Code != workload.CPUBoundResult(300000) {
		t.Fatalf("evicted process corrupted: %+v ok=%v", e, ok)
	}
	if m != 3 {
		t.Fatalf("finished on %v; the PM should have fallen through to m3", m)
	}
	if r := c.Stats().PerKernel[2].MigrationsRefused; r != 1 {
		t.Fatalf("m2 refusals = %d, want 1", r)
	}
}

// TestEvictAllRefuse: every candidate refuses; the process simply stays
// home and keeps running — "If the destination machine refuses, the
// process cannot be migrated."
func TestEvictAllRefuse(t *testing.T) {
	c := full(t, 3, nil)
	refuse := func(ask msg.MigrateAsk, memFree int) bool { return false }
	c.Kernel(2).SetAccept(refuse)
	c.Kernel(3).SetAccept(refuse)

	pid, _ := c.SpawnProgram(1, workload.CPUBound(200000))
	c.RunFor(5000)
	c.Evict(pid)
	c.Run()
	e, m, ok := c.ExitOf(pid)
	if !ok || m != 1 || e.Code != workload.CPUBoundResult(200000) {
		t.Fatalf("process should have stayed on m1: %+v on %v ok=%v", e, m, ok)
	}
	refusals := c.Stats().PerKernel[2].MigrationsRefused + c.Stats().PerKernel[3].MigrationsRefused
	if refusals != 2 {
		t.Fatalf("refusals = %d, want 2 (tried both)", refusals)
	}
}

// Sharded cluster runtime: machines partitioned across shard-local engines
// synchronized by conservative lookahead (sim.Group), with cross-shard
// frames crossing through locked per-shard mailboxes. See DESIGN.md §11 for
// the shard model, the lookahead rule, and the determinism argument.
//
// Division of labor: internal/sim owns the round/barrier machinery,
// internal/netw owns canonical frame ordering (the pending heap + gate
// pump), and this file owns cluster assembly — shard assignment, mailbox
// transport, merged observability views, and fan-out of fault injection to
// the shards that enforce each fault.
package core

import (
	"fmt"
	"sort"
	"sync"

	"demosmp/internal/addr"
	"demosmp/internal/kernel"
	"demosmp/internal/netw"
	"demosmp/internal/obs"
	"demosmp/internal/sim"
	"demosmp/internal/trace"
)

// shardInbox is the locked mailbox for one receiving shard. It parks
// netw.RemoteFrame values between rounds; the receiving shard's canonical
// pending heap re-orders mailbox contents by (at, to, from, seq), so the
// push order below — even from parallel shard goroutines — cannot influence
// simulation order.
type shardInbox struct {
	mu sync.Mutex
	q  []netw.RemoteFrame
}

// shardRuntime is the per-shard state behind a Cluster with Shards >= 1.
type shardRuntime struct {
	n       int      // shard count
	look    sim.Time // conservative lookahead window W (min pair latency)
	now     sim.Time // global cluster clock (advanced by Run/RunFor)
	shardOf []int    // machine id -> shard index

	engines []*sim.Engine
	nets    []*netw.Network
	trs     []*trace.Tracer
	regs    []*obs.Registry
	leds    []*obs.Ledger
	inboxes []shardInbox

	group *sim.Group
}

// shardOfMachine returns machine m's shard under round-robin assignment.
func shardOfMachine(m, shards int) int { return (m - 1) % shards }

// buildSharded constructs the engines, networks, kernels, and observability
// plane for a sharded cluster. The caller (New) runs boot() afterwards.
func (c *Cluster) buildSharded() error {
	o := &c.opts
	if o.TraceSink != nil {
		return fmt.Errorf("core: TraceSink is unsupported with Shards (stream order is undefined across shards, even with the lossy machine-anchored ARQ); read TraceRecords() after the run instead")
	}
	shards := o.Shards
	if shards > o.Machines {
		shards = o.Machines
	}
	look := o.Net.MinLatency(o.Machines)
	if o.Net.LossRate > 0 {
		// The machine-anchored ARQ's acks cross shards at the flat ack
		// latency, so the conservative window must not outrun them.
		if ack := o.Net.AckLatency(); ack < look {
			look = ack
		}
	}
	if look < 1 {
		return fmt.Errorf("core: sharded lookahead window is %d; every PairLatency must be >= 1µs", look)
	}

	sh := &shardRuntime{n: shards, look: look}
	sh.shardOf = make([]int, o.Machines+1)
	for m := 1; m <= o.Machines; m++ {
		sh.shardOf[m] = shardOfMachine(m, shards)
	}
	sh.inboxes = make([]shardInbox, shards)
	for s := 0; s < shards; s++ {
		eng := sim.NewEngine(o.Seed)
		sh.engines = append(sh.engines, eng)
		sh.nets = append(sh.nets, netw.New(eng, o.Net))
		sh.trs = append(sh.trs, trace.New(eng.Now, o.TraceCap))
		sh.regs = append(sh.regs, obs.NewRegistry())
		sh.leds = append(sh.leds, obs.NewLedger())
	}
	c.sh = sh
	for s := 0; s < shards; s++ {
		s := s
		sh.nets[s].SetCanonical(o.Machines, o.Seed,
			func(m addr.MachineID) bool { return sh.shardOf[m] == s },
			c.shipRemote)
	}

	kcfg := o.Kernel
	kcfg.Registry = c.reg
	kcfg.LoadReportEvery = o.LoadReportEvery
	if o.Programs != nil {
		kcfg.Programs = func(name string, args []string) (kernel.SpawnSpec, error) {
			f, ok := o.Programs[name]
			if !ok {
				return kernel.SpawnSpec{}, fmt.Errorf("core: unknown program %q", name)
			}
			return f(args)
		}
	}
	for m := 1; m <= o.Machines; m++ {
		s := sh.shardOf[m]
		kcfg.Tracer = sh.trs[s]
		kcfg.Machines = append([]addr.MachineID(nil), machineList(o.Machines)...)
		k := kernel.New(addr.MachineID(m), sh.engines[s], sh.nets[s], kcfg)
		k.SetObs(sh.regs[s], sh.leds[s])
		c.ks[addr.MachineID(m)] = k
	}
	for s := 0; s < shards; s++ {
		sh.nets[s].RegisterObs(sh.regs[s])
	}
	sh.group = &sim.Group{
		Engines:   sh.engines,
		Lookahead: look,
		Drain:     c.drainShard,
		Parallel:  o.ShardParallel,
	}

	// Legacy aliases point at shard 0 (the control shard): Engine() keeps
	// working for drivers that schedule cluster-level events, and boot()'s
	// machine-1 helpers resolve through c.ks as before.
	c.eng, c.net, c.tr = sh.engines[0], sh.nets[0], sh.trs[0]
	c.obsReg, c.obsLed = sh.regs[0], sh.leds[0]
	return nil
}

// shipRemote is every shard's cross-shard send hook: it parks the frame in
// the receiving shard's mailbox. Called from inside a shard's round, so it
// must touch nothing but the mailbox (and may race with other shards in
// parallel mode — hence the lock).
//
//demos:owner clone — the mailbox holds only heap clones: netw's canonical path retires a pooled original to its owner before shipping (copy-on-retain), so no pooled envelope ever crosses a shard boundary.
func (c *Cluster) shipRemote(f netw.RemoteFrame) {
	ib := &c.sh.inboxes[c.sh.shardOf[f.To]]
	ib.mu.Lock()
	ib.q = append(ib.q, f)
	ib.mu.Unlock()
}

// drainShard moves shard s's mailbox into its network's canonical pending
// heap. Runs only at round barriers, from the coordinating goroutine.
func (c *Cluster) drainShard(s int) {
	ib := &c.sh.inboxes[s]
	ib.mu.Lock()
	q := ib.q
	ib.q = nil
	ib.mu.Unlock()
	nw := c.sh.nets[s]
	for _, f := range q {
		nw.EnqueueRemote(f)
	}
}

// EngineOf returns the engine driving machine m — the shared engine in the
// single-engine runtime, machine m's shard engine when sharded. Drivers
// scheduling per-machine events (workload arrival pumps, scripted
// migrations) must use this so the event lands on the machine's own shard.
func (c *Cluster) EngineOf(m int) *sim.Engine {
	if c.sh != nil {
		return c.sh.engines[c.sh.shardOf[m]]
	}
	return c.eng
}

// Shards returns the shard count (1+ when sharded, 0 for the classic
// single-engine runtime).
func (c *Cluster) Shards() int {
	if c.sh != nil {
		return c.sh.n
	}
	return 0
}

// ShardOf returns the shard index hosting machine m (0 for the classic
// runtime — everything lives on the one engine).
func (c *Cluster) ShardOf(m int) int {
	if c.sh != nil {
		return c.sh.shardOf[m]
	}
	return 0
}

// EngineOfShard returns shard s's engine (the shared engine in the classic
// runtime). The sharded chaos injector arms its per-shard pulse replicas on
// these.
func (c *Cluster) EngineOfShard(s int) *sim.Engine {
	if c.sh != nil {
		return c.sh.engines[s]
	}
	return c.eng
}

// NetworkOfShard returns shard s's network (the shared network in the
// classic runtime). Shard-local fault application only — cluster-wide
// fault fan-out should use Partition/Heal/LossBurst etc. on the Cluster.
func (c *Cluster) NetworkOfShard(s int) *netw.Network {
	if c.sh != nil {
		return c.sh.nets[s]
	}
	return c.net
}

// InflightARQ sums the un-acked ARQ flights across every shard's network.
// Zero at quiescence — the chaos invariant audit asserts it.
func (c *Cluster) InflightARQ() int {
	if c.sh == nil {
		return c.net.InflightARQ()
	}
	total := 0
	for _, nw := range c.sh.nets {
		total += nw.InflightARQ()
	}
	return total
}

// PendingFrames sums the canonical pending-heap entries across every
// shard's network. Zero at quiescence.
func (c *Cluster) PendingFrames() int {
	if c.sh == nil {
		return c.net.PendingFrames()
	}
	total := 0
	for _, nw := range c.sh.nets {
		total += nw.PendingFrames()
	}
	return total
}

// Lookahead returns the conservative lookahead window W in microseconds
// (0 for the single-engine runtime).
func (c *Cluster) Lookahead() sim.Time {
	if c.sh != nil {
		return c.sh.look
	}
	return 0
}

// Rounds returns the number of completed synchronization rounds.
func (c *Cluster) Rounds() uint64 {
	if c.sh != nil {
		return c.sh.group.Rounds
	}
	return 0
}

// TotalFired sums events executed across all engines.
func (c *Cluster) TotalFired() uint64 {
	if c.sh == nil {
		return c.eng.Fired()
	}
	var n uint64
	for _, e := range c.sh.engines {
		n += e.Fired()
	}
	return n
}

// NetStats returns the cluster-wide network counters: the single network's
// snapshot, or the sum over every shard's network. Per-machine rows sum
// too — a shard accounts FramesIn for remote machines it sends to, so only
// the cluster-wide total is meaningful.
func (c *Cluster) NetStats() netw.Stats {
	if c.sh == nil {
		return c.net.Stats()
	}
	out := c.sh.nets[0].Stats()
	for _, nw := range c.sh.nets[1:] {
		s := nw.Stats()
		out.Frames += s.Frames
		out.Bytes += s.Bytes
		out.Delivered += s.Delivered
		out.Dropped += s.Dropped
		out.Retransmits += s.Retransmits
		out.Duplicates += s.Duplicates
		out.Dead += s.Dead
		out.SendFromDown += s.SendFromDown
		out.PartitionDropped += s.PartitionDropped
		out.BurstDropped += s.BurstDropped
		out.DupInjected += s.DupInjected
		out.DelayInjected += s.DelayInjected
		out.OrphanDropped += s.OrphanDropped
		for k, v := range s.ByKind {
			out.ByKind[k] += v
		}
		for k, v := range s.BytesByKind {
			out.BytesByKind[k] += v
		}
		for m, ms := range s.PerMachine {
			agg := out.PerMachine[m]
			agg.FramesOut += ms.FramesOut
			agg.FramesIn += ms.FramesIn
			agg.BytesOut += ms.BytesOut
			agg.BytesIn += ms.BytesIn
			out.PerMachine[m] = agg
		}
	}
	return out
}

// TraceRecords returns the cluster's trace, merged across shards into a
// canonical order: (time, machine, per-machine emission order). A machine's
// records live in exactly one shard's tracer in emission order, so a stable
// sort of the concatenation by (T, Machine) yields the same sequence for
// every shard count — this is what the shard-invariance tests pin.
func (c *Cluster) TraceRecords() []trace.Record {
	if c.sh == nil {
		out := append([]trace.Record(nil), c.tr.Records()...)
		sortTraceStable(out)
		return out
	}
	var out []trace.Record
	for _, tr := range c.sh.trs {
		out = append(out, tr.Records()...)
	}
	sortTraceStable(out)
	return out
}

func sortTraceStable(recs []trace.Record) {
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].T != recs[j].T {
			return recs[i].T < recs[j].T
		}
		return recs[i].Machine < recs[j].Machine
	})
}

// --- fault injection fan-out ---------------------------------------------------

// netsFor returns the distinct shard networks that enforce a fault on the
// pair (a, b): sends a->b are checked on a's shard, b->a on b's.
func (c *Cluster) netsFor(a, b addr.MachineID) []*netw.Network {
	sa, sb := c.sh.shardOf[a], c.sh.shardOf[b]
	if sa == sb {
		return []*netw.Network{c.sh.nets[sa]}
	}
	return []*netw.Network{c.sh.nets[sa], c.sh.nets[sb]}
}

// Partition severs the pair (a, b) in both directions, on every shard that
// originates traffic for it.
func (c *Cluster) Partition(a, b addr.MachineID) {
	if c.sh == nil {
		c.net.Partition(a, b)
		return
	}
	for _, nw := range c.netsFor(a, b) {
		nw.Partition(a, b)
	}
}

// Heal reconnects a pair severed by Partition.
func (c *Cluster) Heal(a, b addr.MachineID) {
	if c.sh == nil {
		c.net.Heal(a, b)
		return
	}
	for _, nw := range c.netsFor(a, b) {
		nw.Heal(a, b)
	}
}

// Partitioned reports whether the pair is currently severed.
func (c *Cluster) Partitioned(a, b addr.MachineID) bool {
	if c.sh == nil {
		return c.net.Partitioned(a, b)
	}
	return c.sh.nets[c.sh.shardOf[a]].Partitioned(a, b)
}

// LossBurst raises the loss probability on every shard until the given sim
// time (sends originate on all shards).
func (c *Cluster) LossBurst(rate float64, until sim.Time) {
	if c.sh == nil {
		c.net.LossBurst(rate, until)
		return
	}
	for _, nw := range c.sh.nets {
		nw.LossBurst(rate, until)
	}
}

// DuplicateNext injects duplicates for the next count frames from->to; the
// injection lives on the sending machine's shard.
func (c *Cluster) DuplicateNext(from, to addr.MachineID, count int) {
	if c.sh == nil {
		c.net.DuplicateNext(from, to, count)
		return
	}
	c.sh.nets[c.sh.shardOf[from]].DuplicateNext(from, to, count)
}

// DelayNext adds extra transit to the next frame from->to (sender's shard).
func (c *Cluster) DelayNext(from, to addr.MachineID, extra sim.Time) {
	if c.sh == nil {
		c.net.DelayNext(from, to, extra)
		return
	}
	c.sh.nets[c.sh.shardOf[from]].DelayNext(from, to, extra)
}

// NetLossy reports whether the network config arms the ARQ — the classic
// shared-engine ARQ, or the machine-anchored canonical ARQ when sharded.
func (c *Cluster) NetLossy() bool { return c.opts.Net.LossRate > 0 }

package core_test

import (
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/kernel"
	"demosmp/internal/link"
	"demosmp/internal/workload"
)

// TestVMFileClient: a user program written in DVM assembly performs real
// file I/O through the four server processes, with the kernel move-data
// facility streaming its buffer both ways.
func TestVMFileClient(t *testing.T) {
	c := full(t, 2, nil)
	pid, err := c.Spawn(2, kernel.SpawnSpec{
		Program: workload.VMFileClient(),
		Links: []link.Link{
			{Addr: addr.At(c.DirPID, 1)},
			{Addr: addr.At(c.FilePID, 1)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	e, _, ok := c.ExitOf(pid)
	if !ok {
		t.Fatal("vm file client never finished")
	}
	if e.Code != 600 {
		t.Fatalf("vm file client verified %d bytes, want 600", e.Code)
	}
}

// TestVMFileClientSurvivesOwnMigration: the assembly client itself migrates
// between its write and its read — its data area link, open handle, and
// in-buffer state all move with it.
func TestVMFileClientSurvivesOwnMigration(t *testing.T) {
	c := full(t, 3, nil)
	pid, err := c.Spawn(2, kernel.SpawnSpec{
		Program: workload.VMFileClient(),
		Links: []link.Link{
			{Addr: addr.At(c.DirPID, 1)},
			{Addr: addr.At(c.FilePID, 1)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Migrate the client partway through its run.
	c.RunFor(40000)
	if err := c.Migrate(pid, 3); err != nil {
		t.Fatal(err)
	}
	c.Run()
	e, m, ok := c.ExitOf(pid)
	if !ok || e.Code != 600 {
		t.Fatalf("migrated vm client verified %d (ok=%v) on %v", e.Code, ok, m)
	}
	if m != 3 {
		t.Fatalf("client finished on %v, want m3", m)
	}
}

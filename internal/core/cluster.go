// Package core assembles a complete DEMOS/MP cluster: the event engine,
// the network, one kernel per machine, and the system processes —
// switchboard, process manager, memory scheduler, the four-process file
// system, and command interpreter (§2.3, Figure 2-3). It is the public
// face of the reproduction; the demosmp root package re-exports it.
package core

import (
	"fmt"
	"io"
	"sort"

	"demosmp/internal/addr"
	"demosmp/internal/dvm"
	"demosmp/internal/fs"
	"demosmp/internal/kernel"
	"demosmp/internal/link"
	"demosmp/internal/memsched"
	"demosmp/internal/netw"
	"demosmp/internal/obs"
	"demosmp/internal/policy"
	"demosmp/internal/proc"
	"demosmp/internal/procmgr"
	"demosmp/internal/shell"
	"demosmp/internal/sim"
	"demosmp/internal/switchboard"
	"demosmp/internal/trace"
	"demosmp/internal/workload"
)

// ProgramFactory instantiates a named program for the shell / process
// manager spawn path.
type ProgramFactory func(args []string) (kernel.SpawnSpec, error)

// Options configures a cluster. The zero value plus Machines is usable.
type Options struct {
	// Machines is the number of processors (numbered 1..Machines).
	Machines int
	// Seed drives all simulation randomness.
	Seed int64
	// Net configures the inter-machine network.
	Net netw.Config
	// Kernel is the per-kernel configuration template (Tracer, Registry,
	// Machines and PMLink are filled in by the cluster).
	Kernel kernel.Config
	// TraceCap bounds the trace ring (0 = default).
	TraceCap int
	// TraceSink, when set, streams trace records as they happen.
	TraceSink io.Writer

	// Switchboard boots the name server on machine 1.
	Switchboard bool
	// PM boots the process manager on PMMachine (default 1) running
	// Policy (nil = manual).
	PM        bool
	PMMachine int
	Policy    policy.Policy
	// MemSched boots the memory scheduler on machine 1.
	MemSched bool
	// FS boots the four file system processes on FSMachine (default 1).
	FS          bool
	FSMachine   int
	Disk        fs.DiskGeometry
	CacheBlocks int
	// Shell boots a command interpreter on machine 1 (requires PM and
	// Switchboard).
	Shell bool

	// LoadReportEvery enables periodic kernel load reports to the PM.
	LoadReportEvery sim.Time
	// Programs names programs spawnable via shell/PM.
	Programs map[string]ProgramFactory

	// Shards, when >= 1, partitions machines round-robin across that many
	// shard-local engines synchronized by conservative lookahead (see
	// DESIGN.md §11). Zero keeps the classic single shared engine (the
	// golden-trace configuration). Sharded clusters compose with a lossy
	// network (LossRate > 0 arms the machine-anchored canonical ARQ) and
	// produce bit-identical traces for any shard count; they use the
	// canonical delivery order, which differs from the classic engine's,
	// so compare sharded runs with sharded runs.
	Shards int
	// ShardParallel runs each shard's engine on its own goroutine inside a
	// round — a wall-clock choice only; results are identical, including
	// under chaos injection (the sharded injector keeps every fault's
	// state on the shard that enforces it; see internal/chaos).
	ShardParallel bool
}

// Cluster is a running DEMOS/MP system.
type Cluster struct {
	opts Options
	eng  *sim.Engine
	net  *netw.Network
	tr   *trace.Tracer
	reg  *proc.Registry
	ks   map[addr.MachineID]*kernel.Kernel

	// Observability plane: always built (registration is cold; the hot
	// paths pay only nil-checked histogram updates), so every composed
	// cluster can export a snapshot, a §6 ledger, and a timeline.
	obsReg *obs.Registry
	obsLed *obs.Ledger

	// System process identities (zero if not booted).
	SwitchboardPID addr.ProcessID
	PMPID          addr.ProcessID
	MemSchedPID    addr.ProcessID
	DiskPID        addr.ProcessID
	CachePID       addr.ProcessID
	FilePID        addr.ProcessID
	DirPID         addr.ProcessID
	ShellPID       addr.ProcessID

	pm *procmgr.Manager

	// sh is non-nil for a sharded cluster (Options.Shards >= 1); the
	// single-engine fields above then alias shard 0 (see shard.go).
	sh *shardRuntime
}

// New builds and boots a cluster.
func New(opts Options) (*Cluster, error) {
	if opts.Machines < 1 {
		return nil, fmt.Errorf("core: need at least one machine")
	}
	if opts.PMMachine == 0 {
		opts.PMMachine = 1
	}
	if opts.FSMachine == 0 {
		opts.FSMachine = 1
	}
	c := &Cluster{
		opts: opts,
		ks:   map[addr.MachineID]*kernel.Kernel{},
	}
	c.reg = buildRegistry(opts)
	if opts.Shards >= 1 {
		if err := c.buildSharded(); err != nil {
			return nil, err
		}
	} else if err := c.buildSingle(); err != nil {
		return nil, err
	}
	if err := c.boot(); err != nil {
		return nil, err
	}
	return c, nil
}

// buildSingle constructs the classic single-engine runtime (the
// golden-trace configuration).
func (c *Cluster) buildSingle() error {
	opts := c.opts
	c.eng = sim.NewEngine(opts.Seed)
	c.net = netw.New(c.eng, opts.Net)
	c.tr = trace.New(c.eng.Now, opts.TraceCap)
	if opts.TraceSink != nil {
		c.tr.SetSink(opts.TraceSink)
	}

	kcfg := opts.Kernel
	kcfg.Tracer = c.tr
	kcfg.Registry = c.reg
	kcfg.LoadReportEvery = opts.LoadReportEvery
	if opts.Programs != nil {
		kcfg.Programs = func(name string, args []string) (kernel.SpawnSpec, error) {
			f, ok := opts.Programs[name]
			if !ok {
				return kernel.SpawnSpec{}, fmt.Errorf("core: unknown program %q", name)
			}
			return f(args)
		}
	}
	for m := 1; m <= opts.Machines; m++ {
		kcfg.Machines = append([]addr.MachineID(nil), machineList(opts.Machines)...)
		c.ks[addr.MachineID(m)] = kernel.New(addr.MachineID(m), c.eng, c.net, kcfg)
	}
	c.obsReg = obs.NewRegistry()
	c.obsLed = obs.NewLedger()
	for m := 1; m <= opts.Machines; m++ {
		c.ks[addr.MachineID(m)].SetObs(c.obsReg, c.obsLed)
	}
	c.net.RegisterObs(c.obsReg)
	return nil
}

func machineList(n int) []addr.MachineID {
	out := make([]addr.MachineID, n)
	for i := range out {
		out[i] = addr.MachineID(i + 1)
	}
	return out
}

func buildRegistry(opts Options) *proc.Registry {
	reg := workload.Registry()
	reg.Register(switchboard.Kind, func() proc.Body { return switchboard.New() })
	reg.Register(procmgr.Kind, func() proc.Body { return procmgr.New(nil) })
	reg.Register(memsched.Kind, func() proc.Body { return memsched.New() })
	reg.Register(fs.DiskKind, func() proc.Body { return fs.NewDisk(fs.DiskGeometry{}) })
	reg.Register(fs.CacheKind, func() proc.Body { return fs.NewCache(0) })
	reg.Register(fs.FileKind, func() proc.Body { return fs.NewFileServer(0) })
	reg.Register(fs.DirKind, func() proc.Body { return fs.NewDir() })
	reg.Register(fs.ClientKind, func() proc.Body { return &fs.Client{} })
	reg.Register(shell.Kind, func() proc.Body { return shell.New() })
	return reg
}

// boot spawns the configured system processes and wires their links —
// Figure 2-3's system process structure.
func (c *Cluster) boot() error {
	m1 := addr.MachineID(1)
	if c.opts.Switchboard {
		pid, err := c.ks[m1].Spawn(kernel.SpawnSpec{Body: switchboard.New(), Privileged: true})
		if err != nil {
			return err
		}
		c.SwitchboardPID = pid
	}
	if c.opts.PM {
		pmm := addr.MachineID(c.opts.PMMachine)
		c.pm = procmgr.New(c.opts.Policy)
		c.pm.SetMachines(machineList(c.opts.Machines))
		pid, err := c.ks[pmm].Spawn(kernel.SpawnSpec{Body: c.pm, Privileged: true,
			Links: c.bornLinks()})
		if err != nil {
			return err
		}
		c.PMPID = pid
		for _, k := range c.kernels() {
			k.SetPMLink(link.Link{Addr: addr.At(pid, pmm)})
		}
		c.pm.Note(pid, pmm)
		c.register("procmgr", pid, pmm)
		// The policy plane's counters live on the PM body; sample them
		// from the registry owning the PM's machine so merged snapshots
		// carry them exactly once.
		pm := c.pm
		reg := c.obsReg
		if c.sh != nil {
			reg = c.sh.regs[shardOfMachine(c.opts.PMMachine, c.sh.n)]
		}
		reg.Sample("policy.migrations_ordered", func() uint64 { return pm.MigrationsOrdered })
		reg.Sample("policy.decisions", func() uint64 { return pm.PolicyDecisions })
		reg.Sample("policy.sweeps", func() uint64 { return pm.PolicySweeps })
	}
	if c.opts.MemSched {
		pid, err := c.ks[m1].Spawn(kernel.SpawnSpec{Body: memsched.New(), Privileged: true})
		if err != nil {
			return err
		}
		c.MemSchedPID = pid
		c.notePM(pid, m1)
		c.register("memsched", pid, m1)
		if c.pm != nil {
			id, err := c.ks[addr.MachineID(c.opts.PMMachine)].MintLinkTo(
				link.Link{Addr: addr.At(pid, m1)}, c.PMPID)
			if err != nil {
				return err
			}
			c.pm.MemSchedLink = id
		}
	}
	if c.opts.FS {
		if err := c.bootFS(); err != nil {
			return err
		}
	}
	if c.opts.Shell {
		if c.SwitchboardPID.IsNil() || c.PMPID.IsNil() {
			return fmt.Errorf("core: shell requires switchboard and PM")
		}
		pid, err := c.ks[m1].Spawn(kernel.SpawnSpec{Body: shell.New(), Privileged: true,
			Links: []link.Link{
				{Addr: addr.At(c.SwitchboardPID, m1)},
				{Addr: addr.At(c.PMPID, addr.MachineID(c.opts.PMMachine))},
			}})
		if err != nil {
			return err
		}
		c.ShellPID = pid
		c.notePM(pid, m1)
	}
	return nil
}

func (c *Cluster) bootFS() error {
	fsm := addr.MachineID(c.opts.FSMachine)
	k := c.ks[fsm]
	geom := c.opts.Disk
	var err error
	c.DiskPID, err = k.Spawn(kernel.SpawnSpec{Body: fs.NewDisk(geom)})
	if err != nil {
		return err
	}
	c.CachePID, err = k.Spawn(kernel.SpawnSpec{Body: fs.NewCache(c.opts.CacheBlocks),
		Links: []link.Link{{Addr: addr.At(c.DiskPID, fsm)}}})
	if err != nil {
		return err
	}
	c.FilePID, err = k.Spawn(kernel.SpawnSpec{Body: fs.NewFileServer(0),
		Links: []link.Link{{Addr: addr.At(c.CachePID, fsm)}}})
	if err != nil {
		return err
	}
	c.DirPID, err = k.Spawn(kernel.SpawnSpec{Body: fs.NewDir(),
		Links: []link.Link{{Addr: addr.At(c.FilePID, fsm)}}})
	if err != nil {
		return err
	}
	for _, pid := range []addr.ProcessID{c.DiskPID, c.CachePID, c.FilePID, c.DirPID} {
		c.notePM(pid, fsm)
	}
	c.register("fs.disk", c.DiskPID, fsm)
	c.register("fs.cache", c.CachePID, fsm)
	c.register("fs.file", c.FilePID, fsm)
	c.register("fs.dir", c.DirPID, fsm)
	return nil
}

// bornLinks gives boot processes their switchboard link in slot 1 when the
// switchboard exists ("Links are the only connections a process has").
func (c *Cluster) bornLinks() []link.Link {
	if c.SwitchboardPID.IsNil() {
		return nil
	}
	return []link.Link{{Addr: addr.At(c.SwitchboardPID, 1)}}
}

// register publishes a service name in the switchboard.
func (c *Cluster) register(name string, pid addr.ProcessID, at addr.MachineID) {
	if c.SwitchboardPID.IsNil() {
		return
	}
	c.ks[1].GiveMessage(c.SwitchboardPID, addr.KernelAddr(1),
		switchboard.RegisterMsg(name), link.Link{Addr: addr.At(pid, at)})
}

func (c *Cluster) notePM(pid addr.ProcessID, at addr.MachineID) {
	if c.pm != nil {
		c.pm.Note(pid, at)
	}
}

func (c *Cluster) kernels() []*kernel.Kernel {
	out := make([]*kernel.Kernel, 0, len(c.ks))
	for _, m := range machineList(len(c.ks)) {
		out = append(out, c.ks[m])
	}
	return out
}

// --- accessors ---------------------------------------------------------------

// Engine returns the discrete-event engine. For a sharded cluster this is
// shard 0, the control shard — cluster-level drivers (chaos pulses) live
// there; per-machine events must go through EngineOf.
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// Tracer returns the cluster tracer. Sharded clusters have one tracer per
// shard; use TraceRecords for the merged canonical view.
func (c *Cluster) Tracer() *trace.Tracer {
	if c.sh != nil {
		panic("core: sharded cluster has per-shard tracers; use TraceRecords()")
	}
	return c.tr
}

// Network returns the network substrate. Sharded clusters have one network
// per shard; use NetStats() for merged counters and the Cluster-level
// Partition/Heal/LossBurst/DuplicateNext/DelayNext for fault injection.
func (c *Cluster) Network() *netw.Network {
	if c.sh != nil {
		panic("core: sharded cluster has per-shard networks; use NetStats() and the Cluster fault-injection methods")
	}
	return c.net
}

// Obs returns the cluster's metrics registry. It is always non-nil:
// every kernel's stats and the network's wire counters are registered at
// build time, so Obs().Snapshot(c.Now()) is a complete cluster view.
// Sharded clusters have one registry per shard; use ObsSnapshot for the
// merged view.
func (c *Cluster) Obs() *obs.Registry {
	if c.sh != nil {
		panic("core: sharded cluster has per-shard registries; use ObsSnapshot()")
	}
	return c.obsReg
}

// Ledger returns the cluster's migration cost ledger (§6): one record per
// completed outbound migration, including post-completion forwarding and
// link-update attribution. For a sharded cluster this is a merged view
// over the per-shard ledgers (records stay live by pointer).
func (c *Cluster) Ledger() *obs.Ledger {
	if c.sh != nil {
		return obs.MergeLedgers(c.sh.leds...)
	}
	return c.obsLed
}

// ObsSnapshot is a registry snapshot stamped with the current simulated
// time — merged across shards (name-sorted, values summed) when sharded.
func (c *Cluster) ObsSnapshot() obs.Snapshot {
	if c.sh != nil {
		snaps := make([]obs.Snapshot, 0, len(c.sh.regs))
		for _, r := range c.sh.regs {
			snaps = append(snaps, r.Snapshot(c.Now()))
		}
		return obs.MergeSnapshots(uint64(c.Now()), snaps...)
	}
	return c.obsReg.Snapshot(c.eng.Now())
}

// Kernel returns machine m's kernel.
func (c *Cluster) Kernel(m int) *kernel.Kernel { return c.ks[addr.MachineID(m)] }

// Machines returns the machine count.
func (c *Cluster) Machines() int { return len(c.ks) }

// PM returns the process manager body (nil if not booted). Reading it is
// only safe between Run calls.
func (c *Cluster) PM() *procmgr.Manager { return c.pm }

// Run drives the simulation until no strong events remain (across every
// shard, when sharded).
func (c *Cluster) Run() {
	if c.sh != nil {
		c.sh.now = c.sh.group.RunUntilIdle()
		return
	}
	c.eng.Run()
}

// RunFor advances the simulation by d microseconds.
func (c *Cluster) RunFor(d sim.Time) {
	if c.sh != nil {
		target := c.sh.now + d
		c.sh.group.RunUntil(target)
		c.sh.now = target
		return
	}
	c.eng.RunFor(d)
}

// Now returns the simulated time (the global round clock when sharded).
func (c *Cluster) Now() sim.Time {
	if c.sh != nil {
		return c.sh.now
	}
	return c.eng.Now()
}

// --- process operations --------------------------------------------------------

// Spawn creates a process from a spec on machine m.
func (c *Cluster) Spawn(m int, spec kernel.SpawnSpec) (addr.ProcessID, error) {
	k := c.Kernel(m)
	if k == nil {
		return addr.NilPID, fmt.Errorf("core: no machine %d", m)
	}
	pid, err := k.Spawn(spec)
	if err == nil {
		c.notePM(pid, addr.MachineID(m))
	}
	return pid, err
}

// SpawnVM assembles and spawns a DVM program on machine m.
func (c *Cluster) SpawnVM(m int, src string, links ...link.Link) (addr.ProcessID, error) {
	p, err := dvm.Assemble(src)
	if err != nil {
		return addr.NilPID, err
	}
	return c.Spawn(m, kernel.SpawnSpec{Program: p, Links: links})
}

// SpawnProgram spawns a pre-assembled program on machine m.
func (c *Cluster) SpawnProgram(m int, p *dvm.Program, links ...link.Link) (addr.ProcessID, error) {
	return c.Spawn(m, kernel.SpawnSpec{Program: p, Links: links})
}

// SpawnFSClient spawns a scripted file system client on machine m.
func (c *Cluster) SpawnFSClient(m int, file string, rounds int, size uint32) (addr.ProcessID, error) {
	if c.DirPID.IsNil() {
		return addr.NilPID, fmt.Errorf("core: file system not booted")
	}
	fsm := addr.MachineID(c.opts.FSMachine)
	return c.Spawn(m, kernel.SpawnSpec{
		Body:      fs.NewClient(file, rounds, size),
		ImageSize: int(size),
		Links: []link.Link{
			{Addr: addr.At(c.DirPID, fsm)},
			{Addr: addr.At(c.FilePID, fsm)},
		},
	})
}

// Locate scans the cluster for the machine currently hosting pid.
func (c *Cluster) Locate(pid addr.ProcessID) (addr.MachineID, bool) {
	for _, k := range c.kernels() {
		if info, ok := k.Process(pid); ok && info.State != kernel.StateForwarder {
			return k.Machine(), true
		}
	}
	return addr.NoMachine, false
}

// Migrate moves pid to machine dest. With a process manager booted, the
// order flows through it (so its location table stays current); otherwise
// machine 1's kernel acts as the manager.
func (c *Cluster) Migrate(pid addr.ProcessID, dest int) error {
	at, ok := c.Locate(pid)
	if !ok {
		return fmt.Errorf("core: process %v not found", pid)
	}
	if c.pm != nil {
		pmm := addr.MachineID(c.opts.PMMachine)
		c.ks[pmm].GiveMessage(c.PMPID, addr.KernelAddr(pmm),
			procmgr.CmdMigrate(pid, addr.MachineID(dest)))
		return nil
	}
	c.ks[at].RequestMigrationOf(addr.At(pid, at), addr.MachineID(dest))
	return nil
}

// Evict asks the process manager to move pid to any other machine,
// retrying across candidates if destinations refuse (§3.2).
func (c *Cluster) Evict(pid addr.ProcessID) error {
	if c.pm == nil {
		return fmt.Errorf("core: eviction requires a process manager")
	}
	pmm := addr.MachineID(c.opts.PMMachine)
	c.ks[pmm].GiveMessage(c.PMPID, addr.KernelAddr(pmm), procmgr.CmdEvict(pid))
	return nil
}

// Crash simulates machine m's processor failing: its kernel freezes and
// the network marks it down. Frames in flight to it are handled by the
// retry/undeliverable machinery.
func (c *Cluster) Crash(m int) error {
	k := c.Kernel(m)
	if k == nil {
		return fmt.Errorf("core: no machine %d", m)
	}
	k.Crash()
	return nil
}

// Restart recovers a crashed machine: volatile kernel state is wiped (with
// accounting), checkpointed processes revive from stable storage, and the
// machine rejoins the network (see kernel.Restart).
func (c *Cluster) Restart(m int) error {
	k := c.Kernel(m)
	if k == nil {
		return fmt.Errorf("core: no machine %d", m)
	}
	return k.Restart()
}

// ExitOf scans the cluster for pid's exit record.
func (c *Cluster) ExitOf(pid addr.ProcessID) (kernel.ExitInfo, addr.MachineID, bool) {
	for _, k := range c.kernels() {
		if e, ok := k.Exit(pid); ok {
			return e, k.Machine(), true
		}
	}
	return kernel.ExitInfo{}, addr.NoMachine, false
}

// Console concatenates pid's console lines from every machine it ran on.
func (c *Cluster) Console(pid addr.ProcessID) []string {
	var out []string
	for _, k := range c.kernels() {
		out = append(out, k.Console(pid)...)
	}
	return out
}

// ShellCommand sends a command line to the booted shell.
func (c *Cluster) ShellCommand(line string) error {
	if c.ShellPID.IsNil() {
		return fmt.Errorf("core: shell not booted")
	}
	return c.ks[1].GiveMessage(c.ShellPID, addr.KernelAddr(1), shell.CommandMsg(line))
}

// --- statistics ----------------------------------------------------------------

// Stats aggregates cluster-wide counters.
type Stats struct {
	PerKernel map[addr.MachineID]kernel.Stats
	Net       netw.Stats
}

// TotalAdmin sums administrative messages across kernels.
func (s Stats) TotalAdmin() uint64 {
	var n uint64
	for _, ks := range s.PerKernel {
		n += ks.AdminTotal()
	}
	return n
}

// TotalForwarded sums forwarded messages across kernels.
func (s Stats) TotalForwarded() uint64 {
	var n uint64
	for _, ks := range s.PerKernel {
		n += ks.Forwarded
	}
	return n
}

// TotalLinkUpdates sums link-update messages across kernels.
func (s Stats) TotalLinkUpdates() uint64 {
	var n uint64
	for _, ks := range s.PerKernel {
		n += ks.LinkUpdatesSent
	}
	return n
}

// TotalMigrations sums completed source-side migrations.
func (s Stats) TotalMigrations() uint64 {
	var n uint64
	for _, ks := range s.PerKernel {
		n += ks.MigrationsOut
	}
	return n
}

// Stats snapshots every kernel and the network (merged across shards).
func (c *Cluster) Stats() Stats {
	s := Stats{PerKernel: map[addr.MachineID]kernel.Stats{}, Net: c.NetStats()}
	for _, k := range c.kernels() {
		s.PerKernel[k.Machine()] = k.Stats()
	}
	return s
}

// Reports collects migration reports from every kernel, ordered by start
// time.
func (c *Cluster) Reports() []kernel.MigrationReport {
	var out []kernel.MigrationReport
	for _, k := range c.kernels() {
		out = append(out, k.Reports()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

package core_test

import (
	"strings"
	"testing"

	"demosmp/internal/core"
	"demosmp/internal/policy"
	"demosmp/internal/sim"
	"demosmp/internal/workload"
)

// runPolicyShardWorkload drives a hot-skewed CPU-bound open-loop workload
// under an automatic migration policy on the given shard count and returns
// the PM's decision trace plus the sweep/decision counters.
func runPolicyShardWorkload(t *testing.T, shards int, parallel bool) (trace string, sweeps, decisions uint64) {
	t.Helper()
	c, err := core.New(core.Options{
		Machines:        8,
		Seed:            1234,
		Shards:          shards,
		ShardParallel:   parallel,
		PM:              true,
		LoadReportEvery: 20000,
		Policy:          policy.NewQueueDepth(3, 2, 50000),
	})
	if err != nil {
		t.Fatal(err)
	}
	c.StartOpenLoop(workload.OpenLoop{
		Seed: 5, MeanGap: 300, PerMachine: 25,
		ShortService: 400, LongService: 8000, LongFraction: 0.3,
		HotEvery: 4, HotFactor: 4, // machines 4 and 8 run hot
		Spin:     true,
	})
	c.RunFor(sim.Time(2_000_000))
	pm := c.PM()
	// The obs plane must carry the PM's counters (registered once, on the
	// PM machine's registry) so merged snapshots expose the policy plane.
	var sampled, found uint64
	for _, m := range c.ObsSnapshot().Metrics {
		if m.Name == "policy.decisions" {
			sampled, found = m.Value, found+1
		}
	}
	if found != 1 || sampled != pm.PolicyDecisions {
		t.Fatalf("obs policy.decisions: found %d rows, value %d, want 1 row == %d",
			found, sampled, pm.PolicyDecisions)
	}
	return strings.Join(pm.DecisionTrace, "\n"), pm.PolicySweeps, pm.PolicyDecisions
}

// TestPolicyShardInvariance pins the policy plane's determinism rule: the
// same seed and workload must yield bit-identical decision traces — same
// orders, same simulated times, same reasons — across 1, 2, and 4 shards,
// sequential and parallel. The collector's sweep cadence depends only on
// report arrival order at the PM, which the sharded runtime keeps
// canonical, so nothing in the decision path may vary with shard count.
func TestPolicyShardInvariance(t *testing.T) {
	baseTrace, baseSweeps, baseDecisions := runPolicyShardWorkload(t, 1, false)
	if baseDecisions == 0 {
		t.Fatal("policy made no decisions; the invariance check is vacuous")
	}
	if baseSweeps == 0 {
		t.Fatal("collector never swept")
	}
	for _, cfg := range []struct {
		shards   int
		parallel bool
	}{{2, false}, {4, false}, {2, true}, {4, true}} {
		gotTrace, gotSweeps, gotDecisions := runPolicyShardWorkload(t, cfg.shards, cfg.parallel)
		if gotTrace != baseTrace {
			t.Errorf("shards=%d parallel=%v: decision trace diverged\n--- 1 shard:\n%s\n--- got:\n%s",
				cfg.shards, cfg.parallel, baseTrace, gotTrace)
		}
		if gotSweeps != baseSweeps || gotDecisions != baseDecisions {
			t.Errorf("shards=%d parallel=%v: sweeps=%d decisions=%d, want %d/%d",
				cfg.shards, cfg.parallel, gotSweeps, gotDecisions, baseSweeps, baseDecisions)
		}
	}
}

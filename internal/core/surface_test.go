package core_test

import (
	"strings"
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/core"
	"demosmp/internal/kernel"
	"demosmp/internal/link"
	"demosmp/internal/workload"
)

// TestClusterSurface exercises the remaining accessors and SpawnVM.
func TestClusterSurface(t *testing.T) {
	var sink strings.Builder
	c, err := core.New(core.Options{
		Machines:    2,
		Switchboard: true,
		PM:          true,
		TraceSink:   &sink,
		TraceCap:    256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Machines() != 2 || c.Engine() == nil || c.Tracer() == nil || c.Network() == nil {
		t.Fatal("accessors")
	}
	pid, err := c.SpawnVM(2, `
	start:	movi r0, 5
		sys exit
	`)
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	if c.Now() == 0 {
		t.Fatal("clock did not advance")
	}
	e, m, ok := c.ExitOf(pid)
	if !ok || m != 2 || e.Code != 5 {
		t.Fatalf("SpawnVM result: %+v %v %v", e, m, ok)
	}
	if !strings.Contains(sink.String(), "spawn") {
		t.Fatal("trace sink saw nothing")
	}
	// Bad assembly reports an error.
	if _, err := c.SpawnVM(1, "bogus r9"); err == nil {
		t.Fatal("bad asm accepted")
	}
	// Spawn on a nonexistent machine.
	if _, err := c.SpawnVM(99, "nop\nsys exit"); err == nil {
		t.Fatal("machine 99 accepted")
	}
}

// TestStatsTotals covers the aggregate helpers against a real migration
// with traffic.
func TestStatsTotals(t *testing.T) {
	c := full(t, 2, nil)
	server, _ := c.Spawn(1, kernel.SpawnSpec{Program: workload.EchoServer(20)})
	client, _ := c.Spawn(2, kernel.SpawnSpec{
		Program: workload.RequestClient(20),
		Links:   []link.Link{{Addr: addr.At(server, 1)}},
	})
	c.RunFor(4000)
	c.Migrate(server, 2)
	c.Run()
	if e, _, _ := c.ExitOf(client); e.Code != 20 {
		t.Fatalf("client rounds %d", e.Code)
	}
	s := c.Stats()
	if s.TotalForwarded() == 0 || s.TotalLinkUpdates() == 0 || s.TotalMigrations() != 1 {
		t.Fatalf("totals: fwd=%d upd=%d mig=%d",
			s.TotalForwarded(), s.TotalLinkUpdates(), s.TotalMigrations())
	}
}

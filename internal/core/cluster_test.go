package core_test

import (
	"fmt"
	"strings"
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/core"
	"demosmp/internal/kernel"
	"demosmp/internal/link"
	"demosmp/internal/memsched"
	"demosmp/internal/policy"
	"demosmp/internal/workload"
)

func full(t *testing.T, machines int, mut func(*core.Options)) *core.Cluster {
	t.Helper()
	opts := core.Options{
		Machines:    machines,
		Seed:        3,
		Switchboard: true,
		PM:          true,
		MemSched:    true,
		FS:          true,
		Shell:       true,
		Programs: map[string]core.ProgramFactory{
			"cpu": func(args []string) (kernel.SpawnSpec, error) {
				return kernel.SpawnSpec{Program: workload.CPUBound(500)}, nil
			},
		},
	}
	if mut != nil {
		mut(&opts)
	}
	c, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBootFullSystem(t *testing.T) {
	c := full(t, 3, nil)
	c.Run()
	for _, pid := range []addr.ProcessID{
		c.SwitchboardPID, c.PMPID, c.MemSchedPID,
		c.DiskPID, c.CachePID, c.FilePID, c.DirPID, c.ShellPID,
	} {
		if pid.IsNil() {
			t.Fatal("a system process was not booted")
		}
		if _, ok := c.Locate(pid); !ok {
			t.Fatalf("system process %v vanished", pid)
		}
	}
}

func TestShellSession(t *testing.T) {
	c := full(t, 3, func(o *core.Options) { o.LoadReportEvery = 50000 })
	c.Run()
	cmds := []string{"help", "whoami", "lookup fs.dir", "lookup nosuch", "run 2 cpu", "ps", "bogus"}
	for _, cmd := range cmds {
		if cmd == "ps" {
			// Let a round of load reports reach the process manager
			// so ps has machine lines to show.
			c.RunFor(200000)
		}
		if err := c.ShellCommand(cmd); err != nil {
			t.Fatal(err)
		}
		c.Run()
	}
	out := strings.Join(c.Console(c.ShellPID), "\n")
	for _, want := range []string{
		"commands:", "shell p1.", "lookup: link to", "not found",
		"spawned:", "unknown command: bogus",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("shell output missing %q:\n%s", want, out)
		}
	}
	// ps must list machines with load lines.
	if !strings.Contains(out, "m1 cpu=") {
		t.Fatalf("ps output missing:\n%s", out)
	}
}

func TestShellMigrateCommand(t *testing.T) {
	c := full(t, 3, nil)
	pid, err := c.SpawnProgram(2, workload.CPUBound(200000))
	if err != nil {
		t.Fatal(err)
	}
	c.RunFor(5000)
	if err := c.ShellCommand(fmt.Sprintf("migrate %d.%d 3", pid.Creator, pid.Local)); err != nil {
		t.Fatal(err)
	}
	c.Run()
	e, m, ok := c.ExitOf(pid)
	if !ok || m != 3 {
		t.Fatalf("process finished on %v (ok=%v), want m3", m, ok)
	}
	if e.Code != workload.CPUBoundResult(200000) {
		t.Fatalf("wrong result after shell migration: %d", e.Code)
	}
	out := strings.Join(c.Console(c.ShellPID), "\n")
	if !strings.Contains(out, "migrated:") {
		t.Fatalf("shell did not report the migration:\n%s", out)
	}
}

func TestClusterMigrateViaPM(t *testing.T) {
	c := full(t, 2, nil)
	pid, _ := c.SpawnProgram(1, workload.CPUBound(100000))
	c.RunFor(3000)
	if err := c.Migrate(pid, 2); err != nil {
		t.Fatal(err)
	}
	c.Run()
	if _, m, ok := c.ExitOf(pid); !ok || m != 2 {
		t.Fatalf("exit machine %v ok=%v", m, ok)
	}
	// The PM's location table learned the move.
	if at := c.PM().Locations[pid]; at != 2 {
		t.Fatalf("PM thinks %v is at %v", pid, at)
	}
}

func TestSelfMigration(t *testing.T) {
	c := full(t, 3, nil)
	pid, err := c.SpawnProgram(1, workload.SelfMigrator(4000, 3))
	if err != nil {
		t.Fatal(err)
	}
	c.Run()
	e, m, ok := c.ExitOf(pid)
	if !ok {
		t.Fatal("self-migrator never finished")
	}
	if m != 3 {
		t.Fatalf("finished on %v, want m3 (its own request)", m)
	}
	if e.Code != workload.CPUBoundResult(4000) {
		t.Fatalf("result %d corrupted by self-migration", e.Code)
	}
}

func TestFSClientsViaCluster(t *testing.T) {
	c := full(t, 3, nil)
	var pids []addr.ProcessID
	for i := 0; i < 3; i++ {
		pid, err := c.SpawnFSClient(2, fmt.Sprintf("file%d", i), 5, 700)
		if err != nil {
			t.Fatal(err)
		}
		pids = append(pids, pid)
	}
	c.Run()
	for _, pid := range pids {
		e, _, ok := c.ExitOf(pid)
		if !ok || e.Code != 5 {
			t.Fatalf("fs client %v verified %d/5 (ok=%v)", pid, e.Code, ok)
		}
	}
}

func TestThresholdPolicyBalancesLoad(t *testing.T) {
	c := full(t, 3, func(o *core.Options) {
		o.Policy = policy.NewThreshold(60, 30, 200000)
		o.LoadReportEvery = 100000
	})
	// Pile CPU-bound work onto machine 2; machines 1 and 3 idle.
	var pids []addr.ProcessID
	for i := 0; i < 6; i++ {
		pid, _ := c.SpawnProgram(2, workload.CPUBound(400000))
		pids = append(pids, pid)
	}
	c.Run()
	for _, pid := range pids {
		e, _, ok := c.ExitOf(pid)
		if !ok || e.Code != workload.CPUBoundResult(400000) {
			t.Fatalf("process %v corrupted under policy migration", pid)
		}
	}
	if c.PM().PolicyDecisions == 0 {
		t.Fatal("threshold policy never migrated anything off the hot machine")
	}
	// At least one process must have finished away from machine 2.
	moved := 0
	for _, pid := range pids {
		if _, m, _ := c.ExitOf(pid); m != 2 {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no process actually ran elsewhere")
	}
}

func TestCommAffinityPolicy(t *testing.T) {
	c := full(t, 2, func(o *core.Options) {
		o.Policy = policy.NewCommAffinity(5, 200000)
		o.LoadReportEvery = 100000
	})
	// A sink on m2 and a chatter on m1 that talks to it constantly.
	sink, _ := c.Spawn(2, kernel.SpawnSpec{Body: &workload.Sink{}})
	chatter, _ := c.Spawn(1, kernel.SpawnSpec{
		Body:  &workload.Chatter{N: 600, Interval: 2000},
		Links: []link.Link{{Addr: addr.At(sink, 2)}},
	})
	c.Run()
	e, m, ok := c.ExitOf(chatter)
	if !ok || e.Code != 600 {
		t.Fatalf("chatter sent %d/600 (ok=%v)", e.Code, ok)
	}
	if m != 2 {
		t.Fatalf("chatter finished on %v; affinity policy should have moved it to m2", m)
	}
	if c.PM().PolicyDecisions == 0 {
		t.Fatal("no policy decision recorded")
	}
}

func TestDrainPolicyEvacuates(t *testing.T) {
	c := full(t, 3, func(o *core.Options) {
		o.Policy = policy.NewDrain(2)
		o.LoadReportEvery = 50000
	})
	var pids []addr.ProcessID
	for i := 0; i < 3; i++ {
		pid, _ := c.SpawnProgram(2, workload.CPUBound(300000))
		pids = append(pids, pid)
	}
	c.Run()
	for _, pid := range pids {
		e, m, ok := c.ExitOf(pid)
		if !ok || e.Code != workload.CPUBoundResult(300000) {
			t.Fatalf("drained process %v corrupted", pid)
		}
		if m == 2 {
			t.Fatalf("process %v still finished on the dying machine", pid)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64, string) {
		c := full(t, 3, func(o *core.Options) {
			o.Policy = policy.NewThreshold(60, 30, 200000)
			o.LoadReportEvery = 100000
		})
		for i := 0; i < 4; i++ {
			c.SpawnProgram(2, workload.CPUBound(200000))
		}
		c.SpawnFSClient(3, "det", 4, 600)
		c.Run()
		s := c.Stats()
		return s.TotalAdmin(), s.Net.Frames, fmt.Sprint(c.Reports())
	}
	a1, f1, r1 := run()
	a2, f2, r2 := run()
	if a1 != a2 || f1 != f2 || r1 != r2 {
		t.Fatalf("nondeterministic simulation: admin %d/%d frames %d/%d\n%s\n---\n%s",
			a1, a2, f1, f2, r1, r2)
	}
}

func TestMemSchedSeesReports(t *testing.T) {
	c := full(t, 2, func(o *core.Options) {
		o.LoadReportEvery = 50000
	})
	c.SpawnProgram(1, workload.CPUBound(100000))
	c.RunFor(400000)
	body, ok := c.Kernel(1).BodyOf(c.MemSchedPID)
	if !ok {
		t.Fatal("memsched gone")
	}
	sched := body.(*memsched.Scheduler)
	if len(sched.UsedKB) == 0 {
		t.Fatal("memory scheduler never received a forwarded load report")
	}
}

func TestStatsAggregation(t *testing.T) {
	c := full(t, 2, nil)
	pid, _ := c.SpawnProgram(1, workload.CPUBound(100000))
	c.RunFor(3000)
	c.Migrate(pid, 2)
	c.Run()
	s := c.Stats()
	if s.TotalMigrations() != 1 {
		t.Fatalf("migrations = %d", s.TotalMigrations())
	}
	if s.TotalAdmin() == 0 || s.Net.Frames == 0 {
		t.Fatal("stats did not aggregate")
	}
	reps := c.Reports()
	if len(reps) != 1 || reps[0].PID != pid {
		t.Fatalf("reports: %v", reps)
	}
}

package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/kernel"
	"demosmp/internal/link"
	"demosmp/internal/sim"
	"demosmp/internal/workload"
)

// TestSoakContinuousMigration is a deterministic soak: a dozen mixed
// processes (CPU jobs, echo pairs, file system clients) run while random
// migrations fire continuously at every live process — including the file
// system servers. At the end, every computation must have produced its
// exact expected result and the cluster-wide invariants must hold.
func TestSoakContinuousMigration(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for _, seed := range []int64{101, 202} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			c := full(t, 4, nil)

			type expect struct {
				pid  addr.ProcessID
				code int32
				name string
			}
			var expects []expect

			// CPU-bound jobs.
			for i := 0; i < 4; i++ {
				n := 100000 + rng.Intn(200000)
				pid, err := c.SpawnProgram(1+rng.Intn(4), workload.CPUBound(n))
				if err != nil {
					t.Fatal(err)
				}
				expects = append(expects, expect{pid, workload.CPUBoundResult(n), "cpu"})
			}
			// Echo pairs. The client's link carries the server's true
			// birth machine — a link can only ever be minted with a
			// location the process actually had (Figure 2-1).
			for i := 0; i < 2; i++ {
				rounds := 10 + rng.Intn(10)
				srvMachine := 1 + rng.Intn(4)
				server, _ := c.Spawn(srvMachine, kernel.SpawnSpec{Program: workload.EchoServer(rounds)})
				client, _ := c.Spawn(1+rng.Intn(4), kernel.SpawnSpec{
					Program: workload.RequestClient(rounds),
					Links:   []link.Link{{Addr: addr.At(server, addr.MachineID(srvMachine))}},
				})
				expects = append(expects, expect{client, int32(rounds), "echo-client"})
			}
			// File system clients.
			for i := 0; i < 3; i++ {
				rounds := 5 + rng.Intn(5)
				pid, err := c.SpawnFSClient(1+rng.Intn(4), fmt.Sprintf("soak%d", i), rounds, 600)
				if err != nil {
					t.Fatal(err)
				}
				expects = append(expects, expect{pid, int32(rounds), "fs-client"})
			}

			// Continuous random migrations: every ~40ms of simulated
			// time, pick any live process (servers included) and move
			// it somewhere random.
			for burst := 0; burst < 120; burst++ {
				c.RunFor(sim.Time(20000 + rng.Intn(40000)))
				var live []addr.ProcessID
				for m := 1; m <= 4; m++ {
					for _, info := range c.Kernel(m).Processes() {
						if info.State == kernel.StateForwarder ||
							info.PID == c.PMPID { // the PM drives migrations; skip
							continue
						}
						live = append(live, info.PID)
					}
				}
				if len(live) == 0 {
					break
				}
				victim := live[rng.Intn(len(live))]
				c.Migrate(victim, 1+rng.Intn(4))
			}
			c.Run()

			for _, ex := range expects {
				e, m, ok := c.ExitOf(ex.pid)
				if !ok {
					t.Fatalf("%s %v never finished", ex.name, ex.pid)
				}
				if e.Code != ex.code {
					t.Fatalf("%s %v: result %d, want %d (finished on %v)",
						ex.name, ex.pid, e.Code, ex.code, m)
				}
			}
			// Invariants: memory fully reclaimed for exited processes
			// (system servers may still hold images).
			s := c.Stats()
			if s.TotalMigrations() == 0 {
				t.Fatal("soak performed no migrations")
			}
			t.Logf("seed %d: %d migrations, %d forwards, %d link updates, %d admin msgs, t=%v",
				seed, s.TotalMigrations(), s.TotalForwarded(), s.TotalLinkUpdates(),
				s.TotalAdmin(), c.Now())
		})
	}
}

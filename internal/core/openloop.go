// Open-loop workload driver: one self-rescheduling arrival event per
// machine, scheduled on that machine's own engine (EngineOf), so the
// streaming generator works identically on the single-engine and sharded
// runtimes. Nothing is materialized up front — each machine holds one
// arrival cursor and the next arrival event; a million-process run costs
// one pending event per machine at any instant.
package core

import (
	"demosmp/internal/kernel"
	"demosmp/internal/proc"
	"demosmp/internal/workload"
)

// OpenLoopDriver reports spawn progress for a running open-loop workload.
// Counters are per-machine slots, each written only by its machine's shard
// goroutine, so reads are exact between runs and race-free during them.
type OpenLoopDriver struct {
	spawned []uint64 // indexed by machine id
	failed  []uint64
}

// Spawned returns the number of jobs started so far.
func (d *OpenLoopDriver) Spawned() uint64 { return sum(d.spawned) }

// Failed returns the number of arrivals whose spawn was rejected.
func (d *OpenLoopDriver) Failed() uint64 { return sum(d.failed) }

func sum(xs []uint64) uint64 {
	var t uint64
	for _, x := range xs {
		t += x
	}
	return t
}

// StartOpenLoop installs the streaming open-loop workload on every machine.
// Call after New and before Run; the arrival events are strong, so Run
// continues until every machine's stream is exhausted and all jobs exited.
func (c *Cluster) StartOpenLoop(cfg workload.OpenLoop) *OpenLoopDriver {
	d := &OpenLoopDriver{
		spawned: make([]uint64, c.Machines()+1),
		failed:  make([]uint64, c.Machines()+1),
	}
	for m := 1; m <= c.Machines(); m++ {
		c.armArrivals(m, workload.NewArrivals(cfg, m), d, cfg.Spin)
	}
	return d
}

// armArrivals schedules machine m's next arrival; the event spawns the job
// and re-arms for the following one (streaming: one pending event per
// machine, never the whole arrival sequence).
func (c *Cluster) armArrivals(m int, st *workload.Arrivals, d *OpenLoopDriver, spin bool) {
	eng := c.EngineOf(m)
	k := c.Kernel(m)
	// In Spin mode the service demand (µs) converts to an instruction
	// budget at the kernel's modeled instruction cost, so a spinner
	// occupies the CPU for the same simulated time the timer job would
	// have slept.
	instr := c.opts.Kernel.InstrCostNanos
	if instr == 0 {
		instr = 2000
	}
	var arm func()
	arm = func() {
		at, svc, ok := st.Next()
		if !ok {
			return
		}
		eng.At(at, "wl:arrival", func() {
			var body proc.Body
			if spin {
				work := int(uint64(svc) * 1000 / uint64(instr))
				if work < 1 {
					work = 1
				}
				body = &workload.Spinner{Work: work}
			} else {
				body = &workload.Job{Service: svc}
			}
			if _, err := k.Spawn(kernel.SpawnSpec{Body: body}); err != nil {
				d.failed[m]++
			} else {
				d.spawned[m]++
			}
			arm()
		})
	}
	arm()
}

// jobBody is a compile-time check that the open-loop job satisfies the
// process contract the spawn path expects.
var _ proc.Body = (*workload.Job)(nil)

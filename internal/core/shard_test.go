package core_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/core"
	"demosmp/internal/kernel"
	"demosmp/internal/link"
	"demosmp/internal/msg"
	"demosmp/internal/netw"
	"demosmp/internal/obs"
	"demosmp/internal/sim"
	"demosmp/internal/workload"
)

type shardSink struct{ n int }

func (s *shardSink) DeliverFrame(m *msg.Message) { s.n++ }

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// TestShardHotPathZeroAlloc locks in the canonical delivery path's
// zero-allocation invariant: a lossless send to a shard-local machine
// (canonSend -> pendPush -> gate pump -> pendPop -> deliver) touches no
// allocator once the event arena and the pending heap are warm. This is the
// dynamic guard cited by the //demos:hotpath annotations in
// internal/netw/canon.go.
func TestShardHotPathZeroAlloc(t *testing.T) {
	e := sim.NewEngine(1)
	nw := netw.New(e, netw.Config{})
	nw.SetCanonical(2, 1,
		func(addr.MachineID) bool { return true },
		func(netw.RemoteFrame) {})
	nw.RegisterObs(obs.NewRegistry())
	nw.Attach(1, &shardSink{})
	sink := &shardSink{}
	nw.Attach(2, sink)
	m := &msg.Message{
		Kind: msg.KindUser,
		From: addr.At(addr.ProcessID{Creator: 1, Local: 1}, 1),
		To:   addr.At(addr.ProcessID{Creator: 2, Local: 1}, 2),
		Body: make([]byte, 32),
	}
	warm := func() {
		nw.Send(1, 2, m)
		for e.Step() {
		}
	}
	for i := 0; i < 64; i++ { // warm arena, pending heap, counters
		warm()
	}
	before := sink.n
	if n := testing.AllocsPerRun(200, warm); n != 0 {
		t.Fatalf("canonical send+pump+deliver allocates %.1f/op, want 0", n)
	}
	if sink.n <= before {
		t.Fatal("frames were not delivered during the measurement")
	}
}

// TestShardOptionValidation pins the sharded runtime's option surface: a
// lossy (ARQ) network is ACCEPTED — the machine-anchored canonical ARQ
// (netw/arq.go) made the old LossRate rejection obsolete — while a
// streaming trace sink is still refused, with an error that points at the
// lossy-sharded support and the TraceRecords() alternative.
func TestShardOptionValidation(t *testing.T) {
	c, err := core.New(core.Options{Machines: 4, Shards: 2, Net: netw.Config{LossRate: 0.1}})
	if err != nil {
		t.Fatalf("lossy network rejected with shards: %v", err)
	}
	if !c.NetLossy() {
		t.Fatal("NetLossy() = false on a lossy sharded cluster")
	}
	_, err = core.New(core.Options{Machines: 4, Shards: 2, TraceSink: discard{}})
	if err == nil {
		t.Fatal("trace sink accepted with shards")
	}
	for _, want := range []string{"TraceRecords()", "machine-anchored ARQ"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("TraceSink rejection %q does not mention %q", err, want)
		}
	}
}

// shardRun is everything the shard-count invariance test compares: if ANY
// of these differ between shard counts, determinism is broken.
type shardRun struct {
	trace   string
	stats   netw.Stats
	metrics string
	exits   string
	spawned uint64
}

// runShardWorkload drives one fixed mixed workload — cross-machine chatter,
// a request/reply conversation, a streaming open-loop job mix, and a
// scripted mid-stream migration — on a cluster with the given shard count.
func runShardWorkload(t *testing.T, shards int, mut func(*core.Options)) shardRun {
	t.Helper()
	opts := core.Options{Machines: 6, Seed: 9, Shards: shards, Switchboard: true}
	if mut != nil {
		mut(&opts)
	}
	c, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	sink4, err := c.Spawn(4, kernel.SpawnSpec{Body: &workload.Sink{}})
	if err != nil {
		t.Fatal(err)
	}
	sink5, _ := c.Spawn(5, kernel.SpawnSpec{Body: &workload.Sink{}})
	chat1, _ := c.Spawn(1, kernel.SpawnSpec{
		Body:  &workload.Chatter{N: 40, Interval: 500},
		Links: []link.Link{{Addr: addr.At(sink4, 4)}},
	})
	chat2, _ := c.Spawn(2, kernel.SpawnSpec{
		Body:  &workload.Chatter{N: 25, Interval: 800},
		Links: []link.Link{{Addr: addr.At(sink5, 5)}},
	})
	server, _ := c.Spawn(3, kernel.SpawnSpec{Program: workload.EchoServer(30)})
	client, _ := c.Spawn(6, kernel.SpawnSpec{
		Program: workload.RequestClient(30),
		Links:   []link.Link{{Addr: addr.At(server, 3)}},
	})
	d := c.StartOpenLoop(workload.OpenLoop{
		Seed: 5, MeanGap: 900, PerMachine: 12, LongFraction: 0.25,
	})
	// Scripted migration mid-chatter: scheduled on machine 1's own engine,
	// so the trigger is machine-anchored and lands identically under every
	// sharding. The move crosses shards for every shards > 1.
	c.EngineOf(1).At(6000, "test:migrate", func() {
		c.Kernel(1).RequestMigrationOf(addr.At(chat1, 1), 3)
	})
	c.Run()

	var exits []string
	for _, pid := range []addr.ProcessID{chat1, chat2, client} {
		e, m, ok := c.ExitOf(pid)
		exits = append(exits, fmt.Sprintf("%v: code=%d m=%d ok=%v", pid, e.Code, m, ok))
	}

	// Per-kernel envelope-pool gauges are the one legitimately
	// shard-dependent corner of the snapshot: a cross-shard frame ships as
	// a clone while the pooled original retires to the SENDER's pool, so
	// which kernel's pool an envelope lands in depends on the sharding.
	// The conservation law must still hold within every configuration.
	snap := c.ObsSnapshot()
	var news, free, held uint64
	var rows []string
	for _, m := range snap.Metrics {
		switch {
		case strings.HasSuffix(m.Name, ".pool_news"):
			news += m.Value
		case strings.HasSuffix(m.Name, ".pool_free"):
			free += m.Value
		case strings.HasSuffix(m.Name, ".pool_held"):
			held += m.Value
		default:
			rows = append(rows, fmt.Sprintf("%+v", m))
		}
	}
	if news != free+held {
		t.Fatalf("%d shards: envelope conservation broken: news=%d != free=%d + held=%d",
			c.Shards(), news, free, held)
	}
	return shardRun{
		trace:   fmt.Sprint(c.TraceRecords()),
		stats:   c.NetStats(),
		metrics: strings.Join(rows, "\n"),
		exits:   fmt.Sprint(exits),
		spawned: d.Spawned(),
	}
}

// TestShardCountInvariance is the tentpole determinism pin: the same seed
// and workload must produce bit-identical traces, network counters, merged
// observability snapshots, and process outcomes for 1, 2, and 4 shards —
// and again with parallel round execution.
func TestShardCountInvariance(t *testing.T) {
	base := runShardWorkload(t, 1, nil)
	if base.spawned == 0 {
		t.Fatal("open-loop workload never spawned")
	}
	if base.stats.Frames == 0 {
		t.Fatal("workload generated no network traffic; the invariance check is vacuous")
	}
	for _, shards := range []int{2, 4} {
		got := runShardWorkload(t, shards, nil)
		if got.trace != base.trace {
			t.Errorf("%d shards: trace diverged from 1 shard (lens %d vs %d)",
				shards, len(got.trace), len(base.trace))
		}
		if !reflect.DeepEqual(got.stats, base.stats) {
			t.Errorf("%d shards: net stats diverged:\n%+v\nvs\n%+v", shards, got.stats, base.stats)
		}
		if got.metrics != base.metrics {
			t.Errorf("%d shards: merged obs snapshot diverged", shards)
		}
		if got.exits != base.exits {
			t.Errorf("%d shards: exits diverged:\n%s\nvs\n%s", shards, got.exits, base.exits)
		}
		if got.spawned != base.spawned {
			t.Errorf("%d shards: open-loop spawned %d vs %d", shards, got.spawned, base.spawned)
		}
	}
	par := runShardWorkload(t, 4, func(o *core.Options) { o.ShardParallel = true })
	if par.trace != base.trace || !reflect.DeepEqual(par.stats, base.stats) || par.metrics != base.metrics {
		t.Error("parallel rounds diverged from sequential execution")
	}
}

// TestShardLossyInvariance extends the determinism pin to a lossy network:
// with the machine-anchored ARQ armed (LossRate > 0), the same seed must
// still produce bit-identical traces, summed network counters (including
// drops and retransmits), merged snapshots, and process outcomes across
// 1, 2, and 4 shards, sequential or parallel. This is the property the old
// `Shards requires a lossless network` rejection existed to protect.
func TestShardLossyInvariance(t *testing.T) {
	mut := func(o *core.Options) {
		o.Net.LossRate = 0.03
		o.Net.RetransTimeout = 4000
		o.Net.MaxRetries = 60
	}
	base := runShardWorkload(t, 1, mut)
	if base.stats.Dropped == 0 {
		t.Fatal("lossy run dropped no frames; the ARQ invariance check is vacuous")
	}
	if base.stats.Retransmits == 0 {
		t.Fatal("lossy run retransmitted nothing; the ARQ invariance check is vacuous")
	}
	for _, shards := range []int{2, 4} {
		got := runShardWorkload(t, shards, mut)
		if got.trace != base.trace {
			t.Errorf("%d shards: lossy trace diverged from 1 shard (lens %d vs %d)",
				shards, len(got.trace), len(base.trace))
		}
		if !reflect.DeepEqual(got.stats, base.stats) {
			t.Errorf("%d shards: lossy net stats diverged:\n%+v\nvs\n%+v", shards, got.stats, base.stats)
		}
		if got.metrics != base.metrics {
			t.Errorf("%d shards: lossy merged obs snapshot diverged", shards)
		}
		if got.exits != base.exits {
			t.Errorf("%d shards: lossy exits diverged:\n%s\nvs\n%s", shards, got.exits, base.exits)
		}
	}
	par := runShardWorkload(t, 4, func(o *core.Options) {
		mut(o)
		o.ShardParallel = true
	})
	if par.trace != base.trace || !reflect.DeepEqual(par.stats, base.stats) || par.metrics != base.metrics {
		t.Error("lossy parallel rounds diverged from sequential execution")
	}
}

// TestShardFaultInjection drives the one-shot fault injections across a
// shard boundary: machine 1 (shard 0) sends to machine 2 (shard 1) with
// duplicates, a delay, and a loss burst injected on the sending shard. The
// ARQ's receiver dedup must keep delivery at-most-once (here: exactly-once,
// since retries outlast every fault), and the lossless variant must account
// every frame it abandons — orphan_dropped for cross-shard frames landing
// on a crashed machine, send_from_down for a crashed sender — through the
// merged obs registry.
func TestShardFaultInjection(t *testing.T) {
	t.Run("arq-at-most-once", func(t *testing.T) {
		c, err := core.New(core.Options{
			Machines: 4, Seed: 11, Shards: 2,
			Net: netw.Config{LossRate: 0.05, RetransTimeout: 3000, MaxRetries: 50},
		})
		if err != nil {
			t.Fatal(err)
		}
		sink := &workload.Sink{}
		sinkPID, err := c.Spawn(2, kernel.SpawnSpec{Body: sink})
		if err != nil {
			t.Fatal(err)
		}
		const sent = 30
		if _, err := c.Spawn(1, kernel.SpawnSpec{
			Body:  &workload.Chatter{N: sent, Interval: 400},
			Links: []link.Link{{Addr: addr.At(sinkPID, 2)}},
		}); err != nil {
			t.Fatal(err)
		}
		// All three injections armed before the run: 5 wire duplicates and
		// one delayed (reordered) frame on the cross-shard pair 1->2, plus a
		// cluster-wide 90% loss burst over the first 6ms.
		c.DuplicateNext(1, 2, 5)
		c.DelayNext(1, 2, 1500)
		c.LossBurst(0.9, 6000)
		c.Run()

		if got := len(sink.Got); got != sent {
			t.Fatalf("sink received %d messages, want exactly %d (at-most-once under dup injection, ARQ recovery under loss)", got, sent)
		}
		snap := c.ObsSnapshot()
		if v := snap.Value("netw.dup_injected"); v != 5 {
			t.Errorf("registry dup_injected = %d, want 5", v)
		}
		if v := snap.Value("netw.delay_injected"); v != 1 {
			t.Errorf("registry delay_injected = %d, want 1", v)
		}
		if v := snap.Value("netw.duplicates"); v < 5 {
			t.Errorf("registry duplicates = %d, want >= 5 (each injected dup must be suppressed or force a suppressed retransmit)", v)
		}
		if v := snap.Value("netw.dropped"); v == 0 {
			t.Error("loss burst dropped nothing; the recovery half of the test is vacuous")
		}
		if c.InflightARQ() != 0 || c.PendingFrames() != 0 {
			t.Errorf("quiescent cluster still holds ARQ state: inflight=%d pending=%d",
				c.InflightARQ(), c.PendingFrames())
		}
	})

	t.Run("lossless-orphan-and-down-accounting", func(t *testing.T) {
		c, err := core.New(core.Options{Machines: 4, Seed: 7, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		sink := &workload.Sink{}
		sinkPID, err := c.Spawn(2, kernel.SpawnSpec{Body: sink})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Spawn(1, kernel.SpawnSpec{
			Body:  &workload.Chatter{N: 20, Interval: 500},
			Links: []link.Link{{Addr: addr.At(sinkPID, 2)}},
		}); err != nil {
			t.Fatal(err)
		}
		// Crash the receiver mid-stream, on its own shard's engine. Every
		// chatter frame sent after this crosses the shard boundary and lands
		// on a down machine: lossless mode has no retry, and the sender's
		// envelope pool lives on the other shard, so the drop must surface
		// as orphan_dropped (not vanish).
		c.EngineOf(2).At(3200, "test:crash", func() { c.Kernel(2).Crash() })
		c.Run()

		// A crashed machine attempting to transmit must be counted too.
		nw := c.NetworkOfShard(c.ShardOf(2))
		nw.Send(2, 1, &msg.Message{
			Kind: msg.KindUser,
			From: addr.At(sinkPID, 2),
			To:   addr.At(sinkPID, 1),
			Body: []byte("from the grave"),
		})
		c.Run()

		snap := c.ObsSnapshot()
		if v := snap.Value("netw.orphan_dropped"); v == 0 {
			t.Error("cross-shard frames to the crashed machine left no orphan_dropped accounting")
		}
		if v := snap.Value("netw.send_from_down"); v != 1 {
			t.Errorf("registry send_from_down = %d, want 1", v)
		}
		ns := c.NetStats()
		if ns.OrphanDropped == 0 || ns.SendFromDown != 1 {
			t.Errorf("summed NetStats disagree: orphan=%d send_from_down=%d", ns.OrphanDropped, ns.SendFromDown)
		}
		if got := len(sink.Got); got == 0 || got >= 20 {
			t.Errorf("sink received %d messages, want some but not all 20 (crash mid-stream)", got)
		}
	})
}

// TestShardPairLatencyLookahead pins conservative lookahead on a
// heterogeneous topology: the window is the true minimum over ordered
// pairs (not the uniform default), and the invariance guarantee holds
// under per-pair latencies.
func TestShardPairLatencyLookahead(t *testing.T) {
	pairLat := func(a, b addr.MachineID) sim.Time {
		// A fast local pair (1,2) inside an otherwise slow topology.
		if (a == 1 && b == 2) || (a == 2 && b == 1) {
			return 7
		}
		return 90
	}
	mut := func(o *core.Options) {
		o.Net.PairLatency = pairLat
		o.Net.Latency = 50
	}
	c, err := core.New(core.Options{Machines: 6, Seed: 1, Shards: 3,
		Net: netw.Config{Latency: 50, PairLatency: pairLat}})
	if err != nil {
		t.Fatal(err)
	}
	if w := c.Lookahead(); w != 7 {
		t.Fatalf("lookahead = %d, want 7 (min pair latency)", w)
	}
	base := runShardWorkload(t, 1, mut)
	for _, shards := range []int{2, 3} {
		got := runShardWorkload(t, shards, mut)
		if got.trace != base.trace || !reflect.DeepEqual(got.stats, base.stats) {
			t.Errorf("%d shards diverged under heterogeneous pair latency", shards)
		}
	}
}

// TestShardSection6Conformance re-runs the paper's §6 cost-model pins on a
// 2-shard cluster: splitting the runtime must not change the protocol's
// message economy — three data transfers, nine admin messages of 6–12
// bytes, and two extra messages per forwarded send.
func TestShardSection6Conformance(t *testing.T) {
	c, err := core.New(core.Options{Machines: 3, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	sink, _ := c.Spawn(3, kernel.SpawnSpec{Body: &workload.Sink{}})
	server, _ := c.Spawn(1, kernel.SpawnSpec{Body: &workload.Sink{}})
	c.Run()
	// Machine 1 is shard 0, machine 2 shard 1: this migration's whole
	// protocol conversation crosses the shard boundary.
	if err := c.Migrate(server, 2); err != nil {
		t.Fatal(err)
	}
	c.Run()

	led := c.Ledger()
	if led.Len() != 1 {
		t.Fatalf("merged ledger has %d records, want 1", led.Len())
	}
	rec := led.Records()[0]
	if !rec.OK || rec.PID != server || rec.From != 1 || rec.To != 2 {
		t.Fatalf("record identity wrong: %+v", rec)
	}
	if rec.MoveDataTransfers != 3 {
		t.Errorf("MoveDataTransfers = %d, want 3 (paper §6)", rec.MoveDataTransfers)
	}
	if rec.AdminMsgs != 9 {
		t.Errorf("AdminMsgs = %d, want 9 (paper §6)", rec.AdminMsgs)
	}
	if rec.AdminMinBytes < 6 || rec.AdminMaxBytes > 12 {
		t.Errorf("admin payload range [%d,%d]B outside the paper's 6–12B",
			rec.AdminMinBytes, rec.AdminMaxBytes)
	}

	// Two extra messages per forwarded send, measured through the summed
	// shard networks.
	before := c.NetStats().Frames
	c.Kernel(3).GiveMessageTo(addr.At(server, 2), addr.At(sink, 3), []byte("fresh"))
	c.Run()
	direct := c.NetStats().Frames - before

	before = c.NetStats().Frames
	c.Kernel(3).GiveMessageTo(addr.At(server, 1), addr.At(sink, 3), []byte("stale"))
	c.Run()
	stale := c.NetStats().Frames - before
	if stale-direct != 2 {
		t.Errorf("extra messages per forward = %d (direct=%d stale=%d), want 2 (paper §6)",
			stale-direct, direct, stale)
	}

	// The merged registry agrees with the merged struct counters.
	snap := c.ObsSnapshot()
	if v := snap.Value("kernel.m1.migrations_out"); v != 1 {
		t.Errorf("registry migrations_out = %d, want 1", v)
	}
	if v, w := snap.Value("netw.frames"), c.NetStats().Frames; v != w {
		t.Errorf("merged registry frames = %d, summed netw says %d", v, w)
	}
}

// TestShardScale1000 is the capacity pin: a 1000-machine cluster under a
// 100k-process open-loop workload, run on 4 parallel shards, completes (in
// -short mode too) with every arrival spawned and cross-machine traffic
// flowing.
func TestShardScale1000(t *testing.T) {
	c, err := core.New(core.Options{
		Machines: 1000, Seed: 17, Shards: 4, ShardParallel: true,
		TraceCap: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 100 jobs per machine = 100_000 processes over the run, streamed.
	d := c.StartOpenLoop(workload.OpenLoop{
		Seed: 3, MeanGap: 400, PerMachine: 100, LongFraction: 0.1,
	})
	// Sparse cross-machine conversations so frames cross shard boundaries
	// throughout the run.
	for m := 50; m <= 1000; m += 50 {
		sink, err := c.Spawn(m, kernel.SpawnSpec{Body: &workload.Sink{}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Spawn(m-49, kernel.SpawnSpec{
			Body:  &workload.Chatter{N: 20, Interval: 1500},
			Links: []link.Link{{Addr: addr.At(sink, addr.MachineID(m))}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	c.Run()
	if got := d.Spawned(); got != 100_000 {
		t.Fatalf("spawned %d open-loop jobs, want 100000", got)
	}
	if d.Failed() != 0 {
		t.Fatalf("%d spawns failed", d.Failed())
	}
	ns := c.NetStats()
	if ns.Frames == 0 || ns.Delivered == 0 {
		t.Fatalf("no cross-machine traffic: %+v", ns)
	}
	if c.Rounds() == 0 {
		t.Fatal("group never completed a synchronization round")
	}
	t.Logf("scale: fired=%d rounds=%d frames=%d final_t=%dµs",
		c.TotalFired(), c.Rounds(), ns.Frames, c.Now())
}

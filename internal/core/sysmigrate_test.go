package core_test

import (
	"fmt"
	"strings"
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/procmgr"
	"demosmp/internal/workload"
)

// The paper's §7: "There is no process state hidden in the various
// functional modules of the operating system" — so the operating system's
// own server processes are migratable. These tests move them.

// TestMigrateSwitchboard: the name service moves; lookups made through
// stale links still resolve, and newly spawned processes still find it.
func TestMigrateSwitchboard(t *testing.T) {
	c := full(t, 3, nil)
	c.Run()
	if err := c.Migrate(c.SwitchboardPID, 3); err != nil {
		t.Fatal(err)
	}
	c.Run()
	if m, _ := c.Locate(c.SwitchboardPID); m != 3 {
		t.Fatalf("switchboard on %v, want m3", m)
	}
	// The shell's switchboard link still points at m1; the lookup is
	// forwarded and must succeed anyway.
	if err := c.ShellCommand("lookup fs.dir"); err != nil {
		t.Fatal(err)
	}
	c.Run()
	out := strings.Join(c.Console(c.ShellPID), "\n")
	if !strings.Contains(out, "lookup: link to") {
		t.Fatalf("lookup through migrated switchboard failed:\n%s", out)
	}
	if f := c.Stats().PerKernel[1].Forwarded; f == 0 {
		t.Fatal("lookup did not exercise the forwarder")
	}
}

// TestMigrateProcessManager: the PM itself moves mid-operation. Kernels'
// PM links go stale; load reports, migration commands, and spawns keep
// working through forwarding, and the PM's state (location table) moves
// with it.
func TestMigrateProcessManager(t *testing.T) {
	c := full(t, 3, nil)
	pid, _ := c.SpawnProgram(2, workload.CPUBound(300000))
	c.RunFor(5000)

	// Move the process manager m1 -> m2. The *driver* here must not be
	// the PM (it cannot coordinate its own move in this implementation),
	// so ask kernel 3 directly — the mechanism is all kernel-side anyway.
	c.Kernel(3).RequestMigrationOf(addr.At(c.PMPID, 1), 2)
	c.RunFor(100000) // PM's move completes; the worker is still running
	if m, _ := c.Locate(c.PMPID); m != 2 {
		t.Fatalf("PM on %v, want m2", m)
	}

	// A shell command now travels via the stale PM link and forwarder.
	if err := c.ShellCommand(fmt.Sprintf("migrate %d.%d 3", pid.Creator, pid.Local)); err != nil {
		t.Fatal(err)
	}
	c.Run()
	e, m, ok := c.ExitOf(pid)
	if !ok || m != 3 || e.Code != workload.CPUBoundResult(300000) {
		t.Fatalf("migration via migrated PM: code=%d m=%v ok=%v", e.Code, m, ok)
	}
	// The PM's restored state knows the new location. (c.PM() would be
	// the pre-migration Go object; fetch the live body from m2.)
	body, ok := c.Kernel(2).BodyOf(c.PMPID)
	if !ok {
		t.Fatal("PM body missing on m2")
	}
	if at := body.(*procmgr.Manager).Locations[pid]; at != 3 {
		t.Fatalf("migrated PM's location table: %v", at)
	}
}

package core_test

import (
	"fmt"
	"strings"
	"testing"

	"demosmp/internal/core"
	"demosmp/internal/kernel"
	"demosmp/internal/memsched"
	"demosmp/internal/workload"
)

// TestShellSuspendResume drives §2.2's example through the whole stack:
// "the process manager can send a message to the process's kernel asking
// that the process be stopped" — and control follows the process.
func TestShellSuspendResume(t *testing.T) {
	c := full(t, 2, nil)
	pid, _ := c.SpawnProgram(2, workload.CPUBound(200000))
	c.RunFor(5000)

	if err := c.ShellCommand(fmt.Sprintf("suspend %d.%d", pid.Creator, pid.Local)); err != nil {
		t.Fatal(err)
	}
	c.Run()
	info, ok := c.Kernel(2).Process(pid)
	if !ok || info.State != kernel.StateSuspended {
		t.Fatalf("state after shell suspend: %+v", info)
	}

	// A suspended process can still be migrated — and stays suspended.
	c.Migrate(pid, 1)
	c.Run()
	info, ok = c.Kernel(1).Process(pid)
	if !ok || info.State != kernel.StateSuspended {
		t.Fatalf("state after migrating suspended process: %+v ok=%v", info, ok)
	}

	if err := c.ShellCommand(fmt.Sprintf("resume %d.%d", pid.Creator, pid.Local)); err != nil {
		t.Fatal(err)
	}
	c.Run()
	e, m, ok := c.ExitOf(pid)
	if !ok || m != 1 || e.Code != workload.CPUBoundResult(200000) {
		t.Fatalf("resumed process: code=%d on m%v ok=%v", e.Code, m, ok)
	}
}

func TestShellKill(t *testing.T) {
	c := full(t, 2, nil)
	pid, _ := c.SpawnProgram(2, workload.CPUBound(1<<30)) // effectively forever
	c.RunFor(5000)
	if err := c.ShellCommand(fmt.Sprintf("kill %d.%d", pid.Creator, pid.Local)); err != nil {
		t.Fatal(err)
	}
	c.Run()
	if _, ok := c.Kernel(2).Process(pid); ok {
		t.Fatal("killed process still present")
	}
	if _, _, ok := c.ExitOf(pid); !ok {
		t.Fatal("no exit record for killed process")
	}
	out := strings.Join(c.Console(c.ShellPID), "\n")
	if !strings.Contains(out, "signalled:") {
		t.Fatalf("shell output: %s", out)
	}
}

// TestRunAnyUsesMemSched: "run any <prog>" lets the memory scheduler place
// the process on the least-loaded machine.
func TestRunAnyUsesMemSched(t *testing.T) {
	c := full(t, 3, func(o *core.Options) { o.LoadReportEvery = 50000 })
	// Load machines 1 and 2 with big images so m3 is the best fit.
	c.Spawn(1, kernel.SpawnSpec{Body: &workload.Sink{}, ImageSize: 256 << 10})
	c.Spawn(2, kernel.SpawnSpec{Body: &workload.Sink{}, ImageSize: 256 << 10})
	// Let load reports reach PM and memsched.
	c.RunFor(200000)

	if err := c.ShellCommand("run any cpu"); err != nil {
		t.Fatal(err)
	}
	c.Run()
	out := strings.Join(c.Console(c.ShellPID), "\n")
	if !strings.Contains(out, "spawned:") {
		t.Fatalf("spawn failed:\n%s", out)
	}
	if !strings.Contains(out, "@ m3") {
		t.Fatalf("memsched did not place on the emptiest machine:\n%s", out)
	}
	body, ok := c.Kernel(1).BodyOf(c.MemSchedPID)
	if !ok {
		t.Fatal("memsched gone")
	}
	if body.(*memsched.Scheduler).Queries == 0 {
		t.Fatal("memsched was never consulted")
	}
}

package memory

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestReadZeroFill(t *testing.T) {
	img := NewImage(1000, nil)
	b := make([]byte, 1000)
	for i := range b {
		b[i] = 0xFF
	}
	if err := img.ReadAt(b, 0); err != nil {
		t.Fatal(err)
	}
	for i, v := range b {
		if v != 0 {
			t.Fatalf("byte %d = %d, want zero fill", i, v)
		}
	}
}

func TestWriteReadAcrossPages(t *testing.T) {
	img := NewImage(3*PageSize, nil)
	data := make([]byte, PageSize+100)
	for i := range data {
		data[i] = byte(i)
	}
	off := PageSize - 50 // straddles two page boundaries
	if err := img.WriteAt(data, off); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := img.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page write/read mismatch")
	}
}

func TestBoundsChecking(t *testing.T) {
	img := NewImage(100, nil)
	if err := img.ReadAt(make([]byte, 101), 0); err == nil {
		t.Fatal("read past end accepted")
	}
	if err := img.WriteAt([]byte{1}, 100); err == nil {
		t.Fatal("write past end accepted")
	}
	if err := img.ReadAt([]byte{1}, -1); err == nil {
		t.Fatal("negative offset accepted")
	}
	if err := img.ReadAt(make([]byte, 100), 0); err != nil {
		t.Fatalf("exact-size read rejected: %v", err)
	}
}

func TestSwapOutIn(t *testing.T) {
	st := NewStore(0)
	img := NewImage(4*PageSize, st)
	data := []byte("the process's code, data, and stack")
	img.WriteAt(data, 0)
	img.WriteAt(data, 2*PageSize)

	if err := img.SwapOut(0); err != nil {
		t.Fatal(err)
	}
	if img.ResidentPages() != 1 || img.SwappedPages() != 1 {
		t.Fatalf("resident=%d swapped=%d", img.ResidentPages(), img.SwappedPages())
	}
	if st.Used() != PageSize {
		t.Fatalf("store used = %d", st.Used())
	}
	// Read transparently swaps back in.
	got := make([]byte, len(data))
	if err := img.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted by swap round trip")
	}
	if img.SwappedPages() != 0 || st.Used() != 0 {
		t.Fatal("page not reclaimed from store")
	}
	if st.SwapIns() != 1 || st.SwapOuts() != 1 {
		t.Fatalf("counters: ins=%d outs=%d", st.SwapIns(), st.SwapOuts())
	}
}

func TestSwapUntouchedPageIsNoop(t *testing.T) {
	st := NewStore(0)
	img := NewImage(2*PageSize, st)
	if err := img.SwapOut(1); err != nil {
		t.Fatal(err)
	}
	if st.Used() != 0 {
		t.Fatal("untouched page went to swap")
	}
}

func TestSwapStoreCapacity(t *testing.T) {
	st := NewStore(PageSize) // one page
	img := NewImage(2*PageSize, st)
	img.WriteAt([]byte{1}, 0)
	img.WriteAt([]byte{2}, PageSize)
	if err := img.SwapOut(0); err != nil {
		t.Fatal(err)
	}
	if err := img.SwapOut(1); err != ErrSwapFull {
		t.Fatalf("expected ErrSwapFull, got %v", err)
	}
}

func TestSwapWithoutStore(t *testing.T) {
	img := NewImage(PageSize, nil)
	img.WriteAt([]byte{1}, 0)
	if err := img.SwapOut(0); err == nil {
		t.Fatal("swap without store accepted")
	}
}

func TestBytesFullCopy(t *testing.T) {
	st := NewStore(0)
	img := NewImage(600, st)
	data := make([]byte, 600)
	for i := range data {
		data[i] = byte(i * 7)
	}
	img.WriteAt(data, 0)
	img.SwapOut(1)
	got, err := img.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("Bytes() mismatch")
	}
}

func TestDiscardFreesSwap(t *testing.T) {
	st := NewStore(0)
	img := NewImage(2*PageSize, st)
	img.WriteAt([]byte{1}, 0)
	img.SwapOut(0)
	img.Discard()
	if st.Used() != 0 {
		t.Fatal("Discard leaked swap space")
	}
	if img.ResidentPages() != 0 {
		t.Fatal("Discard left resident pages")
	}
}

// Property: Image matches a plain byte slice under random ops, including
// random swap-outs.
func TestImageMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const size = 5*PageSize + 37
	st := NewStore(0)
	img := NewImage(size, st)
	ref := make([]byte, size)
	for i := 0; i < 3000; i++ {
		switch rng.Intn(4) {
		case 0, 1: // write
			off := rng.Intn(size)
			n := rng.Intn(size - off)
			b := make([]byte, n)
			rng.Read(b)
			if err := img.WriteAt(b, off); err != nil {
				t.Fatal(err)
			}
			copy(ref[off:], b)
		case 2: // read & compare
			off := rng.Intn(size)
			n := rng.Intn(size - off)
			b := make([]byte, n)
			if err := img.ReadAt(b, off); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b, ref[off:off+n]) {
				t.Fatalf("read mismatch at [%d,%d)", off, off+n)
			}
		case 3: // random swap-out
			img.SwapOut(rng.Intn(img.Pages()))
		}
	}
	got, _ := img.Bytes()
	if !bytes.Equal(got, ref) {
		t.Fatal("final image diverged from reference")
	}
}

func TestPageCounts(t *testing.T) {
	img := NewImage(PageSize*2+1, nil)
	if img.Pages() != 3 {
		t.Fatalf("Pages = %d, want 3", img.Pages())
	}
	if img.Size() != PageSize*2+1 {
		t.Fatalf("Size = %d", img.Size())
	}
}

// Package memory implements the paged process memory of DEMOS/MP.
//
// A process's program — code, data, and stack (Figure 2-2) — lives in an
// Image: a flat, page-granular address space whose pages may be resident or
// swapped out to a per-machine Store. The kernel's move-data facility reads
// and writes Images; per the paper, "the kernel move data operation handles
// reading or writing of swapped out memory and allocation of new virtual
// memory" (§3.1 step 5), so ReadAt/WriteAt transparently swap pages back in.
package memory

import (
	"fmt"
)

// PageSize is the page granularity in bytes.
const PageSize = 256

// Store is a per-machine swap backing store.
type Store struct {
	slots    map[int][]byte
	nextSlot int
	used     int // bytes
	capacity int // bytes; 0 = unlimited

	swapIns, swapOuts uint64
}

// NewStore creates a swap store bounded at capacity bytes (0 = unlimited).
func NewStore(capacity int) *Store {
	return &Store{slots: make(map[int][]byte), capacity: capacity}
}

// Used returns the bytes currently held in swap.
func (s *Store) Used() int { return s.used }

// SwapIns and SwapOuts return the page traffic counters.
func (s *Store) SwapIns() uint64  { return s.swapIns }
func (s *Store) SwapOuts() uint64 { return s.swapOuts }

// ErrSwapFull is returned when the store cannot hold another page.
var ErrSwapFull = fmt.Errorf("memory: swap store full")

func (s *Store) put(page []byte) (int, error) {
	if s.capacity > 0 && s.used+len(page) > s.capacity {
		return 0, ErrSwapFull
	}
	slot := s.nextSlot
	s.nextSlot++
	s.slots[slot] = page
	s.used += len(page)
	s.swapOuts++
	return slot, nil
}

func (s *Store) take(slot int) ([]byte, error) {
	page, ok := s.slots[slot]
	if !ok {
		return nil, fmt.Errorf("memory: no swap slot %d", slot)
	}
	delete(s.slots, slot)
	s.used -= len(page)
	s.swapIns++
	return page, nil
}

// Image is one process's memory: code, data, and stack in a single flat
// space. Pages are allocated lazily (an untouched page reads as zeros) and
// can be swapped out to a Store.
type Image struct {
	size  int
	pages [][]byte // nil = zero-fill or swapped
	slot  []int    // swap slot per page; -1 = not swapped
	store *Store
}

// NewImage allocates an image of size bytes backed (optionally) by store.
func NewImage(size int, store *Store) *Image {
	n := (size + PageSize - 1) / PageSize
	img := &Image{size: size, pages: make([][]byte, n), slot: make([]int, n), store: store}
	for i := range img.slot {
		img.slot[i] = -1
	}
	return img
}

// Size returns the image size in bytes.
func (img *Image) Size() int { return img.size }

// Pages returns the number of pages in the image.
func (img *Image) Pages() int { return len(img.pages) }

// ResidentPages counts pages currently held in real memory.
func (img *Image) ResidentPages() int {
	n := 0
	for i := range img.pages {
		if img.pages[i] != nil {
			n++
		}
	}
	return n
}

// SwappedPages counts pages currently in the swap store.
func (img *Image) SwappedPages() int {
	n := 0
	for i := range img.slot {
		if img.slot[i] >= 0 {
			n++
		}
	}
	return n
}

func (img *Image) check(off, n int) error {
	if off < 0 || n < 0 || off+n > img.size {
		return fmt.Errorf("memory: access [%d,%d) outside image of %d bytes", off, off+n, img.size)
	}
	return nil
}

// page returns page i resident, swapping it in if needed.
func (img *Image) page(i int) ([]byte, error) {
	if img.pages[i] != nil {
		return img.pages[i], nil
	}
	if img.slot[i] >= 0 {
		p, err := img.store.take(img.slot[i])
		if err != nil {
			return nil, err
		}
		img.slot[i] = -1
		img.pages[i] = p
		return p, nil
	}
	// Zero page: allocate on first touch.
	p := make([]byte, PageSize)
	img.pages[i] = p
	return p, nil
}

// ReadAt copies len(b) bytes starting at off into b, swapping pages in as
// needed.
func (img *Image) ReadAt(b []byte, off int) error {
	if err := img.check(off, len(b)); err != nil {
		return err
	}
	for n := 0; n < len(b); {
		pi := (off + n) / PageSize
		po := (off + n) % PageSize
		p, err := img.page(pi)
		if err != nil {
			return err
		}
		n += copy(b[n:], p[po:])
	}
	return nil
}

// WriteAt copies b into the image starting at off.
func (img *Image) WriteAt(b []byte, off int) error {
	if err := img.check(off, len(b)); err != nil {
		return err
	}
	for n := 0; n < len(b); {
		pi := (off + n) / PageSize
		po := (off + n) % PageSize
		p, err := img.page(pi)
		if err != nil {
			return err
		}
		n += copy(p[po:], b[n:])
	}
	return nil
}

// SwapOut moves page i to the store, freeing its frame.
func (img *Image) SwapOut(i int) error {
	if i < 0 || i >= len(img.pages) {
		return fmt.Errorf("memory: no page %d", i)
	}
	if img.pages[i] == nil {
		return nil // already swapped or never touched
	}
	if img.store == nil {
		return fmt.Errorf("memory: image has no swap store")
	}
	slot, err := img.store.put(img.pages[i])
	if err != nil {
		return err
	}
	img.slot[i] = slot
	img.pages[i] = nil
	return nil
}

// Bytes returns a full copy of the image contents (swapping everything in),
// used by the migration program transfer.
func (img *Image) Bytes() ([]byte, error) {
	b := make([]byte, img.size)
	if err := img.ReadAt(b, 0); err != nil {
		return nil, err
	}
	return b, nil
}

// Discard releases any swap slots held by the image. Called when the source
// kernel reclaims a migrated process (§3.1 step 7: "space for memory and
// tables is reclaimed").
func (img *Image) Discard() {
	for i := range img.slot {
		if img.slot[i] >= 0 {
			img.store.take(img.slot[i]) //nolint:errcheck // freeing
			img.slot[i] = -1
		}
		img.pages[i] = nil
	}
}

package kernel

// Observability wiring: how one kernel reports into the cluster's obs
// plane. Registration is cold and happens once at boot (core.New) or in a
// test harness; the only hot-path additions anywhere in the kernel are the
// nil-checked Histogram.Observe in enqueue and the nil-checked
// ledgerForward dispatch in forward — both guarded by TestHotPathZeroAlloc
// running with obs attached.

import (
	"strconv"

	"demosmp/internal/addr"
	"demosmp/internal/msg"
	"demosmp/internal/obs"
)

// adminOps is the fixed registration order for per-op admin counters: the
// nine administrative messages of §3.1 plus the abort used on fault paths.
// A fixed slice (not a map range) keeps registration, and therefore
// snapshot content, deterministic.
var adminOps = []msg.Op{
	msg.OpMigrateRequest, msg.OpMigrateAsk, msg.OpMigrateAccept,
	msg.OpMigrateRefuse, msg.OpMoveDataReq, msg.OpMigrateEstablished,
	msg.OpMigrateCleanup, msg.OpMigrateDone, msg.OpMigrateAbort,
}

// SetObs attaches the observability plane to this kernel: every Stats
// counter becomes a sampler in reg under "kernel.m<id>." (the Stats struct
// stays the single owner; the registry reads it live at snapshot time), a
// registry-owned delivery-latency histogram starts observing enqueue, and
// led (if non-nil) receives one MigrationRecord per completed outbound
// migration with post-completion forward/link-update attribution.
//
// Either argument may be nil to attach only half the plane. Call at most
// once per registry: metric names are unique per machine.
func (k *Kernel) SetObs(reg *obs.Registry, led *obs.Ledger) {
	k.led = led
	if reg == nil {
		return
	}
	p := "kernel.m" + strconv.Itoa(int(k.machine)) + "."
	s := &k.stats

	// Lifecycle and scheduling.
	reg.Sample(p+"spawned", func() uint64 { return s.Spawned })
	reg.Sample(p+"exited", func() uint64 { return s.Exited })
	reg.Sample(p+"crashes", func() uint64 { return s.Crashes })
	reg.Sample(p+"kills", func() uint64 { return s.Kills })
	reg.Sample(p+"slices", func() uint64 { return s.Slices })
	reg.Sample(p+"ctx_switches", func() uint64 { return s.CtxSwitches })
	reg.Sample(p+"cpu_busy_us", func() uint64 { return uint64(s.CPUBusy) })

	// Messaging.
	reg.Sample(p+"msgs_routed", func() uint64 { return s.MsgsRouted })
	reg.Sample(p+"msgs_enqueued", func() uint64 { return s.MsgsEnqueued })
	reg.Sample(p+"msgs_held", func() uint64 { return s.MsgsHeld })
	reg.Sample(p+"dead_letters", func() uint64 { return s.DeadLetters })

	// Forwarding (§4).
	reg.Sample(p+"forwarded", func() uint64 { return s.Forwarded })
	reg.Sample(p+"forwarded_pending", func() uint64 { return s.ForwardedPending })
	reg.Sample(p+"forwarders_installed", func() uint64 { return s.ForwardersInstalled })
	reg.Sample(p+"forwarders_reclaimed", func() uint64 { return s.ForwardersReclaimed })
	reg.SampleGauge(p+"forwarder_bytes", func() uint64 { return s.ForwarderBytes })

	// Link updating (§5).
	reg.Sample(p+"link_updates_sent", func() uint64 { return s.LinkUpdatesSent })
	reg.Sample(p+"link_updates_applied", func() uint64 { return s.LinkUpdatesApplied })
	reg.Sample(p+"links_fixed", func() uint64 { return s.LinksFixed })
	reg.Sample(p+"eager_updates_sent", func() uint64 { return s.EagerUpdatesSent })

	// Migration (§3, §6).
	reg.Sample(p+"migrations_out", func() uint64 { return s.MigrationsOut })
	reg.Sample(p+"migrations_in", func() uint64 { return s.MigrationsIn })
	reg.Sample(p+"migrations_refused", func() uint64 { return s.MigrationsRefused })
	reg.Sample(p+"migrations_failed", func() uint64 { return s.MigrationsFailed })
	reg.Sample(p+"revived", func() uint64 { return s.Revived })
	reg.Sample(p+"admin_bytes", func() uint64 { return s.AdminBytes })
	reg.Sample(p+"admin_total", func() uint64 { return s.AdminTotal() })
	for _, op := range adminOps {
		op := op
		reg.Sample(p+"admin_sent."+op.String(), func() uint64 { return s.AdminSent[op] })
	}

	// Move-data streams (protocol-level; netw owns the wire-level kinds).
	reg.Sample(p+"data_packets_sent", func() uint64 { return s.DataPacketsSent })
	reg.Sample(p+"data_bytes_sent", func() uint64 { return s.DataBytesSent })
	reg.Sample(p+"acks_sent", func() uint64 { return s.AcksSent })
	reg.Sample(p+"acks_received", func() uint64 { return s.AcksReceived })

	// Return-to-sender baseline and bounded buffers: the PR-3 drop
	// counters surface here so capped-buffer overflow is never silent.
	reg.Sample(p+"bounced", func() uint64 { return s.Bounced })
	reg.Sample(p+"locate_requests", func() uint64 { return s.LocateRequests })
	reg.Sample(p+"resubmitted", func() uint64 { return s.Resubmitted })
	reg.Sample(p+"locate_dropped", func() uint64 { return s.LocateDropped })
	reg.Sample(p+"console_dropped", func() uint64 { return s.ConsoleDropped })

	// Fault plane.
	reg.Sample(p+"restarts", func() uint64 { return s.Restarts })
	reg.Sample(p+"crash_wiped_msgs", func() uint64 { return s.CrashWipedMsgs })
	reg.Sample(p+"crash_lost_procs", func() uint64 { return s.CrashLostProcs })
	reg.Sample(p+"checkpoints_saved", func() uint64 { return s.CheckpointsSaved })
	reg.Sample(p+"undeliverable", func() uint64 { return s.Undeliverable })
	reg.Sample(p+"dropped_while_crashed", func() uint64 { return s.DroppedWhileCrashed })
	reg.Sample(p+"search_forwards", func() uint64 { return s.SearchForwards })
	reg.Sample(p+"searches_sent", func() uint64 { return s.SearchesSent })

	// Envelope pool levels: the registry view of the conservation law
	// (news == free + held) the chaos invariant checker audits.
	reg.SampleGauge(p+"pool_news", func() uint64 { n, _, _ := k.PoolStats(); return uint64(n) })
	reg.SampleGauge(p+"pool_free", func() uint64 { _, f, _ := k.PoolStats(); return uint64(f) })
	reg.SampleGauge(p+"pool_held", func() uint64 { _, _, h := k.PoolStats(); return uint64(h) })

	// The one registry-owned kernel metric: user-message delivery latency
	// (SentAt stamp to queue insertion) in simulated µs.
	k.hLat = reg.Histogram(p + "deliver_latency_us")
}

// ledgerRecord converts a completed source-side MigrationReport into the
// ledger's record form. The residual-dependency fields start at zero and
// grow through the pointer the forwarder keeps.
func ledgerRecord(rep MigrationReport) obs.MigrationRecord {
	return obs.MigrationRecord{
		PID: rep.PID, From: rep.From, To: rep.To,
		Start: rep.Start, End: rep.End,
		MoveDataTransfers: rep.MoveDataTransfers,
		ProgramBytes:      rep.ProgramBytes,
		ResidentBytes:     rep.ResidentBytes,
		SwappableBytes:    rep.SwappableBytes,
		DataPackets:       rep.DataPackets,
		AdminMsgs:         rep.AdminMsgs,
		AdminBytes:        rep.AdminBytes,
		AdminMinBytes:     rep.AdminMinBytes,
		AdminMaxBytes:     rep.AdminMaxBytes,
		PendingForwarded:  rep.PendingForwarded,
		OK:                rep.OK,
	}
}

// ledgerForward is the cold attribution half of forward: it charges a §4
// forward (and the §5 link update it will trigger) to the migration that
// left this forwarding address behind, and tracks the per-sender stale-send
// run length whose maximum is the §6 "convergence after 1–2 forwards"
// measurement. A sender's run stops growing once its link-update lands,
// because repaired senders stop arriving here at all.
func (k *Kernel) ledgerForward(f *Process, m *msg.Message) {
	rec := f.obsRec
	rec.ForwardsAbsorbed++
	if !k.shouldSendLinkUpdate(m) {
		return
	}
	rec.LinkUpdatesSent++
	if f.fwdSenders == nil {
		f.fwdSenders = make(map[addr.ProcessID]uint64)
	}
	f.fwdSenders[m.From.ID]++
	if n := f.fwdSenders[m.From.ID]; n > rec.ConvergenceForwards {
		rec.ConvergenceForwards = n
	}
}

package kernel

import (
	"encoding/binary"
	"fmt"
	"strings"

	"demosmp/internal/addr"
	"demosmp/internal/link"
	"demosmp/internal/msg"
	"demosmp/internal/proc"
	"demosmp/internal/sim"
	"demosmp/internal/trace"
)

// procCtx is the kernel-call interface handed to a body for one Step. The
// kernel owns a single reusable instance (sliceCtx, prebound as ctxI):
// runSlice repoints it at the scheduled process, and recvd accumulates the
// pooled envelopes handed out by Recv this slice so they can be released
// when Step returns.
type procCtx struct {
	k           *Kernel
	p           *Process
	msgsHandled int
	recvd       []*msg.Message
}

var _ proc.Context = (*procCtx)(nil)

func (c *procCtx) PID() addr.ProcessID     { return c.p.id }
func (c *procCtx) Machine() addr.MachineID { return c.k.machine }
func (c *procCtx) Now() sim.Time           { return c.k.eng.Now() }
func (c *procCtx) Rand() uint32            { return c.k.eng.Rand().Uint32() }

func (c *procCtx) Send(on link.ID, body []byte, carry ...link.ID) error {
	return c.send(on, msg.KindUser, msg.OpNone, body, carry)
}

func (c *procCtx) SendOp(on link.ID, op msg.Op, body []byte) error {
	if !c.p.privileged {
		return fmt.Errorf("kernel: %v is not privileged", c.p.id)
	}
	return c.send(on, msg.KindControl, op, body, nil)
}

//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestHotPathZeroAlloc/kernel-local-roundtrip in bench_hotpath_test.go.
func (c *procCtx) send(on link.ID, kind msg.Kind, op msg.Op, body []byte, carry []link.ID) error {
	l, ok := c.p.links.Get(on)
	if !ok {
		return c.errNoLink(on)
	}
	k := c.k
	m := k.getMsg()
	m.Kind = kind
	m.Op = op
	m.From = addr.At(c.p.id, k.machine)
	m.To = l.Addr
	m.DTK = l.Attrs&link.AttrDeliverToKernel != 0
	b := m.Body[:0]
	b = append(b, body...)
	m.Body = b
	for _, cid := range carry {
		cl, ok := c.p.links.Get(cid)
		if !ok {
			k.putMsg(m)
			return c.errUnknownCarry(cid)
		}
		m.Links = append(m.Links, cl)
		if cl.Attrs&link.AttrReply != 0 {
			// Passing a reply link transfers it.
			c.p.links.Remove(cid)
		}
	}
	if l.Attrs&link.AttrReply != 0 {
		// §2.4: reply links "are used only once to respond to requests".
		c.p.links.Remove(on)
	}
	c.p.msgsOut++
	c.p.msgsDelta++
	c.p.commTo[l.Addr.LastKnown]++
	c.p.commDelta[l.Addr.LastKnown]++
	k.route(m)
	return nil
}

// errNoLink / errUnknownCarry hold send's fmt work off the hot path.
func (c *procCtx) errNoLink(on link.ID) error {
	return fmt.Errorf("kernel: %v has no link %v", c.p.id, on)
}

func (c *procCtx) errUnknownCarry(cid link.ID) error {
	return fmt.Errorf("kernel: %v carries unknown link %v", c.p.id, cid)
}

// Recv pops the next queued message. The returned Delivery's Body (and
// Data) alias the message envelope, which is recycled when Step returns —
// bodies that retain payload bytes across steps must copy them out.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestHotPathZeroAlloc/kernel-local-roundtrip in bench_hotpath_test.go.
//demos:owner mailbox — Recv IS the blessed aliasing boundary: recvd holds popped envelopes until the slice drain in runSlice, and Delivery.Body/Data alias the envelope for exactly one step (ownership rule in the doc above; checked by demoslint ownership elsewhere).
func (c *procCtx) Recv() (proc.Delivery, bool) {
	if c.p.queue.Len() == 0 {
		return proc.Delivery{}, false
	}
	m := c.p.queue.pop()
	c.recvd = append(c.recvd, m)
	c.msgsHandled++
	d := proc.Delivery{From: m.From, Body: m.Body, Op: m.Op}
	if len(m.Links) > 0 {
		c.insertCarried(m, &d)
	}
	if m.Kind == msg.KindControl {
		switch m.Op {
		case msg.OpMoveWriteDone:
			if st, err := msg.DecodeXferStatus(m.Body); err == nil {
				d.Xfer, d.OK = st.Xfer, st.OK
			}
		case msg.OpMoveReadDone:
			if st, err := msg.DecodeXferStatus(m.Body); err == nil {
				d.Xfer, d.OK = st.Xfer, st.OK
				d.Data = m.Body[3:]
			}
		case msg.OpTimer:
			if len(m.Body) >= 2 {
				d.Xfer = binary.LittleEndian.Uint16(m.Body)
			}
		}
	}
	return d, true
}

// insertCarried moves a message's carried links into the receiver's table
// (cold: only messages that actually carry links get here).
func (c *procCtx) insertCarried(m *msg.Message, d *proc.Delivery) {
	for _, l := range m.Links {
		id, err := c.p.links.Insert(l)
		if err != nil {
			c.k.trace(trace.CatDeliver, "carried-link-dropped",
				fmt.Sprintf("%v: %v", c.p.id, err))
			break
		}
		d.Carried = append(d.Carried, id)
	}
}

func (c *procCtx) CreateLink(attrs link.Attr, area link.DataArea) (link.ID, error) {
	if !area.IsZero() {
		if c.p.image == nil {
			return link.NilID, fmt.Errorf("kernel: %v has no memory image for a data area", c.p.id)
		}
		if int(area.Offset)+int(area.Length) > c.p.image.Size() {
			return link.NilID, fmt.Errorf("kernel: data area [%d+%d) outside image of %d bytes",
				area.Offset, area.Length, c.p.image.Size())
		}
	}
	l := link.Link{Addr: addr.At(c.p.id, c.k.machine), Attrs: attrs, Area: area}
	return c.p.links.Insert(l)
}

func (c *procCtx) DestroyLink(id link.ID) error {
	if !c.p.links.Remove(id) {
		return fmt.Errorf("kernel: %v has no link %v", c.p.id, id)
	}
	return nil
}

func (c *procCtx) LinkAddr(id link.ID) (link.Link, bool) { return c.p.links.Get(id) }

func (c *procCtx) MintLink(l link.Link) (link.ID, error) {
	if !c.p.privileged {
		return link.NilID, fmt.Errorf("kernel: %v is not privileged", c.p.id)
	}
	return c.p.links.Insert(l)
}

// MoveTo streams data into the data area granted by a held link (§2.2).
func (c *procCtx) MoveTo(on link.ID, off uint32, data []byte, userXfer uint16) error {
	l, ok := c.p.links.Get(on)
	if !ok {
		return fmt.Errorf("kernel: %v has no link %v", c.p.id, on)
	}
	if l.Attrs&link.AttrDataWrite == 0 {
		return fmt.Errorf("kernel: link %v grants no write access", on)
	}
	if !l.Area.Contains(off, uint32(len(data))) {
		return fmt.Errorf("kernel: write [%d+%d) outside granted area of %d bytes",
			off, len(data), l.Area.Length)
	}
	kx := c.k.newXferID()
	base := l.Area.Offset + off
	n := c.k.streamWrite(l.Addr, kx, base, data)
	c.k.moveOps[kx] = &moveOp{
		initiator: c.p.id, userXfer: userXfer,
		packets: n, base: base, pkt: c.k.cfg.DataPacket,
		acked: make([]uint64, (n+63)/64),
	}
	return nil
}

// MoveFrom streams data out of the data area granted by a held link.
func (c *procCtx) MoveFrom(on link.ID, off, n uint32, userXfer uint16) error {
	l, ok := c.p.links.Get(on)
	if !ok {
		return fmt.Errorf("kernel: %v has no link %v", c.p.id, on)
	}
	if l.Attrs&link.AttrDataRead == 0 {
		return fmt.Errorf("kernel: link %v grants no read access", on)
	}
	if !l.Area.Contains(off, n) {
		return fmt.Errorf("kernel: read [%d+%d) outside granted area of %d bytes",
			off, n, l.Area.Length)
	}
	k := c.k
	pid := c.p.id
	kx := k.newXferID()
	st := k.registerInStream(kx, func(data []byte) {
		body := msg.XferStatus{Xfer: userXfer, OK: true}.Encode()
		body = append(body, data...)
		k.route(&msg.Message{
			Kind: msg.KindControl, Op: msg.OpMoveReadDone,
			From: addr.KernelAddr(k.machine), To: addr.At(pid, k.machine),
			Body: body,
		})
	})
	st.fail = func() {
		k.route(&msg.Message{
			Kind: msg.KindControl, Op: msg.OpMoveReadDone,
			From: addr.KernelAddr(k.machine), To: addr.At(pid, k.machine),
			Body: msg.XferStatus{Xfer: userXfer, OK: false}.Encode(),
		})
	}
	req := msg.MoveRead{PID: l.Addr.ID, AreaOff: l.Area.Offset, Off: off, Len: n, Xfer: kx}
	k.route(&msg.Message{
		Kind: msg.KindControl, Op: msg.OpMoveRead,
		From: addr.KernelAddr(k.machine), To: l.Addr, DTK: true,
		Body: req.Encode(),
	})
	return nil
}

func (c *procCtx) ImageRead(off int, b []byte) error {
	if c.p.image == nil {
		return fmt.Errorf("kernel: %v has no memory image", c.p.id)
	}
	return c.p.image.ReadAt(b, off)
}

func (c *procCtx) ImageWrite(off int, b []byte) error {
	if c.p.image == nil {
		return fmt.Errorf("kernel: %v has no memory image", c.p.id)
	}
	return c.p.image.WriteAt(b, off)
}

// SetTimer delivers an OpTimer message to this process after d. The timer
// is a normal routed message, so it follows the process through a
// migration.
func (c *procCtx) SetTimer(d sim.Time, tag uint16) {
	k := c.k
	to := addr.At(c.p.id, k.machine)
	body := binary.LittleEndian.AppendUint16(nil, tag)
	k.eng.After(d, "kernel:timer", func() {
		k.route(&msg.Message{
			Kind: msg.KindControl, Op: msg.OpTimer,
			From: addr.KernelAddr(k.machine), To: to,
			Body: body,
		})
	})
}

func (c *procCtx) Print(b []byte) {
	if len(c.k.console[c.p.id]) >= ConsoleLineCap {
		// Bounded per-PID console: a chatty process cannot grow kernel
		// memory without limit. Drops are counted, not silent.
		c.k.stats.ConsoleDropped++
		return
	}
	line := string(b)
	c.k.console[c.p.id] = append(c.k.console[c.p.id], line)
	if c.k.traceOn {
		c.k.trace(trace.CatConsole, "print", fmt.Sprintf("%v: %s", c.p.id, strings.TrimRight(line, "\n")))
	}
}

func (c *procCtx) Logf(format string, args ...any) {
	c.Print([]byte(fmt.Sprintf(format, args...)))
}

// RequestMigration forwards the wish to the process manager, or — when no
// manager is configured — lets the kernel act as its own manager.
func (c *procCtx) RequestMigration(dest addr.MachineID) error {
	req := msg.MigrateRequest{PID: c.p.id, Dest: dest}
	if !c.k.cfg.PMLink.IsNil() {
		c.k.route(&msg.Message{
			Kind: msg.KindControl, Op: msg.OpMigrateRequest,
			From: addr.At(c.p.id, c.k.machine), To: c.k.cfg.PMLink.Addr,
			Body: req.Encode(),
		})
		return nil
	}
	c.k.RequestMigrationOf(addr.At(c.p.id, c.k.machine), dest)
	return nil
}

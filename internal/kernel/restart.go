package kernel

import (
	"fmt"
	"sort"

	"demosmp/internal/addr"
	"demosmp/internal/msg"
	"demosmp/internal/trace"
)

// This file is the kernel half of the fault-injection plane (ISSUE 4): named
// kill-points at each step of the §3.1 migration protocol, crash/restart
// with checkpoint revival from simulated stable storage (§1), and the §4
// "search" escape hatch for messages whose forwarding addresses a crash
// orphaned ("Occasionally a message will arrive for a process that is
// neither resident nor has a forwarding address... the only recourse is to
// search for the process").

// KillPoint names a protocol stage at which a chaos scenario may crash the
// source or destination kernel. The eight points cover the eight steps of
// §3.1: two on the source before the transfer, three on the destination
// during it, two on the source at commit time, one on the destination at
// restart time.
type KillPoint uint8

const (
	// KPSourceFrozen: source, end of step 1 — process frozen and payloads
	// snapshotted, the ask not yet sent.
	KPSourceFrozen KillPoint = iota + 1
	// KPSourceAsked: source, end of step 2 — ask sent, watchdog not armed.
	KPSourceAsked
	// KPDestAllocated: destination, step 3 — empty state allocated, the
	// accept not yet sent.
	KPDestAllocated
	// KPDestMidTransfer: destination, step 4 — resident and swappable
	// regions buffered, program pull not yet issued.
	KPDestMidTransfer
	// KPDestTransferred: destination, end of step 5 — all three regions
	// buffered, the process not yet assembled, established not sent.
	KPDestTransferred
	// KPSourceEstablished: source, start of step 6 — established received,
	// pending queue not yet forwarded, process state intact.
	KPSourceEstablished
	// KPSourceCommitted: source, end of step 7 — forwarding address
	// installed and process state reclaimed, cleanup not yet sent.
	KPSourceCommitted
	// KPDestCleanup: destination, step 8 — cleanup received, the process
	// not yet restarted.
	KPDestCleanup
)

// KillPointCount is the number of defined kill-points.
const KillPointCount = int(KPDestCleanup)

// KillPoints lists all kill-points in protocol order (chaos drivers cycle
// through it for deterministic coverage).
func KillPoints() []KillPoint {
	out := make([]KillPoint, 0, KillPointCount)
	for kp := KPSourceFrozen; kp <= KPDestCleanup; kp++ {
		out = append(out, kp)
	}
	return out
}

func (kp KillPoint) String() string {
	switch kp {
	case KPSourceFrozen:
		return "src-frozen"
	case KPSourceAsked:
		return "src-asked"
	case KPDestAllocated:
		return "dst-allocated"
	case KPDestMidTransfer:
		return "dst-mid-transfer"
	case KPDestTransferred:
		return "dst-transferred"
	case KPSourceEstablished:
		return "src-established"
	case KPSourceCommitted:
		return "src-committed"
	case KPDestCleanup:
		return "dst-cleanup"
	default:
		return fmt.Sprintf("killpoint(%d)", uint8(kp))
	}
}

// SetFaultHook installs the chaos callback invoked at each kill-point with
// the migrating pid. The hook may call Crash(); the interrupted handler then
// returns immediately, freezing the machine mid-protocol.
func (k *Kernel) SetFaultHook(fn func(kp KillPoint, pid addr.ProcessID)) {
	k.faultHook = fn
}

// killpoint fires the fault hook (if any) and reports whether the hook
// crashed this kernel — in which case the calling handler must abandon the
// protocol step exactly where it stands.
func (k *Kernel) killpoint(kp KillPoint, pid addr.ProcessID) bool {
	if k.faultHook != nil {
		k.faultHook(kp, pid)
	}
	return k.crashed
}

// --- stable storage ---------------------------------------------------------

// SaveCheckpoint writes a checkpoint of a local process to this kernel's
// simulated stable storage, where Restart finds it after a crash (§1: "If
// the information necessary to transport a process is saved in stable
// storage, it may be possible to 'migrate' a process from a processor that
// has crashed to a working one."). The checkpoint is invalidated when the
// process migrates away or dies.
func (k *Kernel) SaveCheckpoint(pid addr.ProcessID) error {
	b, err := k.Checkpoint(pid)
	if err != nil {
		return err
	}
	k.stable[pid] = b
	k.stats.CheckpointsSaved++
	return nil
}

// StableCheckpoint returns the stored checkpoint bytes for pid (for
// cross-machine revival by a recovery driver).
func (k *Kernel) StableCheckpoint(pid addr.ProcessID) ([]byte, bool) {
	b, ok := k.stable[pid]
	return b, ok
}

// StableCheckpoints lists the pids with a checkpoint in stable storage, in
// deterministic order.
func (k *Kernel) StableCheckpoints() []addr.ProcessID {
	return sortedPIDKeys(len(k.stable), func(f func(addr.ProcessID)) {
		for pid := range k.stable {
			f(pid)
		}
	})
}

// --- crash / restart --------------------------------------------------------

// Restart recovers a crashed kernel: everything volatile — processes,
// forwarding addresses, link tables, in-flight migrations, held messages —
// is wiped (with full accounting), the machine rejoins the network, and
// checkpointed processes are revived from stable storage. The wipe is the
// paper's §4 fragility made concrete: every forwarding address this kernel
// held is gone, and traffic that depended on one now relies on the search
// fallback below.
func (k *Kernel) Restart() error {
	if !k.crashed {
		return fmt.Errorf("kernel %v: not crashed", k.machine)
	}

	// Abandon in-flight migrations. Watchdogs are canceled (their closures
	// also carry a crashed-guard, for events already past Cancel's reach).
	for _, om := range k.out {
		k.eng.Cancel(om.watchdog)
	}
	for _, im := range k.in {
		k.eng.Cancel(im.watchdog)
	}
	k.stats.MigrationsFailed += uint64(len(k.out) + len(k.in))

	// Wipe volatile process state, accounting for every destroyed message
	// and process so the cluster ledger still balances.
	for _, p := range k.sortedProcs() {
		for p.queue.Len() > 0 {
			k.noteCrashWiped(p.queue.pop())
		}
		if p.image != nil {
			p.image.Discard()
		}
		if p.state == StateForwarder {
			k.stats.ForwarderBytes -= ForwarderWireSize
		} else {
			k.lostPIDs[p.id] = true
			k.stats.CrashLostProcs++
		}
	}
	for _, pid := range sortedPIDKeys(len(k.pendingLocate), func(f func(addr.ProcessID)) {
		for pid := range k.pendingLocate {
			f(pid)
		}
	}) {
		for _, m := range k.pendingLocate[pid] {
			k.noteCrashWiped(m)
		}
	}

	k.procs = make(map[addr.ProcessID]*Process)
	k.local = nil
	k.runq = ring[*Process]{}
	k.out = make(map[addr.ProcessID]*outMigration)
	k.in = make(map[addr.ProcessID]*inMigration)
	k.xfersIn = make(map[uint16]*inStream)
	k.moveOps = make(map[uint16]*moveOp)
	k.pendingLocate = make(map[addr.ProcessID][]*msg.Message)
	k.memUsed = 0
	k.cpuFreeAt = k.eng.Now()

	k.crashed = false
	k.restarts++
	k.stats.Restarts++
	k.net.SetDown(k.machine, false)
	k.trace(trace.CatProc, "restart",
		fmt.Sprintf("m%d back up (restart %d)", uint16(k.machine), k.restarts))

	// Revive checkpointed processes in deterministic order. A revived pid
	// is no longer lost.
	for _, pid := range k.StableCheckpoints() {
		if _, err := k.Revive(k.stable[pid]); err == nil {
			delete(k.lostPIDs, pid)
		} else {
			k.trace(trace.CatProc, "revive-failed", fmt.Sprintf("%v: %v", pid, err))
		}
	}

	// Re-arm the periodic load report (its weak event chain died with the
	// crash-guard; Cancel tolerates an already-fired event).
	if k.cfg.LoadReportEvery > 0 {
		k.eng.Cancel(k.loadReportEv)
		k.scheduleLoadReport()
	}
	return nil
}

// noteCrashWiped accounts one queued message destroyed by a crash and
// recycles its envelope (the pool itself survives the crash, keeping the
// cluster-wide envelope conservation exact).
func (k *Kernel) noteCrashWiped(m *msg.Message) {
	k.stats.CrashWipedMsgs++
	if m.Orig != nil {
		k.putMsg(m.Orig)
	}
	k.putMsg(m)
}

// dropCrashed accounts a message that reached this kernel while it was
// down (stale local-delivery events, frames racing the crash instant).
func (k *Kernel) dropCrashed(m *msg.Message) {
	k.stats.DroppedWhileCrashed++
	if m.Orig != nil {
		k.putMsg(m.Orig)
	}
	k.putMsg(m)
}

// Restarts reports how many times this kernel recovered from a crash.
func (k *Kernel) Restarts() uint64 { return k.restarts }

// PendingMigrations reports in-flight migrations (both directions) — zero
// at quiescence on a live kernel, or the migration is stuck.
func (k *Kernel) PendingMigrations() int { return len(k.out) + len(k.in) }

// LostPIDs lists processes wiped by a crash and never revived, in
// deterministic order.
func (k *Kernel) LostPIDs() []addr.ProcessID {
	return sortedPIDKeys(len(k.lostPIDs), func(f func(addr.ProcessID)) {
		for pid := range k.lostPIDs {
			f(pid)
		}
	})
}

// PoolStats reports this kernel's envelope-pool ledger: envelopes the pool
// constructed, envelopes on the free list, and pooled envelopes currently
// held in process queues and locate buffers. At quiescence, cluster-wide,
// ΣNews == ΣFree + ΣHeld — anything else is a leaked or double-released
// envelope (chaos.CheckInvariants asserts this).
func (k *Kernel) PoolStats() (news, free, held int) {
	news, free = k.pool.News(), k.pool.Free()
	for _, p := range k.procs {
		for i := 0; i < p.queue.Len(); i++ {
			held += countPooled(p.queue.at(i))
		}
	}
	for _, msgs := range k.pendingLocate {
		for _, m := range msgs {
			held += countPooled(m)
		}
	}
	return news, free, held
}

func countPooled(m *msg.Message) int {
	n := 0
	if m.Pooled() {
		n++
	}
	if m.Orig != nil && m.Orig.Pooled() {
		n++
	}
	return n
}

// --- netw.FrameOwner --------------------------------------------------------

// ReleaseFrame implements netw.FrameOwner: the network took a private copy
// of a pooled envelope this kernel sent (ARQ copy-on-retain) and the
// original can be recycled.
func (k *Kernel) ReleaseFrame(m *msg.Message) { k.putMsg(m) }

// UndeliverableFrame implements netw.FrameOwner: the network abandoned a
// frame this kernel sent — receiver down, pair partitioned, or retries
// exhausted. Counted separately from DeadLetters (which means "delivered
// to a machine that had no such process").
func (k *Kernel) UndeliverableFrame(to addr.MachineID, m *msg.Message) {
	k.stats.Undeliverable++
	if k.traceOn {
		k.trace(trace.CatDeliver, "undeliverable",
			fmt.Sprintf("%v for %v: m%d unreachable", m.Kind, m.To.ID, uint16(to)))
	}
	if m.Orig != nil {
		k.putMsg(m.Orig)
	}
	k.putMsg(m)
}

// --- the §4 search escape hatch ---------------------------------------------

// searchFallback handles a message for a pid this kernel has no record of,
// on a kernel that has crashed at least once — the orphaned-forwarding-
// address case. Returns true if it consumed (rerouted or held) the message.
//
// Two regimes:
//   - Foreign pid: reroute once toward the pid's creator machine. Births
//     are the one location fact no crash here can erase, and the creator
//     either hosts the process, holds a forwarder, has its exit record, or
//     runs the broadcast search below.
//   - Home-born pid: hold the message and broadcast a search query to every
//     machine; the first useful reply resends held traffic (reusing the
//     locate-reply machinery). A strong timeout dead-letters the held
//     messages if nobody answers.
func (k *Kernel) searchFallback(m *msg.Message) bool {
	pid := m.To.ID
	if m.Searched {
		return false // one search per message: no reroute loops
	}
	if _, exited := k.exits[pid]; exited {
		return false // authoritatively dead here
	}
	if pid.Creator != k.machine {
		m.Searched = true
		m.To.LastKnown = pid.Creator
		k.stats.SearchForwards++
		if k.traceOn {
			k.trace(trace.CatForward, "search-reroute",
				fmt.Sprintf("%v for %v -> creator m%d", m.Kind, pid, uint16(pid.Creator)))
		}
		k.route(m)
		return true
	}
	if k.lostPIDs[pid] {
		return false // wiped here with no checkpoint: it is gone for good
	}
	if len(k.cfg.Machines) == 0 {
		return false // nobody to ask
	}
	if len(k.pendingLocate[pid]) >= PendingLocateCap {
		return false // overflow: caller dead-letters
	}
	k.pendingLocate[pid] = append(k.pendingLocate[pid], m) //demos:owner locate — held (capped) until the search reply resubmits or dead-letters it.
	if len(k.pendingLocate[pid]) > 1 {
		return true // search already outstanding
	}
	k.stats.SearchesSent++
	if k.traceOn {
		k.trace(trace.CatForward, "search-broadcast", pid.String())
	}
	for _, mach := range k.cfg.Machines {
		if mach == k.machine {
			continue
		}
		q := k.newControl(msg.OpSearchQuery, addr.KernelAddr(mach))
		q.Body = msg.PIDMachine{PID: pid, Machine: k.machine}.AppendTo(q.Body[:0])
		k.route(q)
	}
	k.armSearchTimeout(pid)
	return true
}

// armSearchTimeout bounds a broadcast search: messages still held when it
// fires become dead letters, keeping pendingLocate from pinning envelopes
// forever when every peer is silent (down, partitioned, or ignorant).
func (k *Kernel) armSearchTimeout(pid addr.ProcessID) {
	k.eng.After(k.cfg.MigrateTimeout, "kernel:search-timeout", func() {
		if k.crashed {
			return
		}
		held := k.pendingLocate[pid]
		if len(held) == 0 {
			return
		}
		delete(k.pendingLocate, pid)
		k.stats.DeadLetters += uint64(len(held))
		if k.traceOn {
			k.trace(trace.CatForward, "search-timeout",
				fmt.Sprintf("%v: %d held messages dead-lettered", pid, len(held)))
		}
		for _, hm := range held {
			if hm.Orig != nil {
				k.putMsg(hm.Orig)
			}
			k.putMsg(hm)
		}
	})
}

// handleSearchQuery answers a peer's broadcast search from local knowledge:
// a live (or arriving) copy here, a forwarding address, or an exit record.
// A kernel that knows nothing stays silent — the searcher's timeout, not a
// flood of "don't know" replies, resolves the negative case.
func (k *Kernel) handleSearchQuery(m *msg.Message) {
	pm, err := msg.DecodePIDMachine(m.Body)
	if err != nil {
		return
	}
	var at addr.MachineID
	if p := k.lookup(pm.PID); p != nil {
		if p.state == StateForwarder {
			at = p.fwdTo
		} else {
			at = k.machine
		}
	} else if _, exited := k.exits[pm.PID]; exited {
		at = addr.NoMachine // authoritatively dead
	} else {
		return
	}
	if k.traceOn {
		k.trace(trace.CatForward, "search-reply",
			fmt.Sprintf("%v is at m%d (asked by m%d)", pm.PID, uint16(at), uint16(pm.Machine)))
	}
	r := k.newControl(msg.OpLocateReply, addr.KernelAddr(pm.Machine))
	r.Body = msg.PIDMachine{PID: pm.PID, Machine: at}.AppendTo(r.Body[:0])
	k.route(r)
}

// sortedPIDKeys collects pids from a map-iterating visitor and sorts them —
// the deterministic-order helper shared by the fault-plane accessors.
func sortedPIDKeys(n int, visit func(func(addr.ProcessID))) []addr.ProcessID {
	out := make([]addr.ProcessID, 0, n)
	visit(func(pid addr.ProcessID) { out = append(out, pid) })
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Creator != b.Creator {
			return a.Creator < b.Creator
		}
		return a.Local < b.Local
	})
	return out
}

package kernel

import (
	"bytes"
	"encoding/gob"
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/link"
	"demosmp/internal/msg"
	"demosmp/internal/netw"
	"demosmp/internal/proc"
	"demosmp/internal/sim"
	"demosmp/internal/trace"
)

// These tests are the safety net under the envelope pool: a holder that
// keeps a *msg.Message past its release must be able to detect the
// recycling through a generation-stamped Ref instead of silently reading
// another message's fields. They are in-package because the interesting
// moments — an envelope sitting on a process queue, the kernel's free
// list — are deliberately not part of the public API.

// poolDrainBody consumes everything; migratable.
type poolDrainBody struct {
	Got []string
}

func (b *poolDrainBody) Kind() string { return "pool-drain" }

func (b *poolDrainBody) Step(ctx proc.Context, budget int) (int, proc.Status) {
	for {
		d, ok := ctx.Recv()
		if !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
		b.Got = append(b.Got, string(d.Body))
	}
}

func (b *poolDrainBody) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(b)
	return buf.Bytes(), err
}

func (b *poolDrainBody) Restore(data []byte) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(b)
}

// poolSendOnceBody sends one message on link L, then blocks forever.
type poolSendOnceBody struct {
	L    link.ID
	Sent bool
}

func (b *poolSendOnceBody) Kind() string { return "pool-send-once" }

func (b *poolSendOnceBody) Step(ctx proc.Context, budget int) (int, proc.Status) {
	if !b.Sent {
		b.Sent = true
		ctx.Send(b.L, []byte("pooled payload"))
	}
	return 0, proc.Status{State: proc.Blocked}
}

func (b *poolSendOnceBody) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(b)
	return buf.Bytes(), err
}

func (b *poolSendOnceBody) Restore(data []byte) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(b)
}

func poolTestCluster(t *testing.T, machines int) (*sim.Engine, []*Kernel) {
	t.Helper()
	eng := sim.NewEngine(5)
	nw := netw.New(eng, netw.Config{})
	tr := trace.New(eng.Now, 0)
	reg := proc.NewRegistry()
	reg.Register("pool-drain", func() proc.Body { return &poolDrainBody{} })
	cfg := Config{Tracer: tr, Registry: reg}
	for m := 1; m <= machines; m++ {
		cfg.Machines = append(cfg.Machines, addr.MachineID(m))
	}
	ks := make([]*Kernel, machines)
	for m := 1; m <= machines; m++ {
		ks[m-1] = New(addr.MachineID(m), eng, nw, cfg)
	}
	return eng, ks
}

// popAll empties a pool's free list, returning the envelopes in pop order.
func popAll(p *msg.Pool) []*msg.Message {
	out := make([]*msg.Message, 0, p.Free())
	for p.Free() > 0 {
		out = append(out, p.Get())
	}
	return out
}

// TestPoolRefGoesStaleAfterLocalRecycle pins the core aliasing guarantee:
// a Ref taken while a pooled envelope sits on a process queue goes stale
// the moment the receiver consumes it and the kernel releases the envelope
// — and stays stale when the free list reissues that envelope.
func TestPoolRefGoesStaleAfterLocalRecycle(t *testing.T) {
	e, ks := poolTestCluster(t, 1)
	k := ks[0]
	recvB := &poolDrainBody{}
	rpid, err := k.Spawn(SpawnSpec{Body: recvB})
	if err != nil {
		t.Fatal(err)
	}
	sendB := &poolSendOnceBody{}
	spid, err := k.Spawn(SpawnSpec{Body: sendB})
	if err != nil {
		t.Fatal(err)
	}
	lid, err := k.MintLinkTo(link.Link{Addr: addr.At(rpid, 1)}, spid)
	if err != nil {
		t.Fatal(err)
	}
	sendB.L = lid

	// Step until the sent envelope is parked on the receiver's queue.
	rp := k.procs[rpid]
	for rp.queue.Len() == 0 {
		if !e.Step() {
			t.Fatal("engine went idle before the message reached the receiver's queue")
		}
	}
	held := rp.queue.at(0)
	ref := msg.MakeRef(held)
	if !ref.Valid() {
		t.Fatal("fresh ref over a queued envelope must be valid")
	}

	e.Run()
	if len(recvB.Got) != 1 || recvB.Got[0] != "pooled payload" {
		t.Fatalf("receiver got %v", recvB.Got)
	}
	// The receiver consumed the message; runSlice released the envelope.
	// If ctx.Send had quietly stopped using the pool this would fail too:
	// a heap envelope is never released, so its ref would stay valid.
	if ref.Valid() {
		t.Fatal("ref survived the envelope's release — generation not bumped")
	}

	// Reissue the envelope and check the stale ref does not come back to
	// life: the generation moved on with the release.
	frees := popAll(k.pool)
	reissued := false
	for _, m := range frees {
		if m == held {
			reissued = true
		}
	}
	if !reissued {
		t.Fatal("released envelope never reached the kernel's free list")
	}
	if ref.Valid() {
		t.Fatal("stale ref became valid again after reissue")
	}
	for _, m := range frees {
		k.pool.Put(m)
	}
}

// TestPoolRefAcrossMigrationForwarding holds a Ref to a message that lands
// on a frozen in-migration queue. Step 6 forwards the envelope to the
// destination machine, whose kernel consumes it and releases it into its
// own free list — envelopes migrate between pools with the traffic. The
// source-side holder's Ref must read as stale afterwards.
func TestPoolRefAcrossMigrationForwarding(t *testing.T) {
	e, ks := poolTestCluster(t, 2)
	k1, k2 := ks[0], ks[1]
	body := &poolDrainBody{}
	pid, err := k1.Spawn(SpawnSpec{Body: body})
	if err != nil {
		t.Fatal(err)
	}
	e.Run() // let it block in receive

	k1.RequestMigrationOf(addr.At(pid, 1), 2)
	for k1.procs[pid] == nil || k1.procs[pid].state != StateInMigration {
		if !e.Step() {
			t.Fatal("engine went idle before the migration froze the process")
		}
	}

	// Inject a pooled user message at the source while the process is
	// frozen: it will be held on the queue, then forwarded in step 6.
	env := k1.getMsg()
	env.Kind = msg.KindUser
	env.From = addr.At(addr.ProcessID{Creator: 1, Local: 77}, 1)
	env.To = addr.At(pid, 1)
	env.Body = append(env.Body[:0], "held across migration"...)
	ref := msg.MakeRef(env)
	k1.route(env)

	e.Run()
	nb, ok := k2.BodyOf(pid)
	if !ok {
		t.Fatal("process never arrived on m2")
	}
	got := nb.(*poolDrainBody).Got
	if len(got) != 1 || got[0] != "held across migration" {
		t.Fatalf("forwarded message lost or duplicated: %v", got)
	}
	if ref.Valid() {
		t.Fatal("ref survived the forwarded envelope's release on the destination")
	}
	// The envelope was released by whoever consumed it: the destination.
	frees := popAll(k2.pool)
	landed := false
	for _, m := range frees {
		if m == ref.M {
			landed = true
		}
	}
	if !landed {
		t.Fatal("forwarded envelope not in the destination kernel's free list")
	}
	for _, m := range frees {
		k2.pool.Put(m)
	}
}

// TestPoolDoubleReleasePanics pins the release-matrix discipline: every
// envelope has exactly one releasing site, and a second Put is a bug loud
// enough to fail a test run, not a silent free-list corruption.
func TestPoolDoubleReleasePanics(t *testing.T) {
	p := msg.NewPool()
	m := p.Get()
	p.Put(m)
	defer func() {
		if recover() == nil {
			t.Fatal("double release of a pooled envelope did not panic")
		}
	}()
	p.Put(m)
}

// TestPoolHeapMessagePassesThrough: heap-constructed messages (tests,
// drivers, cold paths) flow through release sites as no-ops, so consumers
// never need to know a message's provenance.
func TestPoolHeapMessagePassesThrough(t *testing.T) {
	p := msg.NewPool()
	m := &msg.Message{Body: []byte("heap")}
	p.Put(m)
	p.Put(m) // and a second time: still a no-op, not a panic
	if p.Free() != 0 {
		t.Fatalf("heap message entered the free list (%d entries)", p.Free())
	}
	if string(m.Body) != "heap" {
		t.Fatalf("heap message mutated by Put: %q", m.Body)
	}
}

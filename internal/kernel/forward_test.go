package kernel_test

import (
	"bytes"
	"fmt"
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/kernel"
	"demosmp/internal/link"
	"demosmp/internal/msg"
	"demosmp/internal/proc"
)

// chatterProg sends n messages on link 1, pausing for a reply after each.
func chatterProg(n int) string {
	return fmt.Sprintf(`
		.data
	m:	.asciz "ping"
	buf:	.space 64
		.code
	start:	movi r6, 0
	loop:	movi r1, 8        ; AttrReply
		movi r2, 0
		movi r3, 0
		sys mklink
		mov r3, r0
		movi r0, 1
		lea r1, m
		movi r2, 4
		sys send
		lea r1, buf
		movi r2, 64
		sys recv
		addi r6, r6, 1
		cmpi r6, %d
		jlt loop
		mov r0, r6
		sys exit
	`, n)
}

// spawnCounter spawns a native counter server on machine m.
func (c *tc) spawnCounter(m int) addr.ProcessID {
	c.t.Helper()
	pid, err := c.k(m).Spawn(kernel.SpawnSpec{Body: &counterBody{}})
	if err != nil {
		c.t.Fatal(err)
	}
	return pid
}

// TestForwardingPath reproduces Figure 4-1: a message sent on a stale link
// arrives at the old machine, hits the forwarding address, and is
// resubmitted to the new machine.
func TestForwardingPath(t *testing.T) {
	c := newTC(t, 3, nil)
	server := c.spawnCounter(1)
	c.migrate(3, server, 1, 2)
	c.run()

	// m1 now holds a forwarding address.
	info, ok := c.k(1).Process(server)
	if !ok || info.State != kernel.StateForwarder || info.FwdTo != 2 {
		t.Fatalf("no forwarder on m1: %+v", info)
	}

	// A client on m3 with a stale link (last known machine = 1).
	sink := &blackholeBody{}
	sinkPID, _ := c.k(3).Spawn(kernel.SpawnSpec{Body: sink})
	c.k(3).GiveMessage(sinkPID, addr.KernelAddr(3), []byte("prime"))
	c.run()

	before := c.k(1).Stats()
	c.k(3).GiveMessageTo(addr.At(server, 1), addr.At(sinkPID, 3), []byte("hit"), c.linkTo(sinkPID, 3, 0))
	c.run()
	after := c.k(1).Stats()
	if after.Forwarded-before.Forwarded != 1 {
		t.Fatalf("forward count: %d", after.Forwarded-before.Forwarded)
	}
	// The reply proves the message reached the migrated server on m2.
	body, _ := c.k(3).BodyOf(sinkPID)
	got := body.(*blackholeBody).Got
	if len(got) != 2 || got[1] != "count=1@m2" {
		t.Fatalf("reply through forwarder: %v", got)
	}
	if _, found := c.tr.Find("forward"); !found {
		t.Fatal("no forward trace event")
	}
}

// TestLinkUpdateAfterForward reproduces Figure 5-1: forwarding triggers the
// special update message, and the sender's link table is rewritten.
func TestLinkUpdateAfterForward(t *testing.T) {
	c := newTC(t, 3, nil)
	server := c.spawnCounter(1)
	client := c.spawnProg(3, chatterProg(4), c.linkTo(server, 1, 0))
	c.migrate(2, server, 1, 2)
	c.run() // migration completes; client hasn't started talking yet? It has - order is fine either way.
	e, _ := c.exitOf(client)
	if e.Code != 4 {
		t.Fatalf("client finished %d rounds, want 4", e.Code)
	}
	s1 := c.k(1).Stats()
	s3 := c.k(3).Stats()
	if s1.LinkUpdatesSent == 0 {
		t.Fatal("forwarding never sent a link update")
	}
	if s3.LinkUpdatesApplied == 0 || s3.LinksFixed == 0 {
		t.Fatalf("client kernel never applied updates: %+v", s3)
	}
	// After the first update, remaining messages go direct: far fewer
	// forwards than rounds.
	if s1.Forwarded >= 4 {
		t.Fatalf("%d of 4 messages forwarded; link update is not converging", s1.Forwarded)
	}
}

// TestLinkUpdateConvergence measures the paper's §6 claim: "the worst case
// observed was two messages sent over a link before it was updated.
// Typically, the link is updated after the first message."
func TestLinkUpdateConvergence(t *testing.T) {
	c := newTC(t, 3, nil)
	server := c.spawnCounter(1)
	client := c.spawnProg(3, chatterProg(10), c.linkTo(server, 1, 0))
	// Let the conversation start, then migrate mid-stream.
	c.runFor(20000)
	c.migrate(2, server, 1, 2)
	c.run()
	if e, _ := c.exitOf(client); e.Code != 10 {
		t.Fatalf("client rounds: %d", e.Code)
	}
	fwd := c.k(1).Stats().Forwarded
	if fwd == 0 {
		t.Skip("migration completed before any stale send; rerun with different timing")
	}
	if fwd > 2 {
		t.Fatalf("%d messages forwarded on one link, paper's worst case is 2", fwd)
	}
}

// TestForwardChain: migrate a server twice; messages traverse two
// forwarding addresses, and the link update points the sender directly at
// the final location.
func TestForwardChain(t *testing.T) {
	c := newTC(t, 4, nil)
	server := c.spawnCounter(1)
	c.migrate(4, server, 1, 2)
	c.run()
	c.migrate(4, server, 2, 3)
	c.run()

	sink := &blackholeBody{}
	sinkPID, _ := c.k(4).Spawn(kernel.SpawnSpec{Body: sink})
	// Send with a doubly-stale link still pointing at the birth machine.
	c.k(4).GiveMessageTo(addr.At(server, 1), addr.At(sinkPID, 4), []byte("hit"), c.linkTo(sinkPID, 4, 0))
	c.run()
	got := sink.Got
	if len(got) != 1 || got[0] != "count=1@m3" {
		t.Fatalf("through 2-hop chain: %v", got)
	}
	if f1 := c.k(1).Stats().Forwarded; f1 != 1 {
		t.Fatalf("m1 forwards = %d", f1)
	}
	if f2 := c.k(2).Stats().Forwarded; f2 != 1 {
		t.Fatalf("m2 forwards = %d", f2)
	}
	// Both forwarders are 8 bytes of storage (§4).
	if b := c.k(1).Stats().ForwarderBytes; b != kernel.ForwarderWireSize {
		t.Fatalf("forwarder storage on m1 = %d bytes, want 8", b)
	}
	enc := kernel.EncodeForwarder(server, 3, 2)
	if len(enc) != 8 {
		t.Fatalf("encoded forwarding address = %d bytes, want 8 (paper §4)", len(enc))
	}
}

// TestForwarderGC: with ReclaimForwarders on, death notices walk backwards
// along the migration path and remove the chain (§4's proposed mechanism).
func TestForwarderGC(t *testing.T) {
	c := newTC(t, 3, func(cfg *kernel.Config) { cfg.ReclaimForwarders = true })
	server := c.spawnCounter(1)
	c.migrate(3, server, 1, 2)
	c.run()
	c.migrate(3, server, 2, 3)
	c.run()
	// Kill the process on m3; both forwarders must be reclaimed.
	c.k(3).GiveControl(server, msg.OpKill, nil)
	c.run()
	if _, ok := c.k(2).Process(server); ok {
		t.Fatal("forwarder on m2 not reclaimed")
	}
	if _, ok := c.k(1).Process(server); ok {
		t.Fatal("forwarder on m1 not reclaimed")
	}
	total := c.k(1).Stats().ForwardersReclaimed + c.k(2).Stats().ForwardersReclaimed
	if total != 2 {
		t.Fatalf("reclaimed = %d, want 2", total)
	}
}

// TestForwardersPersistByDefault matches the paper's deployed behavior:
// "we have not found it necessary to remove forwarding addresses."
func TestForwardersPersistByDefault(t *testing.T) {
	c := newTC(t, 2, nil)
	server := c.spawnCounter(1)
	c.migrate(2, server, 1, 2)
	c.run()
	c.k(2).GiveControl(server, msg.OpKill, nil)
	c.run()
	info, ok := c.k(1).Process(server)
	if !ok || info.State != kernel.StateForwarder {
		t.Fatal("forwarder should persist after process death by default")
	}
}

// TestReturnToSenderBaseline exercises the §4 alternative end to end:
// bounce, locate via the process manager, resend.
func TestReturnToSenderBaseline(t *testing.T) {
	c := newTC(t, 3, func(cfg *kernel.Config) {
		cfg.Mode = kernel.ModeReturnToSender
	})
	// Spawn the PM stub on m1 and point every kernel's PMLink at it.
	pm, _ := c.k(1).Spawn(kernel.SpawnSpec{Body: &pmStub{Where: map[addr.ProcessID]addr.MachineID{}}, Privileged: true})
	for _, m := range []int{1, 2, 3} {
		c.k(m).SetPMLink(link.Link{Addr: addr.At(pm, 1)})
	}
	pmBody, _ := c.k(1).BodyOf(pm)

	server := c.spawnCounter(2)
	// Drive the migration *as if the PM requested it* so OpMigrateDone is
	// delivered to the PM process and recorded in its location table.
	c.k(2).GiveControlFrom(addr.At(pm, 1), server, msg.OpMigrateRequest,
		msg.MigrateRequest{PID: server, Dest: 3}.Encode())
	c.run()
	if w := pmBody.(*pmStub).Where[server]; w != 3 {
		t.Fatalf("PM did not record new location: %v", w)
	}
	// No forwarder in this mode: "This method does not require any
	// process state to be left behind on the source processor."
	if _, ok := c.k(2).Process(server); ok {
		t.Fatal("return-to-sender mode must not leave a forwarding address")
	}
	// A client with a stale link: message bounces, is located, resent.
	sink := &blackholeBody{}
	sinkPID, _ := c.k(1).Spawn(kernel.SpawnSpec{Body: sink})
	c.k(1).GiveMessageTo(addr.At(server, 2), addr.At(sinkPID, 1), []byte("hit"), c.linkTo(sinkPID, 1, 0))
	c.run()
	if len(sink.Got) != 1 || sink.Got[0] != "count=1@m3" {
		t.Fatalf("bounced message lost: %v", sink.Got)
	}
	s2 := c.k(2).Stats()
	s1 := c.k(1).Stats()
	if s2.Bounced == 0 || s1.LocateRequests == 0 || s1.Resubmitted == 0 {
		t.Fatalf("baseline path not exercised: bounced=%d locate=%d resent=%d",
			s2.Bounced, s1.LocateRequests, s1.Resubmitted)
	}
}

// TestEagerUpdateAblation: broadcast updates fix every kernel's tables at
// migration time, so no forwards and no lazy updates happen afterwards —
// at the cost of messages to every machine.
func TestEagerUpdateAblation(t *testing.T) {
	c := newTC(t, 4, func(cfg *kernel.Config) { cfg.EagerUpdate = true })
	server := c.spawnCounter(1)
	// A client that holds a link but is idle during migration.
	holder, _ := c.k(3).Spawn(kernel.SpawnSpec{Body: &blackholeBody{}})
	c.k(3).MintLinkTo(link.Link{Addr: addr.At(server, 1)}, holder)

	c.migrate(4, server, 1, 2)
	c.run()
	if n := c.k(1).Stats().EagerUpdatesSent; n != 3 {
		t.Fatalf("eager updates sent = %d, want 3 (one per other machine)", n)
	}
	// The idle holder's link was fixed without it ever sending — the
	// defining difference from lazy updating.
	fixed := false
	c.k(3).VisitLinks(holder, func(_ link.ID, l link.Link) {
		if l.Addr.ID == server {
			if l.Addr.LastKnown != 2 {
				t.Fatalf("holder link still stale: %v", l)
			}
			fixed = true
		}
	})
	if !fixed {
		t.Fatal("holder lost its link")
	}
}

// TestMoveDataAcrossMachines: a VM process grants a writable data area; a
// native writer on another machine streams into it; the VM reads it back.
func TestMoveDataAcrossMachines(t *testing.T) {
	c := newTC(t, 2, nil)
	// Owner: creates link with a 256-byte writable area over its data
	// segment, sends it to the writer, waits for a "go" message, then
	// exits with the first word of the area.
	owner := c.spawnProg(1, `
		.data
	area:	.space 256
	buf:	.space 16
		.code
	start:	movi r1, 4        ; AttrDataWrite
		lea r2, area
		movi r3, 256
		sys mklink
		mov r3, r0        ; carry the area link
		movi r0, 1        ; writer link
		lea r1, buf
		movi r2, 0
		sys send
		lea r1, buf       ; wait for the writer's "done" note
		movi r2, 16
		sys recv
		lea r1, area
		ldw r0, r1, 0
		sys exit
	`)
	wb := &writerBody{Payload: []byte{0x2A, 0, 0, 0, 9, 9}}
	writer, _ := c.k(2).Spawn(kernel.SpawnSpec{Body: wb, Privileged: true})
	// Give the owner a link to the writer (slot 1).
	c.k(1).MintLinkTo(link.Link{Addr: addr.At(writer, 2)}, owner)
	c.run()
	e, _ := c.exitOf(owner)
	if e.Code != 0x2A {
		t.Fatalf("owner read %#x from its area, want 0x2a", e.Code)
	}
	if !wb.DoneOK {
		t.Fatal("writer never saw MoveTo completion")
	}
}

// writerBody waits for a carried data-area link, MoveTo's its payload, and
// on completion pokes the owner.
type writerBody struct {
	Payload []byte
	AreaLnk link.ID
	From    addr.ProcessAddr
	DoneOK  bool
}

func (b *writerBody) Kind() string { return "writer" }

func (b *writerBody) Step(ctx proc.Context, budget int) (int, proc.Status) {
	for {
		d, ok := ctx.Recv()
		if !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
		switch {
		case len(d.Carried) > 0: // the data-area link arrived
			b.AreaLnk = d.Carried[0]
			b.From = d.From
			if err := ctx.MoveTo(b.AreaLnk, 0, b.Payload, 77); err != nil {
				return 0, proc.Status{State: proc.Crashed, Err: err}
			}
		case d.Op == msg.OpMoveWriteDone:
			b.DoneOK = d.OK && d.Xfer == 77
			// Poke the owner so it reads the area.
			l, err := ctx.MintLink(link.Link{Addr: b.From})
			if err == nil {
				ctx.Send(l, []byte("done"))
			}
		}
	}
}

func (b *writerBody) Snapshot() ([]byte, error) { return nil, nil }
func (b *writerBody) Restore([]byte) error      { return nil }

// TestMoveFromReadsRemoteArea: MoveFrom pulls bytes out of a remote image.
func TestMoveFromReadsRemoteArea(t *testing.T) {
	c := newTC(t, 2, nil)
	owner := c.spawnProg(1, `
		.data
	area:	.word 0x11223344, 0x55667788
	buf:	.space 8
		.code
	start:	movi r1, 2        ; AttrDataRead
		lea r2, area
		movi r3, 8
		sys mklink
		mov r3, r0
		movi r0, 1        ; reader link
		lea r1, buf
		movi r2, 0
		sys send
		lea r1, buf
		movi r2, 8
		sys recv          ; block forever-ish
		movi r0, 0
		sys exit
	`)
	rb := &readerBody{N: 8}
	reader, _ := c.k(2).Spawn(kernel.SpawnSpec{Body: rb})
	c.k(1).MintLinkTo(link.Link{Addr: addr.At(reader, 2)}, owner)
	c.run()
	want := []byte{0x44, 0x33, 0x22, 0x11, 0x88, 0x77, 0x66, 0x55}
	if !bytes.Equal(rb.Data, want) {
		t.Fatalf("MoveFrom read %x, want %x", rb.Data, want)
	}
}

type readerBody struct {
	N    uint32
	Data []byte
	Done bool
	OK   bool
}

func (b *readerBody) Kind() string { return "reader" }

func (b *readerBody) Step(ctx proc.Context, budget int) (int, proc.Status) {
	for {
		d, ok := ctx.Recv()
		if !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
		switch {
		case len(d.Carried) > 0:
			if err := ctx.MoveFrom(d.Carried[0], 0, b.N, 5); err != nil {
				return 0, proc.Status{State: proc.Crashed, Err: err}
			}
		case d.Op == msg.OpMoveReadDone:
			b.Data = d.Data
			b.Done = true
			b.OK = d.OK
			return 0, proc.Status{State: proc.Exited}
		}
	}
}

func (b *readerBody) Snapshot() ([]byte, error) { return nil, nil }
func (b *readerBody) Restore([]byte) error      { return nil }

// privilegeBody verifies unprivileged processes cannot mint links or send
// control operations.
func TestPrivilegeEnforcement(t *testing.T) {
	c := newTC(t, 1, nil)
	pb := &privProbe{}
	pid, _ := c.k(1).Spawn(kernel.SpawnSpec{Body: pb})
	c.k(1).GiveMessage(pid, addr.KernelAddr(1), []byte("go"))
	c.run()
	if pb.MintErr == nil {
		t.Fatal("unprivileged MintLink succeeded")
	}
}

type privProbe struct {
	MintErr error
	done    bool
}

func (b *privProbe) Kind() string { return "privprobe" }

func (b *privProbe) Step(ctx proc.Context, budget int) (int, proc.Status) {
	if _, ok := ctx.Recv(); !ok {
		return 0, proc.Status{State: proc.Blocked}
	}
	if b.done {
		return 0, proc.Status{State: proc.Exited}
	}
	b.done = true
	_, b.MintErr = ctx.MintLink(link.Link{Addr: addr.KernelAddr(1)})
	return 0, proc.Status{State: proc.Exited}
}

func (b *privProbe) Snapshot() ([]byte, error) { return nil, nil }
func (b *privProbe) Restore([]byte) error      { return nil }

// TestCrashedMachineUndelivered: messages to a crashed machine die after
// retries; the network reports them.
func TestCrashedMachine(t *testing.T) {
	c := newTC(t, 2, nil)
	body := &blackholeBody{}
	pid, _ := c.k(2).Spawn(kernel.SpawnSpec{Body: body})
	c.runFor(100)
	c.k(2).Crash()
	c.k(1).GiveMessage(pid, addr.KernelAddr(1), []byte("lost"))
	c.run()
	if len(body.Got) != 0 {
		t.Fatal("crashed machine received a message")
	}
}

// TestTimers: SetTimer deliveries arrive, and follow a migration.
func TestTimerFollowsMigration(t *testing.T) {
	c := newTC(t, 2, nil)
	tb := &timerBody{Delay: 50000}
	pid, _ := c.k(1).Spawn(kernel.SpawnSpec{Body: tb})
	c.runFor(5000) // body armed its timer on m1
	c.migrate(2, pid, 1, 2)
	c.run()
	moved, ok := c.k(2).BodyOf(pid)
	if !ok {
		t.Fatal("no body on m2")
	}
	if got := moved.(*timerBody).FiredTag; got != 42 {
		t.Fatalf("timer tag = %d, want 42 (timer lost in migration)", got)
	}
}

type timerBody struct {
	Delay    uint64
	Armed    bool
	FiredTag uint16
}

func (b *timerBody) Kind() string { return "timer" }

func (b *timerBody) Step(ctx proc.Context, budget int) (int, proc.Status) {
	if !b.Armed {
		b.Armed = true
		ctx.SetTimer(simTime(b.Delay), 42)
	}
	for {
		d, ok := ctx.Recv()
		if !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
		if d.Op == msg.OpTimer {
			// Record and keep living so the test can inspect the
			// migrated body instance.
			b.FiredTag = d.Xfer
		}
	}
}

func (b *timerBody) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gobEncode(&buf, b)
	return buf.Bytes(), err
}

func (b *timerBody) Restore(data []byte) error { return gobDecode(data, b) }

// TestMoveToThroughForwarderCompletesAfterAllBytes is the regression test
// for a protocol bug the migration soak uncovered: a multi-packet write
// stream routed through a forwarding address can arrive out of order
// (the smaller last packet overtakes the bigger first one), and the write
// must not be reported complete until every byte has actually landed.
func TestMoveToThroughForwarderCompletesAfterAllBytes(t *testing.T) {
	c := newTC(t, 3, nil)
	// Owner grants a 600-byte writable area, ships the link to the
	// writer, then waits; when poked after the write completes it checks
	// the FIRST byte (carried by the big first packet).
	owner := c.spawnProg(1, `
		.data
	area:	.space 600
	buf:	.space 16
		.code
	start:	movi r1, 4        ; AttrDataWrite
		lea r2, area
		movi r3, 600
		sys mklink
		mov r3, r0
		movi r0, 1        ; writer link
		lea r1, buf
		movi r2, 0
		sys send
		lea r1, buf       ; wait for the writer's completion poke
		movi r2, 16
		sys recv
		lea r1, area
		ldb r0, r1, 0     ; first byte: travels in the FIRST packet
		sys exit
	`)
	payload := make([]byte, 600) // 512B packet + 88B Last packet
	for i := range payload {
		payload[i] = byte(i%200 + 7)
	}
	wb := &gatedWriter{Payload: payload}
	writer, _ := c.k(2).Spawn(kernel.SpawnSpec{Body: wb, Privileged: true})
	c.k(1).MintLinkTo(link.Link{Addr: addr.At(writer, 2)}, owner)

	// Let the owner hand over the link, migrate the owner so the area
	// link goes stale, and only then let the writer stream: the packets
	// must traverse the m1 forwarder.
	c.run()
	c.migrate(3, owner, 1, 3)
	c.run()
	c.k(2).GiveMessage(writer, addr.KernelAddr(2), []byte("go"))
	c.run()
	e, m := c.exitOf(owner)
	if m != 3 {
		t.Fatalf("owner finished on m%d", m)
	}
	if !wb.DoneOK {
		t.Fatal("writer never completed")
	}
	if e.Code != int32(payload[0]) {
		t.Fatalf("first byte = %d, want %d: completion raced the data through the forwarder",
			e.Code, payload[0])
	}
}

// gatedWriter holds the carried area link until told "go", then MoveTo's
// its payload and pokes the area's owner on completion.
type gatedWriter struct {
	Payload []byte
	AreaLnk link.ID
	From    addr.ProcessAddr
	DoneOK  bool
}

func (b *gatedWriter) Kind() string { return "gated-writer" }

func (b *gatedWriter) Step(ctx proc.Context, budget int) (int, proc.Status) {
	for {
		d, ok := ctx.Recv()
		if !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
		switch {
		case len(d.Carried) > 0:
			b.AreaLnk = d.Carried[0]
			b.From = d.From
		case string(d.Body) == "go":
			if err := ctx.MoveTo(b.AreaLnk, 0, b.Payload, 99); err != nil {
				return 0, proc.Status{State: proc.Crashed, Err: err}
			}
		case d.Op == msg.OpMoveWriteDone:
			b.DoneOK = d.OK && d.Xfer == 99
			l, err := ctx.MintLink(link.Link{Addr: b.From})
			if err == nil {
				ctx.Send(l, []byte("done"))
			}
		}
	}
}

func (b *gatedWriter) Snapshot() ([]byte, error) { return nil, nil }
func (b *gatedWriter) Restore([]byte) error      { return nil }

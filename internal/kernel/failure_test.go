package kernel_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"demosmp/internal/addr"
	"demosmp/internal/kernel"
	"demosmp/internal/link"
	"demosmp/internal/netw"
	"demosmp/internal/proc"
	"demosmp/internal/sim"
	"demosmp/internal/trace"
	"demosmp/internal/workload"
)

// newTCNet is newTC with a custom network configuration.
func newTCNet(t *testing.T, machines int, ncfg netw.Config, mut func(*kernel.Config)) *tc {
	t.Helper()
	eng := sim.NewEngine(7)
	net := netw.New(eng, ncfg)
	tr := trace.New(eng.Now, 0)
	reg := proc.NewRegistry()
	reg.Register("counter", func() proc.Body { return &counterBody{} })
	reg.Register("blackhole", func() proc.Body { return &blackholeBody{} })
	reg.Register("aborter", func() proc.Body { return &aborterBody{} })
	c := &tc{t: t, eng: eng, net: net, tr: tr, ks: map[addr.MachineID]*kernel.Kernel{}}
	for i := 1; i <= machines; i++ {
		cfg := kernel.Config{Tracer: tr, Registry: reg}
		for m := 1; m <= machines; m++ {
			cfg.Machines = append(cfg.Machines, addr.MachineID(m))
		}
		if mut != nil {
			mut(&cfg)
		}
		c.ks[addr.MachineID(i)] = kernel.New(addr.MachineID(i), eng, net, cfg)
	}
	return c
}

// TestMigrationSurvivesLossyNetwork: with 15% frame loss, the ARQ layer
// still gives the kernels the paper's guarantee ("any message sent will
// eventually be delivered") and the migration completes correctly.
func TestMigrationSurvivesLossyNetwork(t *testing.T) {
	c := newTCNet(t, 3,
		netw.Config{LossRate: 0.15, RetransTimeout: 3000, MaxRetries: 200}, nil)
	pid, err := c.k(1).Spawn(kernel.SpawnSpec{Program: workload.CPUBoundSized(200000, 8<<10)})
	if err != nil {
		t.Fatal(err)
	}
	c.runFor(5000)
	c.migrate(3, pid, 1, 2)
	c.run()
	e, m := c.exitOf(pid)
	if m != 2 {
		t.Fatalf("finished on m%d, want m2", m)
	}
	if e.Code != workload.CPUBoundResult(200000) {
		t.Fatalf("result %d corrupted by lossy migration", e.Code)
	}
	if c.net.Stats().Retransmits == 0 {
		t.Fatal("test exercised no retransmissions; raise the loss rate")
	}
}

// TestMessagesExactlyOnceUnderLossAndMigration: a counter server migrates
// while clients hammer it over a lossy network; every message is counted
// exactly once.
func TestMessagesExactlyOnceUnderLossAndMigration(t *testing.T) {
	c := newTCNet(t, 3,
		netw.Config{LossRate: 0.1, RetransTimeout: 3000, MaxRetries: 200}, nil)
	server, _ := c.k(1).Spawn(kernel.SpawnSpec{Body: &counterBody{}})
	sink := &blackholeBody{}
	sinkPID, _ := c.k(3).Spawn(kernel.SpawnSpec{Body: sink})
	const N = 20
	for i := 0; i < N; i++ {
		c.k(3).GiveMessageTo(addr.At(server, 1), addr.At(sinkPID, 3),
			[]byte("hit"), c.linkTo(sinkPID, 3, 0))
		if i == 5 {
			c.migrate(3, server, 1, 2)
		}
		c.runFor(2000)
	}
	c.run()
	body, ok := c.k(2).BodyOf(server)
	if !ok {
		t.Fatal("server not on m2")
	}
	if got := body.(*counterBody).Count; got != N {
		t.Fatalf("server counted %d, want exactly %d", got, N)
	}
	// Every hit produced exactly one reply.
	if len(sink.Got) != N {
		t.Fatalf("sink got %d replies, want %d", len(sink.Got), N)
	}
}

// TestDestinationCrashMidMigration: the destination dies during the state
// transfer. The source's watchdog fires, the migration aborts, and the
// process finishes — correctly — where it was.
func TestDestinationCrashMidMigration(t *testing.T) {
	c := newTC(t, 3, func(cfg *kernel.Config) { cfg.MigrateTimeout = 500_000 })
	// A big image so the transfer takes hundreds of milliseconds.
	pid, err := c.k(1).Spawn(kernel.SpawnSpec{Program: workload.CPUBoundSized(300000, 256<<10)})
	if err != nil {
		t.Fatal(err)
	}
	c.runFor(3000)
	c.migrate(3, pid, 1, 2)
	c.runFor(50000) // transfer under way
	if _, busy := c.k(2).Process(pid); !busy {
		t.Fatal("transfer not in progress; crash timing wrong")
	}
	c.k(2).Crash()
	c.run()
	e, m := c.exitOf(pid)
	if m != 1 {
		t.Fatalf("finished on m%d, want restored on m1", m)
	}
	if e.Code != workload.CPUBoundResult(300000) {
		t.Fatalf("result %d corrupted by aborted migration", e.Code)
	}
	if s := c.k(1).Stats(); s.MigrationsFailed == 0 {
		t.Fatal("no failed migration recorded")
	}
	// The driver was told the migration failed.
	done := c.k(3).DoneMigrations()
	if len(done) != 1 || done[0].OK {
		t.Fatalf("driver notification: %+v", done)
	}
}

// TestSourceCrashMidMigration: the source dies during the transfer. The
// destination's watchdog discards the half-built state — the process is
// lost with its machine (no split brain, no zombie placeholder).
func TestSourceCrashMidMigration(t *testing.T) {
	c := newTC(t, 3, func(cfg *kernel.Config) { cfg.MigrateTimeout = 500_000 })
	pid, _ := c.k(1).Spawn(kernel.SpawnSpec{Program: workload.CPUBoundSized(300000, 256<<10)})
	c.runFor(3000)
	c.migrate(3, pid, 1, 2)
	c.runFor(50000)
	c.k(1).Crash()
	c.run()
	if _, ok := c.k(2).Process(pid); ok {
		t.Fatal("destination kept a zombie placeholder after source crash")
	}
	if s := c.k(2).Stats(); s.MigrationsFailed == 0 {
		t.Fatal("destination did not record the failure")
	}
	if c.k(2).MemUsed() != 0 {
		t.Fatalf("leaked %d bytes of reserved memory", c.k(2).MemUsed())
	}
}

// TestFrozenProcessRestoredMessagesIntact: an abort mid-migration must
// redeliver messages held on the frozen queue.
func TestAbortRedeliversHeldMessages(t *testing.T) {
	c := newTC(t, 3, func(cfg *kernel.Config) { cfg.MigrateTimeout = 300_000 })
	body := &blackholeBody{}
	pid, _ := c.k(1).Spawn(kernel.SpawnSpec{Body: body})
	c.runFor(1000)
	c.k(2).Crash() // destination is already dead
	c.migrate(3, pid, 1, 2)
	c.runFor(50000) // process frozen, migration stuck
	for i := 0; i < 3; i++ {
		c.k(1).GiveMessage(pid, addr.KernelAddr(3), []byte(fmt.Sprintf("held-%d", i)))
	}
	c.run() // watchdog fires, process restored
	if len(body.Got) != 3 {
		t.Fatalf("held messages lost in abort: %v", body.Got)
	}
}

// TestRandomMigrationScheduleProperty: migrating a computation at random
// times through a random machine sequence never changes its result.
func TestRandomMigrationScheduleProperty(t *testing.T) {
	want := workload.CPUBoundResult(150000)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := newTC(t, 4, nil)
		pid, err := c.k(1).Spawn(kernel.SpawnSpec{Program: workload.CPUBound(150000)})
		if err != nil {
			return false
		}
		at := 1
		hops := 1 + rng.Intn(4)
		for h := 0; h < hops; h++ {
			c.runFor(sim.Time(1000 + rng.Intn(300000)))
			dest := 1 + rng.Intn(4)
			c.migrate(at, pid, at, dest)
			c.run()
			if cur, ok := findMachine(c, pid); ok {
				at = cur
			}
		}
		c.run()
		e, _ := c.exitOf(pid)
		return e.Code == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(99))}); err != nil {
		t.Fatal(err)
	}
}

func findMachine(c *tc, pid addr.ProcessID) (int, bool) {
	for m, k := range c.ks {
		if info, ok := k.Process(pid); ok && info.State != kernel.StateForwarder {
			return int(m), true
		}
	}
	return 0, false
}

// TestServerMigrationDuringTrafficProperty: a client/server exchange with a
// randomly timed server migration always completes all rounds.
func TestServerMigrationDuringTrafficProperty(t *testing.T) {
	f := func(when uint32) bool {
		c := newTC(t, 3, nil)
		server, _ := c.k(1).Spawn(kernel.SpawnSpec{Program: workload.EchoServer(15)})
		client, _ := c.k(3).Spawn(kernel.SpawnSpec{
			Program: workload.RequestClient(15),
			Links:   []link.Link{{Addr: addr.At(server, 1)}},
		})
		c.runFor(sim.Time(when % 60000))
		c.migrate(2, server, 1, 2)
		c.run()
		e, _ := c.exitOf(client)
		return e.Code == 15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

// TestMemoryAccountingAcrossMigrations: memory in use returns to zero on
// both machines after the process migrates away and exits.
func TestMemoryAccountingAcrossMigrations(t *testing.T) {
	c := newTC(t, 2, nil)
	pid, _ := c.k(1).Spawn(kernel.SpawnSpec{Program: workload.CPUBoundSized(50000, 32<<10)})
	if c.k(1).MemUsed() == 0 {
		t.Fatal("no memory accounted at spawn")
	}
	c.runFor(2000)
	c.migrate(2, pid, 1, 2)
	c.run()
	c.exitOf(pid)
	if u := c.k(1).MemUsed(); u != 0 {
		t.Fatalf("source leaked %d bytes", u)
	}
	if u := c.k(2).MemUsed(); u != 0 {
		t.Fatalf("destination leaked %d bytes after exit", u)
	}
}

// TestMemCapacityRefusal: a destination without room refuses (§3.2), and
// the process keeps running at the source.
func TestMemCapacityRefusal(t *testing.T) {
	c := newTC(t, 2, func(cfg *kernel.Config) { cfg.MemCapacity = 40 << 10 })
	pid, err := c.k(1).Spawn(kernel.SpawnSpec{Program: workload.CPUBoundSized(100000, 32<<10)})
	if err != nil {
		t.Fatal(err)
	}
	// Fill machine 2 so the incoming 32 KiB cannot fit.
	if _, err := c.k(2).Spawn(kernel.SpawnSpec{Body: &blackholeBody{}, ImageSize: 32 << 10}); err != nil {
		t.Fatal(err)
	}
	c.runFor(2000)
	c.migrate(2, pid, 1, 2)
	c.run()
	e, m := c.exitOf(pid)
	if m != 1 || e.Code != workload.CPUBoundResult(100000) {
		t.Fatalf("refused migration broke the process: code %d on m%d", e.Code, m)
	}
	if s := c.k(2).Stats(); s.MigrationsRefused != 1 {
		t.Fatalf("refusals = %d", s.MigrationsRefused)
	}
}

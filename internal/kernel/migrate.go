package kernel

import (
	"encoding/binary"
	"fmt"

	"demosmp/internal/addr"
	"demosmp/internal/link"
	"demosmp/internal/memory"
	"demosmp/internal/msg"
	"demosmp/internal/proc"
	"demosmp/internal/sim"
	"demosmp/internal/trace"
)

// This file implements §3.1's eight steps. The source kernel handles steps
// 1-2 and 6-7; the destination kernel controls steps 3-5 and 8 ("The next
// part of the migration, up to the forwarding of messages, will be
// controlled by the destination processor kernel").
//
// Administrative messages (all KindControl, payloads 6-12 bytes):
//
//	1. process manager -> src : OpMigrateRequest   (DELIVERTOKERNEL)
//	2. src -> dst             : OpMigrateAsk       (sizes)
//	3. dst -> src             : OpMigrateAccept / OpMigrateRefuse
//	4. dst -> src             : OpMoveDataReq(resident)
//	5. dst -> src             : OpMoveDataReq(swappable)
//	6. dst -> src             : OpMoveDataReq(program)
//	7. dst -> src             : OpMigrateEstablished
//	8. src -> dst             : OpMigrateCleanup
//	9. src -> process manager : OpMigrateDone
//
// — nine messages, matching the paper's administrative cost.

type outMigration struct {
	p         *Process
	dest      addr.MachineID
	requester addr.ProcessAddr
	rep       MigrationReport
	watchdog  sim.Event

	resident  []byte
	swappable []byte
	program   []byte
}

type inMigration struct {
	pid      addr.ProcessID
	src      addr.MachineID
	ask      msg.MigrateAsk
	p        *Process
	stage    msg.Region
	bufs     map[msg.Region][]byte
	watchdog sim.Event
	// established is set once the process is fully assembled and
	// message 7 has been sent: from here on this copy is the process,
	// and a silent source must not make the watchdog discard it.
	established bool
}

// armOutWatchdog (re)starts the source-side progress timer. If the
// destination goes silent — crashed mid-transfer, network partition — the
// source gives up, discards the destination's half-built state, and
// restores the frozen process as if the migration had been refused.
func (k *Kernel) armOutWatchdog(om *outMigration) {
	k.eng.Cancel(om.watchdog)
	om.watchdog = k.eng.After(k.cfg.MigrateTimeout, "kernel:migrate-watchdog", func() {
		if k.crashed {
			return // Restart discards the migration wholesale
		}
		if _, live := k.out[om.p.id]; !live {
			return
		}
		abort := k.newControl(msg.OpMigrateAbort, addr.KernelAddr(om.dest))
		abort.Body = msg.PIDMachine{PID: om.p.id, Machine: k.machine}.AppendTo(abort.Body[:0])
		k.sendAdmin(abort, nil)
		k.abortOutMigration(om, fmt.Errorf("no progress from %v in %v", om.dest, k.cfg.MigrateTimeout))
	})
}

// armInWatchdog (re)starts the destination-side progress timer: if the
// source stops streaming (or never sends cleanup), discard the incoming
// state and tell the source to restore the process.
func (k *Kernel) armInWatchdog(im *inMigration) {
	k.eng.Cancel(im.watchdog)
	im.watchdog = k.eng.After(k.cfg.MigrateTimeout, "kernel:migrate-watchdog", func() {
		if k.crashed {
			return // Restart discards the migration wholesale
		}
		if _, live := k.in[im.pid]; !live {
			return
		}
		if im.established {
			// Step 5 completed: this copy IS the process, and the
			// source has gone silent — crashed before step 7, or its
			// cleanup is stuck in retransmission. Committing cannot
			// fork: a crashed source wiped its copy (and invalidated
			// its stale checkpoint when it learned we were
			// established), and a source that instead aborted and
			// restored its copy sends OpMigrateAbort, which a
			// timeout-committed copy yields to.
			k.trace(trace.CatMigrate, "timeout-commit", im.pid.String())
			k.commitIncoming(im, "committed on watchdog timeout", true)
			return
		}
		abort := k.newControl(msg.OpMigrateAbort, addr.KernelAddr(im.src))
		abort.Body = msg.PIDMachine{PID: im.pid, Machine: k.machine}.AppendTo(abort.Body[:0])
		k.sendAdmin(abort, nil)
		k.failIncoming(im, fmt.Errorf("no progress from %v in %v", im.src, k.cfg.MigrateTimeout))
	})
}

// handleMigrateAbort discards whichever half of an in-flight migration
// this kernel holds.
func (k *Kernel) handleMigrateAbort(m *msg.Message) {
	pm, err := msg.DecodePIDMachine(m.Body)
	if err != nil {
		return
	}
	if om, ok := k.out[pm.PID]; ok {
		k.abortOutMigration(om, fmt.Errorf("aborted by %v", pm.Machine))
		return
	}
	if im, ok := k.in[pm.PID]; ok {
		k.failIncoming(im, fmt.Errorf("aborted by %v", pm.Machine))
		return
	}
	// An abort reaching a copy committed on watchdog timeout means the
	// source restored its own copy before learning we were established:
	// exactly-one requires the younger copy to yield. Duplicate or stale
	// aborts find no process, or a cleanly-committed one (timeoutCommit
	// false), and fall through as no-ops.
	if p := k.lookup(pm.PID); p != nil && p.timeoutCommit && p.state != StateForwarder {
		k.yieldTimeoutCommit(p, pm.Machine)
	}
}

// yieldTimeoutCommit discards a timeout-committed copy in favour of the
// source's restored one. Queued messages die here and are accounted as
// dead letters; the local stable checkpoint is invalidated so a later
// restart cannot resurrect the yielded copy.
func (k *Kernel) yieldTimeoutCommit(p *Process, src addr.MachineID) {
	k.trace(trace.CatMigrate, "timeout-commit-yield",
		fmt.Sprintf("%v yields to restored copy on %v", p.id, src))
	k.removeFromRunq(p)
	if p.image != nil {
		k.memUsed -= p.image.Size()
		p.image.Discard()
	}
	for p.queue.Len() > 0 {
		k.stats.DeadLetters++
		k.putMsg(p.queue.pop())
	}
	delete(k.stable, p.id)
	k.delProc(p.id)
	k.stats.MigrationsFailed++
}

// sendAdmin accounts for one administrative message — globally and (if rep
// != nil) in the per-migration report — and routes it. Callers build m with
// newControl and fill Body in place with an AppendTo encoder, so the nine
// protocol messages of a migration reuse pooled envelopes end to end.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestHotPathZeroAlloc/admin-encode in bench_hotpath_test.go.
func (k *Kernel) sendAdmin(m *msg.Message, rep *MigrationReport) {
	k.stats.AdminSent[m.Op]++
	k.stats.AdminBytes += uint64(len(m.Body))
	if rep != nil {
		rep.noteAdmin(len(m.Body))
	}
	k.route(m)
}

// sendDone emits the OpMigrateDone report message (message 9, also the
// refusal path's reply).
func (k *Kernel) sendDone(to addr.ProcessAddr, d msg.MigrateDone, rep *MigrationReport) {
	m := k.newControl(msg.OpMigrateDone, to)
	m.Body = d.AppendTo(m.Body[:0])
	k.sendAdmin(m, rep)
}

// sendPIDMachine emits one of the {PID, machine} administrative messages
// (accept, refuse, established, abort).
func (k *Kernel) sendPIDMachine(to addr.ProcessAddr, op msg.Op, pm msg.PIDMachine, rep *MigrationReport) {
	m := k.newControl(op, to)
	m.Body = pm.AppendTo(m.Body[:0])
	k.sendAdmin(m, rep)
}

// --- source side -----------------------------------------------------------

// handleMigrateRequest is step 1: remove the process from execution.
func (k *Kernel) handleMigrateRequest(m *msg.Message) {
	req, err := msg.DecodeMigrateRequest(m.Body)
	if err != nil {
		return
	}
	p := k.lookup(req.PID)
	if p == nil || p.state == StateForwarder || p.state == StateIncoming {
		k.sendDone(m.From, msg.MigrateDone{PID: req.PID, Machine: k.machine, OK: false}, nil)
		return
	}
	if req.Dest == k.machine {
		// Trivial migration: already here.
		k.sendDone(m.From, msg.MigrateDone{PID: req.PID, Machine: k.machine, OK: true}, nil)
		return
	}
	if _, busy := k.out[req.PID]; busy || p.state == StateInMigration {
		k.sendDone(m.From, msg.MigrateDone{PID: req.PID, Machine: k.machine, OK: false}, nil)
		return
	}

	om := &outMigration{p: p, dest: req.Dest, requester: m.From}
	om.rep = MigrationReport{
		PID: p.id, From: k.machine, To: req.Dest, Start: k.eng.Now(),
	}
	// Count the request we just received.
	om.rep.noteAdmin(len(m.Body))

	// Step 1: "The process is marked as 'in migration'. If it had been
	// ready, it is removed from the run queue. No change is made to the
	// recorded state of the process" — so prevState (ready, waiting, or
	// suspended) travels in the resident record and is restored verbatim.
	p.prevState = p.state
	p.state = StateInMigration
	k.removeFromRunq(p)
	k.trace(trace.CatMigrate, "step1-remove-from-execution",
		fmt.Sprintf("%v was %v", p.id, p.prevState))

	// Freeze the three payloads at this instant.
	var err2 error
	om.resident = k.encodeResident(p)
	ctl, err := p.body.Snapshot()
	if err != nil {
		k.abortOutMigration(om, fmt.Errorf("snapshot: %w", err))
		return
	}
	om.swappable = encodeSwappable(p.links, ctl)
	if p.image != nil {
		om.program, err2 = p.image.Bytes()
		if err2 != nil {
			k.abortOutMigration(om, fmt.Errorf("program image: %w", err2))
			return
		}
	}
	om.rep.ResidentBytes = len(om.resident)
	om.rep.SwappableBytes = len(om.swappable)
	om.rep.ProgramBytes = len(om.program)
	k.out[p.id] = om
	if k.killpoint(KPSourceFrozen, p.id) {
		return
	}

	// Step 2: "A message is sent to the kernel on the destination
	// processor, asking it to migrate the process to its machine."
	ask := msg.MigrateAsk{
		PID:       p.id,
		Program:   msg.ToUnits(len(om.program)),
		Resident:  msg.ToUnits(len(om.resident)),
		Swappable: msg.ToUnits(len(om.swappable)),
	}
	k.trace(trace.CatMigrate, "step2-ask-destination",
		fmt.Sprintf("%v -> %v (program=%dB resident=%dB swappable=%dB)",
			p.id, req.Dest, len(om.program), len(om.resident), len(om.swappable)))
	am := k.newControl(msg.OpMigrateAsk, addr.KernelAddr(req.Dest))
	am.Body = ask.AppendTo(am.Body[:0])
	k.sendAdmin(am, &om.rep)
	if k.killpoint(KPSourceAsked, p.id) {
		return
	}
	k.armOutWatchdog(om)
}

func (k *Kernel) abortOutMigration(om *outMigration, cause error) {
	k.trace(trace.CatMigrate, "migrate-aborted", fmt.Sprintf("%v: %v", om.p.id, cause))
	k.eng.Cancel(om.watchdog)
	delete(k.out, om.p.id)
	k.stats.MigrationsFailed++
	k.restoreFrozen(om.p)
	k.sendDone(om.requester, msg.MigrateDone{PID: om.p.id, Machine: k.machine, OK: false}, &om.rep)
}

// restoreFrozen puts a process back the way step 1 found it and redelivers
// anything that was held on its queue meanwhile. The drain is bounded by
// the queue length at entry: redelivery lands re-held messages at the tail,
// and those must not be processed again in this pass.
func (k *Kernel) restoreFrozen(p *Process) {
	switch p.prevState {
	case StateReady:
		k.enqueueRun(p)
	default:
		p.state = p.prevState
	}
	for n := p.queue.Len(); n > 0; n-- {
		k.deliverLocal(p.queue.pop())
	}
}

// handleMigrateAccept is informational on the source: the destination now
// drives steps 4-5 by pulling the three regions.
func (k *Kernel) handleMigrateAccept(m *msg.Message) {
	pm, err := msg.DecodePIDMachine(m.Body)
	if err != nil {
		return
	}
	if om, ok := k.out[pm.PID]; ok {
		om.rep.noteAdmin(len(m.Body))
		k.armOutWatchdog(om)
		k.trace(trace.CatMigrate, "accepted", fmt.Sprintf("%v by %v", pm.PID, pm.Machine))
	}
}

func (k *Kernel) handleMigrateRefuse(m *msg.Message) {
	pm, err := msg.DecodePIDMachine(m.Body)
	if err != nil {
		return
	}
	om, ok := k.out[pm.PID]
	if !ok {
		return
	}
	om.rep.noteAdmin(len(m.Body))
	k.eng.Cancel(om.watchdog)
	k.trace(trace.CatMigrate, "refused",
		fmt.Sprintf("%v refused by %v (§3.2: the process cannot be migrated)", pm.PID, pm.Machine))
	delete(k.out, pm.PID)
	k.stats.MigrationsFailed++
	k.restoreFrozen(om.p)
	k.sendDone(om.requester, msg.MigrateDone{PID: pm.PID, Machine: k.machine, OK: false}, &om.rep)
}

// handleMoveDataReq serves steps 4-5 from the source: stream the requested
// region to the destination kernel.
func (k *Kernel) handleMoveDataReq(m *msg.Message) {
	req, err := msg.DecodeMoveDataReq(m.Body)
	if err != nil {
		return
	}
	om, ok := k.out[req.PID]
	if !ok {
		return
	}
	om.rep.noteAdmin(len(m.Body))
	om.rep.MoveDataTransfers++
	k.armOutWatchdog(om)
	var payload []byte
	switch req.Region {
	case msg.RegionResident:
		payload = om.resident
	case msg.RegionSwappable:
		payload = om.swappable
	case msg.RegionProgram:
		payload = om.program
	}
	packets := k.streamOut(m.From.LastKnown, req.Xfer, payload)
	om.rep.DataPackets += packets
	k.trace(trace.CatData, "stream-region",
		fmt.Sprintf("%v %v: %dB in %d packets -> %v", req.PID, req.Region, len(payload), packets, m.From.LastKnown))
}

// handleMigrateEstablished is steps 6-7 on the source, plus the final
// report to the requester.
func (k *Kernel) handleMigrateEstablished(m *msg.Message) {
	pm, err := msg.DecodePIDMachine(m.Body)
	if err != nil {
		return
	}
	om, ok := k.out[pm.PID]
	if !ok {
		// The migration was aborted here (watchdog) but the
		// destination finished anyway: make it discard its copy so
		// the process cannot run in two places.
		k.sendPIDMachine(m.From, msg.OpMigrateAbort,
			msg.PIDMachine{PID: pm.PID, Machine: k.machine}, nil)
		return
	}
	k.eng.Cancel(om.watchdog)
	om.rep.noteAdmin(len(m.Body))
	p := om.p
	// The destination's copy is now the process: any checkpoint of the
	// source copy is stale, and reviving it after a crash here would
	// fork the process.
	delete(k.stable, p.id)
	if k.killpoint(KPSourceEstablished, p.id) {
		return
	}

	// Step 6: "the source kernel resends all messages that were in the
	// queue when the migration started, or that have arrived since...
	// Before giving them back to the communication system, the source
	// kernel changes the location part of the process address." The drain
	// is bounded by the length at entry; rerouting cannot re-hold here
	// (the record becomes a forwarder below), but the bound keeps the
	// pattern uniform with restoreFrozen.
	forwarded := p.queue.Len()
	for n := forwarded; n > 0; n-- {
		qm := p.queue.pop()
		qm.To.LastKnown = om.dest
		k.stats.ForwardedPending++
		k.route(qm)
	}
	k.trace(trace.CatMigrate, "step6-forward-pending",
		fmt.Sprintf("%v: %d queued messages to %v", p.id, forwarded, om.dest))
	om.rep.PendingForwarded = forwarded

	// Step 7: "all state for the process is removed and space for memory
	// and tables is reclaimed. A forwarding address is left."
	if p.image != nil {
		k.memUsed -= p.image.Size()
		p.image.Discard()
	}
	backPtr := p.cameFrom
	k.delProc(p.id)
	var fwd *Process
	if k.cfg.Mode == ModeForward {
		fwd = &Process{
			id:       p.id,
			state:    StateForwarder,
			fwdTo:    om.dest,
			cameFrom: backPtr,
		}
		k.addProc(fwd)
		k.stats.ForwardersInstalled++
		k.stats.ForwarderBytes += ForwarderWireSize
	}
	k.trace(trace.CatMigrate, "step7-cleanup-forwarding-address",
		fmt.Sprintf("%v: forwarder -> %v (%d bytes)", p.id, om.dest, ForwarderWireSize))

	if k.cfg.EagerUpdate {
		k.broadcastEagerUpdate(p.id, om.dest)
	}
	// The process now lives at the destination: a checkpoint taken here is
	// stale, and reviving it after a crash would fork the process.
	delete(k.stable, p.id)
	if k.killpoint(KPSourceCommitted, p.id) {
		return
	}

	// Step 8 trigger: tell the destination it may restart the process.
	cm := k.newControl(msg.OpMigrateCleanup, addr.KernelAddr(om.dest))
	cm.Body = msg.MigrateCleanup{PID: p.id, Forwarded: uint16(forwarded)}.AppendTo(cm.Body[:0])
	k.sendAdmin(cm, &om.rep)

	// Message 9: report success to the requester (process manager).
	k.sendDone(om.requester, msg.MigrateDone{PID: p.id, Machine: om.dest, OK: true}, &om.rep)

	om.rep.End = k.eng.Now()
	om.rep.OK = true
	k.stats.MigrationsOut++
	k.reports = append(k.reports, om.rep)
	if k.led != nil {
		// The ledger keeps the record by pointer; the forwarder holds it
		// too, so §4/§5 residual traffic keeps accruing to this migration
		// after completion (see Kernel.ledgerForward).
		rec := k.led.Add(ledgerRecord(om.rep))
		if fwd != nil {
			fwd.obsRec = rec
		}
	}
	if k.cfg.OnReport != nil {
		k.cfg.OnReport(om.rep)
	}
	delete(k.out, p.id)
}

func (k *Kernel) broadcastEagerUpdate(pid addr.ProcessID, dest addr.MachineID) {
	pm := msg.PIDMachine{PID: pid, Machine: dest}
	for _, mach := range k.cfg.Machines {
		if mach == k.machine {
			continue
		}
		k.stats.EagerUpdatesSent++
		u := k.newControl(msg.OpEagerUpdate, addr.KernelAddr(mach))
		u.Body = pm.AppendTo(u.Body[:0])
		k.route(u)
	}
	// Fix local tables directly.
	k.applyEagerUpdate(&msg.Message{Body: pm.Encode()})
}

// --- destination side -------------------------------------------------------

// handleMigrateAsk is step 3: allocate an empty process state with the same
// process identifier and reserve resources — or refuse (§3.2).
func (k *Kernel) handleMigrateAsk(m *msg.Message) {
	ask, err := msg.DecodeMigrateAsk(m.Body)
	if err != nil {
		return
	}
	src := m.From.LastKnown
	programBytes := int(ask.Program) * msg.SizeUnit
	memFree := -1
	if k.cfg.MemCapacity > 0 {
		memFree = k.cfg.MemCapacity - k.memUsed
	}
	accept := true
	if existing, dup := k.procs[ask.PID]; dup && existing.state != StateForwarder {
		accept = false // identity collision: refuse
	}
	if accept && k.cfg.Accept != nil {
		accept = k.cfg.Accept(ask, memFree)
	} else if accept && memFree >= 0 && programBytes > memFree {
		accept = false
	}
	if !accept {
		k.stats.MigrationsRefused++
		k.sendPIDMachine(addr.KernelAddr(src), msg.OpMigrateRefuse,
			msg.PIDMachine{PID: ask.PID, Machine: k.machine}, nil)
		return
	}

	// "An empty process state is created on the destination processor...
	// the newly allocated process state has the same process identifier
	// as the migrating process. Resources such as virtual memory swap
	// space are reserved at this time."
	if old, dup := k.procs[ask.PID]; dup && old.state == StateForwarder {
		// The process is migrating back to a machine holding its own
		// forwarding address; the real process supersedes it.
		k.stats.ForwarderBytes -= ForwarderWireSize
		k.delProc(ask.PID)
	}
	p := &Process{
		id:        ask.PID,
		state:     StateIncoming,
		cameFrom:  src,
		createdAt: k.eng.Now(),
		commTo:    make(map[addr.MachineID]uint64),
		commDelta: make(map[addr.MachineID]uint64),
	}
	k.addProc(p)
	im := &inMigration{
		pid: ask.PID, src: src, ask: ask, p: p,
		stage: msg.RegionResident,
		bufs:  make(map[msg.Region][]byte),
	}
	k.in[ask.PID] = im
	k.trace(trace.CatMigrate, "step3-allocate-state",
		fmt.Sprintf("%v from %v (reserving %dB)", ask.PID, src, programBytes))
	if k.killpoint(KPDestAllocated, ask.PID) {
		return
	}
	k.sendPIDMachine(addr.KernelAddr(src), msg.OpMigrateAccept,
		msg.PIDMachine{PID: ask.PID, Machine: k.machine}, nil)
	k.armInWatchdog(im)
	k.pullRegion(im)
}

// pullRegion requests the next region (steps 4 and 5: "Using the move data
// facility, the destination kernel copies...").
func (k *Kernel) pullRegion(im *inMigration) {
	xfer := k.newXferID()
	region := im.stage
	k.registerInStream(xfer, func(data []byte) {
		k.regionArrived(im, region, data)
	})
	step := "step4-transfer-state"
	if region == msg.RegionProgram {
		step = "step5-transfer-program"
	}
	k.trace(trace.CatMigrate, step, fmt.Sprintf("%v pull %v", im.pid, region))
	rm := k.newControl(msg.OpMoveDataReq, addr.KernelAddr(im.src))
	rm.Body = msg.MoveDataReq{PID: im.pid, Region: region, Xfer: xfer}.AppendTo(rm.Body[:0])
	k.sendAdmin(rm, nil)
}

func (k *Kernel) regionArrived(im *inMigration, region msg.Region, data []byte) {
	if _, live := k.in[im.pid]; !live {
		return // aborted while the stream was in flight
	}
	k.armInWatchdog(im)
	im.bufs[region] = data
	switch region {
	case msg.RegionResident:
		im.stage = msg.RegionSwappable
		k.pullRegion(im)
	case msg.RegionSwappable:
		if k.killpoint(KPDestMidTransfer, im.pid) {
			return
		}
		im.stage = msg.RegionProgram
		k.pullRegion(im)
	case msg.RegionProgram:
		if k.killpoint(KPDestTransferred, im.pid) {
			return
		}
		k.assembleProcess(im)
	}
}

// assembleProcess decodes the three regions into a runnable process and
// sends OpMigrateEstablished (end of step 5, message 7).
func (k *Kernel) assembleProcess(im *inMigration) {
	p := im.p
	res, err := decodeResident(im.bufs[msg.RegionResident])
	if err != nil {
		k.failIncoming(im, fmt.Errorf("resident state: %w", err))
		return
	}
	table, ctl, err := decodeSwappable(im.bufs[msg.RegionSwappable])
	if err != nil {
		k.failIncoming(im, fmt.Errorf("swappable state: %w", err))
		return
	}
	body, err := k.cfg.Registry.New(res.kind)
	if err != nil {
		k.failIncoming(im, err)
		return
	}
	if err := body.Restore(ctl); err != nil {
		k.failIncoming(im, fmt.Errorf("restoring %s body: %w", res.kind, err))
		return
	}
	program := im.bufs[msg.RegionProgram]
	var img *memory.Image
	if len(program) > 0 {
		img = memory.NewImage(len(program), k.swap)
		if err := img.WriteAt(program, 0); err != nil {
			k.failIncoming(im, err)
			return
		}
		if mh, ok := body.(proc.MemoryHolder); ok {
			mh.SetImage(img)
		}
		k.memUsed += img.Size()
		k.relieveMemory()
	}
	p.body = body
	p.kind = res.kind
	p.links = table
	p.image = img
	p.privileged = res.privileged
	p.prevState = res.prevState
	p.cpuUsed = res.cpuUsed
	p.msgsIn = res.msgsIn
	p.msgsOut = res.msgsOut
	k.stats.MigrationsIn++
	im.established = true
	k.sendPIDMachine(addr.KernelAddr(im.src), msg.OpMigrateEstablished,
		msg.PIDMachine{PID: im.pid, Machine: k.machine}, nil)
	k.armInWatchdog(im) // the cleanup message must still arrive
}

func (k *Kernel) failIncoming(im *inMigration, cause error) {
	k.trace(trace.CatMigrate, "incoming-failed", fmt.Sprintf("%v: %v", im.pid, cause))
	k.eng.Cancel(im.watchdog)
	if im.p != nil {
		if im.p.image != nil {
			k.memUsed -= im.p.image.Size()
			im.p.image.Discard()
		}
		for im.p.queue.Len() > 0 {
			k.putMsg(im.p.queue.pop())
		}
	}
	delete(k.in, im.pid)
	k.delProc(im.pid)
	k.stats.MigrationsFailed++
}

// handleMigrateCleanup is step 8: "The process is restarted in whatever
// state it was in before being migrated."
func (k *Kernel) handleMigrateCleanup(m *msg.Message) {
	c, err := msg.DecodeMigrateCleanup(m.Body)
	if err != nil {
		return
	}
	im, ok := k.in[c.PID]
	if !ok {
		// Already committed on watchdog timeout: this late cleanup
		// confirms the source made itself a forwarder, so no abort is
		// coming and the conflict flag can clear.
		if p := k.lookup(c.PID); p != nil && p.timeoutCommit {
			p.timeoutCommit = false
		}
		return
	}
	if k.killpoint(KPDestCleanup, c.PID) {
		return
	}
	k.eng.Cancel(im.watchdog)
	k.commitIncoming(im, fmt.Sprintf("%d pending had been forwarded", c.Forwarded), false)
}

// commitIncoming finishes step 8 for an assembled process: drain the
// messages queued while incoming, restore the pre-migration state, and (if
// configured) follow the process with a stable-storage checkpoint.
func (k *Kernel) commitIncoming(im *inMigration, note string, viaTimeout bool) {
	delete(k.in, im.pid)
	p := im.p
	p.timeoutCommit = viaTimeout

	// Messages queued here while incoming: DELIVERTOKERNEL ones go to
	// the kernel now; the rest rotate back to the tail for the process.
	// The drain is bounded by the length at entry so rotated (and newly
	// arriving) messages are not re-examined.
	for n := p.queue.Len(); n > 0; n-- {
		hm := p.queue.pop()
		if hm.DTK {
			k.kernelMsg(hm)
			k.putMsg(hm)
		} else {
			p.queue.push(hm)
		}
	}

	switch p.prevState {
	case StateWaiting:
		if p.queue.Len() > 0 {
			k.enqueueRun(p)
		} else {
			p.state = StateWaiting
		}
	case StateSuspended:
		p.state = StateSuspended
	default:
		k.enqueueRun(p)
	}
	k.trace(trace.CatMigrate, "step8-restart",
		fmt.Sprintf("%v restarted as %v (%s)", p.id, p.state, note))
	if k.cfg.CheckpointOnArrival {
		_ = k.SaveCheckpoint(p.id)
	}
}

// --- resident / swappable encodings ----------------------------------------

// residentState is the kernel process record moved as the non-swappable
// state (§6: "The non-swappable state uses about 250 bytes").
type residentState struct {
	kind       string
	prevState  ProcState
	privileged bool
	imageSize  int
	cpuUsed    sim.Time
	msgsIn     uint64
	msgsOut    uint64
}

func (k *Kernel) encodeResident(p *Process) []byte {
	imgSize := 0
	if p.image != nil {
		imgSize = p.image.Size()
	}
	b := make([]byte, 0, 64+len(p.kind))
	b = append(b, byte(len(p.kind)))
	b = append(b, p.kind...)
	b = append(b, byte(p.prevState))
	if p.privileged {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(imgSize))
	b = binary.LittleEndian.AppendUint64(b, uint64(p.cpuUsed))
	b = binary.LittleEndian.AppendUint64(b, p.msgsIn)
	b = binary.LittleEndian.AppendUint64(b, p.msgsOut)
	b = binary.LittleEndian.AppendUint64(b, uint64(p.createdAt))
	b = binary.LittleEndian.AppendUint32(b, uint32(p.queueHighWater))
	return b
}

func decodeResident(b []byte) (residentState, error) {
	var r residentState
	if len(b) < 1 {
		return r, fmt.Errorf("empty resident record")
	}
	n := int(b[0])
	b = b[1:]
	if len(b) < n+2+4+8+8+8+8+4 {
		return r, fmt.Errorf("short resident record")
	}
	r.kind = string(b[:n])
	b = b[n:]
	r.prevState = ProcState(b[0])
	r.privileged = b[1] != 0
	r.imageSize = int(binary.LittleEndian.Uint32(b[2:]))
	r.cpuUsed = sim.Time(binary.LittleEndian.Uint64(b[6:]))
	r.msgsIn = binary.LittleEndian.Uint64(b[14:])
	r.msgsOut = binary.LittleEndian.Uint64(b[22:])
	return r, nil
}

// encodeSwappable packs the link table and the body control state —
// the swappable state whose size "depend[s] on the size of the link table".
func encodeSwappable(t *link.Table, ctl []byte) []byte {
	ts := t.Snapshot()
	b := make([]byte, 0, 4+len(ts)+len(ctl))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ts)))
	b = append(b, ts...)
	b = append(b, ctl...)
	return b
}

func decodeSwappable(b []byte) (*link.Table, []byte, error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("short swappable state")
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if len(b) < n {
		return nil, nil, fmt.Errorf("truncated link table")
	}
	t, err := link.RestoreTable(b[:n])
	if err != nil {
		return nil, nil, err
	}
	return t, b[n:], nil
}

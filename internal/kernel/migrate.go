package kernel

import (
	"encoding/binary"
	"fmt"

	"demosmp/internal/addr"
	"demosmp/internal/link"
	"demosmp/internal/memory"
	"demosmp/internal/msg"
	"demosmp/internal/proc"
	"demosmp/internal/sim"
	"demosmp/internal/trace"
)

// This file implements §3.1's eight steps. The source kernel handles steps
// 1-2 and 6-7; the destination kernel controls steps 3-5 and 8 ("The next
// part of the migration, up to the forwarding of messages, will be
// controlled by the destination processor kernel").
//
// Administrative messages (all KindControl, payloads 6-12 bytes):
//
//	1. process manager -> src : OpMigrateRequest   (DELIVERTOKERNEL)
//	2. src -> dst             : OpMigrateAsk       (sizes)
//	3. dst -> src             : OpMigrateAccept / OpMigrateRefuse
//	4. dst -> src             : OpMoveDataReq(resident)
//	5. dst -> src             : OpMoveDataReq(swappable)
//	6. dst -> src             : OpMoveDataReq(program)
//	7. dst -> src             : OpMigrateEstablished
//	8. src -> dst             : OpMigrateCleanup
//	9. src -> process manager : OpMigrateDone
//
// — nine messages, matching the paper's administrative cost.
//
// Fast-path notes (DESIGN.md §7 "migration fast path"): the protocol above
// is pinned by the conformance tests, but its bookkeeping is not. Both
// migration halves are pooled records with once-bound watchdog closures;
// the frozen regions are gather-encoded into scratch buffers that survive
// recycling; region pulls reassemble into pre-warmed buffers sized from the
// MigrateAsk announcement; and trace formatting is hoisted behind k.traceOn
// so a tracerless kernel never touches fmt.

// outMigration is the source half of one in-flight migration. Records are
// pooled (k.omFree): the scratch buffers and the watchdog closure survive
// recycling, so a warm kernel freezes a process without allocating.
type outMigration struct {
	p         *Process
	dest      addr.MachineID
	requester addr.ProcessAddr
	rep       MigrationReport
	watchdog  sim.Event
	wdFn      func() // bound once at construction; identity-checked on fire

	// Frozen region payloads (step 1). resident and table are gather-
	// encoded into scratch that survives recycling; ctl and program are
	// produced by the body/image and owned until release. swapHdr is the
	// 4-byte length prefix of the swappable region, kept separate so
	// handleMoveDataReq can stream the region as a three-vector gather
	// without re-concatenating table and control state.
	resident []byte
	swapHdr  [4]byte
	table    []byte
	ctl      []byte
	program  []byte

	next *outMigration // free list
}

// inMigration is the destination half. Also pooled (k.imFree); the region
// reassembly buffers are indexed by msg.Region and keep their backing
// across migrations, so a process bouncing between two machines reaches a
// steady state where its transfers touch no allocator.
type inMigration struct {
	pid      addr.ProcessID
	src      addr.MachineID
	ask      msg.MigrateAsk
	p        *Process
	stage    msg.Region
	bufs     [4][]byte // region reassembly buffers, indexed by msg.Region
	watchdog sim.Event
	wdFn     func()
	// xfer/streaming track the one in-flight region pull so failIncoming
	// can release the stream record it registered in k.xfersIn.
	xfer      uint16
	streaming bool
	// established is set once the process is fully assembled and
	// message 7 has been sent: from here on this copy is the process,
	// and a silent source must not make the watchdog discard it.
	established bool

	next *inMigration // free list
}

// ensure pre-sizes one region buffer (the "pre-warmed destination slot"):
// the MigrateAsk sizes are rounded up to msg.SizeUnit, so a buffer with
// this capacity never grows during the transfer.
func (im *inMigration) ensure(r msg.Region, n int) {
	if cap(im.bufs[r]) < n {
		im.bufs[r] = make([]byte, 0, n)
	}
}

// migrateEnvelopeReserve is how many envelopes the destination pool is
// topped up to when accepting a migration (step 3): enough for the admin
// replies and acks of one transfer to find warm envelopes.
const migrateEnvelopeReserve = 4

func (k *Kernel) getOutMigration() *outMigration {
	om := k.omFree
	if om == nil {
		om = &outMigration{}
		om.wdFn = func() { k.outWatchdogFired(om) }
		return om
	}
	k.omFree = om.next
	om.next = nil
	return om
}

// putOutMigration releases a source-side record. Callers must have
// canceled the watchdog and removed the record from k.out; records
// orphaned by a crash (Restart reassigns k.out wholesale) are simply
// dropped to the GC and never reach the free list.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestMigrationSteadyStateAllocs in bench_hotpath_test.go.
func (k *Kernel) putOutMigration(om *outMigration) {
	resident, table := om.resident[:0], om.table[:0]
	wd := om.wdFn
	*om = outMigration{resident: resident, table: table, wdFn: wd}
	om.next = k.omFree
	k.omFree = om
}

func (k *Kernel) getInMigration() *inMigration {
	im := k.imFree
	if im == nil {
		im = &inMigration{}
		im.wdFn = func() { k.inWatchdogFired(im) }
		return im
	}
	k.imFree = im.next
	im.next = nil
	return im
}

// putInMigration releases a destination-side record (same contract as
// putOutMigration: watchdog canceled, k.in entry gone).
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestMigrationSteadyStateAllocs in bench_hotpath_test.go.
func (k *Kernel) putInMigration(im *inMigration) {
	bufs := im.bufs
	for i := range bufs {
		bufs[i] = bufs[i][:0]
	}
	wd := im.wdFn
	*im = inMigration{bufs: bufs, wdFn: wd}
	im.next = k.imFree
	k.imFree = im
}

// armOutWatchdog (re)starts the source-side progress timer. If the
// destination goes silent — crashed mid-transfer, network partition — the
// source gives up, discards the destination's half-built state, and
// restores the frozen process as if the migration had been refused.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestMigrationSteadyStateAllocs in bench_hotpath_test.go.
func (k *Kernel) armOutWatchdog(om *outMigration) {
	k.eng.Cancel(om.watchdog)
	om.watchdog = k.eng.After(k.cfg.MigrateTimeout, "kernel:migrate-watchdog", om.wdFn)
}

// armInWatchdog (re)starts the destination-side progress timer: if the
// source stops streaming (or never sends cleanup), discard the incoming
// state and tell the source to restore the process.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestMigrationSteadyStateAllocs in bench_hotpath_test.go.
func (k *Kernel) armInWatchdog(im *inMigration) {
	k.eng.Cancel(im.watchdog)
	im.watchdog = k.eng.After(k.cfg.MigrateTimeout, "kernel:migrate-watchdog", im.wdFn)
}

// outWatchdogFired is the source-side timeout. The pointer-identity check
// against k.out makes a stale fire on a recycled record a no-op.
func (k *Kernel) outWatchdogFired(om *outMigration) {
	if k.crashed {
		return // Restart discards the migration wholesale
	}
	if om.p == nil || k.out[om.p.id] != om {
		return
	}
	abort := k.newControl(msg.OpMigrateAbort, addr.KernelAddr(om.dest))
	abort.Body = msg.PIDMachine{PID: om.p.id, Machine: k.machine}.AppendTo(abort.Body[:0])
	k.sendAdmin(abort, nil)
	k.abortOutMigration(om, fmt.Errorf("no progress from %v in %v", om.dest, k.cfg.MigrateTimeout))
}

// inWatchdogFired is the destination-side timeout.
func (k *Kernel) inWatchdogFired(im *inMigration) {
	if k.crashed {
		return // Restart discards the migration wholesale
	}
	if k.in[im.pid] != im {
		return
	}
	if im.established {
		// Step 5 completed: this copy IS the process, and the
		// source has gone silent — crashed before step 7, or its
		// cleanup is stuck in retransmission. Committing cannot
		// fork: a crashed source wiped its copy (and invalidated
		// its stale checkpoint when it learned we were
		// established), and a source that instead aborted and
		// restored its copy sends OpMigrateAbort, which a
		// timeout-committed copy yields to.
		if k.traceOn {
			k.trace(trace.CatMigrate, "timeout-commit", im.pid.String())
		}
		k.commitIncoming(im, 0, true)
		return
	}
	abort := k.newControl(msg.OpMigrateAbort, addr.KernelAddr(im.src))
	abort.Body = msg.PIDMachine{PID: im.pid, Machine: k.machine}.AppendTo(abort.Body[:0])
	k.sendAdmin(abort, nil)
	k.failIncoming(im, fmt.Errorf("no progress from %v in %v", im.src, k.cfg.MigrateTimeout))
}

// handleMigrateAbort discards whichever half of an in-flight migration
// this kernel holds.
func (k *Kernel) handleMigrateAbort(m *msg.Message) {
	pm, err := msg.DecodePIDMachine(m.Body)
	if err != nil {
		return
	}
	if om, ok := k.out[pm.PID]; ok {
		k.abortOutMigration(om, fmt.Errorf("aborted by %v", pm.Machine))
		return
	}
	if im, ok := k.in[pm.PID]; ok {
		k.failIncoming(im, fmt.Errorf("aborted by %v", pm.Machine))
		return
	}
	// An abort reaching a copy committed on watchdog timeout means the
	// source restored its own copy before learning we were established:
	// exactly-one requires the younger copy to yield. Duplicate or stale
	// aborts find no process, or a cleanly-committed one (timeoutCommit
	// false), and fall through as no-ops.
	if p := k.lookup(pm.PID); p != nil && p.timeoutCommit && p.state != StateForwarder {
		k.yieldTimeoutCommit(p, pm.Machine)
	}
}

// yieldTimeoutCommit discards a timeout-committed copy in favour of the
// source's restored one. Queued messages die here and are accounted as
// dead letters; the local stable checkpoint is invalidated so a later
// restart cannot resurrect the yielded copy.
func (k *Kernel) yieldTimeoutCommit(p *Process, src addr.MachineID) {
	if k.traceOn {
		k.trace(trace.CatMigrate, "timeout-commit-yield",
			fmt.Sprintf("%v yields to restored copy on %v", p.id, src))
	}
	k.removeFromRunq(p)
	if p.image != nil {
		k.memUsed -= p.image.Size()
		p.image.Discard()
	}
	for p.queue.Len() > 0 {
		k.stats.DeadLetters++
		k.putMsg(p.queue.pop())
	}
	delete(k.stable, p.id)
	k.delProc(p.id)
	k.stats.MigrationsFailed++
	k.putProcRec(p)
}

// sendAdmin accounts for one administrative message — globally and (if rep
// != nil) in the per-migration report — and routes it. Callers build m with
// newControl and fill Body in place with an AppendTo encoder, so the nine
// protocol messages of a migration reuse pooled envelopes end to end.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestHotPathZeroAlloc/admin-encode in bench_hotpath_test.go.
func (k *Kernel) sendAdmin(m *msg.Message, rep *MigrationReport) {
	k.stats.AdminSent[m.Op]++
	k.stats.AdminBytes += uint64(len(m.Body))
	if rep != nil {
		rep.noteAdmin(len(m.Body))
	}
	k.route(m)
}

// sendDone emits the OpMigrateDone report message (message 9, also the
// refusal path's reply).
func (k *Kernel) sendDone(to addr.ProcessAddr, d msg.MigrateDone, rep *MigrationReport) {
	m := k.newControl(msg.OpMigrateDone, to)
	m.Body = d.AppendTo(m.Body[:0])
	k.sendAdmin(m, rep)
}

// sendPIDMachine emits one of the {PID, machine} administrative messages
// (accept, refuse, established, abort).
func (k *Kernel) sendPIDMachine(to addr.ProcessAddr, op msg.Op, pm msg.PIDMachine, rep *MigrationReport) {
	m := k.newControl(op, to)
	m.Body = pm.AppendTo(m.Body[:0])
	k.sendAdmin(m, rep)
}

// --- source side -----------------------------------------------------------

// handleMigrateRequest is step 1: remove the process from execution.
func (k *Kernel) handleMigrateRequest(m *msg.Message) {
	req, err := msg.DecodeMigrateRequest(m.Body)
	if err != nil {
		return
	}
	p := k.lookup(req.PID)
	if p == nil || p.state == StateForwarder || p.state == StateIncoming {
		k.sendDone(m.From, msg.MigrateDone{PID: req.PID, Machine: k.machine, OK: false}, nil)
		return
	}
	if req.Dest == k.machine {
		// Trivial migration: already here.
		k.sendDone(m.From, msg.MigrateDone{PID: req.PID, Machine: k.machine, OK: true}, nil)
		return
	}
	if _, busy := k.out[req.PID]; busy || p.state == StateInMigration {
		k.sendDone(m.From, msg.MigrateDone{PID: req.PID, Machine: k.machine, OK: false}, nil)
		return
	}

	om := k.getOutMigration()
	om.p, om.dest, om.requester = p, req.Dest, m.From
	om.rep = MigrationReport{
		PID: p.id, From: k.machine, To: req.Dest, Start: k.eng.Now(),
	}
	// Count the request we just received.
	om.rep.noteAdmin(len(m.Body))

	// Step 1: "The process is marked as 'in migration'. If it had been
	// ready, it is removed from the run queue. No change is made to the
	// recorded state of the process" — so prevState (ready, waiting, or
	// suspended) travels in the resident record and is restored verbatim.
	p.prevState = p.state
	p.state = StateInMigration
	k.removeFromRunq(p)
	if k.traceOn {
		k.traceStep1(p)
	}

	// Freeze the three payloads at this instant, gather-encoding the
	// resident record and link table into the record's scratch buffers.
	om.resident = appendResident(om.resident[:0], p)
	ctl, err := p.body.Snapshot()
	if err != nil {
		k.abortOutMigration(om, fmt.Errorf("snapshot: %w", err))
		return
	}
	om.ctl = ctl
	om.table = p.links.AppendSnapshot(om.table[:0])
	binary.LittleEndian.PutUint32(om.swapHdr[:], uint32(len(om.table)))
	if p.image != nil {
		om.program, err = p.image.Bytes()
		if err != nil {
			k.abortOutMigration(om, fmt.Errorf("program image: %w", err))
			return
		}
	}
	swappable := len(om.swapHdr) + len(om.table) + len(om.ctl)
	om.rep.ResidentBytes = len(om.resident)
	om.rep.SwappableBytes = swappable
	om.rep.ProgramBytes = len(om.program)
	k.out[p.id] = om
	if k.killpoint(KPSourceFrozen, p.id) {
		return
	}

	// Step 2: "A message is sent to the kernel on the destination
	// processor, asking it to migrate the process to its machine."
	ask := msg.MigrateAsk{
		PID:       p.id,
		Program:   msg.ToUnits(len(om.program)),
		Resident:  msg.ToUnits(len(om.resident)),
		Swappable: msg.ToUnits(swappable),
	}
	if k.traceOn {
		k.traceStep2(om, swappable)
	}
	am := k.newControl(msg.OpMigrateAsk, addr.KernelAddr(req.Dest))
	am.Body = ask.AppendTo(am.Body[:0])
	k.sendAdmin(am, &om.rep)
	if k.killpoint(KPSourceAsked, p.id) {
		return
	}
	k.armOutWatchdog(om)
}

func (k *Kernel) traceStep1(p *Process) {
	k.trace(trace.CatMigrate, "step1-remove-from-execution",
		fmt.Sprintf("%v was %v", p.id, p.prevState))
}

func (k *Kernel) traceStep2(om *outMigration, swappable int) {
	k.trace(trace.CatMigrate, "step2-ask-destination",
		fmt.Sprintf("%v -> %v (program=%dB resident=%dB swappable=%dB)",
			om.p.id, om.dest, len(om.program), len(om.resident), swappable))
}

func (k *Kernel) abortOutMigration(om *outMigration, cause error) {
	if k.traceOn {
		k.trace(trace.CatMigrate, "migrate-aborted", fmt.Sprintf("%v: %v", om.p.id, cause))
	}
	k.eng.Cancel(om.watchdog)
	delete(k.out, om.p.id)
	k.stats.MigrationsFailed++
	k.restoreFrozen(om.p)
	k.sendDone(om.requester, msg.MigrateDone{PID: om.p.id, Machine: k.machine, OK: false}, &om.rep)
	k.putOutMigration(om)
}

// restoreFrozen puts a process back the way step 1 found it and redelivers
// anything that was held on its queue meanwhile. The drain is bounded by
// the queue length at entry: redelivery lands re-held messages at the tail,
// and those must not be processed again in this pass.
func (k *Kernel) restoreFrozen(p *Process) {
	switch p.prevState {
	case StateReady:
		k.enqueueRun(p)
	default:
		p.state = p.prevState
	}
	for n := p.queue.Len(); n > 0; n-- {
		k.deliverLocal(p.queue.pop())
	}
}

// handleMigrateAccept is informational on the source: the destination now
// drives steps 4-5 by pulling the three regions.
func (k *Kernel) handleMigrateAccept(m *msg.Message) {
	pm, err := msg.DecodePIDMachine(m.Body)
	if err != nil {
		return
	}
	if om, ok := k.out[pm.PID]; ok {
		om.rep.noteAdmin(len(m.Body))
		k.armOutWatchdog(om)
		if k.traceOn {
			k.trace(trace.CatMigrate, "accepted", fmt.Sprintf("%v by %v", pm.PID, pm.Machine))
		}
	}
}

func (k *Kernel) handleMigrateRefuse(m *msg.Message) {
	pm, err := msg.DecodePIDMachine(m.Body)
	if err != nil {
		return
	}
	om, ok := k.out[pm.PID]
	if !ok {
		return
	}
	om.rep.noteAdmin(len(m.Body))
	k.eng.Cancel(om.watchdog)
	if k.traceOn {
		k.trace(trace.CatMigrate, "refused",
			fmt.Sprintf("%v refused by %v (§3.2: the process cannot be migrated)", pm.PID, pm.Machine))
	}
	delete(k.out, pm.PID)
	k.stats.MigrationsFailed++
	k.restoreFrozen(om.p)
	k.sendDone(om.requester, msg.MigrateDone{PID: pm.PID, Machine: k.machine, OK: false}, &om.rep)
	k.putOutMigration(om)
}

// handleMoveDataReq serves steps 4-5 from the source: stream the requested
// region to the destination kernel. The swappable region goes out as a
// three-vector gather (length prefix, link table, body control state) —
// byte-identical on the wire to the old concatenating encoder, but without
// ever building the concatenation.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestMigrationSteadyStateAllocs in bench_hotpath_test.go.
func (k *Kernel) handleMoveDataReq(m *msg.Message) {
	req, err := msg.DecodeMoveDataReq(m.Body)
	if err != nil {
		return
	}
	om, ok := k.out[req.PID]
	if !ok {
		return
	}
	om.rep.noteAdmin(len(m.Body))
	om.rep.MoveDataTransfers++
	k.armOutWatchdog(om)
	var vecs [3][]byte
	nv := 1
	switch req.Region {
	case msg.RegionResident:
		vecs[0] = om.resident
	case msg.RegionSwappable:
		vecs[0], vecs[1], vecs[2] = om.swapHdr[:], om.table, om.ctl
		nv = 3
	case msg.RegionProgram:
		vecs[0] = om.program
	}
	total := 0
	for _, v := range vecs[:nv] {
		total += len(v)
	}
	packets := k.streamGather(addr.KernelAddr(m.From.LastKnown), false, req.Xfer, 0, vecs[:nv])
	om.rep.DataPackets += packets
	if k.traceOn {
		k.traceStreamRegion(req, total, packets, m.From.LastKnown)
	}
}

func (k *Kernel) traceStreamRegion(req msg.MoveDataReq, total, packets int, to addr.MachineID) {
	k.trace(trace.CatData, "stream-region",
		fmt.Sprintf("%v %v: %dB in %d packets -> %v", req.PID, req.Region, total, packets, to))
}

// handleMigrateEstablished is steps 6-7 on the source, plus the final
// report to the requester.
func (k *Kernel) handleMigrateEstablished(m *msg.Message) {
	pm, err := msg.DecodePIDMachine(m.Body)
	if err != nil {
		return
	}
	om, ok := k.out[pm.PID]
	if !ok {
		// The migration was aborted here (watchdog) but the
		// destination finished anyway: make it discard its copy so
		// the process cannot run in two places.
		k.sendPIDMachine(m.From, msg.OpMigrateAbort,
			msg.PIDMachine{PID: pm.PID, Machine: k.machine}, nil)
		return
	}
	k.eng.Cancel(om.watchdog)
	om.rep.noteAdmin(len(m.Body))
	p := om.p
	// The destination's copy is now the process: any checkpoint of the
	// source copy is stale, and reviving it after a crash here would
	// fork the process.
	delete(k.stable, p.id)
	if k.killpoint(KPSourceEstablished, p.id) {
		return
	}

	// Step 6: "the source kernel resends all messages that were in the
	// queue when the migration started, or that have arrived since...
	// Before giving them back to the communication system, the source
	// kernel changes the location part of the process address." The drain
	// is bounded by the length at entry; rerouting cannot re-hold here
	// (the record becomes a forwarder below), but the bound keeps the
	// pattern uniform with restoreFrozen.
	forwarded := p.queue.Len()
	if k.cfg.CoalesceLinkUpdates && k.cfg.Mode == ModeForward && forwarded > 0 {
		k.sendCoalescedUpdates(p, om.dest, forwarded)
	}
	for n := forwarded; n > 0; n-- {
		qm := p.queue.pop()
		qm.To.LastKnown = om.dest
		k.stats.ForwardedPending++
		k.route(qm)
	}
	if k.traceOn {
		k.trace(trace.CatMigrate, "step6-forward-pending",
			fmt.Sprintf("%v: %d queued messages to %v", p.id, forwarded, om.dest))
	}
	om.rep.PendingForwarded = forwarded

	// Step 7: "all state for the process is removed and space for memory
	// and tables is reclaimed. A forwarding address is left." The dead
	// record is recycled immediately — in forwarding mode it is reborn as
	// the forwarding address, so installing one allocates nothing.
	if p.image != nil {
		k.memUsed -= p.image.Size()
		p.image.Discard()
	}
	pid := p.id
	backPtr := p.cameFrom
	k.delProc(pid)
	k.putProcRec(p)
	var fwd *Process
	if k.cfg.Mode == ModeForward {
		fwd = k.getProcRec()
		fwd.id = pid
		fwd.state = StateForwarder
		fwd.fwdTo = om.dest
		fwd.cameFrom = backPtr
		k.addProc(fwd)
		k.stats.ForwardersInstalled++
		k.stats.ForwarderBytes += ForwarderWireSize
	}
	if k.traceOn {
		k.trace(trace.CatMigrate, "step7-cleanup-forwarding-address",
			fmt.Sprintf("%v: forwarder -> %v (%d bytes)", pid, om.dest, ForwarderWireSize))
	}

	if k.cfg.EagerUpdate {
		k.broadcastEagerUpdate(pid, om.dest)
	}
	// The process now lives at the destination: a checkpoint taken here is
	// stale, and reviving it after a crash would fork the process.
	delete(k.stable, pid)
	if k.killpoint(KPSourceCommitted, pid) {
		return
	}

	// Step 8 trigger: tell the destination it may restart the process.
	cm := k.newControl(msg.OpMigrateCleanup, addr.KernelAddr(om.dest))
	cm.Body = msg.MigrateCleanup{PID: pid, Forwarded: uint16(forwarded)}.AppendTo(cm.Body[:0])
	k.sendAdmin(cm, &om.rep)

	// Message 9: report success to the requester (process manager).
	k.sendDone(om.requester, msg.MigrateDone{PID: pid, Machine: om.dest, OK: true}, &om.rep)

	om.rep.End = k.eng.Now()
	om.rep.OK = true
	k.stats.MigrationsOut++
	k.reports = append(k.reports, om.rep)
	if k.led != nil {
		// The ledger keeps the record by pointer; the forwarder holds it
		// too, so §4/§5 residual traffic keeps accruing to this migration
		// after completion (see Kernel.ledgerForward).
		rec := k.led.Add(ledgerRecord(om.rep))
		if fwd != nil {
			fwd.obsRec = rec
		}
	}
	if k.cfg.OnReport != nil {
		k.cfg.OnReport(om.rep)
	}
	delete(k.out, pid)
	k.putOutMigration(om)
}

// sendCoalescedUpdates walks the held queue of a process about to be
// forwarded (step 6) and repairs every stale sender proactively: one
// OpLinkUpdateBatch admin envelope per sender machine, instead of each
// sender paying +2 frames per stale send and one LinkUpdate each on the
// lazy path. Cold and flag-gated (Config.CoalesceLinkUpdates): the §6
// conformance pins fix the default protocol's message counts.
func (k *Kernel) sendCoalescedUpdates(p *Process, dest addr.MachineID, n int) {
	type bucket struct {
		mach    addr.MachineID
		senders []addr.ProcessID
	}
	var buckets []bucket
	for i := 0; i < n; i++ {
		qm := p.queue.at(i)
		if !k.shouldSendLinkUpdate(qm) {
			continue
		}
		mach := qm.From.LastKnown
		if mach == addr.NoMachine {
			continue
		}
		var b *bucket
		for j := range buckets {
			if buckets[j].mach == mach {
				b = &buckets[j]
				break
			}
		}
		if b == nil {
			buckets = append(buckets, bucket{mach: mach})
			b = &buckets[len(buckets)-1]
		}
		dup := false
		for _, s := range b.senders {
			if s == qm.From.ID {
				dup = true
				break
			}
		}
		if !dup {
			b.senders = append(b.senders, qm.From.ID)
		}
	}
	for _, b := range buckets {
		for off := 0; off < len(b.senders); off += msg.MaxBatchSenders {
			hi := off + msg.MaxBatchSenders
			if hi > len(b.senders) {
				hi = len(b.senders)
			}
			u := msg.LinkUpdateBatch{Migrated: p.id, Machine: dest, Senders: b.senders[off:hi]}
			bm := k.newControl(msg.OpLinkUpdateBatch, addr.KernelAddr(b.mach))
			bm.Body = u.AppendTo(bm.Body[:0])
			k.stats.LinkUpdateBatchesSent++
			k.stats.LinkUpdatesBatched += uint64(hi - off)
			if k.traceOn {
				k.trace(trace.CatLinkUpdate, "linkupdate-batch",
					fmt.Sprintf("to m%d: %v now on %v (%d senders)", uint16(b.mach), p.id, dest, hi-off))
			}
			k.route(bm)
		}
	}
}

func (k *Kernel) broadcastEagerUpdate(pid addr.ProcessID, dest addr.MachineID) {
	pm := msg.PIDMachine{PID: pid, Machine: dest}
	for _, mach := range k.cfg.Machines {
		if mach == k.machine {
			continue
		}
		k.stats.EagerUpdatesSent++
		u := k.newControl(msg.OpEagerUpdate, addr.KernelAddr(mach))
		u.Body = pm.AppendTo(u.Body[:0])
		k.route(u)
	}
	// Fix local tables directly.
	k.applyEagerUpdate(&msg.Message{Body: pm.Encode()})
}

// --- destination side -------------------------------------------------------

// handleMigrateAsk is step 3: allocate an empty process state with the same
// process identifier and reserve resources — or refuse (§3.2).
func (k *Kernel) handleMigrateAsk(m *msg.Message) {
	ask, err := msg.DecodeMigrateAsk(m.Body)
	if err != nil {
		return
	}
	src := m.From.LastKnown
	programBytes := int(ask.Program) * msg.SizeUnit
	memFree := -1
	if k.cfg.MemCapacity > 0 {
		memFree = k.cfg.MemCapacity - k.memUsed
	}
	accept := true
	if existing, dup := k.procs[ask.PID]; dup && existing.state != StateForwarder {
		accept = false // identity collision: refuse
	}
	if accept && k.cfg.Accept != nil {
		accept = k.cfg.Accept(ask, memFree)
	} else if accept && memFree >= 0 && programBytes > memFree {
		accept = false
	}
	if !accept {
		k.stats.MigrationsRefused++
		k.sendPIDMachine(addr.KernelAddr(src), msg.OpMigrateRefuse,
			msg.PIDMachine{PID: ask.PID, Machine: k.machine}, nil)
		return
	}

	// "An empty process state is created on the destination processor...
	// the newly allocated process state has the same process identifier
	// as the migrating process. Resources such as virtual memory swap
	// space are reserved at this time."
	if old, dup := k.procs[ask.PID]; dup && old.state == StateForwarder {
		// The process is migrating back to a machine holding its own
		// forwarding address; the real process supersedes it.
		k.stats.ForwarderBytes -= ForwarderWireSize
		k.delProc(ask.PID)
		k.putProcRec(old)
	}
	p := k.getProcRec()
	p.id = ask.PID
	p.state = StateIncoming
	p.cameFrom = src
	p.createdAt = k.eng.Now()
	k.addProc(p)
	im := k.getInMigration()
	im.pid, im.src, im.ask, im.p = ask.PID, src, ask, p
	im.stage = msg.RegionResident
	// Pre-warmed destination slots: size the region reassembly buffers
	// from the announced (unit-rounded) sizes and top up the envelope
	// pool now, so steps 4-8 do no growth or map work.
	im.ensure(msg.RegionResident, int(ask.Resident)*msg.SizeUnit)
	im.ensure(msg.RegionSwappable, int(ask.Swappable)*msg.SizeUnit)
	im.ensure(msg.RegionProgram, programBytes)
	k.pool.Reserve(migrateEnvelopeReserve)
	k.in[ask.PID] = im
	if k.traceOn {
		k.trace(trace.CatMigrate, "step3-allocate-state",
			fmt.Sprintf("%v from %v (reserving %dB)", ask.PID, src, programBytes))
	}
	if k.killpoint(KPDestAllocated, ask.PID) {
		return
	}
	k.sendPIDMachine(addr.KernelAddr(src), msg.OpMigrateAccept,
		msg.PIDMachine{PID: ask.PID, Machine: k.machine}, nil)
	k.armInWatchdog(im)
	k.pullRegion(im)
}

// pullRegion requests the next region (steps 4 and 5: "Using the move data
// facility, the destination kernel copies..."). The stream record carries
// the migration pointer directly, so region completion dispatches without
// a per-pull closure.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestMigrationSteadyStateAllocs in bench_hotpath_test.go.
func (k *Kernel) pullRegion(im *inMigration) {
	xfer := k.newXferID()
	region := im.stage
	st := k.getInStream()
	st.im = im
	st.region = region
	st.buf = im.bufs[region][:0]
	k.xfersIn[xfer] = st
	im.xfer, im.streaming = xfer, true
	if k.traceOn {
		k.tracePullRegion(im.pid, region)
	}
	rm := k.newControl(msg.OpMoveDataReq, addr.KernelAddr(im.src))
	rm.Body = msg.MoveDataReq{PID: im.pid, Region: region, Xfer: xfer}.AppendTo(rm.Body[:0])
	k.sendAdmin(rm, nil)
}

func (k *Kernel) tracePullRegion(pid addr.ProcessID, region msg.Region) {
	step := "step4-transfer-state"
	if region == msg.RegionProgram {
		step = "step5-transfer-program"
	}
	k.trace(trace.CatMigrate, step, fmt.Sprintf("%v pull %v", pid, region))
}

// regionArrived stores a reassembled region and advances the pull state
// machine. The pointer-identity check makes late completions of an aborted
// (and possibly recycled) migration no-ops.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestMigrationSteadyStateAllocs in bench_hotpath_test.go.
func (k *Kernel) regionArrived(im *inMigration, region msg.Region, data []byte) {
	if k.in[im.pid] != im {
		return // aborted while the stream was in flight
	}
	im.streaming = false // the stream record was released by its completer
	k.armInWatchdog(im)
	im.bufs[region] = data
	switch region {
	case msg.RegionResident:
		im.stage = msg.RegionSwappable
		k.pullRegion(im)
	case msg.RegionSwappable:
		if k.killpoint(KPDestMidTransfer, im.pid) {
			return
		}
		im.stage = msg.RegionProgram
		k.pullRegion(im)
	case msg.RegionProgram:
		if k.killpoint(KPDestTransferred, im.pid) {
			return
		}
		k.assembleProcess(im)
	}
}

// assembleProcess decodes the three regions into a runnable process and
// sends OpMigrateEstablished (end of step 5, message 7).
func (k *Kernel) assembleProcess(im *inMigration) {
	p := im.p
	res, err := decodeResident(im.bufs[msg.RegionResident])
	if err != nil {
		k.failIncoming(im, fmt.Errorf("resident state: %w", err))
		return
	}
	ctl, err := k.decodeSwappableInto(p, im.bufs[msg.RegionSwappable])
	if err != nil {
		k.failIncoming(im, fmt.Errorf("swappable state: %w", err))
		return
	}
	kind := k.internKind(res.kind)
	body, err := k.cfg.Registry.New(kind)
	if err != nil {
		k.failIncoming(im, err)
		return
	}
	if err := body.Restore(ctl); err != nil {
		k.failIncoming(im, fmt.Errorf("restoring %s body: %w", kind, err))
		return
	}
	program := im.bufs[msg.RegionProgram]
	var img *memory.Image
	if len(program) > 0 {
		img = memory.NewImage(len(program), k.swap)
		if err := img.WriteAt(program, 0); err != nil {
			k.failIncoming(im, err)
			return
		}
		if mh, ok := body.(proc.MemoryHolder); ok {
			mh.SetImage(img)
		}
		k.memUsed += img.Size()
		k.relieveMemory()
	}
	p.body = body
	p.kind = kind
	p.image = img
	p.privileged = res.privileged
	p.prevState = res.prevState
	p.cpuUsed = res.cpuUsed
	p.msgsIn = res.msgsIn
	p.msgsOut = res.msgsOut
	k.stats.MigrationsIn++
	im.established = true
	k.sendPIDMachine(addr.KernelAddr(im.src), msg.OpMigrateEstablished,
		msg.PIDMachine{PID: im.pid, Machine: k.machine}, nil)
	k.armInWatchdog(im) // the cleanup message must still arrive
}

func (k *Kernel) failIncoming(im *inMigration, cause error) {
	if k.traceOn {
		k.trace(trace.CatMigrate, "incoming-failed", fmt.Sprintf("%v: %v", im.pid, cause))
	}
	k.eng.Cancel(im.watchdog)
	if im.streaming {
		// Unregister the in-flight pull so late packets go stray instead
		// of completing into a recycled record.
		if st, ok := k.xfersIn[im.xfer]; ok && st.im == im {
			delete(k.xfersIn, im.xfer)
			st.buf = nil
			k.putInStream(st)
		}
		im.streaming = false
	}
	p := im.p
	if p != nil {
		if p.image != nil {
			k.memUsed -= p.image.Size()
			p.image.Discard()
		}
		for p.queue.Len() > 0 {
			k.putMsg(p.queue.pop())
		}
	}
	delete(k.in, im.pid)
	k.delProc(im.pid)
	k.stats.MigrationsFailed++
	if p != nil {
		k.putProcRec(p)
	}
	k.putInMigration(im)
}

// handleMigrateCleanup is step 8: "The process is restarted in whatever
// state it was in before being migrated."
func (k *Kernel) handleMigrateCleanup(m *msg.Message) {
	c, err := msg.DecodeMigrateCleanup(m.Body)
	if err != nil {
		return
	}
	im, ok := k.in[c.PID]
	if !ok {
		// Already committed on watchdog timeout: this late cleanup
		// confirms the source made itself a forwarder, so no abort is
		// coming and the conflict flag can clear.
		if p := k.lookup(c.PID); p != nil && p.timeoutCommit {
			p.timeoutCommit = false
		}
		return
	}
	if k.killpoint(KPDestCleanup, c.PID) {
		return
	}
	k.eng.Cancel(im.watchdog)
	k.commitIncoming(im, int(c.Forwarded), false)
}

// commitIncoming finishes step 8 for an assembled process: drain the
// messages queued while incoming, restore the pre-migration state, and (if
// configured) follow the process with a stable-storage checkpoint. The
// migration record is released back to the pool at the end.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestMigrationSteadyStateAllocs in bench_hotpath_test.go.
func (k *Kernel) commitIncoming(im *inMigration, forwarded int, viaTimeout bool) {
	delete(k.in, im.pid)
	p := im.p
	p.timeoutCommit = viaTimeout

	// Messages queued here while incoming: DELIVERTOKERNEL ones go to
	// the kernel now; the rest rotate back to the tail for the process.
	// The drain is bounded by the length at entry so rotated (and newly
	// arriving) messages are not re-examined.
	for n := p.queue.Len(); n > 0; n-- {
		hm := p.queue.pop()
		if hm.DTK {
			k.kernelMsg(hm)
			k.putMsg(hm)
		} else {
			p.queue.push(hm)
		}
	}

	switch p.prevState {
	case StateWaiting:
		if p.queue.Len() > 0 {
			k.enqueueRun(p)
		} else {
			p.state = StateWaiting
		}
	case StateSuspended:
		p.state = StateSuspended
	default:
		k.enqueueRun(p)
	}
	if k.traceOn {
		k.traceStep8(p, forwarded, viaTimeout)
	}
	if k.cfg.CheckpointOnArrival {
		_ = k.SaveCheckpoint(p.id)
	}
	k.putInMigration(im)
}

func (k *Kernel) traceStep8(p *Process, forwarded int, viaTimeout bool) {
	note := fmt.Sprintf("%d pending had been forwarded", forwarded)
	if viaTimeout {
		note = "committed on watchdog timeout"
	}
	k.trace(trace.CatMigrate, "step8-restart",
		fmt.Sprintf("%v restarted as %v (%s)", p.id, p.state, note))
}

// --- resident / swappable encodings ----------------------------------------

// residentState is the kernel process record moved as the non-swappable
// state (§6: "The non-swappable state uses about 250 bytes"). kind aliases
// the decoded buffer; assembleProcess interns it before retaining.
type residentState struct {
	kind       []byte
	prevState  ProcState
	privileged bool
	imageSize  int
	cpuUsed    sim.Time
	msgsIn     uint64
	msgsOut    uint64
}

// appendResident gather-encodes the resident record into b — the
// reusable-buffer form the migration fast path freezes into pooled
// scratch.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestMigrationSteadyStateAllocs in bench_hotpath_test.go.
func appendResident(b []byte, p *Process) []byte {
	imgSize := 0
	if p.image != nil {
		imgSize = p.image.Size()
	}
	b = append(b, byte(len(p.kind)))
	b = append(b, p.kind...)
	b = append(b, byte(p.prevState))
	if p.privileged {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(imgSize))
	b = binary.LittleEndian.AppendUint64(b, uint64(p.cpuUsed))
	b = binary.LittleEndian.AppendUint64(b, p.msgsIn)
	b = binary.LittleEndian.AppendUint64(b, p.msgsOut)
	b = binary.LittleEndian.AppendUint64(b, uint64(p.createdAt))
	b = binary.LittleEndian.AppendUint32(b, uint32(p.queueHighWater))
	return b
}

// encodeResident is the allocating form (checkpointing).
func (k *Kernel) encodeResident(p *Process) []byte {
	return appendResident(make([]byte, 0, 64+len(p.kind)), p)
}

func decodeResident(b []byte) (residentState, error) {
	var r residentState
	if len(b) < 1 {
		return r, fmt.Errorf("empty resident record")
	}
	n := int(b[0])
	b = b[1:]
	if len(b) < n+2+4+8+8+8+8+4 {
		return r, fmt.Errorf("short resident record")
	}
	r.kind = b[:n]
	b = b[n:]
	r.prevState = ProcState(b[0])
	r.privileged = b[1] != 0
	r.imageSize = int(binary.LittleEndian.Uint32(b[2:]))
	r.cpuUsed = sim.Time(binary.LittleEndian.Uint64(b[6:]))
	r.msgsIn = binary.LittleEndian.Uint64(b[14:])
	r.msgsOut = binary.LittleEndian.Uint64(b[22:])
	return r, nil
}

// encodeSwappable packs the link table and the body control state —
// the swappable state whose size "depend[s] on the size of the link table".
// The migration path streams the same bytes as a three-vector gather
// instead (see handleMoveDataReq); this allocating form serves
// checkpointing.
func encodeSwappable(t *link.Table, ctl []byte) []byte {
	ts := t.Snapshot()
	b := make([]byte, 0, 4+len(ts)+len(ctl))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ts)))
	b = append(b, ts...)
	b = append(b, ctl...)
	return b
}

func decodeSwappable(b []byte) (*link.Table, []byte, error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("short swappable state")
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if len(b) < n {
		return nil, nil, fmt.Errorf("truncated link table")
	}
	t, err := link.RestoreTable(b[:n])
	if err != nil {
		return nil, nil, err
	}
	return t, b[n:], nil
}

// decodeSwappableInto is the pooled form: the link table is rebuilt in
// place into p's existing table (or one from the kernel's table free list)
// so an arriving process reuses the slot backing a departed one left
// behind.
func (k *Kernel) decodeSwappableInto(p *Process, b []byte) ([]byte, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("short swappable state")
	}
	n := int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if len(b) < n {
		return nil, fmt.Errorf("truncated link table")
	}
	t := p.links
	if t == nil {
		if nf := len(k.tableFree); nf > 0 {
			t = k.tableFree[nf-1]
			k.tableFree[nf-1] = nil
			k.tableFree = k.tableFree[:nf-1]
		} else {
			t = &link.Table{}
		}
	}
	if err := link.RestoreTableInto(t, b[:n]); err != nil {
		return nil, err
	}
	p.links = t
	return b[n:], nil
}

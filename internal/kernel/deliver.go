package kernel

import (
	"fmt"

	"demosmp/internal/addr"
	"demosmp/internal/msg"
	"demosmp/internal/trace"
)

// route submits a message to the delivery system. The destination machine
// is the (possibly stale) last-known-machine hint in the process address;
// staleness is repaired downstream by forwarding addresses (§4).
//
// Envelope ownership transfers with the message: route's caller gives up
// the envelope, and exactly one downstream consumer releases it via
// putMsg (demoslint's ownership rule, DESIGN.md §8.1, enforces this
// single-releaser contract; the blessed holding points — mailbox,
// pending, bounce, locate, stream — are declared with //demos:owner).
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestHotPathZeroAlloc/kernel-local-roundtrip in bench_hotpath_test.go.
func (k *Kernel) route(m *msg.Message) {
	if k.crashed {
		k.dropCrashed(m)
		return
	}
	k.stats.MsgsRouted++
	if m.SentAt == 0 {
		m.SentAt = k.eng.Now()
	}
	if m.To.LastKnown == k.machine {
		k.eng.After(k.cfg.LocalLatency, "kernel:local-deliver", k.getPending(m, false).fn)
		return
	}
	k.net.Send(k.machine, m.To.LastKnown, m)
}

// DeliverFrame implements netw.Endpoint.
func (k *Kernel) DeliverFrame(m *msg.Message) {
	if k.crashed {
		k.dropCrashed(m)
		return
	}
	k.deliverLocal(m)
}

// deliverLocal is the paper's "normal message delivery system tries to find
// a process when a message arrives for it" (§3.1 step 7). Messages the
// kernel consumes here are released back to the envelope pool; messages
// that keep flowing (forwarded, enqueued, held) are not.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestHotPathZeroAlloc/kernel-local-roundtrip in bench_hotpath_test.go.
func (k *Kernel) deliverLocal(m *msg.Message) {
	if m.To.ID.IsKernel() {
		k.kernelMsg(m)
		k.putMsg(m)
		return
	}
	p := k.lookup(m.To.ID)
	if p == nil {
		k.unknownProcess(m)
		return
	}
	switch p.state {
	case StateForwarder:
		k.forward(p, m)
	case StateInMigration, StateIncoming:
		// §3.1 step 1: "Messages arriving for the migrating process,
		// including DELIVERTOKERNEL messages, will be placed on its
		// message queue."
		p.queue.push(m)
		k.stats.MsgsHeld++
		if p.queue.Len() > p.queueHighWater {
			p.queueHighWater = p.queue.Len()
		}
	default:
		if m.DTK {
			// §2.2: "on arrival at the destination process's message
			// queue, the message is received by the kernel on that
			// processor."
			k.kernelMsg(m)
			k.putMsg(m)
			return
		}
		k.enqueue(p, m)
	}
}

// enqueue places a message on a process's queue and wakes it if waiting.
// The message is released after the receiving body's next Step returns
// (see runSlice), since the Delivery handed out by Recv aliases its Body.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestHotPathZeroAlloc/kernel-local-roundtrip in bench_hotpath_test.go.
func (k *Kernel) enqueue(p *Process, m *msg.Message) {
	p.queue.push(m)
	p.msgsIn++
	k.stats.MsgsEnqueued++
	if k.hLat != nil {
		k.hLat.Observe(uint64(k.eng.Now() - m.SentAt))
	}
	if p.queue.Len() > p.queueHighWater {
		p.queueHighWater = p.queue.Len()
	}
	if p.state == StateWaiting {
		k.enqueueRun(p)
	}
}

// forward re-routes a message through a forwarding address (§4, Figure
// 4-1): "the machine address of the message is updated and the message is
// resubmitted to the message delivery system. As a byproduct of forwarding,
// an attempt may be made to fix up the link of the sending process."
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestHotPathZeroAlloc/kernel-local-roundtrip in bench_hotpath_test.go.
func (k *Kernel) forward(f *Process, m *msg.Message) {
	m.To.LastKnown = f.fwdTo
	m.Forwards++
	k.stats.Forwarded++
	if k.traceOn {
		k.traceForward(m, f.fwdTo)
	}
	if f.obsRec != nil {
		k.ledgerForward(f, m)
	}
	k.route(m)
	if k.shouldSendLinkUpdate(m) {
		k.sendLinkUpdate(m.From, m.To.ID, f.fwdTo)
	}
}

// traceForward is the cold formatting half of forward, hoisted out of the
// hot path so the fmt work only happens when a tracer is attached.
func (k *Kernel) traceForward(m *msg.Message, to addr.MachineID) {
	k.trace(trace.CatForward, "forward",
		fmt.Sprintf("%v for %v -> %v (hop %d)", m.Kind, m.To.ID, to, m.Forwards))
}

// shouldSendLinkUpdate filters which forwards generate the §5 update
// message: only traffic that originated from a process's link (user
// messages and process-manager control sends), never kernel-internal
// streams or the update messages themselves.
func (k *Kernel) shouldSendLinkUpdate(m *msg.Message) bool {
	if m.From.ID.IsKernel() || m.From.ID.IsNil() {
		return false
	}
	switch m.Kind {
	case msg.KindUser, msg.KindControl:
		return true
	default:
		return false
	}
}

// sendLinkUpdate emits the special message of §5 to the kernel of the
// process that sent the forwarded message. It is addressed to the sender's
// process address with DELIVERTOKERNEL semantics, so it chases a sender
// that has itself migrated.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestHotPathZeroAlloc/kernel-local-roundtrip in bench_hotpath_test.go.
func (k *Kernel) sendLinkUpdate(sender addr.ProcessAddr, migrated addr.ProcessID, newMachine addr.MachineID) {
	u := msg.LinkUpdate{Sender: sender.ID, Migrated: migrated, Machine: newMachine}
	m := k.getMsg()
	m.Kind = msg.KindLinkUpdate
	m.From = addr.KernelAddr(k.machine)
	m.To = sender
	m.DTK = true
	m.Body = u.AppendTo(m.Body[:0])
	k.stats.LinkUpdatesSent++
	if k.traceOn {
		k.traceLinkUpdateSent(sender.ID, migrated, newMachine)
	}
	k.route(m)
}

func (k *Kernel) traceLinkUpdateSent(sender, migrated addr.ProcessID, newMachine addr.MachineID) {
	k.trace(trace.CatLinkUpdate, "linkupdate-sent",
		fmt.Sprintf("to kernel of %v: %v is now on %v", sender, migrated, newMachine))
}

// applyLinkUpdate rewrites the sender's link table (§5): "All links in the
// sending process's link table that point to the migrated process are then
// updated to point to the new location."
func (k *Kernel) applyLinkUpdate(m *msg.Message) {
	u, err := msg.DecodeLinkUpdate(m.Body)
	if err != nil {
		k.trace(trace.CatLinkUpdate, "linkupdate-bad", err.Error())
		return
	}
	k.stats.LinkUpdatesApplied++
	p := k.lookup(u.Sender)
	if p == nil || p.links == nil {
		return // sender gone; nothing to fix
	}
	n := p.links.UpdateAddr(u.Migrated, u.Machine)
	k.stats.LinksFixed += uint64(n)
	if n > 0 && k.traceOn {
		k.trace(trace.CatLinkUpdate, "linkupdate-applied",
			fmt.Sprintf("%d links of %v now point at %v on %v", n, u.Sender, u.Migrated, u.Machine))
	}
}

// handleLinkUpdateBatch applies a coalesced step-6 batch: the migrating
// kernel saw these senders' messages on the frozen queue and repairs all
// their link tables on this machine with one envelope (see
// sendCoalescedUpdates). Senders no longer here are skipped — if they still
// hold stale links wherever they went, the lazy §5 path repairs them on
// their next send.
func (k *Kernel) handleLinkUpdateBatch(m *msg.Message) {
	u, err := msg.DecodeLinkUpdateBatch(m.Body)
	if err != nil {
		k.trace(trace.CatLinkUpdate, "linkupdate-batch-bad", err.Error())
		return
	}
	k.stats.LinkUpdateBatchesApplied++
	fixed := 0
	for _, sender := range u.Senders {
		p := k.lookup(sender)
		if p == nil || p.links == nil {
			continue
		}
		fixed += p.links.UpdateAddr(u.Migrated, u.Machine)
	}
	k.stats.LinksFixed += uint64(fixed)
	if k.traceOn {
		k.trace(trace.CatLinkUpdate, "linkupdate-batch-applied",
			fmt.Sprintf("%d links across %d senders now point at %v on %v",
				fixed, len(u.Senders), u.Migrated, u.Machine))
	}
}

// applyEagerUpdate handles the broadcast-update ablation: every kernel
// rewrites every local link table at migration time.
func (k *Kernel) applyEagerUpdate(m *msg.Message) {
	u, err := msg.DecodePIDMachine(m.Body)
	if err != nil {
		return
	}
	fixed := 0
	for _, p := range k.sortedProcs() {
		if p.links != nil {
			fixed += p.links.UpdateAddr(u.PID, u.Machine)
		}
	}
	k.stats.LinksFixed += uint64(fixed)
	k.trace(trace.CatLinkUpdate, "eager-applied",
		fmt.Sprintf("%d links now point at %v on %v", fixed, u.PID, u.Machine))
}

// unknownProcess handles a message whose target does not exist here:
// either the process terminated (dead letter) or — in the return-to-sender
// baseline — it migrated away without leaving a forwarding address.
func (k *Kernel) unknownProcess(m *msg.Message) {
	if k.cfg.Mode == ModeReturnToSender && k.shouldSendLinkUpdate(m) {
		k.bounce(m) // m lives on as the bounce's Orig
		return
	}
	if k.restarts > 0 && k.searchFallback(m) {
		return // rerouted or held by the post-crash search (restart.go)
	}
	k.stats.DeadLetters++
	if k.traceOn {
		k.trace(trace.CatDeliver, "dead-letter", fmt.Sprintf("%v for %v", m.Kind, m.To.ID))
	}
	k.putMsg(m)
}

// bounce implements the §4 alternative: "return messages to their senders
// as not deliverable... The sending kernel can attempt to find the new
// location of the process, perhaps by notifying the process manager."
func (k *Kernel) bounce(m *msg.Message) {
	k.stats.Bounced++
	if k.traceOn {
		k.trace(trace.CatForward, "bounce", fmt.Sprintf("%v for %v returned to m%d",
			m.Kind, m.To.ID, uint16(m.From.LastKnown)))
	}
	nd := k.getMsg()
	nd.Kind = msg.KindControl
	nd.Op = msg.OpNotDeliverable
	nd.From = addr.KernelAddr(k.machine)
	nd.To = addr.KernelAddr(m.From.LastKnown)
	nd.Orig = m //demos:owner bounce — the NotDeliverable envelope carries the original back to its sender; handleNotDeliverable releases both.
	k.route(nd)
}

// handleNotDeliverable runs on the sending kernel: hold the message, ask
// the process manager where the process went, resend on reply. The per-PID
// hold buffer is bounded: past PendingLocateCap the oldest intent is
// preserved and the newcomer is dropped (counted in LocateDropped), so a
// sender spamming a dead PID cannot grow kernel memory without limit.
func (k *Kernel) handleNotDeliverable(m *msg.Message) {
	orig := m.Orig
	if orig == nil {
		return
	}
	pid := orig.To.ID
	if k.cfg.PMLink.IsNil() {
		// Nobody to ask: the message is undeliverable for good. Holding
		// it would leak an envelope per bounce.
		k.stats.DeadLetters++
		k.putMsg(orig)
		return
	}
	if len(k.pendingLocate[pid]) >= PendingLocateCap {
		k.stats.LocateDropped++
		k.stats.DeadLetters++
		k.putMsg(orig)
		return
	}
	k.pendingLocate[pid] = append(k.pendingLocate[pid], orig) //demos:owner locate — held (capped) until the locate reply resubmits or dead-letters it.
	if len(k.pendingLocate[pid]) > 1 {
		return // locate already outstanding
	}
	k.stats.LocateRequests++
	req := k.getMsg()
	req.Kind = msg.KindControl
	req.Op = msg.OpLocate
	req.From = addr.KernelAddr(k.machine)
	req.To = k.cfg.PMLink.Addr
	req.Body = addr.EncodePID(req.Body[:0], pid)
	k.route(req)
}

// handleLocateReply resends held messages to the located machine and fixes
// local senders' links.
func (k *Kernel) handleLocateReply(m *msg.Message) {
	pm, err := msg.DecodePIDMachine(m.Body)
	if err != nil {
		return
	}
	held := k.pendingLocate[pm.PID]
	delete(k.pendingLocate, pm.PID)
	if pm.Machine == addr.NoMachine {
		k.stats.DeadLetters += uint64(len(held))
		for _, orig := range held {
			k.putMsg(orig)
		}
		return
	}
	for _, orig := range held {
		orig.To.LastKnown = pm.Machine
		// One resubmission per message: if the located machine turns out
		// not to know the pid either (e.g. it crashed again), the message
		// dead-letters instead of re-entering the search loop.
		orig.Searched = true
		if p := k.lookup(orig.From.ID); p != nil && p.links != nil {
			k.stats.LinksFixed += uint64(p.links.UpdateAddr(pm.PID, pm.Machine))
		}
		k.stats.Resubmitted++
		k.route(orig)
	}
}

// sendDeathNoticeTo starts (or continues) the §4 garbage collection of
// forwarding addresses "by means of pointers backwards along the path of
// migration".
func (k *Kernel) sendDeathNoticeTo(pid addr.ProcessID, to addr.MachineID) {
	m := k.getMsg()
	m.Kind = msg.KindControl
	m.Op = msg.OpDeathNotice
	m.From = addr.KernelAddr(k.machine)
	m.To = addr.KernelAddr(to)
	m.Body = msg.PIDMachine{PID: pid, Machine: k.machine}.AppendTo(m.Body[:0])
	k.route(m)
}

func (k *Kernel) handleDeathNotice(m *msg.Message) {
	pm, err := msg.DecodePIDMachine(m.Body)
	if err != nil {
		return
	}
	p := k.lookup(pm.PID)
	if p == nil || p.state != StateForwarder {
		return
	}
	k.delProc(pm.PID)
	k.stats.ForwardersReclaimed++
	k.stats.ForwarderBytes -= ForwarderWireSize
	k.trace(trace.CatForward, "forwarder-reclaimed", pm.PID.String())
	if p.cameFrom != addr.NoMachine {
		k.sendDeathNoticeTo(pm.PID, p.cameFrom)
	}
}

package kernel

import (
	"fmt"

	"demosmp/internal/addr"
	"demosmp/internal/msg"
	"demosmp/internal/trace"
)

// route submits a message to the delivery system. The destination machine
// is the (possibly stale) last-known-machine hint in the process address;
// staleness is repaired downstream by forwarding addresses (§4).
func (k *Kernel) route(m *msg.Message) {
	if k.crashed {
		return
	}
	k.stats.MsgsRouted++
	if m.SentAt == 0 {
		m.SentAt = k.eng.Now()
	}
	if m.To.LastKnown == k.machine {
		k.eng.After(k.cfg.LocalLatency, "kernel:local-deliver", func() {
			k.deliverLocal(m)
		})
		return
	}
	k.net.Send(k.machine, m.To.LastKnown, m)
}

// DeliverFrame implements netw.Endpoint.
func (k *Kernel) DeliverFrame(m *msg.Message) {
	if k.crashed {
		return
	}
	k.deliverLocal(m)
}

// deliverLocal is the paper's "normal message delivery system tries to find
// a process when a message arrives for it" (§3.1 step 7).
func (k *Kernel) deliverLocal(m *msg.Message) {
	if m.To.ID.IsKernel() {
		k.kernelMsg(m)
		return
	}
	p, ok := k.procs[m.To.ID]
	if !ok {
		k.unknownProcess(m)
		return
	}
	switch p.state {
	case StateForwarder:
		k.forward(p, m)
	case StateInMigration, StateIncoming:
		// §3.1 step 1: "Messages arriving for the migrating process,
		// including DELIVERTOKERNEL messages, will be placed on its
		// message queue."
		p.queue = append(p.queue, m)
		k.stats.MsgsHeld++
		if len(p.queue) > p.queueHighWater {
			p.queueHighWater = len(p.queue)
		}
	default:
		if m.DTK {
			// §2.2: "on arrival at the destination process's message
			// queue, the message is received by the kernel on that
			// processor."
			k.kernelMsg(m)
			return
		}
		k.enqueue(p, m)
	}
}

// enqueue places a message on a process's queue and wakes it if waiting.
func (k *Kernel) enqueue(p *Process, m *msg.Message) {
	p.queue = append(p.queue, m)
	p.msgsIn++
	k.stats.MsgsEnqueued++
	if len(p.queue) > p.queueHighWater {
		p.queueHighWater = len(p.queue)
	}
	if p.state == StateWaiting {
		k.enqueueRun(p)
	}
}

// forward re-routes a message through a forwarding address (§4, Figure
// 4-1): "the machine address of the message is updated and the message is
// resubmitted to the message delivery system. As a byproduct of forwarding,
// an attempt may be made to fix up the link of the sending process."
func (k *Kernel) forward(f *Process, m *msg.Message) {
	m.To.LastKnown = f.fwdTo
	m.Forwards++
	k.stats.Forwarded++
	k.trace(trace.CatForward, "forward",
		fmt.Sprintf("%v for %v -> %v (hop %d)", m.Kind, m.To.ID, f.fwdTo, m.Forwards))
	k.route(m)
	if k.shouldSendLinkUpdate(m) {
		k.sendLinkUpdate(m.From, m.To.ID, f.fwdTo)
	}
}

// shouldSendLinkUpdate filters which forwards generate the §5 update
// message: only traffic that originated from a process's link (user
// messages and process-manager control sends), never kernel-internal
// streams or the update messages themselves.
func (k *Kernel) shouldSendLinkUpdate(m *msg.Message) bool {
	if m.From.ID.IsKernel() || m.From.ID.IsNil() {
		return false
	}
	switch m.Kind {
	case msg.KindUser, msg.KindControl:
		return true
	default:
		return false
	}
}

// sendLinkUpdate emits the special message of §5 to the kernel of the
// process that sent the forwarded message. It is addressed to the sender's
// process address with DELIVERTOKERNEL semantics, so it chases a sender
// that has itself migrated.
func (k *Kernel) sendLinkUpdate(sender addr.ProcessAddr, migrated addr.ProcessID, newMachine addr.MachineID) {
	u := msg.LinkUpdate{Sender: sender.ID, Migrated: migrated, Machine: newMachine}
	m := &msg.Message{
		Kind: msg.KindLinkUpdate,
		From: addr.KernelAddr(k.machine),
		To:   sender,
		DTK:  true,
		Body: u.Encode(),
	}
	k.stats.LinkUpdatesSent++
	k.trace(trace.CatLinkUpdate, "linkupdate-sent",
		fmt.Sprintf("to kernel of %v: %v is now on %v", sender.ID, migrated, newMachine))
	k.route(m)
}

// applyLinkUpdate rewrites the sender's link table (§5): "All links in the
// sending process's link table that point to the migrated process are then
// updated to point to the new location."
func (k *Kernel) applyLinkUpdate(m *msg.Message) {
	u, err := msg.DecodeLinkUpdate(m.Body)
	if err != nil {
		k.trace(trace.CatLinkUpdate, "linkupdate-bad", err.Error())
		return
	}
	k.stats.LinkUpdatesApplied++
	p, ok := k.procs[u.Sender]
	if !ok || p.links == nil {
		return // sender gone; nothing to fix
	}
	n := p.links.UpdateAddr(u.Migrated, u.Machine)
	k.stats.LinksFixed += uint64(n)
	if n > 0 {
		k.trace(trace.CatLinkUpdate, "linkupdate-applied",
			fmt.Sprintf("%d links of %v now point at %v on %v", n, u.Sender, u.Migrated, u.Machine))
	}
}

// applyEagerUpdate handles the broadcast-update ablation: every kernel
// rewrites every local link table at migration time.
func (k *Kernel) applyEagerUpdate(m *msg.Message) {
	u, err := msg.DecodePIDMachine(m.Body)
	if err != nil {
		return
	}
	fixed := 0
	for _, p := range k.sortedProcs() {
		if p.links != nil {
			fixed += p.links.UpdateAddr(u.PID, u.Machine)
		}
	}
	k.stats.LinksFixed += uint64(fixed)
	k.trace(trace.CatLinkUpdate, "eager-applied",
		fmt.Sprintf("%d links now point at %v on %v", fixed, u.PID, u.Machine))
}

// unknownProcess handles a message whose target does not exist here:
// either the process terminated (dead letter) or — in the return-to-sender
// baseline — it migrated away without leaving a forwarding address.
func (k *Kernel) unknownProcess(m *msg.Message) {
	if k.cfg.Mode == ModeReturnToSender && k.shouldSendLinkUpdate(m) {
		k.bounce(m)
		return
	}
	k.stats.DeadLetters++
	k.trace(trace.CatDeliver, "dead-letter", fmt.Sprintf("%v for %v", m.Kind, m.To.ID))
}

// bounce implements the §4 alternative: "return messages to their senders
// as not deliverable... The sending kernel can attempt to find the new
// location of the process, perhaps by notifying the process manager."
func (k *Kernel) bounce(m *msg.Message) {
	k.stats.Bounced++
	k.trace(trace.CatForward, "bounce", fmt.Sprintf("%v for %v returned to m%d",
		m.Kind, m.To.ID, uint16(m.From.LastKnown)))
	nd := &msg.Message{
		Kind: msg.KindControl, Op: msg.OpNotDeliverable,
		From: addr.KernelAddr(k.machine),
		To:   addr.KernelAddr(m.From.LastKnown),
		Orig: m,
	}
	k.route(nd)
}

// handleNotDeliverable runs on the sending kernel: hold the message, ask
// the process manager where the process went, resend on reply.
func (k *Kernel) handleNotDeliverable(m *msg.Message) {
	orig := m.Orig
	if orig == nil {
		return
	}
	pid := orig.To.ID
	k.pendingLocate[pid] = append(k.pendingLocate[pid], orig)
	if len(k.pendingLocate[pid]) > 1 {
		return // locate already outstanding
	}
	if k.cfg.PMLink.IsNil() {
		k.stats.DeadLetters++
		return
	}
	k.stats.LocateRequests++
	req := &msg.Message{
		Kind: msg.KindControl, Op: msg.OpLocate,
		From: addr.KernelAddr(k.machine), To: k.cfg.PMLink.Addr,
		Body: addr.EncodePID(nil, pid),
	}
	k.route(req)
}

// handleLocateReply resends held messages to the located machine and fixes
// local senders' links.
func (k *Kernel) handleLocateReply(m *msg.Message) {
	pm, err := msg.DecodePIDMachine(m.Body)
	if err != nil {
		return
	}
	held := k.pendingLocate[pm.PID]
	delete(k.pendingLocate, pm.PID)
	if pm.Machine == addr.NoMachine {
		k.stats.DeadLetters += uint64(len(held))
		return
	}
	for _, orig := range held {
		orig.To.LastKnown = pm.Machine
		if p, ok := k.procs[orig.From.ID]; ok && p.links != nil {
			k.stats.LinksFixed += uint64(p.links.UpdateAddr(pm.PID, pm.Machine))
		}
		k.stats.Resubmitted++
		k.route(orig)
	}
}

// sendDeathNoticeTo starts (or continues) the §4 garbage collection of
// forwarding addresses "by means of pointers backwards along the path of
// migration".
func (k *Kernel) sendDeathNoticeTo(pid addr.ProcessID, to addr.MachineID) {
	m := &msg.Message{
		Kind: msg.KindControl, Op: msg.OpDeathNotice,
		From: addr.KernelAddr(k.machine), To: addr.KernelAddr(to),
		Body: msg.PIDMachine{PID: pid, Machine: k.machine}.Encode(),
	}
	k.route(m)
}

func (k *Kernel) handleDeathNotice(m *msg.Message) {
	pm, err := msg.DecodePIDMachine(m.Body)
	if err != nil {
		return
	}
	p, ok := k.procs[pm.PID]
	if !ok || p.state != StateForwarder {
		return
	}
	delete(k.procs, pm.PID)
	k.stats.ForwardersReclaimed++
	k.stats.ForwarderBytes -= ForwarderWireSize
	k.trace(trace.CatForward, "forwarder-reclaimed", pm.PID.String())
	if p.cameFrom != addr.NoMachine {
		k.sendDeathNoticeTo(pm.PID, p.cameFrom)
	}
}

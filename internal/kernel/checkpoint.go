package kernel

import (
	"encoding/binary"
	"fmt"

	"demosmp/internal/addr"
	"demosmp/internal/memory"
	"demosmp/internal/proc"
	"demosmp/internal/trace"
)

// This file implements the paper's §1 fault-recovery idea: "If the
// information necessary to transport a process is saved in stable storage,
// it may be possible to 'migrate' a process from a processor that has
// crashed to a working one." A checkpoint is exactly the three migration
// payloads — resident record, swappable state, program image — with a
// small header, so Revive on another kernel is migration steps 3-5 and 8
// replayed from bytes instead of from data-move streams.

const checkpointMagic = 0x444D5043 // "DMPC"

// Checkpoint serializes a transportable copy of a local process. The
// process keeps running; the copy reflects its state at this instant
// (between scheduling slices, which is the only observable granularity).
func (k *Kernel) Checkpoint(pid addr.ProcessID) ([]byte, error) {
	p, ok := k.procs[pid]
	if !ok {
		return nil, fmt.Errorf("kernel %v: no process %v", k.machine, pid)
	}
	switch p.state {
	case StateForwarder, StateIncoming, StateInMigration, StateDead:
		return nil, fmt.Errorf("kernel %v: %v is %v; not checkpointable", k.machine, pid, p.state)
	}
	resident := k.encodeResident(p)
	ctl, err := p.body.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("kernel: snapshot of %v: %w", pid, err)
	}
	swappable := encodeSwappable(p.links, ctl)
	var program []byte
	if p.image != nil {
		if program, err = p.image.Bytes(); err != nil {
			return nil, err
		}
	}

	b := binary.LittleEndian.AppendUint32(nil, checkpointMagic)
	b = addr.EncodePID(b, pid)
	b = append(b, byte(p.state)) // the state to revive into
	b = binary.LittleEndian.AppendUint32(b, uint32(len(resident)))
	b = append(b, resident...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(swappable)))
	b = append(b, swappable...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(program)))
	b = append(b, program...)
	k.trace(trace.CatMigrate, "checkpoint",
		fmt.Sprintf("%v: %dB (resident %d, swappable %d, program %d)",
			pid, len(b), len(resident), len(swappable), len(program)))
	return b, nil
}

// Revive instantiates a checkpointed process on this kernel, preserving
// its identity. Messages sent on old links will reach it here once their
// holders' link tables are updated — or immediately, if a forwarding
// address (or the old machine's return-to-sender bounce) can still point
// the way; after a crash, senders rely on the locate path or on new links.
func (k *Kernel) Revive(checkpoint []byte) (addr.ProcessID, error) {
	b := checkpoint
	if len(b) < 4+addr.PIDWireSize+1 || binary.LittleEndian.Uint32(b) != checkpointMagic {
		return addr.NilPID, fmt.Errorf("kernel: not a checkpoint")
	}
	b = b[4:]
	pid, b, err := addr.DecodePID(b)
	if err != nil {
		return addr.NilPID, err
	}
	state := ProcState(b[0])
	b = b[1:]
	next := func() ([]byte, error) {
		if len(b) < 4 {
			return nil, fmt.Errorf("kernel: truncated checkpoint")
		}
		n := int(binary.LittleEndian.Uint32(b))
		b = b[4:]
		if len(b) < n {
			return nil, fmt.Errorf("kernel: truncated checkpoint section")
		}
		sec := b[:n]
		b = b[n:]
		return sec, nil
	}
	resident, err := next()
	if err != nil {
		return addr.NilPID, err
	}
	swappable, err := next()
	if err != nil {
		return addr.NilPID, err
	}
	program, err := next()
	if err != nil {
		return addr.NilPID, err
	}

	if old, dup := k.procs[pid]; dup {
		if old.state != StateForwarder {
			return addr.NilPID, fmt.Errorf("kernel %v: %v already exists here", k.machine, pid)
		}
		k.stats.ForwarderBytes -= ForwarderWireSize
		k.delProc(pid)
	}
	res, err := decodeResident(resident)
	if err != nil {
		return addr.NilPID, err
	}
	table, ctl, err := decodeSwappable(swappable)
	if err != nil {
		return addr.NilPID, err
	}
	kind := k.internKind(res.kind)
	body, err := k.cfg.Registry.New(kind)
	if err != nil {
		return addr.NilPID, err
	}
	if err := body.Restore(ctl); err != nil {
		return addr.NilPID, err
	}
	var img *memory.Image
	if len(program) > 0 {
		if k.cfg.MemCapacity > 0 && k.memUsed+len(program) > k.cfg.MemCapacity {
			return addr.NilPID, fmt.Errorf("kernel %v: out of memory for revival", k.machine)
		}
		img = memory.NewImage(len(program), k.swap)
		if err := img.WriteAt(program, 0); err != nil {
			return addr.NilPID, err
		}
		if mh, ok := body.(proc.MemoryHolder); ok {
			mh.SetImage(img)
		}
		k.memUsed += img.Size()
	}
	p := &Process{
		id:         pid,
		body:       body,
		kind:       kind,
		links:      table,
		image:      img,
		privileged: res.privileged,
		cpuUsed:    res.cpuUsed,
		msgsIn:     res.msgsIn,
		msgsOut:    res.msgsOut,
		createdAt:  k.eng.Now(),
		commTo:     make(map[addr.MachineID]uint64),
		commDelta:  make(map[addr.MachineID]uint64),
	}
	k.addProc(p)
	k.stats.Revived++
	k.trace(trace.CatMigrate, "revive", fmt.Sprintf("%v as %v from %dB checkpoint",
		pid, state, len(checkpoint)))
	switch state {
	case StateWaiting:
		p.state = StateWaiting
	case StateSuspended:
		p.state = StateSuspended
	default:
		k.enqueueRun(p)
	}
	return pid, nil
}

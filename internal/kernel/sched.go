package kernel

import (
	"fmt"
	"sort"

	"demosmp/internal/addr"
	"demosmp/internal/msg"
	"demosmp/internal/proc"
	"demosmp/internal/sim"
	"demosmp/internal/trace"
)

// enqueueRun puts a ready process on the run queue and arms the scheduler.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestHotPathZeroAlloc/kernel-local-roundtrip in bench_hotpath_test.go.
func (k *Kernel) enqueueRun(p *Process) {
	p.state = StateReady
	k.runq.push(p)
	k.maybeSchedule()
}

// removeFromRunq drops p from the run queue (suspension, migration).
func (k *Kernel) removeFromRunq(p *Process) {
	k.runq.remove(p)
}

// maybeSchedule arms the next scheduling slice if work is pending. The CPU
// model is one processor per machine: a slice "occupies" the CPU until
// cpuFreeAt even though the Go code runs instantaneously. The slice closure
// is bound once at construction (runSliceFn), so arming allocates nothing.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestHotPathZeroAlloc/kernel-local-roundtrip in bench_hotpath_test.go.
func (k *Kernel) maybeSchedule() {
	if k.sliceQueued || k.runq.Len() == 0 || k.crashed {
		return
	}
	k.sliceQueued = true
	at := k.eng.Now()
	if k.cpuFreeAt > at {
		at = k.cpuFreeAt
	}
	k.eng.At(at, "kernel:slice", k.runSliceFn)
}

// runSlice executes one scheduling quantum. The proc.Context handed to the
// body is the kernel's single reusable sliceCtx (prebound as k.ctxI so the
// interface conversion happens once at construction); it is valid only for
// the duration of Step, which no body retains. Messages the body received
// during the step are released afterwards — a Delivery's Body aliases the
// pooled envelope and its lifetime contract is "until Step returns".
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestHotPathZeroAlloc/kernel-local-roundtrip in bench_hotpath_test.go.
func (k *Kernel) runSlice() {
	k.sliceQueued = false
	if k.runq.Len() == 0 || k.crashed {
		return
	}
	p := k.runq.pop()
	if p.state != StateReady {
		// Suspended or migrated while queued.
		k.maybeSchedule()
		return
	}
	ctx := &k.sliceCtx
	ctx.p = p
	ctx.msgsHandled = 0
	cost, st := p.body.Step(k.ctxI, k.cfg.Quantum)
	for i, rm := range ctx.recvd {
		k.putMsg(rm)
		ctx.recvd[i] = nil
	}
	ctx.recvd = ctx.recvd[:0]
	ctx.p = nil

	busy := sim.Time(uint64(cost) * uint64(k.cfg.InstrCostNanos) / 1000)
	if cost == 0 {
		busy = k.cfg.NativeStepCost
	}
	busy += sim.Time(ctx.msgsHandled) * k.cfg.NativeMsgCost
	if busy == 0 {
		busy = 1
	}
	now := k.eng.Now()
	if k.cpuFreeAt < now {
		k.cpuFreeAt = now
	}
	k.cpuFreeAt += busy + k.cfg.CtxSwitch
	p.cpuUsed += busy
	p.cpuDelta += busy
	k.stats.CPUBusy += busy
	k.stats.Slices++
	k.stats.CtxSwitches++

	if p.state != StateReady {
		// The body's own syscalls changed its state (e.g. a control
		// message suspended it mid-step); honor that.
		k.maybeSchedule()
		return
	}
	switch st.State {
	case proc.Runnable:
		k.runq.push(p)
	case proc.Blocked:
		if p.queue.Len() > 0 {
			k.runq.push(p) // spurious block; messages waiting
		} else {
			p.state = StateWaiting
			// A newly idle process is a swap candidate if memory is
			// tight.
			k.relieveMemory()
		}
	case proc.Exited:
		k.terminate(p, st.ExitCode, nil)
	case proc.Crashed:
		k.terminate(p, -1, st.Err)
	}
	k.maybeSchedule()
}

// terminate removes a process and, when the paper's forwarding-address
// garbage collection is enabled, sends a death notice backwards along the
// migration path (§4).
func (k *Kernel) terminate(p *Process, code int32, err error) {
	p.state = StateDead
	k.removeFromRunq(p)
	if p.image != nil {
		k.memUsed -= p.image.Size()
		p.image.Discard()
	}
	for p.queue.Len() > 0 {
		k.putMsg(p.queue.pop())
	}
	k.delProc(p.id)
	delete(k.stable, p.id) // a dead process must not be revivable
	k.exits[p.id] = ExitInfo{Code: code, Err: err, At: k.eng.Now()}
	if err != nil {
		k.stats.Crashes++
		k.trace(trace.CatProc, "crash", fmt.Sprintf("%v: %v", p.id, err))
	} else {
		k.stats.Exited++
		k.trace(trace.CatProc, "exit", fmt.Sprintf("%v code=%d", p.id, code))
	}
	if k.cfg.ReclaimForwarders && p.cameFrom != addr.NoMachine {
		k.sendDeathNoticeTo(p.id, p.cameFrom)
	}
}

// scheduleLoadReport arms the periodic load report to the process manager.
// Reports are weak events: they fire while the system is alive but do not
// keep an otherwise idle simulation running.
func (k *Kernel) scheduleLoadReport() {
	k.loadReportEv = k.eng.AfterWeak(k.cfg.LoadReportEvery, "kernel:load-report", func() {
		if k.crashed {
			return
		}
		if !k.cfg.PMLink.IsNil() {
			k.sendLoadReport()
		}
		k.scheduleLoadReport()
	})
}

func (k *Kernel) sendLoadReport() {
	now := k.eng.Now()
	interval := now - k.lastReportAt
	if interval == 0 {
		interval = 1
	}
	busy := k.stats.CPUBusy - k.lastReportBusy
	pct := uint64(busy) * 100 / uint64(interval)
	if pct > 100 {
		pct = 100
	}
	rep := msg.LoadReport{
		Machine:    k.machine,
		Ready:      uint16(k.runq.Len()),
		ProcCount:  uint16(len(k.procs)),
		MemUsedKB:  uint32(k.memUsed / 1024),
		CPUPercent: uint8(pct),
	}
	for _, p := range k.sortedProcs() {
		if p.state == StateForwarder || p.state == StateIncoming || p.privileged {
			continue
		}
		pl := msg.ProcLoad{
			PID:       p.id,
			CPUMicros: uint32(p.cpuDelta),
			MsgsOut:   uint32(p.msgsDelta),
		}
		if p.image != nil {
			pl.MemKB = uint32(p.image.Size() / 1024)
		}
		for _, peer := range sortedMachines(p.commDelta) {
			if n := p.commDelta[peer]; n > uint64(pl.TopPeerMsgs) {
				pl.TopPeer, pl.TopPeerMsgs = peer, uint32(n)
			}
		}
		rep.Procs = append(rep.Procs, pl)
		p.cpuDelta = 0
		p.msgsDelta = 0
		p.commDelta = make(map[addr.MachineID]uint64)
	}
	k.lastReportAt = now
	k.lastReportBusy = k.stats.CPUBusy
	m := k.newControl(msg.OpLoadReport, k.cfg.PMLink.Addr)
	m.Body = rep.AppendTo(m.Body[:0])
	k.route(m)
}

// sortedProcs returns local processes in deterministic (pid) order —
// required because map iteration order would otherwise leak
// nondeterminism into the simulation.
func (k *Kernel) sortedProcs() []*Process {
	out := make([]*Process, 0, len(k.procs))
	for _, p := range k.procs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].id, out[j].id
		if a.Creator != b.Creator {
			return a.Creator < b.Creator
		}
		return a.Local < b.Local
	})
	return out
}

func sortedMachines(m map[addr.MachineID]uint64) []addr.MachineID {
	out := make([]addr.MachineID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Package kernel implements the per-node DEMOS/MP kernel: processes,
// messages, links, the scheduler, the move-data facility, and — the paper's
// contribution — the 8-step process migration mechanism with forwarding
// addresses and lazy link updating (§3–§5).
//
// A copy of the kernel runs on (is instantiated for) each machine. Kernels
// cooperate purely by exchanging messages through the network substrate;
// "different modules of the kernel on the same processor, as well as
// kernels on different processors, use the message mechanism to communicate
// with each other".
package kernel

import (
	"fmt"

	"demosmp/internal/addr"
	"demosmp/internal/dvm"
	"demosmp/internal/link"
	"demosmp/internal/memory"
	"demosmp/internal/msg"
	"demosmp/internal/netw"
	"demosmp/internal/obs"
	"demosmp/internal/proc"
	"demosmp/internal/sim"
	"demosmp/internal/trace"
)

// ProcState is a process's scheduling/lifecycle state as the kernel sees it.
type ProcState uint8

const (
	// StateReady: runnable (queued or currently in a slice).
	StateReady ProcState = iota + 1
	// StateWaiting: blocked in receive on an empty message queue.
	StateWaiting
	// StateSuspended: stopped by the process manager.
	StateSuspended
	// StateInMigration: frozen on the source machine; arriving messages
	// (including DELIVERTOKERNEL ones) are held on the queue (§3.1 step 1).
	StateInMigration
	// StateIncoming: the empty process state allocated on the
	// destination machine (§3.1 step 3), being filled by data moves.
	StateIncoming
	// StateForwarder: a forwarding address — "a degenerate process
	// state, whose only contents are the (last known) machine to which
	// the process was migrated" (§3.1 step 7).
	StateForwarder
	// StateDead: terminated; the entry is removed immediately after.
	StateDead
)

func (s ProcState) String() string {
	switch s {
	case StateReady:
		return "ready"
	case StateWaiting:
		return "waiting"
	case StateSuspended:
		return "suspended"
	case StateInMigration:
		return "in-migration"
	case StateIncoming:
		return "incoming"
	case StateForwarder:
		return "forwarder"
	case StateDead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// ForwardMode selects how messages for a departed process are handled (§4).
type ForwardMode uint8

const (
	// ModeForward leaves a forwarding address and re-routes messages —
	// the paper's design.
	ModeForward ForwardMode = iota
	// ModeReturnToSender is the alternative the paper describes and
	// rejects: no state is left behind; messages bounce to the sending
	// kernel, which must locate the process via the process manager.
	ModeReturnToSender
)

// Config parameterizes one kernel. The zero value is filled with defaults.
type Config struct {
	// Quantum is the instruction budget per VM scheduling slice.
	Quantum int
	// InstrCostNanos is the cost of one VM instruction (Z8000-class
	// default: 2µs).
	InstrCostNanos uint32
	// NativeStepCost charges a native (server) body per Step call.
	NativeStepCost sim.Time
	// NativeMsgCost charges a native body per message received.
	NativeMsgCost sim.Time
	// CtxSwitch is the cost between slices.
	CtxSwitch sim.Time
	// LocalLatency is same-machine message delivery time.
	LocalLatency sim.Time
	// DataPacket is the move-data packet payload size (§6: the facility
	// "minimize[s] network overhead by sending larger packets").
	DataPacket int
	// MemCapacity bounds real memory for process images (0 = unlimited).
	MemCapacity int
	// SwapCapacity bounds the swap store (0 = unlimited).
	SwapCapacity int
	// SwapSoftLimit, when set, is the resident-byte threshold above
	// which the kernel swaps out pages of waiting/suspended processes —
	// the load-limiting behavior the paper assumes of contemporary
	// systems (§3.1: "This function is often available in systems with
	// load-limiting schedulers").
	SwapSoftLimit int
	// LinkTableCap bounds each process's link table.
	LinkTableCap int
	// Mode selects forwarding vs the return-to-sender baseline.
	Mode ForwardMode
	// EagerUpdate broadcasts the new location to every kernel at
	// migration time instead of relying on lazy updates (ablation).
	EagerUpdate bool
	// ReclaimForwarders enables the §4 garbage collection: on process
	// death, forwarding addresses are removed via "pointers backwards
	// along the path of migration".
	ReclaimForwarders bool
	// MigrateTimeout bounds how long either kernel waits for migration
	// progress before aborting and restoring/discarding state. The
	// timer re-arms on every protocol step, so it only fires when the
	// peer has actually gone silent (e.g. crashed mid-transfer).
	MigrateTimeout sim.Time
	// CoalesceLinkUpdates batches the §5 link updates the source owes the
	// senders of a migrated process's held queue: instead of each sender
	// learning the new location lazily (one LinkUpdate per forwarded
	// message, +2 frames per stale send meanwhile), step 6 groups the held
	// senders by machine and sends one OpLinkUpdateBatch envelope per
	// machine. Off by default — the §6 conformance pins and the golden
	// trace fix the per-message protocol — so batching is opt-in for
	// loaded clusters (see the migration-under-load test and bench).
	CoalesceLinkUpdates bool
	// CheckpointOnArrival writes a migrated process to the destination's
	// stable storage as soon as step 8 restarts it, so stable storage
	// follows the process (§1) and a crash of the new host remains
	// recoverable. Off by default.
	CheckpointOnArrival bool
	// Accept decides whether to accept an inbound migration (§3.2
	// autonomy: "If the destination machine refuses, the process cannot
	// be migrated"). nil accepts whenever memory fits.
	Accept func(ask msg.MigrateAsk, memFree int) bool
	// Registry re-instantiates bodies on arrival.
	Registry *proc.Registry
	// Programs instantiates named programs for OpCreateProcess.
	Programs func(name string, args []string) (SpawnSpec, error)
	// PMLink, when set, is where self-migration requests, load reports
	// and locate queries go.
	PMLink link.Link
	// LoadReportEvery enables periodic load reports to PMLink.
	LoadReportEvery sim.Time
	// OnReport receives a MigrationReport when this kernel completes a
	// migration as the source.
	OnReport func(MigrationReport)
	// Tracer receives structured events (may be nil).
	Tracer *trace.Tracer
	// Machines lists all machines in the cluster (for EagerUpdate
	// broadcast).
	Machines []addr.MachineID
}

func (c *Config) fillDefaults() {
	if c.Quantum <= 0 {
		c.Quantum = 500
	}
	if c.InstrCostNanos == 0 {
		c.InstrCostNanos = 2000
	}
	if c.NativeStepCost == 0 {
		c.NativeStepCost = 100
	}
	if c.NativeMsgCost == 0 {
		c.NativeMsgCost = 50
	}
	if c.CtxSwitch == 0 {
		c.CtxSwitch = 50
	}
	if c.LocalLatency == 0 {
		c.LocalLatency = 30
	}
	if c.DataPacket <= 0 {
		c.DataPacket = 512
	}
	if c.LinkTableCap <= 0 {
		c.LinkTableCap = link.DefaultCap
	}
	if c.MigrateTimeout == 0 {
		c.MigrateTimeout = 30_000_000 // 30 simulated seconds
	}
	if c.Registry == nil {
		c.Registry = proc.NewRegistry()
	}
}

// Process is the kernel's process record. The exported view is ProcInfo.
type Process struct {
	id         addr.ProcessID
	state      ProcState
	prevState  ProcState // state to restore after migration/suspension
	body       proc.Body
	kind       string
	links      *link.Table
	queue      ring[*msg.Message]
	image      *memory.Image
	privileged bool
	cameFrom   addr.MachineID // previous host, for death-notice GC
	// timeoutCommit marks a copy the destination committed on watchdog
	// timeout (cleanup never arrived). If the source turns out to have
	// restored its own copy, its abort message yields this one; the
	// flag clears when a late cleanup confirms the source committed.
	timeoutCommit bool

	// Forwarder fields (state == StateForwarder). obsRec, when the obs
	// ledger is attached, is the migration this forwarder resulted from:
	// §4 forwards and §5 link updates absorbed here accrue to that record
	// even though the migration itself completed long ago. fwdSenders
	// tracks per-sender stale-send runs for the §6 convergence length; it
	// lives on the cold attribution path only (see Kernel.ledgerForward).
	fwdTo      addr.MachineID
	obsRec     *obs.MigrationRecord
	fwdSenders map[addr.ProcessID]uint64

	// Accounting.
	createdAt      sim.Time
	cpuUsed        sim.Time
	msgsIn         uint64
	msgsOut        uint64
	commTo         map[addr.MachineID]uint64
	queueHighWater int

	// Deltas since the last load report.
	cpuDelta  sim.Time
	msgsDelta uint64
	commDelta map[addr.MachineID]uint64
}

// ForwarderWireSize is the storage a forwarding address needs:
// pid(4) + destination machine(2) + back pointer(2) = 8 bytes,
// matching the paper's "it uses 8 bytes of storage".
const ForwarderWireSize = 8

// EncodeForwarder serializes a forwarding address (used by the E5
// experiment to verify the 8-byte claim, and by checkpoint tooling).
func EncodeForwarder(pid addr.ProcessID, to, back addr.MachineID) []byte {
	b := addr.EncodePID(make([]byte, 0, ForwarderWireSize), pid)
	b = append(b, byte(to), byte(to>>8))
	b = append(b, byte(back), byte(back>>8))
	return b
}

// ProcInfo is a read-only snapshot of a process for tests and tools.
type ProcInfo struct {
	PID        addr.ProcessID
	State      ProcState
	Kind       string
	Links      int
	QueueLen   int
	ImageSize  int
	CPUUsed    sim.Time
	MsgsIn     uint64
	MsgsOut    uint64
	FwdTo      addr.MachineID
	Privileged bool
}

// ExitInfo records how a process ended.
type ExitInfo struct {
	Code int32
	Err  error
	At   sim.Time
}

// SpawnSpec describes a process to create.
type SpawnSpec struct {
	// Program, if set, creates a VM process (Body must be nil).
	Program *dvm.Program
	// Body, if set, creates a native process.
	Body proc.Body
	// ImageSize allocates a memory image for a native body (for data
	// areas); ignored for VM processes, whose program defines the size.
	ImageSize int
	// Links are installed in the new process's table in order, getting
	// IDs 1..n. By convention slot 1 is the switchboard link.
	Links []link.Link
	// Privileged marks system processes (may mint links, send control
	// ops).
	Privileged bool
}

// Kernel is one machine's kernel.
type Kernel struct {
	machine addr.MachineID
	eng     *sim.Engine
	net     *netw.Network
	cfg     Config

	procs   map[addr.ProcessID]*Process
	nextUID addr.LocalUID
	runq    ring[*Process]

	// local is a dense fast path in front of procs for pids this machine
	// created: local UIDs are small and kernel-allocated, so the common
	// delivery lookup is one bounds check instead of a map probe. procs
	// stays authoritative; local is a cache maintained by addProc/delProc.
	local []*Process

	// pool recycles message envelopes on the kernel-to-kernel fast path.
	// Safe on a lossy network too: the ARQ copies on retain (netw/fault.go
	// clones a pooled envelope for retransmission and retires the original
	// through ReleaseFrame), so pooling no longer depends on the loss mode.
	pool *msg.Pool
	// pendingFree recycles deferred-delivery records (local latency hops
	// and paced data packets), mirroring netw's pooled delivery records.
	pendingFree *pending

	cpuFreeAt   sim.Time
	sliceQueued bool

	// runSliceFn and sliceCtx are bound once so arming a slice and running
	// a body allocate nothing: a method value or a fresh procCtx per slice
	// would otherwise be the scheduler's per-slice garbage.
	runSliceFn func()
	sliceCtx   procCtx
	ctxI       proc.Context
	traceOn    bool

	memUsed int
	swap    *memory.Store

	out      map[addr.ProcessID]*outMigration
	in       map[addr.ProcessID]*inMigration
	nextXfer uint16
	xfersIn  map[uint16]*inStream // inbound streams, keyed by locally-allocated xfer id
	moveOps  map[uint16]*moveOp   // outbound move-data writes awaiting completion

	// Migration fast-path free lists (see DESIGN.md §7): steady-state
	// migrations recycle their bookkeeping records — the out/in migration
	// halves (with their region scratch buffers and once-bound watchdog
	// closures), stream reassembly records, and whole Process records —
	// so a warm kernel migrates without growing the heap. Records wiped
	// wholesale by Restart (k.out/k.in reassignment) are simply orphaned
	// to the GC; the free lists only ever hold released records.
	omFree     *outMigration
	imFree     *inMigration
	streamFree *inStream
	procFree   []*Process
	// tableFree recycles link.Table backing between departures and
	// arrivals: putProcRec donates a released record's table here and
	// decodeSwappableInto rebuilds an arriving process's table into one.
	// Kept off the pooled Process records so forwarders and ProcInfo never
	// see a stale table.
	tableFree []*link.Table
	// kinds interns body-kind strings decoded from resident records, so a
	// process bouncing between machines does not re-allocate its kind
	// string on every arrival.
	kinds map[string]string

	pendingLocate map[addr.ProcessID][]*msg.Message
	console       map[addr.ProcessID][]string
	exits         map[addr.ProcessID]ExitInfo
	doneMigs      []msg.MigrateDone // MigrateDone replies addressed to this kernel

	lastReportBusy sim.Time
	lastReportAt   sim.Time

	stats   Stats
	reports []MigrationReport
	crashed bool

	// Fault plane (restart.go). stable simulates the §1 stable storage a
	// checkpoint survives a crash in; lostPIDs records processes a crash
	// wiped without a checkpoint (so invariant checks can tell "lost to a
	// crash" from "should still exist"); restarts counts recoveries and
	// gates the search fallback for orphaned forwarding addresses.
	stable       map[addr.ProcessID][]byte
	lostPIDs     map[addr.ProcessID]bool
	restarts     uint64
	faultHook    func(kp KillPoint, pid addr.ProcessID)
	loadReportEv sim.Event

	// Observability plane (obs.go): the cluster-wide migration ledger and
	// the kernel's registry-owned histograms. Both nil until SetObs; every
	// hot-path touch is behind a nil check, so a bare kernel pays one
	// predictable branch.
	led  *obs.Ledger
	hLat *obs.Histogram // user-message delivery latency (route -> enqueue), µs
}

// New creates a kernel for machine m, attaches it to the network, and
// returns it ready for Spawn calls.
func New(m addr.MachineID, eng *sim.Engine, net *netw.Network, cfg Config) *Kernel {
	if m == addr.NoMachine {
		panic("kernel: machine 0 is reserved")
	}
	cfg.fillDefaults()
	k := &Kernel{
		machine:       m,
		eng:           eng,
		net:           net,
		cfg:           cfg,
		procs:         make(map[addr.ProcessID]*Process),
		nextUID:       1,
		swap:          memory.NewStore(cfg.SwapCapacity),
		out:           make(map[addr.ProcessID]*outMigration),
		in:            make(map[addr.ProcessID]*inMigration),
		xfersIn:       make(map[uint16]*inStream),
		moveOps:       make(map[uint16]*moveOp),
		pendingLocate: make(map[addr.ProcessID][]*msg.Message),
		console:       make(map[addr.ProcessID][]string),
		exits:         make(map[addr.ProcessID]ExitInfo),
		stable:        make(map[addr.ProcessID][]byte),
		lostPIDs:      make(map[addr.ProcessID]bool),
		kinds:         make(map[string]string),
		stats:         newStats(),
	}
	k.pool = msg.NewPool()
	k.runSliceFn = k.runSlice
	k.sliceCtx.k = k
	k.ctxI = &k.sliceCtx
	k.traceOn = cfg.Tracer != nil
	net.Attach(m, k)
	if cfg.LoadReportEvery > 0 {
		k.scheduleLoadReport()
	}
	return k
}

// Machine returns this kernel's machine id.
func (k *Kernel) Machine() addr.MachineID { return k.machine }

// Engine returns the driving event engine.
func (k *Kernel) Engine() *sim.Engine { return k.eng }

// Config returns the active configuration.
func (k *Kernel) Config() Config { return k.cfg }

// Stats returns a snapshot of this kernel's counters.
func (k *Kernel) Stats() Stats { return k.stats.Clone() }

// Reports returns the migration reports this kernel produced as a source.
func (k *Kernel) Reports() []MigrationReport {
	return append([]MigrationReport(nil), k.reports...)
}

// DoneMigrations returns MigrateDone notifications addressed to this kernel
// (self-initiated migrations without a process manager).
func (k *Kernel) DoneMigrations() []msg.MigrateDone {
	return append([]msg.MigrateDone(nil), k.doneMigs...)
}

// MemUsed returns bytes of real memory in use by process images.
func (k *Kernel) MemUsed() int { return k.memUsed }

// Swap exposes the swap store (for the memory scheduler).
func (k *Kernel) Swap() *memory.Store { return k.swap }

// Crashed reports whether Crash was called.
func (k *Kernel) Crashed() bool { return k.crashed }

// Crash simulates processor failure: the machine stops sending and
// receiving, and all local state freezes. Messages in flight to it are
// handled by the network's retry/undeliverable machinery.
func (k *Kernel) Crash() {
	k.crashed = true
	k.net.SetDown(k.machine, true)
}

// Spawn creates a process and schedules it. Mirrors process creation in
// DEMOS: the new process's only connections are the links it is given.
func (k *Kernel) Spawn(spec SpawnSpec) (addr.ProcessID, error) {
	if k.crashed {
		return addr.NilPID, fmt.Errorf("kernel %v: crashed", k.machine)
	}
	var body proc.Body
	var img *memory.Image
	switch {
	case spec.Program != nil && spec.Body != nil:
		return addr.NilPID, fmt.Errorf("kernel: SpawnSpec has both Program and Body")
	case spec.Program != nil:
		var err error
		img, err = spec.Program.BuildImage(k.swap)
		if err != nil {
			return addr.NilPID, err
		}
		body = proc.NewVMBody(spec.Program.Entry)
	case spec.Body != nil:
		body = spec.Body
		if spec.ImageSize > 0 {
			img = memory.NewImage(spec.ImageSize, k.swap)
		}
	default:
		return addr.NilPID, fmt.Errorf("kernel: SpawnSpec has neither Program nor Body")
	}
	imgSize := 0
	if img != nil {
		imgSize = img.Size()
	}
	if k.cfg.MemCapacity > 0 && k.memUsed+imgSize > k.cfg.MemCapacity {
		return addr.NilPID, fmt.Errorf("kernel %v: out of memory (%d + %d > %d)",
			k.machine, k.memUsed, imgSize, k.cfg.MemCapacity)
	}

	pid := addr.ProcessID{Creator: k.machine, Local: k.nextUID}
	k.nextUID++
	p := &Process{
		id:         pid,
		state:      StateReady,
		body:       body,
		kind:       body.Kind(),
		links:      link.NewTable(k.cfg.LinkTableCap),
		image:      img,
		privileged: spec.Privileged,
		createdAt:  k.eng.Now(),
		commTo:     make(map[addr.MachineID]uint64),
		commDelta:  make(map[addr.MachineID]uint64),
	}
	for _, l := range spec.Links {
		if _, err := p.links.Insert(l); err != nil {
			return addr.NilPID, fmt.Errorf("kernel: installing initial link: %w", err)
		}
	}
	if mh, ok := body.(proc.MemoryHolder); ok && img != nil {
		mh.SetImage(img)
	}
	k.memUsed += imgSize
	k.addProc(p)
	k.stats.Spawned++
	k.relieveMemory()
	k.trace(trace.CatProc, "spawn", fmt.Sprintf("%v kind=%s image=%dB links=%d", pid, p.kind, imgSize, p.links.Len()))
	k.enqueueRun(p)
	return pid, nil
}

// Process returns a snapshot of a local process (or forwarder).
func (k *Kernel) Process(pid addr.ProcessID) (ProcInfo, bool) {
	p := k.lookup(pid)
	if p == nil {
		return ProcInfo{}, false
	}
	info := ProcInfo{
		PID: p.id, State: p.state, Kind: p.kind, QueueLen: p.queue.Len(),
		CPUUsed: p.cpuUsed, MsgsIn: p.msgsIn, MsgsOut: p.msgsOut,
		FwdTo: p.fwdTo, Privileged: p.privileged,
	}
	if p.links != nil {
		info.Links = p.links.Len()
	}
	if p.image != nil {
		info.ImageSize = p.image.Size()
	}
	return info, true
}

// Processes lists local process snapshots (including forwarders) in
// deterministic pid order.
func (k *Kernel) Processes() []ProcInfo {
	out := make([]ProcInfo, 0, len(k.procs))
	for _, p := range k.sortedProcs() {
		info, _ := k.Process(p.id)
		out = append(out, info)
	}
	return out
}

// VisitLinks calls fn for each link of a local process in slot order,
// without copying the table. Returns false if the process (or its table)
// does not exist here. This is the non-allocating form stats and trace
// callers should use; LinksOf remains for callers that want a map.
func (k *Kernel) VisitLinks(pid addr.ProcessID, fn func(link.ID, link.Link)) bool {
	p := k.lookup(pid)
	if p == nil || p.links == nil {
		return false
	}
	p.links.ForEach(fn)
	return true
}

// LinksOf returns a copy of a local process's link table entries.
func (k *Kernel) LinksOf(pid addr.ProcessID) map[link.ID]link.Link {
	var out map[link.ID]link.Link
	k.VisitLinks(pid, func(id link.ID, l link.Link) {
		if out == nil {
			out = make(map[link.ID]link.Link)
		}
		out[id] = l
	})
	return out
}

// Console returns the lines a process printed on this machine.
func (k *Kernel) Console(pid addr.ProcessID) []string {
	return append([]string(nil), k.console[pid]...)
}

// Exit returns how a process ended on this machine, if it did.
func (k *Kernel) Exit(pid addr.ProcessID) (ExitInfo, bool) {
	e, ok := k.exits[pid]
	return e, ok
}

// MintLinkTo fabricates a link to a process address — the trusted-system
// path the process manager uses to get DELIVERTOKERNEL links.
func (k *Kernel) MintLinkTo(l link.Link, owner addr.ProcessID) (link.ID, error) {
	p := k.lookup(owner)
	if p == nil {
		return link.NilID, fmt.Errorf("kernel %v: no process %v", k.machine, owner)
	}
	return p.links.Insert(l)
}

// ResidentBytes returns the real memory actually occupied by resident
// pages of local process images.
func (k *Kernel) ResidentBytes() int {
	total := 0
	for _, p := range k.procs {
		if p.image != nil {
			total += p.image.ResidentPages() * memory.PageSize
		}
	}
	return total
}

// relieveMemory swaps out pages of idle (waiting or suspended) processes
// until resident memory falls under the soft limit. Ready processes are
// left alone; their pages would fault right back in.
func (k *Kernel) relieveMemory() {
	if k.cfg.SwapSoftLimit <= 0 {
		return
	}
	resident := k.ResidentBytes()
	if resident <= k.cfg.SwapSoftLimit {
		return
	}
	for _, p := range k.sortedProcs() {
		if resident <= k.cfg.SwapSoftLimit {
			return
		}
		if p.image == nil || (p.state != StateWaiting && p.state != StateSuspended) {
			continue
		}
		freed := p.image.ResidentPages()
		if _, err := k.SwapOutProcess(p.id); err != nil {
			continue // swap store full; stop trying this process
		}
		freed -= p.image.ResidentPages()
		resident -= freed * memory.PageSize
		if freed > 0 {
			k.trace(trace.CatProc, "swapped-out",
				fmt.Sprintf("%v: %d pages under memory pressure", p.id, freed))
		}
	}
}

// SwapOutProcess pushes every resident page of a process's image to the
// swap store, freeing real memory. The pages fault back in transparently on
// access — including during migration's program transfer, per §3.1 step 5:
// "the kernel move data operation handles reading or writing of swapped out
// memory". Returns the number of pages moved to swap.
func (k *Kernel) SwapOutProcess(pid addr.ProcessID) (int, error) {
	p := k.lookup(pid)
	if p == nil || p.image == nil {
		return 0, fmt.Errorf("kernel %v: no swappable image for %v", k.machine, pid)
	}
	moved := 0
	for i := 0; i < p.image.Pages(); i++ {
		before := p.image.ResidentPages()
		if err := p.image.SwapOut(i); err != nil {
			return moved, err
		}
		if p.image.ResidentPages() < before {
			moved++
		}
	}
	return moved, nil
}

// SwappedPages reports how many of a local process's pages are in swap.
func (k *Kernel) SwappedPages(pid addr.ProcessID) int {
	p := k.lookup(pid)
	if p == nil || p.image == nil {
		return 0
	}
	return p.image.SwappedPages()
}

// GiveMessage injects a user message into a local process's queue, as if it
// had arrived from outside the cluster (used by drivers and tests).
func (k *Kernel) GiveMessage(pid addr.ProcessID, from addr.ProcessAddr, body []byte, links ...link.Link) error {
	m := &msg.Message{Kind: msg.KindUser, From: from, To: addr.At(pid, k.machine),
		Body: body, Links: links, SentAt: k.eng.Now()}
	k.deliverLocal(m)
	return nil
}

// GiveMessageTo routes a user message from this kernel toward an explicit —
// possibly stale — process address, exactly as a process holding an
// un-updated link would (used to exercise forwarding paths).
func (k *Kernel) GiveMessageTo(to, from addr.ProcessAddr, body []byte, links ...link.Link) {
	k.route(&msg.Message{Kind: msg.KindUser, From: from, To: to,
		Body: body, Links: links, SentAt: k.eng.Now()})
}

// SetPMLink re-points this kernel's process-manager link after boot.
func (k *Kernel) SetPMLink(l link.Link) { k.cfg.PMLink = l }

// SetAccept installs this kernel's migration acceptance policy (§3.2:
// "The destination processor may simply refuse to accept any migrations
// not fitting its criteria").
func (k *Kernel) SetAccept(f func(ask msg.MigrateAsk, memFree int) bool) {
	k.cfg.Accept = f
}

// GiveControlFrom injects a DELIVERTOKERNEL control message with an
// explicit sender — used when a process manager's identity must appear as
// the requester so the MigrateDone reply reaches it.
func (k *Kernel) GiveControlFrom(from addr.ProcessAddr, pid addr.ProcessID, op msg.Op, body []byte) {
	k.route(&msg.Message{
		Kind: msg.KindControl, Op: op,
		From: from, To: addr.At(pid, k.machine),
		DTK: true, Body: body, SentAt: k.eng.Now(),
	})
}

// BodyOf returns the live body of a local process. After a migration the
// destination kernel holds a fresh instance restored from the snapshot —
// callers must re-fetch from the new machine.
func (k *Kernel) BodyOf(pid addr.ProcessID) (proc.Body, bool) {
	p := k.lookup(pid)
	if p == nil || p.body == nil {
		return nil, false
	}
	return p.body, true
}

// GiveControl injects a DELIVERTOKERNEL control message addressed to a
// process (drivers and tests stand in for the process manager with it).
func (k *Kernel) GiveControl(pid addr.ProcessID, op msg.Op, body []byte) {
	k.route(&msg.Message{
		Kind: msg.KindControl, Op: op,
		From: addr.KernelAddr(k.machine), To: addr.At(pid, k.machine),
		DTK: true, Body: body, SentAt: k.eng.Now(),
	})
}

// RequestMigrationOf initiates a migration as if this kernel's machine ran
// the process manager: it sends the OpMigrateRequest administrative message
// over the normal delivery path (DELIVERTOKERNEL semantics), so the full
// 9-message protocol is exercised. The MigrateDone reply lands in
// DoneMigrations.
func (k *Kernel) RequestMigrationOf(target addr.ProcessAddr, dest addr.MachineID) {
	req := msg.MigrateRequest{PID: target.ID, Dest: dest}
	m := k.newControl(msg.OpMigrateRequest, target)
	m.DTK = true
	m.Body = req.AppendTo(m.Body[:0])
	k.sendAdmin(m, nil)
}

// Hard caps on per-PID buffers the outside world can grow: without them a
// dead locate target (return-to-sender baseline) or a chatty process could
// grow kernel memory without limit. Overflow increments a drop counter.
const (
	// PendingLocateCap bounds messages held per PID while a locate query
	// is outstanding.
	PendingLocateCap = 64
	// ConsoleLineCap bounds console lines retained per PID.
	ConsoleLineCap = 256
)

// addProc installs a process record in the table (and the dense local-UID
// cache when this machine created the pid).
func (k *Kernel) addProc(p *Process) {
	k.procs[p.id] = p
	if p.id.Creator == k.machine {
		uid := int(p.id.Local)
		for uid >= len(k.local) {
			k.local = append(k.local, nil)
		}
		k.local[uid] = p
	}
}

// delProc removes a process record from the table and the dense cache.
func (k *Kernel) delProc(pid addr.ProcessID) {
	delete(k.procs, pid)
	if pid.Creator == k.machine && int(pid.Local) < len(k.local) {
		k.local[pid.Local] = nil
	}
}

// lookup finds a local process record (nil if absent). Locally-created
// pids — the overwhelming majority of delivery targets — resolve through
// the dense slice; foreign pids (migrated in, revived) fall back to the map.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestHotPathZeroAlloc/kernel-local-roundtrip in bench_hotpath_test.go.
func (k *Kernel) lookup(pid addr.ProcessID) *Process {
	if pid.Creator == k.machine {
		if i := int(pid.Local); i < len(k.local) {
			return k.local[i]
		}
		return nil
	}
	return k.procs[pid]
}

// getMsg acquires a message envelope for the send path: pooled in steady
// state, heap-constructed when pooling is off (lossy network).
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestHotPathZeroAlloc/kernel-local-roundtrip in bench_hotpath_test.go.
func (k *Kernel) getMsg() *msg.Message {
	if k.pool != nil {
		return k.pool.Get()
	}
	return &msg.Message{}
}

// putMsg releases an envelope after its final consumption. Heap messages
// (drivers, tests, cold paths, lossy mode) pass through as no-ops.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestHotPathZeroAlloc/kernel-local-roundtrip in bench_hotpath_test.go.
//demos:releases m — demoslint's ownership rule treats a putMsg call like Pool.Put: the argument is dead on every path after it.
func (k *Kernel) putMsg(m *msg.Message) {
	if k.pool != nil {
		k.pool.Put(m)
	}
}

// newControl acquires an envelope pre-addressed as a control message from
// this kernel. The caller fills Body (reusing the envelope's backing array
// via an AppendTo encoder) and routes it.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestHotPathZeroAlloc/admin-encode in bench_hotpath_test.go.
func (k *Kernel) newControl(op msg.Op, to addr.ProcessAddr) *msg.Message {
	m := k.getMsg()
	m.Kind = msg.KindControl
	m.Op = op
	m.From = addr.KernelAddr(k.machine)
	m.To = to
	m.SentAt = k.eng.Now()
	return m
}

// pending is a pooled deferred-submission record: the same release-before-
// run free-list idiom as netw's delivery records, used for the local
// delivery latency hop and for paced data packets. fn is bound once so
// scheduling one allocates nothing in steady state.
type pending struct {
	k        *Kernel
	m        *msg.Message
	resubmit bool // re-route (paced packet) instead of delivering locally
	fn       func()
	next     *pending
}

//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestHotPathZeroAlloc/kernel-local-roundtrip in bench_hotpath_test.go.
//demos:owner pending — the pooled pending record owns its envelope for exactly one scheduled hop; run() hands it back to route, which releases or re-queues it.
func (k *Kernel) getPending(m *msg.Message, resubmit bool) *pending {
	d := k.pendingFree
	if d == nil {
		d = &pending{k: k}
		d.fn = d.run
	} else {
		k.pendingFree = d.next
		d.next = nil
	}
	d.m = m
	d.resubmit = resubmit
	return d
}

//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestHotPathZeroAlloc/kernel-local-roundtrip in bench_hotpath_test.go.
func (d *pending) run() {
	k, m, res := d.k, d.m, d.resubmit
	// Release before running so nested schedules can reuse the record.
	d.m = nil
	d.next = k.pendingFree
	k.pendingFree = d
	if k.crashed {
		// The kernel crashed while this local hop was in flight: the
		// message dies with the machine, but not silently.
		k.dropCrashed(m)
		return
	}
	if res {
		k.route(m)
	} else {
		k.deliverLocal(m)
	}
}

func (k *Kernel) trace(cat trace.Category, event, detail string) {
	k.cfg.Tracer.Emit(k.machine, cat, event, detail)
}

// getProcRec acquires a Process record for the migration path: recycled
// when available (retaining the queue ring and accounting maps of a process
// that previously migrated away), fresh otherwise. The record's links are
// nil; incoming migrations restore a table via decodeSwappableInto and
// forwarders never hold one.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestMigrationSteadyStateAllocs in bench_hotpath_test.go.
func (k *Kernel) getProcRec() *Process {
	if n := len(k.procFree); n > 0 {
		p := k.procFree[n-1]
		k.procFree[n-1] = nil
		k.procFree = k.procFree[:n-1]
		if p.commTo == nil {
			p.commTo = make(map[addr.MachineID]uint64)
		}
		if p.commDelta == nil {
			p.commDelta = make(map[addr.MachineID]uint64)
		}
		return p
	}
	return &Process{
		commTo:    make(map[addr.MachineID]uint64),
		commDelta: make(map[addr.MachineID]uint64),
	}
}

// putProcRec releases a Process record whose identity has left this kernel
// (migrated away, failed incoming, superseded forwarder). The caller must
// have drained the queue and removed the record from the tables; the ring
// and maps survive for the next arrival, and the link table (if any) is
// donated to tableFree for the next incoming restore.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestMigrationSteadyStateAllocs in bench_hotpath_test.go.
func (k *Kernel) putProcRec(p *Process) {
	if p.queue.Len() != 0 {
		return // defensive: never recycle a record with live messages
	}
	if p.links != nil && len(k.tableFree) < 8 {
		k.tableFree = append(k.tableFree, p.links)
	}
	q := p.queue
	commTo, commDelta := p.commTo, p.commDelta
	if commTo != nil {
		clear(commTo)
	}
	if commDelta != nil {
		clear(commDelta)
	}
	*p = Process{queue: q, commTo: commTo, commDelta: commDelta}
	k.procFree = append(k.procFree, p)
}

// internKind canonicalizes a body-kind decoded from a resident record. The
// map probe with a string(b) key does not allocate on hit, so a process
// that has arrived here before costs one lookup.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestMigrationSteadyStateAllocs in bench_hotpath_test.go.
func (k *Kernel) internKind(b []byte) string {
	if s, ok := k.kinds[string(b)]; ok {
		return s
	}
	s := string(b)
	k.kinds[s] = s
	return s
}

// newXferID allocates a transfer id for an inbound stream.
func (k *Kernel) newXferID() uint16 {
	k.nextXfer++
	if k.nextXfer == 0 {
		k.nextXfer = 1
	}
	return k.nextXfer
}

package kernel

import (
	"fmt"

	"demosmp/internal/addr"
	"demosmp/internal/msg"
	"demosmp/internal/sim"
	"demosmp/internal/trace"
)

// This file implements the move-data facility (§2.2): large transfers are
// streamed as a sequence of data packets "sent to the receiving kernel in a
// continuous stream. The receiving kernel acknowledges each packet (but the
// sending kernel does not have to wait for the acknowledgement to send the
// next packet)." (§6)
//
// Two packet addressing modes exist:
//
//   - Packets addressed to a kernel (reads, migration region pulls) are
//     reassembled into an inStream registered under the receiver-allocated
//     transfer id.
//   - Packets addressed to a process with DELIVERTOKERNEL (writes into a
//     link's data area) carry absolute image offsets in Seq and are applied
//     statelessly on arrival. Statelessness is what keeps writes correct
//     across a concurrent migration of the area's owner: packets held on
//     the frozen process's queue are forwarded with everything else and
//     simply apply at the new machine. Completion, however, is decided by
//     the *writer's* kernel from the per-packet acks — never by the owner
//     seeing the Last packet, which can overtake earlier (bigger) packets
//     through a forwarding address.

// inStream reassembles an inbound byte stream. Records are pooled
// (k.streamFree). A stream serves one of two masters: migration region
// pulls set im/region and dispatch straight into the migration state
// machine on completion; data-area reads set the complete/fail closures.
type inStream struct {
	buf   []byte
	bytes int
	total int // -1 until the Last packet arrives

	// Migration region pulls (hot): reassemble into im.bufs[region] and
	// dispatch to regionArrived without a per-pull closure.
	im     *inMigration
	region msg.Region

	// Data-area reads (cold): completion callbacks.
	complete func(data []byte)
	fail     func()

	next *inStream // free list
}

// moveOp tracks an outbound data-area write awaiting acknowledgement of
// every packet. Completion is decided HERE, on the writer's kernel — the
// one party guaranteed not to migrate mid-stream — because packets to a
// migrating owner may be applied on different machines and may arrive out
// of order through forwarding addresses (a smaller last packet can overtake
// a bigger first one). Only when every packet has been acked from wherever
// it was applied is the write reported complete.
type moveOp struct {
	initiator addr.ProcessID
	userXfer  uint16
	packets   int
	base      uint32   // Seq of the stream's first packet
	pkt       int      // packet stride (cfg.DataPacket at stream start)
	acked     []uint64 // bitset, one bit per packet
	ackCount  int
}

// getInStream acquires a stream record from the free list.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestMigrationSteadyStateAllocs in bench_hotpath_test.go.
func (k *Kernel) getInStream() *inStream {
	st := k.streamFree
	if st == nil {
		return &inStream{total: -1}
	}
	k.streamFree = st.next
	st.next = nil
	return st
}

// putInStream releases a stream record. The reassembly buffer is NOT kept
// on the record: migration streams assemble directly into im.bufs (which
// own the backing), and read streams may have handed their buffer to a
// completion callback. Callers must have removed the record from k.xfersIn.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestMigrationSteadyStateAllocs in bench_hotpath_test.go.
func (k *Kernel) putInStream(st *inStream) {
	*st = inStream{total: -1, next: k.streamFree}
	k.streamFree = st
}

func (k *Kernel) registerInStream(xfer uint16, complete func([]byte)) *inStream {
	st := k.getInStream()
	st.complete = complete
	k.xfersIn[xfer] = st
	return st
}

// streamOut sends data to another machine's kernel as a paced packet
// stream, returning the packet count. Used for data-area reads; migration
// region pulls go through streamGather directly.
func (k *Kernel) streamOut(to addr.MachineID, xfer uint16, data []byte) int {
	vecs := [1][]byte{data}
	return k.streamGather(addr.KernelAddr(to), false, xfer, 0, vecs[:])
}

// streamWrite sends data addressed to a process's kernel (DELIVERTOKERNEL)
// with absolute image offsets, for data-area writes.
func (k *Kernel) streamWrite(owner addr.ProcessAddr, xfer uint16, imageOff uint32, data []byte) int {
	vecs := [1][]byte{data}
	return k.streamGather(owner, true, xfer, imageOff, vecs[:])
}

// streamGather is the vectored packetizer: it streams the concatenation of
// vecs without ever materializing it, filling each pooled envelope's body
// directly from as many vectors as one packet spans. Wire output — packet
// sizes, Seq offsets, pacing, Last marker — is byte-identical to streaming
// the equivalent single buffer.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestMigrationSteadyStateAllocs in bench_hotpath_test.go.
func (k *Kernel) streamGather(to addr.ProcessAddr, dtk bool, xfer uint16, baseOff uint32, vecs [][]byte) int {
	pkt := k.cfg.DataPacket
	total := 0
	for _, v := range vecs {
		total += len(v)
	}
	n := (total + pkt - 1) / pkt
	if n == 0 {
		n = 1 // empty stream still needs its Last packet
	}
	// Pace packets at the line's serialization rate so a big transfer
	// occupies the network for a realistic duration.
	gap := k.net.TransitTime(pkt+msg.HeaderWireSize) - k.net.TransitTime(0)
	if gap == 0 {
		gap = 1
	}
	vi, vo, off := 0, 0, 0
	for i := 0; i < n; i++ {
		want := pkt
		if off+want > total {
			want = total - off
		}
		m := k.getMsg()
		m.Kind = msg.KindData
		m.From = addr.KernelAddr(k.machine)
		m.To = to
		m.DTK = dtk
		m.Xfer = xfer
		m.Seq = baseOff + uint32(off)
		m.Last = i == n-1
		b := m.Body[:0]
		for want > 0 && vi < len(vecs) {
			if vo == len(vecs[vi]) {
				vi++
				vo = 0
				continue
			}
			take := len(vecs[vi]) - vo
			if take > want {
				take = want
			}
			b = append(b, vecs[vi][vo:vo+take]...)
			vo += take
			want -= take
		}
		m.Body = b
		off += len(b)
		k.stats.DataPacketsSent++
		k.stats.DataBytesSent += uint64(len(b))
		k.eng.After(gap*sim.Time(i), "kernel:data-packet", k.getPending(m, true).fn)
	}
	return n
}

// handleDataPacket processes an arriving KindData frame.
//
// Zero-copy region handoff: when a whole stream fits in one pooled packet
// (Seq 0, Last, nothing assembled yet), the stream adopts the envelope's
// body wholesale and gives the envelope its own backing in exchange — the
// one place the "handlers must not retain Body" contract is traded for an
// ownership swap, which the immediately-following putMsg in deliverLocal
// makes safe (the envelope re-enters the pool with the swapped backing, so
// pool conservation is unchanged). Lossy-network retransmit clones are
// heap-constructed and skip the swap.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestHotPathZeroAlloc/kernel-local-roundtrip in bench_hotpath_test.go.
func (k *Kernel) handleDataPacket(m *msg.Message) {
	k.ack(m)
	if !m.To.ID.IsKernel() {
		k.applyWritePacket(m)
		return
	}
	st, ok := k.xfersIn[m.Xfer]
	if !ok {
		if k.traceOn {
			k.traceStrayPacket(m)
		}
		return
	}
	n := len(m.Body)
	end := int(m.Seq) + n
	switch {
	case m.Last && m.Seq == 0 && st.bytes == 0 && m.Pooled():
		st.buf, m.Body = m.Body, st.buf[:0] //demos:owner stream — zero-copy donation: the stream keeps the packet's backing array and the envelope leaves with the stream's empty one.
	case end <= cap(st.buf):
		if end > len(st.buf) {
			st.buf = st.buf[:end]
		}
		copy(st.buf[m.Seq:], m.Body)
	default:
		grown := make([]byte, end)
		copy(grown, st.buf)
		st.buf = grown
		copy(st.buf[m.Seq:], m.Body)
	}
	st.bytes += n
	if m.Last {
		st.total = end
	}
	if st.total >= 0 && st.bytes >= st.total {
		delete(k.xfersIn, m.Xfer)
		data := st.buf[:st.total]
		if im := st.im; im != nil {
			region := st.region
			st.buf = nil // ownership moves to im.bufs[region]
			k.putInStream(st)
			k.regionArrived(im, region, data)
			return
		}
		cb := st.complete
		st.buf = nil // the callback may retain data
		k.putInStream(st)
		cb(data)
	}
}

func (k *Kernel) traceStrayPacket(m *msg.Message) {
	k.trace(trace.CatData, "stray-packet", fmt.Sprintf("xfer=%d seq=%d", m.Xfer, m.Seq))
}

// applyWritePacket applies a data-area write statelessly to the target
// process's image. Completion is signalled by the acks, not here: this
// packet may be one of several applied on different machines if the owner
// migrated mid-stream.
func (k *Kernel) applyWritePacket(m *msg.Message) {
	p := k.lookup(m.To.ID)
	if p != nil && p.image != nil {
		if err := p.image.WriteAt(m.Body, int(m.Seq)); err != nil {
			k.trace(trace.CatData, "write-fault", err.Error())
		}
	}
}

// ack acknowledges one data packet to the sending kernel. The DTK flag is
// copied so the sender can tell write-stream acks (which drive moveOp
// completion) from read/migration-stream acks.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestHotPathZeroAlloc/kernel-local-roundtrip in bench_hotpath_test.go.
func (k *Kernel) ack(m *msg.Message) {
	k.stats.AcksSent++
	a := k.getMsg()
	a.Kind = msg.KindAck
	a.From = addr.KernelAddr(k.machine)
	a.To = m.From
	a.DTK = m.DTK
	a.Xfer = m.Xfer
	a.Seq = m.Seq
	k.route(a)
}

// handleAck counts an acknowledgement and, for write streams, advances the
// owning moveOp — sending the completion to the initiating process once
// every packet of the stream has been applied somewhere. Acked packets are
// tracked in a per-op bitset indexed by (Seq-base)/stride rather than a
// map, so a steady write stream acknowledges without touching the heap.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestHotPathZeroAlloc/kernel-local-roundtrip in bench_hotpath_test.go.
func (k *Kernel) handleAck(m *msg.Message) {
	k.stats.AcksReceived++
	if !m.DTK {
		return
	}
	op, ok := k.moveOps[m.Xfer]
	if !ok || m.Seq < op.base {
		return
	}
	d := int(m.Seq - op.base)
	if op.pkt <= 0 || d%op.pkt != 0 {
		return
	}
	idx := d / op.pkt
	if idx >= op.packets {
		return
	}
	w, bit := idx/64, uint64(1)<<(idx%64)
	if op.acked[w]&bit != 0 {
		return
	}
	op.acked[w] |= bit
	op.ackCount++
	if op.ackCount < op.packets {
		return
	}
	delete(k.moveOps, m.Xfer)
	done := k.newControl(msg.OpMoveWriteDone, addr.At(op.initiator, k.machine))
	done.Body = msg.XferStatus{Xfer: op.userXfer, OK: true}.AppendTo(done.Body[:0])
	k.route(done)
}

// handleMoveRead serves a data-area read: stream the requested window of
// the owner's image back to the requesting kernel.
func (k *Kernel) handleMoveRead(m *msg.Message) {
	req, err := msg.DecodeMoveRead(m.Body)
	if err != nil {
		return
	}
	p := k.lookup(req.PID)
	if p == nil || p.image == nil {
		k.failMoveRead(m.From, req.Xfer)
		return
	}
	data := make([]byte, req.Len)
	if err := p.image.ReadAt(data, int(req.AreaOff+req.Off)); err != nil {
		k.trace(trace.CatData, "read-fault", err.Error())
		k.failMoveRead(m.From, req.Xfer)
		return
	}
	k.streamOut(m.From.LastKnown, req.Xfer, data)
}

func (k *Kernel) failMoveRead(to addr.ProcessAddr, xfer uint16) {
	m := k.newControl(msg.OpMoveReadDone, to)
	m.Body = msg.XferStatus{Xfer: xfer, OK: false}.AppendTo(m.Body[:0])
	k.route(m)
}

// handleMoveReadFailed cancels a pending inbound stream (the owner refused
// or faulted) and notifies the initiating process.
func (k *Kernel) handleMoveReadFailed(m *msg.Message) {
	st, err := msg.DecodeXferStatus(m.Body)
	if err != nil {
		return
	}
	in, ok := k.xfersIn[st.Xfer]
	if !ok {
		return
	}
	delete(k.xfersIn, st.Xfer)
	fail := in.fail
	in.buf = nil
	k.putInStream(in)
	if fail != nil {
		fail()
	}
}

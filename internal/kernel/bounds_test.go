package kernel_test

import (
	"bytes"
	"encoding/gob"
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/kernel"
	"demosmp/internal/link"
	"demosmp/internal/obs"
	"demosmp/internal/proc"
)

// These tests pin the hard caps on the kernel's per-PID buffers. Like
// TestDedupStateBounded in internal/netw, each drives the buffer with far
// more traffic than the bound allows and asserts two things at once: the
// observable behavior stays correct, and kernel memory stops growing at the
// cap (with the overflow counted, not silent).

// TestPendingLocateBounded: in return-to-sender mode a bounced message is
// held while the kernel asks the process manager where the ghost went. A PM
// that never answers must not let that holding area grow without limit —
// beyond PendingLocateCap the kernel dead-letters instead of holding.
func TestPendingLocateBounded(t *testing.T) {
	const extra = 10
	c := newTC(t, 2, func(cfg *kernel.Config) {
		cfg.Mode = kernel.ModeReturnToSender
	})
	// The "process manager" is a blackhole: it consumes every OpLocate
	// and never replies, so held messages can only pile up.
	pm, err := c.k(1).Spawn(kernel.SpawnSpec{Body: &blackholeBody{}})
	if err != nil {
		t.Fatal(err)
	}
	c.k(1).SetPMLink(link.Link{Addr: addr.At(pm, 1)})
	sender, err := c.k(1).Spawn(kernel.SpawnSpec{Body: &blackholeBody{}})
	if err != nil {
		t.Fatal(err)
	}

	ghost := addr.ProcessID{Creator: 2, Local: 9999} // never existed anywhere
	for i := 0; i < kernel.PendingLocateCap+extra; i++ {
		c.k(1).GiveMessageTo(addr.At(ghost, 2), addr.At(sender, 1), []byte("lost"))
	}
	c.run()

	s1 := c.k(1).Stats()
	s2 := c.k(2).Stats()
	if want := uint64(kernel.PendingLocateCap + extra); s2.Bounced != want {
		t.Fatalf("m2 bounced %d messages, want %d", s2.Bounced, want)
	}
	// One locate query is outstanding for the whole pile-up.
	if s1.LocateRequests != 1 {
		t.Fatalf("locate requests = %d, want 1 (coalesced per PID)", s1.LocateRequests)
	}
	// The first PendingLocateCap bounces are held awaiting the reply; every
	// bounce past the cap is dropped and accounted.
	if s1.LocateDropped != extra {
		t.Fatalf("LocateDropped = %d, want %d", s1.LocateDropped, extra)
	}
	if s1.DeadLetters < extra {
		t.Fatalf("DeadLetters = %d, want >= %d (each drop is a dead letter)", s1.DeadLetters, extra)
	}

	// The same counters must surface through the obs registry — capped
	// buffer overflow is part of the exported snapshot, never silent. The
	// samplers read the kernel's live stats, so attaching after the run
	// still sees everything.
	reg := obs.NewRegistry()
	c.k(1).SetObs(reg, nil)
	snap := reg.Snapshot(0)
	if v := snap.Value("kernel.m1.locate_dropped"); v != extra {
		t.Fatalf("obs locate_dropped = %d, want %d", v, extra)
	}
	if v := snap.Value("kernel.m1.dead_letters"); v != s1.DeadLetters {
		t.Fatalf("obs dead_letters = %d, stats say %d", v, s1.DeadLetters)
	}
	if m, ok := snap.Get("kernel.m1.console_dropped"); !ok || m.Value != 0 {
		t.Fatalf("obs console_dropped missing or nonzero: %+v", m)
	}
}

// chattyBody prints more console lines than the cap allows in one slice.
type chattyBody struct {
	Lines int
}

func (b *chattyBody) Kind() string { return "chatty" }

func (b *chattyBody) Step(ctx proc.Context, budget int) (int, proc.Status) {
	for i := 0; i < b.Lines; i++ {
		ctx.Print([]byte("line\n"))
	}
	return 0, proc.Status{State: proc.Exited}
}

func (b *chattyBody) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(b)
	return buf.Bytes(), err
}

func (b *chattyBody) Restore(data []byte) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(b)
}

// TestConsoleBounded: a process that prints without limit keeps only the
// first ConsoleLineCap lines; the rest are counted as dropped.
func TestConsoleBounded(t *testing.T) {
	const extra = 50
	c := newTC(t, 1, nil)
	pid, err := c.k(1).Spawn(kernel.SpawnSpec{Body: &chattyBody{Lines: kernel.ConsoleLineCap + extra}})
	if err != nil {
		t.Fatal(err)
	}
	c.run()

	if got := len(c.k(1).Console(pid)); got != kernel.ConsoleLineCap {
		t.Fatalf("console kept %d lines, want exactly %d", got, kernel.ConsoleLineCap)
	}
	if s := c.k(1).Stats(); s.ConsoleDropped != extra {
		t.Fatalf("ConsoleDropped = %d, want %d", s.ConsoleDropped, extra)
	}

	// And through the registry snapshot.
	reg := obs.NewRegistry()
	c.k(1).SetObs(reg, nil)
	if v := reg.Snapshot(0).Value("kernel.m1.console_dropped"); v != extra {
		t.Fatalf("obs console_dropped = %d, want %d", v, extra)
	}
}

package kernel_test

import (
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/kernel"
	"demosmp/internal/workload"
)

// TestCheckpointReviveAfterCrash is §1's fault-recovery scenario: a
// checkpoint saved to "stable storage" revives the process on a working
// machine after its processor crashes, and the computation completes from
// the checkpointed state.
func TestCheckpointReviveAfterCrash(t *testing.T) {
	c := newTC(t, 2, nil)
	pid, err := c.k(1).Spawn(kernel.SpawnSpec{Program: workload.CPUBound(100000)})
	if err != nil {
		t.Fatal(err)
	}
	c.runFor(50000) // partway through

	snap, err := c.k(1).Checkpoint(pid)
	if err != nil {
		t.Fatal(err)
	}
	c.runFor(10000) // a little more progress after the checkpoint
	c.k(1).Crash()
	c.run()
	if _, _, ok := func() (kernel.ExitInfo, addr.MachineID, bool) {
		for m, k := range c.ks {
			if e, ok := k.Exit(pid); ok {
				return e, m, true
			}
		}
		return kernel.ExitInfo{}, 0, false
	}(); ok {
		t.Fatal("process somehow exited despite the crash")
	}

	revived, err := c.k(2).Revive(snap)
	if err != nil {
		t.Fatal(err)
	}
	if revived != pid {
		t.Fatalf("revived as %v, want the same identity %v", revived, pid)
	}
	c.run()
	e, ok := c.k(2).Exit(pid)
	if !ok {
		t.Fatal("revived process never finished")
	}
	if e.Code != workload.CPUBoundResult(100000) {
		t.Fatalf("revived result %d, want %d — checkpoint state corrupt",
			e.Code, workload.CPUBoundResult(100000))
	}
	if s := c.k(2).Stats(); s.Revived != 1 {
		t.Fatalf("revived counter = %d", s.Revived)
	}
}

// TestCheckpointNativeBody: native server state survives the same path.
func TestCheckpointNativeBody(t *testing.T) {
	c := newTC(t, 2, nil)
	cb := &counterBody{}
	pid, _ := c.k(1).Spawn(kernel.SpawnSpec{Body: cb})
	sink := &blackholeBody{}
	sinkPID, _ := c.k(2).Spawn(kernel.SpawnSpec{Body: sink})
	for i := 0; i < 3; i++ {
		c.k(1).GiveMessage(pid, addr.At(sinkPID, 2), []byte("hit"), c.linkTo(sinkPID, 2, 0))
	}
	c.run()
	snap, err := c.k(1).Checkpoint(pid)
	if err != nil {
		t.Fatal(err)
	}
	c.k(1).Crash()
	if _, err := c.k(2).Revive(snap); err != nil {
		t.Fatal(err)
	}
	// The revived counter continues from 3.
	c.k(2).GiveMessage(pid, addr.At(sinkPID, 2), []byte("hit"), c.linkTo(sinkPID, 2, 0))
	c.run()
	if len(sink.Got) != 4 || sink.Got[3] != "count=4@m2" {
		t.Fatalf("revived counter state: %v", sink.Got)
	}
}

// TestReviveRefusesCollision: a live process is never overwritten.
func TestReviveRefusesCollision(t *testing.T) {
	c := newTC(t, 2, nil)
	pid, _ := c.k(1).Spawn(kernel.SpawnSpec{Body: &counterBody{}})
	c.runFor(1000)
	snap, _ := c.k(1).Checkpoint(pid)
	if _, err := c.k(1).Revive(snap); err == nil {
		t.Fatal("revive over a live process accepted")
	}
}

// TestReviveReplacesForwarder: reviving where only a forwarding address
// remains supersedes it (like migrating back home).
func TestReviveReplacesForwarder(t *testing.T) {
	c := newTC(t, 2, nil)
	pid, _ := c.k(1).Spawn(kernel.SpawnSpec{Body: &counterBody{}})
	c.migrate(2, pid, 1, 2)
	c.run()
	snap, err := c.k(2).Checkpoint(pid)
	if err != nil {
		t.Fatal(err)
	}
	c.k(2).Crash()
	// m1 still holds the forwarder; revival replaces it.
	if _, err := c.k(1).Revive(snap); err != nil {
		t.Fatal(err)
	}
	info, ok := c.k(1).Process(pid)
	if !ok || info.State == kernel.StateForwarder {
		t.Fatalf("revive did not replace the forwarder: %+v", info)
	}
}

// TestCheckpointRejectsGarbage and non-checkpointable states.
func TestCheckpointValidation(t *testing.T) {
	c := newTC(t, 2, nil)
	if _, err := c.k(1).Revive([]byte("not a checkpoint")); err == nil {
		t.Fatal("garbage revived")
	}
	if _, err := c.k(1).Checkpoint(addr.ProcessID{Creator: 9, Local: 9}); err == nil {
		t.Fatal("checkpointed a nonexistent process")
	}
	// A forwarding address is not checkpointable.
	pid, _ := c.k(1).Spawn(kernel.SpawnSpec{Body: &counterBody{}})
	c.migrate(2, pid, 1, 2)
	c.run()
	if _, err := c.k(1).Checkpoint(pid); err == nil {
		t.Fatal("checkpointed a forwarding address")
	}
	// Truncated checkpoints are rejected.
	snap, _ := c.k(2).Checkpoint(pid)
	for _, cut := range []int{5, 12, len(snap) - 3} {
		if _, err := c.k(1).Revive(snap[:cut]); err == nil {
			t.Fatalf("revived %d-byte truncation", cut)
		}
	}
}

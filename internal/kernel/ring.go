package kernel

// ring is a growable FIFO over a power-of-two circular buffer. Process
// message queues and the run queue use it instead of append-grown slices:
// a pop never strands backing-array capacity, so a busy queue reaches a
// steady state where push and pop touch no allocator at all.
type ring[T comparable] struct {
	buf  []T
	head int
	n    int
}

// Len returns the number of queued elements.
func (r *ring[T]) Len() int { return r.n }

// push appends v at the tail.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestHotPathZeroAlloc/kernel-local-roundtrip in bench_hotpath_test.go.
func (r *ring[T]) push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// pop removes and returns the head element (the zero value when empty).
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestHotPathZeroAlloc/kernel-local-roundtrip in bench_hotpath_test.go.
func (r *ring[T]) pop() T {
	var zero T
	if r.n == 0 {
		return zero
	}
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// at returns the i-th queued element (0 = head) without removing it.
func (r *ring[T]) at(i int) T { return r.buf[(r.head+i)&(len(r.buf)-1)] }

// remove deletes the first occurrence of v, preserving FIFO order of the
// rest. Used when a process leaves the run queue out of turn (suspension,
// migration freeze).
func (r *ring[T]) remove(v T) bool {
	for i := 0; i < r.n; i++ {
		if r.at(i) != v {
			continue
		}
		for j := i; j < r.n-1; j++ {
			r.buf[(r.head+j)&(len(r.buf)-1)] = r.at(j + 1)
		}
		r.n--
		var zero T
		r.buf[(r.head+r.n)&(len(r.buf)-1)] = zero
		return true
	}
	return false
}

func (r *ring[T]) grow() {
	size := len(r.buf) * 2
	if size == 0 {
		size = 8
	}
	nb := make([]T, size)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = nb
	r.head = 0
}

package kernel_test

// Crash/restart recovery and the §4 search escape hatch: a restarted kernel
// has lost every forwarding address it held, so messages that relied on one
// must either reroute toward the pid's creator, trigger a broadcast search,
// or die as accounted dead letters.

import (
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/kernel"
)

// TestRestartWipesAndRevives: a crash wipes volatile state with full
// accounting; Restart brings the machine back and revives exactly the
// processes that had a checkpoint in stable storage.
func TestRestartWipesAndRevives(t *testing.T) {
	c := newTC(t, 2, nil)
	saved, err := c.k(1).Spawn(kernel.SpawnSpec{Body: &counterBody{}})
	if err != nil {
		t.Fatal(err)
	}
	doomed, err := c.k(1).Spawn(kernel.SpawnSpec{Body: &blackholeBody{}})
	if err != nil {
		t.Fatal(err)
	}
	c.runFor(2_000)

	if err := c.k(1).Restart(); err == nil {
		t.Fatal("Restart on a live kernel must fail")
	}
	if err := c.k(1).SaveCheckpoint(saved); err != nil {
		t.Fatal(err)
	}
	c.k(1).Crash()
	if err := c.k(1).Restart(); err != nil {
		t.Fatal(err)
	}

	if got := c.k(1).Restarts(); got != 1 {
		t.Fatalf("Restarts = %d, want 1", got)
	}
	if _, ok := c.k(1).Process(saved); !ok {
		t.Fatal("checkpointed process was not revived")
	}
	if _, ok := c.k(1).Process(doomed); ok {
		t.Fatal("uncheckpointed process survived the crash")
	}
	lost := c.k(1).LostPIDs()
	if len(lost) != 1 || lost[0] != doomed {
		t.Fatalf("LostPIDs = %v, want exactly [%v]", lost, doomed)
	}
	s := c.k(1).Stats()
	if s.CrashLostProcs != 2 {
		t.Fatalf("CrashLostProcs = %d, want 2 (both were wiped; one came back)", s.CrashLostProcs)
	}
	if s.Revived != 1 {
		t.Fatalf("Revived = %d, want 1", s.Revived)
	}

	// The revived process still works end to end.
	if err := c.k(1).GiveMessage(saved, addr.KernelAddr(2), []byte("die")); err != nil {
		t.Fatal(err)
	}
	c.run()
	if _, m := c.exitOf(saved); m != 1 {
		t.Fatalf("revived process exited on m%d, want m1", m)
	}
}

// migrateAway spawns a counter on m1 and completes a migration to m2,
// leaving a forwarding address on m1.
func migrateAway(c *tc) addr.ProcessID {
	c.t.Helper()
	pid, err := c.k(1).Spawn(kernel.SpawnSpec{Body: &counterBody{}})
	if err != nil {
		c.t.Fatal(err)
	}
	c.runFor(2_000)
	c.migrate(3, pid, 1, 2)
	c.run()
	if info, ok := c.k(2).Process(pid); !ok || info.State == kernel.StateForwarder {
		c.t.Fatal("setup migration 1->2 did not complete")
	}
	return pid
}

// TestSearchRerouteForeignPID: a message lands on a restarted machine that
// never knew the pid. The one fact no crash can erase is the creator
// encoded in the pid itself, so the message is rerouted there once and
// follows the creator's forwarding address to the live copy.
func TestSearchRerouteForeignPID(t *testing.T) {
	c := newTC(t, 3, nil)
	pid := migrateAway(c) // born m1, lives on m2, forwarder on m1

	c.k(3).Crash()
	if err := c.k(3).Restart(); err != nil {
		t.Fatal(err)
	}
	// A stale address pointing at m3: no record, but the pid says "born
	// on m1".
	c.k(3).GiveMessageTo(addr.At(pid, 3), addr.KernelAddr(3), []byte("hit"))
	c.run()

	if s := c.k(3).Stats(); s.SearchForwards != 1 {
		t.Fatalf("SearchForwards = %d, want 1", s.SearchForwards)
	}
	b, ok := c.k(2).BodyOf(pid)
	if !ok {
		t.Fatal("live copy missing on m2")
	}
	if got := b.(*counterBody).Count; got != 1 {
		t.Fatalf("counted %d, want 1 (reroute must deliver exactly once)", got)
	}
}

// TestSearchBroadcastFindsLiveCopy: the creator machine itself crashed and
// lost the forwarding address. A message for the home-born pid is held
// while a broadcast search asks every machine; the holder of the live copy
// answers and the held message is resent.
func TestSearchBroadcastFindsLiveCopy(t *testing.T) {
	c := newTC(t, 3, nil)
	pid := migrateAway(c)

	c.k(1).Crash() // the forwarder for pid dies with m1
	if err := c.k(1).Restart(); err != nil {
		t.Fatal(err)
	}
	c.k(1).GiveMessageTo(addr.At(pid, 1), addr.KernelAddr(1), []byte("hit"))
	c.run()

	s := c.k(1).Stats()
	if s.SearchesSent != 1 {
		t.Fatalf("SearchesSent = %d, want 1", s.SearchesSent)
	}
	if s.DeadLetters != 0 {
		t.Fatalf("DeadLetters = %d, want 0 (the search should have found m2)", s.DeadLetters)
	}
	b, ok := c.k(2).BodyOf(pid)
	if !ok {
		t.Fatal("live copy missing on m2")
	}
	if got := b.(*counterBody).Count; got != 1 {
		t.Fatalf("counted %d, want 1 (search must deliver exactly once)", got)
	}
}

// TestSearchTimeoutDeadLetters: every machine that could answer the search
// is dead, so the timeout fires and the held messages become accounted
// dead letters instead of pinned envelopes.
func TestSearchTimeoutDeadLetters(t *testing.T) {
	c := newTC(t, 3, func(cfg *kernel.Config) { cfg.MigrateTimeout = 100_000 })
	pid := migrateAway(c)

	c.k(1).Crash()
	if err := c.k(1).Restart(); err != nil {
		t.Fatal(err)
	}
	c.k(2).Crash() // the live copy is gone too; m3 knows nothing
	c.k(1).GiveMessageTo(addr.At(pid, 1), addr.KernelAddr(1), []byte("hit"))
	c.run()

	s := c.k(1).Stats()
	if s.SearchesSent != 1 {
		t.Fatalf("SearchesSent = %d, want 1", s.SearchesSent)
	}
	if s.DeadLetters != 1 {
		t.Fatalf("DeadLetters = %d, want 1 (search timeout must account the held message)", s.DeadLetters)
	}
}

// TestKillPointInventory pins the kill-point surface: all eight protocol
// stages of §3.1, in protocol order, each with a stable trace name. The
// killcover lint rule requires every kill-point to be test-referenced;
// this inventory is that reference for the full set, and it fails loudly
// if a stage is added, removed, or reordered without updating the chaos
// drivers that cycle through KillPoints().
func TestKillPointInventory(t *testing.T) {
	want := []kernel.KillPoint{
		kernel.KPSourceFrozen,
		kernel.KPSourceAsked,
		kernel.KPDestAllocated,
		kernel.KPDestMidTransfer,
		kernel.KPDestTransferred,
		kernel.KPSourceEstablished,
		kernel.KPSourceCommitted,
		kernel.KPDestCleanup,
	}
	names := []string{
		"src-frozen", "src-asked", "dst-allocated", "dst-mid-transfer",
		"dst-transferred", "src-established", "src-committed", "dst-cleanup",
	}
	if kernel.KillPointCount != len(want) {
		t.Fatalf("KillPointCount = %d, want %d", kernel.KillPointCount, len(want))
	}
	got := kernel.KillPoints()
	if len(got) != len(want) {
		t.Fatalf("KillPoints() returned %d points, want %d", len(got), len(want))
	}
	for i, kp := range got {
		if kp != want[i] {
			t.Errorf("KillPoints()[%d] = %v, want %v", i, kp, want[i])
		}
		if kp.String() != names[i] {
			t.Errorf("%v.String() = %q, want %q", kp, kp.String(), names[i])
		}
	}
}

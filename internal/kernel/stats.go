package kernel

import (
	"demosmp/internal/addr"
	"demosmp/internal/msg"
	"demosmp/internal/sim"
)

// Stats aggregates one kernel's activity. The experiment harness diffs
// snapshots around a scenario to produce the paper's cost rows.
//
// Ownership rule (shared with the obs registry): this struct is the single
// source for *protocol-level* counts — what the kernel decided to do:
// messages routed/enqueued, admin messages and their payload bytes, data
// packets and acks initiated, forwards, link updates. The netw flat arrays
// are the single source for *wire-level* counts — what actually crossed the
// network: frames and wire bytes (header + payload) by kind, drops,
// retransmits. The registry samples each number from exactly one of the two
// owners and never mirrors a value into a second live location;
// chaos.CheckRegistry and the single-source soak test enforce that the
// layers reconcile (e.g. Σ DataPacketsSent == data frames on a lossless
// run) without either side keeping a duplicate.
//
// The companion discipline — single-releaser ownership of the pooled
// *message envelopes* these counters describe — no longer lives in prose:
// demoslint's ownership rule (DESIGN.md §8.1) machine-checks
// use-after-Put, double-Put, and unblessed retention on every build, with
// the reviewed retainers declared in-source via //demos:owner.
type Stats struct {
	// Process lifecycle.
	Spawned uint64
	Exited  uint64
	Crashes uint64 // process faults
	Kills   uint64

	// Scheduling.
	Slices      uint64
	CtxSwitches uint64
	CPUBusy     sim.Time

	// Messaging.
	MsgsRouted   uint64 // messages submitted to routing on this kernel
	MsgsEnqueued uint64 // messages placed on local process queues
	MsgsHeld     uint64 // messages queued while a process was in migration
	DeadLetters  uint64 // messages for processes that no longer exist

	// Forwarding (§4).
	Forwarded           uint64 // messages re-routed via a forwarding address
	ForwardedPending    uint64 // step-6 queue forwards
	ForwardersInstalled uint64
	ForwardersReclaimed uint64 // via death-notice GC
	ForwarderBytes      uint64 // live forwarding-address storage on this kernel

	// Link updating (§5).
	LinkUpdatesSent    uint64 // special update messages emitted while forwarding
	LinkUpdatesApplied uint64 // update messages processed for a local sender
	LinksFixed         uint64 // individual link-table entries rewritten
	// Coalesced step-6 batches (Config.CoalesceLinkUpdates).
	LinkUpdateBatchesSent    uint64 // OpLinkUpdateBatch envelopes emitted, one per stale sender machine
	LinkUpdatesBatched       uint64 // stale senders covered by those batches
	LinkUpdateBatchesApplied uint64 // batch envelopes processed at a sender machine
	EagerUpdatesSent         uint64 // ablation broadcasts

	// Migration (§3, §6).
	MigrationsOut     uint64 // completed as source
	MigrationsIn      uint64 // completed as destination
	MigrationsRefused uint64
	MigrationsFailed  uint64
	Revived           uint64            // processes restored from checkpoints (§1 fault recovery)
	AdminSent         map[msg.Op]uint64 // administrative messages sent, by op
	AdminBytes        uint64            // payload bytes of administrative messages sent

	// Move-data streams.
	DataPacketsSent uint64
	DataBytesSent   uint64
	AcksSent        uint64
	AcksReceived    uint64

	// Return-to-sender baseline (§4 alternative).
	Bounced        uint64 // OpNotDeliverable sent
	LocateRequests uint64
	Resubmitted    uint64 // bounced messages re-sent after a locate reply

	// Bounded buffers: overflow of a hard-capped per-PID buffer is
	// counted here rather than growing kernel memory.
	LocateDropped  uint64 // messages dropped at PendingLocateCap
	ConsoleDropped uint64 // console lines dropped at ConsoleLineCap

	// Fault plane (restart.go). Together with netw's fault counters these
	// make every lost message attributable: the chaos invariant checker
	// balances user sends against deliveries + dead letters + these.
	Restarts            uint64 // crash recoveries of this kernel
	CrashWipedMsgs      uint64 // queued messages destroyed by a crash
	CrashLostProcs      uint64 // processes wiped by a crash (before any revival)
	CheckpointsSaved    uint64 // checkpoints written to stable storage
	Undeliverable       uint64 // frames the network returned as undeliverable
	DroppedWhileCrashed uint64 // messages consumed while this kernel was down
	SearchForwards      uint64 // messages rerouted to a pid's creator machine
	SearchesSent        uint64 // search broadcasts for home-born pids
}

func newStats() Stats {
	return Stats{AdminSent: make(map[msg.Op]uint64)}
}

// Clone returns a deep copy.
func (s *Stats) Clone() Stats {
	c := *s
	c.AdminSent = make(map[msg.Op]uint64, len(s.AdminSent))
	for k, v := range s.AdminSent {
		c.AdminSent[k] = v
	}
	return c
}

// AdminTotal sums administrative messages sent across all ops.
func (s *Stats) AdminTotal() uint64 {
	var n uint64
	for _, v := range s.AdminSent {
		n += v
	}
	return n
}

// MigrationReport is the per-migration cost breakdown assembled by the
// source kernel — the raw material for every row of §6.
type MigrationReport struct {
	PID  addr.ProcessID
	From addr.MachineID
	To   addr.MachineID

	Start sim.Time // step 1: removed from execution
	End   sim.Time // step 7 complete: source sent cleanup + done

	// State transfer cost (§6): the three data moves.
	MoveDataTransfers int // distinct move-data streams served (paper: 3)
	ProgramBytes      int
	ResidentBytes     int
	SwappableBytes    int
	DataPackets       int

	// Administrative cost (§6): control messages seen at the source
	// (sent or received), their payload bytes, and the smallest/largest
	// single payload (paper: "nine messages ... of 6–12 bytes each").
	AdminMsgs     int
	AdminBytes    int
	AdminMinBytes int
	AdminMaxBytes int

	// Messages that were waiting in the queue and were forwarded in
	// step 6.
	PendingForwarded int

	OK bool
}

// noteAdmin accounts one administrative message (sent or received) against
// the report: count, payload bytes, and the min/max single-payload range.
// It is the only mutator of these fields, so every §6 admin site stays
// consistent.
//
//demos:hotpath — called from sendAdmin: checked by demoslint (hotpathalloc); dynamic guard: TestHotPathZeroAlloc/admin-encode in bench_hotpath_test.go.
func (r *MigrationReport) noteAdmin(payloadLen int) {
	r.AdminMsgs++
	r.AdminBytes += payloadLen
	if r.AdminMinBytes == 0 || payloadLen < r.AdminMinBytes {
		r.AdminMinBytes = payloadLen
	}
	if payloadLen > r.AdminMaxBytes {
		r.AdminMaxBytes = payloadLen
	}
}

// StateBytes returns the total bytes of the three data moves.
func (r MigrationReport) StateBytes() int {
	return r.ProgramBytes + r.ResidentBytes + r.SwappableBytes
}

// Latency returns the migration's duration as seen by the source kernel.
func (r MigrationReport) Latency() sim.Time { return r.End - r.Start }

package kernel

import (
	"fmt"

	"demosmp/internal/addr"
	"demosmp/internal/msg"
	"demosmp/internal/trace"
)

// kernelMsg handles a message received by the kernel itself: frames
// addressed to the kernel pseudo-process, and DELIVERTOKERNEL messages that
// arrived at a local process's queue (§2.2). The caller owns m and releases
// it afterwards; handlers must not retain m or aliases of its Body.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestHotPathZeroAlloc/kernel-local-roundtrip in bench_hotpath_test.go.
func (k *Kernel) kernelMsg(m *msg.Message) {
	switch m.Kind {
	case msg.KindLinkUpdate:
		k.applyLinkUpdate(m)
	case msg.KindData:
		k.handleDataPacket(m)
	case msg.KindAck:
		k.handleAck(m)
	case msg.KindControl:
		k.kernelControl(m)
	default:
		// A user message addressed to a kernel: nothing meaningful.
		k.stats.DeadLetters++
	}
}

func (k *Kernel) kernelControl(m *msg.Message) {
	switch m.Op {
	// --- migration protocol (§3.1) ---
	case msg.OpMigrateRequest:
		k.handleMigrateRequest(m)
	case msg.OpMigrateAsk:
		k.handleMigrateAsk(m)
	case msg.OpMigrateAccept:
		k.handleMigrateAccept(m)
	case msg.OpMigrateRefuse:
		k.handleMigrateRefuse(m)
	case msg.OpMoveDataReq:
		k.handleMoveDataReq(m)
	case msg.OpMigrateEstablished:
		k.handleMigrateEstablished(m)
	case msg.OpMigrateCleanup:
		k.handleMigrateCleanup(m)
	case msg.OpMigrateAbort:
		k.handleMigrateAbort(m)
	case msg.OpMigrateDone:
		// A self-initiated migration's completion report (requester was
		// this kernel rather than a process manager).
		if d, err := msg.DecodeMigrateDone(m.Body); err == nil {
			k.doneMigs = append(k.doneMigs, d)
		}

	// --- process control (§2.2: control follows the process) ---
	case msg.OpSuspend:
		k.handleSuspend(m)
	case msg.OpResume:
		k.handleResume(m)
	case msg.OpKill:
		if p := k.lookup(m.To.ID); p != nil && p.state != StateForwarder {
			k.stats.Kills++
			k.terminate(p, -1, fmt.Errorf("killed by %v", m.From.ID))
		}
	case msg.OpCreateProcess:
		k.handleCreateProcess(m)

	// --- move-data facility (§2.2) ---
	case msg.OpMoveRead:
		k.handleMoveRead(m)
	case msg.OpMoveReadDone:
		// Only reaches the kernel on the failure path; success arrives
		// as a reassembled stream.
		k.handleMoveReadFailed(m)

	// --- forwarding machinery ---
	case msg.OpDeathNotice:
		k.handleDeathNotice(m)
	case msg.OpNotDeliverable:
		k.handleNotDeliverable(m)
	case msg.OpLocateReply:
		k.handleLocateReply(m)
	case msg.OpEagerUpdate:
		k.applyEagerUpdate(m)
	case msg.OpLinkUpdateBatch:
		k.handleLinkUpdateBatch(m)
	case msg.OpSearchQuery:
		k.handleSearchQuery(m)

	default:
		k.trace(trace.CatDeliver, "unknown-control", m.Op.String())
	}
}

func (k *Kernel) handleSuspend(m *msg.Message) {
	p := k.lookup(m.To.ID)
	if p == nil || p.state == StateForwarder {
		return
	}
	switch p.state {
	case StateReady:
		k.removeFromRunq(p)
		p.prevState = StateReady
		p.state = StateSuspended
	case StateWaiting:
		p.prevState = StateWaiting
		p.state = StateSuspended
	}
	k.trace(trace.CatProc, "suspend", p.id.String())
}

func (k *Kernel) handleResume(m *msg.Message) {
	p := k.lookup(m.To.ID)
	if p == nil || p.state != StateSuspended {
		return
	}
	if p.prevState == StateWaiting && p.queue.Len() == 0 {
		p.state = StateWaiting
	} else {
		k.enqueueRun(p)
	}
	k.trace(trace.CatProc, "resume", p.id.String())
}

func (k *Kernel) handleCreateProcess(m *msg.Message) {
	req, err := msg.DecodeCreateProcess(m.Body)
	if err != nil || k.cfg.Programs == nil {
		k.replyCreateDone(m.From, addr.NilPID, req.Tag)
		return
	}
	spec, err := k.cfg.Programs(req.Name, req.Args)
	if err != nil {
		k.trace(trace.CatProc, "create-failed", fmt.Sprintf("%s: %v", req.Name, err))
		k.replyCreateDone(m.From, addr.NilPID, req.Tag)
		return
	}
	pid, err := k.Spawn(spec)
	if err != nil {
		k.trace(trace.CatProc, "create-failed", fmt.Sprintf("%s: %v", req.Name, err))
	}
	k.replyCreateDone(m.From, pid, req.Tag)
}

func (k *Kernel) replyCreateDone(to addr.ProcessAddr, pid addr.ProcessID, tag uint16) {
	d := msg.CreateDone{PID: pid, Machine: k.machine, Tag: tag}
	m := k.newControl(msg.OpCreateDone, to)
	m.Body = d.AppendTo(m.Body[:0])
	k.route(m)
}

package kernel_test

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/dvm"
	"demosmp/internal/kernel"
	"demosmp/internal/link"
	"demosmp/internal/msg"
	"demosmp/internal/netw"
	"demosmp/internal/proc"
	"demosmp/internal/sim"
	"demosmp/internal/trace"
)

// --- harness ----------------------------------------------------------------

type tc struct {
	t   *testing.T
	eng *sim.Engine
	net *netw.Network
	tr  *trace.Tracer
	ks  map[addr.MachineID]*kernel.Kernel
}

func newTC(t *testing.T, machines int, mut func(*kernel.Config)) *tc {
	t.Helper()
	eng := sim.NewEngine(7)
	net := netw.New(eng, netw.Config{})
	tr := trace.New(eng.Now, 0)
	reg := proc.NewRegistry()
	reg.Register("counter", func() proc.Body { return &counterBody{} })
	reg.Register("blackhole", func() proc.Body { return &blackholeBody{} })
	reg.Register("pm-stub", func() proc.Body { return &pmStub{Where: map[addr.ProcessID]addr.MachineID{}} })
	reg.Register("timer", func() proc.Body { return &timerBody{} })
	reg.Register("req-migrate", func() proc.Body { return &requestMigrateBody{} })
	c := &tc{t: t, eng: eng, net: net, tr: tr, ks: map[addr.MachineID]*kernel.Kernel{}}
	for i := 1; i <= machines; i++ {
		cfg := kernel.Config{Tracer: tr, Registry: reg}
		for m := 1; m <= machines; m++ {
			cfg.Machines = append(cfg.Machines, addr.MachineID(m))
		}
		if mut != nil {
			mut(&cfg)
		}
		c.ks[addr.MachineID(i)] = kernel.New(addr.MachineID(i), eng, net, cfg)
	}
	return c
}

func (c *tc) k(m int) *kernel.Kernel { return c.ks[addr.MachineID(m)] }

func (c *tc) run() { c.eng.Run() }

func (c *tc) runFor(d sim.Time) { c.eng.RunFor(d) }

// spawn a VM program on machine m with initial links.
func (c *tc) spawnProg(m int, src string, links ...link.Link) addr.ProcessID {
	c.t.Helper()
	p, err := dvm.Assemble(src)
	if err != nil {
		c.t.Fatalf("assemble: %v", err)
	}
	pid, err := c.k(m).Spawn(kernel.SpawnSpec{Program: p, Links: links})
	if err != nil {
		c.t.Fatal(err)
	}
	return pid
}

func (c *tc) linkTo(pid addr.ProcessID, m int, attrs link.Attr) link.Link {
	return link.Link{Addr: addr.At(pid, addr.MachineID(m)), Attrs: attrs}
}

// exitOf finds the exit record on whichever machine the process died.
func (c *tc) exitOf(pid addr.ProcessID) (kernel.ExitInfo, addr.MachineID) {
	c.t.Helper()
	for m, k := range c.ks {
		if e, ok := k.Exit(pid); ok {
			return e, m
		}
	}
	c.t.Fatalf("process %v never exited", pid)
	return kernel.ExitInfo{}, 0
}

// migrate asks machine `driver` to initiate pid's migration to dest.
func (c *tc) migrate(driver int, pid addr.ProcessID, at int, dest int) {
	c.k(driver).RequestMigrationOf(addr.At(pid, addr.MachineID(at)), addr.MachineID(dest))
}

func (c *tc) totalAdmin() uint64 {
	var n uint64
	for _, k := range c.ks {
		s := k.Stats()
		n += s.AdminTotal()
	}
	return n
}

// --- shared helpers -----------------------------------------------------------

func simTime(v uint64) sim.Time { return sim.Time(v) }

func gobEncode(buf *bytes.Buffer, v any) error { return gob.NewEncoder(buf).Encode(v) }

func gobDecode(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// --- native test bodies -------------------------------------------------------

// counterBody replies to each message with an incrementing count; migratable.
type counterBody struct {
	Count int32
}

func (b *counterBody) Kind() string { return "counter" }

func (b *counterBody) Step(ctx proc.Context, budget int) (int, proc.Status) {
	for {
		d, ok := ctx.Recv()
		if !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
		if string(d.Body) == "die" {
			return 0, proc.Status{State: proc.Exited, ExitCode: b.Count}
		}
		b.Count++
		if len(d.Carried) > 0 {
			ctx.Send(d.Carried[0], []byte(fmt.Sprintf("count=%d@m%d", b.Count, uint16(ctx.Machine()))))
		}
	}
}

func (b *counterBody) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(b)
	return buf.Bytes(), err
}

func (b *counterBody) Restore(data []byte) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(b)
}

// blackholeBody consumes everything and remembers what it saw.
type blackholeBody struct {
	Got []string
}

func (b *blackholeBody) Kind() string { return "blackhole" }

func (b *blackholeBody) Step(ctx proc.Context, budget int) (int, proc.Status) {
	for {
		d, ok := ctx.Recv()
		if !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
		b.Got = append(b.Got, string(d.Body))
	}
}

func (b *blackholeBody) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(b)
	return buf.Bytes(), err
}

func (b *blackholeBody) Restore(data []byte) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(b)
}

// pmStub is a minimal process manager: it records MigrateDone locations and
// answers OpLocate queries (the return-to-sender baseline needs it).
type pmStub struct {
	Where map[addr.ProcessID]addr.MachineID
}

func (b *pmStub) Kind() string { return "pm-stub" }

func (b *pmStub) Step(ctx proc.Context, budget int) (int, proc.Status) {
	for {
		d, ok := ctx.Recv()
		if !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
		switch d.Op {
		case msg.OpMigrateDone:
			if done, err := msg.DecodeMigrateDone(d.Body); err == nil && done.OK {
				b.Where[done.PID] = done.Machine
			}
		case msg.OpLocate:
			pid, _, err := addr.DecodePID(d.Body)
			if err != nil {
				continue
			}
			machine := b.Where[pid] // zero = unknown
			reply := msg.PIDMachine{PID: pid, Machine: machine}
			l, err := ctx.MintLink(link.Link{Addr: d.From})
			if err != nil {
				continue
			}
			ctx.SendOp(l, msg.OpLocateReply, reply.Encode())
			ctx.DestroyLink(l)
		}
	}
}

func (b *pmStub) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(b)
	return buf.Bytes(), err
}

func (b *pmStub) Restore(data []byte) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(b)
}

// --- VM programs --------------------------------------------------------------

// sumProg computes sum(i*i) for i in 1..n and exits with the result.
func sumProg(n int) string {
	return fmt.Sprintf(`
	start:	movi r1, 0
		movi r2, 0
	loop:	addi r1, r1, 1
		mul r3, r1, r1
		add r2, r2, r3
		cmpi r1, %d
		jlt loop
		mov r0, r2
		sys exit
	`, n)
}

func sumRef(n int) int32 {
	var s int32
	for i := int32(1); i <= int32(n); i++ {
		s += i * i
	}
	return s
}

// --- basic execution ----------------------------------------------------------

func TestSpawnAndRunVM(t *testing.T) {
	c := newTC(t, 1, nil)
	pid := c.spawnProg(1, sumProg(100))
	c.run()
	e, m := c.exitOf(pid)
	if e.Code != sumRef(100) || m != 1 {
		t.Fatalf("exit %d on m%d, want %d on m1", e.Code, m, sumRef(100))
	}
}

func TestVMPingPongAcrossMachines(t *testing.T) {
	c := newTC(t, 2, nil)
	server := c.spawnProg(1, `
		.data
	buf:	.space 64
		.code
	start:	movi r6, 0
	loop:	lea r1, buf
		movi r2, 64
		sys recv
		mov r5, r3        ; carried reply link
		mov r0, r5
		lea r1, buf
		movi r2, 4
		movi r3, 0
		sys send
		addi r6, r6, 1
		cmpi r6, 5
		jlt loop
		movi r0, 0
		sys exit
	`)
	client := c.spawnProg(2, `
		.data
	m:	.asciz "ping"
	buf:	.space 64
		.code
	start:	movi r6, 0
	loop:	movi r1, 8        ; AttrReply
		movi r2, 0
		movi r3, 0
		sys mklink
		mov r3, r0
		movi r0, 1        ; server link
		lea r1, m
		movi r2, 4
		sys send
		lea r1, buf
		movi r2, 64
		sys recv
		addi r6, r6, 1
		cmpi r6, 5
		jlt loop
		mov r0, r6
		sys exit
	`, c.linkTo(server, 1, 0))
	c.run()
	if e, _ := c.exitOf(client); e.Code != 5 {
		t.Fatalf("client exit %d, want 5 round trips", e.Code)
	}
	if e, _ := c.exitOf(server); e.Code != 0 {
		t.Fatalf("server exit %d", e.Code)
	}
}

func TestNativeBodyEcho(t *testing.T) {
	c := newTC(t, 2, nil)
	counter, _ := c.k(1).Spawn(kernel.SpawnSpec{Body: &counterBody{}})
	sinkBody := &blackholeBody{}
	sink, _ := c.k(2).Spawn(kernel.SpawnSpec{Body: sinkBody})
	// Drive the counter from outside with a carried reply link to sink.
	for i := 0; i < 3; i++ {
		c.k(1).GiveMessage(counter, addr.At(sink, 2), []byte("hit"),
			c.linkTo(sink, 2, 0))
	}
	c.run()
	if len(sinkBody.Got) != 3 || sinkBody.Got[2] != "count=3@m1" {
		t.Fatalf("sink got %v", sinkBody.Got)
	}
}

// --- migration mechanics (Figure 3-1) ------------------------------------------

func TestMigrationPreservesComputation(t *testing.T) {
	c := newTC(t, 3, nil)
	pid := c.spawnProg(1, sumProg(2000))
	// Let it get partway, then migrate m1 -> m2.
	c.runFor(3000)
	c.migrate(3, pid, 1, 2)
	c.run()
	e, m := c.exitOf(pid)
	if m != 2 {
		t.Fatalf("process finished on m%d, want m2", m)
	}
	if e.Code != sumRef(2000) {
		t.Fatalf("exit %d, want %d — migration corrupted the computation", e.Code, sumRef(2000))
	}
}

func TestMigrationStepsInOrder(t *testing.T) {
	c := newTC(t, 2, nil)
	pid := c.spawnProg(1, sumProg(5000))
	c.runFor(2000)
	c.migrate(2, pid, 1, 2)
	c.run()
	events := c.tr.Events(trace.CatMigrate)
	want := []string{
		"step1-remove-from-execution",
		"step2-ask-destination",
		"step3-allocate-state",
		"step4-transfer-state", // resident
		"step4-transfer-state", // swappable
		"step5-transfer-program",
		"step6-forward-pending",
		"step7-cleanup-forwarding-address",
		"step8-restart",
	}
	var got []string
	for _, e := range events {
		for _, w := range want {
			if e == w {
				got = append(got, e)
				break
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("steps seen: %v\nwant: %v\ntrace:\n%s", got, want, c.tr.String())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d = %q, want %q", i, got[i], want[i])
		}
	}
	_, mig := c.exitOf(pid)
	if mig != 2 {
		t.Fatalf("finished on m%d", mig)
	}
}

// The paper's administrative cost: 9 control messages per migration.
func TestNineAdministrativeMessages(t *testing.T) {
	c := newTC(t, 3, nil)
	pid := c.spawnProg(1, sumProg(5000))
	c.runFor(2000)
	before := c.totalAdmin()
	c.migrate(3, pid, 1, 2)
	c.run()
	after := c.totalAdmin()
	if n := after - before; n != 9 {
		t.Fatalf("migration used %d administrative messages, want 9 (paper §6)", n)
	}
	// And the source-side report agrees.
	reps := c.k(1).Reports()
	if len(reps) != 1 || reps[0].AdminMsgs != 9 {
		t.Fatalf("report admin count: %+v", reps)
	}
	if !reps[0].OK || reps[0].To != 2 || reps[0].From != 1 {
		t.Fatalf("report wrong: %+v", reps[0])
	}
}

func TestMigrationReportBytes(t *testing.T) {
	c := newTC(t, 2, nil)
	pid := c.spawnProg(1, sumProg(100000))
	c.runFor(2000)
	c.migrate(2, pid, 1, 2)
	c.run()
	reps := c.k(1).Reports()
	if len(reps) != 1 {
		t.Fatalf("reports: %v", reps)
	}
	r := reps[0]
	if r.PID != pid {
		t.Fatalf("report pid %v", r.PID)
	}
	if r.ProgramBytes <= 0 || r.ProgramBytes%256 != 0 {
		t.Fatalf("program bytes %d", r.ProgramBytes)
	}
	// §6: "For non-trivial processes, the size of the program and data
	// overshadow the size of the system information."
	if r.ProgramBytes <= r.ResidentBytes+r.SwappableBytes {
		t.Fatalf("program %dB should dominate resident %dB + swappable %dB",
			r.ProgramBytes, r.ResidentBytes, r.SwappableBytes)
	}
	if r.DataPackets <= 0 {
		t.Fatal("no data packets recorded")
	}
	if r.Latency() <= 0 {
		t.Fatal("zero migration latency")
	}
}

func TestMigrateWaitingProcess(t *testing.T) {
	c := newTC(t, 3, nil)
	body := &blackholeBody{}
	pid, _ := c.k(1).Spawn(kernel.SpawnSpec{Body: body})
	c.runFor(1000) // let it block in receive
	if info, _ := c.k(1).Process(pid); info.State != kernel.StateWaiting {
		t.Fatalf("state %v, want waiting", info.State)
	}
	c.migrate(3, pid, 1, 2)
	c.run()
	info, ok := c.k(2).Process(pid)
	if !ok || info.State != kernel.StateWaiting {
		t.Fatalf("after migration: %+v ok=%v, want waiting on m2", info, ok)
	}
	// It wakes on a message to its new home — sent via the OLD address.
	c.k(3).GiveMessage(pid, addr.KernelAddr(3), nil) // wrong machine: not here
	c.run()
	// The message above was delivered on m3 where the process never was:
	// dead letter. Now through the forwarder on m1:
	c.k(1).GiveMessage(pid, addr.At(addr.ProcessID{Creator: 3, Local: 99}, 3), []byte("wake"))
	c.run()
	moved, ok := c.k(2).BodyOf(pid)
	if !ok {
		t.Fatal("no body on m2")
	}
	got := moved.(*blackholeBody).Got
	if len(got) != 1 || got[0] != "wake" {
		t.Fatalf("forwarded wake lost: %v", got)
	}
}

func TestMigrateNativeBodyKeepsState(t *testing.T) {
	c := newTC(t, 2, nil)
	sinkBody := &blackholeBody{}
	sink, _ := c.k(2).Spawn(kernel.SpawnSpec{Body: sinkBody})
	cb := &counterBody{}
	pid, _ := c.k(1).Spawn(kernel.SpawnSpec{Body: cb})
	hit := func() {
		c.k(1).GiveMessage(pid, addr.At(sink, 2), []byte("hit"), c.linkTo(sink, 2, 0))
	}
	hit()
	hit()
	c.run()
	c.migrate(2, pid, 1, 2)
	c.run()
	// State moved: the body on m2 continues at 3. (cb itself is the old
	// Go object; the migrated copy is a different instance.)
	c.k(1).GiveMessage(pid, addr.At(sink, 2), []byte("hit"), c.linkTo(sink, 2, 0))
	c.run()
	want := []string{"count=1@m1", "count=2@m1", "count=3@m2"}
	if len(sinkBody.Got) != 3 {
		t.Fatalf("sink got %v", sinkBody.Got)
	}
	for i, w := range want {
		if sinkBody.Got[i] != w {
			t.Fatalf("reply %d = %q, want %q", i, sinkBody.Got[i], w)
		}
	}
}

func TestPendingMessagesForwardedOnce(t *testing.T) {
	c := newTC(t, 3, nil)
	body := &blackholeBody{}
	pid, _ := c.k(1).Spawn(kernel.SpawnSpec{Body: body})
	// Suspend it so messages pile up in its queue, then migrate.
	c.k(1).RequestMigrationOf(addr.At(pid, 1), 2) // direct migrate while ready
	for i := 0; i < 5; i++ {
		// Injected on m1 where the process is (or is migrating from):
		// some land on the frozen queue, some hit the forwarder.
		c.k(1).GiveMessage(pid, addr.KernelAddr(3), []byte(fmt.Sprintf("m%d", i)))
	}
	c.run()
	_ = body
	moved, ok := c.k(2).BodyOf(pid)
	if !ok {
		t.Fatal("no body on m2")
	}
	got := moved.(*blackholeBody).Got
	if len(got) != 5 {
		t.Fatalf("got %d messages, want 5 exactly-once: %v", len(got), got)
	}
	seen := map[string]bool{}
	for _, g := range got {
		if seen[g] {
			t.Fatalf("duplicate delivery %q", g)
		}
		seen[g] = true
	}
}

func TestMigrationToSelfIsNoop(t *testing.T) {
	c := newTC(t, 2, nil)
	pid := c.spawnProg(1, sumProg(3000))
	c.runFor(1000)
	before := c.totalAdmin()
	c.migrate(2, pid, 1, 1)
	c.run()
	if got := c.totalAdmin() - before; got != 2 {
		t.Fatalf("no-op migration used %d admin messages, want 2 (request+done)", got)
	}
	e, m := c.exitOf(pid)
	if m != 1 || e.Code != sumRef(3000) {
		t.Fatalf("noop migration broke process: %d on m%d", e.Code, m)
	}
	done := c.k(2).DoneMigrations()
	if len(done) != 1 || !done[0].OK || done[0].Machine != 1 {
		t.Fatalf("done: %+v", done)
	}
}

func TestMigrationRefused(t *testing.T) {
	c := newTC(t, 2, func(cfg *kernel.Config) {
		cfg.Accept = func(a msg.MigrateAsk, free int) bool { return false }
	})
	pid := c.spawnProg(1, sumProg(3000))
	c.runFor(1000)
	c.migrate(2, pid, 1, 2)
	c.run()
	// §3.2: "If the destination machine refuses, the process cannot be
	// migrated" — but it keeps running where it was.
	e, m := c.exitOf(pid)
	if m != 1 || e.Code != sumRef(3000) {
		t.Fatalf("refused migration broke process: %d on m%d", e.Code, m)
	}
	done := c.k(2).DoneMigrations()
	if len(done) != 1 || done[0].OK {
		t.Fatalf("done: %+v", done)
	}
	if s := c.k(2).Stats(); s.MigrationsRefused != 1 {
		t.Fatalf("refusals = %d", s.MigrationsRefused)
	}
}

func TestSuspendedProcessMigratesSuspended(t *testing.T) {
	c := newTC(t, 2, nil)
	pid := c.spawnProg(1, sumProg(100000))
	c.runFor(500)
	// Suspend via a DTK control message, as the process manager would.
	c.k(1).GiveControl(pid, msg.OpSuspend, nil)
	c.runFor(1000)
	if info, _ := c.k(1).Process(pid); info.State != kernel.StateSuspended {
		t.Fatalf("state %v, want suspended", info.State)
	}
	c.migrate(2, pid, 1, 2)
	c.run()
	info, ok := c.k(2).Process(pid)
	if !ok || info.State != kernel.StateSuspended {
		t.Fatalf("after migration: %+v, want suspended on m2", info)
	}
	// Resume and let it finish there.
	c.k(2).GiveControl(pid, msg.OpResume, nil)
	c.run()
	e, m := c.exitOf(pid)
	if m != 2 || e.Code != sumRef(100000) {
		t.Fatalf("resumed process: %d on m%d", e.Code, m)
	}
}

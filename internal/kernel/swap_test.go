package kernel_test

import (
	"fmt"
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/dvm"
	"demosmp/internal/kernel"
	"demosmp/internal/workload"
)

// waitThenSum blocks in receive, then computes sum(i*i) for 1..n and exits
// with the result; the image is padded to at least size bytes.
func waitThenSum(n, size int) *dvm.Program {
	pad := size - 40*dvm.InstrSize - 256
	if pad < 4 {
		pad = 4
	}
	return dvm.MustAssemble(fmt.Sprintf(`
		.data
	pad:	.space %d
	buf:	.space 16
		.code
	start:	lea r1, buf
		movi r2, 16
		sys recv
		movi r1, 0
		movi r2, 0
	loop:	addi r1, r1, 1
		mul r3, r1, r1
		add r2, r2, r3
		cmpi r1, %d
		jlt loop
		mov r0, r2
		sys exit
	`, pad, n))
}

// TestMigrateSwappedOutProcess: §3.1 step 5 — "the kernel move data
// operation handles reading or writing of swapped out memory". A process
// whose entire image sits in swap migrates correctly: the program transfer
// faults every page back in on the source and rebuilds it resident on the
// destination.
func TestMigrateSwappedOutProcess(t *testing.T) {
	c := newTC(t, 2, nil)
	pid, err := c.k(1).Spawn(kernel.SpawnSpec{Program: workload.CPUBoundSized(200000, 32<<10)})
	if err != nil {
		t.Fatal(err)
	}
	c.runFor(5000)

	moved, err := c.k(1).SwapOutProcess(pid)
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("nothing was swapped out")
	}
	if got := c.k(1).SwappedPages(pid); got != moved {
		t.Fatalf("swapped pages = %d, want %d", got, moved)
	}
	if c.k(1).Swap().Used() == 0 {
		t.Fatal("swap store unused")
	}

	c.migrate(2, pid, 1, 2)
	c.run()
	e, m := c.exitOf(pid)
	if m != 2 || e.Code != workload.CPUBoundResult(200000) {
		t.Fatalf("swapped-out process corrupted by migration: %d on m%d", e.Code, m)
	}
	// The source reclaimed its swap slots at cleanup.
	if used := c.k(1).Swap().Used(); used != 0 {
		t.Fatalf("source swap leaked %d bytes", used)
	}
}

// TestSwappedProcessKeepsRunning: swapping out a ready process does not
// stop it; pages fault back in as the VM touches them.
func TestSwappedProcessKeepsRunning(t *testing.T) {
	c := newTC(t, 1, nil)
	pid, _ := c.k(1).Spawn(kernel.SpawnSpec{Program: workload.CPUBound(50000)})
	c.runFor(2000)
	if _, err := c.k(1).SwapOutProcess(pid); err != nil {
		t.Fatal(err)
	}
	c.run()
	e, _ := c.exitOf(pid)
	if e.Code != workload.CPUBoundResult(50000) {
		t.Fatalf("result %d after swap-out", e.Code)
	}
}

// TestCheckpointSwappedProcess: checkpoints also read through swap.
func TestCheckpointSwappedProcess(t *testing.T) {
	c := newTC(t, 2, nil)
	pid, _ := c.k(1).Spawn(kernel.SpawnSpec{Program: workload.CPUBound(80000)})
	c.runFor(5000)
	c.k(1).SwapOutProcess(pid)
	snap, err := c.k(1).Checkpoint(pid)
	if err != nil {
		t.Fatal(err)
	}
	c.k(1).Crash()
	if _, err := c.k(2).Revive(snap); err != nil {
		t.Fatal(err)
	}
	c.run()
	e, ok := c.k(2).Exit(pid)
	if !ok || e.Code != workload.CPUBoundResult(80000) {
		t.Fatalf("revived-from-swap result: %+v ok=%v", e, ok)
	}
}

// TestSwapSoftLimitRelievesPressure: spawning past the soft limit pushes
// idle processes' pages to swap; they fault back in and run correctly.
func TestSwapSoftLimitRelievesPressure(t *testing.T) {
	c := newTC(t, 2, func(cfg *kernel.Config) { cfg.SwapSoftLimit = 48 << 10 })
	// Three idle (waiting) VM processes with 32 KiB images each.
	var pids []addr.ProcessID
	for i := 0; i < 3; i++ {
		pid, err := c.k(1).Spawn(kernel.SpawnSpec{Program: waitThenSum(20000, 32<<10)})
		if err != nil {
			t.Fatal(err)
		}
		pids = append(pids, pid)
	}
	c.runFor(10000) // all three now block in receive, touching their pages first
	if r := c.k(1).ResidentBytes(); r > (48<<10)+(33<<10) {
		// The last spawn may exceed the limit transiently by one image;
		// everything beyond that must have been swapped.
		t.Fatalf("resident %d bytes despite soft limit", r)
	}
	if c.k(1).Swap().Used() == 0 {
		t.Fatal("nothing went to swap under pressure")
	}
	// Wake them; swapped pages fault back in; results are exact.
	for _, pid := range pids {
		c.k(1).GiveMessage(pid, addr.KernelAddr(1), []byte("go"))
	}
	c.run()
	for _, pid := range pids {
		e, _ := c.exitOf(pid)
		if e.Code != workload.CPUBoundResult(20000) {
			t.Fatalf("swapped process %v result %d", pid, e.Code)
		}
	}
}

package kernel_test

// Races around OpMigrateAbort. The abort message has no sequence number and
// no handshake: it can arrive after the destination's watchdog already
// committed the copy, arrive twice, or cross the final cleanup/MigrateDone
// pair in flight. Each race has one correct outcome — exactly one live copy
// of the process — and these tests pin all three down.

import (
	"bytes"
	"encoding/gob"
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/kernel"
	"demosmp/internal/link"
	"demosmp/internal/msg"
	"demosmp/internal/netw"
	"demosmp/internal/proc"
)

// aborterBody is a privileged body that fires one OpMigrateAbort at a
// kernel each time it is poked — the tests' stale/duplicate abort gun.
type aborterBody struct {
	Target addr.ProcessID
	Claim  addr.MachineID // machine the abort claims to speak for
	Kernel addr.MachineID // kernel to shoot at
}

func (b *aborterBody) Kind() string { return "aborter" }

func (b *aborterBody) Step(ctx proc.Context, budget int) (int, proc.Status) {
	for {
		if _, ok := ctx.Recv(); !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
		l, err := ctx.MintLink(link.Link{Addr: addr.KernelAddr(b.Kernel)})
		if err != nil {
			continue
		}
		pm := msg.PIDMachine{PID: b.Target, Machine: b.Claim}
		_ = ctx.SendOp(l, msg.OpMigrateAbort, pm.Encode())
		ctx.DestroyLink(l)
	}
}

func (b *aborterBody) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(b)
	return buf.Bytes(), err
}

func (b *aborterBody) Restore(data []byte) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(b)
}

// arqCfg is the network used by the partition races: frames queue as
// retransmissions while a pair is severed and flow again after Heal.
func arqCfg() netw.Config {
	return netw.Config{LossRate: 0.0001, RetransTimeout: 3000, MaxRetries: 500}
}

// TestAbortAfterTimeoutCommitYields: message 7 (established) is lost to a
// partition, so the source's watchdog restores its copy and sends an abort
// while the destination's watchdog — holding a fully established copy —
// commits it on timeout. The process briefly exists twice; when the abort
// finally arrives, the timeout-committed copy must yield.
func TestAbortAfterTimeoutCommitYields(t *testing.T) {
	c := newTCNet(t, 3, arqCfg(),
		func(cfg *kernel.Config) { cfg.MigrateTimeout = 200_000 })
	pid, err := c.k(1).Spawn(kernel.SpawnSpec{Body: &counterBody{}})
	if err != nil {
		t.Fatal(err)
	}
	c.runFor(2_000)

	// Sever 1-2 the instant the destination holds the full state, just
	// before it reports established: message 7 and the coming aborts all
	// land in retransmission limbo.
	cut := false
	c.k(2).SetFaultHook(func(kp kernel.KillPoint, _ addr.ProcessID) {
		if kp == kernel.KPDestTransferred && !cut {
			cut = true
			c.net.Partition(1, 2)
		}
	})
	c.migrate(3, pid, 1, 2)

	// Both watchdogs fire during the partition.
	c.runFor(450_000)
	if !cut {
		t.Fatal("migration never reached KPDestTransferred")
	}
	if _, ok := c.k(1).Process(pid); !ok {
		t.Fatal("source did not restore its copy on watchdog abort")
	}
	if info, ok := c.k(2).Process(pid); !ok || info.State == kernel.StateForwarder {
		t.Fatal("destination did not timeout-commit its established copy")
	}

	// Heal: the retransmitted established finds no out-migration (the
	// source already aborted) and draws a second abort; the first abort
	// reaches the timeout-committed copy, which yields.
	c.net.Heal(1, 2)
	c.run()
	if _, ok := c.k(2).Process(pid); ok {
		t.Fatal("timeout-committed copy survived the abort — process forked")
	}
	if info, ok := c.k(1).Process(pid); !ok || info.State == kernel.StateForwarder {
		t.Fatal("no live copy on the source after the yield")
	}
	if s := c.k(2).Stats(); s.MigrationsFailed != 1 {
		t.Fatalf("destination MigrationsFailed = %d, want exactly 1 (duplicate abort must be a no-op)", s.MigrationsFailed)
	}
	if got := c.k(1).Stats().AdminSent[msg.OpMigrateAbort]; got < 2 {
		t.Fatalf("source sent %d aborts, want >= 2 (watchdog + established-reply)", got)
	}
	if u := c.k(2).MemUsed(); u != 0 {
		t.Fatalf("yield leaked %d bytes on the destination", u)
	}

	// The survivor still works.
	if err := c.k(1).GiveMessage(pid, addr.KernelAddr(3), []byte("die")); err != nil {
		t.Fatal(err)
	}
	c.run()
	if _, m := c.exitOf(pid); m != 1 {
		t.Fatalf("survivor exited on m%d, want m1", m)
	}
}

// TestDuplicateAndStaleAbortsAreNoOps: aborts aimed at a process that is
// not migrating, at a freshly migrated copy, and at the forwarder it left
// behind must all fall through without damage.
func TestDuplicateAndStaleAbortsAreNoOps(t *testing.T) {
	c := newTCNet(t, 3, netw.Config{}, nil)
	pid, err := c.k(2).Spawn(kernel.SpawnSpec{Body: &counterBody{}})
	if err != nil {
		t.Fatal(err)
	}
	gun, _ := c.k(3).Spawn(kernel.SpawnSpec{
		Body: &aborterBody{Target: pid, Claim: 3, Kernel: 2}, Privileged: true})
	c.runFor(2_000)

	// Two aborts for a process that never migrated: duplicate no-ops.
	_ = c.k(3).GiveMessage(gun, addr.KernelAddr(3), []byte("fire"))
	_ = c.k(3).GiveMessage(gun, addr.KernelAddr(3), []byte("fire"))
	c.run()
	if info, ok := c.k(2).Process(pid); !ok || info.State == kernel.StateForwarder {
		t.Fatal("stale abort destroyed a process that was not migrating")
	}
	if s := c.k(2).Stats(); s.MigrationsFailed != 0 {
		t.Fatalf("MigrationsFailed = %d after no-op aborts", s.MigrationsFailed)
	}

	// Migrate for real, then shoot both the new home and the forwarder.
	c.migrate(3, pid, 2, 1)
	c.run()
	if info, ok := c.k(1).Process(pid); !ok || info.State == kernel.StateForwarder {
		t.Fatal("migration 2->1 did not complete")
	}
	gunHome, _ := c.k(3).Spawn(kernel.SpawnSpec{
		Body: &aborterBody{Target: pid, Claim: 2, Kernel: 1}, Privileged: true})
	_ = c.k(3).GiveMessage(gunHome, addr.KernelAddr(3), []byte("fire"))
	_ = c.k(3).GiveMessage(gun, addr.KernelAddr(3), []byte("fire")) // at the forwarder
	c.run()

	if info, ok := c.k(1).Process(pid); !ok || info.State == kernel.StateForwarder {
		t.Fatal("stale abort destroyed a cleanly migrated copy")
	}
	if info, ok := c.k(2).Process(pid); !ok || info.State != kernel.StateForwarder {
		t.Fatal("stale abort destroyed the forwarding address")
	}
	if s := c.k(1).Stats(); s.MigrationsFailed != 0 {
		t.Fatalf("new home recorded %d failed migrations", s.MigrationsFailed)
	}

	// Traffic through the stale address still lands exactly once.
	c.k(3).GiveMessageTo(addr.At(pid, 2), addr.KernelAddr(3), []byte("hit"))
	c.run()
	b, ok := c.k(1).BodyOf(pid)
	if !ok {
		t.Fatal("process body missing on m1")
	}
	if got := b.(*counterBody).Count; got != 1 {
		t.Fatalf("counted %d, want 1", got)
	}
}

// TestLateCleanupDisarmsTimeoutCommit: the source commits (forwarder
// installed, MigrateDone sent) but its cleanup message is trapped by a
// partition, so the destination commits on watchdog timeout with the
// conflict flag set. The late cleanup crossing MigrateDone must clear that
// flag — a stale abort arriving afterwards is a no-op, not a yield.
func TestLateCleanupDisarmsTimeoutCommit(t *testing.T) {
	c := newTCNet(t, 3, arqCfg(),
		func(cfg *kernel.Config) { cfg.MigrateTimeout = 200_000 })
	pid, err := c.k(1).Spawn(kernel.SpawnSpec{Body: &counterBody{}})
	if err != nil {
		t.Fatal(err)
	}
	gun, _ := c.k(3).Spawn(kernel.SpawnSpec{
		Body: &aborterBody{Target: pid, Claim: 1, Kernel: 2}, Privileged: true})
	c.runFor(2_000)

	// Sever 1-2 the instant the source has committed (step 7 done) but
	// before message 8 can leave: the cleanup goes into retransmission.
	cut := false
	c.k(1).SetFaultHook(func(kp kernel.KillPoint, _ addr.ProcessID) {
		if kp == kernel.KPSourceCommitted && !cut {
			cut = true
			c.net.Partition(1, 2)
		}
	})
	c.migrate(3, pid, 1, 2)

	c.runFor(450_000)
	if !cut {
		t.Fatal("migration never reached KPSourceCommitted")
	}
	if info, ok := c.k(2).Process(pid); !ok || info.State == kernel.StateForwarder {
		t.Fatal("destination did not timeout-commit while the cleanup was trapped")
	}
	if s := c.k(1).Stats(); s.MigrationsOut != 1 {
		t.Fatalf("source MigrationsOut = %d, want 1 (it committed before the partition)", s.MigrationsOut)
	}

	// Heal: the late cleanup arrives, proving the source is a forwarder
	// and no abort is coming.
	c.net.Heal(1, 2)
	c.run()

	// A stale abort after MigrateDone must not make the copy yield.
	_ = c.k(3).GiveMessage(gun, addr.KernelAddr(3), []byte("fire"))
	c.run()
	if info, ok := c.k(2).Process(pid); !ok || info.State == kernel.StateForwarder {
		t.Fatal("stale abort destroyed a cleanly-committed copy after late cleanup")
	}
	if s := c.k(2).Stats(); s.MigrationsFailed != 0 {
		t.Fatalf("destination recorded %d failed migrations", s.MigrationsFailed)
	}
	if info, ok := c.k(1).Process(pid); !ok || info.State != kernel.StateForwarder {
		t.Fatal("source is not a forwarder after committing")
	}
	done := c.k(3).DoneMigrations()
	if len(done) != 1 || !done[0].OK {
		t.Fatalf("requester saw %+v, want one OK completion", done)
	}

	// Traffic through the stale source address reaches the survivor.
	c.k(3).GiveMessageTo(addr.At(pid, 1), addr.KernelAddr(3), []byte("hit"))
	c.run()
	b, ok := c.k(2).BodyOf(pid)
	if !ok {
		t.Fatal("process body missing on m2")
	}
	if got := b.(*counterBody).Count; got != 1 {
		t.Fatalf("counted %d, want 1", got)
	}
}

package kernel_test

import (
	"strings"
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/kernel"
	"demosmp/internal/link"
	"demosmp/internal/msg"
	"demosmp/internal/workload"
)

// TestReplyLinkSingleUse: §2.4 — reply links "are used only once to respond
// to requests". The kernel destroys the holder's copy after one send.
func TestReplyLinkSingleUse(t *testing.T) {
	c := newTC(t, 1, nil)
	// A VM program that creates a reply link to itself, then tries to
	// send on it twice; the second send must fail (r0 = -1).
	pid := c.spawnProg(1, `
		.data
	buf:	.space 8
		.code
	start:	movi r1, 8         ; AttrReply
		movi r2, 0
		movi r3, 0
		sys mklink
		mov r5, r0         ; the reply link
		mov r0, r5
		lea r1, buf
		movi r2, 4
		movi r3, 0
		sys send           ; first use: ok (r0=0)
		mov r6, r0
		mov r0, r5
		lea r1, buf
		movi r2, 4
		movi r3, 0
		sys send           ; second use: link gone (r0=-1)
		add r0, r0, r6     ; 0 + (-1) = -1
		sys exit
	`)
	c.run()
	e, _ := c.exitOf(pid)
	if e.Code != -1 {
		t.Fatalf("exit %d; reply link was reusable", e.Code)
	}
}

// TestSendOnDestroyedLink: destroying a link makes sends fail cleanly.
func TestSendOnDestroyedLink(t *testing.T) {
	c := newTC(t, 1, nil)
	pid := c.spawnProg(1, `
		.data
	buf:	.space 8
		.code
	start:	movi r1, 0
		movi r2, 0
		movi r3, 0
		sys mklink
		mov r5, r0
		mov r0, r5
		sys rmlink         ; destroy it
		mov r0, r5
		lea r1, buf
		movi r2, 4
		movi r3, 0
		sys send
		sys exit           ; r0 = -1 from the failed send
	`)
	c.run()
	if e, _ := c.exitOf(pid); e.Code != -1 {
		t.Fatalf("exit %d; send on destroyed link succeeded", e.Code)
	}
}

// TestDataAreaMustFitImage: a link cannot grant memory the process does not
// have.
func TestDataAreaMustFitImage(t *testing.T) {
	c := newTC(t, 1, nil)
	pid := c.spawnProg(1, `
	start:	movi r1, 4         ; AttrDataWrite
		movi r2, 0
		movi r3, 0x7FFFFFF ; absurd area length
		sys mklink
		sys exit           ; r0 = -1
	`)
	c.run()
	if e, _ := c.exitOf(pid); e.Code != -1 {
		t.Fatalf("exit %d; oversized data area accepted", e.Code)
	}
}

// TestVMFaultTerminatesProcess: a division by zero kills the process and
// records the crash.
func TestVMFaultTerminatesProcess(t *testing.T) {
	c := newTC(t, 1, nil)
	pid := c.spawnProg(1, `
	start:	movi r1, 0
		div r0, r0, r1
		sys exit
	`)
	c.run()
	e, _ := c.exitOf(pid)
	if e.Err == nil || !strings.Contains(e.Err.Error(), "division by zero") {
		t.Fatalf("crash not recorded: %+v", e)
	}
	if s := c.k(1).Stats(); s.Crashes != 1 {
		t.Fatalf("crash counter = %d", s.Crashes)
	}
}

// TestConsoleCapture: sys print reaches the per-process console and is
// preserved per machine.
func TestConsoleCapture(t *testing.T) {
	c := newTC(t, 1, nil)
	pid := c.spawnProg(1, `
		.data
	m:	.asciz "hello from the vm"
		.code
	start:	lea r1, m
		movi r2, 17
		sys print
		movi r0, 0
		sys exit
	`)
	c.run()
	out := c.k(1).Console(pid)
	if len(out) != 1 || out[0] != "hello from the vm" {
		t.Fatalf("console: %q", out)
	}
}

// TestCreateProcessControl: the OpCreateProcess kernel operation
// instantiates a registered program and reports back.
func TestCreateProcessControl(t *testing.T) {
	c := newTC(t, 2, func(cfg *kernel.Config) {
		cfg.Programs = func(name string, args []string) (kernel.SpawnSpec, error) {
			return kernel.SpawnSpec{Program: workload.CPUBound(100)}, nil
		}
	})
	req := msg.CreateProcess{Tag: 5, Name: "cpu"}
	// Injected at m2's kernel, as the process manager's minted kernel
	// link would deliver it.
	c.k(2).GiveControlFrom(addr.KernelAddr(1), addr.KernelPID(2), msg.OpCreateProcess, req.Encode())
	c.run()
	// The created process ran on m2 to completion.
	e, ok := c.k(2).Exit(addr.ProcessID{Creator: 2, Local: 1})
	if !ok || e.Code != workload.CPUBoundResult(100) {
		t.Fatalf("created process: %+v ok=%v", e, ok)
	}
}

// TestSuspendWaitingThenResume: a process suspended while waiting for a
// message resumes into waiting, and wakes when a message finally arrives.
func TestSuspendWaitingThenResume(t *testing.T) {
	c := newTC(t, 1, nil)
	body := &blackholeBody{}
	pid, _ := c.k(1).Spawn(kernel.SpawnSpec{Body: body})
	c.runFor(1000)
	c.k(1).GiveControl(pid, msg.OpSuspend, nil)
	c.runFor(1000)
	if info, _ := c.k(1).Process(pid); info.State != kernel.StateSuspended {
		t.Fatalf("state %v", info.State)
	}
	// Messages arriving while suspended queue up.
	c.k(1).GiveMessage(pid, addr.KernelAddr(1), []byte("queued"))
	c.runFor(1000)
	if len(body.Got) != 0 {
		t.Fatal("suspended process ran")
	}
	c.k(1).GiveControl(pid, msg.OpResume, nil)
	c.run()
	if len(body.Got) != 1 || body.Got[0] != "queued" {
		t.Fatalf("after resume: %v", body.Got)
	}
}

// TestUserMessageToKernelIsDeadLetter: kernels only speak control.
func TestUserMessageToKernelIsDeadLetter(t *testing.T) {
	c := newTC(t, 2, nil)
	c.k(1).GiveMessageTo(addr.KernelAddr(2), addr.KernelAddr(1), []byte("hi kernel"))
	c.run()
	if s := c.k(2).Stats(); s.DeadLetters != 1 {
		t.Fatalf("dead letters = %d", s.DeadLetters)
	}
}

// TestLinkTableCapEnforced: spawning with more initial links than the table
// allows fails cleanly.
func TestLinkTableCapEnforced(t *testing.T) {
	c := newTC(t, 1, func(cfg *kernel.Config) { cfg.LinkTableCap = 2 })
	target := addr.At(addr.ProcessID{Creator: 1, Local: 99}, 1)
	_, err := c.k(1).Spawn(kernel.SpawnSpec{
		Body:  &blackholeBody{},
		Links: []link.Link{{Addr: target}, {Addr: target}, {Addr: target}},
	})
	if err == nil {
		t.Fatal("spawn over link table cap accepted")
	}
}

// TestCarriedLinksInstalledInOrder: multiple carried links arrive as
// consecutive table entries in message order.
func TestCarriedLinksInstalledInOrder(t *testing.T) {
	c := newTC(t, 2, nil)
	body := &blackholeBody{}
	pid, _ := c.k(1).Spawn(kernel.SpawnSpec{Body: body})
	a := addr.At(addr.ProcessID{Creator: 2, Local: 1}, 2)
	b := addr.At(addr.ProcessID{Creator: 2, Local: 2}, 2)
	c.k(1).GiveMessage(pid, addr.KernelAddr(1), []byte("x"),
		link.Link{Addr: a}, link.Link{Addr: b, Attrs: link.AttrReply})
	c.run()
	links := c.k(1).LinksOf(pid)
	if len(links) != 2 {
		t.Fatalf("links installed: %v", links)
	}
	if links[1].Addr != a || links[2].Addr != b || links[2].Attrs != link.AttrReply {
		t.Fatalf("order/attrs wrong: %v", links)
	}
}

// TestForwarderCountsInProcInfo: a forwarding address shows up as a
// degenerate process with its target.
func TestForwarderProcInfo(t *testing.T) {
	c := newTC(t, 2, nil)
	pid, _ := c.k(1).Spawn(kernel.SpawnSpec{Body: &blackholeBody{}})
	c.migrate(2, pid, 1, 2)
	c.run()
	info, ok := c.k(1).Process(pid)
	if !ok || info.State != kernel.StateForwarder || info.FwdTo != 2 {
		t.Fatalf("forwarder info: %+v", info)
	}
	// It has no body.
	if _, hasBody := c.k(1).BodyOf(pid); hasBody {
		t.Fatal("forwarder has a body")
	}
}

// TestVMProcessMigratesWhileBlockedMidReceive: the paper's "the process
// will be in the same state when it reaches its destination" for a VM
// process parked inside the SYS recv instruction.
func TestVMBlockedReceiveMigrates(t *testing.T) {
	c := newTC(t, 2, nil)
	pid := c.spawnProg(1, `
		.data
	buf:	.space 32
		.code
	start:	lea r1, buf
		movi r2, 32
		sys recv          ; blocks here; migrated while parked
		sys exit          ; exit code = received length
	`)
	c.runFor(2000)
	c.migrate(2, pid, 1, 2)
	c.run()
	if info, _ := c.k(2).Process(pid); info.State != kernel.StateWaiting {
		t.Fatalf("state on m2: %v", info.State)
	}
	c.k(1).GiveMessage(pid, addr.KernelAddr(1), []byte("sevenb!")) // via forwarder
	c.run()
	e, m := c.exitOf(pid)
	if m != 2 || e.Code != 7 {
		t.Fatalf("woke with %d on m%d, want 7 on m2", e.Code, m)
	}
}

// TestSelfLink: "processes may have more than one link to a given process
// (including to themselves)" (§5). A process sends itself a message and
// receives it.
func TestSelfLink(t *testing.T) {
	c := newTC(t, 1, nil)
	pid := c.spawnProg(1, `
		.data
	m:	.asciz "loop"
	buf:	.space 16
		.code
	start:	movi r1, 0
		movi r2, 0
		movi r3, 0
		sys mklink        ; link to self
		lea r1, m
		movi r2, 4
		movi r3, 0
		sys send          ; to self
		lea r1, buf
		movi r2, 16
		sys recv
		sys exit          ; exit = received length (4)
	`)
	c.run()
	if e, _ := c.exitOf(pid); e.Code != 4 {
		t.Fatalf("self-send exit %d, want 4", e.Code)
	}
}

// TestSelfLinkSurvivesMigration: the self-link keeps working after the
// process moves — it is just another context-independent link.
func TestSelfLinkSurvivesMigration(t *testing.T) {
	c := newTC(t, 2, nil)
	pid := c.spawnProg(1, `
		.data
	m:	.asciz "x"
	buf:	.space 16
		.code
	start:	movi r1, 0
		movi r2, 0
		movi r3, 0
		sys mklink
		mov r6, r0        ; self link
		movi r7, 0        ; counter
	loop:	mov r0, r6
		lea r1, m
		movi r2, 1
		movi r3, 0
		sys send
		lea r1, buf
		movi r2, 16
		sys recv
		addi r7, r7, 1
		cmpi r7, 50
		jlt loop
		mov r0, r7
		sys exit
	`)
	c.runFor(3000)
	c.migrate(2, pid, 1, 2)
	c.run()
	e, m := c.exitOf(pid)
	if m != 2 || e.Code != 50 {
		t.Fatalf("self-messaging across migration: %d rounds on m%d", e.Code, m)
	}
}

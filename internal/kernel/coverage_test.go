package kernel_test

import (
	"fmt"
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/kernel"
	"demosmp/internal/link"
	"demosmp/internal/msg"
	"demosmp/internal/netw"
	"demosmp/internal/proc"
	"demosmp/internal/workload"
)

// TestMigrationAbortOnPartition: a network partition mid-transfer trips the
// progress watchdogs on both sides; the explicit abort handshake restores
// the process at the source and discards the placeholder at the
// destination — no split brain, no zombie.
func TestMigrationAbortOnPartition(t *testing.T) {
	c := newTC(t, 3, func(cfg *kernel.Config) { cfg.MigrateTimeout = 400_000 })
	pid, _ := c.k(1).Spawn(kernel.SpawnSpec{Program: workload.CPUBoundSized(500000, 256<<10)})
	c.runFor(3000)
	c.migrate(3, pid, 1, 2)
	c.runFor(50000) // transfer under way

	// Partition the source for 100ms: the stream dies, both watchdogs
	// eventually fire, and the abort messages cross a healed network.
	c.net.SetDown(1, true)
	c.eng.After(100_000, "heal", func() { c.net.SetDown(1, false) })
	c.run()

	e, m := c.exitOf(pid)
	if m != 1 || e.Code != workload.CPUBoundResult(500000) {
		t.Fatalf("process after aborted migration: %d on m%d", e.Code, m)
	}
	if _, ok := c.k(2).Process(pid); ok {
		t.Fatal("destination kept state after abort")
	}
	f1 := c.k(1).Stats().MigrationsFailed
	f2 := c.k(2).Stats().MigrationsFailed
	if f1 == 0 || f2 == 0 {
		t.Fatalf("failures not recorded on both sides: src=%d dst=%d", f1, f2)
	}
}

// TestMoveFromFailurePath: reading through a link whose owner has no
// memory image fails cleanly back to the initiator.
func TestMoveFromFailure(t *testing.T) {
	c := newTC(t, 2, nil)
	// Owner: native body with NO image.
	owner, _ := c.k(1).Spawn(kernel.SpawnSpec{Body: &blackholeBody{}})
	rb := &readerBody{N: 8}
	reader, _ := c.k(2).Spawn(kernel.SpawnSpec{Body: rb})
	// Mint a (bogus) read link: capability checks pass at the reader's
	// kernel, but the owner's kernel discovers there is nothing to read.
	c.k(2).MintLinkTo(link.Link{
		Addr: addr.At(owner, 1), Attrs: link.AttrDataRead,
		Area: link.DataArea{Length: 64},
	}, reader)
	c.k(2).GiveMessage(reader, addr.KernelAddr(2), []byte("starter"),
		link.Link{Addr: addr.At(owner, 1), Attrs: link.AttrDataRead, Area: link.DataArea{Length: 64}})
	c.run()
	if !rb.Done {
		t.Fatal("reader never got a completion")
	}
	if rb.OK {
		t.Fatal("read from an imageless owner succeeded")
	}
}

// TestContextSurface exercises the remaining procCtx methods through a
// probing body.
func TestContextSurface(t *testing.T) {
	c := newTC(t, 1, nil)
	pb := &ctxProbe{}
	pid, _ := c.k(1).Spawn(kernel.SpawnSpec{Body: pb, ImageSize: 512})
	c.k(1).GiveMessage(pid, addr.KernelAddr(1), []byte("go"))
	c.run()
	if pb.PID != pid {
		t.Fatalf("ctx.PID = %v", pb.PID)
	}
	if pb.Machine != 1 {
		t.Fatalf("ctx.Machine = %v", pb.Machine)
	}
	if !pb.ImageOK {
		t.Fatal("image round trip failed")
	}
	if !pb.LinkAddrOK {
		t.Fatal("LinkAddr failed")
	}
	out := c.k(1).Console(pid)
	if len(out) != 1 || out[0] != "probe n=7" {
		t.Fatalf("Logf output: %q", out)
	}
	// Kernel accessor surface.
	k := c.k(1)
	if k.Machine() != 1 || k.Engine() == nil || k.Config().Quantum == 0 || k.Crashed() {
		t.Fatal("kernel accessors")
	}
	k.Spawn(kernel.SpawnSpec{Body: &blackholeBody{}})
	if len(k.Processes()) == 0 {
		t.Fatal("Processes empty")
	}
}

type ctxProbe struct {
	PID        addr.ProcessID
	Machine    addr.MachineID
	ImageOK    bool
	LinkAddrOK bool
	done       bool
}

func (p *ctxProbe) Kind() string { return "ctx-probe" }

func (p *ctxProbe) Step(ctx proc.Context, budget int) (int, proc.Status) {
	if _, ok := ctx.Recv(); !ok {
		return 0, proc.Status{State: proc.Blocked}
	}
	if p.done {
		return 0, proc.Status{State: proc.Exited}
	}
	p.done = true
	p.PID = ctx.PID()
	p.Machine = ctx.Machine()
	_ = ctx.Now()
	_ = ctx.Rand()
	ctx.Logf("probe n=%d", 7)
	ctx.ImageWrite(100, []byte{0xAB})
	var b [1]byte
	ctx.ImageRead(100, b[:])
	p.ImageOK = b[0] == 0xAB
	id, _ := ctx.CreateLink(0, link.DataArea{})
	if l, ok := ctx.LinkAddr(id); ok && l.Addr.ID == p.PID {
		p.LinkAddrOK = true
	}
	return 0, proc.Status{State: proc.Exited}
}

func (p *ctxProbe) Snapshot() ([]byte, error) { return nil, nil }
func (p *ctxProbe) Restore([]byte) error      { return nil }

// TestLoadReportsEmitted: kernels with a PM link emit periodic reports on
// weak timers (which do not keep an idle simulation alive).
func TestLoadReportsEmitted(t *testing.T) {
	sink := &loadSink{}
	c := newTCNet(t, 2, netw.Config{}, func(cfg *kernel.Config) {
		cfg.LoadReportEvery = 50_000
	})
	pmPID, _ := c.k(1).Spawn(kernel.SpawnSpec{Body: sink})
	for m := 1; m <= 2; m++ {
		c.k(m).SetPMLink(link.Link{Addr: addr.At(pmPID, 1)})
	}
	// Keep the sim alive with a long computation while reports tick.
	c.k(2).Spawn(kernel.SpawnSpec{Program: workload.CPUBound(400000)})
	c.runFor(500_000)
	if sink.Reports < 5 {
		t.Fatalf("got %d load reports, want several", sink.Reports)
	}
	if sink.Busy == 0 {
		t.Fatal("no report showed CPU activity")
	}
	// With the workload done, Run() must still terminate despite the
	// periodic reports (they are weak events).
	c.run()
}

type loadSink struct {
	Reports int
	Busy    int
}

func (s *loadSink) Kind() string { return "load-sink" }

func (s *loadSink) Step(ctx proc.Context, budget int) (int, proc.Status) {
	for {
		d, ok := ctx.Recv()
		if !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
		if d.Op != msg.OpLoadReport {
			continue
		}
		rep, err := msg.DecodeLoadReport(d.Body)
		if err != nil {
			continue
		}
		s.Reports++
		if rep.CPUPercent > 0 {
			s.Busy++
		}
	}
}

func (s *loadSink) Snapshot() ([]byte, error) { return nil, nil }
func (s *loadSink) Restore([]byte) error      { return nil }

// TestReaderBodyRecordsFailure ensures readerBody's failure fields work
// (used by TestMoveFromFailure above).
func TestRequestMigrationFromBody(t *testing.T) {
	c := newTC(t, 2, nil)
	rm := &requestMigrateBody{Dest: 2}
	pid, _ := c.k(1).Spawn(kernel.SpawnSpec{Body: rm})
	c.k(1).GiveMessage(pid, addr.KernelAddr(1), []byte("go"))
	c.run()
	// No PM configured: the kernel self-manages; the body ends up on m2.
	if _, ok := c.k(2).Process(pid); !ok {
		t.Fatalf("self-requested migration did not move the body")
	}
}

type requestMigrateBody struct {
	Dest  addr.MachineID
	Asked bool
}

func (b *requestMigrateBody) Kind() string { return "req-migrate" }

func (b *requestMigrateBody) Step(ctx proc.Context, budget int) (int, proc.Status) {
	for {
		if _, ok := ctx.Recv(); !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
		if !b.Asked {
			b.Asked = true
			ctx.RequestMigration(b.Dest)
		}
	}
}

func (b *requestMigrateBody) Snapshot() ([]byte, error) {
	return []byte{byte(b.Dest), boolByte(b.Asked)}, nil
}

func (b *requestMigrateBody) Restore(data []byte) error {
	if len(data) < 2 {
		return fmt.Errorf("short")
	}
	b.Dest = addr.MachineID(data[0])
	b.Asked = data[1] != 0
	return nil
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// Cluster-wide invariant checking: after a fault schedule has run and the
// engine is quiescent, these audits prove the migration protocol survived
// — nothing executes twice, nothing is silently lost, every forwarding
// chain still leads somewhere, and no pooled envelope leaked.
package chaos

import (
	"fmt"
	"sort"

	"demosmp/internal/addr"
	"demosmp/internal/core"
	"demosmp/internal/kernel"
	"demosmp/internal/obs"
)

// CheckInvariants audits a quiescent cluster and returns one human-readable
// violation per broken invariant (empty means clean). It checks:
//
//  1. no stuck migrations: every live kernel's in/out migration tables are
//     empty once the event queue has drained;
//  2. at-most-one live copy: a pid executes on at most one machine —
//     the failure mode migration protocols are most prone to (a crash
//     between step 5 and step 7 leaving both copies runnable);
//  3. forwarding-chain convergence: every forwarding address reaches a
//     live copy, an exit record, or an accounted loss (crashed or
//     restarted machine, recorded lost pid) within machines+2 hops;
//  4. envelope conservation: pooled message envelopes allocated across
//     all kernels equal those free plus those held on queues — a leak
//     or double-release anywhere breaks the cluster-wide sum;
//  5. no in-flight network state: the machine-anchored ARQ holds no
//     un-acked flights and no shard's canonical pending heap holds
//     frames — every send either delivered, died into an accounted
//     sink, or was dropped with a counter.
func CheckInvariants(c *core.Cluster) []string {
	var bad []string
	n := c.Machines()

	// 1. No stuck migrations.
	for m := 1; m <= n; m++ {
		k := c.Kernel(m)
		if k.Crashed() {
			continue
		}
		if p := k.PendingMigrations(); p != 0 {
			bad = append(bad, fmt.Sprintf("machine %d: %d migrations still pending at quiescence", m, p))
		}
	}

	// 2. At most one live copy of every pid.
	live := map[addr.ProcessID][]int{}
	var pids []addr.ProcessID
	for m := 1; m <= n; m++ {
		k := c.Kernel(m)
		if k.Crashed() {
			continue
		}
		for _, info := range k.Processes() {
			if info.State == kernel.StateForwarder {
				continue
			}
			if len(live[info.PID]) == 0 {
				pids = append(pids, info.PID)
			}
			live[info.PID] = append(live[info.PID], m)
		}
	}
	sortPIDs(pids)
	for _, pid := range pids {
		if ms := live[pid]; len(ms) > 1 {
			bad = append(bad, fmt.Sprintf("%v is live on %d machines %v — migration forked the process", pid, len(ms), ms))
		}
	}

	// 3. Forwarding chains converge.
	for m := 1; m <= n; m++ {
		k := c.Kernel(m)
		if k.Crashed() {
			continue
		}
		for _, info := range k.Processes() {
			if info.State != kernel.StateForwarder {
				continue
			}
			if why := followChain(c, m, info); why != "" {
				bad = append(bad, fmt.Sprintf("forwarder for %v on machine %d: %s", info.PID, m, why))
			}
		}
	}

	// 4. Envelope conservation. Envelopes migrate between per-kernel
	// pools (a frame is allocated by the sender and released by the
	// receiver), so only the cluster-wide sum is meaningful.
	var news, free, held int
	for m := 1; m <= n; m++ {
		kn, kf, kh := c.Kernel(m).PoolStats()
		news, free, held = news+kn, free+kf, held+kh
	}
	if news != free+held {
		bad = append(bad, fmt.Sprintf("envelope leak: %d allocated != %d free + %d held", news, free, held))
	}

	// 5. No in-flight network state at quiescence.
	if fl := c.InflightARQ(); fl != 0 {
		bad = append(bad, fmt.Sprintf("%d ARQ flights still un-acked at quiescence", fl))
	}
	if p := c.PendingFrames(); p != 0 {
		bad = append(bad, fmt.Sprintf("%d frames still in canonical pending heaps at quiescence", p))
	}

	return bad
}

// followChain walks a forwarding chain and returns "" if it converges, or
// the reason it does not. A chain legally ends at a live copy, at a
// machine holding the pid's exit record, at a machine that crashed or was
// restarted (its forwarders are acknowledged casualties), or at a pid a
// restart recorded as lost.
func followChain(c *core.Cluster, start int, f kernel.ProcInfo) string {
	pid := f.PID
	cur := int(f.FwdTo)
	maxHops := c.Machines() + 2
	for hop := 0; hop <= maxHops; hop++ {
		if cur < 1 || cur > c.Machines() {
			return fmt.Sprintf("points off-cluster (machine %d)", cur)
		}
		k := c.Kernel(cur)
		if k.Crashed() {
			return "" // crashed machine: unknowable, and traffic there is accounted
		}
		info, ok := k.Process(pid)
		if !ok {
			if _, _, exited := c.ExitOf(pid); exited {
				return ""
			}
			if k.Restarts() > 0 {
				return "" // restart wiped state here; stale links fall back to search
			}
			if pidLostAnywhere(c, pid) {
				return ""
			}
			return fmt.Sprintf("dangles at machine %d (no copy, no exit, no crash)", cur)
		}
		if info.State != kernel.StateForwarder {
			return "" // converged on the live copy
		}
		cur = int(info.FwdTo)
	}
	return fmt.Sprintf("no convergence within %d hops (cycle?)", maxHops)
}

func pidLostAnywhere(c *core.Cluster, pid addr.ProcessID) bool {
	for m := 1; m <= c.Machines(); m++ {
		for _, lost := range c.Kernel(m).LostPIDs() {
			if lost == pid {
				return true
			}
		}
	}
	return false
}

// CheckDelivery audits at-most-once delivery of a sequence-stamped user
// stream against a Recorder's ledger: seen maps sequence number to arrival
// count, and sequences 0..sent-1 were sent. Duplicates are violations
// unconditionally. Missing sequences must be covered by the cluster's loss
// accounting — every counter a message can die under, summed — except when
// checkpointed processes were revived: revival rolls a body back to its
// snapshot, which can erase the record of deliveries that did happen (the
// honest gap of §1's stable-storage recovery, see DESIGN.md §9).
func CheckDelivery(c *core.Cluster, seen map[uint32]uint32, sent uint32) []string {
	var bad []string
	var missing uint64
	for s := uint32(0); s < sent; s++ {
		switch n := seen[s]; {
		case n > 1:
			bad = append(bad, fmt.Sprintf("seq %d delivered %d times — at-most-once broken", s, n))
		case n == 0:
			missing++
		}
	}

	// NetStats sums counters across shard networks on a sharded cluster
	// (identical to Network().Stats() on the single-engine runtime).
	// OrphanDropped joins the budget: a cross-shard frame is a heap clone
	// with no pool owner, so when it dies against a down machine there is
	// no Undeliverable completion to the sender — the drop is accounted
	// here instead.
	ns := c.NetStats()
	budget := ns.Dead + ns.SendFromDown + ns.PartitionDropped + ns.BurstDropped + ns.OrphanDropped
	var revived uint64
	for m := 1; m <= c.Machines(); m++ {
		ks := c.Kernel(m).Stats()
		budget += ks.DeadLetters + ks.CrashWipedMsgs + ks.DroppedWhileCrashed +
			ks.Undeliverable + ks.LocateDropped
		revived += ks.Revived
	}
	switch {
	case missing == 0:
	case budget == 0 && revived == 0:
		bad = append(bad, fmt.Sprintf("%d sequences missing with zero accounted losses", missing))
	case missing > budget && revived == 0:
		bad = append(bad, fmt.Sprintf("%d sequences missing but only %d losses accounted", missing, budget))
	}
	return bad
}

func sortPIDs(pids []addr.ProcessID) {
	sort.Slice(pids, func(i, j int) bool {
		if pids[i].Creator != pids[j].Creator {
			return pids[i].Creator < pids[j].Creator
		}
		return pids[i].Local < pids[j].Local
	})
}

// CheckRegistry cross-checks an obs snapshot against direct struct reads:
// because the registry samples every value from its single owner, any
// disagreement means a metric was wired to the wrong source (or a second
// live copy of a counter crept back in). It also re-derives the envelope
// conservation law purely from registry values — the soak's post-run
// snapshot must balance exactly like the PoolStats audit in
// CheckInvariants.
func CheckRegistry(c *core.Cluster, s obs.Snapshot) []string {
	var bad []string
	var regNews, regFree, regHeld uint64
	for m := 1; m <= c.Machines(); m++ {
		k := c.Kernel(m)
		ks := k.Stats()
		p := fmt.Sprintf("kernel.m%d.", m)
		checks := []struct {
			name string
			want uint64
		}{
			{"msgs_routed", ks.MsgsRouted},
			{"dead_letters", ks.DeadLetters},
			{"forwarded", ks.Forwarded},
			{"link_updates_sent", ks.LinkUpdatesSent},
			{"migrations_out", ks.MigrationsOut},
			{"migrations_in", ks.MigrationsIn},
			{"admin_bytes", ks.AdminBytes},
			{"admin_total", ks.AdminTotal()},
			{"data_packets_sent", ks.DataPacketsSent},
			{"acks_sent", ks.AcksSent},
			{"locate_dropped", ks.LocateDropped},
			{"console_dropped", ks.ConsoleDropped},
			{"restarts", ks.Restarts},
			{"crash_wiped_msgs", ks.CrashWipedMsgs},
		}
		for _, ch := range checks {
			if got := s.Value(p + ch.name); got != ch.want {
				bad = append(bad, fmt.Sprintf("registry %s%s = %d, struct says %d",
					p, ch.name, got, ch.want))
			}
		}
		news, free, held := k.PoolStats()
		for _, ch := range []struct {
			name string
			want int
		}{{"pool_news", news}, {"pool_free", free}, {"pool_held", held}} {
			if v := s.Value(p + ch.name); v != uint64(ch.want) {
				bad = append(bad, fmt.Sprintf("registry %s%s = %d, PoolStats says %d",
					p, ch.name, v, ch.want))
			}
		}
		regNews += s.Value(p + "pool_news")
		regFree += s.Value(p + "pool_free")
		regHeld += s.Value(p + "pool_held")
	}
	if regNews != regFree+regHeld {
		bad = append(bad, fmt.Sprintf(
			"registry envelope conservation broken: news=%d != free=%d + held=%d",
			regNews, regFree, regHeld))
	}

	ns := c.NetStats()
	netChecks := []struct {
		name string
		want uint64
	}{
		{"netw.frames", ns.Frames},
		{"netw.delivered", ns.Delivered},
		{"netw.dropped", ns.Dropped},
		{"netw.retransmits", ns.Retransmits},
		{"netw.dead", ns.Dead},
		{"netw.send_from_down", ns.SendFromDown},
	}
	for _, ch := range netChecks {
		if got := s.Value(ch.name); got != ch.want {
			bad = append(bad, fmt.Sprintf("registry %s = %d, netw says %d", ch.name, got, ch.want))
		}
	}
	return bad
}

// Sharded chaos: the fault plane for clusters running on shard-local
// engines (core.Options.Shards >= 1), sequential or ShardParallel.
//
// The classic injector schedules every pulse on the control shard's engine
// and mutates other shards' network state from there — racy under parallel
// rounds and not shard-count-invariant (pulse order interleaves with shard
// 0's traffic). The sharded injector instead keeps every fault's state on
// the shard that enforces it:
//
//   - Lockstep pulse replicas. Each pulse family gets one PRNG stream per
//     shard, all seeded identically (cfg.Seed + a family offset), and each
//     shard arms its own replica chain via AfterWeakFault on its own
//     engine. Every replica draws the same victims at the same sim times;
//     a shard applies only the slice of the fault it enforces. Fault-class
//     events sort before gate pumps and normal events at equal timestamps,
//     so "fault state armed at t applies to every send and arrival at t"
//     holds for every shard count.
//   - Per-shard partition mirrors. Every replica maintains its shard's
//     view of which pairs are open, so already-open guards evaluate
//     identically everywhere; the netw-level Partition/Heal is applied
//     only by the shards owning an endpoint of the pair.
//   - Machine-anchored kill rotation. Kill-point rotation state is per
//     machine (cursor seeded (m-1) % |kill points|, a fair share of
//     MaxKills as budget), so the decision at a hook firing touches only
//     the machine's own shard. KillEvery becomes per-machine spacing.
//   - Per-shard fault logs, merged by (time, machine) into one canonical
//     trace. Each entry is attributed to exactly one machine and written
//     by exactly one shard, so the merged order is total and identical
//     across shard counts — the matrix tests pin this byte for byte.
//
// Schedules differ from the classic single-engine injector (per-family
// streams instead of one interleaved stream; per-machine checkpoint log
// lines instead of one aggregate) — compare sharded runs with sharded runs,
// exactly as for the canonical delivery order.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"

	"demosmp/internal/addr"
	"demosmp/internal/kernel"
	"demosmp/internal/sim"
)

// Per-family PRNG seed offsets: each family's replicas share one stream
// shape across all shards of all shard counts.
const (
	seedPartition = 1 + iota
	seedBurst
	seedDup
	seedDelay
	seedCheckpoint
)

// killState is one machine's private kill rotation.
type killState struct {
	cursor   int // index into kernel.KillPoints(), starts at (m-1) % len
	misses   int
	kills    int
	budget   int // this machine's share of cfg.MaxKills
	lastKill sim.Time
}

// chaosEntry is one fault-log line before merging: time, the machine the
// fault is attributed to, and the rendered text.
type chaosEntry struct {
	t sim.Time
	m int
	s string
}

// shardedInjector is the Injector's state when the cluster is sharded.
type shardedInjector struct {
	shards int
	open   []map[[2]int]bool          // per-shard partition mirrors (lockstep)
	kill   []killState                // per machine, indexed by machine id
	kills  []int                      // crashes fired, per shard
	counts []map[kernel.KillPoint]int // kill-point tallies, per shard
	logs   [][]chaosEntry             // fault log, per shard
}

// initSharded arms the per-shard pulse replicas and the per-machine kill
// budgets. Called by New instead of the classic arm sequence.
func (inj *Injector) initSharded() {
	c, cfg := inj.c, inj.cfg
	shards := c.Shards()
	sh := &shardedInjector{
		shards: shards,
		open:   make([]map[[2]int]bool, shards),
		kill:   make([]killState, c.Machines()+1),
		kills:  make([]int, shards),
		counts: make([]map[kernel.KillPoint]int, shards),
		logs:   make([][]chaosEntry, shards),
	}
	kps := len(kernel.KillPoints())
	per, rem := cfg.MaxKills/c.Machines(), cfg.MaxKills%c.Machines()
	for m := 1; m <= c.Machines(); m++ {
		ks := &sh.kill[m]
		ks.cursor = (m - 1) % kps
		ks.budget = per
		if m <= rem {
			ks.budget++
		}
	}
	for s := 0; s < shards; s++ {
		sh.open[s] = make(map[[2]int]bool)
		sh.counts[s] = make(map[kernel.KillPoint]int)
		inj.armSharded(s, rand.New(rand.NewSource(cfg.Seed+seedPartition)),
			cfg.PartitionEvery, "chaos:partition", inj.partitionPulseSharded)
		inj.armSharded(s, rand.New(rand.NewSource(cfg.Seed+seedBurst)),
			cfg.BurstEvery, "chaos:burst", inj.burstPulseSharded)
		if c.NetLossy() {
			inj.armSharded(s, rand.New(rand.NewSource(cfg.Seed+seedDup)),
				cfg.DupEvery, "chaos:dup", inj.dupPulseSharded)
		}
		inj.armSharded(s, rand.New(rand.NewSource(cfg.Seed+seedDelay)),
			cfg.DelayEvery, "chaos:delay", inj.delayPulseSharded)
		inj.armSharded(s, rand.New(rand.NewSource(cfg.Seed+seedCheckpoint)),
			cfg.CheckpointEvery, "chaos:checkpoint", inj.checkpointPulseSharded)
	}
	inj.sh = sh
}

// armSharded schedules shard s's next replica firing of one pulse family,
// as a weak fault-class event on s's own engine. rng is the family's
// per-shard stream: every shard draws the identical jitter sequence, so
// replicas fire in lockstep.
func (inj *Injector) armSharded(s int, rng *rand.Rand, every sim.Time, name string, fn func(s int, rng *rand.Rand)) {
	if every <= 0 {
		return
	}
	d := every/2 + sim.Time(rng.Int63n(int64(every)))
	inj.c.EngineOfShard(s).AfterWeakFault(d, name, func() {
		if inj.stopped {
			return
		}
		fn(s, rng)
		inj.armSharded(s, rng, every, name, fn)
	})
}

// logf appends one attributed entry to shard s's fault log. Only shard s's
// goroutine writes logs[s], so parallel rounds never race here.
func (sh *shardedInjector) logf(s int, t sim.Time, m int, format string, args ...any) {
	sh.logs[s] = append(sh.logs[s], chaosEntry{t: t, m: m, s: fmt.Sprintf(format, args...)})
}

// pickPair draws a machine pair from a replica stream. Both draws always
// happen so every shard's stream stays aligned.
func pickPair(rng *rand.Rand, n int) (int, int) {
	return 1 + rng.Intn(n), 1 + rng.Intn(n)
}

func (inj *Injector) partitionPulseSharded(s int, rng *rand.Rand) {
	a, b := pickPair(rng, inj.c.Machines())
	if a == b {
		return
	}
	if a > b {
		a, b = b, a
	}
	key := [2]int{a, b}
	sh := inj.sh
	if sh.open[s][key] {
		return
	}
	sh.open[s][key] = true
	// Sends a->b are checked on a's shard and acks on b's: only those
	// shards hold netw-level partition state for the pair.
	owns := inj.c.ShardOf(a) == s || inj.c.ShardOf(b) == s
	if owns {
		inj.c.NetworkOfShard(s).Partition(addr.MachineID(a), addr.MachineID(b))
	}
	eng := inj.c.EngineOfShard(s)
	if inj.c.ShardOf(a) == s {
		sh.logf(s, eng.Now(), a, "partition %d-%d", a, b)
	}
	eng.AfterWeakFault(inj.cfg.PartitionFor, "chaos:heal", func() {
		if !sh.open[s][key] {
			return // already healed (by Stop's sweep)
		}
		delete(sh.open[s], key)
		if owns {
			inj.c.NetworkOfShard(s).Heal(addr.MachineID(a), addr.MachineID(b))
		}
		if inj.c.ShardOf(a) == s {
			sh.logf(s, eng.Now(), a, "heal %d-%d", a, b)
		}
	})
}

func (inj *Injector) burstPulseSharded(s int, rng *rand.Rand) {
	// Every shard originates sends and receives acks, so every replica
	// applies the burst locally; replicas fire at identical times, so the
	// `until` horizons agree. Attributed to machine 0 (cluster-wide).
	eng := inj.c.EngineOfShard(s)
	until := eng.Now() + inj.cfg.BurstFor
	inj.c.NetworkOfShard(s).LossBurst(inj.cfg.BurstRate, until)
	if s == 0 {
		inj.sh.logf(0, eng.Now(), 0, "burst rate=%.2f until=%d", inj.cfg.BurstRate, until)
	}
}

func (inj *Injector) dupPulseSharded(s int, rng *rand.Rand) {
	a, b := pickPair(rng, inj.c.Machines())
	if a == b {
		return
	}
	// One-shot injections live on the sending machine's shard only.
	if inj.c.ShardOf(a) != s {
		return
	}
	inj.c.NetworkOfShard(s).DuplicateNext(addr.MachineID(a), addr.MachineID(b), 1)
	inj.sh.logf(s, inj.c.EngineOfShard(s).Now(), a, "dup-next %d->%d", a, b)
}

func (inj *Injector) delayPulseSharded(s int, rng *rand.Rand) {
	a, b := pickPair(rng, inj.c.Machines())
	if a == b {
		return
	}
	if inj.c.ShardOf(a) != s {
		return
	}
	inj.c.NetworkOfShard(s).DelayNext(addr.MachineID(a), addr.MachineID(b), inj.cfg.DelayExtra)
	inj.sh.logf(s, inj.c.EngineOfShard(s).Now(), a, "delay-next %d->%d +%d", a, b, inj.cfg.DelayExtra)
}

func (inj *Injector) checkpointPulseSharded(s int, rng *rand.Rand) {
	// Each shard checkpoints the machines it hosts. Logged per machine
	// (not as one aggregate line like the classic injector) so the merged
	// trace is shard-count-invariant.
	eng := inj.c.EngineOfShard(s)
	for m := 1; m <= inj.c.Machines(); m++ {
		if inj.c.ShardOf(m) != s {
			continue
		}
		k := inj.c.Kernel(m)
		if k.Crashed() {
			continue
		}
		saved := 0
		for _, info := range k.Processes() {
			if info.State == kernel.StateForwarder || info.QueueLen != 0 {
				continue
			}
			if inj.cfg.CheckpointFilter != nil && !inj.cfg.CheckpointFilter(info) {
				continue
			}
			if err := k.SaveCheckpoint(info.PID); err == nil {
				saved++
			}
		}
		if saved > 0 {
			inj.sh.logf(s, eng.Now(), m, "checkpoint m=%d saved=%d", m, saved)
		}
	}
}

// maybeKillSharded is the fault-hook path for sharded clusters: the whole
// decision reads and writes only machine m's rotation state, m's kernel,
// and m's shard's log — all owned by the shard the hook fired on.
func (inj *Injector) maybeKillSharded(m int, kp kernel.KillPoint, pid addr.ProcessID) {
	sh := inj.sh
	ks := &sh.kill[m]
	eng := inj.c.EngineOf(m)
	if inj.stopped || ks.kills >= ks.budget || eng.Now() < inj.cfg.KillAfter {
		return
	}
	// KillEvery is per-machine spacing here (the cluster-wide spacing of
	// the classic injector would need cross-shard clock reads).
	if ks.kills > 0 && eng.Now() < ks.lastKill+inj.cfg.KillEvery {
		return
	}
	k := inj.c.Kernel(m)
	if k.Crashed() {
		return
	}
	kps := kernel.KillPoints()
	if kp != kps[ks.cursor%len(kps)] {
		if ks.misses++; ks.misses > missLimit {
			ks.misses = 0
			ks.cursor++
		}
		return
	}
	ks.kills++
	ks.cursor++
	ks.misses = 0
	ks.lastKill = eng.Now()
	s := inj.c.ShardOf(m)
	sh.kills[s]++
	sh.counts[s][kp]++
	sh.logf(s, eng.Now(), m, "kill m=%d kp=%s pid=%v", m, kp, pid)
	k.Crash()
	eng.After(inj.cfg.RestartAfter, "chaos:restart", func() {
		if !k.Crashed() {
			return
		}
		if err := k.Restart(); err == nil {
			sh.logf(s, eng.Now(), m, "restart m=%d", m)
		}
	})
}

// stopSharded freezes the schedule between rounds: the coordinator clears
// every shard's partition mirror (all mirrors are identical at a barrier)
// and heals through the cluster-level fan-out, which is safe outside a
// round.
func (inj *Injector) stopSharded() {
	inj.stopped = true
	sh := inj.sh
	keys := make([][2]int, 0, len(sh.open[0]))
	for k := range sh.open[0] {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return keys[i][0] < keys[j][0] || (keys[i][0] == keys[j][0] && keys[i][1] < keys[j][1])
	})
	for _, key := range keys {
		for s := 0; s < sh.shards; s++ {
			delete(sh.open[s], key)
		}
		a, b := key[0], key[1]
		inj.c.Heal(addr.MachineID(a), addr.MachineID(b))
		sa := inj.c.ShardOf(a)
		sh.logf(sa, inj.c.EngineOf(a).Now(), a, "heal %d-%d (stop)", a, b)
	}
}

// traceSharded merges the per-shard fault logs into the canonical order
// (time, machine): each (t, m) pair is written by exactly one shard, and
// same-key entries keep their shard's emission order, so the merge is total
// and shard-count-invariant.
func (inj *Injector) traceSharded() []string {
	var all []chaosEntry
	for _, l := range inj.sh.logs {
		all = append(all, l...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].t != all[j].t {
			return all[i].t < all[j].t
		}
		return all[i].m < all[j].m
	})
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = fmt.Sprintf("t=%d %s", e.t, e.s)
	}
	return out
}

// Package chaos is the deterministic fault-injection plane for a composed
// cluster. An Injector drives the failure modes the paper's protocol must
// survive — processor crashes at every migration kill-point (§3.1),
// network partitions, loss bursts, duplicate and delayed frames — from its
// own seeded PRNG, so the same seed replays the exact same fault schedule
// regardless of how much randomness the simulation itself consumes. The
// companion invariant checker (invariants.go) audits the cluster after
// quiescence.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"

	"demosmp/internal/addr"
	"demosmp/internal/core"
	"demosmp/internal/kernel"
	"demosmp/internal/sim"
)

// Config shapes a fault schedule. The zero value injects nothing; every
// pulse family is enabled by setting its Every interval.
type Config struct {
	// Seed drives the injector's private PRNG.
	Seed int64

	// MaxKills bounds processor crashes fired at migration kill-points.
	// The injector rotates through all eight kill-points in order, so a
	// long enough run crashes a kernel at every stage of the protocol.
	MaxKills int
	// RestartAfter is how long a killed kernel stays down before the
	// injector restarts it (default 250_000).
	RestartAfter sim.Time
	// KillAfter delays the first kill, giving checkpoint pulses time to
	// populate stable storage — a crash before any checkpoint wipes a
	// machine's processes beyond recovery (the paper's §1 point: stable
	// storage is what makes crash "migration" possible at all).
	KillAfter sim.Time
	// KillEvery is the minimum spacing between kills. Without it,
	// back-to-back migrations let the rotation crash every machine
	// within a few events of each other, and the whole cluster spends
	// the run dead instead of recovering.
	KillEvery sim.Time

	// PartitionEvery opens a pairwise partition roughly that often;
	// each heals after PartitionFor (default 40_000).
	PartitionEvery sim.Time
	PartitionFor   sim.Time

	// BurstEvery raises the loss rate to BurstRate (default 0.5) for
	// BurstFor (default 30_000).
	BurstEvery sim.Time
	BurstFor   sim.Time
	BurstRate  float64

	// DupEvery arms a duplicate of the next frame between a random
	// machine pair. Only honoured on lossy (ARQ) networks, where the
	// receiver's dedup table preserves at-most-once delivery; on a
	// lossless network a wire duplicate would be delivered twice.
	DupEvery sim.Time
	// DelayEvery holds the next frame between a random pair back by
	// DelayExtra (default 2_500), reordering it past later traffic.
	DelayEvery sim.Time
	DelayExtra sim.Time

	// CheckpointEvery snapshots live processes to their kernel's stable
	// storage so a later Restart can revive them. Only processes with an
	// empty message queue are taken: checkpoints do not include queued
	// messages, so an empty-queue snapshot can never replay a delivery
	// (keeping the at-most-once audit strict).
	CheckpointEvery sim.Time
	// CheckpointFilter, when set, restricts which processes are
	// checkpointed (e.g. to keep system processes out of revival).
	CheckpointFilter func(kernel.ProcInfo) bool
}

// Injector schedules faults against one cluster. All scheduling happens on
// the cluster's engine, so fault timing is part of the deterministic event
// order; the injector's own PRNG only picks victims and intervals.
type Injector struct {
	c   *core.Cluster
	eng *sim.Engine
	rng *rand.Rand
	cfg Config

	stopped    bool
	kills      int
	lastKill   sim.Time
	target     int // rotation cursor into kernel.KillPoints()
	misses     int // hook fires since the last kill that missed the target
	killCounts map[kernel.KillPoint]int
	parts      map[[2]int]bool // partitions we opened and have not healed
	log        []string

	// sh is non-nil when the cluster runs sharded: the injector then uses
	// the shard-local fault plane (sharded.go) — lockstep per-shard pulse
	// replicas, per-machine kill rotation, per-shard merged logs — instead
	// of the classic single-engine schedule above.
	sh *shardedInjector
}

// missLimit is how many non-matching kill-point firings the injector
// tolerates before advancing the rotation cursor. It rescues a run whose
// workload can no longer reach the targeted stage (e.g. migrations dried
// up) without costing coverage in a healthy run.
const missLimit = 256

// New installs fault hooks on every kernel and arms the configured pulse
// families. Pulses are weak events: they never keep the engine alive, so a
// driver can simply Run() to quiescence. Heals ride along as weak events
// too (Stop sweeps up any partition left behind); restarts are strong, so
// a killed kernel always comes back.
func New(c *core.Cluster, cfg Config) *Injector {
	if cfg.RestartAfter <= 0 {
		cfg.RestartAfter = 250_000
	}
	if cfg.PartitionFor <= 0 {
		cfg.PartitionFor = 40_000
	}
	if cfg.BurstFor <= 0 {
		cfg.BurstFor = 30_000
	}
	if cfg.BurstRate <= 0 {
		cfg.BurstRate = 0.5
	}
	if cfg.DelayExtra <= 0 {
		cfg.DelayExtra = 2_500
	}
	inj := &Injector{
		c:          c,
		eng:        c.Engine(),
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		cfg:        cfg,
		killCounts: make(map[kernel.KillPoint]int),
		parts:      make(map[[2]int]bool),
	}
	for m := 1; m <= c.Machines(); m++ {
		m := m
		c.Kernel(m).SetFaultHook(func(kp kernel.KillPoint, pid addr.ProcessID) {
			inj.maybeKill(m, kp, pid)
		})
	}
	if c.Shards() >= 1 {
		// Sharded runtime: shard-local fault plane (sharded.go). Runs under
		// ShardParallel and is shard-count-invariant; its schedule differs
		// from the classic single-engine one below.
		inj.initSharded()
		return inj
	}
	inj.arm(cfg.PartitionEvery, "chaos:partition", inj.partitionPulse)
	inj.arm(cfg.BurstEvery, "chaos:burst", inj.burstPulse)
	if c.NetLossy() {
		inj.arm(cfg.DupEvery, "chaos:dup", inj.dupPulse)
	}
	inj.arm(cfg.DelayEvery, "chaos:delay", inj.delayPulse)
	inj.arm(cfg.CheckpointEvery, "chaos:checkpoint", inj.checkpointPulse)
	return inj
}

// Stop freezes the schedule: no further kills or pulses, and every
// partition the injector opened is healed. Restarts already scheduled for
// killed kernels still fire, so a subsequent Run() reaches a fully-up
// cluster.
func (inj *Injector) Stop() {
	if inj.sh != nil {
		inj.stopSharded()
		return
	}
	inj.stopped = true
	keys := make([][2]int, 0, len(inj.parts))
	for k := range inj.parts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return keys[i][0] < keys[j][0] || (keys[i][0] == keys[j][0] && keys[i][1] < keys[j][1])
	})
	for _, k := range keys {
		delete(inj.parts, k)
		inj.c.Heal(addr.MachineID(k[0]), addr.MachineID(k[1]))
		inj.tracef("heal %d-%d (stop)", k[0], k[1])
	}
}

// Kills reports how many processor crashes fired.
func (inj *Injector) Kills() int {
	if inj.sh != nil {
		total := 0
		for _, n := range inj.sh.kills {
			total += n
		}
		return total
	}
	return inj.kills
}

// KillCounts reports crashes per kill-point.
func (inj *Injector) KillCounts() map[kernel.KillPoint]int {
	if inj.sh != nil {
		out := make(map[kernel.KillPoint]int)
		for _, counts := range inj.sh.counts {
			for k, v := range counts {
				out[k] += v
			}
		}
		return out
	}
	out := make(map[kernel.KillPoint]int, len(inj.killCounts))
	for k, v := range inj.killCounts {
		out[k] = v
	}
	return out
}

// Trace returns the injector's fault log — a deterministic artifact two
// same-seed runs must reproduce byte for byte (and, when sharded, byte for
// byte across shard counts).
func (inj *Injector) Trace() []string {
	if inj.sh != nil {
		return inj.traceSharded()
	}
	return append([]string(nil), inj.log...)
}

func (inj *Injector) tracef(format string, args ...any) {
	inj.log = append(inj.log, fmt.Sprintf("t=%d %s", inj.eng.Now(), fmt.Sprintf(format, args...)))
}

// maybeKill is the fault hook: it fires inside a kernel's migration
// handler at a named kill-point and decides whether that kernel dies right
// there. The decision is a pure function of the rotation state — no PRNG —
// so kill placement depends only on simulation order.
func (inj *Injector) maybeKill(m int, kp kernel.KillPoint, pid addr.ProcessID) {
	if inj.sh != nil {
		// Sharded: per-machine rotation state, touched only on m's own
		// shard (sharded.go).
		inj.maybeKillSharded(m, kp, pid)
		return
	}
	eng := inj.c.EngineOf(m)
	if inj.stopped || inj.kills >= inj.cfg.MaxKills || eng.Now() < inj.cfg.KillAfter {
		return
	}
	if inj.kills > 0 && eng.Now() < inj.lastKill+inj.cfg.KillEvery {
		return
	}
	k := inj.c.Kernel(m)
	if k.Crashed() {
		return
	}
	kps := kernel.KillPoints()
	if kp != kps[inj.target%len(kps)] {
		if inj.misses++; inj.misses > missLimit {
			inj.misses = 0
			inj.target++
		}
		return
	}
	inj.kills++
	inj.target++
	inj.misses = 0
	inj.lastKill = eng.Now()
	inj.killCounts[kp]++
	inj.tracef("kill m=%d kp=%s pid=%v", m, kp, pid)
	k.Crash()
	eng.After(inj.cfg.RestartAfter, "chaos:restart", func() {
		if !k.Crashed() {
			return
		}
		if err := k.Restart(); err == nil {
			inj.tracef("restart m=%d", m)
		}
	})
}

// arm schedules the first firing of a pulse family; each pulse re-arms
// itself. Intervals jitter in [every/2, every*3/2) off the injector's PRNG.
func (inj *Injector) arm(every sim.Time, name string, fn func()) {
	if every <= 0 {
		return
	}
	d := every/2 + sim.Time(inj.rng.Int63n(int64(every)))
	inj.eng.AfterWeak(d, name, func() {
		if inj.stopped {
			return
		}
		fn()
		inj.arm(every, name, fn)
	})
}

// pick returns a random machine pair (a != b unless only one machine
// exists). Both draws always happen so the PRNG stream stays aligned.
func (inj *Injector) pick() (int, int) {
	n := inj.c.Machines()
	a := 1 + inj.rng.Intn(n)
	b := 1 + inj.rng.Intn(n)
	return a, b
}

func (inj *Injector) partitionPulse() {
	a, b := inj.pick()
	if a == b {
		return
	}
	if a > b {
		a, b = b, a
	}
	key := [2]int{a, b}
	if inj.parts[key] {
		return
	}
	inj.parts[key] = true
	inj.c.Partition(addr.MachineID(a), addr.MachineID(b))
	inj.tracef("partition %d-%d", a, b)
	// Weak: a heal must never be the only thing keeping the engine
	// alive. Stop() sweeps up anything left unhealed.
	inj.eng.AfterWeak(inj.cfg.PartitionFor, "chaos:heal", func() {
		if !inj.parts[key] {
			return
		}
		delete(inj.parts, key)
		inj.c.Heal(addr.MachineID(a), addr.MachineID(b))
		inj.tracef("heal %d-%d", a, b)
	})
}

func (inj *Injector) burstPulse() {
	until := inj.eng.Now() + inj.cfg.BurstFor
	inj.c.LossBurst(inj.cfg.BurstRate, until)
	inj.tracef("burst rate=%.2f until=%d", inj.cfg.BurstRate, until)
}

func (inj *Injector) dupPulse() {
	a, b := inj.pick()
	if a == b {
		return
	}
	inj.c.DuplicateNext(addr.MachineID(a), addr.MachineID(b), 1)
	inj.tracef("dup-next %d->%d", a, b)
}

func (inj *Injector) delayPulse() {
	a, b := inj.pick()
	if a == b {
		return
	}
	inj.c.DelayNext(addr.MachineID(a), addr.MachineID(b), inj.cfg.DelayExtra)
	inj.tracef("delay-next %d->%d +%d", a, b, inj.cfg.DelayExtra)
}

func (inj *Injector) checkpointPulse() {
	saved := 0
	for m := 1; m <= inj.c.Machines(); m++ {
		k := inj.c.Kernel(m)
		if k.Crashed() {
			continue
		}
		for _, info := range k.Processes() {
			if info.State == kernel.StateForwarder || info.QueueLen != 0 {
				continue
			}
			if inj.cfg.CheckpointFilter != nil && !inj.cfg.CheckpointFilter(info) {
				continue
			}
			if err := k.SaveCheckpoint(info.PID); err == nil {
				saved++
			}
		}
	}
	if saved > 0 {
		inj.tracef("checkpoint saved=%d", saved)
	}
}

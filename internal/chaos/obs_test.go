package chaos_test

// Observability-plane audits over the chaos harness: same-seed runs must
// export byte-identical snapshots and timelines, and the single-ownership
// rule for stats (kernel owns protocol counts, netw owns wire counts) must
// reconcile exactly on a lossless run.

import (
	"bytes"
	"testing"

	"demosmp/internal/kernel"
	"demosmp/internal/msg"
)

// TestObsExportDeterministic runs the full fault schedule twice with one
// seed and demands byte-identical obs exports: the text metrics snapshot
// and the Chrome trace_event timeline JSON. Sorted metric names, fixed
// registration order, and struct-driven JSON encoding are what make this
// hold — any map-range sneaking into an exporter breaks it (and demoslint
// maporder flags it statically).
func TestObsExportDeterministic(t *testing.T) {
	p := shortParams()
	a := runSoak(t, 4242, p)
	b := runSoak(t, 4242, p)
	if len(a.obsText) == 0 || len(a.timeline) == 0 {
		t.Fatal("empty obs export")
	}
	if !bytes.Equal(a.obsText, b.obsText) {
		t.Fatalf("metrics snapshots differ between same-seed runs (%dB vs %dB)",
			len(a.obsText), len(b.obsText))
	}
	if !bytes.Equal(a.timeline, b.timeline) {
		t.Fatalf("timeline JSON differs between same-seed runs (%dB vs %dB)",
			len(a.timeline), len(b.timeline))
	}
}

// TestStatsSingleSource is the never-disagree audit for the ownership
// split between kernel.Stats (protocol-level: packets and acks initiated)
// and the netw flat arrays (wire-level: frames by kind). On a lossless
// no-fault soak every data packet and ack crosses the wire exactly once,
// so the two layers must reconcile exactly; the registry reads each number
// from exactly one of them (CheckRegistry, run inside runSoak, already
// failed the run if any sampler disagreed with its owning struct).
func TestStatsSingleSource(t *testing.T) {
	p := shortParams()
	p.chaosOn = false
	p.lossy = false
	p.maxKills = 0
	res := runSoak(t, 7, p)
	for _, v := range res.violations {
		t.Errorf("invariant violated: %s", v)
	}

	c := res.cluster
	var dataSent, acksSent, acksRecv uint64
	for m := 1; m <= p.machines; m++ {
		ks := c.Kernel(m).Stats()
		dataSent += ks.DataPacketsSent
		acksSent += ks.AcksSent
		acksRecv += ks.AcksReceived
	}
	ns := c.Network().Stats()
	if dataSent == 0 {
		t.Fatal("soak moved no data packets; the audit is vacuous")
	}
	if wire := ns.ByKind[msg.KindData]; dataSent != wire {
		t.Errorf("kernel counted %d data packets sent, netw carried %d data frames", dataSent, wire)
	}
	if wire := ns.ByKind[msg.KindAck]; acksSent != wire {
		t.Errorf("kernel counted %d acks sent, netw carried %d ack frames", acksSent, wire)
	}
	if acksSent != acksRecv {
		t.Errorf("acks sent %d != acks received %d on a lossless network", acksSent, acksRecv)
	}

	// Forwarder storage is owned once too. The gauge can sit below
	// (installed - reclaimed) * 8: a process migrating back onto a machine
	// that still holds its forwarding address supersedes the record, which
	// releases the storage without a death-notice reclaim. It can never
	// exceed the bound or go fractional.
	for m := 1; m <= p.machines; m++ {
		ks := c.Kernel(m).Stats()
		bound := (ks.ForwardersInstalled - ks.ForwardersReclaimed) * kernel.ForwarderWireSize
		if ks.ForwarderBytes%kernel.ForwarderWireSize != 0 || ks.ForwarderBytes > bound {
			t.Errorf("m%d forwarder bytes %d out of bounds (installed %d, reclaimed %d, record size %d)",
				m, ks.ForwarderBytes, ks.ForwardersInstalled, ks.ForwardersReclaimed,
				kernel.ForwarderWireSize)
		}
	}
}

package chaos_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/chaos"
	"demosmp/internal/core"
	"demosmp/internal/kernel"
	"demosmp/internal/netw"
	"demosmp/internal/obs"
	"demosmp/internal/sim"
	"demosmp/internal/workload"
)

// soakParams sizes one chaos soak.
type soakParams struct {
	machines   int
	migrations int // migration attempts scheduled
	sends      int // sequence-stamped user messages
	maxKills   int
	chaosOn    bool
	lossy      bool
	shards     int  // 0 = classic single-engine runtime
	parallel   bool // run shard rounds on parallel goroutines
	// migrateSpan confines the migrating fleet (spawn sites, migration
	// destinations, and so the probe fan-out) to machines 1..span; zero
	// means the whole cluster. Large-cluster soaks use a small span so a
	// migration driver probe is O(span), not O(machines).
	migrateSpan int
}

func fullParams() soakParams {
	return soakParams{machines: 4, migrations: 400, sends: 300, maxKills: 16, chaosOn: true, lossy: true}
}

func shortParams() soakParams {
	return soakParams{machines: 3, migrations: 40, sends: 80, maxKills: 8, chaosOn: true, lossy: true}
}

// soakResult is everything a determinism comparison needs.
type soakResult struct {
	fired       uint64
	now         sim.Time
	trace       []string
	kills       int
	killCounts  map[kernel.KillPoint]int
	migrations  uint64
	restarts    uint64
	seen        map[uint32]uint32
	recLost     bool
	violations  []string
	delivery    []string
	netFrames   uint64
	netStats    netw.Stats
	crashedLeft int

	// Post-run obs exports, byte-for-byte comparable across same-seed
	// runs: the text metrics snapshot and the Chrome timeline JSON.
	// obsNorm is obsText with the per-kernel envelope-pool gauges removed —
	// which kernel's pool a cross-shard clone's original retires to is the
	// one legitimately shard-dependent corner of the snapshot (the
	// conservation law itself is audited per run by CheckRegistry), so
	// shard-count comparisons use obsNorm and same-config reruns use the
	// full obsText.
	obsText  []byte
	obsNorm  []byte
	timeline []byte

	// The quiescent cluster itself, for audits that need direct reads.
	cluster *core.Cluster
}

// runSoak builds a cluster, spawns a Recorder plus a movable fleet, drives
// migrations and a sequence-stamped message stream at it through stale
// addresses, lets the chaos injector crash/partition/burst throughout,
// then runs to quiescence and audits.
//
// The drivers are machine-anchored: every scheduled event fires on the
// engine of the machine whose state it touches, so the soak composes with
// ShardParallel and lands identically under every shard count. A migration
// is a probe fanned out to each machine in the fleet's span — the machine
// hosting the live copy (if any) requests the move on its own kernel.
func runSoak(t *testing.T, seed int64, p soakParams) soakResult {
	t.Helper()
	ncfg := netw.Config{}
	if p.lossy {
		ncfg = netw.Config{LossRate: 0.04, RetransTimeout: 3000, MaxRetries: 200}
	}
	c, err := core.New(core.Options{
		Machines:      p.machines,
		Seed:          seed,
		Net:           ncfg,
		Shards:        p.shards,
		ShardParallel: p.parallel,
		// Generous trace ring so no shard's tracer wraps: merged trace and
		// timeline artifacts stay comparable across shard counts.
		TraceCap: 1 << 16,
		Kernel:   kernel.Config{MigrateTimeout: 400_000, CheckpointOnArrival: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	span := p.machines
	if p.migrateSpan > 0 && p.migrateSpan < p.machines {
		span = p.migrateSpan
	}

	recPID, err := c.Spawn(1, kernel.SpawnSpec{Body: &workload.Recorder{}})
	if err != nil {
		t.Fatal(err)
	}
	fleet := []addr.ProcessID{recPID}
	for i := 0; i < 6; i++ {
		pid, err := c.Spawn(1+i%span, kernel.SpawnSpec{Body: &workload.Null{}})
		if err != nil {
			t.Fatal(err)
		}
		fleet = append(fleet, pid)
	}

	// The driver's randomness is its own stream, like the injector's, so
	// victim choice never depends on simulation-internal draws.
	rng := rand.New(rand.NewSource(seed + 1))
	var horizon sim.Time
	for i := 0; i < p.migrations; i++ {
		at := sim.Time(4_000 + i*6_000)
		victim := fleet[rng.Intn(len(fleet))]
		dest := 1 + rng.Intn(span)
		for m := 1; m <= span; m++ {
			m := m
			c.EngineOf(m).At(at, "drive:migrate", func() {
				if m == dest {
					return
				}
				k := c.Kernel(m)
				if k.Crashed() {
					return
				}
				info, ok := k.Process(victim)
				if !ok || info.State == kernel.StateForwarder {
					return
				}
				k.RequestMigrationOf(addr.At(victim, addr.MachineID(m)), addr.MachineID(dest))
			})
		}
		if at > horizon {
			horizon = at
		}
	}
	for i := 0; i < p.sends; i++ {
		at := sim.Time(3_000 + i*4_500)
		seq := uint32(i)
		src := addr.MachineID(1 + i%p.machines)
		c.EngineOf(int(src)).At(at, "drive:send", func() {
			body := []byte{byte(seq), byte(seq >> 8), byte(seq >> 16), byte(seq >> 24)}
			// Deliberately stale address: the recorder's birth machine,
			// however many migrations ago that was.
			c.Kernel(int(src)).GiveMessageTo(addr.At(recPID, 1), addr.KernelAddr(src), body)
		})
		if at > horizon {
			horizon = at
		}
	}

	var inj *chaos.Injector
	if p.chaosOn {
		inj = chaos.New(c, chaos.Config{
			Seed:            seed + 7,
			MaxKills:        p.maxKills,
			RestartAfter:    60_000,
			KillAfter:       80_000,
			KillEvery:       60_000,
			PartitionEvery:  60_000,
			PartitionFor:    40_000,
			BurstEvery:      90_000,
			BurstFor:        30_000,
			BurstRate:       0.6,
			DupEvery:        45_000,
			DelayEvery:      35_000,
			DelayExtra:      2_000,
			CheckpointEvery: 30_000,
			// Keep system processes (PM-less here, but switchboard-free
			// boot still has none) out of revival; checkpoint only the
			// test's own fleet kinds.
			CheckpointFilter: func(info kernel.ProcInfo) bool {
				return info.Kind == workload.RecorderKind || info.Kind == workload.NullKind
			},
		})
	}

	// Phase 1: chaos active while the drivers fire.
	c.RunFor(horizon + 50_000)
	// Phase 2: freeze the fault schedule, heal leftovers, drain to
	// quiescence (pending restarts are strong events and still fire).
	if inj != nil {
		inj.Stop()
	}
	c.Run()

	res := soakResult{
		fired:   c.TotalFired(),
		now:     c.Now(),
		seen:    map[uint32]uint32{},
		cluster: c,
	}
	if inj != nil {
		res.trace = inj.Trace()
		res.kills = inj.Kills()
		res.killCounts = inj.KillCounts()
	}
	for m := 1; m <= p.machines; m++ {
		ks := c.Kernel(m).Stats()
		res.migrations += ks.MigrationsOut
		res.restarts += ks.Restarts
		if c.Kernel(m).Crashed() {
			res.crashedLeft++
		}
	}
	res.netStats = c.NetStats()
	res.netFrames = res.netStats.Frames

	res.recLost = true
	for m := 1; m <= p.machines; m++ {
		if b, ok := c.Kernel(m).BodyOf(recPID); ok {
			if r, ok2 := b.(*workload.Recorder); ok2 && r != nil {
				res.recLost = false
				for s, n := range r.Seen {
					res.seen[s] = n
				}
			}
		}
	}

	// Post-run obs snapshot: exported for the determinism comparison and
	// cross-checked against direct struct reads (including the envelope
	// conservation law re-derived purely from registry values).
	snap := c.ObsSnapshot()
	var sb, tb bytes.Buffer
	if err := snap.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	tl := obs.BuildTimeline(c.TraceRecords(), c.Ledger(), nil)
	if err := tl.WriteJSON(&tb); err != nil {
		t.Fatal(err)
	}
	res.obsText = sb.Bytes()
	res.obsNorm = stripPoolGauges(res.obsText)
	res.timeline = tb.Bytes()

	res.violations = chaos.CheckInvariants(c)
	res.violations = append(res.violations, chaos.CheckRegistry(c, snap)...)
	if !res.recLost {
		res.delivery = chaos.CheckDelivery(c, res.seen, uint32(p.sends))
	} else if !pidLost(c, recPID, p.machines) {
		res.violations = append(res.violations,
			fmt.Sprintf("recorder %v vanished without a crash-loss record", recPID))
	}
	return res
}

// stripPoolGauges removes the per-kernel envelope-pool gauge lines from a
// text metrics snapshot (see the obsNorm comment on soakResult).
func stripPoolGauges(text []byte) []byte {
	var out []byte
	for _, line := range bytes.Split(text, []byte("\n")) {
		if bytes.Contains(line, []byte(".pool_")) {
			continue
		}
		out = append(out, line...)
		out = append(out, '\n')
	}
	return out
}

func pidLost(c *core.Cluster, pid addr.ProcessID, machines int) bool {
	for m := 1; m <= machines; m++ {
		for _, lost := range c.Kernel(m).LostPIDs() {
			if lost == pid {
				return true
			}
		}
		if ks := c.Kernel(m).Stats(); ks.CrashLostProcs > 0 {
			return true // lost pre-revival; LostPIDs cleared if later revived elsewhere
		}
	}
	return false
}

// TestChaosSoak is the headline acceptance run: crashes at migration
// kill-points, partitions, loss bursts, duplicates and delays — and at the
// end every invariant holds and every missing message is accounted for.
func TestChaosSoak(t *testing.T) {
	p := fullParams()
	if testing.Short() {
		p = shortParams()
	}
	res := runSoak(t, 4242, p)

	for _, v := range res.violations {
		t.Errorf("invariant violated: %s", v)
	}
	for _, v := range res.delivery {
		t.Errorf("delivery audit: %s", v)
	}
	if res.crashedLeft != 0 {
		t.Errorf("%d machines still crashed at quiescence (restarts lost?)", res.crashedLeft)
	}
	if res.kills == 0 {
		t.Fatalf("injector never fired a kill (migrations=%d)", res.migrations)
	}
	if res.restarts == 0 {
		t.Fatal("no kernel ever restarted")
	}
	if !testing.Short() {
		if res.migrations < 50 {
			t.Errorf("only %d completed migrations; want >= 50", res.migrations)
		}
		for _, kp := range kernel.KillPoints() {
			if res.killCounts[kp] == 0 {
				t.Errorf("kill-point %v never exercised (counts: %v)", kp, res.killCounts)
			}
		}
	}
	t.Logf("soak: t=%d fired=%d migrations=%d kills=%d restarts=%d frames=%d recLost=%v",
		res.now, res.fired, res.migrations, res.kills, res.restarts, res.netFrames, res.recLost)
}

// TestChaosSameSeedReproduces runs the identical fault schedule twice and
// demands bit-identical outcomes: same event count, same injector log,
// same delivery ledger, same aggregate stats.
func TestChaosSameSeedReproduces(t *testing.T) {
	p := shortParams()
	a := runSoak(t, 99, p)
	b := runSoak(t, 99, p)
	if a.fired != b.fired || a.now != b.now {
		t.Fatalf("engine diverged: fired %d/%d, now %d/%d", a.fired, b.fired, a.now, b.now)
	}
	if !reflect.DeepEqual(a.trace, b.trace) {
		t.Fatalf("injector trace diverged:\nA: %v\nB: %v", a.trace, b.trace)
	}
	if !reflect.DeepEqual(a.seen, b.seen) || a.recLost != b.recLost {
		t.Fatalf("delivery ledger diverged")
	}
	if a.migrations != b.migrations || a.restarts != b.restarts || a.kills != b.kills ||
		a.netFrames != b.netFrames {
		t.Fatalf("stats diverged: migrations %d/%d restarts %d/%d kills %d/%d frames %d/%d",
			a.migrations, b.migrations, a.restarts, b.restarts, a.kills, b.kills,
			a.netFrames, b.netFrames)
	}
}

// TestNoFaultStrict runs the same harness with the injector disabled on a
// lossless network: delivery must be exactly-once (zero missing, zero
// duplicates) and every invariant clean — the control arm proving the
// audits themselves aren't vacuous.
func TestNoFaultStrict(t *testing.T) {
	p := shortParams()
	p.chaosOn = false
	p.lossy = false
	p.maxKills = 0
	res := runSoak(t, 7, p)
	for _, v := range res.violations {
		t.Errorf("invariant violated: %s", v)
	}
	for _, v := range res.delivery {
		t.Errorf("delivery audit: %s", v)
	}
	if res.recLost {
		t.Fatal("recorder lost without faults")
	}
	var missing int
	for s := uint32(0); s < uint32(p.sends); s++ {
		if res.seen[s] == 0 {
			missing++
		}
	}
	if missing != 0 {
		t.Fatalf("%d sequences missing in a no-fault run", missing)
	}
	if res.restarts != 0 || res.kills != 0 {
		t.Fatalf("faults fired in the no-fault arm: kills=%d restarts=%d", res.kills, res.restarts)
	}
}

// shardedParams is the base sharded soak configuration: lossy (the
// machine-anchored ARQ composes with sharding), the full
// crash/partition/burst/dup/delay schedule intact, 2 shards, sequential
// rounds by default.
func shardedParams() soakParams {
	p := shortParams()
	p.shards = 2
	p.machines = 4
	return p
}

// assertShardInvariant compares every shard-count-invariant artifact of two
// soak runs: injector trace (merged across shards), delivery ledger, net
// stats, kill schedule, migration/restart totals, and the pool-gauge-
// normalized obs snapshot. TotalFired / final clock are NOT compared —
// pulse replicas and pump gates legitimately scale with the shard count.
func assertShardInvariant(t *testing.T, label string, base, got soakResult) {
	t.Helper()
	if !reflect.DeepEqual(base.trace, got.trace) {
		t.Errorf("%s: injector trace diverged from 1-shard base\nbase: %v\ngot:  %v",
			label, base.trace, got.trace)
	}
	if !reflect.DeepEqual(base.seen, got.seen) || base.recLost != got.recLost {
		t.Errorf("%s: delivery ledger diverged from 1-shard base", label)
	}
	if !reflect.DeepEqual(base.netStats, got.netStats) {
		t.Errorf("%s: net stats diverged\nbase: %+v\ngot:  %+v", label, base.netStats, got.netStats)
	}
	if base.kills != got.kills || !reflect.DeepEqual(base.killCounts, got.killCounts) {
		t.Errorf("%s: kill schedule diverged: kills %d/%d counts %v/%v",
			label, base.kills, got.kills, base.killCounts, got.killCounts)
	}
	if base.migrations != got.migrations || base.restarts != got.restarts {
		t.Errorf("%s: stats diverged: migrations %d/%d restarts %d/%d",
			label, base.migrations, got.migrations, base.restarts, got.restarts)
	}
	if !bytes.Equal(base.obsNorm, got.obsNorm) {
		t.Errorf("%s: normalized obs snapshot diverged from 1-shard base", label)
	}
}

// TestChaosSoakSharded is the shard-count invariance matrix: the same seed
// run at 1, 2, and 4 shards, sequentially and in parallel, lossless and
// lossy, must produce the identical chaos outcome — same merged injector
// trace, same delivery ledger, same net stats, same kill schedule, same
// normalized obs snapshot. The 1-shard arm also audits invariants and
// delivery, so every compared arm inherits a clean bill.
func TestChaosSoakSharded(t *testing.T) {
	for _, lossy := range []bool{false, true} {
		name := "lossless"
		if lossy {
			name = "lossy"
		}
		t.Run(name, func(t *testing.T) {
			p := shardedParams()
			p.lossy = lossy
			p.shards = 1
			base := runSoak(t, 4242, p)
			for _, v := range base.violations {
				t.Errorf("invariant violated: %s", v)
			}
			for _, v := range base.delivery {
				t.Errorf("delivery audit: %s", v)
			}
			if base.crashedLeft != 0 {
				t.Errorf("%d machines still crashed at quiescence", base.crashedLeft)
			}
			if base.kills == 0 {
				t.Fatalf("injector never fired a kill (migrations=%d)", base.migrations)
			}
			if base.restarts == 0 {
				t.Fatal("no kernel ever restarted")
			}
			if lossy && base.netStats.Dropped == 0 {
				t.Fatal("lossy arm dropped nothing — ARQ never exercised")
			}
			for _, shards := range []int{2, 4} {
				for _, par := range []bool{false, true} {
					q := p
					q.shards = shards
					q.parallel = par
					label := fmt.Sprintf("%s/shards=%d/parallel=%v", name, shards, par)
					got := runSoak(t, 4242, q)
					for _, v := range got.violations {
						t.Errorf("%s: invariant violated: %s", label, v)
					}
					assertShardInvariant(t, label, base, got)
				}
			}
			t.Logf("%s base: t=%d migrations=%d kills=%d restarts=%d frames=%d dropped=%d retrans=%d",
				name, base.now, base.migrations, base.kills, base.restarts,
				base.netStats.Frames, base.netStats.Dropped, base.netStats.Retransmits)
		})
	}
}

// TestChaosShardedSameSeedReproduces pins bit-level determinism of the
// hardest configuration — lossy, 4 shards, parallel rounds: the same seed
// must reproduce the run exactly, down to the full obs snapshot (pool
// gauges included), the timeline JSON, the event count, and the clock.
func TestChaosShardedSameSeedReproduces(t *testing.T) {
	p := shardedParams()
	p.shards = 4
	p.parallel = true
	a := runSoak(t, 99, p)
	b := runSoak(t, 99, p)
	if a.fired != b.fired || a.now != b.now {
		t.Fatalf("engines diverged: fired %d/%d, now %d/%d", a.fired, b.fired, a.now, b.now)
	}
	if !reflect.DeepEqual(a.trace, b.trace) {
		t.Fatalf("injector trace diverged:\nA: %v\nB: %v", a.trace, b.trace)
	}
	if !reflect.DeepEqual(a.seen, b.seen) || a.recLost != b.recLost {
		t.Fatal("delivery ledger diverged")
	}
	if !reflect.DeepEqual(a.netStats, b.netStats) {
		t.Fatalf("net stats diverged:\nA: %+v\nB: %+v", a.netStats, b.netStats)
	}
	if !bytes.Equal(a.obsText, b.obsText) {
		t.Fatal("obs text export diverged between same-seed sharded runs")
	}
	if !bytes.Equal(a.timeline, b.timeline) {
		t.Fatal("timeline export diverged between same-seed sharded runs")
	}
}

// TestShardChaosScale1000 is the acceptance soak: 1000 machines, 4 shards,
// parallel rounds, lossy links, partitions, loss bursts, duplicates,
// delays, and kill-point crashes covering all 8 migration kill-points —
// with every invariant, the delivery audit, and the registry cross-check
// holding at quiescence. In full mode a 2-shard rerun of the same seed
// must match the 4-shard run on every shard-count-invariant artifact.
func TestShardChaosScale1000(t *testing.T) {
	p := soakParams{
		machines:   1000,
		migrations: 300,
		sends:      200,
		maxKills:   16,
		chaosOn:    true,
		lossy:      true,
		shards:     4,
		parallel:   true,
		// Confine the migrating fleet to machines 1..16: with maxKills=16
		// the injector budgets one kill per fleet machine and the per-machine
		// kill-point cursors (m-1)%8 cover all 8 points.
		migrateSpan: 16,
	}
	if testing.Short() {
		p.migrations = 100
		p.sends = 100
	}
	res := runSoak(t, 20260808, p)
	for _, v := range res.violations {
		t.Errorf("invariant violated: %s", v)
	}
	for _, v := range res.delivery {
		t.Errorf("delivery audit: %s", v)
	}
	if res.crashedLeft != 0 {
		t.Errorf("%d machines still crashed at quiescence", res.crashedLeft)
	}
	if res.kills == 0 {
		t.Fatalf("injector never fired a kill (migrations=%d)", res.migrations)
	}
	if res.restarts == 0 {
		t.Fatal("no kernel ever restarted")
	}
	if res.netStats.Dropped == 0 || res.netStats.Retransmits == 0 {
		t.Fatalf("fault plane idle at scale: dropped=%d retransmits=%d",
			res.netStats.Dropped, res.netStats.Retransmits)
	}
	if !testing.Short() {
		for _, kp := range kernel.KillPoints() {
			if res.killCounts[kp] == 0 {
				t.Errorf("kill-point %v never exercised at scale (counts: %v)", kp, res.killCounts)
			}
		}
		q := p
		q.shards = 2
		q.parallel = false
		other := runSoak(t, 20260808, q)
		assertShardInvariant(t, "scale/shards=2", res, other)
	}
	t.Logf("scale soak: t=%d fired=%d migrations=%d kills=%d restarts=%d frames=%d dropped=%d retrans=%d",
		res.now, res.fired, res.migrations, res.kills, res.restarts,
		res.netStats.Frames, res.netStats.Dropped, res.netStats.Retransmits)
}

package chaos_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/chaos"
	"demosmp/internal/core"
	"demosmp/internal/kernel"
	"demosmp/internal/netw"
	"demosmp/internal/obs"
	"demosmp/internal/sim"
	"demosmp/internal/workload"
)

// soakParams sizes one chaos soak.
type soakParams struct {
	machines   int
	migrations int // migration attempts scheduled
	sends      int // sequence-stamped user messages
	maxKills   int
	chaosOn    bool
	lossy      bool
	shards     int // 0 = classic single-engine runtime
}

func fullParams() soakParams {
	return soakParams{machines: 4, migrations: 400, sends: 300, maxKills: 16, chaosOn: true, lossy: true}
}

func shortParams() soakParams {
	return soakParams{machines: 3, migrations: 40, sends: 80, maxKills: 8, chaosOn: true, lossy: true}
}

// soakResult is everything a determinism comparison needs.
type soakResult struct {
	fired       uint64
	now         sim.Time
	trace       []string
	kills       int
	killCounts  map[kernel.KillPoint]int
	migrations  uint64
	restarts    uint64
	seen        map[uint32]uint32
	recLost     bool
	violations  []string
	delivery    []string
	netFrames   uint64
	crashedLeft int

	// Post-run obs exports, byte-for-byte comparable across same-seed
	// runs: the text metrics snapshot and the Chrome timeline JSON.
	obsText  []byte
	timeline []byte

	// The quiescent cluster itself, for audits that need direct reads.
	cluster *core.Cluster
}

// runSoak builds a cluster, spawns a Recorder plus a movable fleet, drives
// migrations and a sequence-stamped message stream at it through stale
// addresses, lets the chaos injector crash/partition/burst throughout,
// then runs to quiescence and audits.
func runSoak(t *testing.T, seed int64, p soakParams) soakResult {
	t.Helper()
	ncfg := netw.Config{}
	if p.lossy {
		ncfg = netw.Config{LossRate: 0.04, RetransTimeout: 3000, MaxRetries: 200}
	}
	c, err := core.New(core.Options{
		Machines: p.machines,
		Seed:     seed,
		Net:      ncfg,
		Shards:   p.shards,
		Kernel:   kernel.Config{MigrateTimeout: 400_000, CheckpointOnArrival: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := c.Engine()

	recPID, err := c.Spawn(1, kernel.SpawnSpec{Body: &workload.Recorder{}})
	if err != nil {
		t.Fatal(err)
	}
	fleet := []addr.ProcessID{recPID}
	for i := 0; i < 6; i++ {
		pid, err := c.Spawn(1+i%p.machines, kernel.SpawnSpec{Body: &workload.Null{}})
		if err != nil {
			t.Fatal(err)
		}
		fleet = append(fleet, pid)
	}

	// The driver's randomness is its own stream, like the injector's, so
	// victim choice never depends on simulation-internal draws.
	rng := rand.New(rand.NewSource(seed + 1))
	var horizon sim.Time
	for i := 0; i < p.migrations; i++ {
		at := sim.Time(4_000 + i*6_000)
		victim := fleet[rng.Intn(len(fleet))]
		dest := 1 + rng.Intn(p.machines)
		eng.At(at, "drive:migrate", func() { _ = c.Migrate(victim, dest) })
		if at > horizon {
			horizon = at
		}
	}
	for i := 0; i < p.sends; i++ {
		at := sim.Time(3_000 + i*4_500)
		seq := uint32(i)
		src := addr.MachineID(1 + i%p.machines)
		eng.At(at, "drive:send", func() {
			body := []byte{byte(seq), byte(seq >> 8), byte(seq >> 16), byte(seq >> 24)}
			// Deliberately stale address: the recorder's birth machine,
			// however many migrations ago that was.
			c.Kernel(int(src)).GiveMessageTo(addr.At(recPID, 1), addr.KernelAddr(src), body)
		})
		if at > horizon {
			horizon = at
		}
	}

	var inj *chaos.Injector
	if p.chaosOn {
		inj = chaos.New(c, chaos.Config{
			Seed:            seed + 7,
			MaxKills:        p.maxKills,
			RestartAfter:    60_000,
			KillAfter:       80_000,
			KillEvery:       60_000,
			PartitionEvery:  60_000,
			PartitionFor:    40_000,
			BurstEvery:      90_000,
			BurstFor:        30_000,
			BurstRate:       0.6,
			DupEvery:        45_000,
			DelayEvery:      35_000,
			DelayExtra:      2_000,
			CheckpointEvery: 30_000,
			// Keep system processes (PM-less here, but switchboard-free
			// boot still has none) out of revival; checkpoint only the
			// test's own fleet kinds.
			CheckpointFilter: func(info kernel.ProcInfo) bool {
				return info.Kind == workload.RecorderKind || info.Kind == workload.NullKind
			},
		})
	}

	// Phase 1: chaos active while the drivers fire.
	c.RunFor(horizon + 50_000)
	// Phase 2: freeze the fault schedule, heal leftovers, drain to
	// quiescence (pending restarts are strong events and still fire).
	if inj != nil {
		inj.Stop()
	}
	c.Run()

	res := soakResult{
		fired:   c.TotalFired(),
		now:     c.Now(),
		seen:    map[uint32]uint32{},
		cluster: c,
	}
	if inj != nil {
		res.trace = inj.Trace()
		res.kills = inj.Kills()
		res.killCounts = inj.KillCounts()
	}
	for m := 1; m <= p.machines; m++ {
		ks := c.Kernel(m).Stats()
		res.migrations += ks.MigrationsOut
		res.restarts += ks.Restarts
		if c.Kernel(m).Crashed() {
			res.crashedLeft++
		}
	}
	res.netFrames = c.NetStats().Frames

	res.recLost = true
	for m := 1; m <= p.machines; m++ {
		if b, ok := c.Kernel(m).BodyOf(recPID); ok {
			if r, ok2 := b.(*workload.Recorder); ok2 && r != nil {
				res.recLost = false
				for s, n := range r.Seen {
					res.seen[s] = n
				}
			}
		}
	}

	// Post-run obs snapshot: exported for the determinism comparison and
	// cross-checked against direct struct reads (including the envelope
	// conservation law re-derived purely from registry values).
	snap := c.ObsSnapshot()
	var sb, tb bytes.Buffer
	if err := snap.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	tl := obs.BuildTimeline(c.TraceRecords(), c.Ledger(), nil)
	if err := tl.WriteJSON(&tb); err != nil {
		t.Fatal(err)
	}
	res.obsText = sb.Bytes()
	res.timeline = tb.Bytes()

	res.violations = chaos.CheckInvariants(c)
	res.violations = append(res.violations, chaos.CheckRegistry(c, snap)...)
	if !res.recLost {
		res.delivery = chaos.CheckDelivery(c, res.seen, uint32(p.sends))
	} else if !pidLost(c, recPID, p.machines) {
		res.violations = append(res.violations,
			fmt.Sprintf("recorder %v vanished without a crash-loss record", recPID))
	}
	return res
}

func pidLost(c *core.Cluster, pid addr.ProcessID, machines int) bool {
	for m := 1; m <= machines; m++ {
		for _, lost := range c.Kernel(m).LostPIDs() {
			if lost == pid {
				return true
			}
		}
		if ks := c.Kernel(m).Stats(); ks.CrashLostProcs > 0 {
			return true // lost pre-revival; LostPIDs cleared if later revived elsewhere
		}
	}
	return false
}

// TestChaosSoak is the headline acceptance run: crashes at migration
// kill-points, partitions, loss bursts, duplicates and delays — and at the
// end every invariant holds and every missing message is accounted for.
func TestChaosSoak(t *testing.T) {
	p := fullParams()
	if testing.Short() {
		p = shortParams()
	}
	res := runSoak(t, 4242, p)

	for _, v := range res.violations {
		t.Errorf("invariant violated: %s", v)
	}
	for _, v := range res.delivery {
		t.Errorf("delivery audit: %s", v)
	}
	if res.crashedLeft != 0 {
		t.Errorf("%d machines still crashed at quiescence (restarts lost?)", res.crashedLeft)
	}
	if res.kills == 0 {
		t.Fatalf("injector never fired a kill (migrations=%d)", res.migrations)
	}
	if res.restarts == 0 {
		t.Fatal("no kernel ever restarted")
	}
	if !testing.Short() {
		if res.migrations < 50 {
			t.Errorf("only %d completed migrations; want >= 50", res.migrations)
		}
		for _, kp := range kernel.KillPoints() {
			if res.killCounts[kp] == 0 {
				t.Errorf("kill-point %v never exercised (counts: %v)", kp, res.killCounts)
			}
		}
	}
	t.Logf("soak: t=%d fired=%d migrations=%d kills=%d restarts=%d frames=%d recLost=%v",
		res.now, res.fired, res.migrations, res.kills, res.restarts, res.netFrames, res.recLost)
}

// TestChaosSameSeedReproduces runs the identical fault schedule twice and
// demands bit-identical outcomes: same event count, same injector log,
// same delivery ledger, same aggregate stats.
func TestChaosSameSeedReproduces(t *testing.T) {
	p := shortParams()
	a := runSoak(t, 99, p)
	b := runSoak(t, 99, p)
	if a.fired != b.fired || a.now != b.now {
		t.Fatalf("engine diverged: fired %d/%d, now %d/%d", a.fired, b.fired, a.now, b.now)
	}
	if !reflect.DeepEqual(a.trace, b.trace) {
		t.Fatalf("injector trace diverged:\nA: %v\nB: %v", a.trace, b.trace)
	}
	if !reflect.DeepEqual(a.seen, b.seen) || a.recLost != b.recLost {
		t.Fatalf("delivery ledger diverged")
	}
	if a.migrations != b.migrations || a.restarts != b.restarts || a.kills != b.kills ||
		a.netFrames != b.netFrames {
		t.Fatalf("stats diverged: migrations %d/%d restarts %d/%d kills %d/%d frames %d/%d",
			a.migrations, b.migrations, a.restarts, b.restarts, a.kills, b.kills,
			a.netFrames, b.netFrames)
	}
}

// TestNoFaultStrict runs the same harness with the injector disabled on a
// lossless network: delivery must be exactly-once (zero missing, zero
// duplicates) and every invariant clean — the control arm proving the
// audits themselves aren't vacuous.
func TestNoFaultStrict(t *testing.T) {
	p := shortParams()
	p.chaosOn = false
	p.lossy = false
	p.maxKills = 0
	res := runSoak(t, 7, p)
	for _, v := range res.violations {
		t.Errorf("invariant violated: %s", v)
	}
	for _, v := range res.delivery {
		t.Errorf("delivery audit: %s", v)
	}
	if res.recLost {
		t.Fatal("recorder lost without faults")
	}
	var missing int
	for s := uint32(0); s < uint32(p.sends); s++ {
		if res.seen[s] == 0 {
			missing++
		}
	}
	if missing != 0 {
		t.Fatalf("%d sequences missing in a no-fault run", missing)
	}
	if res.restarts != 0 || res.kills != 0 {
		t.Fatalf("faults fired in the no-fault arm: kills=%d restarts=%d", res.kills, res.restarts)
	}
}

// shardedParams is the 2-shard soak configuration: lossless (the sharded
// runtime rejects the ARQ) with the full crash/partition/burst/delay
// schedule otherwise intact, on sequential rounds (the injector's control
// pulses mutate kernels across shard boundaries).
func shardedParams() soakParams {
	p := shortParams()
	p.lossy = false
	p.shards = 2
	p.machines = 4
	return p
}

// TestChaosSoakSharded runs the chaos schedule against the 2-shard runtime:
// kill-point crashes, partitions, bursts, and delays crossing the shard
// boundary, with every invariant and the delivery audit holding at
// quiescence — including the orphan accounting for cross-shard clones that
// die against a crashed machine.
func TestChaosSoakSharded(t *testing.T) {
	res := runSoak(t, 4242, shardedParams())
	for _, v := range res.violations {
		t.Errorf("invariant violated: %s", v)
	}
	for _, v := range res.delivery {
		t.Errorf("delivery audit: %s", v)
	}
	if res.crashedLeft != 0 {
		t.Errorf("%d machines still crashed at quiescence", res.crashedLeft)
	}
	if res.kills == 0 {
		t.Fatalf("injector never fired a kill on the sharded runtime (migrations=%d)", res.migrations)
	}
	if res.restarts == 0 {
		t.Fatal("no kernel ever restarted")
	}
	t.Logf("sharded soak: t=%d fired=%d migrations=%d kills=%d restarts=%d frames=%d recLost=%v",
		res.now, res.fired, res.migrations, res.kills, res.restarts, res.netFrames, res.recLost)
}

// TestChaosShardedSameSeedReproduces pins per-configuration determinism of
// the sharded soak: the same seed and shard count must reproduce the run
// bit-for-bit (shard-COUNT invariance is deliberately not claimed under
// chaos — control pulses run on shard 0's clock).
func TestChaosShardedSameSeedReproduces(t *testing.T) {
	p := shardedParams()
	a := runSoak(t, 99, p)
	b := runSoak(t, 99, p)
	if a.fired != b.fired || a.now != b.now {
		t.Fatalf("engines diverged: fired %d/%d, now %d/%d", a.fired, b.fired, a.now, b.now)
	}
	if !reflect.DeepEqual(a.trace, b.trace) {
		t.Fatalf("injector trace diverged:\nA: %v\nB: %v", a.trace, b.trace)
	}
	if !reflect.DeepEqual(a.seen, b.seen) || a.recLost != b.recLost {
		t.Fatal("delivery ledger diverged")
	}
	if !bytes.Equal(a.obsText, b.obsText) {
		t.Fatal("obs text export diverged between same-seed sharded runs")
	}
	if !bytes.Equal(a.timeline, b.timeline) {
		t.Fatal("timeline export diverged between same-seed sharded runs")
	}
}

package fs

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"

	"demosmp/internal/link"
	"demosmp/internal/proc"
)

// CacheKind is the registry name of the buffer cache body.
const CacheKind = "fs-cache"

// Cache is the buffer manager: a write-through LRU block cache in front of
// the disk driver. Link slot 1 (installed at spawn) must point at the disk.
//
// All replies from cache and disk echo the block id, so requesters can
// correlate out-of-order completions: status(1) + bid(4) [+ data].
type Cache struct {
	DiskLink link.ID
	Capacity int

	Blocks map[uint32][]byte
	LRU    []uint32 // least recent first

	// Waiters hold client reply links per in-flight block id.
	ReadWaiters  map[uint32][]link.ID
	WriteWaiters map[uint32][]link.ID

	Hits, Misses, WriteThroughs uint64
}

// NewCache returns a cache of capacity blocks whose disk link is slot 1.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 64
	}
	return &Cache{
		DiskLink:     1,
		Capacity:     capacity,
		Blocks:       make(map[uint32][]byte),
		ReadWaiters:  make(map[uint32][]link.ID),
		WriteWaiters: make(map[uint32][]link.ID),
	}
}

// Kind implements proc.Body.
func (c *Cache) Kind() string { return CacheKind }

// Step implements proc.Body.
func (c *Cache) Step(ctx proc.Context, budget int) (int, proc.Status) {
	for {
		d, ok := ctx.Recv()
		if !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
		if len(d.Body) < 1 {
			continue
		}
		switch d.Body[0] {
		case OpCGet:
			c.get(ctx, d)
		case OpCPut:
			c.put(ctx, d)
		case StOK, StErr:
			c.diskReply(ctx, d)
		}
	}
}

func (c *Cache) get(ctx proc.Context, d proc.Delivery) {
	if len(d.Body) < 5 || len(d.Carried) == 0 {
		return
	}
	bid := binary.LittleEndian.Uint32(d.Body[1:])
	reply := d.Carried[0]
	if block, ok := c.Blocks[bid]; ok {
		c.Hits++
		c.touch(bid)
		ctx.Send(reply, OKReply(append(binary.LittleEndian.AppendUint32(nil, bid), block...)))
		return
	}
	c.Misses++
	c.ReadWaiters[bid] = append(c.ReadWaiters[bid], reply)
	if len(c.ReadWaiters[bid]) == 1 {
		c.askDisk(ctx, BReadMsg(bid))
	}
}

func (c *Cache) put(ctx proc.Context, d proc.Delivery) {
	if len(d.Body) < 5 || len(d.Carried) == 0 {
		return
	}
	bid := binary.LittleEndian.Uint32(d.Body[1:])
	data := d.Body[5:]
	block := make([]byte, BlockSize)
	copy(block, data)
	c.insert(bid, block)
	c.WriteThroughs++
	c.WriteWaiters[bid] = append(c.WriteWaiters[bid], d.Carried[0])
	c.askDisk(ctx, BWriteMsg(bid, data))
}

// askDisk sends a disk request with a fresh single-use reply link.
func (c *Cache) askDisk(ctx proc.Context, body []byte) {
	reply, err := ctx.CreateLink(link.AttrReply, link.DataArea{})
	if err != nil {
		return
	}
	ctx.Send(c.DiskLink, body, reply)
}

// diskReply fans a disk completion out to the waiting clients.
func (c *Cache) diskReply(ctx proc.Context, d proc.Delivery) {
	if len(d.Body) < 5 {
		return
	}
	ok := d.Body[0] == StOK
	bid := binary.LittleEndian.Uint32(d.Body[1:])
	if !ok && len(c.ReadWaiters[bid]) > 0 {
		// A failed read carries no block, so it is 5 bytes like a
		// write completion; disambiguate by who is waiting.
		waiters := c.ReadWaiters[bid]
		delete(c.ReadWaiters, bid)
		for _, w := range waiters {
			ctx.Send(w, append(ErrReply(), d.Body[1:5]...))
		}
		return
	}
	if len(d.Body) > 5 { // read completion carries the block
		if waiters := c.ReadWaiters[bid]; len(waiters) > 0 {
			delete(c.ReadWaiters, bid)
			var payload []byte
			if ok {
				block := make([]byte, BlockSize)
				copy(block, d.Body[5:])
				c.insert(bid, block)
				payload = OKReply(append(binary.LittleEndian.AppendUint32(nil, bid), block...))
			} else {
				payload = append(ErrReply(), d.Body[1:5]...)
			}
			for _, w := range waiters {
				ctx.Send(w, payload)
			}
		}
		return
	}
	// Write-through completion.
	if waiters := c.WriteWaiters[bid]; len(waiters) > 0 {
		w := waiters[0]
		if len(waiters) == 1 {
			delete(c.WriteWaiters, bid)
		} else {
			c.WriteWaiters[bid] = waiters[1:]
		}
		status := append([]byte{StErr}, d.Body[1:5]...)
		if ok {
			status = OKReply(d.Body[1:5])
		}
		ctx.Send(w, status)
	}
}

func (c *Cache) insert(bid uint32, block []byte) {
	if _, ok := c.Blocks[bid]; !ok && len(c.Blocks) >= c.Capacity {
		// Evict least recently used (write-through keeps it clean).
		victim := c.LRU[0]
		c.LRU = c.LRU[1:]
		delete(c.Blocks, victim)
	}
	c.Blocks[bid] = block
	c.touch(bid)
}

func (c *Cache) touch(bid uint32) {
	for i, b := range c.LRU {
		if b == bid {
			c.LRU = append(c.LRU[:i], c.LRU[i+1:]...)
			break
		}
	}
	c.LRU = append(c.LRU, bid)
}

// Snapshot implements proc.Body.
func (c *Cache) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(c)
	return buf.Bytes(), err
}

// Restore implements proc.Body.
func (c *Cache) Restore(data []byte) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(c)
}

var _ proc.Body = (*Cache)(nil)

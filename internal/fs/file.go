package fs

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"

	"demosmp/internal/link"
	"demosmp/internal/msg"
	"demosmp/internal/proc"
)

// FileKind is the registry name of the file server body.
const FileKind = "fs-file"

// Inode maps a file to its disk blocks.
type Inode struct {
	Size   uint32
	Blocks []uint32
}

// fileOp is one in-flight client read or write. Operations span several
// asynchronous steps (move-data pull, cache fetches, write-throughs, move-
// data push); the Op record is the resumption state between steps — and
// because it lives in the body, an in-flight operation survives migration
// of the file server (the paper's test case).
type fileOp struct {
	Kind  byte // OpFRead or OpFWrite
	FID   uint32
	Off   uint32
	N     uint32
	Reply link.ID
	Area  link.ID
	Data  []byte
	Cur   uint32 // current file-block index
}

// FileServer is the file manager: inodes, open handles, block allocation.
// Link slot 1 (installed at spawn) must point at the buffer cache.
type FileServer struct {
	CacheLink link.ID
	MaxBlocks uint32

	Inodes     map[uint32]*Inode
	NextFID    uint32
	NextBID    uint32
	Handles    map[uint16]uint32
	NextHandle uint16

	Ops     map[uint16]*fileOp
	NextTag uint16
	// BlockWaiters orders in-flight cache requests per block id; cache
	// replies echo the bid and are matched FIFO.
	BlockWaiters map[uint32][]uint16

	ReadsDone, WritesDone uint64
}

// NewFileServer returns a file server whose cache link is slot 1.
func NewFileServer(maxBlocks uint32) *FileServer {
	if maxBlocks == 0 {
		maxBlocks = 10240
	}
	return &FileServer{
		CacheLink:    1,
		MaxBlocks:    maxBlocks,
		Inodes:       make(map[uint32]*Inode),
		NextFID:      1,
		NextBID:      1,
		Handles:      make(map[uint16]uint32),
		NextHandle:   1,
		Ops:          make(map[uint16]*fileOp),
		BlockWaiters: make(map[uint32][]uint16),
	}
}

// Kind implements proc.Body.
func (f *FileServer) Kind() string { return FileKind }

// Step implements proc.Body.
func (f *FileServer) Step(ctx proc.Context, budget int) (int, proc.Status) {
	for {
		d, ok := ctx.Recv()
		if !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
		switch {
		case d.Op == msg.OpMoveReadDone:
			f.moveFromDone(ctx, d)
		case d.Op == msg.OpMoveWriteDone:
			f.moveToDone(ctx, d)
		case len(d.Body) >= 1 && (d.Body[0] == StOK || d.Body[0] == StErr):
			f.cacheReply(ctx, d)
		case len(d.Body) >= 1:
			f.request(ctx, d)
		}
	}
}

func (f *FileServer) request(ctx proc.Context, d proc.Delivery) {
	switch d.Body[0] {
	case OpFAlloc:
		if len(d.Carried) < 1 {
			return
		}
		fid := f.NextFID
		f.NextFID++
		f.Inodes[fid] = &Inode{}
		ctx.Send(d.Carried[0], U32Reply(fid))
	case OpFOpen:
		if len(d.Body) < 5 || len(d.Carried) < 1 {
			return
		}
		fid := binary.LittleEndian.Uint32(d.Body[1:])
		if _, ok := f.Inodes[fid]; !ok {
			ctx.Send(d.Carried[0], ErrReply())
			return
		}
		h := f.NextHandle
		f.NextHandle++
		f.Handles[h] = fid
		ctx.Send(d.Carried[0], U16Reply(h))
	case OpFClose:
		if len(d.Body) < 3 || len(d.Carried) < 1 {
			return
		}
		h := binary.LittleEndian.Uint16(d.Body[1:])
		delete(f.Handles, h)
		ctx.Send(d.Carried[0], OKReply(nil))
	case OpFStat:
		if len(d.Body) < 3 || len(d.Carried) < 1 {
			return
		}
		h := binary.LittleEndian.Uint16(d.Body[1:])
		ino := f.inodeOf(h)
		if ino == nil {
			ctx.Send(d.Carried[0], ErrReply())
			return
		}
		ctx.Send(d.Carried[0], U32Reply(ino.Size))
	case OpFRead, OpFWrite:
		f.startIO(ctx, d)
	}
}

func (f *FileServer) inodeOf(h uint16) *Inode {
	fid, ok := f.Handles[h]
	if !ok {
		return nil
	}
	return f.Inodes[fid]
}

// startIO begins a read or write. The request carries [data area, reply].
func (f *FileServer) startIO(ctx proc.Context, d proc.Delivery) {
	if len(d.Body) < 11 || len(d.Carried) < 2 {
		return
	}
	h := binary.LittleEndian.Uint16(d.Body[1:])
	off := binary.LittleEndian.Uint32(d.Body[3:])
	n := binary.LittleEndian.Uint32(d.Body[7:])
	area, reply := d.Carried[0], d.Carried[1]
	fid, ok := f.Handles[h]
	if !ok {
		ctx.DestroyLink(area)
		ctx.Send(reply, ErrReply())
		return
	}
	op := &fileOp{Kind: d.Body[0], FID: fid, Off: off, N: n, Reply: reply, Area: area}
	f.NextTag++
	tag := f.NextTag
	f.Ops[tag] = op

	if op.Kind == OpFWrite {
		if n == 0 {
			f.finishOp(ctx, tag, op, true, 0)
			return
		}
		// Pull the client's bytes through its data area (§2.2: "the
		// mechanism for large data transfers, such as file accesses").
		if err := ctx.MoveFrom(area, 0, n, tag); err != nil {
			f.finishOp(ctx, tag, op, false, 0)
		}
		return
	}
	// Read: clip to file size, assemble, then push through the area.
	ino := f.Inodes[fid]
	if off >= ino.Size {
		op.N = 0
	} else if off+n > ino.Size {
		op.N = ino.Size - off
	}
	if op.N == 0 {
		f.finishOp(ctx, tag, op, true, 0)
		return
	}
	op.Data = make([]byte, op.N)
	op.Cur = op.Off / BlockSize
	f.advanceRead(ctx, tag, op)
}

// moveFromDone continues a write once the client's data has arrived.
func (f *FileServer) moveFromDone(ctx proc.Context, d proc.Delivery) {
	tag := d.Xfer
	op, ok := f.Ops[tag]
	if !ok || op.Kind != OpFWrite {
		return
	}
	if !d.OK {
		f.finishOp(ctx, tag, op, false, 0)
		return
	}
	op.Data = append([]byte(nil), d.Data...)
	ino := f.Inodes[op.FID]
	// Allocate blocks to cover the write.
	endBlock := (op.Off + op.N - 1) / BlockSize
	for uint32(len(ino.Blocks)) <= endBlock {
		if f.NextBID >= f.MaxBlocks {
			f.finishOp(ctx, tag, op, false, 0)
			return
		}
		ino.Blocks = append(ino.Blocks, f.NextBID)
		f.NextBID++
	}
	op.Cur = op.Off / BlockSize
	f.advanceWrite(ctx, tag, op, nil)
}

// advanceWrite processes file blocks in order. prevBlock, when non-nil, is
// the old content of block op.Cur fetched for a partial overwrite.
func (f *FileServer) advanceWrite(ctx proc.Context, tag uint16, op *fileOp, prevBlock []byte) {
	ino := f.Inodes[op.FID]
	end := op.Off + op.N
	for {
		blockStart := op.Cur * BlockSize
		if blockStart >= end {
			ino.Size = max32(ino.Size, end)
			f.WritesDone++
			f.finishOp(ctx, tag, op, true, op.N)
			return
		}
		bid := ino.Blocks[op.Cur]
		lo := max32(op.Off, blockStart)
		hi := min32(end, blockStart+BlockSize)
		full := lo == blockStart && hi == blockStart+BlockSize
		grewPast := blockStart >= ino.Size // block never held data
		if !full && !grewPast && prevBlock == nil {
			// Partial overwrite of existing data: read-modify-write.
			f.BlockWaiters[bid] = append(f.BlockWaiters[bid], tag)
			f.askCache(ctx, CGetMsg(bid))
			return
		}
		block := make([]byte, BlockSize)
		copy(block, prevBlock)
		prevBlock = nil
		copy(block[lo-blockStart:], op.Data[lo-op.Off:hi-op.Off])
		f.BlockWaiters[bid] = append(f.BlockWaiters[bid], tag)
		f.askCache(ctx, CPutMsg(bid, block))
		return // resume from the put acknowledgement
	}
}

// advanceRead fetches blocks until one needs the cache or assembly is done.
func (f *FileServer) advanceRead(ctx proc.Context, tag uint16, op *fileOp) {
	ino := f.Inodes[op.FID]
	end := op.Off + op.N
	for {
		blockStart := op.Cur * BlockSize
		if blockStart >= end {
			// Assembly complete: push to the client's area.
			if err := ctx.MoveTo(op.Area, 0, op.Data, tag); err != nil {
				f.finishOp(ctx, tag, op, false, 0)
			}
			return
		}
		if op.Cur < uint32(len(ino.Blocks)) {
			bid := ino.Blocks[op.Cur]
			f.BlockWaiters[bid] = append(f.BlockWaiters[bid], tag)
			f.askCache(ctx, CGetMsg(bid))
			return
		}
		// Hole past the last block: zeros, already in place.
		op.Cur++
	}
}

// cacheReply resumes the op waiting on this block id.
func (f *FileServer) cacheReply(ctx proc.Context, d proc.Delivery) {
	if len(d.Body) < 5 {
		return
	}
	ok := d.Body[0] == StOK
	bid := binary.LittleEndian.Uint32(d.Body[1:])
	waiters := f.BlockWaiters[bid]
	if len(waiters) == 0 {
		return
	}
	tag := waiters[0]
	if len(waiters) == 1 {
		delete(f.BlockWaiters, bid)
	} else {
		f.BlockWaiters[bid] = waiters[1:]
	}
	op, live := f.Ops[tag]
	if !live {
		return
	}
	if !ok {
		f.finishOp(ctx, tag, op, false, 0)
		return
	}
	if op.Kind == OpFWrite {
		if len(d.Body) > 5 {
			// Old block content for a read-modify-write.
			f.advanceWrite(ctx, tag, op, d.Body[5:])
		} else {
			// Put acknowledged: next block.
			op.Cur++
			f.advanceWrite(ctx, tag, op, nil)
		}
		return
	}
	// Read: copy the fetched block's relevant slice into the assembly.
	if len(d.Body) > 5 {
		block := d.Body[5:]
		blockStart := op.Cur * BlockSize
		end := op.Off + op.N
		lo := max32(op.Off, blockStart)
		hi := min32(end, blockStart+BlockSize)
		copy(op.Data[lo-op.Off:hi-op.Off], block[lo-blockStart:hi-blockStart])
	}
	op.Cur++
	f.advanceRead(ctx, tag, op)
}

// moveToDone completes a read once the client's area has been filled.
func (f *FileServer) moveToDone(ctx proc.Context, d proc.Delivery) {
	op, ok := f.Ops[d.Xfer]
	if !ok || op.Kind != OpFRead {
		return
	}
	f.ReadsDone++
	f.finishOp(ctx, d.Xfer, op, d.OK, op.N)
}

func (f *FileServer) finishOp(ctx proc.Context, tag uint16, op *fileOp, ok bool, n uint32) {
	delete(f.Ops, tag)
	if op.Area != link.NilID {
		ctx.DestroyLink(op.Area)
	}
	if ok {
		ctx.Send(op.Reply, U32Reply(n))
	} else {
		ctx.Send(op.Reply, ErrReply())
	}
}

func (f *FileServer) askCache(ctx proc.Context, body []byte) {
	reply, err := ctx.CreateLink(link.AttrReply, link.DataArea{})
	if err != nil {
		return
	}
	ctx.Send(f.CacheLink, body, reply)
}

func max32(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}

func min32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

// Snapshot implements proc.Body.
func (f *FileServer) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(f)
	return buf.Bytes(), err
}

// Restore implements proc.Body.
func (f *FileServer) Restore(data []byte) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(f)
}

var _ proc.Body = (*FileServer)(nil)

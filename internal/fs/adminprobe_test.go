package fs_test

import (
	"demosmp/internal/fs"
	"demosmp/internal/link"
	"demosmp/internal/proc"
)

// adminProbe exercises create/open/write/stat/list/remove/lookup in order.
type adminProbe struct {
	State             int
	H                 uint16
	Area              link.ID
	Size              uint32
	Listing           string
	RemovedOK         bool
	LookupAfterRemove bool
}

func (p *adminProbe) Kind() string { return "fs-admin-probe" }

func (p *adminProbe) ask(ctx proc.Context, on link.ID, body []byte, extra ...link.ID) {
	reply, _ := ctx.CreateLink(link.AttrReply, link.DataArea{})
	ctx.Send(on, body, append(extra, reply)...)
}

func (p *adminProbe) Step(ctx proc.Context, budget int) (int, proc.Status) {
	if p.State == 0 {
		p.Area, _ = ctx.CreateLink(link.AttrDataRead|link.AttrDataWrite, link.DataArea{Length: 256})
		p.ask(ctx, 1, fs.DCreateMsg("doomed"))
		p.State = 1
	}
	for {
		d, ok := ctx.Recv()
		if !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
		okRep, payload, err := fs.ParseReply(d.Body)
		if err != nil {
			continue
		}
		switch p.State {
		case 1: // created
			fid, _ := fs.ParseU32(payload)
			p.ask(ctx, 2, fs.FOpenMsg(fid))
			p.State = 2
		case 2: // opened: write 700 bytes in three chunks of <=256
			p.H, _ = fs.ParseU16(payload)
			buf := make([]byte, 256)
			ctx.ImageWrite(0, buf)
			p.ask(ctx, 2, fs.FIOMsg(fs.OpFWrite, p.H, 0, 256), p.Area)
			p.State = 3
		case 3:
			p.ask(ctx, 2, fs.FIOMsg(fs.OpFWrite, p.H, 256, 256), p.Area)
			p.State = 4
		case 4:
			p.ask(ctx, 2, fs.FIOMsg(fs.OpFWrite, p.H, 512, 188), p.Area)
			p.State = 5
		case 5: // stat
			p.ask(ctx, 2, fs.FStatMsg(p.H))
			p.State = 6
		case 6: // stat reply
			p.Size, _ = fs.ParseU32(payload)
			p.ask(ctx, 1, fs.DListMsg())
			p.State = 7
		case 7: // listing
			if okRep {
				p.Listing = string(payload)
			}
			p.ask(ctx, 1, fs.DRemoveMsg("doomed"))
			p.State = 8
		case 8: // removed
			p.RemovedOK = okRep
			p.ask(ctx, 1, fs.DLookupMsg("doomed"))
			p.State = 9
		case 9: // lookup after remove must fail
			p.LookupAfterRemove = okRep
			return 0, proc.Status{State: proc.Exited}
		}
	}
}

func (p *adminProbe) Snapshot() ([]byte, error) { return nil, nil }
func (p *adminProbe) Restore([]byte) error      { return nil }

// Package fs implements the DEMOS/MP file system as four cooperating
// server processes — directory server, file server, buffer cache, and disk
// driver — mirroring "the file system (actually, four processes)" of §2.3.
//
// Large data moves between clients and the file server go through link
// data areas using the kernel move-data facility, as in the paper ("This is
// the mechanism for large data transfers, such as file accesses"). All
// four servers are ordinary migratable bodies; the paper's test example —
// "It migrates a file system process while several user processes are
// performing I/O" — is reproduced in the E6 experiment.
package fs

import (
	"encoding/binary"
	"fmt"
)

// BlockSize is the disk block size in bytes.
const BlockSize = 512

// Request opcodes. Directory server and file server each understand their
// own subset; the first body byte selects the operation.
const (
	// Directory server.
	OpDCreate = 'C' // name; reply: status + fid(4)
	OpDLookup = 'G' // name; reply: status + fid(4)
	OpDRemove = 'X' // name; reply: status
	OpDList   = 'D' // reply: status + newline-joined names

	// File server (client-facing).
	OpFOpen  = 'O' // fid(4); reply: status + handle(2)
	OpFClose = 'K' // handle(2); reply: status
	OpFRead  = 'R' // handle(2) off(4) len(4); carries [data area link, reply]; reply: status + n(4)
	OpFWrite = 'W' // handle(2) off(4) len(4); carries [data area link, reply]; reply: status + n(4)
	OpFStat  = 'T' // handle(2); reply: status + size(4)
	OpFAlloc = 'A' // (from dir server) reply: status + fid(4)

	// Buffer cache.
	OpCGet = 'g' // bid(4); reply: status + block data
	OpCPut = 'p' // bid(4) + data; reply: status

	// Disk driver.
	OpBRead  = 'r' // bid(4); reply: status + block data
	OpBWrite = 'w' // bid(4) + data; reply: status
)

// Status bytes beginning every reply.
const (
	StOK   = 0
	StErr  = 1
	StBusy = 2
)

// --- request builders --------------------------------------------------------

func nameReq(op byte, name string) []byte { return append([]byte{op}, name...) }

// DCreateMsg builds a create-file request.
func DCreateMsg(name string) []byte { return nameReq(OpDCreate, name) }

// DLookupMsg builds a lookup request.
func DLookupMsg(name string) []byte { return nameReq(OpDLookup, name) }

// DRemoveMsg builds a remove request.
func DRemoveMsg(name string) []byte { return nameReq(OpDRemove, name) }

// DListMsg builds a directory listing request.
func DListMsg() []byte { return []byte{OpDList} }

// FOpenMsg builds an open request.
func FOpenMsg(fid uint32) []byte {
	return binary.LittleEndian.AppendUint32([]byte{OpFOpen}, fid)
}

// FCloseMsg builds a close request.
func FCloseMsg(h uint16) []byte {
	return binary.LittleEndian.AppendUint16([]byte{OpFClose}, h)
}

// FStatMsg builds a stat request.
func FStatMsg(h uint16) []byte {
	return binary.LittleEndian.AppendUint16([]byte{OpFStat}, h)
}

// FAllocMsg builds an inode allocation request (directory server internal).
func FAllocMsg() []byte { return []byte{OpFAlloc} }

// FIOMsg builds a read or write request (op is OpFRead or OpFWrite).
// The message must carry [data-area link, reply link] in that order.
func FIOMsg(op byte, h uint16, off, n uint32) []byte {
	b := binary.LittleEndian.AppendUint16([]byte{op}, h)
	b = binary.LittleEndian.AppendUint32(b, off)
	return binary.LittleEndian.AppendUint32(b, n)
}

// CGetMsg builds a cache block-read request.
func CGetMsg(bid uint32) []byte {
	return binary.LittleEndian.AppendUint32([]byte{OpCGet}, bid)
}

// CPutMsg builds a cache write-through request.
func CPutMsg(bid uint32, data []byte) []byte {
	b := binary.LittleEndian.AppendUint32([]byte{OpCPut}, bid)
	return append(b, data...)
}

// BReadMsg builds a raw disk read.
func BReadMsg(bid uint32) []byte {
	return binary.LittleEndian.AppendUint32([]byte{OpBRead}, bid)
}

// BWriteMsg builds a raw disk write.
func BWriteMsg(bid uint32, data []byte) []byte {
	b := binary.LittleEndian.AppendUint32([]byte{OpBWrite}, bid)
	return append(b, data...)
}

// --- reply helpers -----------------------------------------------------------

// OKReply builds a status-OK reply with payload.
func OKReply(payload []byte) []byte { return append([]byte{StOK}, payload...) }

// ErrReply builds a status-error reply.
func ErrReply() []byte { return []byte{StErr} }

// ParseReply splits a reply into success flag and payload.
func ParseReply(body []byte) (ok bool, payload []byte, err error) {
	if len(body) < 1 {
		return false, nil, fmt.Errorf("fs: empty reply")
	}
	return body[0] == StOK, body[1:], nil
}

// U32Reply builds an OK reply holding one uint32.
func U32Reply(v uint32) []byte {
	return binary.LittleEndian.AppendUint32([]byte{StOK}, v)
}

// ParseU32 extracts the uint32 from an OK reply payload.
func ParseU32(payload []byte) (uint32, error) {
	if len(payload) < 4 {
		return 0, fmt.Errorf("fs: short u32 payload")
	}
	return binary.LittleEndian.Uint32(payload), nil
}

// U16Reply builds an OK reply holding one uint16.
func U16Reply(v uint16) []byte {
	return binary.LittleEndian.AppendUint16([]byte{StOK}, v)
}

// ParseU16 extracts the uint16 from an OK reply payload.
func ParseU16(payload []byte) (uint16, error) {
	if len(payload) < 2 {
		return 0, fmt.Errorf("fs: short u16 payload")
	}
	return binary.LittleEndian.Uint16(payload), nil
}

package fs_test

import (
	"fmt"
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/fs"
	"demosmp/internal/kernel"
	"demosmp/internal/link"
	"demosmp/internal/netw"
	"demosmp/internal/proc"
	"demosmp/internal/sim"
	"demosmp/internal/trace"
)

// rig boots a cluster with the four file system processes on fsMachine.
type rig struct {
	t    *testing.T
	eng  *sim.Engine
	tr   *trace.Tracer
	ks   map[addr.MachineID]*kernel.Kernel
	disk addr.ProcessID
	cach addr.ProcessID
	file addr.ProcessID
	dir  addr.ProcessID
}

func newRig(t *testing.T, machines, fsMachine int) *rig {
	t.Helper()
	eng := sim.NewEngine(11)
	net := netw.New(eng, netw.Config{})
	tr := trace.New(eng.Now, 0)
	reg := proc.NewRegistry()
	reg.Register(fs.DiskKind, func() proc.Body { return fs.NewDisk(fs.DiskGeometry{}) })
	reg.Register(fs.CacheKind, func() proc.Body { return fs.NewCache(0) })
	reg.Register(fs.FileKind, func() proc.Body { return fs.NewFileServer(0) })
	reg.Register(fs.DirKind, func() proc.Body { return fs.NewDir() })
	reg.Register(fs.ClientKind, func() proc.Body { return &fs.Client{} })

	r := &rig{t: t, eng: eng, tr: tr, ks: map[addr.MachineID]*kernel.Kernel{}}
	for i := 1; i <= machines; i++ {
		r.ks[addr.MachineID(i)] = kernel.New(addr.MachineID(i), eng, net,
			kernel.Config{Tracer: tr, Registry: reg})
	}
	fsm := addr.MachineID(fsMachine)
	k := r.ks[fsm]
	var err error
	r.disk, err = k.Spawn(kernel.SpawnSpec{Body: fs.NewDisk(fs.DefaultGeometry())})
	must(t, err)
	r.cach, err = k.Spawn(kernel.SpawnSpec{Body: fs.NewCache(32),
		Links: []link.Link{{Addr: addr.At(r.disk, fsm)}}})
	must(t, err)
	r.file, err = k.Spawn(kernel.SpawnSpec{Body: fs.NewFileServer(0),
		Links: []link.Link{{Addr: addr.At(r.cach, fsm)}}})
	must(t, err)
	r.dir, err = k.Spawn(kernel.SpawnSpec{Body: fs.NewDir(),
		Links: []link.Link{{Addr: addr.At(r.file, fsm)}}})
	must(t, err)
	return r
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func (r *rig) k(m int) *kernel.Kernel { return r.ks[addr.MachineID(m)] }

// client spawns a scripted client on machine m. The dir/file links point at
// the servers' *birth* machine — intentionally stale if they have migrated.
func (r *rig) client(m int, file string, rounds int, size uint32, fsHome int) addr.ProcessID {
	r.t.Helper()
	c := fs.NewClient(file, rounds, size)
	pid, err := r.k(m).Spawn(kernel.SpawnSpec{
		Body:      c,
		ImageSize: int(size),
		Links: []link.Link{
			{Addr: addr.At(r.dir, addr.MachineID(fsHome))},
			{Addr: addr.At(r.file, addr.MachineID(fsHome))},
		},
	})
	must(r.t, err)
	return pid
}

func (r *rig) exitOf(pid addr.ProcessID) kernel.ExitInfo {
	r.t.Helper()
	for _, k := range r.ks {
		if e, ok := k.Exit(pid); ok {
			return e
		}
	}
	r.t.Fatalf("process %v never exited\ntrace:\n%s", pid, r.tr.String())
	return kernel.ExitInfo{}
}

func TestSingleClientWriteReadVerify(t *testing.T) {
	r := newRig(t, 2, 1)
	pid := r.client(2, "alpha", 3, 700, 1) // spans two blocks
	r.eng.Run()
	e := r.exitOf(pid)
	if e.Code != 3 {
		t.Fatalf("verified %d/3 rounds; console: %v", e.Code, r.k(2).Console(pid))
	}
}

func TestMultiBlockStridedFile(t *testing.T) {
	r := newRig(t, 2, 1)
	c := fs.NewClient("big", 8, 1500)
	c.Stride = true
	pid, err := r.k(2).Spawn(kernel.SpawnSpec{
		Body: c, ImageSize: 1500,
		Links: []link.Link{
			{Addr: addr.At(r.dir, 1)},
			{Addr: addr.At(r.file, 1)},
		},
	})
	must(t, err)
	r.eng.Run()
	if e := r.exitOf(pid); e.Code != 8 {
		t.Fatalf("verified %d/8 strided rounds", e.Code)
	}
}

func TestManyClientsSharedServer(t *testing.T) {
	r := newRig(t, 4, 1)
	var pids []addr.ProcessID
	for i := 0; i < 6; i++ {
		m := 2 + i%3
		pids = append(pids, r.client(m, fmt.Sprintf("f%d", i), 4, 600, 1))
	}
	r.eng.Run()
	for _, pid := range pids {
		if e := r.exitOf(pid); e.Code != 4 {
			t.Fatalf("client %v verified %d/4", pid, e.Code)
		}
	}
	// The disk actually saw traffic.
	body, ok := r.k(1).BodyOf(r.disk)
	if !ok {
		t.Fatal("disk gone")
	}
	d := body.(*fs.Disk)
	if d.Writes == 0 {
		t.Fatalf("disk writes=%d; write-through never reached the platter", d.Writes)
	}
	// Reads are all absorbed by the cache at this working-set size.
	cbody, _ := r.k(1).BodyOf(r.cach)
	if c := cbody.(*fs.Cache); c.Hits == 0 {
		t.Fatal("no cache hits across six clients")
	}
}

func TestCacheHitPath(t *testing.T) {
	r := newRig(t, 2, 1)
	// Two clients reading/writing the same small file region repeatedly
	// should produce cache hits.
	p1 := r.client(2, "hot", 6, 300, 1)
	r.eng.Run()
	if e := r.exitOf(p1); e.Code != 6 {
		t.Fatalf("verified %d/6", e.Code)
	}
	body, _ := r.k(1).BodyOf(r.cach)
	c := body.(*fs.Cache)
	if c.Hits == 0 {
		t.Fatalf("no cache hits (misses=%d)", c.Misses)
	}
}

func TestDirOperations(t *testing.T) {
	r := newRig(t, 2, 1)
	// Two clients with the same file name share the file (create is
	// idempotent naming).
	p1 := r.client(2, "shared", 2, 256, 1)
	r.eng.Run()
	p2 := r.client(2, "shared", 2, 256, 1)
	r.eng.Run()
	if e := r.exitOf(p1); e.Code != 2 {
		t.Fatalf("p1 verified %d", e.Code)
	}
	if e := r.exitOf(p2); e.Code != 2 {
		t.Fatalf("p2 verified %d", e.Code)
	}
	body, _ := r.k(1).BodyOf(r.dir)
	d := body.(*fs.Dir)
	if len(d.Names) != 1 {
		t.Fatalf("directory has %d names, want 1 shared entry", len(d.Names))
	}
}

// TestE6MigrateFileServerUnderLoad is the paper's own test example (§2.3):
// "It migrates a file system process while several user processes are
// performing I/O. This is more difficult than moving a user process."
func TestE6MigrateFileServerUnderLoad(t *testing.T) {
	r := newRig(t, 3, 1)
	var pids []addr.ProcessID
	for i := 0; i < 4; i++ {
		pids = append(pids, r.client(2+i%2, fmt.Sprintf("io%d", i), 10, 600, 1))
	}
	// Let I/O get going, then migrate the file server m1 -> m3 mid-storm.
	r.eng.RunFor(80000)
	r.k(3).RequestMigrationOf(addr.At(r.file, 1), 3)
	r.eng.Run()

	// The file server must now live on m3...
	info, ok := r.k(3).Process(r.file)
	if !ok || info.Kind != fs.FileKind {
		t.Fatalf("file server not on m3: %+v (ok=%v)", info, ok)
	}
	// ...and every client's every round must still verify: no lost or
	// corrupted operations.
	for _, pid := range pids {
		if e := r.exitOf(pid); e.Code != 10 {
			t.Fatalf("client %v verified %d/10 after file-server migration", pid, e.Code)
		}
	}
	// The forwarding machinery was actually exercised.
	if f := r.k(1).Stats().Forwarded + r.k(1).Stats().ForwardedPending; f == 0 {
		t.Fatal("file server migrated without any message forwarding — test migrated too early/late")
	}
}

// TestMigrateWholeFileSystem moves all four server processes one by one
// while a client works.
func TestMigrateWholeFileSystem(t *testing.T) {
	r := newRig(t, 3, 1)
	pid := r.client(2, "journey", 12, 512, 1)
	r.eng.RunFor(60000)
	for i, srv := range []addr.ProcessID{r.disk, r.cach, r.file, r.dir} {
		r.k(3).RequestMigrationOf(addr.At(srv, 1), 3)
		r.eng.RunFor(sim.Time(40000 + i*1000))
	}
	r.eng.Run()
	if e := r.exitOf(pid); e.Code != 12 {
		t.Fatalf("verified %d/12 with the whole FS migrating", e.Code)
	}
	for _, srv := range []addr.ProcessID{r.disk, r.cach, r.file, r.dir} {
		if _, ok := r.k(3).Process(srv); !ok {
			t.Fatalf("server %v did not arrive on m3", srv)
		}
	}
}

func TestReadBeyondEOF(t *testing.T) {
	r := newRig(t, 1, 1)
	// A raw probe: create, open, read an empty file.
	pr := &probe{}
	pid, err := r.k(1).Spawn(kernel.SpawnSpec{
		Body: pr, ImageSize: 256,
		Links: []link.Link{
			{Addr: addr.At(r.dir, 1)},
			{Addr: addr.At(r.file, 1)},
		},
	})
	must(t, err)
	r.eng.Run()
	if _, ok := r.k(1).Exit(pid); !ok {
		t.Fatal("probe never finished")
	}
	if pr.ReadN != 0 {
		t.Fatalf("read %d bytes from an empty file", pr.ReadN)
	}
}

// probe creates+opens a file and reads from an empty region.
type probe struct {
	State int
	H     uint16
	ReadN uint32
	Area  link.ID
}

func (p *probe) Kind() string { return "fs-probe" }

func (p *probe) Step(ctx proc.Context, budget int) (int, proc.Status) {
	if p.State == 0 {
		p.State = 1
		p.Area, _ = ctx.CreateLink(link.AttrDataRead|link.AttrDataWrite, link.DataArea{Length: 256})
		reply, _ := ctx.CreateLink(link.AttrReply, link.DataArea{})
		ctx.Send(1, fs.DCreateMsg("empty"), reply)
	}
	for {
		d, ok := ctx.Recv()
		if !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
		_, payload, err := fs.ParseReply(d.Body)
		if err != nil {
			continue
		}
		switch p.State {
		case 1:
			fid, _ := fs.ParseU32(payload)
			reply, _ := ctx.CreateLink(link.AttrReply, link.DataArea{})
			ctx.Send(2, fs.FOpenMsg(fid), reply)
			p.State = 2
		case 2:
			p.H, _ = fs.ParseU16(payload)
			reply, _ := ctx.CreateLink(link.AttrReply, link.DataArea{})
			ctx.Send(2, fs.FIOMsg(fs.OpFRead, p.H, 0, 100), p.Area, reply)
			p.State = 3
		case 3:
			p.ReadN, _ = fs.ParseU32(payload)
			return 0, proc.Status{State: proc.Exited}
		}
	}
}

func (p *probe) Snapshot() ([]byte, error) { return nil, nil }
func (p *probe) Restore([]byte) error      { return nil }

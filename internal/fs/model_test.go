package fs_test

import (
	"bytes"
	"math/rand"
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/fs"
	"demosmp/internal/kernel"
	"demosmp/internal/link"
	"demosmp/internal/proc"
	simt "demosmp/internal/sim"
)

// fsOp is one scripted operation for the model probe.
type fsOp struct {
	Write bool
	Off   uint32
	Data  []byte // write: payload; read: filled with the result
	N     uint32 // read length
	OK    bool
	Got   []byte
}

// modelProbe opens one file and executes a scripted op list sequentially.
type modelProbe struct {
	Ops   []*fsOp
	State int // 0 create, 1 open, 2+i op i
	H     uint16
	Area  link.ID
	Size  uint32 // buffer size
	Done  bool
}

func (p *modelProbe) Kind() string { return "fs-model-probe" }

func (p *modelProbe) ask(ctx proc.Context, on link.ID, body []byte, extra ...link.ID) {
	reply, _ := ctx.CreateLink(link.AttrReply, link.DataArea{})
	ctx.Send(on, body, append(extra, reply)...)
}

func (p *modelProbe) startOp(ctx proc.Context) bool {
	i := p.State - 2
	if i >= len(p.Ops) {
		p.Done = true
		return false
	}
	op := p.Ops[i]
	if op.Write {
		ctx.ImageWrite(0, op.Data)
		p.ask(ctx, 2, fs.FIOMsg(fs.OpFWrite, p.H, op.Off, uint32(len(op.Data))), p.Area)
	} else {
		// Poison the buffer so stale bytes cannot fake a pass.
		poison := make([]byte, op.N)
		for j := range poison {
			poison[j] = 0xEE
		}
		ctx.ImageWrite(0, poison)
		p.ask(ctx, 2, fs.FIOMsg(fs.OpFRead, p.H, op.Off, op.N), p.Area)
	}
	return true
}

func (p *modelProbe) Step(ctx proc.Context, budget int) (int, proc.Status) {
	if p.State == 0 {
		p.Area, _ = ctx.CreateLink(link.AttrDataRead|link.AttrDataWrite,
			link.DataArea{Length: p.Size})
		p.ask(ctx, 1, fs.DCreateMsg("model"))
		p.State = 1
	}
	for {
		d, ok := ctx.Recv()
		if !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
		okRep, payload, err := fs.ParseReply(d.Body)
		if err != nil {
			continue
		}
		switch {
		case p.State == 1: // create reply
			fid, _ := fs.ParseU32(payload)
			p.ask(ctx, 2, fs.FOpenMsg(fid))
			p.State = 2 // next reply is open
		case p.State == 2 && p.H == 0: // open reply
			p.H, _ = fs.ParseU16(payload)
			if !p.startOp(ctx) {
				return 0, proc.Status{State: proc.Exited}
			}
		default: // op reply
			i := p.State - 2
			op := p.Ops[i]
			op.OK = okRep
			if okRep && !op.Write {
				n, _ := fs.ParseU32(payload)
				op.Got = make([]byte, n)
				ctx.ImageRead(0, op.Got)
			}
			p.State++
			if !p.startOp(ctx) {
				return 0, proc.Status{State: proc.Exited}
			}
		}
	}
}

func (p *modelProbe) Snapshot() ([]byte, error) { return nil, nil }
func (p *modelProbe) Restore([]byte) error      { return nil }

// TestFileServerMatchesModel drives the real four-process file system with
// random reads and writes — with the file server migrating mid-sequence —
// and compares every result against a plain in-memory reference file.
func TestFileServerMatchesModel(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		const bufSize = 4096
		const fileSpan = 8192

		var ops []*fsOp
		nOps := 25 + rng.Intn(15)
		for i := 0; i < nOps; i++ {
			if rng.Intn(2) == 0 {
				n := 1 + rng.Intn(bufSize-1)
				data := make([]byte, n)
				rng.Read(data)
				ops = append(ops, &fsOp{Write: true, Off: uint32(rng.Intn(fileSpan)), Data: data})
			} else {
				ops = append(ops, &fsOp{Off: uint32(rng.Intn(fileSpan)), N: uint32(1 + rng.Intn(bufSize-1))})
			}
		}

		r := newRig(t, 3, 1)
		probe := &modelProbe{Ops: ops, Size: bufSize}
		pid, err := r.k(2).Spawn(kernel.SpawnSpec{
			Body: probe, ImageSize: bufSize,
			Links: []link.Link{
				{Addr: addr.At(r.dir, 1)},
				{Addr: addr.At(r.file, 1)},
			},
		})
		must(t, err)
		// Migrate the file server at a random instant mid-sequence.
		r.eng.RunFor(simt.Time(50000 + rng.Intn(400000)))
		r.k(3).RequestMigrationOf(addr.At(r.file, 1), 3)
		r.eng.Run()

		if _, ok := r.k(2).Exit(pid); !ok {
			t.Fatalf("seed %d: probe never finished (%d/%d ops)", seed, probe.State-2, len(ops))
		}

		// Replay against the reference model.
		model := []byte{}
		for i, op := range ops {
			if op.Write {
				end := int(op.Off) + len(op.Data)
				if end > len(model) {
					model = append(model, make([]byte, end-len(model))...)
				}
				copy(model[op.Off:], op.Data)
				if !op.OK {
					t.Fatalf("seed %d op %d: write failed", seed, i)
				}
				continue
			}
			if !op.OK {
				t.Fatalf("seed %d op %d: read failed", seed, i)
			}
			want := []byte{}
			if int(op.Off) < len(model) {
				end := int(op.Off) + int(op.N)
				if end > len(model) {
					end = len(model)
				}
				want = model[op.Off:end]
			}
			if !bytes.Equal(op.Got, want) {
				t.Fatalf("seed %d op %d: read [%d+%d) diverged from model (got %d bytes, want %d)",
					seed, i, op.Off, op.N, len(op.Got), len(want))
			}
		}
	}
}

package fs

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"demosmp/internal/link"
	"demosmp/internal/proc"
)

// ClientKind is the registry name of the scripted file system client.
const ClientKind = "fs-client"

// Client states.
const (
	csStart   = iota // send create
	csCreated        // awaiting fid
	csOpened         // awaiting handle
	csWriting        // awaiting write reply
	csReading        // awaiting read reply
	csClosing        // awaiting close ack
	csDone
)

// Client is a scripted file system user: it creates a file, then performs
// Rounds of write-pattern / read-back / verify through link data areas,
// then closes and exits with the number of verified rounds. Several of
// these running during a file-server migration reproduce the paper's test
// example ("It migrates a file system process while several user processes
// are performing I/O").
type Client struct {
	File   string
	Rounds int
	Size   uint32 // bytes per round; the client image must be at least this big
	Stride bool   // vary the file offset per round (multi-block files)

	DirLink  link.ID // slot 1
	FileLink link.ID // slot 2
	AreaLink link.ID // created at start: read|write area over the buffer

	State    int
	Round    int
	FID      uint32
	Handle   uint16
	Verified int
	Failed   []string
}

// NewClient returns a scripted client. Spawn it with ImageSize >= size and
// links [dir, file] in slots 1 and 2.
func NewClient(file string, rounds int, size uint32) *Client {
	return &Client{File: file, Rounds: rounds, Size: size, DirLink: 1, FileLink: 2}
}

// Kind implements proc.Body.
func (c *Client) Kind() string { return ClientKind }

func (c *Client) pattern(i uint32) byte {
	return byte(i*3 + uint32(c.Round)*11 + 7)
}

func (c *Client) offset() uint32 {
	if !c.Stride {
		return 0
	}
	return uint32(c.Round%4) * c.Size
}

// Step implements proc.Body.
func (c *Client) Step(ctx proc.Context, budget int) (int, proc.Status) {
	if c.State == csStart {
		var err error
		c.AreaLink, err = ctx.CreateLink(link.AttrDataRead|link.AttrDataWrite,
			link.DataArea{Offset: 0, Length: c.Size})
		if err != nil {
			return 0, proc.Status{State: proc.Crashed, Err: err}
		}
		c.ask(ctx, c.DirLink, DCreateMsg(c.File))
		c.State = csCreated
	}
	for {
		d, ok := ctx.Recv()
		if !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
		if st, done := c.handle(ctx, d); done {
			return 0, st
		}
	}
}

// ask sends a request carrying a fresh reply link.
func (c *Client) ask(ctx proc.Context, on link.ID, body []byte, extra ...link.ID) {
	reply, err := ctx.CreateLink(link.AttrReply, link.DataArea{})
	if err != nil {
		return
	}
	ctx.Send(on, body, append(extra, reply)...)
}

func (c *Client) fail(why string) {
	c.Failed = append(c.Failed, fmt.Sprintf("round %d: %s", c.Round, why))
}

func (c *Client) handle(ctx proc.Context, d proc.Delivery) (proc.Status, bool) {
	ok, payload, err := ParseReply(d.Body)
	if err != nil {
		return proc.Status{}, false
	}
	switch c.State {
	case csCreated:
		fid, ferr := ParseU32(payload)
		if !ok || ferr != nil {
			c.fail("create failed")
			return c.exit(ctx), true
		}
		c.FID = fid
		c.ask(ctx, c.FileLink, FOpenMsg(fid))
		c.State = csOpened
	case csOpened:
		h, herr := ParseU16(payload)
		if !ok || herr != nil {
			c.fail("open failed")
			return c.exit(ctx), true
		}
		c.Handle = h
		c.startWrite(ctx)
	case csWriting:
		if !ok {
			c.fail("write failed")
			c.nextRound(ctx)
			return proc.Status{State: proc.Runnable}, c.State == csDone
		}
		// Clear the buffer, then read back.
		zero := make([]byte, c.Size)
		ctx.ImageWrite(0, zero)
		c.ask(ctx, c.FileLink, FIOMsg(OpFRead, c.Handle, c.offset(), c.Size), c.AreaLink)
		c.State = csReading
	case csReading:
		if !ok {
			c.fail("read failed")
		} else {
			buf := make([]byte, c.Size)
			ctx.ImageRead(0, buf)
			good := true
			for i := range buf {
				if buf[i] != c.pattern(uint32(i)) {
					c.fail(fmt.Sprintf("byte %d = %d, want %d", i, buf[i], c.pattern(uint32(i))))
					good = false
					break
				}
			}
			if good {
				c.Verified++
			}
		}
		c.nextRound(ctx)
		if c.State == csDone {
			return c.exit(ctx), true
		}
	case csClosing:
		return c.exit(ctx), true
	}
	return proc.Status{}, false
}

func (c *Client) startWrite(ctx proc.Context) {
	buf := make([]byte, c.Size)
	for i := range buf {
		buf[i] = c.pattern(uint32(i))
	}
	ctx.ImageWrite(0, buf)
	c.ask(ctx, c.FileLink, FIOMsg(OpFWrite, c.Handle, c.offset(), c.Size), c.AreaLink)
	c.State = csWriting
}

func (c *Client) nextRound(ctx proc.Context) {
	c.Round++
	if c.Round < c.Rounds {
		c.startWrite(ctx)
		return
	}
	c.ask(ctx, c.FileLink, FCloseMsg(c.Handle))
	c.State = csClosing
}

func (c *Client) exit(ctx proc.Context) proc.Status {
	ctx.Logf("fs-client %s: %d/%d rounds verified, %d failures",
		c.File, c.Verified, c.Rounds, len(c.Failed))
	for _, f := range c.Failed {
		ctx.Logf("fs-client %s: FAILURE %s", c.File, f)
	}
	c.State = csDone
	return proc.Status{State: proc.Exited, ExitCode: int32(c.Verified)}
}

// Snapshot implements proc.Body.
func (c *Client) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(c)
	return buf.Bytes(), err
}

// Restore implements proc.Body.
func (c *Client) Restore(data []byte) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(c)
}

var _ proc.Body = (*Client)(nil)

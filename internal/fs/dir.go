package fs

import (
	"bytes"
	"encoding/gob"
	"sort"
	"strings"

	"demosmp/internal/link"
	"demosmp/internal/proc"
)

// DirKind is the registry name of the directory server body.
const DirKind = "fs-dir"

// pendingCreate orders outstanding inode allocations; the file server
// answers them FIFO, so replies are matched by arrival order.
type pendingCreate struct {
	Name  string
	Reply link.ID
}

// Dir is the directory server: a single flat namespace mapping names to
// file ids. Link slot 1 (installed at spawn) must point at the file server.
type Dir struct {
	FileLink link.ID
	Names    map[string]uint32
	Creates  []pendingCreate

	Lookups, CreatesDone uint64
}

// NewDir returns a directory server whose file-server link is slot 1.
func NewDir() *Dir {
	return &Dir{FileLink: 1, Names: make(map[string]uint32)}
}

// Kind implements proc.Body.
func (s *Dir) Kind() string { return DirKind }

// Step implements proc.Body.
func (s *Dir) Step(ctx proc.Context, budget int) (int, proc.Status) {
	for {
		d, ok := ctx.Recv()
		if !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
		if len(d.Body) < 1 {
			continue
		}
		switch d.Body[0] {
		case OpDCreate:
			s.create(ctx, string(d.Body[1:]), d)
		case OpDLookup:
			s.lookup(ctx, string(d.Body[1:]), d)
		case OpDRemove:
			if len(d.Carried) < 1 {
				continue
			}
			name := string(d.Body[1:])
			if _, ok := s.Names[name]; !ok {
				ctx.Send(d.Carried[0], ErrReply())
				continue
			}
			delete(s.Names, name)
			ctx.Send(d.Carried[0], OKReply(nil))
		case OpDList:
			if len(d.Carried) < 1 {
				continue
			}
			names := make([]string, 0, len(s.Names))
			for n := range s.Names {
				names = append(names, n)
			}
			sort.Strings(names)
			ctx.Send(d.Carried[0], OKReply([]byte(strings.Join(names, "\n"))))
		case StOK, StErr:
			s.allocReply(ctx, d)
		}
	}
}

func (s *Dir) create(ctx proc.Context, name string, d proc.Delivery) {
	if len(d.Carried) < 1 || name == "" {
		return
	}
	if fid, dup := s.Names[name]; dup {
		// Create of an existing name opens it (the paper's DEMOS file
		// system treats creation as idempotent naming).
		ctx.Send(d.Carried[0], U32Reply(fid))
		return
	}
	s.Creates = append(s.Creates, pendingCreate{Name: name, Reply: d.Carried[0]})
	reply, err := ctx.CreateLink(link.AttrReply, link.DataArea{})
	if err != nil {
		return
	}
	ctx.Send(s.FileLink, FAllocMsg(), reply)
}

func (s *Dir) lookup(ctx proc.Context, name string, d proc.Delivery) {
	if len(d.Carried) < 1 {
		return
	}
	s.Lookups++
	fid, ok := s.Names[name]
	if !ok {
		ctx.Send(d.Carried[0], ErrReply())
		return
	}
	ctx.Send(d.Carried[0], U32Reply(fid))
}

// allocReply matches a file-server allocation to the oldest pending create.
func (s *Dir) allocReply(ctx proc.Context, d proc.Delivery) {
	if len(s.Creates) == 0 {
		return
	}
	pc := s.Creates[0]
	s.Creates = s.Creates[1:]
	ok, payload, err := ParseReply(d.Body)
	if err != nil || !ok {
		ctx.Send(pc.Reply, ErrReply())
		return
	}
	fid, err := ParseU32(payload)
	if err != nil {
		ctx.Send(pc.Reply, ErrReply())
		return
	}
	s.Names[pc.Name] = fid
	s.CreatesDone++
	ctx.Send(pc.Reply, U32Reply(fid))
}

// Snapshot implements proc.Body.
func (s *Dir) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(s)
	return buf.Bytes(), err
}

// Restore implements proc.Body.
func (s *Dir) Restore(data []byte) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(s)
}

var _ proc.Body = (*Dir)(nil)

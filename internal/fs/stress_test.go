package fs_test

import (
	"math/rand"
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/fs"
	"demosmp/internal/kernel"
	"demosmp/internal/link"
)

// TestCacheEvictionReachesDisk: a working set bigger than the cache forces
// LRU evictions; re-reads must then come from the disk — correctly.
func TestCacheEvictionReachesDisk(t *testing.T) {
	r := newRig(t, 2, 1)
	rng := rand.New(rand.NewSource(3))

	// 45 single-block writes across 45 distinct blocks (cache holds 32),
	// then read them all back.
	var ops []*fsOp
	payloads := map[uint32][]byte{}
	for i := 0; i < 45; i++ {
		data := make([]byte, fs.BlockSize)
		rng.Read(data)
		off := uint32(i) * fs.BlockSize
		payloads[off] = data
		ops = append(ops, &fsOp{Write: true, Off: off, Data: data})
	}
	for i := 0; i < 45; i++ {
		ops = append(ops, &fsOp{Off: uint32(i) * fs.BlockSize, N: fs.BlockSize})
	}
	probe := &modelProbe{Ops: ops, Size: fs.BlockSize}
	pid, err := r.k(2).Spawn(kernel.SpawnSpec{
		Body: probe, ImageSize: fs.BlockSize,
		Links: []link.Link{
			{Addr: addr.At(r.dir, 1)},
			{Addr: addr.At(r.file, 1)},
		},
	})
	must(t, err)
	r.eng.Run()
	if _, ok := r.k(2).Exit(pid); !ok {
		t.Fatal("probe never finished")
	}
	for i := 45; i < 90; i++ {
		op := ops[i]
		if !op.OK {
			t.Fatalf("read %d failed", i)
		}
		want := payloads[op.Off]
		if string(op.Got) != string(want) {
			t.Fatalf("block at %d corrupted after eviction round trip", op.Off)
		}
	}
	dbody, _ := r.k(1).BodyOf(r.disk)
	if reads := dbody.(*fs.Disk).Reads; reads == 0 {
		t.Fatal("working set never overflowed to the disk")
	}
	cbody, _ := r.k(1).BodyOf(r.cach)
	if n := len(cbody.(*fs.Cache).Blocks); n > 32 {
		t.Fatalf("cache holds %d blocks, capacity 32", n)
	}
}

// TestDiskFull: when the file server runs out of blocks, writes fail
// cleanly and prior data stays readable.
func TestDiskFull(t *testing.T) {
	// Build a rig manually with a tiny block budget.
	r := newRig(t, 2, 1)
	tiny, err := r.k(1).Spawn(kernel.SpawnSpec{
		Body:  fs.NewFileServer(4), // four blocks total
		Links: []link.Link{{Addr: addr.At(r.cach, 1)}},
	})
	must(t, err)
	dir2, err := r.k(1).Spawn(kernel.SpawnSpec{
		Body:  fs.NewDir(),
		Links: []link.Link{{Addr: addr.At(tiny, 1)}},
	})
	must(t, err)

	block := make([]byte, fs.BlockSize)
	for i := range block {
		block[i] = byte(i)
	}
	ops := []*fsOp{
		{Write: true, Off: 0, Data: block},                 // block 1 of 4
		{Write: true, Off: fs.BlockSize, Data: block},      // block 2
		{Write: true, Off: 10 * fs.BlockSize, Data: block}, // needs blocks 3..11: fails
		{Off: 0, N: fs.BlockSize},                          // still readable
	}
	probe := &modelProbe{Ops: ops, Size: fs.BlockSize}
	pid, err := r.k(2).Spawn(kernel.SpawnSpec{
		Body: probe, ImageSize: fs.BlockSize,
		Links: []link.Link{
			{Addr: addr.At(dir2, 1)},
			{Addr: addr.At(tiny, 1)},
		},
	})
	must(t, err)
	r.eng.Run()
	if _, ok := r.k(2).Exit(pid); !ok {
		t.Fatal("probe never finished")
	}
	if !ops[0].OK || !ops[1].OK {
		t.Fatal("in-budget writes failed")
	}
	if ops[2].OK {
		t.Fatal("write past the block budget succeeded")
	}
	if !ops[3].OK || string(ops[3].Got) != string(block) {
		t.Fatal("prior data unreadable after a failed write")
	}
}

// TestStatAndRemove exercises the remaining directory/file operations.
func TestStatAndRemove(t *testing.T) {
	r := newRig(t, 1, 1)
	pr := &adminProbe{}
	pid, err := r.k(1).Spawn(kernel.SpawnSpec{
		Body: pr, ImageSize: 256,
		Links: []link.Link{
			{Addr: addr.At(r.dir, 1)},
			{Addr: addr.At(r.file, 1)},
		},
	})
	must(t, err)
	r.eng.Run()
	if _, ok := r.k(1).Exit(pid); !ok {
		t.Fatal("probe never finished")
	}
	if pr.Size != 700 {
		t.Fatalf("stat size = %d, want 700", pr.Size)
	}
	if !pr.RemovedOK || pr.LookupAfterRemove {
		t.Fatalf("remove: ok=%v, lookup-after=%v", pr.RemovedOK, pr.LookupAfterRemove)
	}
	if pr.Listing != "doomed" {
		t.Fatalf("listing before removal = %q, want the created file", pr.Listing)
	}
}

package fs

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"

	"demosmp/internal/link"
	"demosmp/internal/msg"
	"demosmp/internal/proc"
	"demosmp/internal/sim"
)

// DiskKind is the registry name of the disk driver body.
const DiskKind = "fs-disk"

// DiskGeometry models a small winchester drive of the paper's era.
type DiskGeometry struct {
	Blocks       uint32   // capacity in blocks
	SeekPerBlock sim.Time // µs of head movement per block of distance
	MinLatency   sim.Time // controller + rotational minimum per op
}

// DefaultGeometry is a ~5 MB drive with multi-millisecond access times.
func DefaultGeometry() DiskGeometry {
	return DiskGeometry{Blocks: 10240, SeekPerBlock: 2, MinLatency: 8000}
}

// diskOp is one queued request.
type diskOp struct {
	Write bool
	BID   uint32
	Data  []byte
	Reply link.ID // reply link (already installed in the table)
}

// Disk is the disk driver body. The platter contents live in the body's
// state so the whole drive migrates with the process — physically absurd
// for a real disk (the paper notes "Servers are often tied to unmovable
// resources"), but exactly what makes the simulated driver migratable for
// experiments.
type Disk struct {
	Geom    DiskGeometry
	Platter map[uint32][]byte
	LastBID uint32

	Queue   []diskOp
	Busy    bool
	Reads   uint64
	Writes  uint64
	nextTag uint16
}

// NewDisk returns a zero-filled drive.
func NewDisk(geom DiskGeometry) *Disk {
	if geom.Blocks == 0 {
		geom = DefaultGeometry()
	}
	return &Disk{Geom: geom, Platter: make(map[uint32][]byte)}
}

// Kind implements proc.Body.
func (d *Disk) Kind() string { return DiskKind }

// Step implements proc.Body.
func (d *Disk) Step(ctx proc.Context, budget int) (int, proc.Status) {
	for {
		del, ok := ctx.Recv()
		if !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
		if del.Op == msg.OpTimer { // the current operation finished
			d.finishOp(ctx)
			continue
		}
		if len(del.Body) < 5 || len(del.Carried) == 0 {
			continue
		}
		op := diskOp{
			Write: del.Body[0] == OpBWrite,
			BID:   binary.LittleEndian.Uint32(del.Body[1:]),
			Reply: del.Carried[0],
		}
		if op.Write {
			op.Data = append([]byte(nil), del.Body[5:]...)
		}
		d.Queue = append(d.Queue, op)
		d.startNext(ctx)
	}
}

// startNext arms the service timer for the head-of-queue operation.
func (d *Disk) startNext(ctx proc.Context) {
	if d.Busy || len(d.Queue) == 0 {
		return
	}
	d.Busy = true
	op := d.Queue[0]
	dist := int64(op.BID) - int64(d.LastBID)
	if dist < 0 {
		dist = -dist
	}
	latency := d.Geom.MinLatency + sim.Time(dist)*d.Geom.SeekPerBlock
	d.nextTag++
	ctx.SetTimer(latency, d.nextTag)
}

func (d *Disk) finishOp(ctx proc.Context) {
	if len(d.Queue) == 0 {
		d.Busy = false
		return
	}
	op := d.Queue[0]
	d.Queue = d.Queue[1:]
	d.Busy = false
	d.LastBID = op.BID

	reply := op.Reply
	bid := binary.LittleEndian.AppendUint32(nil, op.BID)
	if op.BID >= d.Geom.Blocks {
		ctx.Send(reply, append(ErrReply(), bid...))
	} else if op.Write {
		block := make([]byte, BlockSize)
		copy(block, op.Data)
		d.Platter[op.BID] = block
		d.Writes++
		ctx.Send(reply, OKReply(bid))
	} else {
		d.Reads++
		block := d.Platter[op.BID]
		if block == nil {
			block = make([]byte, BlockSize) // unwritten blocks read as zeros
		}
		ctx.Send(reply, OKReply(append(bid, block...)))
	}
	d.startNext(ctx)
}

// Snapshot implements proc.Body.
func (d *Disk) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(d)
	return buf.Bytes(), err
}

// Restore implements proc.Body.
func (d *Disk) Restore(data []byte) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(d)
}

var _ proc.Body = (*Disk)(nil)

// Package memsched implements the DEMOS/MP memory scheduler: the system
// process that, together with the process manager, "allocate[s] and keep[s]
// track of usage for system resources such as the CPU, real memory, etc."
// (§2.3). The process manager forwards it the kernels' load reports and
// consults it for placement: which machine can best absorb a process of a
// given memory footprint.
package memsched

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sort"

	"demosmp/internal/addr"
	"demosmp/internal/msg"
	"demosmp/internal/proc"
)

// Kind is the registry name of the memory scheduler body.
const Kind = "memsched"

// Request opcodes.
const (
	opBestFit = 'B' // bytes(4); carries a reply link; reply: machine(2)
	opStat    = '?' // carries a reply link; reply: text
)

// BestFitMsg builds a placement query for a process of size bytes.
func BestFitMsg(size uint32) []byte {
	b := []byte{opBestFit}
	return binary.LittleEndian.AppendUint32(b, size)
}

// StatMsg builds a status query.
func StatMsg() []byte { return []byte{opStat} }

// ParseBestFit decodes a best-fit reply.
func ParseBestFit(body []byte) (addr.MachineID, error) {
	if len(body) < 2 {
		return addr.NoMachine, fmt.Errorf("memsched: short reply")
	}
	return addr.MachineID(binary.LittleEndian.Uint16(body)), nil
}

// Scheduler is the memory scheduler body.
type Scheduler struct {
	// UsedKB is the latest memory usage per machine.
	UsedKB map[addr.MachineID]uint32
	// Queries counts best-fit requests served.
	Queries uint64
}

// New returns an empty scheduler.
func New() *Scheduler {
	return &Scheduler{UsedKB: make(map[addr.MachineID]uint32)}
}

// Kind implements proc.Body.
func (s *Scheduler) Kind() string { return Kind }

// Step implements proc.Body.
func (s *Scheduler) Step(ctx proc.Context, budget int) (int, proc.Status) {
	for {
		d, ok := ctx.Recv()
		if !ok {
			return 0, proc.Status{State: proc.Blocked}
		}
		if d.Op == msg.OpLoadReport {
			if rep, err := msg.DecodeLoadReport(d.Body); err == nil {
				s.UsedKB[rep.Machine] = rep.MemUsedKB
			}
			continue
		}
		if len(d.Body) < 1 {
			continue
		}
		switch d.Body[0] {
		case opBestFit:
			if len(d.Carried) == 0 {
				continue
			}
			s.Queries++
			m := s.bestFit()
			reply := binary.LittleEndian.AppendUint16(nil, uint16(m))
			ctx.Send(d.Carried[0], reply)
		case opStat:
			if len(d.Carried) == 0 {
				continue
			}
			ctx.Send(d.Carried[0], []byte(s.statText()))
		}
	}
}

// bestFit returns the machine with the least memory in use.
func (s *Scheduler) bestFit() addr.MachineID {
	best := addr.NoMachine
	var bestUsed uint32
	for _, m := range s.machines() {
		used := s.UsedKB[m]
		if best == addr.NoMachine || used < bestUsed {
			best, bestUsed = m, used
		}
	}
	return best
}

func (s *Scheduler) machines() []addr.MachineID {
	out := make([]addr.MachineID, 0, len(s.UsedKB))
	for m := range s.UsedKB {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s *Scheduler) statText() string {
	t := ""
	for _, m := range s.machines() {
		t += fmt.Sprintf("%v mem=%dKB\n", m, s.UsedKB[m])
	}
	return t
}

// Snapshot implements proc.Body.
func (s *Scheduler) Snapshot() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(s)
	return buf.Bytes(), err
}

// Restore implements proc.Body.
func (s *Scheduler) Restore(data []byte) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(s)
}

var _ proc.Body = (*Scheduler)(nil)

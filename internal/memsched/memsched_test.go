package memsched_test

import (
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/link"
	"demosmp/internal/memsched"
	"demosmp/internal/msg"
	"demosmp/internal/proc"
	"demosmp/internal/proctest"
)

func step(t *testing.T, s proc.Body, ctx *proctest.Ctx) {
	t.Helper()
	if _, st := s.Step(ctx, 1); st.State != proc.Blocked {
		t.Fatalf("memsched stopped: %+v", st)
	}
}

func report(m addr.MachineID, usedKB uint32) proc.Delivery {
	rep := msg.LoadReport{Machine: m, MemUsedKB: usedKB}
	return proc.Delivery{Op: msg.OpLoadReport, Body: rep.Encode()}
}

func TestBestFit(t *testing.T) {
	s := memsched.New()
	ctx := proctest.New()
	ctx.Push(report(1, 900))
	ctx.Push(report(2, 100))
	ctx.Push(report(3, 500))
	reply, _ := ctx.MintLink(link.Link{Attrs: link.AttrReply})
	ctx.PushBody(addr.ProcessAddr{}, memsched.BestFitMsg(64), reply)
	step(t, s, ctx)
	sent, ok := ctx.LastSend()
	if !ok {
		t.Fatal("no reply")
	}
	m, err := memsched.ParseBestFit(sent.Body)
	if err != nil || m != 2 {
		t.Fatalf("best fit = %v (%v), want m2", m, err)
	}
	if s.Queries != 1 {
		t.Fatalf("queries = %d", s.Queries)
	}
}

func TestReportsOverwrite(t *testing.T) {
	s := memsched.New()
	ctx := proctest.New()
	ctx.Push(report(1, 100))
	ctx.Push(report(2, 50))
	ctx.Push(report(1, 10)) // machine 1 freed memory
	reply, _ := ctx.MintLink(link.Link{Attrs: link.AttrReply})
	ctx.PushBody(addr.ProcessAddr{}, memsched.BestFitMsg(1), reply)
	step(t, s, ctx)
	sent, _ := ctx.LastSend()
	if m, _ := memsched.ParseBestFit(sent.Body); m != 1 {
		t.Fatalf("best fit = %v, want updated m1", m)
	}
}

func TestStat(t *testing.T) {
	s := memsched.New()
	ctx := proctest.New()
	ctx.Push(report(1, 100))
	reply, _ := ctx.MintLink(link.Link{Attrs: link.AttrReply})
	ctx.PushBody(addr.ProcessAddr{}, memsched.StatMsg(), reply)
	step(t, s, ctx)
	sent, _ := ctx.LastSend()
	if string(sent.Body) != "m1 mem=100KB\n" {
		t.Fatalf("stat: %q", sent.Body)
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := memsched.New()
	ctx := proctest.New()
	ctx.Push(report(4, 77))
	step(t, s, ctx)
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2 := memsched.New()
	if err := s2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if s2.UsedKB[4] != 77 {
		t.Fatalf("restored: %v", s2.UsedKB)
	}
}

func TestIgnoresGarbage(t *testing.T) {
	s := memsched.New()
	ctx := proctest.New()
	ctx.PushBody(addr.ProcessAddr{}, nil)
	ctx.PushBody(addr.ProcessAddr{}, memsched.BestFitMsg(1)) // no reply link
	ctx.Push(proc.Delivery{Op: msg.OpLoadReport, Body: []byte{1}})
	step(t, s, ctx)
	if len(ctx.Sends) != 0 {
		t.Fatal("garbage produced sends")
	}
}

package netw

import (
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/msg"
	"demosmp/internal/sim"
)

// TestDedupStateBounded drives far more frames through a lossy pair than
// the dedup window holds and asserts (a) reliability still holds with no
// duplicate deliveries and (b) the receiver-side dedup state stays bounded.
// The old implementation pruned only past 4096 entries per pair and could
// still grow without bound under sustained loss.
func TestDedupStateBounded(t *testing.T) {
	eng := sim.NewEngine(5)
	n := New(eng, Config{
		LossRate:       0.3,
		RetransTimeout: 2000,
		MaxRetries:     200,
		PerByteNanos:   1,
	})
	r1 := &recorder{eng: eng}
	r2 := &recorder{eng: eng}
	n.Attach(1, r1)
	n.Attach(2, r2)

	const frames = 3 * dedupWindow
	from := addr.At(addr.ProcessID{Creator: 1, Local: 1}, 1)
	to := addr.At(addr.ProcessID{Creator: 2, Local: 1}, 2)
	for i := 0; i < frames; i++ {
		n.Send(1, 2, &msg.Message{Kind: msg.KindUser, From: from, To: to})
		// Alternate direction so two pairs accumulate state.
		n.Send(2, 1, &msg.Message{Kind: msg.KindUser, From: to, To: from})
		eng.Run()
	}

	if len(r2.got) != frames || len(r1.got) != frames {
		t.Fatalf("reliability violated: delivered %d/%d and %d/%d",
			len(r2.got), frames, len(r1.got), frames)
	}
	for _, p := range []struct{ f, t addr.MachineID }{{1, 2}, {2, 1}} {
		if sz := n.dedupSize(p.f, p.t); sz == 0 || sz > dedupWindow {
			t.Fatalf("dedup state for %v->%v is %d entries, want (0, %d]",
				p.f, p.t, sz, dedupWindow)
		}
	}
}

// TestDedupSuppressesRetransmitDuplicates keeps the receiver-side guarantee
// concrete: under loss, retransmissions arrive but each unique frame is
// delivered exactly once, with the surplus counted as duplicates.
func TestDedupSuppressesRetransmitDuplicates(t *testing.T) {
	eng := sim.NewEngine(11)
	n := New(eng, Config{
		LossRate:       0.4,
		RetransTimeout: 1500,
		MaxRetries:     300,
		PerByteNanos:   1,
	})
	r1 := &recorder{eng: eng}
	r2 := &recorder{eng: eng}
	n.Attach(1, r1)
	n.Attach(2, r2)

	const frames = 500
	from := addr.At(addr.ProcessID{Creator: 1, Local: 1}, 1)
	to := addr.At(addr.ProcessID{Creator: 2, Local: 1}, 2)
	for i := 0; i < frames; i++ {
		n.Send(1, 2, &msg.Message{Kind: msg.KindUser, From: from, To: to})
	}
	eng.Run()

	if len(r2.got) != frames {
		t.Fatalf("delivered %d frames, want exactly %d", len(r2.got), frames)
	}
	s := n.Stats()
	if s.Retransmits == 0 {
		t.Fatal("expected retransmissions under 40% loss")
	}
	if s.Duplicates == 0 {
		t.Fatal("expected suppressed duplicates under lossy acks")
	}
}

// TestDedupMemoryBoundedOnLargeTopology pins the O(active pairs) memory
// claim on a 1000-machine topology: after a burst touches ~1000 distinct
// pairs once and traffic then concentrates on a single pair, the amortized
// idle sweep must evict the cold pairs' dedup state into the free pool —
// per-pair state is proportional to pairs active within the retention
// window, not to every pair that ever communicated.
func TestDedupMemoryBoundedOnLargeTopology(t *testing.T) {
	eng := sim.NewEngine(3)
	n := New(eng, Config{
		LossRate:       0.1,
		RetransTimeout: 500,
		MaxRetries:     4, // retention = 2*500*4 = 4000µs
		PerByteNanos:   1,
	})
	const machines = 1000
	recs := make([]*recorder, machines+1)
	for m := 1; m <= machines; m++ {
		recs[m] = &recorder{eng: eng}
		n.Attach(addr.MachineID(m), recs[m])
	}

	// Burst: every adjacent pair exchanges one frame, creating dedup state
	// for ~999 distinct pairs.
	for i := 1; i < machines; i++ {
		from := addr.At(addr.ProcessID{Creator: 1, Local: addr.LocalUID(i)}, addr.MachineID(i))
		to := addr.At(addr.ProcessID{Creator: 1, Local: addr.LocalUID(i + 1)}, addr.MachineID(i+1))
		n.Send(addr.MachineID(i), addr.MachineID(i+1), &msg.Message{Kind: msg.KindUser, From: from, To: to})
	}
	eng.Run()
	burst := n.dedupPairs()
	if burst < machines/2 {
		t.Fatalf("burst created dedup state for only %d pairs", burst)
	}

	// Steady state: one hot pair. Each send's ARQ activity advances the
	// clock past the retransmit window, so the run covers dozens of
	// retention horizons while arrivals keep crossing sweep thresholds.
	from := addr.At(addr.ProcessID{Creator: 1, Local: 1}, 1)
	to := addr.At(addr.ProcessID{Creator: 1, Local: 2}, 2)
	for i := 0; i < 400; i++ {
		n.Send(1, 2, &msg.Message{Kind: msg.KindUser, From: from, To: to})
		eng.Run()
	}

	if got := n.dedupPairs(); got > 8 {
		t.Fatalf("dedup state held for %d pairs after idling (burst peak %d), want <= 8 (O(active pairs))", got, burst)
	}
	if pooled := n.dedupPooled(); pooled < 900 {
		t.Fatalf("only %d evicted dedup states were pooled for reuse, want >= 900", pooled)
	}
	if len(recs[2].got) < 400 {
		t.Fatalf("hot pair delivered %d/400 frames — eviction must not cost reliability", len(recs[2].got))
	}
}

package netw

import (
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/msg"
	"demosmp/internal/sim"
)

// TestDedupStateBounded drives far more frames through a lossy pair than
// the dedup window holds and asserts (a) reliability still holds with no
// duplicate deliveries and (b) the receiver-side dedup state stays bounded.
// The old implementation pruned only past 4096 entries per pair and could
// still grow without bound under sustained loss.
func TestDedupStateBounded(t *testing.T) {
	eng := sim.NewEngine(5)
	n := New(eng, Config{
		LossRate:       0.3,
		RetransTimeout: 2000,
		MaxRetries:     200,
		PerByteNanos:   1,
	})
	r1 := &recorder{eng: eng}
	r2 := &recorder{eng: eng}
	n.Attach(1, r1)
	n.Attach(2, r2)

	const frames = 3 * dedupWindow
	from := addr.At(addr.ProcessID{Creator: 1, Local: 1}, 1)
	to := addr.At(addr.ProcessID{Creator: 2, Local: 1}, 2)
	for i := 0; i < frames; i++ {
		n.Send(1, 2, &msg.Message{Kind: msg.KindUser, From: from, To: to})
		// Alternate direction so two pairs accumulate state.
		n.Send(2, 1, &msg.Message{Kind: msg.KindUser, From: to, To: from})
		eng.Run()
	}

	if len(r2.got) != frames || len(r1.got) != frames {
		t.Fatalf("reliability violated: delivered %d/%d and %d/%d",
			len(r2.got), frames, len(r1.got), frames)
	}
	for _, p := range []struct{ f, t addr.MachineID }{{1, 2}, {2, 1}} {
		if sz := n.dedupSize(p.f, p.t); sz == 0 || sz > dedupWindow {
			t.Fatalf("dedup state for %v->%v is %d entries, want (0, %d]",
				p.f, p.t, sz, dedupWindow)
		}
	}
}

// TestDedupSuppressesRetransmitDuplicates keeps the receiver-side guarantee
// concrete: under loss, retransmissions arrive but each unique frame is
// delivered exactly once, with the surplus counted as duplicates.
func TestDedupSuppressesRetransmitDuplicates(t *testing.T) {
	eng := sim.NewEngine(11)
	n := New(eng, Config{
		LossRate:       0.4,
		RetransTimeout: 1500,
		MaxRetries:     300,
		PerByteNanos:   1,
	})
	r1 := &recorder{eng: eng}
	r2 := &recorder{eng: eng}
	n.Attach(1, r1)
	n.Attach(2, r2)

	const frames = 500
	from := addr.At(addr.ProcessID{Creator: 1, Local: 1}, 1)
	to := addr.At(addr.ProcessID{Creator: 2, Local: 1}, 2)
	for i := 0; i < frames; i++ {
		n.Send(1, 2, &msg.Message{Kind: msg.KindUser, From: from, To: to})
	}
	eng.Run()

	if len(r2.got) != frames {
		t.Fatalf("delivered %d frames, want exactly %d", len(r2.got), frames)
	}
	s := n.Stats()
	if s.Retransmits == 0 {
		t.Fatal("expected retransmissions under 40% loss")
	}
	if s.Duplicates == 0 {
		t.Fatal("expected suppressed duplicates under lossy acks")
	}
}

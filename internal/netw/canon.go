// Canonical (sharded) delivery mode.
//
// When a cluster is split across shard-local engines, frames can no longer
// be scheduled as plain per-frame delivery events: two frames converging on
// one machine from different shards must land in the SAME relative order
// regardless of how machines are partitioned, or same-seed runs stop being
// bit-identical across shard counts. Canonical mode therefore routes every
// cross-machine frame — intra-shard and cross-shard alike — through a
// per-shard pending min-heap keyed
//
//	(deliverTime, toMachine, fromMachine, perSenderSeq)
//
// and fires deliveries from a gate event ("netw:pump") that sorts before
// all normal events at its timestamp. The per-sender sequence is a dense
// counter per sending machine, so it is itself shard-invariant (machine m's
// k-th frame is its k-th frame under any sharding), which makes the heap
// key — and hence delivery order at equal timestamps — canonical.
//
// Cross-shard frames are shipped through a cluster-provided hook into the
// receiving shard's mailbox and re-enter this same heap at the round
// barrier; heap order is insertion-order-independent, so mailbox arrival
// order (even from parallel shard goroutines) cannot perturb simulation
// order. A pooled envelope never crosses a shard boundary: the ship path
// transmits a heap clone and retires the original to its owner, exactly
// like the ARQ's copy-on-retain rule.
package netw

import (
	"demosmp/internal/addr"
	"demosmp/internal/msg"
	"demosmp/internal/sim"
)

// RemoteFrame is one cross-shard frame in flight between a sending shard
// and the receiving shard's mailbox. At and Seq are computed on the sending
// shard; the receiving shard's pending heap re-orders mailbox contents by
// (At, To, From, Seq), so mailbox push order — even from parallel shard
// goroutines — cannot influence simulation order. The cluster layer treats
// the frame as opaque cargo: it never inspects M.
type RemoteFrame struct {
	From, To addr.MachineID
	At       sim.Time
	Seq      uint64
	M        *msg.Message
}

// pendEnt is one frame waiting for canonical delivery on this shard.
type pendEnt struct {
	at   sim.Time
	to   addr.MachineID
	from addr.MachineID
	seq  uint64
	m    *msg.Message
}

// pendLess is the canonical delivery order at a shard: time, then receiver,
// then sender, then the sender's frame sequence. Every component is
// shard-invariant, so so is the order.
func pendLess(a, b pendEnt) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.to != b.to {
		return a.to < b.to
	}
	if a.from != b.from {
		return a.from < b.from
	}
	return a.seq < b.seq
}

// SetCanonical switches the network into canonical delivery mode for a
// cluster of `machines` total machines. local reports whether a machine id
// is attached to this shard; ship hands a frame bound for another shard to
// the cluster's mailbox plane together with its precomputed arrival time
// and per-sender sequence. Must be called before any Send; lossless
// configurations only (the cluster constructor rejects LossRate > 0 with
// shards).
func (n *Network) SetCanonical(machines int, local func(addr.MachineID) bool, ship func(RemoteFrame)) {
	n.canon = true
	n.canonTotal = addr.MachineID(machines)
	n.canonLocal = local
	n.canonShip = ship
	n.sendSeq = make([]uint64, machines+1)
	n.pumpFn = n.pump
	// Pre-size the dense per-machine counters to the whole cluster: this
	// shard accounts FramesIn for remote receivers it sends to, and the
	// obs registry registers one sampler row per machine on every shard so
	// merged snapshots sum to the cluster totals.
	n.stats.machine(addr.MachineID(machines))
}

// canonSend routes one lossless frame canonically. The arrival time is
// computed on the sending shard (now + transit), so a shipped frame carries
// its exact delivery timestamp with it.
//
//demos:hotpath — the sharded lossless path must stay allocation-free for local targets: checked by demoslint (hotpathalloc); dynamic guard: TestShardHotPathZeroAlloc in internal/core/shard_test.go.
//demos:owner inflight — the pending heap owns the frame until pump hands it to deliver; a frame shipped cross-shard is a heap clone (the pooled original is retired to its owner first).
func (n *Network) canonSend(from, to addr.MachineID, m *msg.Message, size int, extra sim.Time) {
	at := n.eng.Now() + n.transit(from, to, size) + extra
	n.sendSeq[from]++
	seq := n.sendSeq[from]
	m.Hops++
	if n.canonLocal(to) {
		n.pendPush(pendEnt{at: at, to: to, from: from, seq: seq, m: m})
		n.eng.AtGate(at, "netw:pump", n.pumpFn)
		return
	}
	if m.Pooled() {
		c := m.Clone()
		n.retire(from, m)
		m = c
	}
	n.canonShip(RemoteFrame{From: from, To: to, At: at, Seq: seq, M: m})
}

// EnqueueRemote lands a frame shipped from another shard: the cluster's
// mailbox drain calls this at a round barrier, strictly before the frame's
// arrival time (guaranteed by the conservative lookahead window).
//
//demos:owner inflight — the pending heap owns the shipped clone until pump delivers it.
func (n *Network) EnqueueRemote(f RemoteFrame) {
	n.pendPush(pendEnt{at: f.At, to: f.To, from: f.From, seq: f.Seq, m: f.M})
	n.eng.AtGate(f.At, "netw:pump", n.pumpFn)
}

// pump fires every pending delivery due at or before the current time. It
// runs as a gate event, so all frames arriving "at t" are delivered before
// any normal event at t — the same order a single shared engine produces.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestShardHotPathZeroAlloc in internal/core/shard_test.go.
func (n *Network) pump() {
	now := n.eng.Now()
	for len(n.pend) > 0 && n.pend[0].at <= now {
		ent := n.pendPop()
		n.deliver(ent.to, ent.m)
	}
}

// pendPush inserts into the canonical binary min-heap.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestShardHotPathZeroAlloc in internal/core/shard_test.go.
func (n *Network) pendPush(ent pendEnt) {
	n.pend = append(n.pend, ent)
	h := n.pend
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 1
		if pendLess(h[p], ent) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ent
}

// pendPop removes and returns the minimum entry.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestShardHotPathZeroAlloc in internal/core/shard_test.go.
func (n *Network) pendPop() pendEnt {
	h := n.pend
	root := h[0]
	last := len(h) - 1
	ent := h[last]
	h[last] = pendEnt{} // drop the frame pointer for GC
	n.pend = h[:last]
	h = n.pend
	i := 0
	for {
		c := i<<1 + 1
		if c >= last {
			break
		}
		if c+1 < last && pendLess(h[c+1], h[c]) {
			c++
		}
		if pendLess(ent, h[c]) {
			break
		}
		h[i] = h[c]
		i = c
	}
	if last > 0 {
		h[i] = ent
	}
	return root
}

// MinLatency returns the smallest one-way propagation latency between any
// ordered pair of the given machines under cfg (per-byte cost excluded).
// This is the conservative-lookahead window W for a sharded cluster.
func (cfg Config) MinLatency(machines int) sim.Time {
	cfg.fillDefaults()
	if cfg.PairLatency == nil {
		return cfg.Latency
	}
	var min sim.Time
	found := false
	for a := 1; a <= machines; a++ {
		for b := 1; b <= machines; b++ {
			if a == b {
				continue
			}
			l := cfg.PairLatency(addr.MachineID(a), addr.MachineID(b))
			if !found || l < min {
				min, found = l, true
			}
		}
	}
	if !found {
		return cfg.Latency
	}
	return min
}

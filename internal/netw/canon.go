// Canonical (sharded) delivery mode.
//
// When a cluster is split across shard-local engines, frames can no longer
// be scheduled as plain per-frame delivery events: two frames converging on
// one machine from different shards must land in the SAME relative order
// regardless of how machines are partitioned, or same-seed runs stop being
// bit-identical across shard counts. Canonical mode therefore routes every
// cross-machine frame — intra-shard and cross-shard alike — through a
// per-shard pending min-heap keyed
//
//	(deliverTime, toMachine, fromMachine, perSenderSeq)
//
// and fires deliveries from a gate event ("netw:pump") that sorts before
// all normal events at its timestamp. The per-sender sequence is a dense
// counter per sending machine, so it is itself shard-invariant (machine m's
// k-th frame is its k-th frame under any sharding), which makes the heap
// key — and hence delivery order at equal timestamps — canonical.
//
// Cross-shard frames are shipped through a cluster-provided hook into the
// receiving shard's mailbox and re-enter this same heap at the round
// barrier; heap order is insertion-order-independent, so mailbox arrival
// order (even from parallel shard goroutines) cannot perturb simulation
// order. A pooled envelope never crosses a shard boundary: the ship path
// transmits a heap clone and retires the original to its owner, exactly
// like the ARQ's copy-on-retain rule.
package netw

import (
	"demosmp/internal/addr"
	"demosmp/internal/msg"
	"demosmp/internal/sim"
)

// Canonical entry classes. Lossless traffic is all classData; the
// machine-anchored ARQ (arq.go) adds injected wire duplicates and
// network-level acks, which ride the same pending heap so their ordering at
// equal timestamps is fixed by class rather than by per-engine scheduling
// order.
const (
	classData = iota // a data frame (the only class in lossless mode)
	classDup         // an injected wire duplicate of a data frame
	classAck         // a network-level ARQ ack flowing back to the sender
)

// RemoteFrame is one cross-shard frame in flight between a sending shard
// and the receiving shard's mailbox. At and Seq are computed on the sending
// shard; the receiving shard's pending heap re-orders mailbox contents by
// (At, To, From, Seq, Class, Attempt), so mailbox push order — even from
// parallel shard goroutines — cannot influence simulation order. The
// cluster layer treats the frame as opaque cargo: it never inspects M.
// Class, Attempt, and ID are ARQ routing state (zero for lossless frames):
// acks carry a nil M.
type RemoteFrame struct {
	From, To addr.MachineID
	At       sim.Time
	Seq      uint64
	Class    uint8
	Attempt  uint32
	ID       uint64
	M        *msg.Message
}

// pendEnt is one frame waiting for canonical delivery on this shard.
type pendEnt struct {
	at      sim.Time
	to      addr.MachineID
	from    addr.MachineID
	seq     uint64
	class   uint8  // classData / classDup / classAck
	attempt uint32 // ARQ attempt number (tie-break between retransmissions)
	id      uint64 // ARQ frame id (dedup key); 0 in lossless mode
	m       *msg.Message
}

// pendLess is the canonical delivery order at a shard: time, then receiver,
// then sender, then the sender's frame sequence, then ARQ class and attempt
// (distinct retransmissions of one frame share (to, from, seq)). Every
// component is shard-invariant, so so is the order.
func pendLess(a, b pendEnt) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.to != b.to {
		return a.to < b.to
	}
	if a.from != b.from {
		return a.from < b.from
	}
	if a.seq != b.seq {
		return a.seq < b.seq
	}
	if a.class != b.class {
		return a.class < b.class
	}
	return a.attempt < b.attempt
}

// SetCanonical switches the network into canonical delivery mode for a
// cluster of `machines` total machines. local reports whether a machine id
// is attached to this shard; ship hands a frame bound for another shard to
// the cluster's mailbox plane together with its precomputed arrival time
// and per-sender sequence. Must be called before any Send. With
// LossRate > 0 the machine-anchored ARQ (arq.go) is armed: seed keys its
// hash-based loss draws and must be identical on every shard of one run,
// so a frame's fate is a pure function of its identity, not of shard count.
func (n *Network) SetCanonical(machines int, seed int64, local func(addr.MachineID) bool, ship func(RemoteFrame)) {
	n.canon = true
	n.canonTotal = addr.MachineID(machines)
	n.canonLocal = local
	n.canonShip = ship
	n.sendSeq = make([]uint64, machines+1)
	n.pumpFn = n.pump
	// The hash-draw seed is armed in lossless mode too: burst drops on the
	// canonical path draw by frame identity (see sendFaulty), so they stay
	// shard-count invariant.
	n.arqSeed = uint64(seed)
	if n.cfg.LossRate > 0 {
		n.arqOn = true
		n.inflight = make(map[uint64]*arqFlight)
	}
	// Pre-size the dense per-machine counters to the whole cluster: this
	// shard accounts FramesIn for remote receivers it sends to, and the
	// obs registry registers one sampler row per machine on every shard so
	// merged snapshots sum to the cluster totals.
	n.stats.machine(addr.MachineID(machines))
}

// canonSend routes one lossless frame canonically. The arrival time is
// computed on the sending shard (now + transit), so a shipped frame carries
// its exact delivery timestamp with it.
//
//demos:hotpath — the sharded lossless path must stay allocation-free for local targets: checked by demoslint (hotpathalloc); dynamic guard: TestShardHotPathZeroAlloc in internal/core/shard_test.go.
//demos:owner inflight — the pending heap owns the frame until pump hands it to deliver; a frame shipped cross-shard is a heap clone (the pooled original is retired to its owner first).
func (n *Network) canonSend(from, to addr.MachineID, m *msg.Message, size int, extra sim.Time) {
	at := n.eng.Now() + n.transit(from, to, size) + extra
	n.sendSeq[from]++
	seq := n.sendSeq[from]
	m.Hops++
	if n.canonLocal(to) {
		n.pendPush(pendEnt{at: at, to: to, from: from, seq: seq, m: m})
		n.eng.AtGate(at, "netw:pump", n.pumpFn)
		return
	}
	if m.Pooled() {
		c := m.Clone()
		n.retire(from, m)
		m = c
	}
	n.canonShip(RemoteFrame{From: from, To: to, At: at, Seq: seq, M: m})
}

// EnqueueRemote lands a frame shipped from another shard: the cluster's
// mailbox drain calls this at a round barrier, strictly before the frame's
// arrival time (guaranteed by the conservative lookahead window).
//
//demos:owner inflight — the pending heap owns the shipped clone until pump delivers it.
func (n *Network) EnqueueRemote(f RemoteFrame) {
	n.pendPush(pendEnt{
		at: f.At, to: f.To, from: f.From, seq: f.Seq,
		class: f.Class, attempt: f.Attempt, id: f.ID, m: f.M,
	})
	n.eng.AtGate(f.At, "netw:pump", n.pumpFn)
}

// pump fires every pending delivery due at or before the current time. It
// runs as a gate event, so all frames arriving "at t" are delivered before
// any normal event at t — the same order a single shared engine produces.
// In ARQ mode entries carry a class and land through arqLand (arq.go); the
// lossless path pays one boolean test for that and stays allocation-free.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestShardHotPathZeroAlloc in internal/core/shard_test.go.
func (n *Network) pump() {
	now := n.eng.Now()
	for len(n.pend) > 0 && n.pend[0].at <= now {
		ent := n.pendPop()
		if n.arqOn {
			n.arqLand(ent)
			continue
		}
		n.deliver(ent.to, ent.m)
	}
}

// pendPush inserts into the canonical binary min-heap.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestShardHotPathZeroAlloc in internal/core/shard_test.go.
func (n *Network) pendPush(ent pendEnt) {
	n.pend = append(n.pend, ent)
	h := n.pend
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 1
		if pendLess(h[p], ent) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ent
}

// pendPop removes and returns the minimum entry.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestShardHotPathZeroAlloc in internal/core/shard_test.go.
func (n *Network) pendPop() pendEnt {
	h := n.pend
	root := h[0]
	last := len(h) - 1
	ent := h[last]
	h[last] = pendEnt{} // drop the frame pointer for GC
	n.pend = h[:last]
	h = n.pend
	i := 0
	for {
		c := i<<1 + 1
		if c >= last {
			break
		}
		if c+1 < last && pendLess(h[c+1], h[c]) {
			c++
		}
		if pendLess(ent, h[c]) {
			break
		}
		h[i] = h[c]
		i = c
	}
	if last > 0 {
		h[i] = ent
	}
	return root
}

// MinLatency returns the smallest one-way propagation latency between any
// ordered pair of the given machines under cfg (per-byte cost excluded).
// This is the conservative-lookahead window W for a sharded cluster.
func (cfg Config) MinLatency(machines int) sim.Time {
	cfg.fillDefaults()
	if cfg.PairLatency == nil {
		return cfg.Latency
	}
	var min sim.Time
	found := false
	for a := 1; a <= machines; a++ {
		for b := 1; b <= machines; b++ {
			if a == b {
				continue
			}
			l := cfg.PairLatency(addr.MachineID(a), addr.MachineID(b))
			if !found || l < min {
				min, found = l, true
			}
		}
	}
	if !found {
		return cfg.Latency
	}
	return min
}

// AckLatency returns the one-way transit time of a network-level ARQ ack:
// acks travel at the flat per-frame latency with no per-byte cost (they
// carry no payload; see arq.go). A lossy sharded cluster clamps its
// conservative lookahead window to min(MinLatency, AckLatency), because
// acks are cross-shard frames too.
func (cfg Config) AckLatency() sim.Time {
	cfg.fillDefaults()
	return cfg.Latency
}

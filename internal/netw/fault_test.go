package netw

import (
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/msg"
)

func TestPartitionLosslessDropsAndHeals(t *testing.T) {
	eng, n, _, r2 := setup(Config{Latency: 100})
	var dead []*msg.Message
	n.OnDead = func(to addr.MachineID, m *msg.Message) { dead = append(dead, m) }

	n.Partition(1, 2)
	if !n.Partitioned(1, 2) || !n.Partitioned(2, 1) {
		t.Fatal("partition is not symmetric")
	}
	n.Send(1, 2, frame(8))
	eng.Run()
	if len(r2.got) != 0 {
		t.Fatalf("delivered %d frames across a partition", len(r2.got))
	}
	if len(dead) != 1 {
		t.Fatalf("dead sink got %d frames, want 1", len(dead))
	}
	s := n.Stats()
	if s.PartitionDropped != 1 || s.Dropped != 1 {
		t.Fatalf("PartitionDropped=%d Dropped=%d, want 1/1", s.PartitionDropped, s.Dropped)
	}

	n.Heal(1, 2)
	if n.Partitioned(1, 2) {
		t.Fatal("still partitioned after Heal")
	}
	n.Send(1, 2, frame(8))
	eng.Run()
	if len(r2.got) != 1 {
		t.Fatalf("delivered %d frames after heal, want 1", len(r2.got))
	}
}

func TestPartitionARQRecoversAfterHeal(t *testing.T) {
	eng, n, _, r2 := setup(Config{LossRate: 0.0001, RetransTimeout: 1000, MaxRetries: 50})
	n.Partition(1, 2)
	n.Send(1, 2, frame(8))
	// Heal mid-flight: the pending retransmission should get through.
	eng.After(5_000, "test:heal", func() { n.Heal(1, 2) })
	eng.Run()
	if len(r2.got) != 1 {
		t.Fatalf("delivered %d frames, want 1 (ARQ should survive a healed partition)", len(r2.got))
	}
	if s := n.Stats(); s.Retransmits == 0 {
		t.Fatal("expected retransmissions while partitioned")
	}
}

func TestPartitionARQExhaustsRetries(t *testing.T) {
	eng, n, _, r2 := setup(Config{LossRate: 0.0001, RetransTimeout: 500, MaxRetries: 3})
	var dead []*msg.Message
	n.OnDead = func(to addr.MachineID, m *msg.Message) { dead = append(dead, m) }
	n.Partition(1, 2)
	n.Send(1, 2, frame(8))
	eng.Run()
	if len(r2.got) != 0 {
		t.Fatalf("delivered %d frames across a permanent partition", len(r2.got))
	}
	if len(dead) != 1 {
		t.Fatalf("dead sink got %d frames, want 1 after retries exhausted", len(dead))
	}
	if s := n.Stats(); s.Dead != 1 {
		t.Fatalf("Dead=%d, want 1", s.Dead)
	}
}

func TestLossBurstLossless(t *testing.T) {
	eng, n, _, r2 := setup(Config{Latency: 100})
	var dead int
	n.OnDead = func(addr.MachineID, *msg.Message) { dead++ }

	n.LossBurst(1.0, 10_000) // certain loss until t=10_000
	n.Send(1, 2, frame(8))
	eng.Run()
	if len(r2.got) != 0 {
		t.Fatal("frame survived a rate-1.0 burst")
	}
	s := n.Stats()
	if s.BurstDropped != 1 || dead != 1 {
		t.Fatalf("BurstDropped=%d dead=%d, want 1/1", s.BurstDropped, dead)
	}

	// After the burst window the drop probability is gone.
	eng.At(20_000, "test:send", func() { n.Send(1, 2, frame(8)) })
	eng.Run()
	if len(r2.got) != 1 {
		t.Fatalf("delivered %d frames after burst expiry, want 1", len(r2.got))
	}
}

func TestDuplicateNextLosslessDeliversTwice(t *testing.T) {
	eng, n, _, r2 := setup(Config{Latency: 100})
	n.DuplicateNext(1, 2, 1)
	n.Send(1, 2, frame(8))
	n.Send(1, 2, frame(8)) // second send: injection already consumed
	eng.Run()
	if len(r2.got) != 3 {
		t.Fatalf("delivered %d frames, want 3 (one duplicated, one clean)", len(r2.got))
	}
	if s := n.Stats(); s.DupInjected != 1 {
		t.Fatalf("DupInjected=%d, want 1", s.DupInjected)
	}
}

func TestDuplicateNextARQSuppressedByDedup(t *testing.T) {
	eng, n, _, r2 := setup(Config{LossRate: 0.0001, RetransTimeout: 5000, MaxRetries: 10})
	n.DuplicateNext(1, 2, 1)
	n.Send(1, 2, frame(8))
	eng.Run()
	if len(r2.got) != 1 {
		t.Fatalf("delivered %d frames, want 1 (receiver dedup must eat the wire duplicate)", len(r2.got))
	}
	s := n.Stats()
	if s.DupInjected != 1 {
		t.Fatalf("DupInjected=%d, want 1", s.DupInjected)
	}
	if s.Duplicates == 0 {
		t.Fatal("receiver dedup never counted the suppressed copy")
	}
}

func TestDelayNextReorders(t *testing.T) {
	eng, n, _, r2 := setup(Config{Latency: 100})
	n.DelayNext(1, 2, 50_000)
	a := frame(8)
	a.Seq = 1
	b := frame(8)
	b.Seq = 2
	n.Send(1, 2, a) // held back 50_000
	n.Send(1, 2, b) // normal transit: overtakes a
	eng.Run()
	if len(r2.got) != 2 {
		t.Fatalf("delivered %d frames, want 2", len(r2.got))
	}
	if r2.got[0].Seq != 2 || r2.got[1].Seq != 1 {
		t.Fatalf("delayed frame not reordered: got seqs %d,%d", r2.got[0].Seq, r2.got[1].Seq)
	}
	if s := n.Stats(); s.DelayInjected != 1 {
		t.Fatalf("DelayInjected=%d, want 1", s.DelayInjected)
	}
}

func TestSendFromDownCounted(t *testing.T) {
	eng, n, _, r2 := setup(Config{Latency: 100})
	var dead int
	n.OnDead = func(addr.MachineID, *msg.Message) { dead++ }
	n.SetDown(1, true)
	n.Send(1, 2, frame(8))
	eng.Run()
	if len(r2.got) != 0 {
		t.Fatal("a crashed machine's send was delivered")
	}
	s := n.Stats()
	if s.SendFromDown != 1 {
		t.Fatalf("SendFromDown=%d, want 1", s.SendFromDown)
	}
	if dead != 1 {
		t.Fatalf("dead sink got %d frames, want 1", dead)
	}

	n.SetDown(1, false)
	n.Send(1, 2, frame(8))
	eng.Run()
	if len(r2.got) != 1 {
		t.Fatalf("delivered %d frames after recovery, want 1", len(r2.got))
	}
}

func TestSendToDownLossless(t *testing.T) {
	eng, n, _, r2 := setup(Config{Latency: 100})
	var dead int
	n.OnDead = func(addr.MachineID, *msg.Message) { dead++ }
	n.SetDown(2, true)
	n.Send(1, 2, frame(8))
	eng.Run()
	if len(r2.got) != 0 {
		t.Fatal("delivered to a down machine")
	}
	if s := n.Stats(); s.Dropped != 1 || dead != 1 {
		t.Fatalf("Dropped=%d dead=%d, want 1/1", s.Dropped, dead)
	}
}

func TestSendToDownARQDeliversAfterRecovery(t *testing.T) {
	eng, n, _, r2 := setup(Config{LossRate: 0.0001, RetransTimeout: 1000, MaxRetries: 50})
	n.SetDown(2, true)
	n.Send(1, 2, frame(8))
	eng.After(4_000, "test:up", func() { n.SetDown(2, false) })
	eng.Run()
	if len(r2.got) != 1 {
		t.Fatalf("delivered %d frames, want 1 (ARQ should retry past the outage)", len(r2.got))
	}
}

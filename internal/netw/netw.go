// Package netw simulates the inter-machine communication of DEMOS/MP.
//
// The paper assumes that "reliable message delivery is provided by some
// lower level mechanism, for example, published communications". This
// package is that lower level: frames between kernels experience a base
// latency plus a per-byte transmission cost, may be lost (when a loss rate
// is configured), and are recovered by a per-frame acknowledge/retransmit
// scheme with receiver-side deduplication, so the guarantee the kernels see
// is the paper's: "any message sent will eventually be delivered".
//
// The lossless send path is allocation-free in steady state: per-kind and
// per-machine counters are fixed-size arrays and a dense slice (the map
// form of Stats is rebuilt only in Stats() snapshots), and delivery is
// scheduled through a pooled record whose callback closure is built once
// and reused — see bench_hotpath_test.go for the zero-alloc guards.
package netw

import (
	"fmt"
	"sort"

	"demosmp/internal/addr"
	"demosmp/internal/msg"
	"demosmp/internal/obs"
	"demosmp/internal/sim"
)

// Config sets the network model parameters. Defaults approximate the
// paper's era: a few-Mbit LAN between Z8000-class machines.
type Config struct {
	// Latency is the fixed per-frame propagation+processing delay.
	Latency sim.Time
	// PerByteNanos is the transmission cost per byte, in nanoseconds.
	PerByteNanos uint32
	// LossRate is the probability a frame (or its network-level ack) is
	// dropped. Zero disables the ARQ machinery entirely.
	LossRate float64
	// RetransTimeout is how long the sender waits for a network-level
	// ack before retransmitting.
	RetransTimeout sim.Time
	// MaxRetries bounds retransmissions; afterwards the frame is handed
	// to the undeliverable callback (e.g. the destination crashed).
	MaxRetries int
	// PairLatency, when set, replaces the uniform Latency with a
	// per-machine-pair propagation delay — a heterogeneous topology
	// (the per-byte transmission cost still applies on top). It must be
	// symmetric if the experiment assumes it.
	PairLatency func(a, b addr.MachineID) sim.Time
}

// DefaultConfig returns the standard parameters: 500µs latency,
// ~2.7µs/byte (≈3 Mbit/s), lossless.
func DefaultConfig() Config {
	return Config{
		Latency:        500,
		PerByteNanos:   2700,
		RetransTimeout: 20000,
		MaxRetries:     30,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.Latency == 0 {
		c.Latency = d.Latency
	}
	if c.PerByteNanos == 0 {
		c.PerByteNanos = d.PerByteNanos
	}
	if c.RetransTimeout == 0 {
		c.RetransTimeout = d.RetransTimeout
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = d.MaxRetries
	}
}

// Endpoint receives frames addressed to a machine; kernels implement it.
type Endpoint interface {
	DeliverFrame(m *msg.Message)
}

// Stats aggregates network activity. Per-kind counters let the experiments
// separate administrative traffic from data streams and link updates.
// A Stats value is a point-in-time snapshot built by Network.Stats(); the
// live counters behind it are flat arrays, not these maps.
type Stats struct {
	Frames      uint64
	Bytes       uint64
	Delivered   uint64
	Dropped     uint64 // frames lost to the configured loss rate
	Retransmits uint64
	Duplicates  uint64 // retransmissions suppressed at the receiver
	Dead        uint64 // frames abandoned after MaxRetries

	// Fault-injection accounting (see fault.go). Every dropped frame is
	// both counted here and handed to the undeliverable sink, so dead
	// letters balance cluster-wide.
	SendFromDown     uint64 // sends attempted by a crashed machine
	PartitionDropped uint64 // lossless frames severed by a partition
	BurstDropped     uint64 // lossless frames lost to a loss burst
	DupInjected      uint64 // duplicate wire copies injected
	DelayInjected    uint64 // frames given extra transit (reordering)
	OrphanDropped    uint64 // abandoned frames with no reachable owner (sharded: sender on another shard)

	ByKind      map[msg.Kind]uint64
	BytesByKind map[msg.Kind]uint64
	PerMachine  map[addr.MachineID]MachineStats
}

// MachineStats counts a single machine's network activity.
type MachineStats struct {
	FramesOut, FramesIn uint64
	BytesOut, BytesIn   uint64
}

// Clone returns a deep copy of the stats (for before/after comparisons).
func (s *Stats) Clone() Stats {
	c := *s
	c.ByKind = make(map[msg.Kind]uint64, len(s.ByKind))
	for k, v := range s.ByKind {
		c.ByKind[k] = v
	}
	c.BytesByKind = make(map[msg.Kind]uint64, len(s.BytesByKind))
	for k, v := range s.BytesByKind {
		c.BytesByKind[k] = v
	}
	c.PerMachine = make(map[addr.MachineID]MachineStats, len(s.PerMachine))
	for k, v := range s.PerMachine {
		c.PerMachine[k] = v
	}
	return c
}

// counters is the live, allocation-free form of Stats: per-kind tallies in
// fixed arrays indexed by msg.Kind, per-machine tallies in a dense slice
// indexed by machine id.
type counters struct {
	frames      uint64
	bytes       uint64
	delivered   uint64
	dropped     uint64
	retransmits uint64
	duplicates  uint64
	dead        uint64

	sendFromDown     uint64
	partitionDropped uint64
	burstDropped     uint64
	dupInjected      uint64
	delayInjected    uint64
	orphanDropped    uint64

	byKind      [msg.KindCount]uint64
	bytesByKind [msg.KindCount]uint64
	perMachine  []MachineStats // indexed by uint16(MachineID)
}

// machine returns the dense slot for m, growing the slice on first sight.
func (c *counters) machine(m addr.MachineID) *MachineStats {
	if int(m) >= len(c.perMachine) {
		grown := make([]MachineStats, int(m)+1)
		copy(grown, c.perMachine)
		c.perMachine = grown
	}
	return &c.perMachine[m]
}

// snapshot rebuilds the public map-based Stats view.
func (c *counters) snapshot() Stats {
	s := Stats{
		Frames: c.frames, Bytes: c.bytes, Delivered: c.delivered,
		Dropped: c.dropped, Retransmits: c.retransmits,
		Duplicates: c.duplicates, Dead: c.dead,
		SendFromDown: c.sendFromDown, PartitionDropped: c.partitionDropped,
		BurstDropped: c.burstDropped, DupInjected: c.dupInjected,
		DelayInjected: c.delayInjected, OrphanDropped: c.orphanDropped,
		ByKind:        make(map[msg.Kind]uint64),
		BytesByKind:   make(map[msg.Kind]uint64),
		PerMachine:    make(map[addr.MachineID]MachineStats),
	}
	for k, v := range c.byKind {
		if v > 0 {
			s.ByKind[msg.Kind(k)] = v
		}
	}
	for k, v := range c.bytesByKind {
		if v > 0 {
			s.BytesByKind[msg.Kind(k)] = v
		}
	}
	for m, ms := range c.perMachine {
		if ms != (MachineStats{}) {
			s.PerMachine[addr.MachineID(m)] = ms
		}
	}
	return s
}

// delivery is a pooled record standing in for the two closures the lossless
// send path used to allocate per frame: its fn is bound once when the record
// is created and reused for every subsequent frame it carries.
type delivery struct {
	n    *Network
	to   addr.MachineID
	m    *msg.Message
	fn   func()
	next *delivery
}

// dedupWindow bounds the per-pair receiver dedup state. A duplicate can
// only arrive within MaxRetries*RetransTimeout of the original, so a window
// of recent ids is enough; anything older has aged out of the ring.
const dedupWindow = 1024

// dedup is a bounded ring of the most recently delivered frame ids for one
// (from, to) pair, with a set for O(1) membership. Insertion past the
// window evicts the oldest id, so the state can never grow beyond
// dedupWindow entries per pair no matter how long loss is sustained.
//
// Pairs are sparse: state is created on a pair's first arrival, stamped on
// every use, and evicted back to a free pool once the pair has been idle
// longer than any duplicate could survive (sweepDedup). On a 1000-machine
// topology the map therefore tracks O(active pairs), never O(n²) — see
// TestDedupStateBoundedLargeTopology.
type dedup struct {
	ring [dedupWindow]uint64
	n    int // filled entries, ≤ dedupWindow
	pos  int // next overwrite position once full
	set  map[uint64]struct{}
	last sim.Time // sim time of the pair's most recent arrival
	next *dedup   // free-pool linkage while evicted
}

func newDedup() *dedup {
	return &dedup{set: make(map[uint64]struct{}, dedupWindow)}
}

// reset clears the ring and set in place (no reallocation) so the struct
// can be recycled for a different pair. The ring's first n slots hold
// exactly the set's members, so the set is emptied without ranging over it.
func (d *dedup) reset() {
	for i := 0; i < d.n; i++ {
		delete(d.set, d.ring[i])
	}
	d.n, d.pos, d.last = 0, 0, 0
}

func (d *dedup) seen(id uint64) bool {
	_, dup := d.set[id]
	return dup
}

func (d *dedup) add(id uint64) {
	if d.n < dedupWindow {
		d.ring[d.n] = id
		d.n++
	} else {
		delete(d.set, d.ring[d.pos])
		d.ring[d.pos] = id
		d.pos++
		if d.pos == dedupWindow {
			d.pos = 0
		}
	}
	d.set[id] = struct{}{}
}

// size reports the tracked-id count (tests assert boundedness).
func (d *dedup) size() int { return len(d.set) }

// Network connects the machines of a cluster.
type Network struct {
	eng   *sim.Engine
	cfg   Config
	eps   map[addr.MachineID]Endpoint
	down  map[addr.MachineID]bool
	stats counters

	delFree *delivery // pool of reusable lossless-delivery records

	// ARQ state, only used when LossRate > 0. delivered is sparse (first
	// arrival creates a pair's state) and bounded (idle pairs are swept
	// back into dedupFree), so long runs on large topologies stay
	// O(active pairs).
	nextFrameID uint64
	delivered   map[pair]*dedup
	dedupFree   *dedup // pool of evicted, reset dedup states
	arrivals    uint64 // arrive() calls, drives the amortized sweep

	// Canonical (sharded) delivery state — canon.go. When canon is set the
	// lossless path routes every frame through the pending heap + gate
	// pump (local targets) or the cross-shard ship hook (remote targets)
	// instead of scheduling per-frame delivery events directly.
	canon      bool
	canonTotal addr.MachineID
	canonLocal func(addr.MachineID) bool
	canonShip  func(RemoteFrame)
	sendSeq    []uint64  // per-sending-machine dense frame sequence
	pend       []pendEnt // binary min-heap keyed (at, to, from, seq, class, attempt)
	pumpFn     func()    // bound once; fires pending deliveries due now

	// Machine-anchored ARQ state for canonical mode (arq.go), armed by
	// SetCanonical when LossRate > 0. inflight is keyed by shard-invariant
	// frame id (sender machine << 48 | per-sender seq); every flight lives
	// on the sending machine's own shard.
	arqOn    bool
	arqSeed  uint64
	inflight map[uint64]*arqFlight

	// Fault-injection state (fault.go). faulty is the single hot-path
	// guard: it is true only while some injected condition could alter a
	// send, so the annotated fast path pays one boolean test when the
	// fault plane is idle.
	faulty    bool
	parts     map[pair]struct{} // severed pairs, normalized from<to
	burstRate float64
	burstEnd  sim.Time
	dupNext   map[pair]int      // directional: duplicate the next n frames
	delayNext map[pair]sim.Time // directional: extra transit for next frame

	// Frame ownership (fault.go): per-machine sinks that receive released
	// and undeliverable envelopes, captured at Attach time.
	owners    map[addr.MachineID]FrameOwner
	sinkQ     []sinkItem
	sinkArmed bool
	sinkFn    func()

	// OnDead receives frames abandoned after MaxRetries (typically
	// because the destination machine is down). When nil, abandoned
	// frames go to the sending machine's FrameOwner instead (fault.go).
	OnDead func(to addr.MachineID, m *msg.Message)

	// Observability (obs.go): registry-owned frame-size histogram, nil
	// until RegisterObs; account touches it behind one nil check.
	hFrame *obs.Histogram
}

type pair struct{ from, to addr.MachineID }

// New creates a network driven by eng.
func New(eng *sim.Engine, cfg Config) *Network {
	cfg.fillDefaults()
	n := &Network{
		eng:       eng,
		cfg:       cfg,
		eps:       make(map[addr.MachineID]Endpoint),
		down:      make(map[addr.MachineID]bool),
		delivered: make(map[pair]*dedup),
		parts:     make(map[pair]struct{}),
		dupNext:   make(map[pair]int),
		delayNext: make(map[pair]sim.Time),
		owners:    make(map[addr.MachineID]FrameOwner),
	}
	n.sinkFn = n.runSink
	return n
}

// Config returns the active configuration.
func (n *Network) Config() Config { return n.cfg }

// Lossy reports whether frames can be dropped and retransmitted (the ARQ
// is armed). Pooled envelopes are safe on a lossy network: the ARQ never
// retains them — Send copies a pooled envelope to the heap for delivery
// and retransmission and retires the original to its owner (fault.go).
func (n *Network) Lossy() bool { return n.cfg.LossRate > 0 }

// Attach registers the endpoint for machine m. An endpoint that also
// implements FrameOwner becomes the sink for envelopes this machine sent
// that the network consumed (retired pooled originals) or abandoned
// (partition, crash, retries exhausted).
func (n *Network) Attach(m addr.MachineID, ep Endpoint) {
	if _, dup := n.eps[m]; dup {
		panic(fmt.Sprintf("netw: machine %v attached twice", m))
	}
	n.eps[m] = ep
	if o, ok := ep.(FrameOwner); ok {
		n.owners[m] = o
	}
	n.stats.machine(m) // pre-size the dense per-machine counters
}

// SetDown marks a machine as crashed (true) or recovered (false). Frames to
// a down machine are lost; the ARQ keeps retrying until MaxRetries.
func (n *Network) SetDown(m addr.MachineID, down bool) { n.down[m] = down }

// Down reports whether machine m is marked crashed.
func (n *Network) Down(m addr.MachineID) bool { return n.down[m] }

// Stats returns a snapshot of the accumulated counters.
func (n *Network) Stats() Stats { return n.stats.snapshot() }

// TransitTime returns the modeled one-way time for a frame of size bytes
// over a default-latency hop (pair-specific latency, if configured, is
// applied at Send time).
func (n *Network) TransitTime(size int) sim.Time {
	return n.cfg.Latency + sim.Time(uint64(size)*uint64(n.cfg.PerByteNanos)/1000)
}

// transit returns the one-way time between a specific pair.
func (n *Network) transit(from, to addr.MachineID, size int) sim.Time {
	lat := n.cfg.Latency
	if n.cfg.PairLatency != nil {
		lat = n.cfg.PairLatency(from, to)
	}
	return lat + sim.Time(uint64(size)*uint64(n.cfg.PerByteNanos)/1000)
}

// Send transmits m from machine 'from' to machine 'to'. Delivery is
// asynchronous; with a configured loss rate the frame is retransmitted
// until acknowledged. Sending from a down machine drops the frame into the
// undeliverable accounting path (a crashed kernel cannot transmit, but the
// loss must not be silent).
//
//demos:hotpath — the lossless path must stay allocation-free: checked by demoslint (hotpathalloc); dynamic guard: TestHotPathZeroAlloc/netw-send and BenchmarkNetwSend in bench_hotpath_test.go.
func (n *Network) Send(from, to addr.MachineID, m *msg.Message) {
	if from == to {
		panicLocalSend(from, to)
	}
	if _, ok := n.eps[to]; !ok {
		// In canonical (sharded) mode machines on other shards have no
		// local endpoint; any id within the cluster is routable.
		if !n.canon || to == 0 || to > n.canonTotal {
			panicNoEndpoint(to)
		}
	}
	if n.down[from] {
		n.dropFromDown(from, to, m)
		return
	}
	if n.faulty {
		n.sendFaulty(from, to, m)
		return
	}
	size := m.WireSize()
	n.account(from, to, m, size)
	if n.cfg.LossRate <= 0 {
		if n.canon {
			n.canonSend(from, to, m, size, 0)
			return
		}
		m.Hops++
		d := n.getDelivery(to, m)
		n.eng.After(n.transit(from, to, size), "netw:deliver", d.fn)
		return
	}
	if n.canon {
		n.canonSendARQ(from, to, m, size, 0, false)
		return
	}
	n.sendARQ(from, to, m, size, 0, false)
}

// panicLocalSend and panicNoEndpoint keep fmt's formatting machinery (and
// its interface boxing) off the annotated Send hot path; they run only on
// programming errors.
func panicLocalSend(from, to addr.MachineID) {
	panic(fmt.Sprintf("netw: local send %v->%v must not use the network", from, to))
}

func panicNoEndpoint(to addr.MachineID) {
	panic(fmt.Sprintf("netw: no endpoint for machine %v", to))
}

// getDelivery pops a pooled delivery record (or builds one, binding its
// callback closure exactly once) and loads it with this frame.
//
//demos:hotpath — checked by demoslint (hotpathalloc); the pool is what keeps TestHotPathZeroAlloc/netw-send at zero allocations.
//demos:owner inflight — the pooled delivery record owns the frame while it rides the event queue; run() releases the record and hands the frame to DeliverFrame.
func (n *Network) getDelivery(to addr.MachineID, m *msg.Message) *delivery {
	d := n.delFree
	if d == nil {
		d = &delivery{n: n}
		d.fn = d.run
	} else {
		n.delFree = d.next
	}
	d.to, d.m = to, m
	return d
}

// run fires a pooled delivery: it releases the record back to the pool
// first so a nested Send inside DeliverFrame can reuse it.
//
//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestHotPathZeroAlloc/netw-send in bench_hotpath_test.go.
func (d *delivery) run() {
	n, to, m := d.n, d.to, d.m
	d.m = nil
	d.next = n.delFree
	n.delFree = d
	n.deliver(to, m)
}

//demos:hotpath — flat-array counters, no map writes: checked by demoslint (hotpathalloc) and TestHotPathZeroAlloc/netw-send.
func (n *Network) account(from, to addr.MachineID, m *msg.Message, size int) {
	c := &n.stats
	c.frames++
	c.bytes += uint64(size)
	if k := int(m.Kind); k < msg.KindCount {
		c.byKind[k]++
		c.bytesByKind[k] += uint64(size)
	}
	fs := c.machine(from)
	fs.FramesOut++
	fs.BytesOut += uint64(size)
	ts := c.machine(to)
	ts.FramesIn++
	ts.BytesIn += uint64(size)
	if n.hFrame != nil {
		n.hFrame.Observe(uint64(size))
	}
}

//demos:hotpath — checked by demoslint (hotpathalloc); dynamic guard: TestHotPathZeroAlloc/netw-send in bench_hotpath_test.go.
func (n *Network) deliver(to addr.MachineID, m *msg.Message) {
	if n.down[to] {
		n.dropToDown(to, m)
		return
	}
	n.stats.delivered++
	n.eps[to].DeliverFrame(m)
}

// dedupSize reports the receiver dedup state tracked for a pair (test hook).
func (n *Network) dedupSize(from, to addr.MachineID) int {
	if d := n.delivered[pair{from, to}]; d != nil {
		return d.size()
	}
	return 0
}

// dedupPairs reports how many pairs currently hold dedup state (test hook
// for the O(active pairs) bound).
func (n *Network) dedupPairs() int { return len(n.delivered) }

// dedupPooled reports how many evicted dedup states sit in the free pool
// (test hook).
func (n *Network) dedupPooled() int {
	c := 0
	for d := n.dedupFree; d != nil; d = d.next {
		c++
	}
	return c
}

// dedupSweepEvery amortizes idle-pair eviction: one sweep per this many
// arrivals keeps the scan cost negligible against delivery work.
const dedupSweepEvery = 256

// dedupRetention is how long an idle pair's dedup state must be kept: no
// duplicate can trail the original by more than the full retry budget, so
// twice that is a safe eviction horizon.
func (n *Network) dedupRetention() sim.Time {
	return 2 * n.cfg.RetransTimeout * sim.Time(n.cfg.MaxRetries)
}

// sweepDedup evicts dedup state for pairs idle past the retention horizon,
// recycling the structs through the free pool. Keys are collected and
// sorted before mutation so the pool's ordering stays deterministic.
func (n *Network) sweepDedup() {
	ret := n.dedupRetention()
	now := n.eng.Now()
	if now <= ret {
		return
	}
	cutoff := now - ret
	var idle []pair
	for k, d := range n.delivered {
		if d.last < cutoff {
			idle = append(idle, k)
		}
	}
	if len(idle) == 0 {
		return
	}
	sort.Slice(idle, func(i, j int) bool {
		if idle[i].from != idle[j].from {
			return idle[i].from < idle[j].from
		}
		return idle[i].to < idle[j].to
	})
	for _, k := range idle {
		d := n.delivered[k]
		d.reset()
		d.next = n.dedupFree
		n.dedupFree = d
		delete(n.delivered, k)
	}
}

// getDedup pops a recycled dedup state or builds a fresh one.
func (n *Network) getDedup() *dedup {
	if d := n.dedupFree; d != nil {
		n.dedupFree = d.next
		d.next = nil
		return d
	}
	return newDedup()
}

// arrive lands one ARQ frame copy at the receiver, suppressing duplicate
// ids (retransmissions and injected duplicates alike). Returns whether the
// frame was actually delivered.
func (n *Network) arrive(from, to addr.MachineID, m *msg.Message, id uint64) bool {
	n.arrivals++
	if n.arrivals%dedupSweepEvery == 0 {
		n.sweepDedup()
	}
	key := pair{from, to}
	seen := n.delivered[key]
	if seen == nil {
		seen = n.getDedup()
		n.delivered[key] = seen
	}
	seen.last = n.eng.Now()
	if seen.seen(id) {
		n.stats.duplicates++
		return false
	}
	seen.add(id)
	n.deliver(to, m)
	return true
}

// transmit is one ARQ attempt. The ack travels as a zero-cost event (the
// real ack bytes are negligible and not part of the paper's accounting).
// extra delays only this attempt's delivery (reorder injection); a
// partition or an active loss burst raises the effective loss probability
// per attempt, so retries outlasting the fault still get through.
//
//demos:owner inflight — transmit's deliver/retransmit events own the frame until it arrives or the ARQ gives up and routes it to deadFrame; sendARQ guarantees it is a heap clone, never a pooled envelope.
func (n *Network) transmit(from, to addr.MachineID, m *msg.Message, size int, id uint64, attempt int, extra sim.Time) {
	if attempt > 0 {
		n.stats.retransmits++
	}
	rate := n.cfg.LossRate
	if n.burstEnd > n.eng.Now() && n.burstRate > rate {
		rate = n.burstRate
	}
	cut := n.partitioned(from, to)
	lostFrame := n.eng.Rand().Float64() < rate || n.down[to] || cut
	lostAck := n.eng.Rand().Float64() < rate || cut
	acked := false

	if !lostFrame {
		m.Hops++
		n.eng.After(n.transit(from, to, size)+extra, "netw:deliver", func() {
			n.arrive(from, to, m, id)
			if !lostAck {
				n.eng.After(n.cfg.Latency, "netw:ack", func() { acked = true })
			}
		})
	} else {
		n.stats.dropped++
	}

	n.eng.After(n.cfg.RetransTimeout+extra, "netw:retrans-check", func() {
		if acked {
			return
		}
		if attempt+1 >= n.cfg.MaxRetries {
			n.stats.dead++
			n.deadFrame(from, to, m)
			return
		}
		n.transmit(from, to, m, size, id, attempt+1, 0)
	})
}

// Package netw simulates the inter-machine communication of DEMOS/MP.
//
// The paper assumes that "reliable message delivery is provided by some
// lower level mechanism, for example, published communications". This
// package is that lower level: frames between kernels experience a base
// latency plus a per-byte transmission cost, may be lost (when a loss rate
// is configured), and are recovered by a per-frame acknowledge/retransmit
// scheme with receiver-side deduplication, so the guarantee the kernels see
// is the paper's: "any message sent will eventually be delivered".
package netw

import (
	"fmt"

	"demosmp/internal/addr"
	"demosmp/internal/msg"
	"demosmp/internal/sim"
)

// Config sets the network model parameters. Defaults approximate the
// paper's era: a few-Mbit LAN between Z8000-class machines.
type Config struct {
	// Latency is the fixed per-frame propagation+processing delay.
	Latency sim.Time
	// PerByteNanos is the transmission cost per byte, in nanoseconds.
	PerByteNanos uint32
	// LossRate is the probability a frame (or its network-level ack) is
	// dropped. Zero disables the ARQ machinery entirely.
	LossRate float64
	// RetransTimeout is how long the sender waits for a network-level
	// ack before retransmitting.
	RetransTimeout sim.Time
	// MaxRetries bounds retransmissions; afterwards the frame is handed
	// to the undeliverable callback (e.g. the destination crashed).
	MaxRetries int
	// PairLatency, when set, replaces the uniform Latency with a
	// per-machine-pair propagation delay — a heterogeneous topology
	// (the per-byte transmission cost still applies on top). It must be
	// symmetric if the experiment assumes it.
	PairLatency func(a, b addr.MachineID) sim.Time
}

// DefaultConfig returns the standard parameters: 500µs latency,
// ~2.7µs/byte (≈3 Mbit/s), lossless.
func DefaultConfig() Config {
	return Config{
		Latency:        500,
		PerByteNanos:   2700,
		RetransTimeout: 20000,
		MaxRetries:     30,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.Latency == 0 {
		c.Latency = d.Latency
	}
	if c.PerByteNanos == 0 {
		c.PerByteNanos = d.PerByteNanos
	}
	if c.RetransTimeout == 0 {
		c.RetransTimeout = d.RetransTimeout
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = d.MaxRetries
	}
}

// Endpoint receives frames addressed to a machine; kernels implement it.
type Endpoint interface {
	DeliverFrame(m *msg.Message)
}

// Stats aggregates network activity. Per-kind counters let the experiments
// separate administrative traffic from data streams and link updates.
type Stats struct {
	Frames      uint64
	Bytes       uint64
	Delivered   uint64
	Dropped     uint64 // frames lost to the configured loss rate
	Retransmits uint64
	Duplicates  uint64 // retransmissions suppressed at the receiver
	Dead        uint64 // frames abandoned after MaxRetries
	ByKind      map[msg.Kind]uint64
	BytesByKind map[msg.Kind]uint64
	PerMachine  map[addr.MachineID]MachineStats
}

// MachineStats counts a single machine's network activity.
type MachineStats struct {
	FramesOut, FramesIn uint64
	BytesOut, BytesIn   uint64
}

func newStats() Stats {
	return Stats{
		ByKind:      make(map[msg.Kind]uint64),
		BytesByKind: make(map[msg.Kind]uint64),
		PerMachine:  make(map[addr.MachineID]MachineStats),
	}
}

// Clone returns a deep copy of the stats (for before/after comparisons).
func (s *Stats) Clone() Stats {
	c := *s
	c.ByKind = make(map[msg.Kind]uint64, len(s.ByKind))
	for k, v := range s.ByKind {
		c.ByKind[k] = v
	}
	c.BytesByKind = make(map[msg.Kind]uint64, len(s.BytesByKind))
	for k, v := range s.BytesByKind {
		c.BytesByKind[k] = v
	}
	c.PerMachine = make(map[addr.MachineID]MachineStats, len(s.PerMachine))
	for k, v := range s.PerMachine {
		c.PerMachine[k] = v
	}
	return c
}

// Network connects the machines of a cluster.
type Network struct {
	eng   *sim.Engine
	cfg   Config
	eps   map[addr.MachineID]Endpoint
	down  map[addr.MachineID]bool
	stats Stats

	// ARQ state, only used when LossRate > 0.
	nextFrameID uint64
	delivered   map[pair]map[uint64]struct{}

	// OnDead receives frames abandoned after MaxRetries (typically
	// because the destination machine is down). May be nil.
	OnDead func(to addr.MachineID, m *msg.Message)
}

type pair struct{ from, to addr.MachineID }

// New creates a network driven by eng.
func New(eng *sim.Engine, cfg Config) *Network {
	cfg.fillDefaults()
	return &Network{
		eng:       eng,
		cfg:       cfg,
		eps:       make(map[addr.MachineID]Endpoint),
		down:      make(map[addr.MachineID]bool),
		stats:     newStats(),
		delivered: make(map[pair]map[uint64]struct{}),
	}
}

// Config returns the active configuration.
func (n *Network) Config() Config { return n.cfg }

// Attach registers the endpoint for machine m.
func (n *Network) Attach(m addr.MachineID, ep Endpoint) {
	if _, dup := n.eps[m]; dup {
		panic(fmt.Sprintf("netw: machine %v attached twice", m))
	}
	n.eps[m] = ep
}

// SetDown marks a machine as crashed (true) or recovered (false). Frames to
// a down machine are lost; the ARQ keeps retrying until MaxRetries.
func (n *Network) SetDown(m addr.MachineID, down bool) { n.down[m] = down }

// Down reports whether machine m is marked crashed.
func (n *Network) Down(m addr.MachineID) bool { return n.down[m] }

// Stats returns a snapshot of the accumulated counters.
func (n *Network) Stats() Stats { return n.stats.Clone() }

// TransitTime returns the modeled one-way time for a frame of size bytes
// over a default-latency hop (pair-specific latency, if configured, is
// applied at Send time).
func (n *Network) TransitTime(size int) sim.Time {
	return n.cfg.Latency + sim.Time(uint64(size)*uint64(n.cfg.PerByteNanos)/1000)
}

// transit returns the one-way time between a specific pair.
func (n *Network) transit(from, to addr.MachineID, size int) sim.Time {
	lat := n.cfg.Latency
	if n.cfg.PairLatency != nil {
		lat = n.cfg.PairLatency(from, to)
	}
	return lat + sim.Time(uint64(size)*uint64(n.cfg.PerByteNanos)/1000)
}

// Send transmits m from machine 'from' to machine 'to'. Delivery is
// asynchronous; with a configured loss rate the frame is retransmitted
// until acknowledged. Sending from a down machine silently drops (a crashed
// kernel cannot transmit).
func (n *Network) Send(from, to addr.MachineID, m *msg.Message) {
	if from == to {
		panic(fmt.Sprintf("netw: local send %v->%v must not use the network", from, to))
	}
	if _, ok := n.eps[to]; !ok {
		panic(fmt.Sprintf("netw: no endpoint for machine %v", to))
	}
	if n.down[from] {
		return
	}
	size := m.WireSize()
	n.account(from, to, m, size)
	if n.cfg.LossRate <= 0 {
		m.Hops++
		n.eng.After(n.transit(from, to, size), "netw:deliver", func() {
			n.deliver(to, m)
		})
		return
	}
	id := n.nextFrameID
	n.nextFrameID++
	n.transmit(from, to, m, size, id, 0)
}

func (n *Network) account(from, to addr.MachineID, m *msg.Message, size int) {
	n.stats.Frames++
	n.stats.Bytes += uint64(size)
	n.stats.ByKind[m.Kind]++
	n.stats.BytesByKind[m.Kind] += uint64(size)
	fs := n.stats.PerMachine[from]
	fs.FramesOut++
	fs.BytesOut += uint64(size)
	n.stats.PerMachine[from] = fs
	ts := n.stats.PerMachine[to]
	ts.FramesIn++
	ts.BytesIn += uint64(size)
	n.stats.PerMachine[to] = ts
}

func (n *Network) deliver(to addr.MachineID, m *msg.Message) {
	if n.down[to] {
		n.stats.Dropped++
		return
	}
	n.stats.Delivered++
	n.eps[to].DeliverFrame(m)
}

// transmit is one ARQ attempt. The ack travels as a zero-cost event (the
// real ack bytes are negligible and not part of the paper's accounting).
func (n *Network) transmit(from, to addr.MachineID, m *msg.Message, size int, id uint64, attempt int) {
	if attempt > 0 {
		n.stats.Retransmits++
	}
	lostFrame := n.eng.Rand().Float64() < n.cfg.LossRate || n.down[to]
	lostAck := n.eng.Rand().Float64() < n.cfg.LossRate
	acked := false

	if !lostFrame {
		m.Hops++
		n.eng.After(n.transit(from, to, size), "netw:deliver", func() {
			key := pair{from, to}
			seen := n.delivered[key]
			if seen == nil {
				seen = make(map[uint64]struct{})
				n.delivered[key] = seen
			}
			if _, dup := seen[id]; dup {
				n.stats.Duplicates++
			} else {
				seen[id] = struct{}{}
				if len(seen) > 4096 {
					// Prune old ids; retransmits never lag this far.
					for k := range seen {
						if k+2048 < id {
							delete(seen, k)
						}
					}
				}
				n.deliver(to, m)
			}
			if !lostAck {
				n.eng.After(n.cfg.Latency, "netw:ack", func() { acked = true })
			}
		})
	} else {
		n.stats.Dropped++
	}

	n.eng.After(n.cfg.RetransTimeout, "netw:retrans-check", func() {
		if acked {
			return
		}
		if attempt+1 >= n.cfg.MaxRetries {
			n.stats.Dead++
			if n.OnDead != nil {
				n.OnDead(to, m)
			}
			return
		}
		n.transmit(from, to, m, size, id, attempt+1)
	})
}

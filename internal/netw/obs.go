package netw

// Observability wiring for the network: the flat counter arrays stay the
// single owner of every wire-level number (frames, wire bytes, drops,
// retransmits — see the ownership note on kernel.Stats); RegisterObs makes
// the registry read them live at snapshot time through sampler closures.
// The one registry-owned metric is the frame-size histogram fed from
// account behind a nil check, so an un-instrumented network pays nothing
// and an instrumented one pays a bits.Len64.

import (
	"strconv"

	"demosmp/internal/msg"
	"demosmp/internal/obs"
)

// RegisterObs registers the network's wire-level counters under "netw.*"
// and attaches the frame-size histogram. Call once, after every machine
// has been attached: per-machine rows are registered for the machines
// known at call time.
func (n *Network) RegisterObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	c := &n.stats
	reg.Sample("netw.frames", func() uint64 { return c.frames })
	reg.Sample("netw.bytes", func() uint64 { return c.bytes })
	reg.Sample("netw.delivered", func() uint64 { return c.delivered })
	reg.Sample("netw.dropped", func() uint64 { return c.dropped })
	reg.Sample("netw.retransmits", func() uint64 { return c.retransmits })
	reg.Sample("netw.duplicates", func() uint64 { return c.duplicates })
	reg.Sample("netw.dead", func() uint64 { return c.dead })
	reg.Sample("netw.send_from_down", func() uint64 { return c.sendFromDown })
	reg.Sample("netw.partition_dropped", func() uint64 { return c.partitionDropped })
	reg.Sample("netw.burst_dropped", func() uint64 { return c.burstDropped })
	reg.Sample("netw.dup_injected", func() uint64 { return c.dupInjected })
	reg.Sample("netw.delay_injected", func() uint64 { return c.delayInjected })
	reg.Sample("netw.orphan_dropped", func() uint64 { return c.orphanDropped })
	for i := 0; i < msg.KindCount; i++ {
		kind := msg.Kind(i)
		reg.Sample("netw.frames."+kind.String(), func() uint64 { return c.byKind[kind] })
		reg.Sample("netw.bytes."+kind.String(), func() uint64 { return c.bytesByKind[kind] })
	}
	// Machine IDs are dense 1..N in a composed cluster; the dense
	// perMachine slice is pre-sized by Attach (and, in canonical mode, by
	// SetCanonical to the whole cluster — a shard accounts FramesIn for
	// remote receivers, so every shard registers every machine's rows and
	// merged snapshots sum to cluster totals). Each sampler still guards
	// its index defensively.
	for m := 1; m < len(n.stats.perMachine); m++ {
		m := m
		mp := "netw.m" + strconv.Itoa(m) + "."
		reg.Sample(mp+"frames_out", func() uint64 {
			if m < len(c.perMachine) {
				return c.perMachine[m].FramesOut
			}
			return 0
		})
		reg.Sample(mp+"frames_in", func() uint64 {
			if m < len(c.perMachine) {
				return c.perMachine[m].FramesIn
			}
			return 0
		})
		reg.Sample(mp+"bytes_out", func() uint64 {
			if m < len(c.perMachine) {
				return c.perMachine[m].BytesOut
			}
			return 0
		})
		reg.Sample(mp+"bytes_in", func() uint64 {
			if m < len(c.perMachine) {
				return c.perMachine[m].BytesIn
			}
			return 0
		})
	}
	n.hFrame = reg.Histogram("netw.frame_bytes")
}

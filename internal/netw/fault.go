// Fault-injection plane for the network (see internal/chaos for the
// scenario driver). Everything here is cold-path: Send tests one boolean
// (n.faulty) and otherwise never enters this file, which is what keeps the
// hotpath zero-alloc guards passing with the fault plane compiled in.
//
// Accounting contract: a frame the network consumes without delivering is
// never silently lost. It is counted (SendFromDown / PartitionDropped /
// BurstDropped / Dead / Dropped) AND handed to a sink — OnDead if set,
// otherwise the sending machine's FrameOwner — so cluster-wide dead-letter
// and pooled-envelope ledgers balance after a chaos run.
package netw

import (
	"demosmp/internal/addr"
	"demosmp/internal/msg"
	"demosmp/internal/sim"
)

// FrameOwner is the envelope-return interface a machine's endpoint may
// implement (kernels do). The network calls it when it is done with a frame
// the owner submitted:
//
//   - ReleaseFrame: the network took a private copy (the ARQ retains only
//     heap clones) and the pooled original can be recycled.
//   - UndeliverableFrame: the frame was abandoned — sender down, pair
//     partitioned, burst loss in lossless mode, or retries exhausted.
//
// Both are invoked one engine step after the triggering Send (same sim
// time, later event), never synchronously: senders may legally read an
// envelope's routing fields immediately after Send returns.
type FrameOwner interface {
	ReleaseFrame(m *msg.Message)
	UndeliverableFrame(to addr.MachineID, m *msg.Message)
}

// sinkItem is one deferred envelope handoff.
type sinkItem struct {
	owner FrameOwner // nil: dead frame for the OnDead callback
	m     *msg.Message
	to    addr.MachineID
	dead  bool
}

// queueSink schedules a deferred handoff. All queued items run in one
// "netw:sink" event at the current sim time, after the in-flight callback
// (typically a Send caller) has finished with the envelope.
func (n *Network) queueSink(it sinkItem) {
	n.sinkQ = append(n.sinkQ, it)
	if !n.sinkArmed {
		n.sinkArmed = true
		n.eng.After(0, "netw:sink", n.sinkFn)
	}
}

// runSink drains the handoff queue. Handlers may trigger further sends
// (and thus further queueSink calls); the index loop picks those up in the
// same pass, and the re-armed event then finds an empty queue.
func (n *Network) runSink() {
	n.sinkArmed = false
	for i := 0; i < len(n.sinkQ); i++ {
		it := n.sinkQ[i]
		n.sinkQ[i] = sinkItem{}
		switch {
		case !it.dead:
			if it.owner != nil {
				it.owner.ReleaseFrame(it.m)
			}
		case it.owner != nil:
			it.owner.UndeliverableFrame(it.to, it.m)
		case n.OnDead != nil:
			n.OnDead(it.to, it.m)
		}
	}
	n.sinkQ = n.sinkQ[:0]
}

// retire returns a pooled original the ARQ replaced with a heap clone.
//
//demos:owner sink — the sink queue holds the retired envelope only until drainSinks hands it to its FrameOwner in the same event cascade.
func (n *Network) retire(from addr.MachineID, m *msg.Message) {
	if o := n.owners[from]; o != nil {
		n.queueSink(sinkItem{owner: o, m: m})
	}
}

// deadFrame routes an abandoned frame to its sink. OnDead, when set, takes
// precedence (it is the pre-existing test hook); otherwise the sending
// machine's FrameOwner gets it.
//
//demos:owner sink — abandoned frames are held in the sink queue until drainSinks returns them to their owner for accounting + release.
func (n *Network) deadFrame(from, to addr.MachineID, m *msg.Message) {
	if n.OnDead != nil {
		n.queueSink(sinkItem{m: m, to: to, dead: true})
		return
	}
	if o := n.owners[from]; o != nil {
		n.queueSink(sinkItem{owner: o, m: m, to: to, dead: true})
		return
	}
	// No reachable owner: in sharded mode the sending machine lives on
	// another shard and its frame crossed as a heap clone, so there is no
	// envelope to return — but the loss still must not be silent. The
	// cluster-wide delivery audit folds this counter into its loss budget.
	n.stats.orphanDropped++
}

// dropFromDown accounts a send attempted by a crashed machine (satellite
// fix: this used to vanish without a counter).
func (n *Network) dropFromDown(from, to addr.MachineID, m *msg.Message) {
	n.stats.sendFromDown++
	n.deadFrame(from, to, m)
}

// dropToDown accounts a frame arriving at a down machine. In lossless mode
// that loss is final, so the frame is sunk; in ARQ mode the retransmit/dead
// path owns the accounting (sinking here too would double-count a frame
// that a later retry delivers after restart).
//
// In canonical lossless mode the loss is an orphan drop regardless of shard
// topology: a cross-shard frame is an ownerless clone, so echoing an
// Undeliverable completion back to a SAME-shard sender would make the
// sender's observable behavior depend on which shard the dead receiver
// landed on — breaking shard-count invariance. The master envelope is
// retired as a completed send instead (exactly what the ship path does when
// the frame crosses shards), and the loss joins the delivery audit's budget
// through OrphanDropped.
func (n *Network) dropToDown(to addr.MachineID, m *msg.Message) {
	n.stats.dropped++
	if n.cfg.LossRate > 0 {
		return
	}
	if n.canon {
		n.stats.orphanDropped++
		if m.Pooled() {
			n.retire(m.From.LastKnown, m)
		}
		return
	}
	n.deadFrame(m.From.LastKnown, to, m)
}

// normPair returns the order-normalized key for a bidirectional pair.
func normPair(a, b addr.MachineID) pair {
	if a > b {
		a, b = b, a
	}
	return pair{a, b}
}

// Partition severs the pair (a,b) in both directions. With an ARQ
// (LossRate > 0) frames queue as retransmissions and flow again after Heal,
// unless MaxRetries expires first; in lossless mode the loss is final and
// fully accounted (PartitionDropped + undeliverable sink).
func (n *Network) Partition(a, b addr.MachineID) {
	n.parts[normPair(a, b)] = struct{}{}
	n.refault()
}

// Heal reconnects a pair severed by Partition.
func (n *Network) Heal(a, b addr.MachineID) {
	delete(n.parts, normPair(a, b))
	n.refault()
}

// Partitioned reports whether the pair is currently severed.
func (n *Network) Partitioned(a, b addr.MachineID) bool {
	_, cut := n.parts[normPair(a, b)]
	return cut
}

func (n *Network) partitioned(from, to addr.MachineID) bool {
	if len(n.parts) == 0 {
		return false
	}
	_, cut := n.parts[normPair(from, to)]
	return cut
}

// LossBurst raises the frame-loss probability to rate until the given sim
// time (a noisy interval). In lossless mode burst losses are final and
// accounted; with an ARQ they surface as extra retransmissions.
func (n *Network) LossBurst(rate float64, until sim.Time) {
	n.burstRate, n.burstEnd = rate, until
	n.refault()
}

// DuplicateNext injects a duplicate wire copy for the next count frames
// sent from->to. With an ARQ the duplicate carries the same frame id and is
// suppressed by receiver dedup; in lossless mode the receiver genuinely
// sees the message twice (there is no dedup layer to test against).
func (n *Network) DuplicateNext(from, to addr.MachineID, count int) {
	if count <= 0 {
		delete(n.dupNext, pair{from, to})
	} else {
		n.dupNext[pair{from, to}] = count
	}
	n.refault()
}

// DelayNext adds extra transit time to the next frame sent from->to, so a
// later frame can overtake it (reorder injection).
func (n *Network) DelayNext(from, to addr.MachineID, extra sim.Time) {
	if extra <= 0 {
		delete(n.delayNext, pair{from, to})
	} else {
		n.delayNext[pair{from, to}] = extra
	}
	n.refault()
}

// refault recomputes the hot-path guard: true only while some injected
// condition could still alter a send.
func (n *Network) refault() {
	n.faulty = len(n.parts) > 0 || n.burstEnd > n.eng.Now() ||
		len(n.dupNext) > 0 || len(n.delayNext) > 0
}

// sendFaulty is the slow-path Send taken while any fault is armed. It
// re-derives which injections apply to this frame and then follows the
// normal lossless or ARQ route with the injections folded in.
func (n *Network) sendFaulty(from, to addr.MachineID, m *msg.Message) {
	n.refault() // self-clear once expired bursts/one-shots are gone
	size := m.WireSize()
	n.account(from, to, m, size)

	key := pair{from, to}
	var extra sim.Time
	if d, ok := n.delayNext[key]; ok {
		delete(n.delayNext, key)
		n.stats.delayInjected++
		extra = d
	}
	dup := false
	if c, ok := n.dupNext[key]; ok {
		if c <= 1 {
			delete(n.dupNext, key)
		} else {
			n.dupNext[key] = c - 1
		}
		n.stats.dupInjected++
		dup = true
	}

	if n.cfg.LossRate > 0 {
		if n.canon {
			n.canonSendARQ(from, to, m, size, extra, dup)
		} else {
			n.sendARQ(from, to, m, size, extra, dup)
		}
		return
	}

	// Lossless mode: no retransmission exists, so a severed or lost frame
	// is gone for good — count it and sink the envelope.
	if n.partitioned(from, to) {
		n.stats.dropped++
		n.stats.partitionDropped++
		n.deadFrame(from, to, m)
		return
	}
	if n.burstEnd > n.eng.Now() {
		lost := false
		if n.canon {
			// Shard-count invariance: the drop must be a pure function of
			// the frame's identity (sender, per-sender sequence), never of
			// a per-shard engine RNG stream. A dropped frame consumes its
			// sequence number so the next frame from this sender draws
			// fresh (seq stays shard-invariant either way: machine m's
			// k-th send attempt is its k-th under any sharding).
			id := uint64(from)<<48 | (n.sendSeq[from] + 1)
			lost = arqDraw(n.arqSeed, id, 0, saltFrame) < n.burstRate
			if lost {
				n.sendSeq[from]++
			}
		} else {
			lost = n.eng.Rand().Float64() < n.burstRate
		}
		if lost {
			n.stats.dropped++
			n.stats.burstDropped++
			n.deadFrame(from, to, m)
			return
		}
	}
	if n.canon {
		// Canonical (sharded) routing honors injections too: the clone for
		// a duplicate is taken before canonSend may consume (ship) the
		// original, and each copy earns its own Hops++ inside canonSend.
		var dm *msg.Message
		if dup {
			dm = m.Clone()
		}
		n.canonSend(from, to, m, size, extra)
		if dup {
			n.canonSend(from, to, dm, size, extra+1)
		}
		return
	}
	m.Hops++
	d := n.getDelivery(to, m)
	n.eng.After(n.transit(from, to, size)+extra, "netw:deliver", d.fn)
	if dup {
		dm := m.Clone()
		dm.Hops = m.Hops
		dd := n.getDelivery(to, dm)
		n.eng.After(n.transit(from, to, size)+extra+1, "netw:dup", dd.fn)
	}
}

// sendARQ submits one frame to the retransmission machinery. A pooled
// envelope is never retained: the ARQ transmits a heap clone and retires
// the original to its owner (copy-on-retain), so the pooled fast path and
// the lossy network are no longer mutually exclusive. An injected duplicate
// reuses the frame id, exercising receiver dedup rather than user-visible
// duplication.
func (n *Network) sendARQ(from, to addr.MachineID, m *msg.Message, size int, extra sim.Time, dup bool) {
	if m.Pooled() {
		c := m.Clone()
		n.retire(from, m)
		m = c
	}
	id := n.nextFrameID
	n.nextFrameID++
	n.transmit(from, to, m, size, id, 0, extra)
	if dup {
		dm := m
		n.eng.After(n.transit(from, to, size)+extra+1, "netw:dup", func() {
			if n.down[to] || n.partitioned(from, to) {
				return
			}
			n.arrive(from, to, dm, id) //demos:owner clone — dm is the ARQ heap clone (a pooled original was retired above), safe to hold in the event queue.
		})
	}
}

// Machine-anchored ARQ for canonical (sharded) delivery mode.
//
// The classic ARQ (transmit, netw.go) schedules per-frame deliver/ack/retry
// closures on one shared engine and draws losses from that engine's RNG.
// Neither survives sharding: a delivery closure would have to fire on a
// peer shard's engine mid-round, and RNG draw order depends on how machines
// are partitioned across shards. This file re-anchors every piece of ARQ
// state to the sending machine's shard so that `LossRate > 0` composes
// with `Shards >= 1` and `ShardParallel`:
//
//   - Retransmission timers are normal events on the sender's OWN engine;
//     the in-flight table (inflight, keyed by shard-invariant frame id
//     sender<<48|seq) never leaves the sender's shard.
//   - Data frames, injected wire duplicates, and network-level acks all
//     ride the canonical pending heap / gate pump (canon.go), ordered by
//     (at, to, from, seq, class, attempt) — every component shard-invariant.
//     Acks flow back to the sender's shard as canonical RemoteFrames with a
//     nil payload.
//   - Loss decisions are splitmix64 hash draws keyed
//     (seed, frame id, attempt, salt) instead of engine-RNG draws, so a
//     frame's fate is a pure function of its identity: bit-identical across
//     1/2/4 shards, sequential or parallel.
//   - The receiver's down state is consulted at ARRIVAL on the receiver's
//     own shard — a sender cannot see a cross-shard crash. That is
//     shard-count-consistent because crash/restart are normal events and
//     the pump is a gate event, which sorts first at equal timestamps.
//   - Partitions and loss bursts are consulted on the sending shard at
//     transmit time and on the receiving shard at ack time; the sharded
//     chaos injector (internal/chaos) applies both to every shard at
//     identical sim times via fault-class events, which sort before gates.
//
// The master copy of a frame stays with its flight; every wire copy —
// first attempt, retransmission, or injected duplicate — is a heap clone,
// so a retransmitting sender never shares a *msg.Message with a pending
// heap on another shard (no cross-shard aliasing under parallel rounds).
package netw

import (
	"demosmp/internal/addr"
	"demosmp/internal/msg"
	"demosmp/internal/sim"
)

// Salts separating the independent hash-draw streams per frame attempt.
const (
	saltFrame = 0 // does this attempt's data frame survive the wire?
	saltAck   = 1 // does this attempt's ack survive the way back?
)

// arqFlight is one frame in flight from a machine on this shard. It owns
// the master message; wire copies are clones. The flight is removed from
// the inflight table when the ack lands or retries are exhausted.
type arqFlight struct {
	from, to addr.MachineID
	m        *msg.Message // master heap copy (pooled originals are retired)
	size     int
	seq      uint64 // per-sender dense sequence (shard-invariant)
	id       uint64 // sender<<48 | seq: the dedup + ack key
	attempt  uint32
	acked    bool
}

// arqDraw returns a deterministic pseudo-uniform value in [0, 1) for one
// (frame, attempt, salt) triple: a splitmix64 finalizer over the run seed
// and the frame's identity. Identical on every shard of every shard count,
// which is the whole point — the engine RNGs are per-shard and useless here.
func arqDraw(seed, id uint64, attempt uint32, salt uint64) float64 {
	x := seed ^ id*0x9e3779b97f4a7c15 ^ (uint64(attempt)+1)*0xbf58476d1ce4e5b9 ^ (salt+1)*0x94d049bb133111eb
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// lossRate returns the effective per-attempt loss probability right now
// (the configured rate, or an active burst's rate if higher).
func (n *Network) lossRate() float64 {
	rate := n.cfg.LossRate
	if n.burstEnd > n.eng.Now() && n.burstRate > rate {
		rate = n.burstRate
	}
	return rate
}

// canonSendARQ submits one frame to the machine-anchored retransmission
// machinery (the canonical-mode analogue of sendARQ). A pooled envelope is
// never retained: the master is a heap clone and the original retires to
// its owner. An injected duplicate reuses the frame id, exercising receiver
// dedup rather than user-visible duplication.
//
//demos:owner inflight — the flight owns the master until the ack lands or deadFrame takes it; every enqueued wire copy is a clone owned by a pending heap.
func (n *Network) canonSendARQ(from, to addr.MachineID, m *msg.Message, size int, extra sim.Time, dup bool) {
	if m.Pooled() {
		c := m.Clone()
		n.retire(from, m)
		m = c
	}
	n.sendSeq[from]++
	seq := n.sendSeq[from]
	fl := &arqFlight{
		from: from, to: to, m: m, size: size,
		seq: seq, id: uint64(from)<<48 | seq,
	}
	n.inflight[fl.id] = fl
	n.arqTransmit(fl, extra)
	if dup {
		dm := m.Clone()
		dm.Hops = m.Hops
		n.arqEnqueue(pendEnt{
			at: n.eng.Now() + n.transit(from, to, size) + extra + 1,
			to: to, from: from, seq: seq,
			class: classDup, id: fl.id, m: dm,
		})
	}
}

// arqTransmit is one attempt: decide the frame's fate by hash draw, enqueue
// a clone for canonical delivery if it survives, and arm the retransmission
// check on the sender's own engine. The receiver's down state is NOT
// consulted here — it lives on the receiver's shard and is checked at
// arrival (arqLand); a frame to a crashed machine burns retries exactly
// like the classic ARQ.
func (n *Network) arqTransmit(fl *arqFlight, extra sim.Time) {
	if fl.attempt > 0 {
		n.stats.retransmits++
	}
	lost := arqDraw(n.arqSeed, fl.id, fl.attempt, saltFrame) < n.lossRate() ||
		n.partitioned(fl.from, fl.to)
	if lost {
		n.stats.dropped++
	} else {
		fl.m.Hops++
		n.arqEnqueue(pendEnt{
			at: n.eng.Now() + n.transit(fl.from, fl.to, fl.size) + extra,
			to: fl.to, from: fl.from, seq: fl.seq,
			class: classData, attempt: fl.attempt, id: fl.id,
			m: fl.m.Clone(),
		})
	}
	attempt := fl.attempt
	n.eng.After(n.cfg.RetransTimeout+extra, "netw:retrans-check", func() {
		if fl.acked || fl.attempt != attempt {
			return
		}
		if int(fl.attempt)+1 >= n.cfg.MaxRetries {
			n.stats.dead++
			delete(n.inflight, fl.id)
			n.deadFrame(fl.from, fl.to, fl.m)
			return
		}
		fl.attempt++
		n.arqTransmit(fl, 0)
	})
}

// arqEnqueue routes one ARQ heap entry: into this shard's pending heap when
// the destination is local, across the cluster's mailbox plane otherwise.
//
//demos:owner inflight — the pending heap (this shard's or, via ship, the destination shard's) owns the entry's clone until arqLand consumes it.
func (n *Network) arqEnqueue(ent pendEnt) {
	if n.canonLocal(ent.to) {
		n.pendPush(ent)
		n.eng.AtGate(ent.at, "netw:pump", n.pumpFn)
		return
	}
	n.canonShip(RemoteFrame{
		From: ent.from, To: ent.to, At: ent.at, Seq: ent.seq,
		Class: ent.class, Attempt: ent.attempt, ID: ent.id, M: ent.m,
	})
}

// arqLand consumes one pending-heap entry on the destination's shard: the
// ARQ-mode pump dispatch.
func (n *Network) arqLand(ent pendEnt) {
	switch ent.class {
	case classAck:
		// Back on the sender's shard. A late or duplicate ack (flight
		// already completed) is ignored.
		if fl := n.inflight[ent.id]; fl != nil {
			fl.acked = true
			delete(n.inflight, ent.id)
		}
	case classDup:
		// Classic parity (sendARQ's dup closure): an injected duplicate
		// arriving at a down or partitioned receiver vanishes silently —
		// it was surplus wire noise, not an accountable frame.
		if n.down[ent.to] || n.partitioned(ent.from, ent.to) {
			return
		}
		n.arrive(ent.from, ent.to, ent.m, ent.id)
	default: // classData
		if n.down[ent.to] {
			// Recoverable: no dedup record, no ack — the sender's timer
			// retries and a post-restart attempt can still deliver.
			n.stats.dropped++
			return
		}
		n.arrive(ent.from, ent.to, ent.m, ent.id)
		// The ack for this attempt flows back through the same canonical
		// machinery (nil payload, zero cost — matching the classic ARQ's
		// accounting, which never counts ack bytes).
		lostAck := arqDraw(n.arqSeed, ent.id, ent.attempt, saltAck) < n.lossRate() ||
			n.partitioned(ent.from, ent.to)
		if !lostAck {
			n.arqEnqueue(pendEnt{
				at: n.eng.Now() + n.cfg.Latency,
				to: ent.from, from: ent.to, seq: ent.seq,
				class: classAck, attempt: ent.attempt, id: ent.id,
			})
		}
	}
}

// InflightARQ reports how many frames this shard's machines currently have
// in flight (un-acked, retries not exhausted). Zero at quiescence — the
// chaos invariant audit asserts this cluster-wide.
func (n *Network) InflightARQ() int { return len(n.inflight) }

// PendingFrames reports how many entries sit in this shard's canonical
// pending heap. Zero at quiescence.
func (n *Network) PendingFrames() int { return len(n.pend) }

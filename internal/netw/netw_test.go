package netw

import (
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/msg"
	"demosmp/internal/sim"
)

type recorder struct {
	got []*msg.Message
	at  []sim.Time
	eng *sim.Engine
}

func (r *recorder) DeliverFrame(m *msg.Message) {
	r.got = append(r.got, m)
	r.at = append(r.at, r.eng.Now())
}

func setup(cfg Config) (*sim.Engine, *Network, *recorder, *recorder) {
	eng := sim.NewEngine(99)
	n := New(eng, cfg)
	r1 := &recorder{eng: eng}
	r2 := &recorder{eng: eng}
	n.Attach(1, r1)
	n.Attach(2, r2)
	return eng, n, r1, r2
}

func frame(body int) *msg.Message {
	return &msg.Message{
		Kind: msg.KindUser,
		From: addr.KernelAddr(1),
		To:   addr.KernelAddr(2),
		Body: make([]byte, body),
	}
}

func TestDeliveryAndLatency(t *testing.T) {
	eng, n, _, r2 := setup(Config{Latency: 1000, PerByteNanos: 1000})
	m := frame(100)
	size := m.WireSize()
	n.Send(1, 2, m)
	eng.Run()
	if len(r2.got) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(r2.got))
	}
	want := sim.Time(1000 + size) // 1µs per byte
	if r2.at[0] != want {
		t.Fatalf("delivered at %v, want %v", r2.at[0], want)
	}
	if r2.got[0].Hops != 1 {
		t.Fatalf("hops = %d, want 1", r2.got[0].Hops)
	}
}

func TestOrderingPreservedLossless(t *testing.T) {
	eng, n, _, r2 := setup(Config{})
	for i := 0; i < 20; i++ {
		m := frame(8)
		m.Seq = uint32(i)
		n.Send(1, 2, m)
	}
	eng.Run()
	if len(r2.got) != 20 {
		t.Fatalf("delivered %d, want 20", len(r2.got))
	}
	for i, m := range r2.got {
		if m.Seq != uint32(i) {
			t.Fatalf("order broken at %d: seq %d", i, m.Seq)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	eng, n, _, _ := setup(Config{})
	m := frame(50)
	size := uint64(m.WireSize())
	n.Send(1, 2, m)
	n.Send(1, 2, frame(50))
	eng.Run()
	s := n.Stats()
	if s.Frames != 2 || s.Delivered != 2 {
		t.Fatalf("frames=%d delivered=%d", s.Frames, s.Delivered)
	}
	if s.Bytes != 2*size {
		t.Fatalf("bytes=%d want %d", s.Bytes, 2*size)
	}
	if s.ByKind[msg.KindUser] != 2 {
		t.Fatalf("byKind=%v", s.ByKind)
	}
	pm := s.PerMachine[addr.MachineID(1)]
	if pm.FramesOut != 2 || pm.BytesOut != 2*size {
		t.Fatalf("per-machine out: %+v", pm)
	}
	pm2 := s.PerMachine[addr.MachineID(2)]
	if pm2.FramesIn != 2 {
		t.Fatalf("per-machine in: %+v", pm2)
	}
}

func TestReliableUnderLoss(t *testing.T) {
	eng, n, _, r2 := setup(Config{LossRate: 0.3, RetransTimeout: 2000, MaxRetries: 100})
	const N = 50
	for i := 0; i < N; i++ {
		m := frame(16)
		m.Seq = uint32(i)
		n.Send(1, 2, m)
	}
	eng.Run()
	if len(r2.got) != N {
		t.Fatalf("delivered %d, want %d (reliability violated)", len(r2.got), N)
	}
	seen := map[uint32]bool{}
	for _, m := range r2.got {
		if seen[m.Seq] {
			t.Fatalf("duplicate delivery of seq %d", m.Seq)
		}
		seen[m.Seq] = true
	}
	s := n.Stats()
	if s.Retransmits == 0 {
		t.Fatal("expected retransmissions at 30% loss")
	}
}

func TestDownMachineDropsThenDead(t *testing.T) {
	eng, n, _, r2 := setup(Config{LossRate: 0.0001, RetransTimeout: 1000, MaxRetries: 3})
	var dead []*msg.Message
	n.OnDead = func(to addr.MachineID, m *msg.Message) { dead = append(dead, m) }
	n.SetDown(2, true)
	n.Send(1, 2, frame(8))
	eng.Run()
	if len(r2.got) != 0 {
		t.Fatal("down machine received a frame")
	}
	if len(dead) != 1 {
		t.Fatalf("dead callback got %d frames, want 1", len(dead))
	}
	s := n.Stats()
	if s.Dead != 1 {
		t.Fatalf("dead counter = %d", s.Dead)
	}
}

func TestDownSenderSilent(t *testing.T) {
	eng, n, _, r2 := setup(Config{})
	n.SetDown(1, true)
	n.Send(1, 2, frame(8))
	eng.Run()
	if len(r2.got) != 0 {
		t.Fatal("crashed sender transmitted")
	}
}

func TestRecovery(t *testing.T) {
	eng, n, _, r2 := setup(Config{LossRate: 0.0001, RetransTimeout: 1000, MaxRetries: 50})
	n.SetDown(2, true)
	n.Send(1, 2, frame(8))
	eng.After(5000, "up", func() { n.SetDown(2, false) })
	eng.Run()
	if len(r2.got) != 1 {
		t.Fatalf("frame not recovered after machine came back: %d", len(r2.got))
	}
}

func TestLocalSendPanics(t *testing.T) {
	_, n, _, _ := setup(Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("local send did not panic")
		}
	}()
	n.Send(1, 1, frame(1))
}

func TestDoubleAttachPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng, Config{})
	n.Attach(1, &recorder{eng: eng})
	defer func() {
		if recover() == nil {
			t.Fatal("double attach did not panic")
		}
	}()
	n.Attach(1, &recorder{eng: eng})
}

func TestTransitTimeScalesWithSize(t *testing.T) {
	_, n, _, _ := setup(Config{Latency: 100, PerByteNanos: 2000})
	small, big := n.TransitTime(10), n.TransitTime(1000)
	if small >= big {
		t.Fatalf("transit time not increasing: %v vs %v", small, big)
	}
	if small != 100+20 {
		t.Fatalf("small transit = %v, want 120", small)
	}
}

func TestStatsCloneIsDeep(t *testing.T) {
	eng, n, _, _ := setup(Config{})
	n.Send(1, 2, frame(1))
	eng.Run()
	s := n.Stats()
	s.ByKind[msg.KindUser] = 999
	if n.Stats().ByKind[msg.KindUser] == 999 {
		t.Fatal("Stats() shares maps with the live counters")
	}
}

func TestPairLatencyTopology(t *testing.T) {
	eng := sim.NewEngine(1)
	// m1-m2 close (100µs), m1-m3 far (5000µs).
	n := New(eng, Config{
		PerByteNanos: 1, // negligible
		PairLatency: func(a, b addr.MachineID) sim.Time {
			if (a == 1 && b == 3) || (a == 3 && b == 1) {
				return 5000
			}
			return 100
		},
	})
	r2 := &recorder{eng: eng}
	r3 := &recorder{eng: eng}
	n.Attach(1, &recorder{eng: eng})
	n.Attach(2, r2)
	n.Attach(3, r3)
	near := frame(0)
	far := &msg.Message{Kind: msg.KindUser, From: addr.KernelAddr(1), To: addr.KernelAddr(3)}
	n.Send(1, 2, near)
	n.Send(1, 3, far)
	eng.Run()
	if len(r2.at) != 1 || len(r3.at) != 1 {
		t.Fatal("frames lost")
	}
	if r2.at[0] >= 1000 {
		t.Fatalf("near hop took %v", r2.at[0])
	}
	if r3.at[0] < 5000 {
		t.Fatalf("far hop took only %v", r3.at[0])
	}
}

package policy

import (
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/msg"
)

func qload(m addr.MachineID, ready uint16, procs ...msg.ProcLoad) msg.LoadReport {
	return msg.LoadReport{Machine: m, Ready: ready, CPUPercent: 100, Procs: procs}
}

func TestQueueDepthMovesFromDeepest(t *testing.T) {
	p := NewQueueDepth(4, 3, 1000)
	p.MaxMoves = 1
	loads := []msg.LoadReport{
		qload(1, 8, pl(1, 5000), pl(2, 9000)),
		qload(2, 1),
		qload(3, 4),
	}
	d := p.Decide(0, loads)
	if len(d) != 1 || d[0].PID != pid(2) || d[0].From != 1 || d[0].Dest != 2 {
		t.Fatalf("queue-depth: %+v", d)
	}
}

func TestQueueDepthSeesThroughSaturatedCPU(t *testing.T) {
	// Both machines at 100% CPU — Threshold is blind here (no gap), but
	// the 10-deep queue vs the 1-deep queue still shows the imbalance.
	th := NewThreshold(80, 20, 1000)
	loads := []msg.LoadReport{
		qload(1, 10, pl(1, 5000), pl(2, 9000)),
		qload(2, 1, pl(3, 5000)),
	}
	if d := th.Decide(0, loads); d != nil {
		t.Fatalf("threshold should be blind under saturation: %v", d)
	}
	qd := NewQueueDepth(4, 3, 1000)
	if d := qd.Decide(0, loads); len(d) == 0 {
		t.Fatal("queue-depth must see the backlog")
	}
}

func TestQueueDepthHysteresisAndSpread(t *testing.T) {
	p := NewQueueDepth(4, 3, 1000)
	// Gap too small: nothing moves.
	if d := p.Decide(0, []msg.LoadReport{qload(1, 4, pl(1, 9000)), qload(2, 2)}); d != nil {
		t.Fatalf("moved inside the hysteresis gap: %v", d)
	}
	// A burst spreads: each order updates the scratch depths, so the
	// second pick can choose a different destination.
	p2 := NewQueueDepth(2, 2, 1000)
	p2.MaxMoves = 2
	loads := []msg.LoadReport{
		qload(1, 8, pl(1, 5000), pl(2, 6000), pl(3, 7000)),
		qload(2, 0),
		qload(3, 1),
	}
	d := p2.Decide(0, loads)
	if len(d) != 2 {
		t.Fatalf("burst: %+v", d)
	}
	if d[0].PID == d[1].PID {
		t.Fatalf("same process ordered twice: %+v", d)
	}
}

func TestMemoryPressure(t *testing.T) {
	p := NewMemoryPressure(1000, 500, 1000)
	p.MaxMoves = 1
	loads := []msg.LoadReport{
		{Machine: 1, MemUsedKB: 2000, Procs: []msg.ProcLoad{
			{PID: pid(1), MemKB: 300}, {PID: pid(2), MemKB: 900},
		}},
		{Machine: 2, MemUsedKB: 100},
	}
	d := p.Decide(0, loads)
	if len(d) != 1 || d[0].PID != pid(2) || d[0].Dest != 2 {
		t.Fatalf("memory-pressure: %+v", d)
	}
	// Below the high water nothing moves.
	p2 := NewMemoryPressure(5000, 500, 1000)
	if d := p2.Decide(0, loads); d != nil {
		t.Fatalf("moved below high water: %v", d)
	}
}

func TestAffinityAwareCostGate(t *testing.T) {
	cost := DefaultCostModel()
	p := NewAffinityAware(1, 1000, cost)
	// Enough traffic to repay the price.
	needed := uint32(cost.MigrationMicros()/(cost.CrossMsgMicros*cost.PaybackPeriods)) + 1
	loads := []msg.LoadReport{
		{Machine: 1, CPUPercent: 50, Procs: []msg.ProcLoad{
			{PID: pid(1), TopPeer: 2, TopPeerMsgs: needed},
			{PID: pid(2), TopPeer: 2, TopPeerMsgs: 1}, // traffic never repays
		}},
		{Machine: 2, CPUPercent: 10},
	}
	d := p.Decide(0, loads)
	if len(d) != 1 || d[0].PID != pid(1) {
		t.Fatalf("cost gate: %+v", d)
	}
}

func TestAffinityAwareDestinationHeadroom(t *testing.T) {
	p := NewAffinityAware(1, 1000, nil)
	loads := []msg.LoadReport{
		{Machine: 1, CPUPercent: 50, Procs: []msg.ProcLoad{
			{PID: pid(1), TopPeer: 2, TopPeerMsgs: 10000},
		}},
		{Machine: 2, CPUPercent: 99}, // too hot to absorb anything
	}
	if d := p.Decide(0, loads); d != nil {
		t.Fatalf("moved onto a saturated destination: %v", d)
	}
	// Unknown destinations (no sample in the view) are skipped too.
	loads2 := []msg.LoadReport{
		{Machine: 1, CPUPercent: 50, Procs: []msg.ProcLoad{
			{PID: pid(1), TopPeer: 7, TopPeerMsgs: 10000},
		}},
	}
	if d := p.Decide(0, loads2); d != nil {
		t.Fatalf("moved onto an unknown destination: %v", d)
	}
}

func TestCompositeWeightsAndCap(t *testing.T) {
	qd := NewQueueDepth(2, 2, 1000)
	qd.MaxMoves = 4
	aff := NewAffinityAware(1, 1000, nil)
	comp := NewComposite(2, Rule{Policy: aff, Weight: 10}, Rule{Policy: qd, Weight: 1})
	loads := []msg.LoadReport{
		// pid1 qualifies for both rules: affinity (weight 10) must win
		// the conflict.
		{Machine: 1, Ready: 8, CPUPercent: 80, Procs: []msg.ProcLoad{
			{PID: pid(1), CPUMicros: 9000, TopPeer: 3, TopPeerMsgs: 10000},
			{PID: pid(2), CPUMicros: 5000},
			{PID: pid(3), CPUMicros: 4000},
		}},
		{Machine: 2, Ready: 0, CPUPercent: 5},
		{Machine: 3, Ready: 1, CPUPercent: 10},
	}
	d := comp.Decide(0, loads)
	if len(d) != 2 {
		t.Fatalf("cap: %+v", d)
	}
	if d[0].PID != pid(1) || d[0].Dest != 3 {
		t.Fatalf("weight conflict must go to affinity: %+v", d[0])
	}
	if comp.Name() != "composite" {
		t.Fatal("name")
	}
}

func TestNewPolicyNames(t *testing.T) {
	if NewQueueDepth(1, 1, 1).Name() != "queue-depth" ||
		NewMemoryPressure(1, 1, 1).Name() != "memory-pressure" ||
		NewAffinityAware(1, 1, nil).Name() != "affinity-aware" {
		t.Fatal("policy names")
	}
}

// Package policy implements migration decision rules for the process
// manager.
//
// The paper left this open: "The mechanism for moving a process has been
// implemented, but there is not yet a strategy routine that actually
// decides when to move a process" (§7). It does, however, enumerate what a
// rule needs (§3.1): resource-use evaluation, per-machine load assessment,
// a way to collect the information in one place, an improvement strategy,
// and "a hysteresis mechanism to keep from incurring the cost of migration
// more often than justified by the gains". The policies here implement
// those features over the kernels' load reports.
package policy

import (
	"fmt"
	"sort"

	"demosmp/internal/addr"
	"demosmp/internal/msg"
	"demosmp/internal/sim"
)

// Decision is one migration order.
type Decision struct {
	PID    addr.ProcessID
	From   addr.MachineID
	Dest   addr.MachineID
	Reason string
}

// Policy examines the latest load reports and proposes migrations.
type Policy interface {
	Name() string
	Decide(now sim.Time, loads []msg.LoadReport) []Decision
}

// Manual never proposes anything; migrations happen only on explicit
// command — the paper's own deployment state ("the decision to move a
// particular process and the choice of destination were arbitrary").
type Manual struct{}

func (Manual) Name() string                                 { return "manual" }
func (Manual) Decide(sim.Time, []msg.LoadReport) []Decision { return nil }

// Threshold moves a process from an overloaded machine to the least loaded
// one. Hysteresis comes from three guards: the high/low water gap, a
// per-process cooldown, and a minimum CPU share for the moved process (no
// point paying migration cost for an idle process).
type Threshold struct {
	HighWater uint8    // source CPU% at or above this is overloaded
	LowWater  uint8    // destination CPU% at or below this is a target
	Cooldown  sim.Time // minimum time between moves of the same process
	MinCPU    uint32   // minimum CPUMicros in the last report period

	lastMove map[addr.ProcessID]sim.Time
}

// NewThreshold returns a load-balancing policy with the given waters.
func NewThreshold(high, low uint8, cooldown sim.Time) *Threshold {
	return &Threshold{
		HighWater: high, LowWater: low, Cooldown: cooldown,
		MinCPU:   1000,
		lastMove: make(map[addr.ProcessID]sim.Time),
	}
}

func (p *Threshold) Name() string { return "threshold" }

func (p *Threshold) Decide(now sim.Time, loads []msg.LoadReport) []Decision {
	if len(loads) < 2 {
		return nil
	}
	var busiest, idlest *msg.LoadReport
	for i := range loads {
		l := &loads[i]
		if busiest == nil || l.CPUPercent > busiest.CPUPercent ||
			(l.CPUPercent == busiest.CPUPercent && l.Ready > busiest.Ready) {
			busiest = l
		}
		if idlest == nil || l.CPUPercent < idlest.CPUPercent {
			idlest = l
		}
	}
	if busiest.Machine == idlest.Machine {
		return nil
	}
	if busiest.CPUPercent < p.HighWater || idlest.CPUPercent > p.LowWater {
		return nil // the gap is not worth a migration (hysteresis)
	}
	if len(busiest.Procs) < 2 {
		return nil // moving the only process just moves the problem
	}
	// Pick the hungriest recently-movable process.
	var best *msg.ProcLoad
	for i := range busiest.Procs {
		pl := &busiest.Procs[i]
		if pl.CPUMicros < p.MinCPU {
			continue
		}
		if last, ok := p.lastMove[pl.PID]; ok && now-last < p.Cooldown {
			continue
		}
		if best == nil || pl.CPUMicros > best.CPUMicros {
			best = pl
		}
	}
	if best == nil {
		return nil
	}
	p.lastMove[best.PID] = now
	return []Decision{{
		PID: best.PID, From: busiest.Machine, Dest: idlest.Machine,
		Reason: fmt.Sprintf("cpu %d%% -> %d%%", busiest.CPUPercent, idlest.CPUPercent),
	}}
}

// CommAffinity moves a process toward the machine it talks to most,
// reducing inter-machine traffic (§1: "Moving a process closer to the
// resource it is using most heavily may reduce system-wide communication
// traffic").
type CommAffinity struct {
	MinMsgs  uint32 // messages per report period to justify a move
	Cooldown sim.Time
	MaxMoves int // orders per call; a burst of chatty processes must not
	// turn into hundreds of simultaneous migrations

	lastMove map[addr.ProcessID]sim.Time
}

// NewCommAffinity returns an affinity policy.
func NewCommAffinity(minMsgs uint32, cooldown sim.Time) *CommAffinity {
	return &CommAffinity{MinMsgs: minMsgs, Cooldown: cooldown, MaxMoves: 4,
		lastMove: make(map[addr.ProcessID]sim.Time)}
}

func (p *CommAffinity) Name() string { return "comm-affinity" }

func (p *CommAffinity) Decide(now sim.Time, loads []msg.LoadReport) []Decision {
	type cand struct {
		d    Decision
		msgs uint32
	}
	var cands []cand
	for i := range loads {
		l := &loads[i]
		for j := range l.Procs {
			pl := &l.Procs[j]
			if pl.TopPeer == addr.NoMachine || pl.TopPeer == l.Machine {
				continue
			}
			if pl.TopPeerMsgs < p.MinMsgs {
				continue
			}
			if last, ok := p.lastMove[pl.PID]; ok && now-last < p.Cooldown {
				continue
			}
			cands = append(cands, cand{msgs: pl.TopPeerMsgs, d: Decision{
				PID: pl.PID, From: l.Machine, Dest: pl.TopPeer,
				Reason: fmt.Sprintf("%d msgs/period to m%d", pl.TopPeerMsgs, uint16(pl.TopPeer)),
			}})
		}
	}
	// Spend a capped budget on the chattiest processes first; the rest
	// keep their cooldown clear and get another shot next sweep.
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.msgs != b.msgs {
			return a.msgs > b.msgs
		}
		if a.d.PID.Creator != b.d.PID.Creator {
			return a.d.PID.Creator < b.d.PID.Creator
		}
		return a.d.PID.Local < b.d.PID.Local
	})
	var out []Decision
	for _, c := range cands {
		out = append(out, c.d)
	}
	out = capMoves(out, p.MaxMoves)
	for _, d := range out {
		p.lastMove[d.PID] = now
	}
	return out
}

// Drain evacuates every process from one machine — the fault-recovery use
// of migration (§1: "working processes may be migrated from a dying
// processor (like rats leaving a sinking ship) before it completely
// fails").
type Drain struct {
	Dying addr.MachineID

	ordered map[addr.ProcessID]bool
	next    int // round-robin cursor over the surviving machines
}

// NewDrain returns a policy that empties machine m.
func NewDrain(m addr.MachineID) *Drain {
	return &Drain{Dying: m, ordered: make(map[addr.ProcessID]bool)}
}

func (p *Drain) Name() string { return "drain" }

func (p *Drain) Decide(now sim.Time, loads []msg.LoadReport) []Decision {
	var dying *msg.LoadReport
	var targets []*msg.LoadReport
	for i := range loads {
		l := &loads[i]
		if l.Machine == p.Dying {
			dying = l
			continue
		}
		targets = append(targets, l)
	}
	if dying == nil || len(targets) == 0 {
		return nil
	}
	// Spread evacuees round-robin across the survivors, calmest first —
	// dumping a whole machine's worth of processes on the single calmest
	// machine would just move the hotspot.
	sort.Slice(targets, func(i, j int) bool {
		a, b := targets[i], targets[j]
		if a.CPUPercent != b.CPUPercent {
			return a.CPUPercent < b.CPUPercent
		}
		return a.Machine < b.Machine
	})
	var out []Decision
	for i := range dying.Procs {
		pl := &dying.Procs[i]
		if p.ordered[pl.PID] {
			continue
		}
		p.ordered[pl.PID] = true
		dest := targets[p.next%len(targets)].Machine
		p.next++
		out = append(out, Decision{
			PID: pl.PID, From: p.Dying, Dest: dest,
			Reason: "evacuating dying processor",
		})
	}
	return out
}

// Package policy implements migration decision rules for the process
// manager.
//
// The paper left this open: "The mechanism for moving a process has been
// implemented, but there is not yet a strategy routine that actually
// decides when to move a process" (§7). It does, however, enumerate what a
// rule needs (§3.1): resource-use evaluation, per-machine load assessment,
// a way to collect the information in one place, an improvement strategy,
// and "a hysteresis mechanism to keep from incurring the cost of migration
// more often than justified by the gains". The policies here implement
// those features over the kernels' load reports.
package policy

import (
	"fmt"

	"demosmp/internal/addr"
	"demosmp/internal/msg"
	"demosmp/internal/sim"
)

// Decision is one migration order.
type Decision struct {
	PID    addr.ProcessID
	From   addr.MachineID
	Dest   addr.MachineID
	Reason string
}

// Policy examines the latest load reports and proposes migrations.
type Policy interface {
	Name() string
	Decide(now sim.Time, loads []msg.LoadReport) []Decision
}

// Manual never proposes anything; migrations happen only on explicit
// command — the paper's own deployment state ("the decision to move a
// particular process and the choice of destination were arbitrary").
type Manual struct{}

func (Manual) Name() string                                 { return "manual" }
func (Manual) Decide(sim.Time, []msg.LoadReport) []Decision { return nil }

// Threshold moves a process from an overloaded machine to the least loaded
// one. Hysteresis comes from three guards: the high/low water gap, a
// per-process cooldown, and a minimum CPU share for the moved process (no
// point paying migration cost for an idle process).
type Threshold struct {
	HighWater uint8    // source CPU% at or above this is overloaded
	LowWater  uint8    // destination CPU% at or below this is a target
	Cooldown  sim.Time // minimum time between moves of the same process
	MinCPU    uint32   // minimum CPUMicros in the last report period

	lastMove map[addr.ProcessID]sim.Time
}

// NewThreshold returns a load-balancing policy with the given waters.
func NewThreshold(high, low uint8, cooldown sim.Time) *Threshold {
	return &Threshold{
		HighWater: high, LowWater: low, Cooldown: cooldown,
		MinCPU:   1000,
		lastMove: make(map[addr.ProcessID]sim.Time),
	}
}

func (p *Threshold) Name() string { return "threshold" }

func (p *Threshold) Decide(now sim.Time, loads []msg.LoadReport) []Decision {
	if len(loads) < 2 {
		return nil
	}
	var busiest, idlest *msg.LoadReport
	for i := range loads {
		l := &loads[i]
		if busiest == nil || l.CPUPercent > busiest.CPUPercent ||
			(l.CPUPercent == busiest.CPUPercent && l.Ready > busiest.Ready) {
			busiest = l
		}
		if idlest == nil || l.CPUPercent < idlest.CPUPercent {
			idlest = l
		}
	}
	if busiest.Machine == idlest.Machine {
		return nil
	}
	if busiest.CPUPercent < p.HighWater || idlest.CPUPercent > p.LowWater {
		return nil // the gap is not worth a migration (hysteresis)
	}
	if len(busiest.Procs) < 2 {
		return nil // moving the only process just moves the problem
	}
	// Pick the hungriest recently-movable process.
	var best *msg.ProcLoad
	for i := range busiest.Procs {
		pl := &busiest.Procs[i]
		if pl.CPUMicros < p.MinCPU {
			continue
		}
		if last, ok := p.lastMove[pl.PID]; ok && now-last < p.Cooldown {
			continue
		}
		if best == nil || pl.CPUMicros > best.CPUMicros {
			best = pl
		}
	}
	if best == nil {
		return nil
	}
	p.lastMove[best.PID] = now
	return []Decision{{
		PID: best.PID, From: busiest.Machine, Dest: idlest.Machine,
		Reason: fmt.Sprintf("cpu %d%% -> %d%%", busiest.CPUPercent, idlest.CPUPercent),
	}}
}

// CommAffinity moves a process toward the machine it talks to most,
// reducing inter-machine traffic (§1: "Moving a process closer to the
// resource it is using most heavily may reduce system-wide communication
// traffic").
type CommAffinity struct {
	MinMsgs  uint32 // messages per report period to justify a move
	Cooldown sim.Time

	lastMove map[addr.ProcessID]sim.Time
}

// NewCommAffinity returns an affinity policy.
func NewCommAffinity(minMsgs uint32, cooldown sim.Time) *CommAffinity {
	return &CommAffinity{MinMsgs: minMsgs, Cooldown: cooldown,
		lastMove: make(map[addr.ProcessID]sim.Time)}
}

func (p *CommAffinity) Name() string { return "comm-affinity" }

func (p *CommAffinity) Decide(now sim.Time, loads []msg.LoadReport) []Decision {
	var out []Decision
	for i := range loads {
		l := &loads[i]
		for j := range l.Procs {
			pl := &l.Procs[j]
			if pl.TopPeer == addr.NoMachine || pl.TopPeer == l.Machine {
				continue
			}
			if pl.TopPeerMsgs < p.MinMsgs {
				continue
			}
			if last, ok := p.lastMove[pl.PID]; ok && now-last < p.Cooldown {
				continue
			}
			p.lastMove[pl.PID] = now
			out = append(out, Decision{
				PID: pl.PID, From: l.Machine, Dest: pl.TopPeer,
				Reason: fmt.Sprintf("%d msgs/period to m%d", pl.TopPeerMsgs, uint16(pl.TopPeer)),
			})
		}
	}
	return out
}

// Drain evacuates every process from one machine — the fault-recovery use
// of migration (§1: "working processes may be migrated from a dying
// processor (like rats leaving a sinking ship) before it completely
// fails").
type Drain struct {
	Dying addr.MachineID

	ordered map[addr.ProcessID]bool
}

// NewDrain returns a policy that empties machine m.
func NewDrain(m addr.MachineID) *Drain {
	return &Drain{Dying: m, ordered: make(map[addr.ProcessID]bool)}
}

func (p *Drain) Name() string { return "drain" }

func (p *Drain) Decide(now sim.Time, loads []msg.LoadReport) []Decision {
	var dying *msg.LoadReport
	var calmest *msg.LoadReport
	for i := range loads {
		l := &loads[i]
		if l.Machine == p.Dying {
			dying = l
			continue
		}
		if calmest == nil || l.CPUPercent < calmest.CPUPercent {
			calmest = l
		}
	}
	if dying == nil || calmest == nil {
		return nil
	}
	var out []Decision
	dest := calmest.Machine
	for i := range dying.Procs {
		pl := &dying.Procs[i]
		if p.ordered[pl.PID] {
			continue
		}
		p.ordered[pl.PID] = true
		out = append(out, Decision{
			PID: pl.PID, From: p.Dying, Dest: dest,
			Reason: "evacuating dying processor",
		})
	}
	return out
}

package policy

import (
	"testing"

	"demosmp/internal/msg"
	"demosmp/internal/obs"
)

func TestCostModelDefaultsAndPayback(t *testing.T) {
	c := DefaultCostModel()
	price := c.MigrationMicros()
	if price <= 0 {
		t.Fatalf("price = %d", price)
	}
	// A gain that repays the price within the horizon is worthwhile.
	if !c.Worthwhile(price) {
		t.Fatal("gain == price per period must be worthwhile")
	}
	if c.Worthwhile(price/(c.PaybackPeriods+1)) {
		t.Fatal("gain below the horizon share must not be worthwhile")
	}
}

func TestCostModelCalibrate(t *testing.T) {
	c := DefaultCostModel()
	recs := []obs.MigrationRecord{
		{Start: 100, End: 1100, AdminBytes: 60, ForwardsAbsorbed: 4, OK: true},
		{Start: 200, End: 1400, AdminBytes: 80, ForwardsAbsorbed: 0, OK: true},
		{Start: 0, End: 99999, AdminBytes: 999, OK: false}, // aborted: ignored
	}
	if n := c.Calibrate(recs); n != 2 {
		t.Fatalf("calibrated %d records", n)
	}
	if c.FreezeMicros != 1100 { // mean of 1000 and 1200
		t.Fatalf("freeze = %d", c.FreezeMicros)
	}
	if c.AdminBytes != 70 || c.ForwardsAbsorbed != 2 {
		t.Fatalf("admin %d forwards %d", c.AdminBytes, c.ForwardsAbsorbed)
	}
	if c.Calibrated() != 2 {
		t.Fatalf("calibrated count %d", c.Calibrated())
	}
	if n := c.Calibrate(nil); n != 0 {
		t.Fatal("empty ledger must be a no-op")
	}
}

func TestCostModelAffinityGain(t *testing.T) {
	c := DefaultCostModel()
	g := c.AffinityGain(msg.ProcLoad{TopPeerMsgs: 10})
	if g != 10*c.CrossMsgMicros {
		t.Fatalf("gain = %d", g)
	}
}

package policy

import (
	"reflect"
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/msg"
)

func machines(n int) []addr.MachineID {
	out := make([]addr.MachineID, n)
	for i := range out {
		out[i] = addr.MachineID(i + 1)
	}
	return out
}

func TestCollectorSweepOnRoundClose(t *testing.T) {
	c := NewCollector(machines(3), 0)
	if c.Observe(10, load(1, 50)) || c.Observe(11, load(2, 60)) {
		t.Fatal("swept before the round closed")
	}
	if !c.Observe(12, load(3, 70)) {
		t.Fatal("highest machine must close the round")
	}
	if c.Sweeps() != 1 {
		t.Fatalf("sweeps = %d", c.Sweeps())
	}
	v := c.View(12)
	if len(v) != 3 || v[0].Machine != 1 || v[1].Machine != 2 || v[2].Machine != 3 {
		t.Fatalf("view: %+v", v)
	}
	// Next round behaves identically.
	if c.Observe(20, load(1, 10)) {
		t.Fatal("new round swept early")
	}
	if !c.Observe(22, load(3, 10)) || c.Sweeps() != 2 {
		t.Fatal("second round close")
	}
}

func TestCollectorWrapDetection(t *testing.T) {
	// Machine 3 (the closer) crashed: rounds must still close when some
	// machine reports twice.
	c := NewCollector(machines(3), 0)
	c.Observe(10, load(1, 50))
	c.Observe(11, load(2, 60))
	// m3 never reports; m1 starts the next round.
	if !c.Observe(20, load(1, 55)) {
		t.Fatal("repeat must close the stale round")
	}
	if c.Sweeps() != 1 {
		t.Fatalf("sweeps = %d", c.Sweeps())
	}
	// The wrap started a fresh round containing m1 only; m2's repeat must
	// not sweep again immediately.
	if c.Observe(21, load(2, 61)) {
		t.Fatal("m2 is first-time in the new round")
	}
	if !c.Observe(30, load(1, 56)) {
		t.Fatal("second wrap must sweep")
	}
}

func TestCollectorViewLatestAndAge(t *testing.T) {
	c := NewCollector(machines(2), 100)
	c.Observe(10, load(1, 50))
	c.Observe(11, load(2, 60))
	c.Observe(50, load(1, 80))
	v := c.View(60)
	if len(v) != 2 || v[0].CPUPercent != 80 {
		t.Fatalf("view must hold the freshest sample: %+v", v)
	}
	// At t=150, m2's sample (t=11) is past MaxAge=100; m1's (t=50) is not.
	v = c.View(150)
	if len(v) != 1 || v[0].Machine != 1 {
		t.Fatalf("stale sample survived: %+v", v)
	}
}

func TestCollectorSingleMachine(t *testing.T) {
	c := NewCollector(machines(1), 0)
	for i := 0; i < 3; i++ {
		if !c.Observe(10, load(1, 50)) {
			t.Fatal("single-machine rounds close on every report")
		}
	}
	if c.Sweeps() != 3 {
		t.Fatalf("sweeps = %d", c.Sweeps())
	}
}

func TestCollectorDeterministicView(t *testing.T) {
	// Same report sequence → byte-identical views, regardless of map
	// internals.
	run := func() []msg.LoadReport {
		c := NewCollector(machines(5), 0)
		for m := 5; m >= 1; m-- {
			c.Observe(10, load(addr.MachineID(m), uint8(m*10)))
		}
		return c.View(10)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("views differ:\n%+v\n%+v", a, b)
	}
}

package policy

import (
	"demosmp/internal/msg"
	"demosmp/internal/obs"
	"demosmp/internal/sim"
)

// CostModel prices a prospective migration so policies can weigh expected
// gain against it — the §3.1 hysteresis requirement made quantitative. The
// model starts from the paper's §6 measurements (three state transfers,
// nine administrative messages of 6–12 bytes, a short forwarding tail) and
// can be recalibrated from the obs ledger's measured records, so the price
// tracks what migrations actually cost in this cluster rather than what
// the paper said they cost on the Z8000s.
type CostModel struct {
	// Measured (or assumed) per-migration averages.
	FreezeMicros     sim.Time // freeze window: process off-CPU start→cleanup
	AdminBytes       uint64   // administrative message bytes
	ForwardsAbsorbed uint64   // residual messages the forwarder eats

	// Modeled unit prices.
	AdminByteMicros sim.Time // wire+kernel cost per administrative byte
	ForwardMicros   sim.Time // per-forward penalty (+2 frames each, §5)
	CrossMsgMicros  sim.Time // extra cost of one cross-machine user message

	// PaybackPeriods is the horizon (in report periods) over which a
	// recurring per-period gain must repay the one-time migration cost.
	PaybackPeriods sim.Time

	calibrated int // ledger records folded in
}

// DefaultCostModel returns a model seeded from the paper's §6 numbers.
func DefaultCostModel() *CostModel {
	return &CostModel{
		FreezeMicros:     2500, // same order as the measured freeze window
		AdminBytes:       80,   // 9 messages × ~9 bytes
		ForwardsAbsorbed: 2,    // link convergence ≤ 2 stale sends
		AdminByteMicros:  2,
		ForwardMicros:    20,
		CrossMsgMicros:   15,
		PaybackPeriods:   4,
	}
}

// MigrationMicros is the modeled one-time price of a migration.
func (c *CostModel) MigrationMicros() sim.Time {
	return c.FreezeMicros +
		sim.Time(c.AdminBytes)*c.AdminByteMicros +
		sim.Time(c.ForwardsAbsorbed)*c.ForwardMicros
}

// Worthwhile reports whether a recurring per-period gain repays the
// migration price within the payback horizon.
func (c *CostModel) Worthwhile(gainPerPeriod sim.Time) bool {
	return gainPerPeriod*c.PaybackPeriods >= c.MigrationMicros()
}

// AffinityGain estimates the per-period gain of moving pl next to its top
// peer: every message that was crossing the network becomes local.
func (c *CostModel) AffinityGain(pl msg.ProcLoad) sim.Time {
	return sim.Time(pl.TopPeerMsgs) * c.CrossMsgMicros
}

// Calibrate folds measured ledger records into the per-migration averages
// (simple means; integer arithmetic for cross-platform determinism) and
// returns how many records it used. Records from failed migrations are
// skipped — an aborted move's freeze window says nothing about the price
// of a successful one.
func (c *CostModel) Calibrate(recs []obs.MigrationRecord) int {
	var n, freeze, admin, fwd uint64
	for i := range recs {
		r := &recs[i]
		if !r.OK {
			continue
		}
		n++
		freeze += uint64(r.FreezeMicros())
		admin += uint64(r.AdminBytes)
		fwd += r.ForwardsAbsorbed
	}
	if n == 0 {
		return 0
	}
	c.FreezeMicros = sim.Time(freeze / n)
	c.AdminBytes = admin / n
	c.ForwardsAbsorbed = fwd / n
	c.calibrated += int(n)
	return int(n)
}

// Calibrated returns how many ledger records have been folded in.
func (c *CostModel) Calibrated() int { return c.calibrated }

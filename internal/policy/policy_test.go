package policy

import (
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/msg"
)

func pid(l uint16) addr.ProcessID { return addr.ProcessID{Creator: 1, Local: addr.LocalUID(l)} }

func load(m addr.MachineID, cpu uint8, procs ...msg.ProcLoad) msg.LoadReport {
	return msg.LoadReport{Machine: m, CPUPercent: cpu, Ready: uint16(len(procs)), Procs: procs}
}

func pl(l uint16, cpu uint32) msg.ProcLoad {
	return msg.ProcLoad{PID: pid(l), CPUMicros: cpu}
}

func TestManualNeverMoves(t *testing.T) {
	p := Manual{}
	if d := p.Decide(0, []msg.LoadReport{load(1, 100, pl(1, 9999)), load(2, 0)}); d != nil {
		t.Fatalf("manual policy decided: %v", d)
	}
	if p.Name() != "manual" {
		t.Fatal("name")
	}
}

func TestThresholdMovesHungriest(t *testing.T) {
	p := NewThreshold(80, 20, 1000)
	loads := []msg.LoadReport{
		load(1, 95, pl(1, 5000), pl(2, 90000), pl(3, 100)),
		load(2, 5),
		load(3, 50),
	}
	d := p.Decide(100, loads)
	if len(d) != 1 {
		t.Fatalf("decisions: %v", d)
	}
	if d[0].PID != pid(2) || d[0].From != 1 || d[0].Dest != 2 {
		t.Fatalf("wrong move: %+v", d[0])
	}
}

func TestThresholdHysteresisGap(t *testing.T) {
	p := NewThreshold(80, 20, 1000)
	// Busy but not past the high water.
	if d := p.Decide(0, []msg.LoadReport{load(1, 70, pl(1, 9000), pl(2, 9000)), load(2, 5)}); d != nil {
		t.Fatalf("moved below high water: %v", d)
	}
	// Destination not idle enough.
	if d := p.Decide(0, []msg.LoadReport{load(1, 95, pl(1, 9000), pl(2, 9000)), load(2, 40)}); d != nil {
		t.Fatalf("moved to busy destination: %v", d)
	}
}

func TestThresholdCooldown(t *testing.T) {
	p := NewThreshold(80, 20, 1000)
	loads := []msg.LoadReport{load(1, 95, pl(1, 9000), pl(2, 5000)), load(2, 5)}
	d1 := p.Decide(100, loads)
	if len(d1) != 1 || d1[0].PID != pid(1) {
		t.Fatalf("first: %v", d1)
	}
	// Same picture immediately after: the moved process is cooling down,
	// so the other one is picked.
	d2 := p.Decide(200, loads)
	if len(d2) != 1 || d2[0].PID != pid(2) {
		t.Fatalf("second: %v", d2)
	}
	// Everyone cooling down: nothing moves.
	if d3 := p.Decide(300, loads); d3 != nil {
		t.Fatalf("third: %v", d3)
	}
	// After the cooldown both are movable again.
	if d4 := p.Decide(2000, loads); len(d4) != 1 {
		t.Fatalf("post-cooldown: %v", d4)
	}
}

func TestThresholdWontEmptyMachine(t *testing.T) {
	p := NewThreshold(80, 20, 1000)
	if d := p.Decide(0, []msg.LoadReport{load(1, 95, pl(1, 9000)), load(2, 5)}); d != nil {
		t.Fatalf("moved the only process: %v", d)
	}
}

func TestThresholdIgnoresIdleProcesses(t *testing.T) {
	p := NewThreshold(80, 20, 1000)
	loads := []msg.LoadReport{load(1, 95, pl(1, 10), pl(2, 10)), load(2, 5)}
	if d := p.Decide(0, loads); d != nil {
		t.Fatalf("moved an idle process: %v", d)
	}
}

func TestCommAffinity(t *testing.T) {
	p := NewCommAffinity(10, 1000)
	loads := []msg.LoadReport{
		{Machine: 1, Procs: []msg.ProcLoad{
			{PID: pid(1), TopPeer: 2, TopPeerMsgs: 50},
			{PID: pid(2), TopPeer: 1, TopPeerMsgs: 99},  // already local
			{PID: pid(3), TopPeer: 2, TopPeerMsgs: 3},   // too little traffic
			{PID: pid(4), TopPeer: 0, TopPeerMsgs: 100}, // no peer
		}},
	}
	d := p.Decide(0, loads)
	if len(d) != 1 || d[0].PID != pid(1) || d[0].Dest != 2 {
		t.Fatalf("affinity: %v", d)
	}
	// Cooldown suppresses a repeat.
	if d2 := p.Decide(100, loads); d2 != nil {
		t.Fatalf("no cooldown: %v", d2)
	}
}

func TestCommAffinityMaxMoves(t *testing.T) {
	p := NewCommAffinity(10, 1000)
	p.MaxMoves = 2
	// Five qualifying processes; traffic ranks pid5 > pid4 > the rest.
	loads := []msg.LoadReport{
		{Machine: 1, Procs: []msg.ProcLoad{
			{PID: pid(1), TopPeer: 2, TopPeerMsgs: 20},
			{PID: pid(2), TopPeer: 2, TopPeerMsgs: 30},
			{PID: pid(3), TopPeer: 2, TopPeerMsgs: 40},
			{PID: pid(4), TopPeer: 2, TopPeerMsgs: 50},
			{PID: pid(5), TopPeer: 2, TopPeerMsgs: 60},
		}},
	}
	d := p.Decide(0, loads)
	if len(d) != 2 {
		t.Fatalf("cap ignored: %v", d)
	}
	if d[0].PID != pid(5) || d[1].PID != pid(4) {
		t.Fatalf("cap must keep the chattiest first: %v", d)
	}
	// The capped-out processes were not charged a cooldown: they are
	// eligible again on the very next sweep.
	d2 := p.Decide(100, loads)
	if len(d2) != 2 || d2[0].PID != pid(3) || d2[1].PID != pid(2) {
		t.Fatalf("next sweep: %v", d2)
	}
}

func TestDrain(t *testing.T) {
	p := NewDrain(2)
	loads := []msg.LoadReport{
		load(1, 80),
		load(2, 50, pl(1, 100), pl(2, 100)),
		load(3, 10),
	}
	d := p.Decide(0, loads)
	if len(d) != 2 {
		t.Fatalf("drain: %v", d)
	}
	// Round-robin starting from the calmest survivor: m3 then m1.
	if d[0].Dest != 3 || d[1].Dest != 1 {
		t.Fatalf("drain must spread evacuees round-robin: %+v", d)
	}
	for _, dec := range d {
		if dec.From != 2 {
			t.Fatalf("drain source: %+v", dec)
		}
	}
	// Already-ordered processes are not re-ordered.
	if d2 := p.Decide(100, loads); d2 != nil {
		t.Fatalf("drain repeated orders: %v", d2)
	}
}

func TestDrainSpreadsEvacuees(t *testing.T) {
	// Six evacuees over three survivors: no survivor receives more than
	// its round-robin share — the old behavior dumped all six on one.
	procs := []msg.ProcLoad{pl(1, 1), pl(2, 1), pl(3, 1), pl(4, 1), pl(5, 1), pl(6, 1)}
	p := NewDrain(9)
	loads := []msg.LoadReport{
		load(9, 50, procs...), load(1, 30), load(2, 20), load(3, 10),
	}
	d := p.Decide(0, loads)
	if len(d) != 6 {
		t.Fatalf("drain: %v", d)
	}
	got := map[addr.MachineID]int{}
	for _, dec := range d {
		got[dec.Dest]++
	}
	if got[1] != 2 || got[2] != 2 || got[3] != 2 {
		t.Fatalf("uneven evacuation spread: %v", got)
	}
}

func TestDrainNoTarget(t *testing.T) {
	p := NewDrain(1)
	if d := p.Decide(0, []msg.LoadReport{load(1, 50, pl(1, 1))}); d != nil {
		t.Fatalf("drained with nowhere to go: %v", d)
	}
}

func TestNames(t *testing.T) {
	if NewThreshold(1, 1, 1).Name() != "threshold" ||
		NewCommAffinity(1, 1).Name() != "comm-affinity" ||
		NewDrain(1).Name() != "drain" {
		t.Fatal("policy names")
	}
}

package policy

import (
	"sort"

	"demosmp/internal/addr"
	"demosmp/internal/msg"
	"demosmp/internal/sim"
)

// Sample is one machine's latest load report plus when it arrived.
type Sample struct {
	At     sim.Time
	Report msg.LoadReport
}

// Collector assembles per-machine load reports into a cluster-wide view
// and detects report-round boundaries, so a policy runs once per round over
// a complete picture instead of once per report over a stale one (§3.1:
// "there must be some mechanism for collecting this information in a
// place where the strategy routines have access to it").
//
// Determinism: the collector's only input is the order load reports reach
// the process manager, and that order is canonical under sharding (the
// per-shard pending heaps deliver same-tick messages in (to, from, seq)
// order regardless of shard count). A round normally closes when the
// highest-numbered machine reports — kernels on one tick report in
// ascending machine order at the PM — and a repeat of any machine inside a
// round closes it too, so a crashed closer delays the sweep by at most one
// round instead of forever.
type Collector struct {
	// MaxAge drops samples older than this from View (0 keeps all).
	// Crashed or partitioned machines stop reporting; without an age
	// cutoff a policy would keep scheduling onto their last good numbers.
	MaxAge sim.Time

	last    addr.MachineID // expected round closer (highest machine)
	samples map[addr.MachineID]Sample
	seen    map[addr.MachineID]uint64 // value == gen means seen this round
	gen     uint64
	sweeps  uint64
}

// NewCollector returns a collector for the given machine set.
func NewCollector(machines []addr.MachineID, maxAge sim.Time) *Collector {
	c := &Collector{
		MaxAge:  maxAge,
		samples: make(map[addr.MachineID]Sample, len(machines)),
		seen:    make(map[addr.MachineID]uint64, len(machines)),
		gen:     1,
	}
	for _, m := range machines {
		if m > c.last {
			c.last = m
		}
	}
	return c
}

// Observe records one load report and reports whether it closed a round —
// the signal to run the policy over View.
func (c *Collector) Observe(now sim.Time, rep msg.LoadReport) bool {
	wrapped := c.seen[rep.Machine] == c.gen
	c.samples[rep.Machine] = Sample{At: now, Report: rep}
	if wrapped {
		// A machine reported twice without the closer in between: the
		// closer died or is partitioned. Start the new round here.
		c.gen++
	}
	c.seen[rep.Machine] = c.gen
	sweep := wrapped || rep.Machine == c.last
	if rep.Machine == c.last {
		c.gen++
	}
	if sweep {
		c.sweeps++
	}
	return sweep
}

// View returns the freshest sample per machine, machine-sorted, with
// samples older than MaxAge dropped.
func (c *Collector) View(now sim.Time) []msg.LoadReport {
	machines := make([]addr.MachineID, 0, len(c.samples))
	for m := range c.samples {
		machines = append(machines, m)
	}
	sort.Slice(machines, func(i, j int) bool { return machines[i] < machines[j] })
	out := make([]msg.LoadReport, 0, len(machines))
	for _, m := range machines {
		s := c.samples[m]
		if c.MaxAge > 0 && now-s.At > c.MaxAge {
			continue
		}
		out = append(out, s.Report)
	}
	return out
}

// Sweeps returns how many rounds have closed.
func (c *Collector) Sweeps() uint64 { return c.sweeps }

// Len returns how many machines have ever reported.
func (c *Collector) Len() int { return len(c.samples) }

package policy

import (
	"fmt"
	"sort"

	"demosmp/internal/addr"
	"demosmp/internal/msg"
	"demosmp/internal/sim"
)

// capMoves bounds a decision list to max orders per sweep — shared by
// CommAffinity and Composite so one policy pass can never order an
// unbounded burst of simultaneous migrations (each order costs a freeze
// window and admin traffic; hundreds at once would be a self-inflicted
// outage).
func capMoves(out []Decision, max int) []Decision {
	if max > 0 && len(out) > max {
		return out[:max]
	}
	return out
}

// cooldown tracks per-process move hysteresis shared by the policies.
type cooldown struct {
	every sim.Time
	last  map[addr.ProcessID]sim.Time
}

func newCooldown(every sim.Time) cooldown {
	return cooldown{every: every, last: make(map[addr.ProcessID]sim.Time)}
}

func (c *cooldown) ready(pid addr.ProcessID, now sim.Time) bool {
	last, ok := c.last[pid]
	return !ok || now-last >= c.every
}

func (c *cooldown) mark(pid addr.ProcessID, now sim.Time) { c.last[pid] = now }

// QueueDepth balances on ready-queue depth instead of CPU%. Under bimodal
// service times a machine stuck behind long jobs saturates at 100% CPU just
// like a merely busy one — the run-queue depth still tells them apart, so
// depth is the better overload signal when service times are heavy-tailed.
type QueueDepth struct {
	HighDepth uint16 // source queue depth at or above this is overloaded
	Gap       uint16 // minimum src-dst depth difference (hysteresis)
	MinCPU    uint32 // don't pay migration cost for an idle process
	MaxMoves  int    // orders per sweep

	cd cooldown
}

// NewQueueDepth returns a queue-depth balancing policy.
func NewQueueDepth(highDepth, gap uint16, cooldownT sim.Time) *QueueDepth {
	return &QueueDepth{
		HighDepth: highDepth, Gap: gap, MinCPU: 1000, MaxMoves: 4,
		cd: newCooldown(cooldownT),
	}
}

func (p *QueueDepth) Name() string { return "queue-depth" }

func (p *QueueDepth) Decide(now sim.Time, loads []msg.LoadReport) []Decision {
	if len(loads) < 2 {
		return nil
	}
	// Work on a depth scratch so each order shifts the picture: the next
	// pair is chosen as if the previous move already landed, spreading a
	// burst over several destinations instead of dogpiling the idlest.
	depth := make([]uint16, len(loads))
	for i := range loads {
		depth[i] = loads[i].Ready
	}
	moved := make(map[addr.ProcessID]bool)
	var out []Decision
	max := p.MaxMoves
	if max <= 0 {
		max = 1
	}
	for len(out) < max {
		src, dst := -1, -1
		for i := range loads {
			if src < 0 || depth[i] > depth[src] {
				src = i
			}
			if dst < 0 || depth[i] < depth[dst] {
				dst = i
			}
		}
		if src == dst || depth[src] < p.HighDepth || depth[src]-depth[dst] < p.Gap {
			break
		}
		var best *msg.ProcLoad
		for i := range loads[src].Procs {
			pl := &loads[src].Procs[i]
			if pl.CPUMicros < p.MinCPU || moved[pl.PID] || !p.cd.ready(pl.PID, now) {
				continue
			}
			if best == nil || pl.CPUMicros > best.CPUMicros {
				best = pl
			}
		}
		if best == nil {
			break
		}
		moved[best.PID] = true
		p.cd.mark(best.PID, now)
		out = append(out, Decision{
			PID: best.PID, From: loads[src].Machine, Dest: loads[dst].Machine,
			Reason: fmt.Sprintf("queue %d -> %d", depth[src], depth[dst]),
		})
		depth[src]--
		depth[dst]++
	}
	return out
}

// MemoryPressure relieves the machine with the most memory in use by
// moving its largest process to the machine with the least — §3.1's
// "memory demand for each machine" signal. CPU balancing ignores a machine
// that is idle but full; this policy is the complement.
type MemoryPressure struct {
	HighKB   uint32 // source MemUsedKB at or above this is under pressure
	GapKB    uint32 // minimum src-dst difference (hysteresis)
	MaxMoves int

	cd cooldown
}

// NewMemoryPressure returns a memory balancing policy.
func NewMemoryPressure(highKB, gapKB uint32, cooldownT sim.Time) *MemoryPressure {
	return &MemoryPressure{HighKB: highKB, GapKB: gapKB, MaxMoves: 2, cd: newCooldown(cooldownT)}
}

func (p *MemoryPressure) Name() string { return "memory-pressure" }

func (p *MemoryPressure) Decide(now sim.Time, loads []msg.LoadReport) []Decision {
	if len(loads) < 2 {
		return nil
	}
	used := make([]uint32, len(loads))
	for i := range loads {
		used[i] = loads[i].MemUsedKB
	}
	moved := make(map[addr.ProcessID]bool)
	var out []Decision
	max := p.MaxMoves
	if max <= 0 {
		max = 1
	}
	for len(out) < max {
		src, dst := -1, -1
		for i := range loads {
			if src < 0 || used[i] > used[src] {
				src = i
			}
			if dst < 0 || used[i] < used[dst] {
				dst = i
			}
		}
		if src == dst || used[src] < p.HighKB || used[src]-used[dst] < p.GapKB {
			break
		}
		var best *msg.ProcLoad
		for i := range loads[src].Procs {
			pl := &loads[src].Procs[i]
			if pl.MemKB == 0 || moved[pl.PID] || !p.cd.ready(pl.PID, now) {
				continue
			}
			if best == nil || pl.MemKB > best.MemKB {
				best = pl
			}
		}
		if best == nil {
			break
		}
		moved[best.PID] = true
		p.cd.mark(best.PID, now)
		out = append(out, Decision{
			PID: best.PID, From: loads[src].Machine, Dest: loads[dst].Machine,
			Reason: fmt.Sprintf("mem %dKB -> %dKB", used[src], used[dst]),
		})
		used[src] -= best.MemKB
		used[dst] += best.MemKB
	}
	return out
}

// AffinityAware is CommAffinity grown up: it moves a process toward its top
// peer only when the cost model says the saved cross-machine traffic repays
// the migration price within the payback horizon, and only when the
// destination — read from the collector's view, i.e. the link topology's
// other end — has CPU headroom to absorb the process. Candidates are
// ranked by traffic saved so a capped sweep spends its orders on the
// biggest wins first.
type AffinityAware struct {
	MinMsgs    uint32 // messages per period to even consider a move
	MaxDestPct uint8  // skip destinations busier than this
	MaxMoves   int
	Cost       *CostModel

	cd cooldown
}

// NewAffinityAware returns a cost-gated affinity policy.
func NewAffinityAware(minMsgs uint32, cooldownT sim.Time, cost *CostModel) *AffinityAware {
	if cost == nil {
		cost = DefaultCostModel()
	}
	return &AffinityAware{
		MinMsgs: minMsgs, MaxDestPct: 85, MaxMoves: 4, Cost: cost,
		cd: newCooldown(cooldownT),
	}
}

func (p *AffinityAware) Name() string { return "affinity-aware" }

func (p *AffinityAware) Decide(now sim.Time, loads []msg.LoadReport) []Decision {
	busy := make(map[addr.MachineID]uint8, len(loads))
	for i := range loads {
		busy[loads[i].Machine] = loads[i].CPUPercent
	}
	type cand struct {
		pl   msg.ProcLoad
		from addr.MachineID
	}
	var cands []cand
	for i := range loads {
		l := &loads[i]
		for j := range l.Procs {
			pl := &l.Procs[j]
			if pl.TopPeer == addr.NoMachine || pl.TopPeer == l.Machine {
				continue
			}
			if pl.TopPeerMsgs < p.MinMsgs || !p.cd.ready(pl.PID, now) {
				continue
			}
			pct, known := busy[pl.TopPeer]
			if !known || pct > p.MaxDestPct {
				continue // destination unknown or too hot to absorb it
			}
			if !p.Cost.Worthwhile(p.Cost.AffinityGain(*pl)) {
				continue // traffic saved never repays the freeze+admin price
			}
			cands = append(cands, cand{pl: *pl, from: l.Machine})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.pl.TopPeerMsgs != b.pl.TopPeerMsgs {
			return a.pl.TopPeerMsgs > b.pl.TopPeerMsgs
		}
		if a.pl.PID.Creator != b.pl.PID.Creator {
			return a.pl.PID.Creator < b.pl.PID.Creator
		}
		return a.pl.PID.Local < b.pl.PID.Local
	})
	var out []Decision
	for _, c := range cands {
		out = append(out, Decision{
			PID: c.pl.PID, From: c.from, Dest: c.pl.TopPeer,
			Reason: fmt.Sprintf("%d msgs/period to m%d, payback ok", c.pl.TopPeerMsgs, uint16(c.pl.TopPeer)),
		})
	}
	out = capMoves(out, p.MaxMoves)
	for _, d := range out {
		p.cd.mark(d.PID, now)
	}
	return out
}

// Rule is one weighted member of a Composite policy.
type Rule struct {
	Policy Policy
	Weight int // higher-weight rules win PID conflicts and sort first
}

// Composite runs several policies over the same view and merges their
// orders: when two rules want to move the same process, the higher-weight
// rule's order wins; the merged list is capped at MaxMoves, spending the
// budget on the highest-weight orders first.
type Composite struct {
	Rules    []Rule
	MaxMoves int
}

// NewComposite returns a weighted composite policy.
func NewComposite(maxMoves int, rules ...Rule) *Composite {
	return &Composite{Rules: rules, MaxMoves: maxMoves}
}

func (p *Composite) Name() string { return "composite" }

func (p *Composite) Decide(now sim.Time, loads []msg.LoadReport) []Decision {
	type weighted struct {
		d      Decision
		weight int
		rule   int
	}
	best := make(map[addr.ProcessID]weighted)
	var pids []addr.ProcessID
	for ri, r := range p.Rules {
		for _, d := range r.Policy.Decide(now, loads) {
			w := weighted{d: d, weight: r.Weight, rule: ri}
			prev, ok := best[d.PID]
			if !ok {
				pids = append(pids, d.PID)
				best[d.PID] = w
				continue
			}
			if w.weight > prev.weight {
				best[d.PID] = w
			}
		}
	}
	sort.Slice(pids, func(i, j int) bool {
		a, b := best[pids[i]], best[pids[j]]
		if a.weight != b.weight {
			return a.weight > b.weight
		}
		if a.rule != b.rule {
			return a.rule < b.rule
		}
		if a.d.PID.Creator != b.d.PID.Creator {
			return a.d.PID.Creator < b.d.PID.Creator
		}
		return a.d.PID.Local < b.d.PID.Local
	})
	var out []Decision
	for _, id := range pids {
		w := best[id]
		w.d.Reason = fmt.Sprintf("%s[w%d]: %s", p.Rules[w.rule].Policy.Name(), w.weight, w.d.Reason)
		out = append(out, w.d)
	}
	return capMoves(out, p.MaxMoves)
}

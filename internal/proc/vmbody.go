package proc

import (
	"fmt"

	"demosmp/internal/addr"
	"demosmp/internal/dvm"
	"demosmp/internal/link"
	"demosmp/internal/memory"
)

// VMKind is the registry kind of VM bodies.
const VMKind = "dvm"

// VMBody runs a DVM program. Its control state is the CPU snapshot; its
// program, data, and stack live in the process memory image, which the
// kernel moves during migration step 5.
type VMBody struct {
	vm dvm.VM
}

// NewVMBody returns a body that will start executing at entry once the
// kernel wires in the memory image.
func NewVMBody(entry uint32) *VMBody {
	b := &VMBody{}
	b.vm.CPU.PC = entry
	return b
}

// Kind implements Body.
func (b *VMBody) Kind() string { return VMKind }

// SetImage implements MemoryHolder. On fresh creation it also places the
// stack pointer at the top of the image; after a migration restore the
// restored SP is kept.
func (b *VMBody) SetImage(img *memory.Image) {
	b.vm.Mem = img
	if b.vm.CPU.SP == 0 {
		b.vm.CPU.SP = uint32(img.Size())
	}
}

// CPU exposes the register state for tests and tooling.
func (b *VMBody) CPU() *dvm.CPU { return &b.vm.CPU }

// Step implements Body by running up to budget DVM instructions.
func (b *VMBody) Step(ctx Context, budget int) (int, Status) {
	if b.vm.Mem == nil {
		return 0, Status{State: Crashed, Err: fmt.Errorf("proc: VM body has no memory image")}
	}
	sys := &vmSyscalls{ctx: ctx}
	used, st := b.vm.Step(sys, budget)
	switch st {
	case dvm.Running, dvm.Yielded:
		return used, Status{State: Runnable}
	case dvm.Blocked:
		return used, Status{State: Blocked}
	case dvm.Halted:
		return used, Status{State: Exited, ExitCode: b.vm.CPU.ExitCode}
	default:
		return used, Status{State: Crashed, Err: b.vm.Fault}
	}
}

// Snapshot implements Body: the CPU registers are the whole control state.
func (b *VMBody) Snapshot() ([]byte, error) {
	return b.vm.CPU.Encode(nil), nil
}

// Restore implements Body.
func (b *VMBody) Restore(data []byte) error {
	cpu, rest, err := dvm.DecodeCPU(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("proc: %d trailing bytes in VM snapshot", len(rest))
	}
	b.vm.CPU = cpu
	return nil
}

// vmSyscalls adapts the kernel Context to the DVM trap interface.
type vmSyscalls struct {
	ctx Context
}

func (s *vmSyscalls) Send(l uint16, data []byte, carry ...uint16) error {
	ids := make([]link.ID, 0, len(carry))
	for _, c := range carry {
		if c != 0 {
			ids = append(ids, link.ID(c))
		}
	}
	return s.ctx.Send(link.ID(l), data, ids...)
}

func (s *vmSyscalls) Recv(max int) ([]byte, uint16, uint16, bool) {
	d, ok := s.ctx.Recv()
	if !ok {
		return nil, 0, 0, false
	}
	data := d.Body
	if len(data) > max {
		data = data[:max]
	}
	var carried uint16
	if len(d.Carried) > 0 {
		carried = uint16(d.Carried[0])
	}
	return data, carried, uint16(d.From.LastKnown), true
}

func (s *vmSyscalls) CreateLink(attrs uint16, areaOff, areaLen uint32) (uint16, error) {
	id, err := s.ctx.CreateLink(link.Attr(attrs), link.DataArea{Offset: areaOff, Length: areaLen})
	return uint16(id), err
}

func (s *vmSyscalls) DestroyLink(l uint16) error { return s.ctx.DestroyLink(link.ID(l)) }

func (s *vmSyscalls) PID() (uint16, uint16) {
	p := s.ctx.PID()
	return uint16(p.Creator), uint16(p.Local)
}

func (s *vmSyscalls) Now() uint64 { return uint64(s.ctx.Now()) }

func (s *vmSyscalls) Print(d []byte) { s.ctx.Print(d) }

func (s *vmSyscalls) MigrateSelf(machine uint16) error {
	return s.ctx.RequestMigration(addr.MachineID(machine))
}

func (s *vmSyscalls) Rand() uint32 { return s.ctx.Rand() }

// Package proc defines the process model hosted by the DEMOS/MP kernel.
//
// A process is a Body — something the kernel can schedule in slices,
// snapshot into bytes, and re-instantiate on another machine. Two families
// exist: VM bodies (user programs compiled for the DVM, whose memory image
// is the moved "program, data, and stack" of Figure 2-2) and native bodies
// (the system server processes — switchboard, process manager, file system
// — written as resumable Go state machines with serializable state, which
// is what lets the paper's hard test case, migrating a file system process
// mid-service, actually run).
package proc

import (
	"fmt"
	"sort"

	"demosmp/internal/addr"
	"demosmp/internal/link"
	"demosmp/internal/memory"
	"demosmp/internal/msg"
	"demosmp/internal/sim"
)

// State is the scheduling outcome of a Step call.
type State uint8

const (
	// Runnable: the body can use more CPU; requeue it.
	Runnable State = iota
	// Blocked: the body is waiting for a message; re-Step on arrival.
	Blocked
	// Exited: the body finished; Status.ExitCode holds the code.
	Exited
	// Crashed: the body faulted; Status.Err holds the cause.
	Crashed
)

func (s State) String() string {
	switch s {
	case Runnable:
		return "runnable"
	case Blocked:
		return "blocked"
	case Exited:
		return "exited"
	case Crashed:
		return "crashed"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Status is returned by Body.Step.
type Status struct {
	State    State
	ExitCode int32
	Err      error
}

// Delivery is one received message as seen by a body.
type Delivery struct {
	From    addr.ProcessAddr
	Body    []byte
	Carried []link.ID // links that arrived in the message, already installed
	Op      msg.Op    // OpNone for user messages; kernel completions/timers otherwise
	Xfer    uint16    // correlation id for move-data completions
	OK      bool      // completion success
	Data    []byte    // assembled data for move-read completions
}

// Context is the kernel-call interface handed to a body during Step. All
// contact between a process and the world goes through it — the Go
// rendering of "links are the only connections a process has to the
// operating system, system resources, and other processes".
type Context interface {
	// PID returns this process's immutable identity.
	PID() addr.ProcessID
	// Machine returns the processor currently executing the process.
	Machine() addr.MachineID
	// Now returns the simulated time.
	Now() sim.Time
	// Rand returns deterministic pseudo-randomness.
	Rand() uint32

	// Send transmits body over the link, optionally carrying copies of
	// other links from this process's table.
	Send(on link.ID, body []byte, carry ...link.ID) error
	// SendOp transmits a kernel control operation over the link —
	// how the process manager drives kernels through its
	// DELIVERTOKERNEL links. Privileged.
	SendOp(on link.ID, op msg.Op, body []byte) error
	// Recv pops the next queued delivery; ok=false means block.
	Recv() (Delivery, bool)

	// CreateLink mints a link addressing this process, optionally
	// granting a data area in its memory image.
	CreateLink(attrs link.Attr, area link.DataArea) (link.ID, error)
	// DestroyLink removes a link from the table.
	DestroyLink(id link.ID) error
	// LinkAddr inspects the address a held link points at.
	LinkAddr(id link.ID) (link.Link, bool)
	// MintLink fabricates a link to an arbitrary process address.
	// Privileged; only system processes may call it (the process
	// manager uses DELIVERTOKERNEL links minted this way).
	MintLink(l link.Link) (link.ID, error)

	// MoveTo streams data into the data area granted by a held link
	// (the paper's large-transfer facility, §2.2). Completion arrives
	// later as a Delivery with Op=OpMoveWriteDone and the given xfer.
	MoveTo(on link.ID, off uint32, data []byte, xfer uint16) error
	// MoveFrom streams data out of the area granted by a held link;
	// the assembled bytes arrive as a Delivery with Op=OpMoveReadDone.
	MoveFrom(on link.ID, off, n uint32, xfer uint16) error

	// ImageRead/ImageWrite access this process's own memory image
	// (native bodies use it to expose data areas).
	ImageRead(off int, b []byte) error
	ImageWrite(off int, b []byte) error

	// SetTimer delivers a Delivery with Op=OpTimer and the tag after d.
	SetTimer(d sim.Time, tag uint16)

	// Print writes to the trace console.
	Print(b []byte)
	// Logf writes a formatted line to the trace console.
	Logf(format string, args ...any)

	// RequestMigration asks the process manager to move this process
	// (§3.1: "It is of course possible for a process to request its
	// own migration").
	RequestMigration(dest addr.MachineID) error
}

// Body is the schedulable, migratable substance of a process.
type Body interface {
	// Kind names the body type for re-instantiation on the destination
	// kernel after migration.
	Kind() string
	// Step runs the body for at most budget units of work and returns
	// the cost actually spent (VM bodies: instructions; native bodies
	// may return 0 to be charged the kernel's fixed native step cost).
	Step(ctx Context, budget int) (cost int, st Status)
	// Snapshot serializes the body's control state — the part of the
	// swappable state that is not the link table.
	Snapshot() ([]byte, error)
	// Restore rebuilds the control state on the destination kernel.
	Restore(data []byte) error
}

// MemoryHolder is implemented by bodies that execute out of the process
// memory image (VM bodies). The kernel wires the image in at creation and
// again after the program transfer of migration step 5.
type MemoryHolder interface {
	SetImage(img *memory.Image)
}

// Registry maps body kinds to factories so a destination kernel can
// re-instantiate a migrated process (§3.1 step 3 allocates the empty state;
// the factory provides the Go-side vessel the restored state fills).
type Registry struct {
	factories map[string]func() Body
}

// NewRegistry returns a registry with the VM body kind pre-registered.
func NewRegistry() *Registry {
	r := &Registry{factories: make(map[string]func() Body)}
	r.Register(VMKind, func() Body { return &VMBody{} })
	return r
}

// Register binds a kind name to a factory. Registering a duplicate panics:
// kinds are wiring, not data.
func (r *Registry) Register(kind string, fn func() Body) {
	if _, dup := r.factories[kind]; dup {
		panic(fmt.Sprintf("proc: kind %q registered twice", kind))
	}
	r.factories[kind] = fn
}

// New instantiates an empty body of the given kind.
func (r *Registry) New(kind string) (Body, error) {
	fn, ok := r.factories[kind]
	if !ok {
		return nil, fmt.Errorf("proc: unknown body kind %q", kind)
	}
	return fn(), nil
}

// Kinds lists the registered kinds, sorted.
func (r *Registry) Kinds() []string {
	out := make([]string, 0, len(r.factories))
	for k := range r.factories {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

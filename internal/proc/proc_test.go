package proc

import (
	"fmt"
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/dvm"
	"demosmp/internal/link"
	"demosmp/internal/memory"
	"demosmp/internal/msg"
	"demosmp/internal/sim"
)

// fakeCtx is a minimal Context for driving bodies without a kernel.
type fakeCtx struct {
	pid     addr.ProcessID
	machine addr.MachineID
	inbox   []Delivery
	sent    []struct {
		On   link.ID
		Body []byte
	}
	prints  []string
	nextLnk link.ID
	img     *memory.Image
	migrate []addr.MachineID
}

func newFakeCtx() *fakeCtx {
	return &fakeCtx{pid: addr.ProcessID{Creator: 2, Local: 9}, machine: 2,
		img: memory.NewImage(1024, nil)}
}

func (f *fakeCtx) PID() addr.ProcessID     { return f.pid }
func (f *fakeCtx) Machine() addr.MachineID { return f.machine }
func (f *fakeCtx) Now() sim.Time           { return 42 }
func (f *fakeCtx) Rand() uint32            { return 4 }

func (f *fakeCtx) Send(on link.ID, body []byte, carry ...link.ID) error {
	f.sent = append(f.sent, struct {
		On   link.ID
		Body []byte
	}{on, append([]byte(nil), body...)})
	return nil
}

func (f *fakeCtx) SendOp(on link.ID, op msg.Op, body []byte) error {
	return f.Send(on, body)
}

func (f *fakeCtx) Recv() (Delivery, bool) {
	if len(f.inbox) == 0 {
		return Delivery{}, false
	}
	d := f.inbox[0]
	f.inbox = f.inbox[1:]
	return d, true
}

func (f *fakeCtx) CreateLink(attrs link.Attr, area link.DataArea) (link.ID, error) {
	f.nextLnk++
	return f.nextLnk, nil
}
func (f *fakeCtx) DestroyLink(link.ID) error                      { return nil }
func (f *fakeCtx) LinkAddr(link.ID) (link.Link, bool)             { return link.Link{}, false }
func (f *fakeCtx) MintLink(link.Link) (link.ID, error)            { f.nextLnk++; return f.nextLnk, nil }
func (f *fakeCtx) MoveTo(link.ID, uint32, []byte, uint16) error   { return nil }
func (f *fakeCtx) MoveFrom(link.ID, uint32, uint32, uint16) error { return nil }
func (f *fakeCtx) ImageRead(off int, b []byte) error              { return f.img.ReadAt(b, off) }
func (f *fakeCtx) ImageWrite(off int, b []byte) error             { return f.img.WriteAt(b, off) }
func (f *fakeCtx) SetTimer(sim.Time, uint16)                      {}
func (f *fakeCtx) Print(b []byte)                                 { f.prints = append(f.prints, string(b)) }
func (f *fakeCtx) Logf(format string, args ...any)                { f.Print([]byte(fmt.Sprintf(format, args...))) }
func (f *fakeCtx) RequestMigration(m addr.MachineID) error {
	f.migrate = append(f.migrate, m)
	return nil
}

var _ Context = (*fakeCtx)(nil)

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	// VM kind is pre-registered.
	b, err := r.New(VMKind)
	if err != nil || b.Kind() != VMKind {
		t.Fatalf("VM kind: %v %v", b, err)
	}
	r.Register("x", func() Body { return &VMBody{} })
	if _, err := r.New("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.New("missing"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	kinds := r.Kinds()
	if len(kinds) != 2 || kinds[0] != VMKind {
		t.Fatalf("kinds: %v", kinds)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Register("x", func() Body { return &VMBody{} })
}

func TestVMBodyLifecycle(t *testing.T) {
	p := dvm.MustAssemble(`
	start:	movi r1, 21
		add r0, r1, r1
		sys exit
	`)
	img, err := p.BuildImage(nil)
	if err != nil {
		t.Fatal(err)
	}
	b := NewVMBody(p.Entry)
	b.SetImage(img)
	ctx := newFakeCtx()
	_, st := b.Step(ctx, 1000)
	if st.State != Exited || st.ExitCode != 42 {
		t.Fatalf("status %+v", st)
	}
}

func TestVMBodyWithoutImageCrashes(t *testing.T) {
	b := NewVMBody(0)
	_, st := b.Step(newFakeCtx(), 10)
	if st.State != Crashed || st.Err == nil {
		t.Fatalf("status %+v", st)
	}
}

func TestVMBodySnapshotRestore(t *testing.T) {
	p := dvm.MustAssemble(`
	start:	movi r1, 0
	loop:	addi r1, r1, 1
		cmpi r1, 1000
		jlt loop
		mov r0, r1
		sys exit
	`)
	img, _ := p.BuildImage(nil)
	b := NewVMBody(p.Entry)
	b.SetImage(img)
	ctx := newFakeCtx()
	if _, st := b.Step(ctx, 100); st.State != Runnable {
		t.Fatalf("status %+v", st)
	}
	snap, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Restore into a fresh body + the same image bytes.
	raw, _ := img.Bytes()
	img2 := memory.NewImage(len(raw), nil)
	img2.WriteAt(raw, 0)
	b2 := &VMBody{}
	if err := b2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	b2.SetImage(img2)
	if b2.CPU().Steps != b.CPU().Steps {
		t.Fatalf("steps diverged: %d vs %d", b2.CPU().Steps, b.CPU().Steps)
	}
	for i := 0; i < 100; i++ {
		if _, st := b2.Step(ctx, 1000); st.State == Exited {
			if st.ExitCode != 1000 {
				t.Fatalf("exit %d", st.ExitCode)
			}
			return
		}
	}
	t.Fatal("restored body never finished")
}

func TestVMBodyRestoreRejectsGarbage(t *testing.T) {
	b := &VMBody{}
	if err := b.Restore([]byte{1, 2, 3}); err == nil {
		t.Fatal("restored garbage")
	}
	good, _ := NewVMBody(0).Snapshot()
	if err := b.Restore(append(good, 0xFF)); err == nil {
		t.Fatal("restored oversized snapshot")
	}
}

func TestVMSyscallBridge(t *testing.T) {
	p := dvm.MustAssemble(`
		.data
	buf:	.space 32
		.code
	start:	sys getpid        ; r0=2 r1=9
		movi r0, 7        ; migrate to m7
		sys migrate
		lea r1, buf
		movi r2, 32
		sys recv          ; blocks first, then gets "hi"
		sys exit          ; exit = recv length
	`)
	img, _ := p.BuildImage(nil)
	b := NewVMBody(p.Entry)
	b.SetImage(img)
	ctx := newFakeCtx()
	_, st := b.Step(ctx, 1000)
	if st.State != Blocked {
		t.Fatalf("status %+v", st)
	}
	if len(ctx.migrate) != 1 || ctx.migrate[0] != 7 {
		t.Fatalf("migrate bridged wrong: %v", ctx.migrate)
	}
	ctx.inbox = append(ctx.inbox, Delivery{
		From:    addr.At(addr.ProcessID{Creator: 1, Local: 1}, 5),
		Body:    []byte("hi"),
		Carried: []link.ID{3},
	})
	_, st = b.Step(ctx, 1000)
	if st.State != Exited || st.ExitCode != 2 {
		t.Fatalf("after wake: %+v", st)
	}
	// The carried link id and sender machine were surfaced in registers.
	if b.CPU().R[3] != 3 || b.CPU().R[4] != 5 {
		t.Fatalf("regs: r3=%d r4=%d", b.CPU().R[3], b.CPU().R[4])
	}
}

func TestStateStrings(t *testing.T) {
	for st, want := range map[State]string{
		Runnable: "runnable", Blocked: "blocked", Exited: "exited", Crashed: "crashed",
	} {
		if st.String() != want {
			t.Errorf("%v", st)
		}
	}
}

package msg

import (
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/link"
)

// FuzzDecode: the message decoder must reject or accept arbitrary bytes
// without ever panicking — kernels parse frames from other kernels.
func FuzzDecode(f *testing.F) {
	good := Encode(nil, &Message{
		Kind: KindUser,
		From: addr.At(addr.ProcessID{Creator: 1, Local: 2}, 1),
		To:   addr.At(addr.ProcessID{Creator: 2, Local: 3}, 2),
		Body: []byte("hello"),
		Links: []link.Link{
			{Addr: addr.At(addr.ProcessID{Creator: 1, Local: 2}, 1), Attrs: link.AttrReply},
		},
	})
	f.Add(good)
	f.Add(good[:7])
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF})
	data := Encode(nil, &Message{Kind: KindData, From: addr.KernelAddr(1),
		To: addr.KernelAddr(2), Xfer: 7, Seq: 99, Last: true, Body: []byte{1, 2, 3}})
	f.Add(data)
	f.Fuzz(func(t *testing.T, b []byte) {
		m, rest, err := Decode(b)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode to the bytes consumed.
		re := Encode(nil, m)
		consumed := b[:len(b)-len(rest)]
		if len(re) != len(consumed) {
			t.Fatalf("re-encode length %d, consumed %d", len(re), len(consumed))
		}
	})
}

// FuzzControlDecoders: every control payload decoder on arbitrary input.
func FuzzControlDecoders(f *testing.F) {
	f.Add([]byte{})
	f.Add(MigrateRequest{PID: addr.ProcessID{Creator: 1, Local: 2}, Dest: 3}.Encode())
	f.Add(MigrateAsk{PID: addr.ProcessID{Creator: 1, Local: 2}, Program: 9}.Encode())
	f.Add(LoadReport{Machine: 2, Procs: []ProcLoad{{PID: addr.ProcessID{Creator: 1, Local: 1}}}}.Encode())
	f.Add(CreateProcess{Tag: 1, Name: "x", Args: []string{"y"}}.Encode())
	f.Fuzz(func(t *testing.T, b []byte) {
		DecodeMigrateRequest(b)
		DecodeMigrateAsk(b)
		DecodePIDMachine(b)
		DecodeMoveDataReq(b)
		DecodeMigrateCleanup(b)
		DecodeMigrateDone(b)
		DecodeLinkUpdate(b)
		DecodeMoveRead(b)
		DecodeXferStatus(b)
		DecodeCreateProcess(b)
		DecodeCreateDone(b)
		DecodeLoadReport(b)
	})
}

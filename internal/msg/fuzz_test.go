package msg

import (
	"reflect"
	"testing"

	"demosmp/internal/addr"
	"demosmp/internal/link"
)

// FuzzDecode: the message decoder must reject or accept arbitrary bytes
// without ever panicking — kernels parse frames from other kernels.
func FuzzDecode(f *testing.F) {
	good := Encode(nil, &Message{
		Kind: KindUser,
		From: addr.At(addr.ProcessID{Creator: 1, Local: 2}, 1),
		To:   addr.At(addr.ProcessID{Creator: 2, Local: 3}, 2),
		Body: []byte("hello"),
		Links: []link.Link{
			{Addr: addr.At(addr.ProcessID{Creator: 1, Local: 2}, 1), Attrs: link.AttrReply},
		},
	})
	f.Add(good)
	f.Add(good[:7])
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF})
	data := Encode(nil, &Message{Kind: KindData, From: addr.KernelAddr(1),
		To: addr.KernelAddr(2), Xfer: 7, Seq: 99, Last: true, Body: []byte{1, 2, 3}})
	f.Add(data)
	f.Fuzz(func(t *testing.T, b []byte) {
		m, rest, err := Decode(b)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode to the bytes consumed.
		re := Encode(nil, m)
		consumed := b[:len(b)-len(rest)]
		if len(re) != len(consumed) {
			t.Fatalf("re-encode length %d, consumed %d", len(re), len(consumed))
		}
	})
}

// FuzzControlDecoders: every control payload decoder on arbitrary input.
// The corpus seeds one well-formed encoding of every payload type (demoslint's
// wirepair rule enforces that this list stays complete as payloads are added).
func FuzzControlDecoders(f *testing.F) {
	f.Add([]byte{})
	f.Add(MigrateRequest{PID: addr.ProcessID{Creator: 1, Local: 2}, Dest: 3}.Encode())
	f.Add(MigrateAsk{PID: addr.ProcessID{Creator: 1, Local: 2}, Program: 9}.Encode())
	f.Add(PIDMachine{PID: addr.ProcessID{Creator: 3, Local: 4}, Machine: 5}.Encode())
	f.Add(MoveDataReq{PID: addr.ProcessID{Creator: 1, Local: 2}, Region: RegionProgram, Xfer: 11}.Encode())
	f.Add(MigrateCleanup{PID: addr.ProcessID{Creator: 1, Local: 2}, Forwarded: 4}.Encode())
	f.Add(MigrateDone{PID: addr.ProcessID{Creator: 1, Local: 2}, Machine: 3, OK: true}.Encode())
	f.Add(LinkUpdate{Sender: addr.ProcessID{Creator: 1, Local: 2}, Migrated: addr.ProcessID{Creator: 3, Local: 4}, Machine: 5}.Encode())
	f.Add(LinkUpdateBatch{Migrated: addr.ProcessID{Creator: 3, Local: 4}, Machine: 5, Senders: []addr.ProcessID{{Creator: 1, Local: 2}, {Creator: 2, Local: 9}}}.Encode())
	f.Add(MoveRead{PID: addr.ProcessID{Creator: 1, Local: 2}, AreaOff: 4096, Off: 128, Len: 256, Xfer: 7}.Encode())
	f.Add(XferStatus{Xfer: 9, OK: true}.Encode())
	f.Add(LoadReport{Machine: 2, Procs: []ProcLoad{{PID: addr.ProcessID{Creator: 1, Local: 1}, MemKB: 32}}}.Encode())
	f.Add(CreateProcess{Tag: 1, Name: "x", Args: []string{"y"}}.Encode())
	f.Add(CreateDone{PID: addr.ProcessID{Creator: 1, Local: 2}, Machine: 3, Tag: 4}.Encode())
	f.Fuzz(func(t *testing.T, b []byte) {
		DecodeMigrateRequest(b)
		DecodeMigrateAsk(b)
		DecodePIDMachine(b)
		DecodeMoveDataReq(b)
		DecodeMigrateCleanup(b)
		DecodeMigrateDone(b)
		DecodeLinkUpdate(b)
		DecodeLinkUpdateBatch(b)
		DecodeMoveRead(b)
		DecodeXferStatus(b)
		DecodeCreateProcess(b)
		DecodeCreateDone(b)
		DecodeLoadReport(b)
	})
}

// TestControlRoundTripAll drives every control payload through its
// AppendTo/Decode pair and checks the decode reproduces the input and
// consumes exactly the bytes AppendTo produced. Together with the wirepair
// lint rule this keeps encoder, decoder, and corpus in lockstep for every
// payload the migration protocol carries.
func TestControlRoundTripAll(t *testing.T) {
	pid := addr.ProcessID{Creator: 7, Local: 42}
	pid2 := addr.ProcessID{Creator: 9, Local: 1}
	cases := []struct {
		name   string
		in     interface{ AppendTo([]byte) []byte }
		decode func([]byte) (any, error)
	}{
		{"MigrateRequest", MigrateRequest{PID: pid, Dest: 3},
			func(b []byte) (any, error) { return DecodeMigrateRequest(b) }},
		{"MigrateAsk", MigrateAsk{PID: pid, Program: 5, Resident: 250, Swappable: 600},
			func(b []byte) (any, error) { return DecodeMigrateAsk(b) }},
		{"PIDMachine", PIDMachine{PID: pid, Machine: 4},
			func(b []byte) (any, error) { return DecodePIDMachine(b) }},
		{"MoveDataReq", MoveDataReq{PID: pid, Region: RegionSwappable, Xfer: 17},
			func(b []byte) (any, error) { return DecodeMoveDataReq(b) }},
		{"MigrateCleanup", MigrateCleanup{PID: pid, Forwarded: 6},
			func(b []byte) (any, error) { return DecodeMigrateCleanup(b) }},
		{"MigrateDone", MigrateDone{PID: pid, Machine: 2, OK: true},
			func(b []byte) (any, error) { return DecodeMigrateDone(b) }},
		{"LinkUpdate", LinkUpdate{Sender: pid, Migrated: pid2, Machine: 8},
			func(b []byte) (any, error) { return DecodeLinkUpdate(b) }},
		{"LinkUpdateBatch", LinkUpdateBatch{Migrated: pid2, Machine: 8, Senders: []addr.ProcessID{pid, {Creator: 2, Local: 9}}},
			func(b []byte) (any, error) { return DecodeLinkUpdateBatch(b) }},
		{"MoveRead", MoveRead{PID: pid, AreaOff: 4096, Off: 64, Len: 512, Xfer: 3},
			func(b []byte) (any, error) { return DecodeMoveRead(b) }},
		{"XferStatus", XferStatus{Xfer: 12, OK: false},
			func(b []byte) (any, error) { return DecodeXferStatus(b) }},
		{"CreateProcess", CreateProcess{Tag: 2, Name: "wk", Args: []string{"a", "b"}},
			func(b []byte) (any, error) { return DecodeCreateProcess(b) }},
		{"CreateDone", CreateDone{PID: pid, Machine: 1, Tag: 2},
			func(b []byte) (any, error) { return DecodeCreateDone(b) }},
		{"LoadReport", LoadReport{Machine: 3, Procs: []ProcLoad{{PID: pid, CPUMicros: 10, MemKB: 48, MsgsOut: 3, TopPeer: 2, TopPeerMsgs: 1}}},
			func(b []byte) (any, error) { return DecodeLoadReport(b) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// AppendTo must append after existing bytes, untouched.
			prefix := []byte{0xAA, 0xBB}
			wire := tc.in.AppendTo(append([]byte(nil), prefix...))
			if len(wire) < len(prefix) || wire[0] != 0xAA || wire[1] != 0xBB {
				t.Fatalf("AppendTo clobbered the existing buffer: % x", wire)
			}
			out, err := tc.decode(wire[len(prefix):])
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(out, any(tc.in)) {
				t.Fatalf("round trip mismatch:\n in: %#v\nout: %#v", tc.in, out)
			}
		})
	}
}

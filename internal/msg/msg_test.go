package msg

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"demosmp/internal/addr"
	"demosmp/internal/link"
)

func pid(c, l uint16) addr.ProcessID {
	return addr.ProcessID{Creator: addr.MachineID(c), Local: addr.LocalUID(l)}
}

func TestMessageRoundTrip(t *testing.T) {
	m := &Message{
		Kind: KindUser,
		From: addr.At(pid(1, 2), 1),
		To:   addr.At(pid(2, 3), 4),
		DTK:  true,
		Body: []byte("hello demos"),
		Links: []link.Link{
			{Addr: addr.At(pid(1, 2), 1), Attrs: link.AttrReply},
			{Addr: addr.At(pid(9, 9), 9), Attrs: link.AttrDataWrite, Area: link.DataArea{Offset: 4, Length: 128}},
		},
	}
	b := Encode(nil, m)
	if len(b) != m.WireSize() {
		t.Fatalf("encoded %d bytes, WireSize says %d", len(b), m.WireSize())
	}
	got, rest, err := Decode(b)
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: %v rest=%d", err, len(rest))
	}
	if got.Kind != m.Kind || got.DTK != m.DTK || got.From != m.From || got.To != m.To {
		t.Fatalf("header mismatch: %v vs %v", got, m)
	}
	if !bytes.Equal(got.Body, m.Body) || !reflect.DeepEqual(got.Links, m.Links) {
		t.Fatalf("payload mismatch")
	}
}

func TestDataPacketRoundTrip(t *testing.T) {
	m := &Message{
		Kind: KindData,
		From: addr.KernelAddr(1),
		To:   addr.KernelAddr(2),
		Xfer: 77,
		Seq:  123456,
		Last: true,
		Body: bytes.Repeat([]byte{0xAB}, 512),
	}
	b := Encode(nil, m)
	got, _, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Xfer != 77 || got.Seq != 123456 || !got.Last || len(got.Body) != 512 {
		t.Fatalf("stream fields lost: %+v", got)
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	f := func(kind uint8, op uint8, body []byte, nlinks uint8, dtk bool, xfer uint16, seq uint32) bool {
		k := Kind(kind%5) + KindUser
		if len(body) > 1000 {
			body = body[:1000]
		}
		m := &Message{
			Kind: k, Op: Op(op % 20), DTK: dtk,
			From: addr.At(pid(1, 5), 1), To: addr.At(pid(2, 6), 3),
			Body: body, Xfer: xfer, Seq: seq,
		}
		for i := 0; i < int(nlinks%4); i++ {
			m.Links = append(m.Links, link.Link{Addr: addr.At(pid(3, uint16(i+1)), 3)})
		}
		b := Encode(nil, m)
		got, rest, err := Decode(b)
		if err != nil || len(rest) != 0 {
			return false
		}
		if got.Kind != m.Kind || got.Op != m.Op || got.DTK != m.DTK {
			return false
		}
		if !bytes.Equal(got.Body, m.Body) || len(got.Links) != len(m.Links) {
			return false
		}
		if k == KindData || k == KindAck {
			if got.Xfer != m.Xfer || got.Seq != m.Seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	m := &Message{Kind: KindUser, From: addr.At(pid(1, 1), 1), To: addr.At(pid(2, 2), 2), Body: []byte("abcdef")}
	b := Encode(nil, m)
	for i := 0; i < len(b); i++ {
		if _, _, err := Decode(b[:i]); err == nil {
			t.Fatalf("accepted %d-byte truncation", i)
		}
	}
}

func TestClone(t *testing.T) {
	m := &Message{Kind: KindUser, Body: []byte{1, 2}, Links: []link.Link{{Addr: addr.At(pid(1, 1), 1)}}}
	c := m.Clone()
	c.Body[0] = 9
	c.Links[0].Addr.LastKnown = 9
	if m.Body[0] != 1 || m.Links[0].Addr.LastKnown != 1 {
		t.Fatal("Clone is shallow")
	}
}

func TestAdminOpClassification(t *testing.T) {
	admin := []Op{OpMigrateRequest, OpMigrateAsk, OpMigrateAccept, OpMigrateRefuse,
		OpMoveDataReq, OpMigrateEstablished, OpMigrateCleanup, OpMigrateDone}
	for _, o := range admin {
		if !o.AdminOp() {
			t.Errorf("%v should be admin", o)
		}
	}
	for _, o := range []Op{OpNone, OpSuspend, OpMoveRead, OpDeathNotice, OpNotDeliverable} {
		if o.AdminOp() {
			t.Errorf("%v should not be admin", o)
		}
	}
}

// The paper: administrative messages are "in the 6-12 byte range".
func TestAdminPayloadSizes(t *testing.T) {
	payloads := map[string][]byte{
		"MigrateRequest":     MigrateRequest{PID: pid(1, 2), Dest: 3}.Encode(),
		"MigrateAsk":         MigrateAsk{PID: pid(1, 2), Program: 100, Resident: 4, Swappable: 10}.Encode(),
		"MigrateAccept":      PIDMachine{PID: pid(1, 2), Machine: 3}.Encode(),
		"MigrateEstablished": PIDMachine{PID: pid(1, 2), Machine: 3}.Encode(),
		"MoveDataReq":        MoveDataReq{PID: pid(1, 2), Region: RegionProgram, Xfer: 7}.Encode(),
		"MigrateCleanup":     MigrateCleanup{PID: pid(1, 2), Forwarded: 5}.Encode(),
		"MigrateDone":        MigrateDone{PID: pid(1, 2), Machine: 3, OK: true}.Encode(),
	}
	for name, b := range payloads {
		if len(b) < 6 || len(b) > 12 {
			t.Errorf("%s payload = %d bytes, want 6-12 (paper §6)", name, len(b))
		}
	}
}

func TestControlRoundTrips(t *testing.T) {
	{
		in := MigrateRequest{PID: pid(4, 5), Dest: 6}
		out, err := DecodeMigrateRequest(in.Encode())
		if err != nil || out != in {
			t.Fatalf("MigrateRequest: %v %v", out, err)
		}
	}
	{
		in := MigrateAsk{PID: pid(4, 5), Program: 1000, Resident: 4, Swappable: 10}
		out, err := DecodeMigrateAsk(in.Encode())
		if err != nil || out != in {
			t.Fatalf("MigrateAsk: %v %v", out, err)
		}
	}
	{
		in := PIDMachine{PID: pid(4, 5), Machine: 2}
		out, err := DecodePIDMachine(in.Encode())
		if err != nil || out != in {
			t.Fatalf("PIDMachine: %v %v", out, err)
		}
	}
	{
		in := MoveDataReq{PID: pid(4, 5), Region: RegionSwappable, Xfer: 300}
		out, err := DecodeMoveDataReq(in.Encode())
		if err != nil || out != in {
			t.Fatalf("MoveDataReq: %v %v", out, err)
		}
	}
	{
		in := MigrateCleanup{PID: pid(4, 5), Forwarded: 17}
		out, err := DecodeMigrateCleanup(in.Encode())
		if err != nil || out != in {
			t.Fatalf("MigrateCleanup: %v %v", out, err)
		}
	}
	{
		in := MigrateDone{PID: pid(4, 5), Machine: 2, OK: true}
		out, err := DecodeMigrateDone(in.Encode())
		if err != nil || out != in {
			t.Fatalf("MigrateDone: %v %v", out, err)
		}
	}
	{
		in := LinkUpdate{Sender: pid(1, 2), Migrated: pid(3, 4), Machine: 5}
		out, err := DecodeLinkUpdate(in.Encode())
		if err != nil || out != in {
			t.Fatalf("LinkUpdate: %v %v", out, err)
		}
		if len(in.Encode()) != 10 {
			t.Fatalf("LinkUpdate size = %d, want 10", len(in.Encode()))
		}
	}
	{
		in := MoveRead{PID: pid(1, 2), AreaOff: 64, Off: 100, Len: 2048, Xfer: 9}
		out, err := DecodeMoveRead(in.Encode())
		if err != nil || out != in {
			t.Fatalf("MoveRead: %v %v", out, err)
		}
	}
	{
		in := XferStatus{Xfer: 9, OK: true}
		out, err := DecodeXferStatus(in.Encode())
		if err != nil || out != in {
			t.Fatalf("XferStatus: %v %v", out, err)
		}
	}
}

func TestControlDecodeErrors(t *testing.T) {
	short := []byte{1, 2, 3}
	if _, err := DecodeMigrateRequest(short); err == nil {
		t.Error("MigrateRequest accepted short input")
	}
	if _, err := DecodeMigrateAsk(short); err == nil {
		t.Error("MigrateAsk accepted short input")
	}
	if _, err := DecodePIDMachine(short); err == nil {
		t.Error("PIDMachine accepted short input")
	}
	if _, err := DecodeMoveDataReq(short); err == nil {
		t.Error("MoveDataReq accepted short input")
	}
	if _, err := DecodeLinkUpdate(short); err == nil {
		t.Error("LinkUpdate accepted short input")
	}
	if _, err := DecodeXferStatus([]byte{1}); err == nil {
		t.Error("XferStatus accepted short input")
	}
}

func TestToUnits(t *testing.T) {
	cases := []struct {
		in   int
		want uint16
	}{{0, 0}, {1, 1}, {64, 1}, {65, 2}, {640, 10}, {10 << 20, 0xFFFF}}
	for _, c := range cases {
		if got := ToUnits(c.in); got != c.want {
			t.Errorf("ToUnits(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestKindAndOpStrings(t *testing.T) {
	if KindUser.String() != "user" || KindLinkUpdate.String() != "linkupdate" {
		t.Fatal("Kind.String broken")
	}
	if OpMigrateAsk.String() != "migrate-ask" {
		t.Fatal("Op.String broken")
	}
	if Kind(99).String() == "" || Op(99).String() == "" {
		t.Fatal("unknown values must stringify")
	}
}
